package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/witch"
)

func cacheProfile(program string, n int, seed int64) *witch.Profile {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]witch.Pair, 0, n)
	for i := 0; i < n; i++ {
		k := rng.Intn(1 << 20)
		pairs = append(pairs, witch.Pair{
			Src:   fmt.Sprintf("s%06d", k),
			Dst:   fmt.Sprintf("d%06d", k),
			Chain: fmt.Sprintf("s%06d->d%06d", k, k),
			Waste: float64(rng.Intn(100)), Use: float64(rng.Intn(100)),
		})
	}
	return witch.NewProfile(witch.Profile{
		Program: program, Tool: string(witch.DeadStores), Waste: 1, Use: 1,
	}, pairs)
}

// aggJSON is the canonical byte form used to compare aggregators (gob
// is unusable for this: type-registry ordering).
func aggJSON(t *testing.T, a *agg.Aggregator) []byte {
	t.Helper()
	b, err := json.Marshal(a.State())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestQueryCacheHitsAndEpochInvalidation: repeated queries at one
// epoch are served from cache (same pointer), every mutation class —
// ingest, fold/eviction, ReplacePartition, snapshot restore —
// invalidates, and the rebuilt result is byte-identical to an
// uncached store fed the same history.
func TestQueryCacheHitsAndEpochInvalidation(t *testing.T) {
	clock := time.Unix(1700000000, 0)
	now := func() time.Time { return clock }
	s := New(Config{Window: time.Minute, Buckets: 3, Now: now})
	oracle := New(Config{Window: time.Minute, Buckets: 3, Now: now, NoCache: true})

	ingestBoth := func(id, program string, seed int64) {
		p := cacheProfile(program, 50, seed)
		s.IngestKeyedAt(id, p, clock)
		oracle.IngestKeyedAt(id, p, clock)
	}

	ingestBoth("p1", "prog-a", 1)
	ingestBoth("p2", "prog-b", 2)

	q1 := s.Query(0)
	if q2 := s.Query(0); q2 != q1 {
		t.Fatal("repeat Query(0) at one epoch should return the cached aggregator")
	}
	cs := s.CacheStats()
	if cs.QueryHits == 0 {
		t.Fatalf("no query cache hit recorded: %+v", cs)
	}
	if !bytes.Equal(aggJSON(t, q1), aggJSON(t, oracle.Query(0))) {
		t.Fatal("cached query diverges from uncached oracle")
	}

	// Ingest invalidates.
	e0 := s.Epoch()
	ingestBoth("p1", "prog-a", 3)
	if s.Epoch() == e0 {
		t.Fatal("ingest did not bump the epoch")
	}
	if q3 := s.Query(0); q3 == q1 {
		t.Fatal("Query after ingest returned the stale cached aggregator")
	}
	if !bytes.Equal(aggJSON(t, s.Query(0)), aggJSON(t, oracle.Query(0))) {
		t.Fatal("post-ingest query diverges from oracle")
	}

	// Eviction (fold) invalidates: advance a full ring revolution (3
	// buckets) so the next ingest reuses the original slot and folds
	// its expired bucket into the rollup.
	q4 := s.Query(0)
	clock = clock.Add(3 * time.Minute)
	ingestBoth("p2", "prog-b", 4)
	if s.Stats().EvictedBuckets == 0 {
		t.Fatal("expected a folded bucket after jumping past the ring")
	}
	if q5 := s.Query(0); q5 == q4 {
		t.Fatal("Query after fold returned the stale cached aggregator")
	}
	if !bytes.Equal(aggJSON(t, s.Query(0)), aggJSON(t, oracle.Query(0))) {
		t.Fatal("post-fold query diverges from oracle")
	}

	// ReplacePartition invalidates, and the replacement is visible.
	qr := s.Query(0)
	img := s.PartitionImage("p1")
	s.ReplacePartition("p1", nil)
	if s.Query(0) == qr {
		t.Fatal("Query after partition removal returned the stale cached aggregator")
	}
	s.ReplacePartition("p1", img)
	if !bytes.Equal(aggJSON(t, s.Query(0)), aggJSON(t, oracle.Query(0))) {
		t.Fatal("remove+reinstall round trip diverges from oracle")
	}

	// Snapshot restore: fresh store, fresh generation, same bytes.
	var snap bytes.Buffer
	if err := s.Snapshot(&snap, 7, nil); err != nil {
		t.Fatal(err)
	}
	s2 := New(Config{Window: time.Minute, Buckets: 3, Now: now})
	genBefore := s2.gen.Load()
	if _, _, err := s2.Restore(&snap); err != nil {
		t.Fatal(err)
	}
	if s2.gen.Load() == genBefore {
		t.Fatal("Restore did not regenerate the store generation")
	}
	if !bytes.Equal(aggJSON(t, s2.Query(0)), aggJSON(t, oracle.Query(0))) {
		t.Fatal("restored store diverges from oracle")
	}
	if got, want := s2.Tools(), oracle.Query(0).Tools(); !reflect.DeepEqual(got, want) {
		t.Fatalf("restored tool set %v, want %v", got, want)
	}
}

// TestWindowedCacheFollowsClock: a windowed query's cache entry is
// valid only within one bucket quantum — moving the clock across a
// bucket boundary must invalidate without any mutation.
func TestWindowedCacheFollowsClock(t *testing.T) {
	// Chosen so now-window starts exactly on a bucket boundary: the
	// +10s step below stays inside one quantum, the +60s step crosses.
	clock := time.Unix(1700000010, 0)
	s := New(Config{Window: time.Minute, Buckets: 5, Now: func() time.Time { return clock }})
	s.IngestKeyedAt("p1", cacheProfile("prog-a", 20, 1), clock)

	w := 90 * time.Second
	q1 := s.Query(w)
	clock = clock.Add(10 * time.Second) // same quantum
	if s.Query(w) != q1 {
		t.Fatal("clock moved within a bucket quantum; cache should have held")
	}
	clock = clock.Add(time.Minute) // crosses a boundary
	if s.Query(w) == q1 {
		t.Fatal("clock crossed a bucket boundary; cache should have invalidated")
	}
	// The ingested bucket ages out of the window entirely.
	clock = clock.Add(5 * time.Minute)
	if got := s.Query(w).PairCount(); got != 0 {
		t.Fatalf("aged-out window still reports %d pairs", got)
	}
}

// TestToolsMaintained: the maintained tool set tracks ingest and
// removal without folding all-time state.
func TestToolsMaintained(t *testing.T) {
	clock := time.Unix(1700000000, 0)
	s := New(Config{Window: time.Minute, Buckets: 3, Now: func() time.Time { return clock }})
	if got := s.Tools(); len(got) != 0 {
		t.Fatalf("fresh store lists tools %v", got)
	}
	p := cacheProfile("prog-a", 5, 1)
	s.IngestKeyedAt("p1", p, clock)
	if got := s.Tools(); len(got) != 1 || got[0] != p.Tool {
		t.Fatalf("tools = %v, want [%s]", got, p.Tool)
	}
	// Removing the only partition holding the tool drops it.
	s.ReplacePartition("p1", nil)
	if got := s.Tools(); len(got) != 0 {
		t.Fatalf("tools after removing the only holder = %v, want none", got)
	}
}

// TestStoreCacheRace: concurrent ingest, windowed + all-time queries,
// partition queries, exports, and clock movement (driving folds) must
// be data-race free and never panic. Run under -race.
func TestStoreCacheRace(t *testing.T) {
	var clockMu sync.Mutex
	clock := time.Unix(1700000000, 0)
	now := func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	s := New(Config{Window: 10 * time.Millisecond, Buckets: 2, Now: now})
	profs := []*witch.Profile{
		cacheProfile("prog-a", 30, 1),
		cacheProfile("prog-b", 30, 2),
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			id := fmt.Sprintf("p%d", g%2)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.IngestKeyedAt(id, profs[g%2], now())
				if i%8 == 0 {
					// Drive the clock so ring slots recycle and folds run
					// concurrently with the queries below.
					clockMu.Lock()
					clock = clock.Add(7 * time.Millisecond)
					clockMu.Unlock()
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch g % 4 {
				case 0:
					s.Query(0).PairCount()
				case 1:
					s.Query(15 * time.Millisecond).PairCount()
				case 2:
					s.QueryPartition("p0", 0).PairCount()
				case 3:
					s.ExportVersioned(0)
					s.Stats()
					s.Tools()
				}
			}
		}(g)
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}
