// Query fast path: epoch-versioned memoization.
//
// Every read used to pay O(total state): Query re-merged every
// partition of every live bucket per call, Export rebuilt the whole
// scatter payload per fleet query, and /healthz re-folded all-time
// history just to list tools. This file makes reads incremental. The
// store keeps one mutation epoch — a counter bumped by ingest,
// fold/eviction, partition replacement, and restore — plus a
// per-partition epoch vector recording the store epoch at each
// partition's last mutation. Everything derived from the state
// (Query, QueryPartition, Export, Stats) is cached keyed by the epoch
// it was built from and returned without re-merging while the epoch
// is unchanged. Invalidation is epoch-compare, never TTL: a cached
// result is served only when provably nothing changed, so cached and
// uncached answers are byte-identical by construction.
//
// Windowed results additionally depend on the clock: the live-bucket
// filter admits bucket b while b.start+Window > now-window, and both
// sides are multiples of the bucket width, so a windowed result can
// only change (absent mutation) when now-window crosses a bucket
// boundary. bucketIdx quantizes that: floor((now-window)/Window), 0
// for all-time queries. A cache entry is valid while (epoch,
// bucketIdx) both match.
//
// The epoch is read BEFORE building a cacheable result. A mutation
// landing mid-build may or may not be included, but either way the
// entry is recorded at the pre-build epoch, the mutation bumped past
// it, and the next read rebuilds — the cache can serve fresh data
// labeled old, never stale data labeled current.
//
// Restore swaps the whole world, so it also regenerates the store's
// generation stamp. The generation is part of ExportVersion: a
// coordinator holding a delta baseline from a peer that restarted (or
// restored) can never falsely match epochs that restarted from zero.
package store

import (
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/agg"
)

// genCounter makes store generations unique within a process even
// under injected fixed clocks (harness restarts build fresh stores).
var genCounter atomic.Uint64

func nextGen() uint64 {
	return uint64(time.Now().UnixNano()) + genCounter.Add(1)<<1
}

// Cache bounds: derived results are retained per distinct window (or
// partition id) until the map would grow past these; then the whole
// map is dropped and repopulated by demand. Real deployments query a
// handful of windows, so eviction is a safety valve, not a policy.
const (
	maxCachedWindows    = 32
	maxCachedPartitions = 4096
)

type queryEntry struct {
	epoch uint64
	idx   int64
	agg   *agg.Aggregator
}

type partEntry struct {
	epoch uint64 // the partition's epoch, not the store's
	agg   *agg.Aggregator
}

type exportEntry struct {
	epoch uint64
	idx   int64
	ve    *VersionedExport
}

type statsEntry struct {
	epoch uint64
	stats Stats
}

// noteMutation advances the store epoch and stamps partition id with
// it. Called after the mutated data is fully visible to readers, so a
// reader that already loaded the pre-bump epoch can at worst cache a
// fresher-than-labeled result (see the package comment in this file).
// epochMu keeps (epoch, vector) reads consistent: Version and
// ExportVersioned copy both under the same lock.
func (s *Store) noteMutation(id string) {
	s.epochMu.Lock()
	e := s.epoch.Add(1)
	s.partEpochs[id] = e
	s.epochMu.Unlock()
}

// noteTool records a tool sighting for the O(1) tools list.
func (s *Store) noteTool(tool string) {
	s.toolsMu.Lock()
	if !s.tools[tool] {
		s.tools[tool] = true
		s.toolsSorted = nil
	}
	s.toolsMu.Unlock()
}

// noteToolsFromState records every tool a snapshot image carries.
func (s *Store) noteToolsFromState(st *agg.State) {
	if st == nil {
		return
	}
	for i := range st.Metas {
		s.noteTool(st.Metas[i].Tool)
	}
}

// rebuildTools recomputes the tool set from the held aggregates — the
// slow path for the rare operations that can remove data (partition
// removal, restore).
func (s *Store) rebuildTools() {
	s.foldMu.Lock()
	s.rebuildToolsLocked()
	s.foldMu.Unlock()
}

// rebuildToolsLocked is rebuildTools for callers already holding
// foldMu (ReplacePartition mutates under the barrier).
func (s *Store) rebuildToolsLocked() {
	set := make(map[string]bool)
	for _, a := range s.rollup {
		for _, t := range a.Tools() {
			set[t] = true
		}
	}
	for _, b := range s.liveBuckets(0, time.Time{}) {
		for _, a := range b.snapshotParts() {
			for _, t := range a.Tools() {
				set[t] = true
			}
		}
	}
	s.toolsMu.Lock()
	s.tools = set
	s.toolsSorted = nil
	s.toolsMu.Unlock()
}

// Tools lists every tool that has contributed data, sorted. Served
// from the maintained set — O(distinct tools), not O(total state) —
// which is what lets /healthz stop rebuilding all-time history.
func (s *Store) Tools() []string {
	s.toolsMu.Lock()
	defer s.toolsMu.Unlock()
	if s.toolsSorted == nil {
		s.toolsSorted = make([]string, 0, len(s.tools))
		for t := range s.tools {
			s.toolsSorted = append(s.toolsSorted, t)
		}
		sort.Strings(s.toolsSorted)
	}
	return s.toolsSorted
}

// bucketIdx quantizes the clock for windowed cache validity: the
// live-bucket filter's accepted set changes only when now-window
// crosses a multiple of the bucket width. All-time queries (window <=
// 0) are clock-independent and pin to 0.
func (s *Store) bucketIdx(window time.Duration, now time.Time) int64 {
	if window <= 0 {
		return 0
	}
	c := now.Add(-window).UnixNano()
	w := int64(s.cfg.Window)
	idx := c / w
	if c%w < 0 {
		idx-- // floor division: negative cutoffs must round down
	}
	return idx
}

// Version identifies what a read of the store at a given window would
// see: the generation (survives nothing — regenerated per Store and
// on Restore), the mutation epoch, and the window's clock quantum.
// Two reads with equal Versions return byte-identical results.
type Version struct {
	Gen       uint64
	Epoch     uint64
	BucketIdx int64
}

// Version returns the store's current version for a window. O(1).
func (s *Store) Version(window time.Duration) Version {
	return Version{
		Gen:       s.gen.Load(),
		Epoch:     s.epoch.Load(),
		BucketIdx: s.bucketIdx(window, s.cfg.Now()),
	}
}

// Epoch returns the store-wide mutation epoch (monotone per
// generation; restarts from a Restore reset it under a new Gen).
func (s *Store) Epoch() uint64 { return s.epoch.Load() }

// CacheStats counts cache traffic for /metrics.
type CacheStats struct {
	QueryHits    uint64 `json:"query_hits"`
	QueryMisses  uint64 `json:"query_misses"`
	ExportHits   uint64 `json:"export_hits"`
	ExportMisses uint64 `json:"export_misses"`
}

// CacheStats snapshots the query/export cache counters.
func (s *Store) CacheStats() CacheStats {
	return CacheStats{
		QueryHits:    s.queryHits.Load(),
		QueryMisses:  s.queryMisses.Load(),
		ExportHits:   s.exportHits.Load(),
		ExportMisses: s.exportMisses.Load(),
	}
}

// invalidateCaches drops every memoized result — the Restore path,
// where the world changes wholesale under a new generation.
func (s *Store) invalidateCaches() {
	s.cacheMu.Lock()
	s.queryCache = make(map[time.Duration]*queryEntry)
	s.partCache = make(map[string]*partEntry)
	s.exportCache = make(map[time.Duration]*exportEntry)
	s.statsCache = nil
	s.cacheMu.Unlock()
}

// ExportVersion is the freshness vector a versioned export carries
// and a delta request presents: the exporter's generation, the
// window's clock quantum, and each exported partition's epoch (the
// anonymous partition under ""). Epoch comparison is only meaningful
// within one (Gen, BucketIdx) pair; across them the caller's baseline
// is useless and the exporter falls back to a full export.
type ExportVersion struct {
	Gen       uint64
	BucketIdx int64
	Epochs    map[string]uint64
}

// VersionedExport pairs a window export with the version it was built
// at. The export (and the version's Epochs map) is shared across
// callers and must be treated as read-only.
type VersionedExport struct {
	Export *Export
	Ver    ExportVersion
}

// ExportVersioned is Export plus the version vector delta scatter
// diffs against. Cached like Query: while (epoch, bucketIdx) are
// unchanged, the same *VersionedExport comes back without re-merging.
func (s *Store) ExportVersioned(window time.Duration) *VersionedExport {
	now := s.cfg.Now()
	idx := s.bucketIdx(window, now)
	// Read the epoch and the partition vector before building: a
	// mutation mid-build bumps past them and forces the next read to
	// rebuild.
	s.epochMu.Lock()
	e := s.epoch.Load()
	vec := make(map[string]uint64, len(s.partEpochs))
	for id, pe := range s.partEpochs {
		vec[id] = pe
	}
	s.epochMu.Unlock()

	if !s.cfg.NoCache {
		s.cacheMu.Lock()
		if ent := s.exportCache[window]; ent != nil && ent.epoch == e && ent.idx == idx {
			s.cacheMu.Unlock()
			s.exportHits.Add(1)
			return ent.ve
		}
		s.cacheMu.Unlock()
	}
	s.exportMisses.Add(1)

	exp := s.exportAt(window, now)
	ve := &VersionedExport{
		Export: exp,
		Ver:    ExportVersion{Gen: s.gen.Load(), BucketIdx: idx, Epochs: make(map[string]uint64, len(exp.Parts)+1)},
	}
	// The vector covers exactly the partitions present in this window's
	// export: absent ids read as 0 on the diff side, which re-ships
	// them the moment they appear.
	if exp.Unkeyed != nil {
		ve.Ver.Epochs[""] = vec[""]
	}
	for id := range exp.Parts {
		ve.Ver.Epochs[id] = vec[id]
	}

	if !s.cfg.NoCache {
		s.cacheMu.Lock()
		if len(s.exportCache) >= maxCachedWindows {
			s.exportCache = make(map[time.Duration]*exportEntry)
		}
		s.exportCache[window] = &exportEntry{epoch: e, idx: idx, ve: ve}
		s.cacheMu.Unlock()
	}
	return ve
}

// ExportDelta is what /v1/shard v2 ships: either a full export (the
// caller's baseline was missing, from another generation, or from
// another clock quantum) or just the partitions whose epochs moved
// past the caller's vector, plus tombstones for the partitions the
// caller still holds that no longer exist in the window. Applying a
// delta to the baseline it was diffed against reproduces the full
// export exactly — same *agg.State values, so folds over the patched
// baseline are byte-identical to folds over a fresh full export.
type ExportDelta struct {
	Full       bool
	Export     *Export
	Tombstones []string
	Ver        ExportVersion
}

// ExportDelta diffs the current window export against a caller's
// last-seen version vector.
func (s *Store) ExportDelta(window time.Duration, since ExportVersion) *ExportDelta {
	ve := s.ExportVersioned(window)
	if since.Epochs == nil || since.Gen != ve.Ver.Gen || since.BucketIdx != ve.Ver.BucketIdx {
		return &ExportDelta{Full: true, Export: ve.Export, Ver: ve.Ver}
	}
	out := &Export{Parts: make(map[string]*agg.State)}
	for id, e := range ve.Ver.Epochs {
		if since.Epochs[id] == e {
			continue
		}
		if id == "" {
			out.Unkeyed = ve.Export.Unkeyed
			continue
		}
		out.Parts[id] = ve.Export.Parts[id]
	}
	var tombs []string
	for id := range since.Epochs {
		if _, ok := ve.Ver.Epochs[id]; !ok {
			tombs = append(tombs, id)
		}
	}
	sort.Strings(tombs)
	return &ExportDelta{Export: out, Tombstones: tombs, Ver: ve.Ver}
}
