package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/witch"
)

// fakeClock is an injectable, race-safe clock.
type fakeClock struct {
	ns atomic.Int64
}

func newFakeClock() *fakeClock {
	c := &fakeClock{}
	c.ns.Store(time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC).UnixNano())
	return c
}

func (c *fakeClock) now() time.Time                    { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) time.Time { return time.Unix(0, c.ns.Add(int64(d))) }

func synth(program string, waste float64) *witch.Profile {
	return witch.NewProfile(witch.Profile{
		Program:    program,
		Tool:       "dead",
		Redundancy: waste / (waste + 8),
		Waste:      waste,
		Use:        8,
	}, []witch.Pair{{
		Src: program + ":f:1", Dst: program + ":g:2",
		Chain: "main -> f -> g", Waste: waste, Use: 8,
	}})
}

// TestRetentionEvictsAndRollsUp drives ingest across many windows and
// checks that (a) live memory stays bounded at the ring size while
// evicted buckets fold into the rollup, and (b) an unbounded query
// still sees every profile ever ingested — retention moves data, it
// never loses it.
func TestRetentionEvictsAndRollsUp(t *testing.T) {
	clk := newFakeClock()
	s := New(Config{Window: time.Minute, Buckets: 4, Now: clk.now})

	const windows = 12
	for i := 0; i < windows; i++ {
		// A distinct program per window keeps pair streams distinct, so
		// live pair count tracks live buckets.
		s.Ingest(synth(fmt.Sprintf("prog-%02d", i), 16))
		clk.advance(time.Minute)
	}

	st := s.Stats()
	if st.LiveBuckets > 4 {
		t.Fatalf("live buckets %d exceed ring size 4", st.LiveBuckets)
	}
	if st.EvictedBuckets != windows-4 {
		t.Fatalf("evicted %d buckets, want %d", st.EvictedBuckets, windows-4)
	}
	if st.LivePairs > 4 {
		t.Fatalf("live pairs %d not bounded by ring", st.LivePairs)
	}
	if st.RollupPairs != windows-4 {
		t.Fatalf("rollup holds %d pairs, want %d", st.RollupPairs, windows-4)
	}
	if st.Ingested != windows {
		t.Fatalf("ingested %d, want %d", st.Ingested, windows)
	}

	all := s.Query(0)
	if got := all.Profiles(); got != windows {
		t.Fatalf("unbounded query sees %d profiles, want %d", got, windows)
	}
	snap := all.Snapshot("dead", "")
	if snap.Waste != 16*windows {
		t.Fatalf("rollup lost waste: %g, want %d", snap.Waste, 16*windows)
	}
}

// TestQueryWindowSelectsBuckets: a trailing window only sees the
// buckets overlapping it.
func TestQueryWindowSelectsBuckets(t *testing.T) {
	clk := newFakeClock()
	s := New(Config{Window: time.Minute, Buckets: 10, Now: clk.now})

	s.Ingest(synth("old", 1))
	clk.advance(5 * time.Minute)
	s.Ingest(synth("new", 2))

	recent := s.Query(2*time.Minute).Snapshot("dead", "")
	if recent == nil || recent.Waste != 2 {
		t.Fatalf("trailing window should see only the new profile, got %+v", recent)
	}
	both := s.Query(10*time.Minute).Snapshot("dead", "")
	if both.Waste != 3 {
		t.Fatalf("wide window should see both, got waste %g", both.Waste)
	}
	if s.Query(2*time.Minute).Snapshot("load", "") != nil {
		t.Fatal("unknown tool should be nil")
	}
}

// TestSameWindowMergesInPlace: profiles landing in one window share a
// bucket and merge there.
func TestSameWindowMergesInPlace(t *testing.T) {
	clk := newFakeClock()
	s := New(Config{Window: time.Minute, Buckets: 4, Now: clk.now})
	for i := 0; i < 10; i++ {
		s.Ingest(synth("p", 4))
	}
	st := s.Stats()
	if st.LiveBuckets != 1 || st.EvictedBuckets != 0 {
		t.Fatalf("stats = %+v, want one live bucket, no eviction", st)
	}
	if got := s.Query(0).Snapshot("dead", "").Waste; got != 40 {
		t.Fatalf("in-bucket merge waste %g, want 40", got)
	}
}

// TestConcurrentIngestQueryEvict is the store's half of the race
// satellite: 8 ingesters race a moving clock (forcing evictions), while
// queries and stats readers run throughout. Afterwards every ingested
// profile must be accounted for across live buckets + rollup.
func TestConcurrentIngestQueryEvict(t *testing.T) {
	clk := newFakeClock()
	s := New(Config{Window: time.Minute, Buckets: 3, Now: clk.now})

	const (
		ingesters = 8
		perG      = 60
	)
	var wg sync.WaitGroup
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Ingest(synth(fmt.Sprintf("prog-%d", g), 2))
				if i%10 == 9 {
					clk.advance(20 * time.Second)
				}
			}
		}(g)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if snap := s.Query(2*time.Minute).Snapshot("dead", ""); snap != nil {
					_ = snap.TopPairs(3)
				}
				_ = s.Stats()
			}
		}()
	}
	wg.Wait()

	const total = ingesters * perG
	if got := s.Query(0).Profiles(); got != total {
		t.Fatalf("lost profiles across eviction: %d, want %d", got, total)
	}
	if got := s.Query(0).Snapshot("dead", "").Waste; got != 2*total {
		t.Fatalf("lost waste across eviction: %g, want %d", got, 2*total)
	}
	st := s.Stats()
	if st.EvictedBuckets == 0 {
		t.Fatal("expected evictions under the moving clock")
	}
	if st.LiveBuckets > 3 {
		t.Fatalf("live buckets %d exceed ring size", st.LiveBuckets)
	}
}
