package store

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/witch"
)

// fakeClock is an injectable, race-safe clock.
type fakeClock struct {
	ns atomic.Int64
}

func newFakeClock() *fakeClock {
	c := &fakeClock{}
	c.ns.Store(time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC).UnixNano())
	return c
}

func (c *fakeClock) now() time.Time                    { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) time.Time { return time.Unix(0, c.ns.Add(int64(d))) }

func synth(program string, waste float64) *witch.Profile {
	return witch.NewProfile(witch.Profile{
		Program:    program,
		Tool:       "dead",
		Redundancy: waste / (waste + 8),
		Waste:      waste,
		Use:        8,
	}, []witch.Pair{{
		Src: program + ":f:1", Dst: program + ":g:2",
		Chain: "main -> f -> g", Waste: waste, Use: 8,
	}})
}

// TestRetentionEvictsAndRollsUp drives ingest across many windows and
// checks that (a) live memory stays bounded at the ring size while
// evicted buckets fold into the rollup, and (b) an unbounded query
// still sees every profile ever ingested — retention moves data, it
// never loses it.
func TestRetentionEvictsAndRollsUp(t *testing.T) {
	clk := newFakeClock()
	s := New(Config{Window: time.Minute, Buckets: 4, Now: clk.now})

	const windows = 12
	for i := 0; i < windows; i++ {
		// A distinct program per window keeps pair streams distinct, so
		// live pair count tracks live buckets.
		s.Ingest(synth(fmt.Sprintf("prog-%02d", i), 16))
		clk.advance(time.Minute)
	}

	st := s.Stats()
	if st.LiveBuckets > 4 {
		t.Fatalf("live buckets %d exceed ring size 4", st.LiveBuckets)
	}
	if st.EvictedBuckets != windows-4 {
		t.Fatalf("evicted %d buckets, want %d", st.EvictedBuckets, windows-4)
	}
	if st.LivePairs > 4 {
		t.Fatalf("live pairs %d not bounded by ring", st.LivePairs)
	}
	if st.RollupPairs != windows-4 {
		t.Fatalf("rollup holds %d pairs, want %d", st.RollupPairs, windows-4)
	}
	if st.Ingested != windows {
		t.Fatalf("ingested %d, want %d", st.Ingested, windows)
	}

	all := s.Query(0)
	if got := all.Profiles(); got != windows {
		t.Fatalf("unbounded query sees %d profiles, want %d", got, windows)
	}
	snap := all.Snapshot("dead", "")
	if snap.Waste != 16*windows {
		t.Fatalf("rollup lost waste: %g, want %d", snap.Waste, 16*windows)
	}
}

// TestQueryWindowSelectsBuckets: a trailing window only sees the
// buckets overlapping it.
func TestQueryWindowSelectsBuckets(t *testing.T) {
	clk := newFakeClock()
	s := New(Config{Window: time.Minute, Buckets: 10, Now: clk.now})

	s.Ingest(synth("old", 1))
	clk.advance(5 * time.Minute)
	s.Ingest(synth("new", 2))

	recent := s.Query(2*time.Minute).Snapshot("dead", "")
	if recent == nil || recent.Waste != 2 {
		t.Fatalf("trailing window should see only the new profile, got %+v", recent)
	}
	both := s.Query(10*time.Minute).Snapshot("dead", "")
	if both.Waste != 3 {
		t.Fatalf("wide window should see both, got waste %g", both.Waste)
	}
	if s.Query(2*time.Minute).Snapshot("load", "") != nil {
		t.Fatal("unknown tool should be nil")
	}
}

// TestSameWindowMergesInPlace: profiles landing in one window share a
// bucket and merge there.
func TestSameWindowMergesInPlace(t *testing.T) {
	clk := newFakeClock()
	s := New(Config{Window: time.Minute, Buckets: 4, Now: clk.now})
	for i := 0; i < 10; i++ {
		s.Ingest(synth("p", 4))
	}
	st := s.Stats()
	if st.LiveBuckets != 1 || st.EvictedBuckets != 0 {
		t.Fatalf("stats = %+v, want one live bucket, no eviction", st)
	}
	if got := s.Query(0).Snapshot("dead", "").Waste; got != 40 {
		t.Fatalf("in-bucket merge waste %g, want 40", got)
	}
}

// TestConcurrentIngestQueryEvict is the store's half of the race
// satellite: 8 ingesters race a moving clock (forcing evictions), while
// queries and stats readers run throughout. Afterwards every ingested
// profile must be accounted for across live buckets + rollup.
func TestConcurrentIngestQueryEvict(t *testing.T) {
	clk := newFakeClock()
	s := New(Config{Window: time.Minute, Buckets: 3, Now: clk.now})

	const (
		ingesters = 8
		perG      = 60
	)
	var wg sync.WaitGroup
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				s.Ingest(synth(fmt.Sprintf("prog-%d", g), 2))
				if i%10 == 9 {
					clk.advance(20 * time.Second)
				}
			}
		}(g)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if snap := s.Query(2*time.Minute).Snapshot("dead", ""); snap != nil {
					_ = snap.TopPairs(3)
				}
				_ = s.Stats()
			}
		}()
	}
	wg.Wait()

	const total = ingesters * perG
	if got := s.Query(0).Profiles(); got != total {
		t.Fatalf("lost profiles across eviction: %d, want %d", got, total)
	}
	if got := s.Query(0).Snapshot("dead", "").Waste; got != 2*total {
		t.Fatalf("lost waste across eviction: %g, want %d", got, 2*total)
	}
	st := s.Stats()
	if st.EvictedBuckets == 0 {
		t.Fatal("expected evictions under the moving clock")
	}
	if st.LiveBuckets > 3 {
		t.Fatalf("live buckets %d exceed ring size", st.LiveBuckets)
	}
}

// TestSnapshotRestoreRoundTrip: snapshot → restore reproduces the full
// retention state — ring layout, rollup, counters, and the caller's
// anchor — so a recovered daemon answers queries identically.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	clk := newFakeClock()
	s := New(Config{Window: time.Minute, Buckets: 4, Now: clk.now})
	const windows = 9 // > ring size: rollup is populated too
	for i := 0; i < windows; i++ {
		s.Ingest(synth(fmt.Sprintf("prog-%02d", i), 16))
		clk.advance(time.Minute)
	}

	var buf bytes.Buffer
	if err := s.Snapshot(&buf, 42, []byte("extra-blob")); err != nil {
		t.Fatal(err)
	}
	r := New(Config{Window: time.Minute, Buckets: 4, Now: clk.now})
	anchor, extra, err := r.Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if anchor != 42 {
		t.Fatalf("anchor = %d, want 42", anchor)
	}
	if string(extra) != "extra-blob" {
		t.Fatalf("extra = %q, want %q", extra, "extra-blob")
	}

	if got, want := r.Stats(), s.Stats(); got != want {
		t.Fatalf("restored stats %+v, want %+v", got, want)
	}
	for _, window := range []time.Duration{0, 2 * time.Minute, 10 * time.Minute} {
		a := s.Query(window).Snapshot("dead", "")
		b := r.Query(window).Snapshot("dead", "")
		if (a == nil) != (b == nil) {
			t.Fatalf("window %v: presence drifted", window)
		}
		if a == nil {
			continue
		}
		var wa, wb bytes.Buffer
		if err := a.WriteJSON(&wa); err != nil {
			t.Fatal(err)
		}
		if err := b.WriteJSON(&wb); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wa.Bytes(), wb.Bytes()) {
			t.Fatalf("window %v: restored profile drifted:\n%s\nvs\n%s", window, wb.String(), wa.String())
		}
	}
}

// TestSnapshotRestoreGeometryChange: restoring into a ring with a
// different window width folds every bucket into the rollup — windowed
// placement is lost, but the all-time view stays exact.
func TestSnapshotRestoreGeometryChange(t *testing.T) {
	clk := newFakeClock()
	s := New(Config{Window: time.Minute, Buckets: 4, Now: clk.now})
	const n = 6
	for i := 0; i < n; i++ {
		s.Ingest(synth(fmt.Sprintf("prog-%d", i), 16))
		clk.advance(time.Minute)
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf, 1, nil); err != nil {
		t.Fatal(err)
	}

	r := New(Config{Window: time.Hour, Buckets: 2, Now: clk.now})
	if _, _, err := r.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := r.Query(0).Profiles(); got != n {
		t.Fatalf("all-time view lost profiles under reconfiguration: %d, want %d", got, n)
	}
	if got := r.Query(0).Snapshot("dead", "").Waste; got != 16*n {
		t.Fatalf("all-time waste %g, want %d", got, 16*n)
	}
}

// TestRestoreRejectsBadSnapshots: garbage and version-mismatched
// snapshots error out (the recovery layer falls back to older ones)
// instead of restoring nonsense.
func TestRestoreRejectsBadSnapshots(t *testing.T) {
	s := New(Config{})
	if _, _, err := s.Restore(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Fatal("garbage restored without error")
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snapshotFile{Version: snapshotVersion + 1}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Restore(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("future snapshot version restored without error")
	}
}

// TestSnapshotRacesEviction: snapshots run concurrently with ingest
// that is continuously displacing and folding buckets. The exactly-once
// guarantee under test: a bucket mid-fold appears in a snapshot on
// exactly one side of the rollup boundary. Each pair is ingested once
// with waste 16, so any double-count shows up as a pair whose waste
// exceeds 16 in some snapshot, and any loss shows up in the final one.
func TestSnapshotRacesEviction(t *testing.T) {
	clk := newFakeClock()
	cfg := Config{Window: time.Minute, Buckets: 2, Now: clk.now}
	s := New(cfg)

	const n = 300
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			s.Ingest(synth(fmt.Sprintf("prog-%03d", i), 16))
			// Every other ingest starts a new window, displacing a bucket
			// and racing its fold against the snapshotter.
			clk.advance(31 * time.Second)
		}
	}()

	var snaps [][]byte
	for running := true; running; {
		select {
		case <-done:
			running = false
		default:
		}
		var buf bytes.Buffer
		if err := s.Snapshot(&buf, uint64(len(snaps)), nil); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, buf.Bytes())
	}
	// One more after ingest quiesced: this one must be exact.
	var final bytes.Buffer
	if err := s.Snapshot(&final, uint64(len(snaps)), nil); err != nil {
		t.Fatal(err)
	}
	snaps = append(snaps, final.Bytes())

	for i, snap := range snaps {
		r := New(cfg)
		if _, _, err := r.Restore(bytes.NewReader(snap)); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		prof := r.Query(0).Snapshot("dead", "")
		if prof == nil {
			continue // taken before the first merge landed
		}
		for _, pair := range prof.TopPairs(0) {
			if pair.Waste > 16 {
				t.Fatalf("snapshot %d: pair %s has waste %g > 16: bucket counted on both sides of the rollup", i, pair.Src, pair.Waste)
			}
		}
	}

	r := New(cfg)
	if _, _, err := r.Restore(bytes.NewReader(final.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := r.Query(0).Profiles(); got != n {
		t.Fatalf("final snapshot accounts for %d profiles, want %d", got, n)
	}
	if got := len(r.Query(0).Snapshot("dead", "").TopPairs(0)); got != n {
		t.Fatalf("final snapshot has %d pairs, want %d", got, n)
	}
	if st := r.Stats(); st.EvictedBuckets == 0 {
		t.Fatal("race never exercised eviction")
	}
}

// TestSnapshotChecksumDetectsCorruption: every snapshot carries a
// CRC-32C trailer; a single flipped byte anywhere in the payload fails
// the restore loudly (the recovery layer then falls back to an older
// snapshot), while a trailer-less legacy snapshot still loads.
func TestSnapshotChecksumDetectsCorruption(t *testing.T) {
	clk := newFakeClock()
	s := New(Config{Window: time.Minute, Buckets: 4, Now: clk.now})
	for i := 0; i < 6; i++ {
		s.Ingest(synth(fmt.Sprintf("prog-%d", i), 16))
		clk.advance(time.Minute)
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf, 7, []byte("blob")); err != nil {
		t.Fatal(err)
	}
	snap := buf.Bytes()

	// Pristine bytes restore.
	if _, _, err := New(Config{}).Restore(bytes.NewReader(snap)); err != nil {
		t.Fatalf("pristine snapshot rejected: %v", err)
	}
	// Bit rot anywhere in the body is caught by the trailer.
	for _, pos := range []int{8, len(snap) / 2, len(snap) - 12} {
		bad := append([]byte(nil), snap...)
		bad[pos] ^= 0x40
		if _, _, err := New(Config{}).Restore(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corruption at byte %d restored silently", pos)
		} else if !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("corruption at byte %d failed for the wrong reason: %v", pos, err)
		}
	}
	// A corrupt trailer itself also fails closed.
	bad := append([]byte(nil), snap...)
	bad[len(bad)-6] ^= 0x01
	if _, _, err := New(Config{}).Restore(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt trailer restored silently")
	}
	// Legacy snapshot (no trailer): accepted, data intact.
	legacy := snap[:len(snap)-8]
	r := New(Config{Window: time.Minute, Buckets: 4, Now: clk.now})
	anchor, extra, err := r.Restore(bytes.NewReader(legacy))
	if err != nil {
		t.Fatalf("legacy trailer-less snapshot rejected: %v", err)
	}
	if anchor != 7 || string(extra) != "blob" {
		t.Fatalf("legacy restore drifted: anchor=%d extra=%q", anchor, extra)
	}
	if got := r.Query(0).Profiles(); got != 6 {
		t.Fatalf("legacy restore lost profiles: %d", got)
	}
}

// TestKeyedPartitionsRoundTrip: keyed ingest isolates per-pusher
// partitions inside the shared retention ring, exports carry them
// separately from the unkeyed aggregate, and a PartitionImage replaces
// a partition on another store without disturbing its neighbours.
func TestKeyedPartitionsRoundTrip(t *testing.T) {
	clk := newFakeClock()
	cfg := Config{Window: time.Minute, Buckets: 4, Now: clk.now}
	s := New(cfg)
	s.IngestKeyedAt("alice", synth("prog-a", 10), clk.now())
	s.IngestKeyedAt("bob", synth("prog-b", 20), clk.now())
	s.Ingest(synth("prog-anon", 30))

	if got := s.Partitions(); len(got) != 2 || got[0] != "alice" || got[1] != "bob" {
		t.Fatalf("Partitions() = %v, want [alice bob]", got)
	}
	if got := s.QueryPartition("alice", 0).Snapshot("dead", "").Waste; got != 10 {
		t.Fatalf("alice partition waste %g, want 10 (isolation broken)", got)
	}
	if got := s.Query(0).Snapshot("dead", "").Waste; got != 60 {
		t.Fatalf("merged query waste %g, want 60", got)
	}

	exp := s.Export(0)
	if exp.Unkeyed == nil || len(exp.Parts) != 2 {
		t.Fatalf("export shape: unkeyed=%v parts=%d", exp.Unkeyed != nil, len(exp.Parts))
	}

	// Ship alice's image to a second store holding its own data.
	img := s.PartitionImage("alice")
	if img == nil || len(img.Buckets) == 0 {
		t.Fatalf("partition image empty: %+v", img)
	}
	r := New(cfg)
	r.IngestKeyedAt("alice", synth("prog-stale", 99), clk.now())
	r.IngestKeyedAt("carol", synth("prog-c", 5), clk.now())
	r.ReplacePartition("alice", img)
	if got := r.QueryPartition("alice", 0).Snapshot("dead", "").Waste; got != 10 {
		t.Fatalf("replaced partition waste %g, want 10 (stale copy survived?)", got)
	}
	if r.QueryPartition("alice", 0).Snapshot("dead", "").Program == "prog-stale" {
		t.Fatal("replace merged instead of replacing")
	}
	if got := r.QueryPartition("carol", 0).Snapshot("dead", "").Waste; got != 5 {
		t.Fatalf("neighbour partition disturbed: %g", got)
	}

	// Partitions survive the snapshot codec.
	var buf bytes.Buffer
	if err := s.Snapshot(&buf, 1, nil); err != nil {
		t.Fatal(err)
	}
	s2 := New(cfg)
	if _, _, err := s2.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if got := s2.Partitions(); len(got) != 2 {
		t.Fatalf("partitions lost in snapshot round trip: %v", got)
	}
	if got := s2.QueryPartition("bob", 0).Snapshot("dead", "").Waste; got != 20 {
		t.Fatalf("restored bob partition waste %g, want 20", got)
	}
	if got := s2.Query(0).Snapshot("dead", "").Waste; got != 60 {
		t.Fatalf("restored merged waste %g, want 60", got)
	}
}
