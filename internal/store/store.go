// Package store gives the witchd aggregation daemon bounded memory
// under indefinite ingest: profiles land in a ring of fixed time-width
// buckets (each an internal/agg aggregator), and when a ring slot is
// reused its expired bucket is folded into a single long-tail rollup
// aggregator. Because merge is associative (a sum — see internal/agg),
// folding a bucket into the rollup is exactly the merge that would have
// happened had its profiles been ingested there directly: retention
// changes *where* data lives, never *what* a query over it reports.
//
// Queries select the live buckets overlapping a trailing window (plus
// the rollup for unbounded queries) and merge them into a fresh
// aggregator, so a query never blocks ingest for longer than the
// per-shard locks it shares.
package store

import (
	"encoding/gob"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agg"
	"repro/witch"
)

// Config sizes the retention ring.
type Config struct {
	// Window is one bucket's time width (default 1 minute).
	Window time.Duration
	// Buckets is the live ring size; data older than Window×Buckets is
	// folded into the rollup (default 60).
	Buckets int
	// Now is the clock, injectable for tests (default time.Now).
	Now func() time.Time
}

// bucket is one retention window's aggregate.
type bucket struct {
	start time.Time
	agg   *agg.Aggregator
	// rw lets eviction wait out in-flight merges: ingest holds the read
	// side while merging, the evictor takes the write side before
	// folding the bucket into the rollup, so no late merge is lost.
	rw sync.RWMutex
}

// Store is the time-bucketed retention layer. Safe for concurrent use.
type Store struct {
	cfg Config

	mu     sync.Mutex
	ring   []*bucket
	rollup *agg.Aggregator
	// pending holds buckets that have been displaced from the ring but
	// whose fold into the rollup has not completed — the window during
	// which a concurrent Snapshot must still see them, or their data
	// would exist nowhere.
	pending []*bucket

	// foldMu serializes rollup mutation (fold) against Snapshot, so a
	// bucket is always captured on exactly one side of the rollup
	// boundary. Lock order: foldMu before mu; never mu before foldMu.
	foldMu sync.Mutex

	ingested       atomic.Uint64
	evictedBuckets atomic.Uint64

	// bucketHint and queryHint remember recent pair cardinalities —
	// of the last expired bucket and the last Query result — so fresh
	// aggregators pre-size their shard maps instead of growing them
	// incrementally under the merge locks. Hints are advisory: a bad one
	// costs memory or growth, never correctness.
	bucketHint atomic.Int64
	queryHint  atomic.Int64
}

// New builds a store, applying defaults for zero config fields.
func New(cfg Config) *Store {
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 60
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Store{
		cfg:    cfg,
		ring:   make([]*bucket, cfg.Buckets),
		rollup: agg.New(),
	}
}

// Ingest merges one profile into the current time bucket, evicting any
// expired bucket whose ring slot it reuses.
func (s *Store) Ingest(p *witch.Profile) {
	s.IngestAt(p, s.cfg.Now())
}

// IngestAt is Ingest with an explicit arrival time — the journal-replay
// entry point: recovery re-ingests each batch at its original wall
// time, so the restored bucket layout (and every windowed query) comes
// back identical, not smeared into the restart instant.
func (s *Store) IngestAt(p *witch.Profile, now time.Time) {
	start := now.Truncate(s.cfg.Window)
	slot := s.slotFor(start)

	s.mu.Lock()
	b := s.ring[slot]
	var expired *bucket
	if b == nil || !b.start.Equal(start) {
		expired = b
		b = &bucket{start: start, agg: agg.NewSized(int(s.bucketHint.Load()))}
		s.ring[slot] = b
		if expired != nil {
			s.pending = append(s.pending, expired)
		}
	}
	// Take the read side before releasing the ring lock so eviction of
	// *this* bucket (a full ring wrap later) cannot fold it while this
	// merge is still landing.
	b.rw.RLock()
	s.mu.Unlock()

	if expired != nil {
		// The expired bucket's cardinality is the best predictor for the
		// next bucket of the same traffic.
		s.bucketHint.Store(int64(expired.agg.PairCount()))
		s.fold(expired)
	}
	b.agg.Merge(p)
	b.rw.RUnlock()
	s.ingested.Add(1)
}

// slotFor maps a bucket start time onto its ring slot.
func (s *Store) slotFor(start time.Time) int {
	slot := int((start.UnixNano() / int64(s.cfg.Window)) % int64(s.cfg.Buckets))
	if slot < 0 {
		slot += s.cfg.Buckets
	}
	return slot
}

// fold waits out in-flight merges on an expired bucket and rolls it up.
// The rollup merge and the bucket's removal from the pending list are
// one atomic step under foldMu, so a concurrent Snapshot sees the
// bucket on exactly one side of the rollup — never both, never neither.
func (s *Store) fold(b *bucket) {
	b.rw.Lock()
	s.foldMu.Lock()
	s.rollup.MergeFrom(b.agg)
	s.mu.Lock()
	for i, p := range s.pending {
		if p == b {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	s.foldMu.Unlock()
	b.rw.Unlock()
	s.evictedBuckets.Add(1)
}

// Query merges every bucket overlapping the trailing window into a
// fresh aggregator and returns it. window <= 0 means everything ever
// ingested, including the rollup of evicted buckets; that path holds
// the fold barrier so a bucket mid-eviction is counted exactly once
// (from whichever side of the rollup it is on), never twice.
func (s *Store) Query(window time.Duration) *agg.Aggregator {
	now := s.cfg.Now()
	out := agg.NewSized(int(s.queryHint.Load()))

	if window <= 0 {
		s.foldMu.Lock()
		defer s.foldMu.Unlock()
	}
	s.mu.Lock()
	live := make([]*bucket, 0, len(s.ring)+len(s.pending))
	for _, b := range append(append([]*bucket(nil), s.ring...), s.pending...) {
		if b == nil {
			continue
		}
		if window > 0 && !b.start.Add(s.cfg.Window).After(now.Add(-window)) {
			continue
		}
		live = append(live, b)
	}
	rollup := s.rollup
	s.mu.Unlock()

	if window <= 0 {
		out.MergeFrom(rollup)
	}
	for _, b := range live {
		out.MergeFrom(b.agg)
	}
	s.queryHint.Store(int64(out.PairCount()))
	return out
}

// snapshotVersion guards the snapshot codec; bump on incompatible
// layout changes so recovery skips (not crashes on) foreign files.
const snapshotVersion = 1

// snapshotFile is the gob image of a store.
type snapshotFile struct {
	Version     int
	Anchor      uint64
	WindowNanos int64
	Ingested    uint64
	Evicted     uint64
	Buckets     []bucketImage
	Rollup      *agg.State
	// Extra is an opaque caller blob carried beside the retention state
	// — witchd stores its idempotency-dedup windows here, so duplicate
	// suppression survives the same snapshot/replay cycle the data
	// does. Absent in pre-extra snapshots (gob leaves it nil).
	Extra []byte
}

// bucketImage is one retention bucket's encoded state.
type bucketImage struct {
	StartUnixNano int64
	State         *agg.State
}

// Snapshot encodes the full retention state — ring, pending folds, and
// rollup — to w. anchor is an opaque caller cursor (witchd stores the
// journal LSN the snapshot covers) and extra an opaque caller blob
// (witchd: dedup windows); both are returned verbatim by Restore.
//
// The fold barrier is held for the duration, so eviction cannot move a
// bucket across the rollup boundary mid-encode: every bucket lands on
// exactly one side (TestSnapshotRacesEviction). Concurrent ingest into
// live buckets remains possible — callers needing an exact cut (witchd
// does, for replay consistency) must quiesce ingest around the call.
func (s *Store) Snapshot(w io.Writer, anchor uint64, extra []byte) error {
	s.foldMu.Lock()
	defer s.foldMu.Unlock()

	s.mu.Lock()
	buckets := make([]*bucket, 0, len(s.ring)+len(s.pending))
	for _, b := range s.ring {
		if b != nil {
			buckets = append(buckets, b)
		}
	}
	buckets = append(buckets, s.pending...)
	rollup := s.rollup
	s.mu.Unlock()

	img := snapshotFile{
		Version:     snapshotVersion,
		Anchor:      anchor,
		WindowNanos: int64(s.cfg.Window),
		Ingested:    s.ingested.Load(),
		Evicted:     s.evictedBuckets.Load(),
		Rollup:      rollup.State(),
		Extra:       extra,
	}
	for _, b := range buckets {
		img.Buckets = append(img.Buckets, bucketImage{
			StartUnixNano: b.start.UnixNano(),
			State:         b.agg.State(),
		})
	}
	if err := gob.NewEncoder(w).Encode(&img); err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	return nil
}

// Restore replaces the store's state with a snapshot, returning the
// caller anchor and extra blob it was written with. Meant for a freshly
// built store
// during recovery, before serving. Buckets that no longer fit the
// ring — a changed window width, or two buckets hashing to one slot
// after a long outage — are folded into the rollup rather than dropped,
// so all-time queries stay exact under any reconfiguration.
func (s *Store) Restore(r io.Reader) (anchor uint64, extra []byte, err error) {
	var img snapshotFile
	if err := gob.NewDecoder(r).Decode(&img); err != nil {
		return 0, nil, fmt.Errorf("store: decoding snapshot: %w", err)
	}
	if img.Version != snapshotVersion {
		return 0, nil, fmt.Errorf("store: snapshot version %d unsupported (this build reads %d)", img.Version, snapshotVersion)
	}

	ring := make([]*bucket, s.cfg.Buckets)
	rollup := agg.FromState(img.Rollup)
	evicted := img.Evicted
	for _, bi := range img.Buckets {
		start := time.Unix(0, bi.StartUnixNano)
		a := agg.FromState(bi.State)
		slot := s.slotFor(start)
		if int64(s.cfg.Window) != img.WindowNanos || ring[slot] != nil {
			// Doesn't fit the current ring geometry: keep the data, lose
			// only its windowing.
			rollup.MergeFrom(a)
			evicted++
			continue
		}
		ring[slot] = &bucket{start: start, agg: a}
	}

	s.foldMu.Lock()
	s.mu.Lock()
	s.ring = ring
	s.rollup = rollup
	s.pending = nil
	s.mu.Unlock()
	s.foldMu.Unlock()
	s.ingested.Store(img.Ingested)
	s.evictedBuckets.Store(evicted)
	return img.Anchor, img.Extra, nil
}

// Stats reports the retention state: live buckets, buckets folded into
// the rollup, profiles ingested, and distinct pair streams held live
// (the figure eviction keeps bounded) plus in the rollup.
type Stats struct {
	Window         time.Duration `json:"window_ns"`
	LiveBuckets    int           `json:"live_buckets"`
	RingSize       int           `json:"ring_size"`
	EvictedBuckets uint64        `json:"evicted_buckets"`
	Ingested       uint64        `json:"ingested_profiles"`
	LivePairs      int           `json:"live_pairs"`
	RollupPairs    int           `json:"rollup_pairs"`
}

// Stats snapshots the retention counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Window:         s.cfg.Window,
		RingSize:       s.cfg.Buckets,
		EvictedBuckets: s.evictedBuckets.Load(),
		Ingested:       s.ingested.Load(),
	}
	s.mu.Lock()
	live := make([]*bucket, 0, len(s.ring))
	for _, b := range s.ring {
		if b != nil {
			live = append(live, b)
		}
	}
	rollup := s.rollup
	s.mu.Unlock()
	st.LiveBuckets = len(live)
	for _, b := range live {
		st.LivePairs += b.agg.PairCount()
	}
	st.RollupPairs = rollup.PairCount()
	return st
}

// Health combines the degradation records of everything held — live
// buckets and rollup — and reports how many profiles contributed.
func (s *Store) Health() (witch.Health, uint64) {
	return s.Query(0).Health()
}
