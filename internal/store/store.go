// Package store gives the witchd aggregation daemon bounded memory
// under indefinite ingest: profiles land in a ring of fixed time-width
// buckets, and when a ring slot is reused its expired bucket is folded
// into a long-tail rollup. Because merge is associative (a sum — see
// internal/agg), folding a bucket into the rollup is exactly the merge
// that would have happened had its profiles been ingested there
// directly: retention changes *where* data lives, never *what* a query
// over it reports.
//
// Each bucket (and the rollup) is partitioned by pusher identity: the
// aggregate a keyed batch lands in is addressable by its pusher ID, so
// the replication layer can export, checksum, and replace exactly one
// pusher's slice of history without touching its neighbours. The empty
// key holds unkeyed (anonymous) ingest. Queries merge every partition,
// so single-node behavior is unchanged by partitioning.
//
// Queries select the live buckets overlapping a trailing window (plus
// the rollup for unbounded queries) and merge them into a fresh
// aggregator, so a query never blocks ingest for longer than the
// per-shard locks it shares.
package store

import (
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agg"
	"repro/witch"
)

// Config sizes the retention ring.
type Config struct {
	// Window is one bucket's time width (default 1 minute).
	Window time.Duration
	// Buckets is the live ring size; data older than Window×Buckets is
	// folded into the rollup (default 60).
	Buckets int
	// Now is the clock, injectable for tests (default time.Now).
	Now func() time.Time
}

// bucket is one retention window's aggregate, partitioned by pusher.
type bucket struct {
	start time.Time
	// rw lets eviction wait out in-flight merges: ingest holds the read
	// side while merging, the evictor takes the write side before
	// folding the bucket into the rollup, so no late merge is lost.
	rw sync.RWMutex
	// mu guards the partition map itself; the aggregators inside are
	// internally locked, so concurrent merges into one partition are
	// safe once the pointer is out.
	mu    sync.Mutex
	parts map[string]*agg.Aggregator
}

func newBucket(start time.Time) *bucket {
	return &bucket{start: start, parts: make(map[string]*agg.Aggregator, 2)}
}

// part returns the partition for id, creating it sized by hint.
func (b *bucket) part(id string, hint int) *agg.Aggregator {
	b.mu.Lock()
	defer b.mu.Unlock()
	a := b.parts[id]
	if a == nil {
		a = agg.NewSized(hint)
		b.parts[id] = a
	}
	return a
}

// snapshotParts copies the partition pointer set under the map lock.
func (b *bucket) snapshotParts() map[string]*agg.Aggregator {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]*agg.Aggregator, len(b.parts))
	for id, a := range b.parts {
		out[id] = a
	}
	return out
}

func (b *bucket) pairCount() int {
	n := 0
	for _, a := range b.snapshotParts() {
		n += a.PairCount()
	}
	return n
}

// Store is the time-bucketed retention layer. Safe for concurrent use.
type Store struct {
	cfg Config

	mu   sync.Mutex
	ring []*bucket
	// pending holds buckets that have been displaced from the ring but
	// whose fold into the rollup has not completed — the window during
	// which a concurrent Snapshot must still see them, or their data
	// would exist nowhere.
	pending []*bucket

	// rollup holds evicted history, partitioned like the buckets. The
	// map (and its aggregators' membership) is touched only under
	// foldMu.
	rollup map[string]*agg.Aggregator

	// foldMu serializes rollup mutation (fold) against Snapshot, so a
	// bucket is always captured on exactly one side of the rollup
	// boundary. Lock order: foldMu before mu; never mu before foldMu.
	foldMu sync.Mutex

	ingested       atomic.Uint64
	evictedBuckets atomic.Uint64

	// bucketHint and queryHint remember recent pair cardinalities —
	// of the last expired bucket and the last Query result — so fresh
	// aggregators pre-size their shard maps instead of growing them
	// incrementally under the merge locks. Hints are advisory: a bad one
	// costs memory or growth, never correctness.
	bucketHint atomic.Int64
	queryHint  atomic.Int64
}

// New builds a store, applying defaults for zero config fields.
func New(cfg Config) *Store {
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 60
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Store{
		cfg:    cfg,
		ring:   make([]*bucket, cfg.Buckets),
		rollup: make(map[string]*agg.Aggregator),
	}
}

// Ingest merges one profile into the current time bucket, evicting any
// expired bucket whose ring slot it reuses.
func (s *Store) Ingest(p *witch.Profile) {
	s.IngestAt(p, s.cfg.Now())
}

// IngestAt is unkeyed IngestKeyedAt — the profile lands in the
// anonymous partition shared by all unidentified senders.
func (s *Store) IngestAt(p *witch.Profile, now time.Time) {
	s.IngestKeyedAt("", p, now)
}

// IngestKeyedAt merges one profile into pusher id's partition of the
// bucket covering now, evicting any expired bucket whose ring slot it
// reuses. The explicit arrival time is the journal-replay contract:
// recovery re-ingests each batch at its original wall time, so the
// restored bucket layout (and every windowed query) comes back
// identical, not smeared into the restart instant.
func (s *Store) IngestKeyedAt(id string, p *witch.Profile, now time.Time) {
	start := now.Truncate(s.cfg.Window)
	slot := s.slotFor(start)

	s.mu.Lock()
	b := s.ring[slot]
	var expired *bucket
	if b == nil || !b.start.Equal(start) {
		expired = b
		b = newBucket(start)
		s.ring[slot] = b
		if expired != nil {
			s.pending = append(s.pending, expired)
		}
	}
	// Take the read side before releasing the ring lock so eviction of
	// *this* bucket (a full ring wrap later) cannot fold it while this
	// merge is still landing.
	b.rw.RLock()
	s.mu.Unlock()

	if expired != nil {
		// The expired bucket's cardinality is the best predictor for the
		// next bucket of the same traffic.
		s.bucketHint.Store(int64(expired.pairCount()))
		s.fold(expired)
	}
	b.part(id, int(s.bucketHint.Load())).Merge(p)
	b.rw.RUnlock()
	s.ingested.Add(1)
}

// slotFor maps a bucket start time onto its ring slot.
func (s *Store) slotFor(start time.Time) int {
	slot := int((start.UnixNano() / int64(s.cfg.Window)) % int64(s.cfg.Buckets))
	if slot < 0 {
		slot += s.cfg.Buckets
	}
	return slot
}

// rollupPart returns the rollup partition for id, creating it. Callers
// must hold foldMu.
func (s *Store) rollupPart(id string) *agg.Aggregator {
	a := s.rollup[id]
	if a == nil {
		a = agg.New()
		s.rollup[id] = a
	}
	return a
}

// fold waits out in-flight merges on an expired bucket and rolls it up
// partition by partition. The rollup merge and the bucket's removal
// from the pending list are one atomic step under foldMu, so a
// concurrent Snapshot sees the bucket on exactly one side of the
// rollup — never both, never neither.
func (s *Store) fold(b *bucket) {
	b.rw.Lock()
	s.foldMu.Lock()
	for id, a := range b.parts {
		s.rollupPart(id).MergeFrom(a)
	}
	s.mu.Lock()
	for i, p := range s.pending {
		if p == b {
			s.pending = append(s.pending[:i], s.pending[i+1:]...)
			break
		}
	}
	s.mu.Unlock()
	s.foldMu.Unlock()
	b.rw.Unlock()
	s.evictedBuckets.Add(1)
}

// liveBuckets collects the ring and pending buckets overlapping the
// trailing window (all of them when window <= 0). Callers own locking.
func (s *Store) liveBuckets(window time.Duration, now time.Time) []*bucket {
	s.mu.Lock()
	defer s.mu.Unlock()
	live := make([]*bucket, 0, len(s.ring)+len(s.pending))
	for _, b := range append(append([]*bucket(nil), s.ring...), s.pending...) {
		if b == nil {
			continue
		}
		if window > 0 && !b.start.Add(s.cfg.Window).After(now.Add(-window)) {
			continue
		}
		live = append(live, b)
	}
	return live
}

// Query merges every partition of every bucket overlapping the trailing
// window into a fresh aggregator and returns it. window <= 0 means
// everything ever ingested, including the rollup of evicted buckets;
// that path holds the fold barrier so a bucket mid-eviction is counted
// exactly once (from whichever side of the rollup it is on), never
// twice.
func (s *Store) Query(window time.Duration) *agg.Aggregator {
	now := s.cfg.Now()
	out := agg.NewSized(int(s.queryHint.Load()))

	if window <= 0 {
		s.foldMu.Lock()
		defer s.foldMu.Unlock()
	}
	live := s.liveBuckets(window, now)

	if window <= 0 {
		for _, a := range s.rollup {
			out.MergeFrom(a)
		}
	}
	for _, b := range live {
		for _, a := range b.snapshotParts() {
			out.MergeFrom(a)
		}
	}
	s.queryHint.Store(int64(out.PairCount()))
	return out
}

// QueryPartition is Query restricted to one pusher's partition.
func (s *Store) QueryPartition(id string, window time.Duration) *agg.Aggregator {
	now := s.cfg.Now()
	out := agg.New()

	if window <= 0 {
		s.foldMu.Lock()
		defer s.foldMu.Unlock()
	}
	live := s.liveBuckets(window, now)

	if window <= 0 {
		if a := s.rollup[id]; a != nil {
			out.MergeFrom(a)
		}
	}
	for _, b := range live {
		b.mu.Lock()
		a := b.parts[id]
		b.mu.Unlock()
		if a != nil {
			out.MergeFrom(a)
		}
	}
	return out
}

// Partitions lists the pusher IDs holding data anywhere in the store
// (ring, pending folds, or rollup), sorted. The anonymous partition is
// omitted: it is not addressable for replication.
func (s *Store) Partitions() []string {
	s.foldMu.Lock()
	defer s.foldMu.Unlock()
	seen := make(map[string]bool)
	for id := range s.rollup {
		seen[id] = true
	}
	for _, b := range s.liveBuckets(0, time.Time{}) {
		b.mu.Lock()
		for id := range b.parts {
			seen[id] = true
		}
		b.mu.Unlock()
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		if id != "" {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Export is the per-partition view of a trailing window, the unit the
// cluster scatter plane ships between nodes: the anonymous partition
// plus every pusher partition, each already merged across buckets.
type Export struct {
	Unkeyed *agg.State
	Parts   map[string]*agg.State
}

// Export builds the per-partition window view. window <= 0 includes the
// rollup under the fold barrier, like Query.
func (s *Store) Export(window time.Duration) *Export {
	now := s.cfg.Now()
	if window <= 0 {
		s.foldMu.Lock()
		defer s.foldMu.Unlock()
	}
	live := s.liveBuckets(window, now)

	accs := make(map[string]*agg.Aggregator)
	acc := func(id string) *agg.Aggregator {
		a := accs[id]
		if a == nil {
			a = agg.New()
			accs[id] = a
		}
		return a
	}
	if window <= 0 {
		for id, a := range s.rollup {
			acc(id).MergeFrom(a)
		}
	}
	for _, b := range live {
		for id, a := range b.snapshotParts() {
			acc(id).MergeFrom(a)
		}
	}

	out := &Export{Parts: make(map[string]*agg.State, len(accs))}
	for id, a := range accs {
		if id == "" {
			out.Unkeyed = a.State()
			continue
		}
		out.Parts[id] = a.State()
	}
	return out
}

// PartitionBucket is one bucket's slice of a partition image.
type PartitionBucket struct {
	StartUnixNano int64
	State         *agg.State
}

// PartitionImage is the transferable whole of one pusher's history —
// bucket-structured so the receiver can rebuild the same windowed
// layout, rollup included. It is what anti-entropy repair ships.
type PartitionImage struct {
	WindowNanos int64
	Buckets     []PartitionBucket
	Rollup      *agg.State
}

// PartitionImage captures pusher id's full state. Callers needing an
// exact cut must quiesce ingest for that pusher around the call (witchd
// holds its persistence apply barrier).
func (s *Store) PartitionImage(id string) *PartitionImage {
	s.foldMu.Lock()
	defer s.foldMu.Unlock()
	img := &PartitionImage{WindowNanos: int64(s.cfg.Window)}
	if a := s.rollup[id]; a != nil {
		img.Rollup = a.State()
	}
	for _, b := range s.liveBuckets(0, time.Time{}) {
		b.mu.Lock()
		a := b.parts[id]
		b.mu.Unlock()
		if a != nil {
			img.Buckets = append(img.Buckets, PartitionBucket{
				StartUnixNano: b.start.UnixNano(),
				State:         a.State(),
			})
		}
	}
	return img
}

// ReplacePartition discards pusher id's local history everywhere and
// installs the image in its place — the adoption step of anti-entropy
// repair. Image buckets that no longer fit the ring geometry are folded
// into the rollup partition, mirroring Restore. Callers needing an
// exact cut (no concurrent ingest for id) must quiesce around the call.
func (s *Store) ReplacePartition(id string, img *PartitionImage) {
	s.foldMu.Lock()
	defer s.foldMu.Unlock()

	// Only the partition-map locks are taken here (never b.rw, whose
	// order relative to foldMu belongs to fold): with ingest quiesced
	// per the contract, no merge can be holding a discarded partition.
	for _, b := range s.liveBuckets(0, time.Time{}) {
		b.mu.Lock()
		delete(b.parts, id)
		b.mu.Unlock()
	}
	delete(s.rollup, id)
	if img == nil {
		return
	}

	if img.Rollup != nil {
		s.rollupPart(id).MergeState(img.Rollup)
	}
	for _, pb := range img.Buckets {
		start := time.Unix(0, pb.StartUnixNano)
		slot := s.slotFor(start)
		s.mu.Lock()
		b := s.ring[slot]
		fits := img.WindowNanos == int64(s.cfg.Window) && (b == nil || b.start.Equal(start))
		if fits && b == nil {
			b = newBucket(start)
			s.ring[slot] = b
		}
		s.mu.Unlock()
		if !fits {
			// Doesn't fit the current ring geometry: keep the data, lose
			// only its windowing.
			s.rollupPart(id).MergeState(pb.State)
			continue
		}
		b.part(id, 0).MergeState(pb.State)
	}
}

// snapshotVersion guards the snapshot codec; bump on incompatible
// layout changes so recovery skips (not crashes on) foreign files.
// Partition maps were added as new gob fields without a bump: old
// snapshots load with everything in the anonymous partition, new
// snapshots load in old builds with keyed data ignored — acceptable
// only because deployments snapshot locally and never downgrade.
const snapshotVersion = 1

// snapshotFile is the gob image of a store.
type snapshotFile struct {
	Version     int
	Anchor      uint64
	WindowNanos int64
	Ingested    uint64
	Evicted     uint64
	Buckets     []bucketImage
	// Rollup holds the anonymous rollup partition; RollupParts the
	// keyed ones (absent in pre-partition snapshots — gob leaves nil).
	Rollup      *agg.State
	RollupParts map[string]*agg.State
	// Extra is an opaque caller blob carried beside the retention state
	// — witchd stores its idempotency-dedup windows here, so duplicate
	// suppression survives the same snapshot/replay cycle the data
	// does. Absent in pre-extra snapshots (gob leaves it nil).
	Extra []byte
}

// bucketImage is one retention bucket's encoded state: the anonymous
// partition in State, keyed partitions in Parts.
type bucketImage struct {
	StartUnixNano int64
	State         *agg.State
	Parts         map[string]*agg.State
}

// Snapshot trailer: an 8-byte suffix [CRC-32C of everything before it]
// [magic], so a truncated or bit-flipped snapshot is detected at load
// time instead of decoding into silently wrong aggregates (gob detects
// truncation but not payload corruption). The magic discriminates
// trailer-less legacy snapshots, which are accepted unverified.
const snapTrailerMagic = 0x57534e31 // "WSN1"

var snapCRCTable = crc32.MakeTable(crc32.Castagnoli)

// crcWriter tees writes through a running CRC-32C.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, snapCRCTable, p[:n])
	return n, err
}

// Snapshot encodes the full retention state — ring, pending folds, and
// rollup, partition structure included — to w, followed by the CRC-32C
// trailer. anchor is an opaque caller cursor (witchd stores the journal
// LSN the snapshot covers) and extra an opaque caller blob (witchd:
// dedup windows); both are returned verbatim by Restore.
//
// The fold barrier is held for the duration, so eviction cannot move a
// bucket across the rollup boundary mid-encode: every bucket lands on
// exactly one side (TestSnapshotRacesEviction). Concurrent ingest into
// live buckets remains possible — callers needing an exact cut (witchd
// does, for replay consistency) must quiesce ingest around the call.
func (s *Store) Snapshot(w io.Writer, anchor uint64, extra []byte) error {
	s.foldMu.Lock()
	defer s.foldMu.Unlock()

	buckets := s.liveBuckets(0, time.Time{})

	img := snapshotFile{
		Version:     snapshotVersion,
		Anchor:      anchor,
		WindowNanos: int64(s.cfg.Window),
		Ingested:    s.ingested.Load(),
		Evicted:     s.evictedBuckets.Load(),
		Extra:       extra,
	}
	for id, a := range s.rollup {
		if id == "" {
			img.Rollup = a.State()
			continue
		}
		if img.RollupParts == nil {
			img.RollupParts = make(map[string]*agg.State)
		}
		img.RollupParts[id] = a.State()
	}
	for _, b := range buckets {
		bi := bucketImage{StartUnixNano: b.start.UnixNano()}
		for id, a := range b.snapshotParts() {
			if id == "" {
				bi.State = a.State()
				continue
			}
			if bi.Parts == nil {
				bi.Parts = make(map[string]*agg.State)
			}
			bi.Parts[id] = a.State()
		}
		img.Buckets = append(img.Buckets, bi)
	}

	cw := &crcWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(&img); err != nil {
		return fmt.Errorf("store: encoding snapshot: %w", err)
	}
	var trailer [8]byte
	binary.BigEndian.PutUint32(trailer[0:4], cw.crc)
	binary.BigEndian.PutUint32(trailer[4:8], snapTrailerMagic)
	if _, err := w.Write(trailer[:]); err != nil {
		return fmt.Errorf("store: writing snapshot trailer: %w", err)
	}
	return nil
}

// Restore replaces the store's state with a snapshot, returning the
// caller anchor and extra blob it was written with. Meant for a freshly
// built store during recovery, before serving. The CRC-32C trailer is
// verified when present (legacy trailer-less snapshots are accepted);
// a mismatch returns an error so recovery can fall back to the
// next-newest snapshot instead of loading corrupt aggregates. Buckets
// that no longer fit the ring — a changed window width, or two buckets
// hashing to one slot after a long outage — are folded into the rollup
// rather than dropped, so all-time queries stay exact under any
// reconfiguration.
func (s *Store) Restore(r io.Reader) (anchor uint64, extra []byte, err error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return 0, nil, fmt.Errorf("store: reading snapshot: %w", err)
	}
	if n := len(data); n >= 8 && binary.BigEndian.Uint32(data[n-4:]) == snapTrailerMagic {
		want := binary.BigEndian.Uint32(data[n-8 : n-4])
		body := data[:n-8]
		if got := crc32.Checksum(body, snapCRCTable); got != want {
			return 0, nil, fmt.Errorf("store: snapshot checksum mismatch: crc32c %08x, trailer says %08x", got, want)
		}
		data = body
	}
	var img snapshotFile
	if err := gob.NewDecoder(byteReader(data)).Decode(&img); err != nil {
		return 0, nil, fmt.Errorf("store: decoding snapshot: %w", err)
	}
	if img.Version != snapshotVersion {
		return 0, nil, fmt.Errorf("store: snapshot version %d unsupported (this build reads %d)", img.Version, snapshotVersion)
	}

	ring := make([]*bucket, s.cfg.Buckets)
	rollup := make(map[string]*agg.Aggregator)
	rollupFor := func(id string) *agg.Aggregator {
		a := rollup[id]
		if a == nil {
			a = agg.New()
			rollup[id] = a
		}
		return a
	}
	if img.Rollup != nil {
		rollup[""] = agg.FromState(img.Rollup)
	}
	for id, st := range img.RollupParts {
		rollupFor(id).MergeState(st)
	}
	evicted := img.Evicted
	for _, bi := range img.Buckets {
		start := time.Unix(0, bi.StartUnixNano)
		parts := make(map[string]*agg.Aggregator, len(bi.Parts)+1)
		if bi.State != nil {
			parts[""] = agg.FromState(bi.State)
		}
		for id, st := range bi.Parts {
			parts[id] = agg.FromState(st)
		}
		slot := s.slotFor(start)
		if int64(s.cfg.Window) != img.WindowNanos || ring[slot] != nil {
			// Doesn't fit the current ring geometry: keep the data, lose
			// only its windowing.
			for id, a := range parts {
				rollupFor(id).MergeFrom(a)
			}
			evicted++
			continue
		}
		ring[slot] = &bucket{start: start, parts: parts}
	}

	s.foldMu.Lock()
	s.mu.Lock()
	s.ring = ring
	s.pending = nil
	s.mu.Unlock()
	s.rollup = rollup
	s.foldMu.Unlock()
	s.ingested.Store(img.Ingested)
	s.evictedBuckets.Store(evicted)
	return img.Anchor, img.Extra, nil
}

// byteReader avoids re-buffering an already in-memory snapshot.
type byteSlice struct {
	b []byte
	i int
}

func byteReader(b []byte) io.Reader { return &byteSlice{b: b} }

func (r *byteSlice) Read(p []byte) (int, error) {
	if r.i >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.i:])
	r.i += n
	return n, nil
}

// Stats reports the retention state: live buckets, buckets folded into
// the rollup, profiles ingested, and distinct pair streams held live
// (the figure eviction keeps bounded) plus in the rollup, and the
// number of addressable pusher partitions.
type Stats struct {
	Window         time.Duration `json:"window_ns"`
	LiveBuckets    int           `json:"live_buckets"`
	RingSize       int           `json:"ring_size"`
	EvictedBuckets uint64        `json:"evicted_buckets"`
	Ingested       uint64        `json:"ingested_profiles"`
	LivePairs      int           `json:"live_pairs"`
	RollupPairs    int           `json:"rollup_pairs"`
	Partitions     int           `json:"partitions"`
}

// Stats snapshots the retention counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Window:         s.cfg.Window,
		RingSize:       s.cfg.Buckets,
		EvictedBuckets: s.evictedBuckets.Load(),
		Ingested:       s.ingested.Load(),
	}
	s.foldMu.Lock()
	live := s.liveBuckets(0, time.Time{})
	seen := make(map[string]bool)
	for id, a := range s.rollup {
		st.RollupPairs += a.PairCount()
		if id != "" {
			seen[id] = true
		}
	}
	st.LiveBuckets = len(live)
	for _, b := range live {
		for id, a := range b.snapshotParts() {
			st.LivePairs += a.PairCount()
			if id != "" {
				seen[id] = true
			}
		}
	}
	s.foldMu.Unlock()
	st.Partitions = len(seen)
	return st
}

// Health combines the degradation records of everything held — live
// buckets and rollup — and reports how many profiles contributed.
func (s *Store) Health() (witch.Health, uint64) {
	return s.Query(0).Health()
}
