// Package store gives the witchd aggregation daemon bounded memory
// under indefinite ingest: profiles land in a ring of fixed time-width
// buckets (each an internal/agg aggregator), and when a ring slot is
// reused its expired bucket is folded into a single long-tail rollup
// aggregator. Because merge is associative (a sum — see internal/agg),
// folding a bucket into the rollup is exactly the merge that would have
// happened had its profiles been ingested there directly: retention
// changes *where* data lives, never *what* a query over it reports.
//
// Queries select the live buckets overlapping a trailing window (plus
// the rollup for unbounded queries) and merge them into a fresh
// aggregator, so a query never blocks ingest for longer than the
// per-shard locks it shares.
package store

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agg"
	"repro/witch"
)

// Config sizes the retention ring.
type Config struct {
	// Window is one bucket's time width (default 1 minute).
	Window time.Duration
	// Buckets is the live ring size; data older than Window×Buckets is
	// folded into the rollup (default 60).
	Buckets int
	// Now is the clock, injectable for tests (default time.Now).
	Now func() time.Time
}

// bucket is one retention window's aggregate.
type bucket struct {
	start time.Time
	agg   *agg.Aggregator
	// rw lets eviction wait out in-flight merges: ingest holds the read
	// side while merging, the evictor takes the write side before
	// folding the bucket into the rollup, so no late merge is lost.
	rw sync.RWMutex
}

// Store is the time-bucketed retention layer. Safe for concurrent use.
type Store struct {
	cfg Config

	mu     sync.Mutex
	ring   []*bucket
	rollup *agg.Aggregator

	ingested       atomic.Uint64
	evictedBuckets atomic.Uint64
}

// New builds a store, applying defaults for zero config fields.
func New(cfg Config) *Store {
	if cfg.Window <= 0 {
		cfg.Window = time.Minute
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = 60
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Store{
		cfg:    cfg,
		ring:   make([]*bucket, cfg.Buckets),
		rollup: agg.New(),
	}
}

// Ingest merges one profile into the current time bucket, evicting any
// expired bucket whose ring slot it reuses.
func (s *Store) Ingest(p *witch.Profile) {
	now := s.cfg.Now()
	start := now.Truncate(s.cfg.Window)
	slot := int((start.UnixNano() / int64(s.cfg.Window)) % int64(s.cfg.Buckets))
	if slot < 0 {
		slot += s.cfg.Buckets
	}

	s.mu.Lock()
	b := s.ring[slot]
	var expired *bucket
	if b == nil || !b.start.Equal(start) {
		expired = b
		b = &bucket{start: start, agg: agg.New()}
		s.ring[slot] = b
	}
	// Take the read side before releasing the ring lock so eviction of
	// *this* bucket (a full ring wrap later) cannot fold it while this
	// merge is still landing.
	b.rw.RLock()
	s.mu.Unlock()

	if expired != nil {
		s.fold(expired)
	}
	b.agg.Merge(p)
	b.rw.RUnlock()
	s.ingested.Add(1)
}

// fold waits out in-flight merges on an expired bucket and rolls it up.
func (s *Store) fold(b *bucket) {
	b.rw.Lock()
	s.rollup.MergeFrom(b.agg)
	b.rw.Unlock()
	s.evictedBuckets.Add(1)
}

// Query merges every bucket overlapping the trailing window into a
// fresh aggregator and returns it. window <= 0 means everything ever
// ingested, including the rollup of evicted buckets.
func (s *Store) Query(window time.Duration) *agg.Aggregator {
	now := s.cfg.Now()
	out := agg.New()

	s.mu.Lock()
	live := make([]*bucket, 0, len(s.ring))
	for _, b := range s.ring {
		if b == nil {
			continue
		}
		if window > 0 && !b.start.Add(s.cfg.Window).After(now.Add(-window)) {
			continue
		}
		live = append(live, b)
	}
	rollup := s.rollup
	s.mu.Unlock()

	if window <= 0 {
		out.MergeFrom(rollup)
	}
	for _, b := range live {
		out.MergeFrom(b.agg)
	}
	return out
}

// Stats reports the retention state: live buckets, buckets folded into
// the rollup, profiles ingested, and distinct pair streams held live
// (the figure eviction keeps bounded) plus in the rollup.
type Stats struct {
	Window         time.Duration `json:"window_ns"`
	LiveBuckets    int           `json:"live_buckets"`
	RingSize       int           `json:"ring_size"`
	EvictedBuckets uint64        `json:"evicted_buckets"`
	Ingested       uint64        `json:"ingested_profiles"`
	LivePairs      int           `json:"live_pairs"`
	RollupPairs    int           `json:"rollup_pairs"`
}

// Stats snapshots the retention counters.
func (s *Store) Stats() Stats {
	st := Stats{
		Window:         s.cfg.Window,
		RingSize:       s.cfg.Buckets,
		EvictedBuckets: s.evictedBuckets.Load(),
		Ingested:       s.ingested.Load(),
	}
	s.mu.Lock()
	live := make([]*bucket, 0, len(s.ring))
	for _, b := range s.ring {
		if b != nil {
			live = append(live, b)
		}
	}
	rollup := s.rollup
	s.mu.Unlock()
	st.LiveBuckets = len(live)
	for _, b := range live {
		st.LivePairs += b.agg.PairCount()
	}
	st.RollupPairs = rollup.PairCount()
	return st
}

// Health combines the degradation records of everything held — live
// buckets and rollup — and reports how many profiles contributed.
func (s *Store) Health() (witch.Health, uint64) {
	return s.Query(0).Health()
}
