package witch_test

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/craft"
	"repro/internal/exhaustive"
	"repro/internal/machine"
	"repro/internal/witch"
	"repro/internal/workloads"
)

// runDead profiles a program with DeadCraft under the given config.
func runDead(t *testing.T, prog func() *machine.Machine, cfg witch.Config) *witch.Result {
	t.Helper()
	m := prog()
	p := witch.NewProfiler(m, craft.NewDeadCraft(), cfg)
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func listing2Machine(regs int) func() *machine.Machine {
	return func() *machine.Machine {
		return machine.New(workloads.Listing2(20000), machine.Config{NumDebugRegs: regs})
	}
}

// TestReservoirDetectsLongDistanceDeadStores is the paper's Listing 2
// claim: naive replace-oldest detects no dead stores because every i-loop
// watchpoint is replaced before the j-loop arrives, while reservoir
// sampling keeps survivors.
func TestReservoirDetectsLongDistanceDeadStores(t *testing.T) {
	// A single pass of Listing 2 yields ~N·ln2 expected detections
	// (survival analysis in §4.1), so aggregate across seeds: reservoir
	// must detect in aggregate, replace-oldest must detect nothing ever.
	var reservoir, oldest, coin float64
	for seed := int64(0); seed < 20; seed++ {
		r := runDead(t, listing2Machine(1), witch.Config{Period: 100, Policy: witch.PolicyReservoir, Seed: seed})
		reservoir += r.Waste
		o := runDead(t, listing2Machine(1), witch.Config{Period: 100, Policy: witch.PolicyReplaceOldest, Seed: seed})
		oldest += o.Waste
		c := runDead(t, listing2Machine(1), witch.Config{Period: 100, Policy: witch.PolicyCoinFlip, Seed: seed})
		coin += c.Waste
	}
	if reservoir == 0 {
		t.Fatal("reservoir should detect dead stores in Listing 2")
	}
	if oldest != 0 {
		t.Fatalf("replace-oldest should miss all dead stores, got waste %v", oldest)
	}
	if coin >= reservoir {
		t.Fatalf("coin flip (%v) should detect less than reservoir (%v)", coin, reservoir)
	}
}

// TestReservoirUniformSurvival property-checks §4.1: after k samples since
// the register was last free, each of the k samples survives with the same
// N/k probability.
func TestReservoirUniformSurvival(t *testing.T) {
	const n = 1 // debug registers
	const k = 12
	const trials = 30000
	counts := make([]int, k)
	rng := newTestRand(42)
	for trial := 0; trial < trials; trial++ {
		survivor := -1
		samplesSinceEmpty := 0
		for s := 0; s < k; s++ {
			samplesSinceEmpty++
			if survivor < 0 {
				survivor = s
				continue
			}
			// Replace with probability N/k.
			if rng.Float64() < float64(n)/float64(samplesSinceEmpty) {
				survivor = s
			}
		}
		counts[survivor]++
	}
	want := float64(trials) / float64(k)
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("sample %d survived %d times, want ~%.0f", i, c, want)
		}
	}
}

// TestReservoirProbabilityClamped property-checks the arming probability
// is always in (0,1] for any k ≥ 1, N ≥ 1.
func TestReservoirProbabilityClamped(t *testing.T) {
	f := func(n8, k8 uint8) bool {
		n, k := int(n8%8)+1, uint64(k8)+1
		p := float64(n) / float64(k)
		if k <= uint64(n) {
			p = 1
		}
		if p > 1 {
			p = 1
		}
		return p > 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestDeadCraftMatchesDeadSpy compares the sampled metric against the
// exhaustive ground truth on a suite benchmark (the Figure 4 property).
func TestDeadCraftMatchesDeadSpy(t *testing.T) {
	sp, ok := workloads.SuiteSpec("gcc")
	if !ok {
		t.Fatal("missing suite spec")
	}
	prog := sp.Build(1)

	spy, err := exhaustive.Run(machine.New(prog, machine.Config{}), exhaustive.NewDeadSpy(prog))
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(prog, machine.Config{})
	res, err := witch.NewProfiler(m, craft.NewDeadCraft(), witch.Config{Period: 500, Seed: 7}).Run()
	if err != nil {
		t.Fatal(err)
	}
	gt, got := spy.Redundancy(), res.Redundancy()
	if math.Abs(gt-got) > 0.10 {
		t.Fatalf("DeadCraft %.3f vs DeadSpy %.3f differ by more than 10pp", got, gt)
	}
	if gt < 0.4 { // gcc is built to be dead-store heavy
		t.Fatalf("ground truth dead fraction unexpectedly low: %.3f", gt)
	}
}

// TestProportionalAttributionListing3 checks §4.2: with proportional
// attribution, the sparse array pair and the dense *p/*q pair receive
// comparable dead-write mass (each region has the same number of dead
// stores); without it, the dense pair dominates.
func TestProportionalAttributionListing3(t *testing.T) {
	run := func(disable bool) (sparse, dense float64) {
		// Aggregate over seeds: sampling phase varies per seed.
		for seed := int64(0); seed < 5; seed++ {
			m := machine.New(workloads.Listing3(4000, 10), machine.Config{})
			p := witch.NewProfiler(m, craft.NewDeadCraft(), witch.Config{Period: 97, Seed: seed, DisableProportional: disable})
			res, err := p.Run()
			if err != nil {
				t.Fatal(err)
			}
			// Classify pairs by the source store's line: Listing 3
			// places the aliased *p/*q stores at lines 7 and 8.
			prog := m.Prog
			for _, pr := range res.Tree.Pairs() {
				in := prog.InstrAt(pr.SrcPC)
				if in == nil {
					continue
				}
				if in.Line == 7 || in.Line == 8 {
					dense += pr.Waste
				} else {
					sparse += pr.Waste
				}
			}
		}
		return sparse, dense
	}
	sparseOn, denseOn := run(false)
	sparseOff, denseOff := run(true)
	shareOn := sparseOn / (sparseOn + denseOn)
	shareOff := sparseOff / (sparseOff + denseOff)
	// Each region produces the same count of dead stores per outer
	// iteration (n array[i] kills + n *p kills), so the sparse share
	// should be ~2/3 (i- and j-loop pairs) with proportional attribution
	// and collapse toward 0 without it.
	if shareOn < 0.4 {
		t.Fatalf("proportional attribution sparse share = %.3f, want > 0.4", shareOn)
	}
	if shareOff >= shareOn/2 {
		t.Fatalf("without proportional attribution sparse share should collapse: on=%.3f off=%.3f", shareOn, shareOff)
	}
}

// TestBlindSpotTracked ensures the blind-spot statistic is populated and
// small on a trap-dense workload.
func TestBlindSpotTracked(t *testing.T) {
	sp, _ := workloads.SuiteSpec("gcc")
	m := machine.New(sp.Build(1), machine.Config{})
	res, err := witch.NewProfiler(m, craft.NewDeadCraft(), witch.Config{Period: 200, Seed: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Samples == 0 {
		t.Fatal("no samples")
	}
	if res.BlindSpotFrac() > 0.05 {
		t.Fatalf("blind spot fraction = %.4f, want small", res.BlindSpotFrac())
	}
}

// TestSpuriousTrapsOnlyWithoutAltStack reproduces Figure 3 end to end.
func TestSpuriousTrapsOnlyWithoutAltStack(t *testing.T) {
	run := func(disableAlt bool) uint64 {
		m := machine.New(workloads.StackSignals(400), machine.Config{})
		res, err := witch.NewProfiler(m, craft.NewDeadCraft(), witch.Config{Period: 23, Seed: 5, DisableAltStack: disableAlt}).Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Stats.SpuriousTraps
	}
	if got := run(true); got == 0 {
		t.Fatal("expected spurious traps on the application stack")
	}
	if got := run(false); got != 0 {
		t.Fatalf("alt stack should eliminate spurious traps, got %d", got)
	}
}

// TestDeterminism: same seed, same result; different seed, (almost surely)
// different sample survivors but similar totals.
func TestDeterminism(t *testing.T) {
	r1 := runDead(t, listing2Machine(4), witch.Config{Period: 100, Seed: 9})
	r2 := runDead(t, listing2Machine(4), witch.Config{Period: 100, Seed: 9})
	if r1.Waste != r2.Waste || r1.Use != r2.Use || r1.Stats != r2.Stats {
		t.Fatal("same seed must reproduce identical results")
	}
}

// TestFdReuseWithFastModify verifies IOC_MODIFY keeps fd opens at ~number
// of debug registers, while the fallback reopens constantly.
func TestFdReuseWithFastModify(t *testing.T) {
	fast := runDead(t, listing2Machine(4), witch.Config{Period: 100, Seed: 2})
	slow := runDead(t, listing2Machine(4), witch.Config{Period: 100, Seed: 2, DisableFastModify: true})
	if fast.Stats.Opens > 8 {
		t.Fatalf("fast modify should reuse fds, opens = %d", fast.Stats.Opens)
	}
	if slow.Stats.Opens <= fast.Stats.Opens {
		t.Fatalf("fallback should open many fds, got %d", slow.Stats.Opens)
	}
	if fast.Stats.Modifies == 0 {
		t.Fatal("fast path should use modify")
	}
}

// TestLBRReducesDisassembly verifies the precise-PC ablation does less
// decoding work with the LBR.
func TestLBRReducesDisassembly(t *testing.T) {
	lbr := runDead(t, listing2Machine(4), witch.Config{Period: 100, Seed: 2})
	noLBR := runDead(t, listing2Machine(4), witch.Config{Period: 100, Seed: 2, DisableLBR: true})
	if lbr.Stats.DisasmInstrs >= noLBR.Stats.DisasmInstrs {
		t.Fatalf("LBR should decode fewer instructions: %d vs %d",
			lbr.Stats.DisasmInstrs, noLBR.Stats.DisasmInstrs)
	}
	// Both must agree on the metric: precise-PC recovery is exact either
	// way in this ISA.
	if lbr.Waste != noLBR.Waste {
		t.Fatalf("precise-PC strategy must not change attribution: %v vs %v", lbr.Waste, noLBR.Waste)
	}
}

// newTestRand returns a deterministic float64 source for the survival
// property test.
func newTestRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}
