package witch_test

import (
	"testing"

	"repro/internal/craft"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/witch"
)

// TestNoMemoryTraffic: a program with no loads or stores produces an
// empty, well-formed profile.
func TestNoMemoryTraffic(t *testing.T) {
	b := isa.NewBuilder("alu")
	f := b.Func("main")
	f.LoopN(isa.R1, 1000, func(fb *isa.FuncBuilder) {
		fb.AddImm(isa.R2, isa.R2, 3)
	})
	f.Halt()
	m := machine.New(b.MustBuild(), machine.Config{})
	res, err := witch.NewProfiler(m, craft.NewDeadCraft(), witch.Config{Period: 10, Seed: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Samples != 0 || res.Waste != 0 || res.Use != 0 {
		t.Fatalf("expected empty profile: %+v", res.Stats)
	}
	if res.Redundancy() != 0 {
		t.Fatal("redundancy of nothing must be 0")
	}
}

// TestWatchpointsNeverTrap: streaming writes (no address revisited) arm
// watchpoints that never fire; the run must finish with zero attribution
// and a growing blind spot.
func TestWatchpointsNeverTrap(t *testing.T) {
	b := isa.NewBuilder("stream")
	f := b.Func("main")
	f.LoopN(isa.R1, 5000, func(fb *isa.FuncBuilder) {
		fb.MulImm(isa.R5, isa.R1, 8)
		fb.AddImm(isa.R5, isa.R5, 0x100000)
		fb.Store(isa.R5, 0, isa.R1, 8)
	})
	f.Halt()
	m := machine.New(b.MustBuild(), machine.Config{})
	res, err := witch.NewProfiler(m, craft.NewDeadCraft(), witch.Config{Period: 13, Seed: 1}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Traps != 0 {
		t.Fatalf("streaming writes should never trap, got %d", res.Stats.Traps)
	}
	if res.Waste != 0 || res.Use != 0 {
		t.Fatal("no attribution expected")
	}
	if res.Stats.MaxBlindSpot == 0 {
		t.Fatal("with all registers pinned on dead addresses, blind spots must appear")
	}
}

// TestPartialOverlapAttribution: an 8-byte watched store killed by a
// 2-byte overlapping store attributes exactly the overlap.
func TestPartialOverlapAttribution(t *testing.T) {
	b := isa.NewBuilder("partial")
	f := b.Func("main")
	f.MovImm(isa.R1, 0x1000)
	f.LoopN(isa.R9, 1000, func(fb *isa.FuncBuilder) {
		fb.Store(isa.R1, 0, isa.R9, 8) // watched 8-byte store
		fb.Store(isa.R1, 4, isa.R9, 2) // kills bytes 4..6 only
	})
	f.Halt()
	m := machine.New(b.MustBuild(), machine.Config{})
	res, err := witch.NewProfiler(m, craft.NewDeadCraft(), witch.Config{Period: 7, Seed: 1, DisableProportional: true}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Waste == 0 {
		t.Fatal("expected partial-overlap waste")
	}
	// With proportional off, each trap contributes overlap × period, so
	// waste must be a multiple of 2 × period (the overlap is 2 bytes).
	period := float64(7)
	per := 2 * period
	if rem := res.Waste / per; rem != float64(int(rem)) {
		t.Fatalf("waste %v is not a multiple of overlap×period %v", res.Waste, per)
	}
}

// TestNearestPrime covers the period-rounding helper.
func TestNearestPrime(t *testing.T) {
	cases := map[uint64]uint64{
		0: 2, 1: 2, 2: 2, 3: 3, 4: 3, 6: 5, 8: 7, 9: 7, 10: 11,
		100: 101, 5000: 4999, 10000: 10007, 100000: 100003,
	}
	for in, want := range cases {
		if got := witch.NearestPrime(in); got != want {
			t.Errorf("NearestPrime(%d) = %d, want %d", in, got, want)
		}
	}
}
