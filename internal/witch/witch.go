// Package witch implements the paper's primary contribution: a lightweight
// framework that observes a program's consecutive accesses to the same
// memory location by pairing PMU samples with hardware debug registers.
//
// On each precise PMU sample the framework interns the sampled calling
// context, offers the triplet ⟨C_watch, M, AccessType⟩ to the client tool,
// and — subject to the reservoir replacement scheme that §4.1 introduces to
// overcome the fixed number of debug registers — arms a watchpoint at M.
// When the program next touches M the watchpoint traps; the framework
// recovers the precise trapping PC, interns ⟨C_trap⟩, computes the
// proportional attribution scale of §4.2, and hands the trap to the client,
// which classifies it as waste or use and charges the ordered context pair.
//
// Clients (the "witchcraft" tools — DeadCraft, SilentCraft, LoadCraft and
// the false-sharing extension) live in internal/craft.
package witch

import (
	"math/rand"
	"time"

	"repro/internal/cct"
	"repro/internal/fault"
	"repro/internal/hwdebug"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/perfevent"
	"repro/internal/pmu"
)

// Policy selects the watchpoint replacement strategy when all debug
// registers are busy. The paper's contribution is the reservoir policy;
// the other two are the strawmen §4.1 argues against and exist so the
// Figure 2 experiment can show why they fail.
type Policy uint8

// Replacement policies.
const (
	// PolicyReservoir gives every sample since a register was last free
	// the same N/k survival probability (the paper's scheme).
	PolicyReservoir Policy = iota
	// PolicyReplaceOldest always evicts the oldest armed watchpoint.
	PolicyReplaceOldest
	// PolicyCoinFlip arms each new sample with probability 1/2, evicting
	// a random victim.
	PolicyCoinFlip
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyReplaceOldest:
		return "replace-oldest"
	case PolicyCoinFlip:
		return "coin-flip"
	default:
		return "reservoir"
	}
}

// Config controls a Profiler. The zero value (plus a Period) is full
// Witch: reservoir replacement, proportional attribution, fast watchpoint
// replacement, LBR precise-PC recovery, and an alternate signal stack;
// the Disable* fields exist for the paper's ablation experiments.
type Config struct {
	// Period is the PMU sampling period (events per sample).
	Period uint64
	// Policy is the replacement policy (default reservoir).
	Policy Policy
	// Seed feeds the deterministic PRNG driving replacement decisions.
	Seed int64

	// DisableProportional turns off context-sensitive proportional
	// attribution (§4.2); each trap then represents exactly one sample.
	DisableProportional bool
	// DisableFastModify falls back to close+reopen when reprogramming a
	// watchpoint (pre-IOC_MODIFY_ATTRIBUTES kernels).
	DisableFastModify bool
	// DisableLBR recovers precise PCs by disassembling from the function
	// entry instead of the last LBR branch target.
	DisableLBR bool
	// DisableAltStack delivers profiling signals on the application
	// stack, re-exposing the Figure 3 spurious-trap hazard.
	DisableAltStack bool
	// IBS switches the PMU to AMD-style instruction-based sampling: the
	// period counts all retired instructions and overflows tagging
	// non-matching instructions are dropped (§3 notes Witch ports to
	// IBS directly).
	IBS bool

	// Faults injects substrate failures (EBUSY arms, Modify fallbacks,
	// ring overflow, dropped sample signals, LBR outages). The zero
	// plan is provably inert: no injector is built and every fault
	// branch in the substrate is skipped.
	Faults fault.Plan
}

// Arm-failure degradation parameters: a sample retries a failed arm a
// bounded number of times (real Witch retries perf_event_open a couple of
// times before giving the sample up), a failing register backs off for
// exponentially more samples between attempts, and after enough
// consecutive failures the register is considered externally held (a
// debugger or another tool owns it) and is removed from the rotation.
const (
	maxArmAttempts  = 3
	deadRegStreak   = 3
	maxBackoffShift = 6 // backoff caps at 2^6 samples
)

// Sample is the framework's view of one PMU sample, offered to the client.
type Sample struct {
	Kind   pmu.AccessKind
	PC     isa.PC
	Addr   uint64
	Width  uint8
	Value  uint64
	Float  bool
	Thread *machine.Thread
	// Ctx is C_watch: the interned calling context of the sample.
	Ctx *cct.Node
}

// ArmRequest is the client's answer to a sample: whether to watch, what
// trap condition to use, and optionally a derived address/length (a client
// may watch an address derived from the sampled one; footnote 1 in §4).
type ArmRequest struct {
	Arm    bool
	Kind   hwdebug.Kind
	Addr   uint64 // 0 means the sampled address
	Len    uint8  // 0 means the sampled access width
	Cookie any    // returned verbatim in the trap
}

// TrapAction is the client's answer to a trap.
type TrapAction uint8

// Trap actions.
const (
	// ActionDisarm frees the debug register (and resets the reservoir
	// probability to 1, per §4.1).
	ActionDisarm TrapAction = iota
	// ActionKeep leaves the watchpoint armed (hardware watchpoints
	// persist across traps); LoadCraft uses this to ignore the spurious
	// store traps RW_TRAP produces.
	ActionKeep
)

// Trap is the framework's view of one watchpoint exception.
type Trap struct {
	Kind      pmu.AccessKind
	ContextPC isa.PC // PC after the access, as the signal context shows
	PrecisePC isa.PC // recovered trapping PC
	Addr      uint64
	Width     uint8
	Value     uint64 // post-access memory bits
	Float     bool
	Overlap   uint8 // overlapping bytes between access and watchpoint
	Thread    *machine.Thread

	// WatchAddr/WatchLen/Cookie echo the arm-time programming; WatchCtx
	// is C_watch and Ctx is C_trap.
	WatchAddr uint64
	WatchLen  uint8
	Cookie    any
	WatchCtx  *cct.Node
	Ctx       *cct.Node

	// Spurious marks a kernel signal-frame write hitting the watchpoint
	// (the Figure 3 hazard; only occurs with DisableAltStack).
	Spurious bool

	// scaleBytes is (μ−η)·Period, the number of events one attributed
	// byte of this trap stands for. It is computed lazily on the first
	// attribution so that traps the client drops (e.g. LoadCraft's
	// spurious store traps) do not consume the watch context's
	// accumulated samples.
	scaleBytes float64
	scaled     bool
	fromSame   int
	pair       *cct.Node
	p          *Profiler
}

// Scale returns the events-per-byte attribution factor for this trap,
// computing the proportional catch-up (η ← μ) on first call. When PMU
// overflow signals have been lost (dropped or coalesced delivery), each
// delivered sample stands for proportionally more events, so the scale
// is inflated by (delivered+lost)/delivered — folding the drop
// accounting into the §4.2 μ/η machinery keeps total attribution
// unbiased under sample loss. With zero losses the factor is exactly 1
// and is never applied.
func (tr *Trap) Scale() float64 {
	if tr.scaled {
		return tr.scaleBytes
	}
	tr.scaled = true
	represented := 1.0
	if !tr.p.cfg.DisableProportional {
		if d := (tr.WatchCtx.Mu - tr.WatchCtx.Eta) / float64(tr.fromSame); d > 1 {
			represented = d
		}
		tr.WatchCtx.Eta += represented
	}
	tr.scaleBytes = represented * float64(tr.p.cfg.Period)
	if lost := tr.p.lostSignals(); lost > 0 {
		if delivered := tr.p.stats.Samples; delivered > 0 {
			tr.scaleBytes *= float64(delivered+lost) / float64(delivered)
		}
	}
	return tr.scaleBytes
}

// pairNode lazily interns the synthetic ⟨C_watch, C_trap⟩ chain.
func (tr *Trap) pairNode() *cct.Node {
	if tr.pair == nil {
		tr.pair = tr.p.tree.PairNode(tr.WatchCtx, tr.Ctx)
	}
	return tr.pair
}

// AttributeWaste charges bytes of wasted work (scaled) to the pair.
func (tr *Trap) AttributeWaste(bytes float64) {
	tr.pairNode().Waste += bytes * tr.Scale()
}

// AttributeUse charges bytes of useful work (scaled) to the pair.
func (tr *Trap) AttributeUse(bytes float64) {
	tr.pairNode().Use += bytes * tr.Scale()
}

// Client is a witchcraft tool.
type Client interface {
	// Name identifies the tool in reports.
	Name() string
	// Event selects the precise PMU event driving sampling.
	Event() pmu.Event
	// OnSample is called on every PMU sample with ⟨C_watch, M,
	// AccessType⟩; the return value controls watchpoint arming.
	OnSample(s *Sample) ArmRequest
	// OnTrap is called when an armed watchpoint fires with ⟨C_trap, M,
	// AccessType⟩ and the arm-time cookie.
	OnTrap(tr *Trap) TrapAction
}

// armRecord is the profiler's bookkeeping for one debug register.
type armRecord struct {
	active   bool
	fd       *perfevent.WatchFD
	addr     uint64
	length   uint8
	kind     hwdebug.Kind
	cookie   any
	watchCtx *cct.Node

	// Degradation state: consecutive arm failures on this register, the
	// sample count before which it is in backoff, and whether it has
	// been written off as externally held.
	failStreak int
	retryAt    uint64
	dead       bool
}

// threadState is per-thread profiler state.
type threadState struct {
	t    *machine.Thread
	regs []armRecord
	// k counts samples since a debug register was last empty (§4.1).
	k uint64
	// rr is the replace-oldest rotor.
	rr int
	// effective counts registers not yet written off as dead; the
	// reservoir invariant is maintained over this shrunken N.
	effective int
	// blind-spot tracking: current and max runs of unmonitored samples.
	curBlind, maxBlind uint64
	samples            uint64
}

// Stats aggregates framework-level counters.
type Stats struct {
	Samples       uint64
	Monitored     uint64 // samples that armed a watchpoint
	Traps         uint64
	SpuriousTraps uint64
	MaxBlindSpot  uint64 // longest run of unmonitored samples (any thread)
	Opens         uint64 // watchpoint fd opens
	Closes        uint64
	Modifies      uint64
	DisasmInstrs  uint64 // instructions decoded for precise-PC recovery
}

// Health reports how honestly the profile can be trusted: every counter
// is zero and every flag false on a fault-free run, and a degraded run
// says exactly which substrate failures it absorbed and how. The
// framework degrades rather than dies — retrying failed arms with
// deterministic backoff, shrinking the effective debug-register set
// (with the §4.1 reservoir reset so the N/k invariant holds for the
// registers that remain), and rescaling attribution for lost sample
// signals — and Health is the record of those adaptations.
type Health struct {
	// SignalsLost counts PMU overflow signals that never reached the
	// profiler (dropped/coalesced delivery). Attribution is rescaled by
	// (delivered+lost)/delivered so the metric stays unbiased.
	SignalsLost uint64
	// RingLost counts trap records lost to ring-buffer overflow before
	// they ever landed (the kernel wrapped first). Overwrite-mode loss of
	// already-consumed trap history is not counted here — it costs the
	// profile nothing — but remains visible in the session's RingLost
	// stat.
	RingLost uint64
	// ArmFailures counts samples abandoned after exhausting arm retries;
	// ArmRetries counts the extra attempts that preceded success or
	// abandonment.
	ArmFailures uint64
	ArmRetries  uint64
	// ModifyFallbacks counts Modify calls forced onto the close+reopen
	// slow path; LBROutages counts precise-PC recoveries that had to
	// disassemble from the function entry.
	ModifyFallbacks uint64
	LBROutages      uint64

	// ConfiguredRegs is the per-thread debug-register count the run was
	// configured with; EffectiveRegs is the smallest count any thread
	// ended with after writing off busy registers.
	ConfiguredRegs int
	EffectiveRegs  int

	// Degraded-mode flags.
	RegistersShrunk bool // some thread lost registers at runtime
	SampleLoss      bool // signal drops forced attribution rescaling
	Degraded        bool // any of the above, or any counter nonzero
}

// degraded reports whether any degradation was observed.
func (h *Health) degraded() bool {
	return h.RegistersShrunk || h.SampleLoss ||
		h.SignalsLost > 0 || h.RingLost > 0 || h.ArmFailures > 0 ||
		h.ArmRetries > 0 || h.ModifyFallbacks > 0 || h.LBROutages > 0
}

// Result is what a profiling run produces.
type Result struct {
	Tool   string
	Tree   *cct.Tree
	Waste  float64
	Use    float64
	Stats  Stats
	Health Health

	// WallTime is the monitored execution's wall-clock time; ToolBytes
	// is the profiler-attributable resident memory (CCT + rings + arm
	// state); both feed Table 1/2 overhead accounting.
	WallTime  time.Duration
	ToolBytes uint64

	// Native machine counters for rate computations.
	Instrs, Loads, Stores uint64
}

// Redundancy returns the paper's Equation 1 metric
// D = Σwaste / (Σwaste + Σuse), in [0,1].
func (r *Result) Redundancy() float64 {
	if r.Waste+r.Use == 0 {
		return 0
	}
	return r.Waste / (r.Waste + r.Use)
}

// BlindSpotFrac returns the largest blind-spot window as a fraction of all
// samples (§4.1 reports <0.02% typical, 0.5% worst case).
func (r *Result) BlindSpotFrac() float64 {
	if r.Stats.Samples == 0 {
		return 0
	}
	return float64(r.Stats.MaxBlindSpot) / float64(r.Stats.Samples)
}

// Profiler runs one client tool over one machine.
type Profiler struct {
	cfg    Config
	m      *machine.Machine
	sess   *perfevent.Session
	tree   *cct.Tree
	client Client
	rng    *rand.Rand
	states map[int]*threadState
	stats  Stats
	faults *fault.Injector
	health Health
}

// NearestPrime returns the prime closest to n (ties go down). The paper's
// evaluation uses the nearest prime to each nominal sampling interval —
// the recommended practice in PMU sampling — because a composite period
// can resonate with loop structure: e.g. an even period sampling an
// alternating two-store loop body only ever sees one of the two lines.
func NearestPrime(n uint64) uint64 {
	if n < 3 {
		return 2
	}
	isPrime := func(x uint64) bool {
		if x%2 == 0 {
			return x == 2
		}
		for d := uint64(3); d*d <= x; d += 2 {
			if x%d == 0 {
				return false
			}
		}
		return true
	}
	for delta := uint64(0); ; delta++ {
		if delta < n && isPrime(n-delta) {
			return n - delta
		}
		if isPrime(n + delta) {
			return n + delta
		}
	}
}

// NewProfiler wires a profiler to a machine. The machine must not have
// run yet. The configured period is rounded to the nearest prime, as in
// the paper's evaluation.
func NewProfiler(m *machine.Machine, client Client, cfg Config) *Profiler {
	if cfg.Period == 0 {
		cfg.Period = 1000
	}
	cfg.Period = NearestPrime(cfg.Period)
	p := &Profiler{
		cfg:    cfg,
		m:      m,
		client: client,
		tree:   cct.New(m.Prog),
		rng:    rand.New(rand.NewSource(cfg.Seed + 1)),
		states: make(map[int]*threadState),
		faults: fault.NewInjector(cfg.Faults), // nil for the zero plan
	}
	p.sess = perfevent.NewSession(m, perfevent.Options{
		FastModify: !cfg.DisableFastModify,
		UseLBR:     !cfg.DisableLBR,
		Faults:     p.faults,
	})
	m.SetAltStack(!cfg.DisableAltStack)
	p.sess.OpenSampling(client.Event(), cfg.Period, p.handleSample)
	p.sess.SetTrapDispatch(p.handleTrap)
	// Seed-dependent sampling phase: runs with different seeds observe
	// different sample points, as real runs do (§7 stability).
	for _, t := range m.Threads {
		t.PMU.Skew(p.rng.Uint64())
		if cfg.IBS {
			t.PMU.Mode = pmu.ModeIBS
		}
		if p.faults != nil {
			t.PMU.DropSignal = func() bool { return p.faults.Should(fault.SignalDrop) }
		}
	}
	return p
}

// Tree exposes the profiler's CCT (for reports and tests).
func (p *Profiler) Tree() *cct.Tree { return p.tree }

// state returns (creating) the per-thread state.
func (p *Profiler) state(t *machine.Thread) *threadState {
	st := p.states[t.ID]
	if st == nil {
		n := t.Watch.NumRegs()
		st = &threadState{t: t, regs: make([]armRecord, n), effective: n}
		p.states[t.ID] = st
	}
	return st
}

// handleSample implements the §4 sample flow and §4.1 reservoir scheme.
func (p *Profiler) handleSample(t *machine.Thread, s pmu.Sample) {
	st := p.state(t)
	st.samples++
	p.stats.Samples++
	st.k++

	ctx := p.tree.NodeForContext(t.Frames(), s.PC)
	if !p.cfg.DisableProportional {
		ctx.Mu++
	}

	req := p.client.OnSample(&Sample{
		Kind: s.Kind, PC: s.PC, Addr: s.Addr, Width: s.Width,
		Value: s.Value, Float: s.Float, Thread: t, Ctx: ctx,
	})
	monitored := false
	if req.Arm {
		monitored = p.tryArm(t, st, ctx, &s, req)
	}
	if monitored {
		p.stats.Monitored++
		st.curBlind = 0
	} else {
		st.curBlind++
		if st.curBlind > st.maxBlind {
			st.maxBlind = st.curBlind
			if st.maxBlind > p.stats.MaxBlindSpot {
				p.stats.MaxBlindSpot = st.maxBlind
			}
		}
	}
}

// freeReg returns the first register that is inactive and currently
// armable (not dead, not in backoff), or -1. With no degradation this is
// exactly hwdebug's first-inactive scan.
func (st *threadState) freeReg() int {
	for i := range st.regs {
		rec := &st.regs[i]
		if !rec.active && !rec.dead && rec.retryAt <= st.samples {
			return i
		}
	}
	return -1
}

// victims returns the registers eligible for policy replacement: the
// currently-armed ones. Dead and backed-off registers hold no watchpoint
// and are not victims. With no degradation this is every register
// (freeReg already returned -1), preserving the fault-free behaviour bit
// for bit.
func (st *threadState) victims() []int {
	out := make([]int, 0, len(st.regs))
	for i := range st.regs {
		if st.regs[i].active {
			out = append(out, i)
		}
	}
	return out
}

// tryArm applies the replacement policy and programs a debug register,
// degrading gracefully when the substrate refuses: a bounded number of
// retries per sample, exponential per-register backoff across samples,
// and after deadRegStreak consecutive failures the register is written
// off and the reservoir restarts over the registers that remain.
func (p *Profiler) tryArm(t *machine.Thread, st *threadState, ctx *cct.Node, s *pmu.Sample, req ArmRequest) bool {
	n := st.effective
	if n == 0 {
		// Fully degraded: every register is externally held. The run
		// continues unmonitored and Health says so.
		return false
	}
	reg := st.freeReg()
	if reg < 0 {
		victims := st.victims()
		if len(victims) == 0 {
			// No free register and nothing armed to replace (all
			// candidates are backing off); skip this sample.
			return false
		}
		switch p.cfg.Policy {
		case PolicyReplaceOldest:
			for !st.regs[st.rr].active {
				st.rr = (st.rr + 1) % len(st.regs)
			}
			reg = st.rr
			st.rr = (st.rr + 1) % len(st.regs)
		case PolicyCoinFlip:
			if p.rng.Intn(2) == 0 {
				return false
			}
			reg = victims[p.rng.Intn(len(victims))]
		default: // reservoir: survive with probability N/k over live regs
			if st.k > uint64(n) && p.rng.Float64() >= float64(n)/float64(st.k) {
				return false
			}
			reg = victims[p.rng.Intn(len(victims))]
		}
	}
	addr, length := req.Addr, req.Len
	if addr == 0 {
		addr = s.Addr
	}
	if length == 0 {
		length = s.Width
	}
	rec := &st.regs[reg]
	var err error
	for attempt := 0; attempt < maxArmAttempts; attempt++ {
		if attempt > 0 {
			p.health.ArmRetries++
		}
		if rec.fd != nil {
			// Modify's injected failure path closes the old fd before
			// reopening, so on error rec.fd correctly becomes nil.
			rec.fd, err = rec.fd.Modify(addr, length, req.Kind, req.Cookie, s.Seq)
		} else {
			rec.fd, err = p.sess.CreateWatchpoint(t, reg, addr, length, req.Kind, req.Cookie, s.Seq)
		}
		if err == nil {
			rec.failStreak = 0
			rec.active = true
			rec.addr, rec.length, rec.kind = addr, length, req.Kind
			rec.cookie = req.Cookie
			rec.watchCtx = ctx
			return true
		}
	}
	// Retries exhausted (EBUSY persisted): the sample goes unmonitored
	// and the register backs off — deterministically, doubling per
	// consecutive failure — before it is tried again. A register that
	// keeps failing is externally held; write it off.
	p.health.ArmFailures++
	rec.active = false
	rec.failStreak++
	if rec.failStreak >= deadRegStreak {
		p.disableReg(st, reg)
	} else {
		shift := rec.failStreak
		if shift > maxBackoffShift {
			shift = maxBackoffShift
		}
		rec.retryAt = st.samples + (uint64(1) << shift)
	}
	return false
}

// disableReg removes a register from the rotation after persistent arm
// failures. The reservoir count k resets so §4.1's N/k survival invariant
// holds exactly for the N′ registers that remain.
func (p *Profiler) disableReg(st *threadState, i int) {
	rec := &st.regs[i]
	if rec.dead {
		return
	}
	if rec.fd != nil {
		rec.fd.Close()
		rec.fd = nil
	}
	rec.active = false
	rec.dead = true
	st.effective--
	st.k = 0
	p.health.RegistersShrunk = true
}

// handleTrap implements the §4 trap flow and §4.2 proportional scaling.
func (p *Profiler) handleTrap(t *machine.Thread, tr hwdebug.Trap) {
	st := p.state(t)
	rec := &st.regs[tr.Reg]
	if !rec.active {
		// A trap racing a replacement of the same register; drop it.
		return
	}
	if tr.KernelView {
		p.stats.SpuriousTraps++
	} else {
		p.stats.Traps++
	}
	// The kernel appends a PERF_RECORD_SAMPLE-style record to the
	// event's ring buffer on every trap (§5); tools that want raw trap
	// history can drain it.
	rec.fd.RecordTrap(tr, p.stats.Traps)

	precise := tr.ContextPC
	if !tr.KernelView {
		if pc, err := p.sess.PrecisePC(t, tr.ContextPC); err == nil {
			precise = pc
		}
	}
	trapCtx := p.tree.NodeForContext(t.Frames(), precise)

	// Proportional attribution (§4.2): this trap stands for the samples
	// its watch context accumulated since the last trap there, split
	// across watchpoints simultaneously armed from that context. The
	// catch-up itself happens lazily in Trap.Scale.
	fromSame := 0
	for i := range st.regs {
		if st.regs[i].active && st.regs[i].watchCtx == rec.watchCtx {
			fromSame++
		}
	}
	if fromSame == 0 {
		fromSame = 1
	}

	info := &Trap{
		Kind:      pmu.AccessKind(tr.Kind),
		ContextPC: tr.ContextPC,
		PrecisePC: precise,
		Addr:      tr.Addr, Width: tr.Width, Value: tr.Value, Float: tr.Float,
		Overlap: tr.Overlap, Thread: t,
		WatchAddr: rec.addr, WatchLen: rec.length, Cookie: rec.cookie,
		WatchCtx: rec.watchCtx, Ctx: trapCtx,
		Spurious: tr.KernelView,
		fromSame: fromSame,
		p:        p,
	}
	if p.client.OnTrap(info) == ActionDisarm {
		rec.fd.Disarm()
		rec.active = false
		// Reservoir probability resets to 1 (§4.1): the next sample
		// finds a free register and is monitored for certain.
		st.k = 0
	}
}

// lostSignals sums PMU overflow signals that never reached the profiler.
func (p *Profiler) lostSignals() uint64 {
	var n uint64
	for _, t := range p.m.Threads {
		n += t.PMU.LostSignals
	}
	return n
}

// assembleHealth finalizes the run's Health block from the profiler's
// own counters, the session's, and the per-thread register states.
func (p *Profiler) assembleHealth() Health {
	h := p.health
	sst := p.sess.Stats()
	h.SignalsLost = p.lostSignals()
	// Natural overwrite-mode loss (undrained trap history, still visible
	// in Session.Stats().RingLost) is by design and costs the profile
	// nothing: every trap was consumed synchronously before its record
	// could be overwritten. Only a record that never landed degrades the
	// run.
	h.RingLost = p.faults.Injected(fault.RingOverflow)
	h.ModifyFallbacks = sst.ModifyFallbacks
	h.LBROutages = sst.LBROutages
	h.ConfiguredRegs = p.m.Config().NumDebugRegs
	h.EffectiveRegs = h.ConfiguredRegs
	for _, st := range p.states {
		if st.effective < h.EffectiveRegs {
			h.EffectiveRegs = st.effective
		}
	}
	h.SampleLoss = h.SignalsLost > 0
	h.Degraded = h.degraded()
	return h
}

// Run executes the machine to completion under monitoring and returns the
// profile.
func (p *Profiler) Run() (*Result, error) {
	start := time.Now()
	if err := p.m.Run(); err != nil {
		return nil, err
	}
	wall := time.Since(start)

	sst := p.sess.Stats()
	p.stats.Opens, p.stats.Closes, p.stats.Modifies, p.stats.DisasmInstrs =
		sst.Opens, sst.Closes, sst.Modifies, sst.DisasmInstrs

	waste, use := p.tree.Totals()
	// Profiler-resident memory: the CCT, kernel ring buffers, and the
	// per-thread arm records.
	var armBytes uint64
	for _, st := range p.states {
		armBytes += uint64(len(st.regs)) * 64
	}
	res := &Result{
		Tool:      p.client.Name(),
		Tree:      p.tree,
		Waste:     waste,
		Use:       use,
		Stats:     p.stats,
		Health:    p.assembleHealth(),
		WallTime:  wall,
		ToolBytes: p.tree.Bytes() + p.sess.RingBytes() + armBytes,
	}
	for _, t := range p.m.Threads {
		res.Instrs += t.Instrs
		res.Loads += t.Loads
		res.Stores += t.Stores
	}
	return res, nil
}
