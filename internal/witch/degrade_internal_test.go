package witch

import (
	"math"
	"testing"

	"repro/internal/hwdebug"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/pmu"
	"repro/internal/workloads"
)

// stubClient arms a watchpoint on every sample. It exists because this
// in-package test cannot import internal/craft (craft imports witch).
type stubClient struct{}

func (stubClient) Name() string                { return "stub" }
func (stubClient) Event() pmu.Event            { return pmu.EventAllStores }
func (stubClient) OnSample(*Sample) ArmRequest { return ArmRequest{Arm: true, Kind: hwdebug.WTrap} }
func (stubClient) OnTrap(*Trap) TrapAction     { return ActionDisarm }

// feed drives one synthetic PMU sample through the profiler's sample
// handler, as if the overflow signal had just been delivered.
func feed(p *Profiler, t *machine.Thread, addr uint64) {
	p.handleSample(t, pmu.Sample{
		Kind: pmu.Store, PC: isa.MakePC(0, 0), Addr: addr, Width: 8,
	})
}

// TestReservoirInvariantAfterShrink property-checks §4.1 under
// degradation: after a register is written off at runtime (persistent
// EBUSY — here an externally reserved debug register), every subsequent
// sample must survive in the reservoir with probability N′/k over the N′
// registers that remain. The write-off resets k, so the invariant holds
// exactly for the shrunken set; without the reset, survival would be
// biased by samples counted against the larger register file.
func TestReservoirInvariantAfterShrink(t *testing.T) {
	m := machine.New(workloads.Listing2(100), machine.Config{NumDebugRegs: 4})
	p := NewProfiler(m, stubClient{}, Config{Period: 100, Seed: 11})
	th := m.Threads[0]

	// An external agent (another debugger, the kernel) holds register 3:
	// every arm on it returns EBUSY.
	th.Watch.Reserve(3)

	// Warm up until the profiler writes the register off: first failure
	// backs off 2 samples, the second 4, the third kills it.
	st := p.state(th)
	for i := 0; st.effective > 3; i++ {
		if i > 100 {
			t.Fatal("register never written off")
		}
		feed(p, th, 0x9000+uint64(i)*8)
	}
	if !st.regs[3].dead {
		t.Fatal("reserved register should be dead")
	}
	if st.k != 0 {
		t.Fatalf("write-off must reset the reservoir count, k = %d", st.k)
	}
	if p.health.ArmFailures == 0 || p.health.ArmRetries == 0 {
		t.Fatalf("health must record the failed arms: %+v", p.health)
	}

	// Property: feed K distinct-address samples per trial and count which
	// survive armed. Each should survive with probability N′/K.
	const nPrime = 3
	const K = 12
	const trials = 4000
	counts := make([]int, K)
	for trial := 0; trial < trials; trial++ {
		for i := range st.regs {
			rec := &st.regs[i]
			if rec.fd != nil {
				rec.fd.Close()
				rec.fd = nil
			}
			rec.active = false
		}
		st.k = 0
		base := 0x10000 + uint64(trial)*0x100
		for s := 0; s < K; s++ {
			feed(p, th, base+uint64(s)*8)
		}
		for i := range st.regs {
			rec := &st.regs[i]
			if !rec.active {
				continue
			}
			counts[int(rec.addr-base)/8]++
		}
	}
	want := float64(trials) * nPrime / K
	sigma := math.Sqrt(float64(trials) * (nPrime / float64(K)) * (1 - nPrime/float64(K)))
	for s, c := range counts {
		if math.Abs(float64(c)-want) > 5*sigma {
			t.Fatalf("sample %d survived %d/%d times, want ~%.0f (±%.0f)", s, c, trials, want, 5*sigma)
		}
	}
}

// TestFullyDegradedRunsUnmonitored checks the profiler keeps running
// (and says so) when every debug register is externally held.
func TestFullyDegradedRunsUnmonitored(t *testing.T) {
	m := machine.New(workloads.Listing2(2000), machine.Config{NumDebugRegs: 2})
	p := NewProfiler(m, stubClient{}, Config{Period: 97, Seed: 3})
	for _, th := range m.Threads {
		th.Watch.Reserve(0)
		th.Watch.Reserve(1)
	}
	res, err := p.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Samples == 0 {
		t.Fatal("sampling must continue without registers")
	}
	if res.Stats.Monitored != 0 || res.Stats.Traps != 0 {
		t.Fatalf("nothing should be monitored: %+v", res.Stats)
	}
	h := res.Health
	if h.EffectiveRegs != 0 || !h.RegistersShrunk || !h.Degraded || h.ArmFailures == 0 {
		t.Fatalf("health must report full degradation: %+v", h)
	}
	if h.ConfiguredRegs != 2 {
		t.Fatalf("configured regs = %d, want 2", h.ConfiguredRegs)
	}
}
