// Differential and property tests over randomly generated programs.
package progen_test

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/craft"
	"repro/internal/exhaustive"
	"repro/internal/machine"
	"repro/internal/progen"
	"repro/internal/witch"
)

// gen builds a random program for a seed.
func gen(seed int64) *machine.Machine {
	rng := rand.New(rand.NewSource(seed))
	prog := progen.Generate(rng, progen.Config{})
	return machine.New(prog, machine.Config{MaxSteps: 20_000_000})
}

// TestGeneratedProgramsValidateAndTerminate: every generated program is
// structurally valid and halts within the step budget.
func TestGeneratedProgramsValidateAndTerminate(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		m := gen(seed)
		if err := m.Prog.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := m.Run(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestMachineDeterminism: the same program produces identical architectural
// state across runs.
func TestMachineDeterminism(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		m1, m2 := gen(seed), gen(seed)
		if err := m1.Run(); err != nil {
			t.Fatal(err)
		}
		if err := m2.Run(); err != nil {
			t.Fatal(err)
		}
		t1, t2 := m1.Threads[0], m2.Threads[0]
		if t1.Regs != t2.Regs {
			t.Fatalf("seed %d: diverging register state", seed)
		}
		if t1.Instrs != t2.Instrs || t1.Loads != t2.Loads || t1.Stores != t2.Stores {
			t.Fatalf("seed %d: diverging retirement counts", seed)
		}
	}
}

// TestDisassembleReassembleEquivalence: disassembling a generated program
// and reassembling the text yields a program with identical execution.
func TestDisassembleReassembleEquivalence(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		m1 := gen(seed)
		text := asm.Disassemble(m1.Prog)
		prog2, err := asm.Assemble("roundtrip.wa", text)
		if err != nil {
			t.Fatalf("seed %d: reassemble: %v\n%s", seed, err, text)
		}
		m2 := machine.New(prog2, machine.Config{MaxSteps: 20_000_000})
		if err := m1.Run(); err != nil {
			t.Fatal(err)
		}
		if err := m2.Run(); err != nil {
			t.Fatal(err)
		}
		if m1.Threads[0].Instrs != m2.Threads[0].Instrs {
			t.Fatalf("seed %d: instruction counts differ: %d vs %d",
				seed, m1.Threads[0].Instrs, m2.Threads[0].Instrs)
		}
		if m1.Threads[0].Regs != m2.Threads[0].Regs {
			t.Fatalf("seed %d: register state differs after round trip", seed)
		}
	}
}

// TestSpiesAreDeterministic: exhaustive tools produce identical metrics on
// repeated runs of the same random program.
func TestSpiesAreDeterministic(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		run := func() (float64, float64) {
			m := gen(seed)
			res, err := exhaustive.Run(m, exhaustive.NewDeadSpy(m.Prog))
			if err != nil {
				t.Fatal(err)
			}
			return res.Waste, res.Use
		}
		w1, u1 := run()
		w2, u2 := run()
		if w1 != w2 || u1 != u2 {
			t.Fatalf("seed %d: DeadSpy nondeterministic: (%v,%v) vs (%v,%v)", seed, w1, u1, w2, u2)
		}
	}
}

// TestCraftsNeverExceedInvariants: on arbitrary programs the sampling
// tools must (a) not crash, (b) keep Equation-1 metrics in [0,1], (c) be
// reproducible for a fixed seed, and (d) report waste only if traps
// happened.
func TestCraftsNeverExceedInvariants(t *testing.T) {
	clients := []witch.Client{craft.NewDeadCraft(), craft.NewSilentCraft(), craft.NewLoadCraft()}
	for seed := int64(0); seed < 12; seed++ {
		for _, cl := range clients {
			run := func() *witch.Result {
				m := gen(seed)
				res, err := witch.NewProfiler(m, cl, witch.Config{Period: 41, Seed: seed}).Run()
				if err != nil {
					t.Fatalf("seed %d %s: %v", seed, cl.Name(), err)
				}
				return res
			}
			r1 := run()
			if d := r1.Redundancy(); d < 0 || d > 1 {
				t.Fatalf("seed %d %s: redundancy %v out of range", seed, cl.Name(), d)
			}
			if r1.Waste > 0 && r1.Stats.Traps == 0 {
				t.Fatalf("seed %d %s: waste without traps", seed, cl.Name())
			}
			r2 := run()
			if r1.Waste != r2.Waste || r1.Use != r2.Use {
				t.Fatalf("seed %d %s: nondeterministic", seed, cl.Name())
			}
		}
	}
}

// TestDeadCraftNeverFalselyAccuses is the §4.3 no-false-positives claim on
// random programs: every dead store DeadCraft reports must also be
// reported dead by exhaustive DeadSpy (pairwise agreement on the source
// location set).
func TestDeadCraftNeverFalselyAccuses(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		m := gen(seed)
		spy, err := exhaustive.Run(m, exhaustive.NewDeadSpy(m.Prog))
		if err != nil {
			t.Fatal(err)
		}
		spyDead := map[string]bool{}
		for _, p := range spy.Tree.Pairs() {
			if p.Waste > 0 {
				spyDead[p.Src] = true
			}
		}
		m2 := gen(seed)
		res, err := witch.NewProfiler(m2, craft.NewDeadCraft(), witch.Config{Period: 23, Seed: seed}).Run()
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range res.Tree.Pairs() {
			if p.Waste > 0 && !spyDead[p.Src] {
				t.Fatalf("seed %d: DeadCraft accuses %s which DeadSpy never saw dead", seed, p.Src)
			}
		}
	}
}
