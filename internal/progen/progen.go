// Package progen generates random, valid, terminating programs for
// property-based and differential testing: the machine must execute any
// generated program deterministically, the assembler must round-trip it,
// and the profiling tools must never crash, mis-account, or diverge
// between runs on it. This is the fuzzing half of the test suite — the
// paper's tools run on arbitrary optimized binaries, so the framework has
// to be robust to arbitrary access patterns, not just the curated
// workloads.
package progen

import (
	"math/rand"

	"repro/internal/isa"
)

// Config bounds the generated program.
type Config struct {
	// Funcs is the number of functions besides main.
	Funcs int
	// BlocksPerFunc bounds straight-line blocks per function.
	BlocksPerFunc int
	// LoopIters bounds generated loop trip counts.
	LoopIters int64
	// DataBytes is the size of the shared data region programs access.
	DataBytes int64
}

// defaults fills zero fields.
func (c *Config) defaults() {
	if c.Funcs == 0 {
		c.Funcs = 4
	}
	if c.BlocksPerFunc == 0 {
		c.BlocksPerFunc = 4
	}
	if c.LoopIters == 0 {
		c.LoopIters = 60
	}
	if c.DataBytes == 0 {
		c.DataBytes = 1 << 14
	}
}

const dataBase = 0x4000_0000

// widths the generator picks from.
var widths = []uint8{1, 2, 4, 8}

// Generate returns a random valid program. Programs always terminate:
// loops are counted (LoopN), calls form a DAG (functions only call
// higher-numbered functions), and every function ends in ret/halt.
func Generate(rng *rand.Rand, cfg Config) *isa.Program {
	cfg.defaults()
	b := isa.NewBuilder("progen")

	// Function call DAG: main (index 0 in our naming) may call f1..fN,
	// fi may call fj for j > i.
	names := make([]string, cfg.Funcs+1)
	names[0] = "main"
	for i := 1; i <= cfg.Funcs; i++ {
		names[i] = "f" + string(rune('0'+i))
	}
	// Declare in reverse so callees exist before callers? The builder
	// resolves forward references, so declaration order is free; keep
	// main first for readability.
	for i := 0; i <= cfg.Funcs; i++ {
		fb := b.Func(names[i])
		blocks := 1 + rng.Intn(cfg.BlocksPerFunc)
		for blk := 0; blk < blocks; blk++ {
			emitBlock(rng, cfg, fb, i, names)
		}
		if i == 0 {
			fb.Halt()
		} else {
			fb.Ret()
		}
	}
	b.SetEntry("main")
	return b.MustBuild()
}

// emitBlock emits one random block: either straight-line ALU/memory ops,
// a counted loop over memory, or a call to a later function.
func emitBlock(rng *rand.Rand, cfg Config, fb *isa.FuncBuilder, fnIdx int, names []string) {
	switch rng.Intn(5) {
	case 0: // straight-line ops
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			emitOp(rng, cfg, fb)
		}
	case 1: // counted memory loop
		iters := 1 + rng.Int63n(cfg.LoopIters)
		stride := int64(widths[rng.Intn(len(widths))])
		base := dataBase + rng.Int63n(cfg.DataBytes/2)
		w := widths[rng.Intn(len(widths))]
		store := rng.Intn(2) == 0
		ctr := isa.Reg(2 + rng.Intn(3)) // r2..r4
		fb.LoopN(ctr, iters, func(fb *isa.FuncBuilder) {
			fb.MulImm(isa.R5, ctr, stride)
			fb.AddImm(isa.R5, isa.R5, base)
			if store {
				fb.Store(isa.R5, 0, ctr, w)
			} else {
				fb.Load(isa.R6, isa.R5, 0, w)
			}
		})
	case 2: // call a later function (keeps the call graph acyclic)
		if fnIdx < len(names)-1 {
			callee := fnIdx + 1 + rng.Intn(len(names)-fnIdx-1)
			fb.Call(names[callee])
		} else {
			emitOp(rng, cfg, fb)
		}
	case 3: // forward branch over a few ops
		n := 1 + rng.Intn(4)
		label := "skip" + itoa(fb.Len())
		fb.MovImm(isa.R7, rng.Int63n(4))
		fb.MovImm(isa.R8, rng.Int63n(4))
		fb.Beq(isa.R7, isa.R8, label)
		for i := 0; i < n; i++ {
			emitOp(rng, cfg, fb)
		}
		fb.Label(label)
	default: // float block
		fb.FMovImm(isa.R9, rng.Float64()*100)
		fb.FMovImm(isa.R10, rng.Float64()*100+0.5)
		fb.FAdd(isa.R11, isa.R9, isa.R10)
		addr := dataBase + (rng.Int63n(cfg.DataBytes/8))*8
		fb.MovImm(isa.R5, addr)
		fb.FStore(isa.R5, 0, isa.R11)
		fb.FLoad(isa.R12, isa.R5, 0)
	}
}

// emitOp emits one random non-control instruction.
func emitOp(rng *rand.Rand, cfg Config, fb *isa.FuncBuilder) {
	dst := isa.Reg(6 + rng.Intn(8)) // r6..r13
	a := isa.Reg(6 + rng.Intn(8))
	bb := isa.Reg(6 + rng.Intn(8))
	switch rng.Intn(8) {
	case 0:
		fb.MovImm(dst, rng.Int63n(1<<30))
	case 1:
		fb.Add(dst, a, bb)
	case 2:
		fb.MulImm(dst, a, 1+rng.Int63n(7))
	case 3:
		fb.Xor(dst, a, bb)
	case 4:
		fb.Emit(isa.Instr{Op: isa.OpShr, Dst: dst, A: a, Imm: rng.Int63n(16)})
	case 5, 6: // memory op at a random (possibly unaligned) address
		addr := dataBase + rng.Int63n(cfg.DataBytes-8)
		w := widths[rng.Intn(len(widths))]
		fb.MovImm(isa.R5, addr)
		if rng.Intn(2) == 0 {
			fb.Store(isa.R5, 0, a, w)
		} else {
			fb.Load(dst, isa.R5, 0, w)
		}
	default:
		fb.Mod(dst, a, bb)
	}
}

// itoa is a minimal integer formatter.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
