// Package obs is witchd's observability layer: log-linear latency
// histograms, distributed trace spans, a slow-request capture ring,
// and a small structured logger. Everything in this package is a
// witness — it records what the pipeline did without ever changing
// what the pipeline does. A nil *Observer (the disabled default for
// embedders) turns every entry point into a no-op that performs no
// allocation and takes no lock, so the layer can stay compiled into
// the hot path unconditionally.
package obs

import (
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

// Bucket scheme: log-linear over nanoseconds, two buckets per octave.
// Finite boundaries run 2^10 ns (~1.02µs) .. 2^36 ns (~68.7s), with a
// midpoint boundary at 1.5*2^k inside each octave, so a bucket is
// never more than 50% wider than its lower bound — a recorded latency
// is misattributed by at most a third of its value, at any magnitude,
// from microsecond decode times to multi-second gang-commit stalls.
// The boundaries are shared by every histogram in the process, which
// makes Merge a plain bucket-wise add (no interpolation, no rebinning)
// and keeps the /metrics exposition one fixed, diffable set of le
// labels.
const (
	minExp = 10 // lowest finite boundary: 2^10 ns ≈ 1.02 µs
	maxExp = 36 // highest finite boundary: 2^36 ns ≈ 68.7 s

	// numBoundaries counts the finite le boundaries: two per octave
	// below maxExp, plus 2^maxExp itself. One extra bucket at the end
	// of the counts array catches overflow (+Inf only).
	numBoundaries = 2*(maxExp-minExp) + 1
	numBuckets    = numBoundaries + 1
)

// boundaryNS holds the finite boundaries in nanoseconds, ascending.
var boundaryNS [numBoundaries]int64

// leLabels holds each boundary rendered in seconds for the `le` label,
// precomputed so a scrape never calls FormatFloat.
var leLabels [numBoundaries]string

func init() {
	i := 0
	for e := minExp; e < maxExp; e++ {
		boundaryNS[i] = 1 << e
		boundaryNS[i+1] = 3 << (e - 1) // 1.5 * 2^e
		i += 2
	}
	boundaryNS[i] = 1 << maxExp
	for j, ns := range boundaryNS {
		leLabels[j] = strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
	}
}

// bucketIndex maps a duration in nanoseconds to the first bucket whose
// boundary is >= ns, or numBoundaries (the overflow bucket) when the
// value exceeds every finite boundary. Branch-free of loops: one
// Len64 and two compares.
func bucketIndex(ns int64) int {
	if ns <= 1<<minExp {
		return 0
	}
	e := bits.Len64(uint64(ns)) - 1 // floor(log2 ns), e >= minExp here
	if e >= maxExp {
		if e == maxExp && ns == 1<<maxExp {
			return numBoundaries - 1
		}
		return numBoundaries
	}
	idx := 2 * (e - minExp)
	if ns == 1<<e {
		return idx
	}
	if ns <= 3<<(e-1) {
		return idx + 1
	}
	return idx + 2
}

// Histogram is a fixed-bucket log-linear latency histogram. Observe is
// wait-free — one atomic add into the bucket and one into the running
// sum — so it can sit on the ingest hot path without a lock. The zero
// value is ready to use.
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	sumNS  atomic.Int64
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	h.counts[bucketIndex(int64(d))].Add(1)
	h.sumNS.Add(int64(d))
}

// HistogramSnapshot is a point-in-time copy of a histogram. Count is
// derived from the copied buckets, so Count always equals the +Inf
// cumulative bucket a scrape renders — internally consistent even when
// snapped mid-write. SumNS is read separately and may lag or lead the
// bucket copy by whatever samples were in flight during the snapshot;
// the skew is bounded by the write concurrency and irrelevant to the
// rates a scraper derives.
type HistogramSnapshot struct {
	Counts [numBuckets]uint64
	Count  uint64
	SumNS  int64
}

// Snapshot copies the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.SumNS = h.sumNS.Load()
	return s
}

// Merge adds another snapshot bucket-wise. Shared boundaries make this
// exact — no rebinning.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	for i := range s.Counts {
		s.Counts[i] += o.Counts[i]
	}
	s.Count += o.Count
	s.SumNS += o.SumNS
}

// Quantile estimates the q-quantile (0 < q <= 1) from the buckets,
// returning the upper boundary of the bucket holding that rank — a
// conservative (never-understated) estimate, 0 when empty. Overflow
// samples report the top finite boundary.
func (s HistogramSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank < 1 {
		rank = 1
	}
	var seen uint64
	for i, c := range s.Counts {
		seen += c
		if seen >= rank {
			if i >= numBoundaries {
				break
			}
			return time.Duration(boundaryNS[i])
		}
	}
	return time.Duration(boundaryNS[numBoundaries-1])
}

// Mean returns the average sample, 0 when empty.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNS / int64(s.Count))
}

// Boundaries returns the finite bucket boundaries as durations,
// ascending — the scheme documented above, exported so client-side
// consumers (the witch pusher's Stats) can label their buckets without
// depending on exposition internals.
func Boundaries() []time.Duration {
	out := make([]time.Duration, numBoundaries)
	for i, ns := range boundaryNS {
		out[i] = time.Duration(ns)
	}
	return out
}

// AppendExposition appends the Prometheus sample lines for one series
// of a histogram family: cumulative `_bucket` lines for every finite
// boundary and +Inf, then `_sum` (seconds) and `_count`. labels is the
// rendered label set without braces (e.g. `stage="decode"`), empty for
// an unlabelled series; the `le` label is appended after it. The
// family's # HELP/# TYPE lines are the exposition writer's job — this
// emits samples only, in ascending-boundary order.
func (s HistogramSnapshot) AppendExposition(dst []string, family, labels string) []string {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i := 0; i < numBoundaries; i++ {
		cum += s.Counts[i]
		dst = append(dst, family+`_bucket{`+labels+sep+`le="`+leLabels[i]+`"} `+
			strconv.FormatUint(cum, 10))
	}
	dst = append(dst, family+`_bucket{`+labels+sep+`le="+Inf"} `+
		strconv.FormatUint(s.Count, 10))
	brace := ""
	if labels != "" {
		brace = "{" + labels + "}"
	}
	dst = append(dst, family+"_sum"+brace+" "+
		strconv.FormatFloat(float64(s.SumNS)/1e9, 'g', -1, 64))
	dst = append(dst, family+"_count"+brace+" "+strconv.FormatUint(s.Count, 10))
	return dst
}
