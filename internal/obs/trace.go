package obs

import (
	"crypto/rand"
	"encoding/binary"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader carries a request's trace context between nodes (and
// from the witch pusher into the fleet): `<trace>-<span>`, two
// 16-hex-digit IDs. The span half names the sender's span, which
// becomes the parent of whatever span the receiver opens. The header
// is a pure witness — a daemon's response bytes never depend on it.
const TraceHeader = "X-Witch-Trace"

// SpanContext is a parsed trace header: which trace a request belongs
// to and which span is the current parent. The zero value means "no
// trace" and propagates nothing.
type SpanContext struct {
	Trace uint64
	Span  uint64
}

// Valid reports whether the context carries a trace.
func (c SpanContext) Valid() bool { return c.Trace != 0 }

// String renders the wire form, `<trace>-<span>` in fixed-width hex.
func (c SpanContext) String() string {
	var b [33]byte
	hexPut(b[:16], c.Trace)
	b[16] = '-'
	hexPut(b[17:], c.Span)
	return string(b[:])
}

const hexDigits = "0123456789abcdef"

func hexPut(dst []byte, v uint64) {
	for i := 15; i >= 0; i-- {
		dst[i] = hexDigits[v&0xf]
		v >>= 4
	}
}

// ParseTrace parses a trace header value. Malformed input yields the
// zero (invalid) context — a garbage header degrades to "untraced",
// never to an error a client could observe.
func ParseTrace(s string) (SpanContext, bool) {
	if len(s) != 33 || s[16] != '-' {
		return SpanContext{}, false
	}
	tr, err1 := strconv.ParseUint(s[:16], 16, 64)
	sp, err2 := strconv.ParseUint(s[17:], 16, 64)
	if err1 != nil || err2 != nil || tr == 0 {
		return SpanContext{}, false
	}
	return SpanContext{Trace: tr, Span: sp}, true
}

// ParseTraceID parses a bare 16-hex trace ID (the /v1/trace/{id} path
// element).
func ParseTraceID(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil || v == 0 {
		return 0, false
	}
	return v, true
}

// FormatTraceID renders a trace ID the way ParseTraceID reads it.
func FormatTraceID(v uint64) string {
	var b [16]byte
	hexPut(b[:], v)
	return string(b[:])
}

// ID generation: a crypto-seeded base mixed with an atomic counter
// through splitmix64. Uniqueness across nodes comes from the 64-bit
// random base; the counter guarantees process-local uniqueness without
// per-call entropy reads.
var (
	idBase = func() uint64 {
		var b [8]byte
		if _, err := rand.Read(b[:]); err != nil {
			return uint64(time.Now().UnixNano()) | 1
		}
		return binary.LittleEndian.Uint64(b[:]) | 1
	}()
	idCounter atomic.Uint64
)

// NewSpanContext mints a fresh root trace context — the entry point
// for clients (the witch pusher) that carry no Observer but want their
// requests traceable end to end: the minted header names the pusher's
// send as the root span, and every daemon hop chains under it.
func NewSpanContext() SpanContext {
	return SpanContext{Trace: newID(), Span: newID()}
}

func newID() uint64 {
	x := idBase + idCounter.Add(1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	if x == 0 {
		return 1
	}
	return x
}

// Span is one completed span as rendered to JSON (/v1/trace, /v1/slow).
type Span struct {
	Trace  string `json:"trace"`
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"`
	Node   string `json:"node"`
	Stage  string `json:"stage"`
	Start  int64  `json:"start_unix_ns"`
	DurNS  int64  `json:"duration_ns"`
	Pusher string `json:"pusher,omitempty"`
	Seq    uint64 `json:"seq,omitempty"`
	Peer   string `json:"peer,omitempty"`
	Err    string `json:"err,omitempty"`
}

// span is the ring's storage form: IDs stay numeric until a query
// renders them, so recording a span allocates nothing beyond what the
// caller already holds (stage names are constants, pusher/peer strings
// come from the request).
type span struct {
	trace, id, parent uint64
	start, dur        int64
	seq               uint64
	stage             string
	pusher, peer, err string
}

// Tracer keeps the node's bounded ring of completed spans. The ring is
// overwrite-on-wrap: old spans evict silently (counted), queries scan
// the whole ring — at the sizes witchd runs (thousands), a scan per
// /v1/trace query is cheaper than maintaining an index on the record
// path.
type Tracer struct {
	node string

	mu   sync.Mutex
	ring []span
	next int
	full bool

	recorded atomic.Uint64
	dropped  atomic.Uint64 // spans overwritten before ever being queried
}

// NewTracer builds a tracer holding up to ringSize completed spans.
// ringSize <= 0 returns nil — the disabled tracer.
func NewTracer(node string, ringSize int) *Tracer {
	if ringSize <= 0 {
		return nil
	}
	return &Tracer{node: node, ring: make([]span, ringSize)}
}

func (t *Tracer) record(sp span) {
	t.recorded.Add(1)
	t.mu.Lock()
	if t.full {
		t.dropped.Add(1)
	}
	t.ring[t.next] = sp
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Stats reports the tracer's counters: spans recorded and spans
// evicted by ring wrap.
func (t *Tracer) Stats() (recorded, dropped uint64) {
	if t == nil {
		return 0, 0
	}
	return t.recorded.Load(), t.dropped.Load()
}

// Len reports how many spans the ring currently holds.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return len(t.ring)
	}
	return t.next
}

// Collect renders every retained span of one trace, oldest first.
func (t *Tracer) Collect(trace uint64) []Span {
	if t == nil {
		return nil
	}
	raw := t.collectRaw(trace)
	if len(raw) == 0 {
		return nil
	}
	out := make([]Span, len(raw))
	for i, sp := range raw {
		out[i] = t.render(sp)
	}
	return out
}

// CollectSince renders the retained spans of one trace that ended at
// or after sinceNS, oldest first. The ring is in completion order, so
// the scan walks backward from the newest slot and stops at the first
// span that finished before the window — a slow-capture on the ingest
// fast path touches the handful of spans recorded during that request,
// not the whole ring. Spans whose ring slot landed out of end-order
// (concurrent recorders) may be missed past the stop point; the result
// feeds diagnostics, never a verdict.
func (t *Tracer) CollectSince(trace uint64, sinceNS int64) []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	n := t.next
	if t.full {
		n = len(t.ring)
	}
	var raw []span
	for i := 0; i < n; i++ {
		sp := &t.ring[(t.next-1-i+len(t.ring))%len(t.ring)]
		if sp.start+sp.dur < sinceNS {
			break
		}
		if sp.trace == trace {
			raw = append(raw, *sp)
		}
	}
	t.mu.Unlock()
	if len(raw) == 0 {
		return nil
	}
	out := make([]Span, len(raw))
	for i, sp := range raw {
		out[len(raw)-1-i] = t.render(sp)
	}
	return out
}

func (t *Tracer) collectRaw(trace uint64) []span {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.full {
		n = len(t.ring)
	}
	var out []span
	// Scan in insertion order: oldest retained span first.
	start := 0
	if t.full {
		start = t.next
	}
	for i := 0; i < n; i++ {
		sp := &t.ring[(start+i)%len(t.ring)]
		if sp.trace == trace {
			out = append(out, *sp)
		}
	}
	return out
}

func (t *Tracer) render(sp span) Span {
	out := Span{
		Trace:  FormatTraceID(sp.trace),
		ID:     FormatTraceID(sp.id),
		Node:   t.node,
		Stage:  sp.stage,
		Start:  sp.start,
		DurNS:  sp.dur,
		Pusher: sp.pusher,
		Seq:    sp.seq,
		Peer:   sp.peer,
		Err:    sp.err,
	}
	if sp.parent != 0 {
		out.Parent = FormatTraceID(sp.parent)
	}
	return out
}
