package obs

import (
	"sort"
	"sync"
	"time"
)

// SlowEntry is one captured slow request: what it was, how long it
// took, and the full local span breakdown retained at capture time
// (copied out of the ring, so later ring wraps cannot gut it).
type SlowEntry struct {
	Kind   string `json:"kind"` // "ingest" or "query"
	Trace  string `json:"trace,omitempty"`
	Pusher string `json:"pusher,omitempty"`
	Seq    uint64 `json:"seq,omitempty"`
	Target string `json:"target,omitempty"` // query endpoint + tool for queries
	Start  int64  `json:"start_unix_ns"`
	DurNS  int64  `json:"duration_ns"`
	Spans  []Span `json:"spans,omitempty"`
}

// slowLog keeps the top-K slowest recent requests. Insertion keeps the
// slice sorted descending by duration (K is small — tens); a request
// faster than the current K-th is rejected with one comparison under
// the lock, so the steady-state cost on the fast path is negligible.
type slowLog struct {
	mu       sync.Mutex
	k        int
	entries  []SlowEntry
	captured uint64
}

func newSlowLog(k int) *slowLog {
	if k <= 0 {
		return nil
	}
	return &slowLog{k: k}
}

// floor returns the duration a new request must beat to be captured.
func (l *slowLog) floor() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) < l.k {
		return -1
	}
	return l.entries[len(l.entries)-1].DurNS
}

func (l *slowLog) insert(e SlowEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.entries) >= l.k && e.DurNS <= l.entries[len(l.entries)-1].DurNS {
		return
	}
	l.entries = append(l.entries, e)
	sort.Slice(l.entries, func(i, j int) bool { return l.entries[i].DurNS > l.entries[j].DurNS })
	if len(l.entries) > l.k {
		l.entries = l.entries[:l.k]
	}
	l.captured++
}

// snapshot copies the current top-K, slowest first.
func (l *slowLog) snapshot() []SlowEntry {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SlowEntry, len(l.entries))
	copy(out, l.entries)
	return out
}

func (l *slowLog) stats() (kept int, captured uint64) {
	if l == nil {
		return 0, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.entries), l.captured
}

// SlowEntries returns the node's current top-K slowest captured
// requests, slowest first (nil receiver or capture disabled: nil).
func (o *Observer) SlowEntries() []SlowEntry {
	if o == nil {
		return nil
	}
	return o.slow.snapshot()
}

// CaptureSlow offers a finished request to the slow log. kind is
// "ingest" or "query"; sc ties the entry to its trace so the capture
// can carry the span breakdown; target annotates queries. Threshold
// logging fires here too: a request at or over SlowThreshold emits one
// structured warn line whether or not it makes the top-K.
func (o *Observer) CaptureSlow(kind string, sc SpanContext, pusher string, seq uint64, target string, start time.Time, d time.Duration) {
	if o == nil {
		return
	}
	if o.slowThreshold > 0 && d >= o.slowThreshold && o.log != nil {
		o.log.Warn("slow", "request over threshold",
			"kind", kind, "dur", d.String(), "trace", traceLabel(sc),
			"pusher", pusher, "seq", seq, "target", target)
	}
	if o.slow == nil {
		return
	}
	dur := int64(d)
	if floor := o.slow.floor(); dur <= floor {
		return
	}
	e := SlowEntry{
		Kind:   kind,
		Pusher: pusher,
		Seq:    seq,
		Target: target,
		Start:  start.UnixNano(),
		DurNS:  dur,
	}
	if sc.Valid() {
		e.Trace = FormatTraceID(sc.Trace)
		e.Spans = o.tracer.CollectSince(sc.Trace, start.UnixNano())
	}
	o.slow.insert(e)
}

func traceLabel(sc SpanContext) string {
	if !sc.Valid() {
		return ""
	}
	return FormatTraceID(sc.Trace)
}
