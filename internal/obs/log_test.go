package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestLoggerFormatAndLevels: one key=value line per event, values
// quoted only when needed, empty fields elided, below-min levels
// suppressed.
func TestLoggerFormatAndLevels(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.now = func() time.Time { return time.Unix(1700000000, 42e6).UTC() }

	l.Debug("daemon", "should be suppressed")
	l.Warn("repl", "hint append failed", "peer", "http://127.0.0.1:9", "err", "connection refused", "empty", "")
	out := buf.String()
	want := `ts=2023-11-14T22:13:20.042Z level=warn component=repl msg="hint append failed" peer=http://127.0.0.1:9 err="connection refused"` + "\n"
	if out != want {
		t.Fatalf("line mismatch:\ngot  %q\nwant %q", out, want)
	}

	var nilLogger *Logger
	nilLogger.Error("x", "must not panic")
	if nilLogger.Enabled(LevelError) {
		t.Fatal("nil logger reports enabled")
	}
}

// TestParseLevel covers the -log-level flag values.
func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "error": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("bad level accepted")
	}
}

// TestLogfAdapter: the printf seam renders into the msg field.
func TestLogfAdapter(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf, LevelInfo)
	l.now = func() time.Time { return time.Unix(0, 0).UTC() }
	l.Logf("cluster")("peer %s marked down after %d failures", "http://x", 3)
	if !strings.Contains(buf.String(), `component=cluster msg="peer http://x marked down after 3 failures"`) {
		t.Fatalf("adapter output: %q", buf.String())
	}
}
