package obs

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Stage names one instrumented point of the witchd pipeline. Fixed at
// compile time so stage histograms live in a flat array — recording is
// an index, not a map lookup.
type Stage uint8

const (
	// StageIngest is the whole of one accepted ingest request.
	StageIngest Stage = iota
	// StageDecode is the batch decode (JSON or binary wire sniff).
	StageDecode
	// StageDedup is the idempotency check: window-lock acquire + bitmap
	// probe, before the durable apply runs.
	StageDedup
	// StageJournal is the journal durability wait: frame write + fsync,
	// including the group-commit gang wait (recorded at the wal seam).
	StageJournal
	// StageMerge is the aggregate merge of a decoded batch.
	StageMerge
	// StageReplicate is the client-side replicate RTT to one replica.
	StageReplicate
	// StageHintAppend is one durable hint append for an unreachable
	// replica.
	StageHintAppend
	// StageScatter is one client-side scatter leg (shard fetch).
	StageScatter
	// StageQuery is the whole of one /v1/top or /v1/profile request.
	StageQuery
	// StageFold is the query-side merge (materialize) of the gathered
	// exports into the answering view.
	StageFold
	// StageCacheHit / StageCacheMiss split query serving time by
	// rendered-response-cache outcome.
	StageCacheHit
	StageCacheMiss

	numStages
)

var stageNames = [numStages]string{
	"ingest",
	"ingest_decode",
	"dedup",
	"journal_commit",
	"agg_merge",
	"replicate",
	"hint_append",
	"scatter_leg",
	"query",
	"query_fold",
	"query_cache_hit",
	"query_cache_miss",
}

// StageName renders a stage for spans and metric labels.
func StageName(s Stage) string { return stageNames[s] }

// Options configures an Observer.
type Options struct {
	// Node names this process in spans (witchd uses its advertised URL).
	Node string
	// TraceRing bounds the completed-span ring; 0 disables tracing
	// (histograms stay on).
	TraceRing int
	// SlowCapture keeps the top-K slowest recent requests; 0 disables.
	SlowCapture int
	// SlowThreshold emits one structured warn line per request at or
	// over this duration; 0 disables.
	SlowThreshold time.Duration
	// Log receives threshold warnings (default: the process default
	// logger).
	Log *Logger
}

// Observer is the per-process observability bundle: the stage
// histograms, per-peer RTT histograms, the span ring, and the slow
// log. Every method is safe on a nil receiver and does nothing there —
// embedders compile the calls in unconditionally and pass nil to
// disable the whole layer at zero cost (no lock, no allocation, no
// clock read).
type Observer struct {
	node          string
	stages        [numStages]Histogram
	tracer        *Tracer
	slow          *slowLog
	slowThreshold time.Duration
	log           *Logger

	peerMu sync.RWMutex
	peers  map[string]*Histogram // key: op + "\x00" + peer
}

// New builds an Observer.
func New(o Options) *Observer {
	log := o.Log
	if log == nil {
		log = Default()
	}
	return &Observer{
		node:          o.Node,
		tracer:        NewTracer(o.Node, o.TraceRing),
		slow:          newSlowLog(o.SlowCapture),
		slowThreshold: o.SlowThreshold,
		log:           log,
		peers:         make(map[string]*Histogram),
	}
}

// Node reports the observer's node name ("" on nil).
func (o *Observer) Node() string {
	if o == nil {
		return ""
	}
	return o.node
}

// Start returns the current time when observing is on, the zero time
// otherwise — the paired argument for StageSince, so a disabled
// observer skips even the clock read.
func (o *Observer) Start() time.Time {
	if o == nil {
		return time.Time{}
	}
	return time.Now()
}

// StageSince records time since t0 into the stage histogram.
func (o *Observer) StageSince(st Stage, t0 time.Time) {
	if o == nil {
		return
	}
	o.stages[st].Observe(time.Since(t0))
}

// Stage records one sample into the stage histogram.
func (o *Observer) Stage(st Stage, d time.Duration) {
	if o == nil {
		return
	}
	o.stages[st].Observe(d)
}

// StageSnapshot snapshots one stage histogram (zero snapshot on nil).
func (o *Observer) StageSnapshot(st Stage) HistogramSnapshot {
	if o == nil {
		return HistogramSnapshot{}
	}
	return o.stages[st].Snapshot()
}

// Peer records one peer-call RTT into the per-(op, peer) histogram and
// the matching aggregate stage (replicate → StageReplicate, scatter →
// StageScatter; other ops keep only their per-peer series).
func (o *Observer) Peer(op, peer string, d time.Duration) {
	if o == nil {
		return
	}
	switch op {
	case "replicate":
		o.stages[StageReplicate].Observe(d)
	case "scatter":
		o.stages[StageScatter].Observe(d)
	}
	key := op + "\x00" + peer
	o.peerMu.RLock()
	h := o.peers[key]
	o.peerMu.RUnlock()
	if h == nil {
		o.peerMu.Lock()
		if h = o.peers[key]; h == nil {
			h = &Histogram{}
			o.peers[key] = h
		}
		o.peerMu.Unlock()
	}
	h.Observe(d)
}

// PeerSince records time since t0 as a peer-call RTT (no-op, clock
// unread, on nil).
func (o *Observer) PeerSince(op, peer string, t0 time.Time) {
	if o == nil {
		return
	}
	o.Peer(op, peer, time.Since(t0))
}

// TracingEnabled reports whether spans are being recorded.
func (o *Observer) TracingEnabled() bool { return o != nil && o.tracer != nil }

// CollectTrace renders this node's retained spans for one trace ID.
func (o *Observer) CollectTrace(trace uint64) []Span {
	if o == nil {
		return nil
	}
	return o.tracer.Collect(trace)
}

// TracerStats reports span-ring counters (all zero when disabled).
func (o *Observer) TracerStats() (held int, recorded, dropped uint64) {
	if o == nil {
		return 0, 0, 0
	}
	recorded, dropped = o.tracer.Stats()
	return o.tracer.Len(), recorded, dropped
}

// SlowStats reports slow-capture counters.
func (o *Observer) SlowStats() (kept int, captured uint64) {
	if o == nil {
		return 0, 0
	}
	return o.slow.stats()
}

// Log returns the observer's logger (the process default on nil — a
// disabled observer must not silence operational warnings).
func (o *Observer) Logger() *Logger {
	if o == nil || o.log == nil {
		return Default()
	}
	return o.log
}

// ActiveSpan is one in-flight span. The zero value (from a nil or
// tracing-disabled observer) is inert: every method no-ops, Context
// returns the invalid context. It is a value type — starting a span
// allocates nothing.
type ActiveSpan struct {
	t      *Tracer
	sc     SpanContext
	parent uint64
	stage  string
	start  time.Time
	done   bool

	pusher, peer, err string
	seq               uint64
}

// StartSpan opens a span for an incoming request. header is the raw
// X-Witch-Trace value: when it parses, the new span joins that trace
// as a child of the sender's span; when empty or malformed and this
// observer traces, a fresh trace is minted here (the entry node).
func (o *Observer) StartSpan(header, stage string) ActiveSpan {
	if o == nil || o.tracer == nil {
		return ActiveSpan{}
	}
	var parent uint64
	sc, ok := ParseTrace(header)
	if ok {
		parent = sc.Span
	} else {
		sc.Trace = newID()
	}
	sc.Span = newID()
	return ActiveSpan{t: o.tracer, sc: sc, parent: parent, stage: stage, start: time.Now()}
}

// StartChild opens a span under an existing context (the client side
// of forward/replicate/scatter legs). An invalid parent context yields
// the inert span.
func (o *Observer) StartChild(parent SpanContext, stage string) ActiveSpan {
	if o == nil || o.tracer == nil || !parent.Valid() {
		return ActiveSpan{}
	}
	return ActiveSpan{
		t:      o.tracer,
		sc:     SpanContext{Trace: parent.Trace, Span: newID()},
		parent: parent.Span,
		stage:  stage,
		start:  time.Now(),
	}
}

// Active reports whether the span records anything.
func (sp *ActiveSpan) Active() bool { return sp.t != nil }

// Context returns the span's own context — what child spans, outgoing
// trace headers, and post-End slow captures derive from. Still valid
// after End.
func (sp *ActiveSpan) Context() SpanContext { return sp.sc }

// Header renders the outgoing trace header value ("" when inert).
func (sp *ActiveSpan) Header() string {
	if sp.t == nil {
		return ""
	}
	return sp.sc.String()
}

// Annotate attaches the idempotency key.
func (sp *ActiveSpan) Annotate(pusher string, seq uint64) {
	if sp.t == nil {
		return
	}
	sp.pusher, sp.seq = pusher, seq
}

// SetPeer names the remote end of a client-side span.
func (sp *ActiveSpan) SetPeer(peer string) {
	if sp.t == nil {
		return
	}
	sp.peer = peer
}

// Fail records the span's error outcome.
func (sp *ActiveSpan) Fail(err string) {
	if sp.t == nil {
		return
	}
	sp.err = err
}

// End completes the span into the ring and returns its duration.
// Idempotent: a second End records nothing.
func (sp *ActiveSpan) End() time.Duration {
	if sp.t == nil || sp.done {
		return 0
	}
	sp.done = true
	d := time.Since(sp.start)
	sp.t.record(span{
		trace:  sp.sc.Trace,
		id:     sp.sc.Span,
		parent: sp.parent,
		start:  sp.start.UnixNano(),
		dur:    int64(d),
		seq:    sp.seq,
		stage:  sp.stage,
		pusher: sp.pusher,
		peer:   sp.peer,
		err:    sp.err,
	})
	return d
}

// Context propagation: the daemon parks the request's span context in
// the context.Context it already threads into the cluster router, and
// the router stamps outgoing trace headers from it. A context without
// a span propagates nothing.
type ctxKey struct{}

// ContextWithSpan attaches a span context for downstream peer calls.
func ContextWithSpan(ctx context.Context, sc SpanContext) context.Context {
	if !sc.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, sc)
}

// SpanFromContext recovers the attached span context, if any.
func SpanFromContext(ctx context.Context) (SpanContext, bool) {
	sc, ok := ctx.Value(ctxKey{}).(SpanContext)
	return sc, ok && sc.Valid()
}

// MetricFamily is one exposition family the daemon's /metrics merges
// into its output: name, metadata, and pre-rendered sample lines in
// the order they must appear.
type MetricFamily struct {
	Name    string
	Help    string
	Type    string // counter | gauge | histogram
	Samples []string
}

// MetricFamilies renders the observer's histograms and counters as
// exposition families. Stage series are emitted under one family with
// a stage label; peer RTTs under another with op+peer labels. Series
// order is sorted and therefore scrape-stable.
func (o *Observer) MetricFamilies() []MetricFamily {
	if o == nil {
		return nil
	}
	stage := MetricFamily{
		Name: "witchd_stage_duration_seconds",
		Help: "Latency by pipeline stage (log-linear buckets, 2 per octave, ~1us..69s).",
		Type: "histogram",
	}
	for st := Stage(0); st < numStages; st++ {
		snap := o.stages[st].Snapshot()
		stage.Samples = snap.AppendExposition(stage.Samples,
			"witchd_stage_duration_seconds", `stage="`+stageNames[st]+`"`)
	}
	fams := []MetricFamily{stage}

	o.peerMu.RLock()
	keys := make([]string, 0, len(o.peers))
	for k := range o.peers {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	snaps := make([]HistogramSnapshot, len(keys))
	for i, k := range keys {
		snaps[i] = o.peers[k].Snapshot()
	}
	o.peerMu.RUnlock()
	if len(keys) > 0 {
		peer := MetricFamily{
			Name: "witchd_peer_rtt_seconds",
			Help: "Peer call round-trip latency by operation and peer.",
			Type: "histogram",
		}
		for i, k := range keys {
			op, pr, _ := cut(k, '\x00')
			peer.Samples = snaps[i].AppendExposition(peer.Samples,
				"witchd_peer_rtt_seconds", `op="`+op+`",peer="`+pr+`"`)
		}
		fams = append(fams, peer)
	}

	held, recorded, dropped := o.TracerStats()
	_, captured := o.SlowStats()
	fams = append(fams,
		MetricFamily{
			Name: "witchd_trace_spans_recorded_total",
			Help: "Completed spans recorded into the span ring.",
			Type: "counter",
			Samples: []string{
				"witchd_trace_spans_recorded_total " + strconv.FormatUint(recorded, 10),
			},
		},
		MetricFamily{
			Name: "witchd_trace_spans_evicted_total",
			Help: "Spans overwritten by ring wrap before any query read them.",
			Type: "counter",
			Samples: []string{
				"witchd_trace_spans_evicted_total " + strconv.FormatUint(dropped, 10),
			},
		},
		MetricFamily{
			Name:    "witchd_trace_spans_held",
			Help:    "Spans currently retained in the ring.",
			Type:    "gauge",
			Samples: []string{"witchd_trace_spans_held " + strconv.Itoa(held)},
		},
		MetricFamily{
			Name: "witchd_slow_captured_total",
			Help: "Requests admitted into the slow-request capture ring.",
			Type: "counter",
			Samples: []string{
				"witchd_slow_captured_total " + strconv.FormatUint(captured, 10),
			},
		},
	)
	return fams
}

func cut(s string, sep byte) (before, after string, found bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == sep {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}
