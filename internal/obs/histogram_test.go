package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestBucketIndexMatchesLinearScan: the bit-twiddled index must agree
// with the obvious linear search over the boundary table for every
// magnitude, including exact boundary hits and both extremes.
func TestBucketIndexMatchesLinearScan(t *testing.T) {
	linear := func(ns int64) int {
		for i, b := range boundaryNS {
			if ns <= b {
				return i
			}
		}
		return numBoundaries
	}
	var values []int64
	for e := 0; e < 63; e++ {
		v := int64(1) << e
		values = append(values, v-1, v, v+1, v+v/2-1, v+v/2, v+v/2+1)
	}
	values = append(values, 0, 1, 999, 1000, 1024, 1536, int64(time.Second), int64(time.Minute), 1<<62)
	for _, v := range values {
		if v < 0 {
			continue
		}
		if got, want := bucketIndex(v), linear(v); got != want {
			t.Fatalf("bucketIndex(%d) = %d, linear scan says %d", v, got, want)
		}
	}
}

// TestHistogramConcurrentRecordMergeSnapshot: hammered from many
// goroutines under -race, every sample lands exactly once, snapshots
// stay internally consistent (Count == Σ buckets), and merging the
// per-goroutine shards reproduces the combined histogram exactly.
func TestHistogramConcurrentRecordMergeSnapshot(t *testing.T) {
	const workers = 8
	const perWorker = 5000
	var combined Histogram
	shards := make([]Histogram, workers)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent snapshots while writes are in flight: each must be
	// internally consistent regardless of what it catches mid-write.
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := combined.Snapshot()
			var sum uint64
			for _, c := range s.Counts {
				sum += c
			}
			if sum != s.Count {
				panic(fmt.Sprintf("snapshot inconsistent: Σbuckets %d != Count %d", sum, s.Count))
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				d := time.Duration((w*perWorker+i)%2_000_000) * time.Microsecond
				combined.Observe(d)
				shards[w].Observe(d)
			}
		}(w)
	}
	wg.Wait()
	close(stop)

	got := combined.Snapshot()
	if got.Count != workers*perWorker {
		t.Fatalf("combined count %d, want %d", got.Count, workers*perWorker)
	}
	var merged HistogramSnapshot
	for w := range shards {
		merged.Merge(shards[w].Snapshot())
	}
	if merged != got {
		t.Fatalf("merged shards differ from combined histogram:\nmerged   %+v\ncombined %+v", merged, got)
	}
}

// TestQuantileConservative: the quantile estimate is the bucket upper
// bound, so it never understates.
func TestQuantileConservative(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}
	h.Observe(time.Second)
	s := h.Snapshot()
	if q := s.Quantile(0.5); q < time.Millisecond || q > 2*time.Millisecond {
		t.Fatalf("p50 %v outside [1ms, 2ms]", q)
	}
	if q := s.Quantile(1.0); q < time.Second {
		t.Fatalf("p100 %v understates the 1s sample", q)
	}
	if (HistogramSnapshot{}).Quantile(0.99) != 0 {
		t.Fatal("empty histogram quantile must be 0")
	}
}

// TestExpositionCumulative: rendered _bucket lines are cumulative and
// end at a +Inf equal to _count.
func TestExpositionCumulative(t *testing.T) {
	var h Histogram
	h.Observe(2 * time.Microsecond)
	h.Observe(3 * time.Millisecond)
	h.Observe(90 * time.Second) // overflow
	lines := h.Snapshot().AppendExposition(nil, "x_seconds", `stage="t"`)
	if len(lines) != numBoundaries+3 {
		t.Fatalf("got %d lines, want %d", len(lines), numBoundaries+3)
	}
	last := lines[numBoundaries]
	if !strings.Contains(last, `le="+Inf"`) || !strings.HasSuffix(last, " 3") {
		t.Fatalf("+Inf line wrong: %q", last)
	}
	if got := lines[len(lines)-1]; got != `x_seconds_count{stage="t"} 3` {
		t.Fatalf("count line wrong: %q", got)
	}
	prev := uint64(0)
	for _, l := range lines[:numBoundaries+1] {
		var v uint64
		if _, err := fmt.Sscanf(l[strings.LastIndexByte(l, ' ')+1:], "%d", &v); err != nil {
			t.Fatalf("unparseable line %q", l)
		}
		if v < prev {
			t.Fatalf("non-cumulative bucket line %q (prev %d)", l, prev)
		}
		prev = v
	}
}
