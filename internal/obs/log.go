package obs

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int8

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return "unknown"
}

// ParseLevel reads a -log-level flag value.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("bad log level %q: want debug, info, warn, or error", s)
}

// Logger writes structured key=value lines:
//
//	ts=2026-08-08T12:00:00.000Z level=warn component=repl msg="hint append failed" peer=http://... err="..."
//
// One line per event, fields space-separated, values quoted only when
// they need it — greppable by both humans and the CI's shell checks.
// A nil *Logger discards everything.
type Logger struct {
	mu  sync.Mutex
	w   io.Writer
	min Level
	now func() time.Time // injectable for deterministic tests
}

// NewLogger builds a logger writing at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min, now: time.Now}
}

// std is the process default logger, stderr at info — what call sites
// without an explicitly wired logger (journal recovery warnings, for
// example) use. cmd/witchd repoints it per -log-level.
var std atomic.Pointer[Logger]

func init() { std.Store(NewLogger(os.Stderr, LevelInfo)) }

// Default returns the process default logger.
func Default() *Logger { return std.Load() }

// SetDefault replaces the process default logger (nil is ignored).
func SetDefault(l *Logger) {
	if l != nil {
		std.Store(l)
	}
}

// Enabled reports whether the logger would emit at lv.
func (l *Logger) Enabled(lv Level) bool { return l != nil && lv >= l.min }

// Log emits one line. kv is alternating key, value pairs; values
// render via %v with quoting when they contain spaces or quotes.
func (l *Logger) Log(lv Level, component, msg string, kv ...any) {
	if !l.Enabled(lv) {
		return
	}
	var b strings.Builder
	b.Grow(96)
	b.WriteString("ts=")
	b.WriteString(l.now().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(lv.String())
	b.WriteString(" component=")
	b.WriteString(component)
	b.WriteString(" msg=")
	appendValue(&b, msg)
	for i := 0; i+1 < len(kv); i += 2 {
		key, _ := kv[i].(string)
		if key == "" {
			key = fmt.Sprintf("arg%d", i/2)
		}
		val := fmt.Sprint(kv[i+1])
		if val == "" {
			continue // empty fields are noise, not information
		}
		b.WriteByte(' ')
		b.WriteString(key)
		b.WriteByte('=')
		appendValue(&b, val)
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

func appendValue(b *strings.Builder, v string) {
	if v == "" || strings.ContainsAny(v, " \"=\n\t") {
		b.WriteString(strconv.Quote(v))
		return
	}
	b.WriteString(v)
}

// Debug, Info, Warn, Error are Log at fixed levels.
func (l *Logger) Debug(component, msg string, kv ...any) { l.Log(LevelDebug, component, msg, kv...) }
func (l *Logger) Info(component, msg string, kv ...any)  { l.Log(LevelInfo, component, msg, kv...) }
func (l *Logger) Warn(component, msg string, kv ...any)  { l.Log(LevelWarn, component, msg, kv...) }
func (l *Logger) Error(component, msg string, kv ...any) { l.Log(LevelError, component, msg, kv...) }

// Logf adapts the logger to the `func(format, ...any)` seams the
// cluster router and replication engine already expose: the formatted
// message becomes the msg field of one info line.
func (l *Logger) Logf(component string) func(format string, args ...any) {
	return func(format string, args ...any) {
		l.Log(LevelInfo, component, fmt.Sprintf(format, args...))
	}
}
