package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestTraceWireFormat: header render/parse round-trips; malformed
// input degrades to the invalid context rather than erroring.
func TestTraceWireFormat(t *testing.T) {
	sc := SpanContext{Trace: 0xdeadbeefcafef00d, Span: 0x0123456789abcdef}
	h := sc.String()
	if h != "deadbeefcafef00d-0123456789abcdef" {
		t.Fatalf("header render %q", h)
	}
	got, ok := ParseTrace(h)
	if !ok || got != sc {
		t.Fatalf("round trip: %+v ok=%v", got, ok)
	}
	for _, bad := range []string{"", "xyz", h + "0", "deadbeefcafef00d_0123456789abcdef",
		"0000000000000000-0123456789abcdef", "ZZadbeefcafef00d-0123456789abcdef"} {
		if _, ok := ParseTrace(bad); ok {
			t.Fatalf("accepted malformed header %q", bad)
		}
	}
	if id, ok := ParseTraceID("deadbeefcafef00d"); !ok || id != 0xdeadbeefcafef00d {
		t.Fatalf("ParseTraceID: %x ok=%v", id, ok)
	}
	if FormatTraceID(0xdeadbeefcafef00d) != "deadbeefcafef00d" {
		t.Fatal("FormatTraceID mismatch")
	}
}

// TestStartSpanMintsAndChains: an entry request without a header mints
// a fresh trace; a downstream hop joins the trace and links its parent
// to the sender's span.
func TestStartSpanMintsAndChains(t *testing.T) {
	o := New(Options{Node: "n1", TraceRing: 64})
	entry := o.StartSpan("", StageName(StageIngest))
	if !entry.Active() || !entry.Context().Valid() {
		t.Fatal("entry span inert despite tracing enabled")
	}
	leg := o.StartChild(entry.Context(), "forward_leg")
	hop := o.StartSpan(leg.Header(), StageName(StageIngest))
	if hop.Context().Trace != entry.Context().Trace {
		t.Fatal("hop did not join the entry trace")
	}
	hop.Annotate("pusher-1", 7)
	hop.End()
	leg.End()
	entry.End()

	spans := o.CollectTrace(entry.Context().Trace)
	if len(spans) != 3 {
		t.Fatalf("collected %d spans, want 3", len(spans))
	}
	byID := map[string]Span{}
	for _, sp := range spans {
		byID[sp.ID] = sp
	}
	hopSpan := byID[FormatTraceID(hop.Context().Span)]
	if hopSpan.Parent != FormatTraceID(leg.Context().Span) {
		t.Fatalf("hop parent %q, want leg span %q", hopSpan.Parent, FormatTraceID(leg.Context().Span))
	}
	if hopSpan.Pusher != "pusher-1" || hopSpan.Seq != 7 {
		t.Fatalf("annotation lost: %+v", hopSpan)
	}
	legSpan := byID[FormatTraceID(leg.Context().Span)]
	if legSpan.Parent != FormatTraceID(entry.Context().Span) {
		t.Fatal("leg parent is not the entry span")
	}
}

// TestSpanRingEvictionUnderChurn: a small ring hammered from many
// goroutines stays bounded, counts its evictions, and retains only the
// newest spans — run under -race this is also the locking test.
func TestSpanRingEvictionUnderChurn(t *testing.T) {
	const ringSize = 32
	o := New(Options{Node: "n1", TraceRing: ringSize})
	const workers = 8
	const perWorker = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sp := o.StartSpan("", "churn")
				sp.End()
				// Interleave reads with the churn.
				if i%64 == 0 {
					o.CollectTrace(sp.Context().Trace)
				}
			}
		}()
	}
	wg.Wait()
	held, recorded, dropped := o.TracerStats()
	if held != ringSize {
		t.Fatalf("ring holds %d spans, want exactly %d", held, ringSize)
	}
	if recorded != workers*perWorker {
		t.Fatalf("recorded %d, want %d", recorded, workers*perWorker)
	}
	if dropped != recorded-ringSize {
		t.Fatalf("dropped %d, want %d", dropped, recorded-ringSize)
	}
	// A span recorded after the churn is retrievable; ancient ones are
	// not (evicted by wrap).
	last := o.StartSpan("", "final")
	last.End()
	if got := o.CollectTrace(last.Context().Trace); len(got) != 1 {
		t.Fatalf("fresh span not retained: %d", len(got))
	}
}

// TestDisabledObserverZeroAllocs: the entire per-request call pattern
// on a nil observer — stage timings, span lifecycle, slow capture —
// must allocate nothing, so the disabled layer is free on the ingest
// hot path.
func TestDisabledObserverZeroAllocs(t *testing.T) {
	var o *Observer
	allocs := testing.AllocsPerRun(1000, func() {
		t0 := o.Start()
		sp := o.StartSpan("", "ingest")
		sp.Annotate("p", 1)
		o.StageSince(StageDecode, t0)
		o.Stage(StageDedup, time.Microsecond)
		o.Peer("replicate", "http://x", time.Microsecond)
		child := o.StartChild(sp.Context(), "leg")
		child.End()
		d := sp.End()
		o.CaptureSlow("ingest", sp.Context(), "p", 1, "", t0, d)
	})
	if allocs != 0 {
		t.Fatalf("disabled observer allocates %v per request, want 0", allocs)
	}
}

// TestSlowCaptureTopK: only the K slowest stick, ordered, with their
// span breakdowns; the threshold emits a structured warn line.
func TestSlowCaptureTopK(t *testing.T) {
	var logBuf bytes.Buffer
	lg := NewLogger(&logBuf, LevelDebug)
	lg.now = func() time.Time { return time.Unix(1700000000, 0) }
	o := New(Options{Node: "n1", TraceRing: 256, SlowCapture: 3, SlowThreshold: 40 * time.Millisecond, Log: lg})
	base := time.Unix(1700000000, 0)
	for i := 1; i <= 10; i++ {
		sp := o.StartSpan("", "ingest")
		sp.End()
		o.CaptureSlow("ingest", sp.Context(), "p", uint64(i), "", base, time.Duration(i)*10*time.Millisecond)
	}
	entries := o.SlowEntries()
	if len(entries) != 3 {
		t.Fatalf("kept %d entries, want 3", len(entries))
	}
	if entries[0].Seq != 10 || entries[1].Seq != 9 || entries[2].Seq != 8 {
		t.Fatalf("top-K wrong: %+v", entries)
	}
	for _, e := range entries {
		if len(e.Spans) == 0 || e.Trace == "" {
			t.Fatalf("entry lost its span breakdown: %+v", e)
		}
	}
	out := logBuf.String()
	if n := strings.Count(out, "level=warn"); n != 7 { // 40ms..100ms inclusive
		t.Fatalf("threshold warned %d times, want 7:\n%s", n, out)
	}
	if !strings.Contains(out, "component=slow") || !strings.Contains(out, "kind=ingest") {
		t.Fatalf("warn line missing fields:\n%s", out)
	}
}

// TestObserverMetricFamilies: exposition families carry HELP/TYPE
// metadata and the samples the scrape splices in.
func TestObserverMetricFamilies(t *testing.T) {
	o := New(Options{Node: "n1", TraceRing: 8})
	o.Stage(StageIngest, time.Millisecond)
	o.Peer("scatter", "http://peer", 2*time.Millisecond)
	fams := o.MetricFamilies()
	byName := map[string]MetricFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	st, ok := byName["witchd_stage_duration_seconds"]
	if !ok || st.Type != "histogram" || st.Help == "" {
		t.Fatalf("stage family missing or untyped: %+v", st)
	}
	if len(st.Samples) != int(numStages)*(numBoundaries+3) {
		t.Fatalf("stage family has %d samples, want %d", len(st.Samples), int(numStages)*(numBoundaries+3))
	}
	pr, ok := byName["witchd_peer_rtt_seconds"]
	if !ok {
		t.Fatal("peer family missing")
	}
	found := false
	for _, s := range pr.Samples {
		if strings.Contains(s, `op="scatter",peer="http://peer"`) {
			found = true
		}
	}
	if !found {
		t.Fatal("peer series missing labels")
	}
	if _, ok := byName["witchd_trace_spans_recorded_total"]; !ok {
		t.Fatal("tracer counter family missing")
	}
}
