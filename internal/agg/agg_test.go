package agg

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/witch"
)

// synth builds a profile with exactly-representable metric values so
// merge-order arithmetic is bit-exact and the associativity property
// can demand equality, not tolerance.
func synth(tool, program string, scale float64, pairs int) *witch.Profile {
	var ps []witch.Pair
	var waste, use float64
	for i := 0; i < pairs; i++ {
		w := scale * float64(8*(pairs-i)) // descending, integer-valued
		u := scale * float64(4*(i+1))
		ps = append(ps, witch.Pair{
			Src:   fmt.Sprintf("src.wa:f:%d", i),
			Dst:   fmt.Sprintf("dst.wa:g:%d", i),
			Chain: fmt.Sprintf("main -> f%d -> g%d", i, i),
			Waste: w, Use: u,
			SrcLine: i + 1, DstLine: i + 2,
		})
		waste += w
		use += u
	}
	return witch.NewProfile(witch.Profile{
		Program:    program,
		Tool:       tool,
		Redundancy: waste / (waste + use),
		Waste:      waste,
		Use:        use,
		WallTime:   time.Millisecond,
		Instrs:     1000,
		Loads:      300,
		Stores:     200,
	}, ps)
}

// run profiles a real workload so the properties also hold on profiles
// with proportional-attribution float values.
func run(t *testing.T, seed int64) *witch.Profile {
	t.Helper()
	prog, err := witch.Workload("listing3")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := witch.Run(prog, witch.Options{Tool: witch.DeadStores, Period: 97, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.TopPairs(0)) == 0 {
		t.Fatal("profile has no pairs")
	}
	return prof
}

func pairsEqual(t *testing.T, want, got []witch.Pair, context string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d pairs, want %d", context, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: pair %d = %+v, want %+v", context, i, got[i], want[i])
		}
	}
}

// TestMergeIdentity: merging one profile and snapshotting it back is
// lossless — same pairs in the same rank order, same scalars — which is
// the single-source round-trip the acceptance criteria demand; and an
// empty aggregator contributes nothing (merge with empty is identity).
func TestMergeIdentity(t *testing.T) {
	prof := run(t, 1)
	a := New()
	a.Merge(prof)
	a.MergeFrom(New()) // identity: empty right operand

	b := New()
	b.MergeFrom(a) // identity: folding through another aggregator
	for _, snap := range []*witch.Profile{a.Snapshot(prof.Tool, ""), b.Snapshot(prof.Tool, "")} {
		if snap == nil {
			t.Fatal("nil snapshot")
		}
		pairsEqual(t, prof.TopPairs(0), snap.TopPairs(0), "identity")
		if snap.Waste != prof.Waste || snap.Use != prof.Use {
			t.Fatalf("waste/use drifted: %g/%g want %g/%g", snap.Waste, snap.Use, prof.Waste, prof.Use)
		}
		if snap.Redundancy != prof.Redundancy {
			t.Fatalf("redundancy drifted: %g want %g", snap.Redundancy, prof.Redundancy)
		}
		if snap.Program != prof.Program || snap.Tool != prof.Tool {
			t.Fatalf("identity fields drifted: %q/%q", snap.Program, snap.Tool)
		}
		if snap.Stats != prof.Stats {
			t.Fatalf("stats drifted: %+v want %+v", snap.Stats, prof.Stats)
		}
		if snap.Health != prof.Health {
			t.Fatalf("health drifted: %+v want %+v", snap.Health, prof.Health)
		}
	}
}

// TestMergeSelfDoubles: merging a profile with itself doubles waste and
// use of every pair (and the totals) while preserving pair ranking and
// the redundancy fraction — §4.2 proportional attribution survives
// aggregation. Doubling any float is exact, so equality is exact.
func TestMergeSelfDoubles(t *testing.T) {
	prof := run(t, 1)
	a := New()
	a.Merge(prof)
	a.Merge(prof)
	snap := a.Snapshot(prof.Tool, "")

	orig := prof.TopPairs(0)
	got := snap.TopPairs(0)
	if len(got) != len(orig) {
		t.Fatalf("pair count changed: %d want %d", len(got), len(orig))
	}
	for i := range orig {
		if got[i].Src != orig[i].Src || got[i].Dst != orig[i].Dst || got[i].Chain != orig[i].Chain {
			t.Fatalf("rank %d changed identity: %+v want %+v", i, got[i], orig[i])
		}
		if got[i].Waste != 2*orig[i].Waste || got[i].Use != 2*orig[i].Use {
			t.Fatalf("rank %d not doubled: waste %g use %g, want %g/%g",
				i, got[i].Waste, got[i].Use, 2*orig[i].Waste, 2*orig[i].Use)
		}
	}
	if snap.Waste != 2*prof.Waste || snap.Use != 2*prof.Use {
		t.Fatalf("totals not doubled: %g/%g", snap.Waste, snap.Use)
	}
	if snap.Redundancy != prof.Redundancy {
		t.Fatalf("redundancy moved under self-merge: %g want %g", snap.Redundancy, prof.Redundancy)
	}
	if snap.Stats.Samples != 2*prof.Stats.Samples {
		t.Fatalf("stats not summed: %d want %d", snap.Stats.Samples, 2*prof.Stats.Samples)
	}
}

// TestMergeAssociative: ((p1⊕p2)⊕p3) == (p1⊕(p2⊕p3)) == one aggregator
// fed all three, including across MergeFrom (shard-boundary) folds.
// Exact equality holds because the synthetic metric values are small
// integers times a power of two.
func TestMergeAssociative(t *testing.T) {
	p1 := synth("dead", "alpha", 1, 6)
	p2 := synth("dead", "alpha", 0.5, 6)
	p3 := synth("dead", "beta", 2, 4)

	direct := New()
	direct.Merge(p1)
	direct.Merge(p2)
	direct.Merge(p3)

	left := New() // (p1 ⊕ p2) ⊕ p3
	l12 := New()
	l12.Merge(p1)
	l12.Merge(p2)
	left.MergeFrom(l12)
	left.Merge(p3)

	right := New() // p1 ⊕ (p2 ⊕ p3)
	r23 := New()
	r23.Merge(p2)
	r23.Merge(p3)
	right.Merge(p1)
	right.MergeFrom(r23)

	want := direct.Snapshot("dead", "")
	for name, a := range map[string]*Aggregator{"left-assoc": left, "right-assoc": right} {
		got := a.Snapshot("dead", "")
		pairsEqual(t, want.TopPairs(0), got.TopPairs(0), name)
		if got.Waste != want.Waste || got.Use != want.Use || got.Redundancy != want.Redundancy {
			t.Fatalf("%s: scalars differ: %g/%g/%g want %g/%g/%g", name,
				got.Waste, got.Use, got.Redundancy, want.Waste, want.Use, want.Redundancy)
		}
	}

	// Program filter slices out exactly one program's contribution.
	alpha := direct.Snapshot("dead", "alpha")
	if alpha.Waste != p1.Waste+p2.Waste {
		t.Fatalf("program filter waste %g, want %g", alpha.Waste, p1.Waste+p2.Waste)
	}
	if n := len(alpha.TopPairs(0)); n != 6 {
		t.Fatalf("program filter kept %d pairs, want 6", n)
	}
}

// TestToolsAreRouted: profiles of different tools never cross-merge.
func TestToolsAreRouted(t *testing.T) {
	a := New()
	a.Merge(synth("dead", "p", 1, 3))
	a.Merge(synth("load", "p", 1, 5))
	if got := a.Tools(); len(got) != 2 || got[0] != "dead" || got[1] != "load" {
		t.Fatalf("tools = %v", got)
	}
	if n := len(a.Snapshot("dead", "").TopPairs(0)); n != 3 {
		t.Fatalf("dead snapshot has %d pairs, want 3", n)
	}
	if n := len(a.Snapshot("load", "").TopPairs(0)); n != 5 {
		t.Fatalf("load snapshot has %d pairs, want 5", n)
	}
	if a.Snapshot("silent", "") != nil {
		t.Fatal("snapshot of unmerged tool should be nil")
	}
}

// TestMergeHealthCombination: counters sum, flags OR, register counts
// take worst-case, and zero EffectiveRegs (no substrate) never wins.
func TestMergeHealthCombination(t *testing.T) {
	x := witch.Health{SignalsLost: 2, ConfiguredRegs: 4, EffectiveRegs: 3, SampleLoss: true, Degraded: true}
	y := witch.Health{ArmFailures: 1, ConfiguredRegs: 2, EffectiveRegs: 2, RegistersShrunk: true, Degraded: true}
	got := MergeHealth(x, y)
	want := witch.Health{
		SignalsLost: 2, ArmFailures: 1,
		ConfiguredRegs: 4, EffectiveRegs: 2,
		RegistersShrunk: true, SampleLoss: true, Degraded: true,
	}
	if got != want {
		t.Fatalf("MergeHealth = %+v, want %+v", got, want)
	}
	if got := MergeHealth(witch.Health{}, x); got != x {
		t.Fatalf("zero-identity broken: %+v", got)
	}
	if got := MergeHealth(x, witch.Health{}); got != x {
		t.Fatalf("zero right operand changed health: %+v", got)
	}
}

// TestConcurrentMergeAndSnapshot drives parallel ingest and query
// against the shard locks; run under -race this is the aggregator's
// half of the concurrency satellite.
func TestConcurrentMergeAndSnapshot(t *testing.T) {
	prof := run(t, 1)
	a := New()
	const (
		writers = 8
		perG    = 25
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := synth("dead", fmt.Sprintf("prog-%d", w%4), 1, 8)
			for i := 0; i < perG; i++ {
				a.Merge(p)
				a.Merge(prof)
			}
		}(w)
	}
	// Concurrent readers.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if s := a.Snapshot("dead", ""); s != nil {
					_ = s.TopPairs(5)
				}
				_ = a.PairCount()
				_, _ = a.Health()
			}
		}()
	}
	wg.Wait()
	want := uint64(writers * perG * 2)
	if got := a.Profiles(); got != want {
		t.Fatalf("merged %d profiles, want %d", got, want)
	}
	// The synthetic profiles ("dead") and the real ones (prof.Tool,
	// "DeadCraft") are separate tool groups; neither may lose a merge.
	merges := float64(writers * perG)
	synthWant := merges * synth("dead", "x", 1, 8).Waste
	if got := a.Snapshot("dead", "").Waste; got != synthWant {
		t.Fatalf("concurrent synth merge lost waste: %g, want %g", got, synthWant)
	}
	profWant := merges * prof.Waste
	got := a.Snapshot(prof.Tool, "").Waste
	if diff := got - profWant; diff > 1e-6*profWant || diff < -1e-6*profWant {
		t.Fatalf("concurrent real merge lost waste: %g, want ~%g", got, profWant)
	}
}
