package agg

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/witch"
)

// topBenchAgg: 20k distinct pairs — big enough that full-sort vs
// partial-selection separates cleanly, small enough for -benchtime
// 1000x CI legs.
func topBenchAgg(b *testing.B) *Aggregator {
	b.Helper()
	const n = 20000
	rng := rand.New(rand.NewSource(7))
	a := NewSized(n)
	pairs := make([]witch.Pair, 0, n)
	for k := 0; k < n; k++ {
		pairs = append(pairs, witch.Pair{
			Src:   fmt.Sprintf("store_%06d", k),
			Dst:   fmt.Sprintf("load_%06d", k),
			Chain: fmt.Sprintf("s%06d->l%06d", k, k),
			Waste: rng.Float64() * 1000,
			Use:   rng.Float64() * 1000,
		})
	}
	a.Merge(witch.NewProfile(witch.Profile{
		Program: "bench", Tool: string(witch.DeadStores), Waste: 1, Use: 1,
	}, pairs))
	return a
}

// BenchmarkTopPairsFullSort is the pre-fast-path /v1/top cost: rank
// every pair to serve 20.
func BenchmarkTopPairsFullSort(b *testing.B) {
	a := topBenchAgg(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := a.Snapshot(string(witch.DeadStores), "bench")
		if len(p.TopPairs(20)) != 20 {
			b.Fatal("short result")
		}
	}
}

// BenchmarkTopPairsHeapSelect is the same query through the bounded
// heap: O(pairs · log n) comparisons and a 20-element result
// allocation instead of sorting 20k pairs.
func BenchmarkTopPairsHeapSelect(b *testing.B) {
	a := topBenchAgg(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := a.SnapshotTop(string(witch.DeadStores), "bench", 20)
		if len(p.TopPairs(0)) != 20 {
			b.Fatal("short result")
		}
	}
}
