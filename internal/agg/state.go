package agg

import (
	"sort"

	"repro/witch"
)

// State is the aggregator's exported snapshot codec: a flat, encodable
// image of every accumulator, used by internal/store to persist the
// retention ring and rollup. Loading a State rebuilds an aggregator
// whose every query answer is identical to the original's — the codec
// carries the raw sums, so no merge is re-run and no float is re-added
// in a different order.
type State struct {
	Metas []MetaState
	Pairs []PairState
}

// MetaState is one (tool, program) scalar accumulator.
type MetaState struct {
	Tool, Program string
	Profiles      uint64
	Waste, Use    float64
	WallNanos     int64
	ToolBytes     uint64
	Instrs        uint64
	Loads         uint64
	Stores        uint64
	Exhaustive    bool
	Stats         witch.Stats
	Health        witch.Health
}

// PairState is one merged pair stream's accumulator.
type PairState struct {
	Tool, Program    string
	Src, Dst, Chain  string
	Waste, Use       float64
	SrcLine, DstLine int
}

// State snapshots the aggregator. Safe for concurrent use with Merge,
// though callers wanting an exact cut must quiesce writers (the store
// and witchd's snapshot barrier do). Output order is deterministic so
// identical aggregates encode identically.
func (a *Aggregator) State() *State {
	st := &State{}
	a.metaMu.Lock()
	for k, m := range a.metas {
		st.Metas = append(st.Metas, MetaState{
			Tool: k.tool, Program: k.program,
			Profiles: m.profiles, Waste: m.waste, Use: m.use,
			WallNanos: m.wallNanos, ToolBytes: m.toolBytes,
			Instrs: m.instrs, Loads: m.loads, Stores: m.stores,
			Exhaustive: m.exhaustive, Stats: m.stats, Health: m.health,
		})
	}
	a.metaMu.Unlock()
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		for _, head := range sh.pairs {
			for acc := head; acc != nil; acc = acc.next {
				st.Pairs = append(st.Pairs, PairState{
					Tool: acc.tool, Program: acc.program,
					Src: acc.src, Dst: acc.dst, Chain: acc.chain,
					Waste: acc.waste, Use: acc.use,
					SrcLine: acc.srcLine, DstLine: acc.dstLine,
				})
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(st.Metas, func(i, j int) bool {
		if st.Metas[i].Tool != st.Metas[j].Tool {
			return st.Metas[i].Tool < st.Metas[j].Tool
		}
		return st.Metas[i].Program < st.Metas[j].Program
	})
	sort.Slice(st.Pairs, func(i, j int) bool {
		x, y := st.Pairs[i], st.Pairs[j]
		switch {
		case x.Tool != y.Tool:
			return x.Tool < y.Tool
		case x.Program != y.Program:
			return x.Program < y.Program
		case x.Src != y.Src:
			return x.Src < y.Src
		case x.Dst != y.Dst:
			return x.Dst < y.Dst
		}
		return x.Chain < y.Chain
	})
	return st
}

// MergeState folds a snapshot image into an existing aggregator —
// the cluster query plane's shard-merge entry point. A coordinator
// answers a fleet query by folding every peer's exported State into
// its own local view with the exact rules Merge/MergeFrom use:
// waste/use and counters sum, Stats sum (MaxBlindSpot is a max),
// Health flags OR. Safe for concurrent use with Merge on a.
func (a *Aggregator) MergeState(st *State) {
	for i := range st.Metas {
		m := &st.Metas[i]
		a.mergeMeta(metaKey{m.Tool, m.Program}, meta{
			profiles: m.Profiles, waste: m.Waste, use: m.Use,
			wallNanos: m.WallNanos, toolBytes: m.ToolBytes,
			instrs: m.Instrs, loads: m.Loads, stores: m.Stores,
			exhaustive: m.Exhaustive, stats: m.Stats, health: m.Health,
		})
	}
	for i := range st.Pairs {
		p := &st.Pairs[i]
		h := hashKey(p.Tool, p.Program, p.Src, p.Dst, p.Chain)
		sh := &a.shards[h&(numShards-1)]
		sh.mu.Lock()
		acc := sh.find(h, p.Tool, p.Program, p.Src, p.Dst, p.Chain)
		if acc == nil {
			acc = &pairAcc{
				pairKey: pairKey{p.Tool, p.Program, p.Src, p.Dst, p.Chain},
				hash:    h,
				srcLine: p.SrcLine, dstLine: p.DstLine,
			}
			sh.insert(acc)
		}
		acc.waste += p.Waste
		acc.use += p.Use
		sh.mu.Unlock()
	}
}

// FromState rebuilds an aggregator from a snapshot image, pre-sizing
// the shard maps from the known pair count.
func FromState(st *State) *Aggregator {
	a := NewSized(len(st.Pairs))
	for _, m := range st.Metas {
		a.metas[metaKey{m.Tool, m.Program}] = &meta{
			profiles: m.Profiles, waste: m.Waste, use: m.Use,
			wallNanos: m.WallNanos, toolBytes: m.ToolBytes,
			instrs: m.Instrs, loads: m.Loads, stores: m.Stores,
			exhaustive: m.Exhaustive, stats: m.Stats, health: m.Health,
		}
	}
	for _, p := range st.Pairs {
		h := hashKey(p.Tool, p.Program, p.Src, p.Dst, p.Chain)
		a.shards[h&(numShards-1)].insert(&pairAcc{
			pairKey: pairKey{p.Tool, p.Program, p.Src, p.Dst, p.Chain},
			hash:    h,
			waste:   p.Waste, use: p.Use,
			srcLine: p.SrcLine, dstLine: p.DstLine,
		})
	}
	return a
}
