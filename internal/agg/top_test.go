package agg

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/witch"
)

// syntheticAgg builds an aggregator holding n distinct pairs with
// colliding waste values (so tie-breaking paths are exercised).
func syntheticAgg(n int, seed int64) *Aggregator {
	rng := rand.New(rand.NewSource(seed))
	a := NewSized(n)
	const batch = 512
	for off := 0; off < n; off += batch {
		m := batch
		if off+m > n {
			m = n - off
		}
		pairs := make([]witch.Pair, 0, m)
		for i := 0; i < m; i++ {
			k := off + i
			pairs = append(pairs, witch.Pair{
				Src:   fmt.Sprintf("store_%06d", k),
				Dst:   fmt.Sprintf("load_%06d", k),
				Chain: fmt.Sprintf("s%06d->l%06d", k, k),
				// Few distinct waste values: heavy ties.
				Waste: float64(rng.Intn(50)),
				Use:   float64(rng.Intn(100)),
			})
		}
		a.Merge(witch.NewProfile(witch.Profile{
			Program: "synthetic", Tool: string(witch.DeadStores),
			Waste: 1, Use: 1,
		}, pairs))
	}
	return a
}

// TestPairsForTopMatchesFullSort: the bounded-heap selection must
// return the exact prefix of the fully sorted ranking, ties included.
func TestPairsForTopMatchesFullSort(t *testing.T) {
	for _, total := range []int{0, 1, 7, 100, 3000} {
		a := syntheticAgg(total, int64(total)+1)
		full := a.pairsFor(string(witch.DeadStores), "synthetic")
		if len(full) != total {
			t.Fatalf("pairsFor returned %d pairs, want %d", len(full), total)
		}
		if !sort.SliceIsSorted(full, func(i, j int) bool { return pairLess(&full[i], &full[j]) }) {
			t.Fatalf("pairsFor output not sorted (total=%d)", total)
		}
		for _, n := range []int{1, 2, 3, 10, 20, total - 1, total, total + 5} {
			if n <= 0 {
				continue
			}
			got := a.pairsForTop(string(witch.DeadStores), "synthetic", n)
			want := full
			if n < len(full) {
				want = full[:n]
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("pairsForTop(n=%d, total=%d) diverges from full sort prefix", n, total)
			}
		}
	}
}

// TestSnapshotTopMatchesSnapshot: the top-n profile must be the full
// snapshot with its pair list truncated — same meta, same JSON prefix.
func TestSnapshotTopMatchesSnapshot(t *testing.T) {
	a := syntheticAgg(500, 9)
	full := a.Snapshot(string(witch.DeadStores), "synthetic")
	top := a.SnapshotTop(string(witch.DeadStores), "synthetic", 20)
	if full == nil || top == nil {
		t.Fatal("nil snapshot")
	}
	if got, want := top.TopPairs(0), full.TopPairs(20); !reflect.DeepEqual(got, want) {
		t.Fatalf("SnapshotTop pairs diverge from truncated Snapshot pairs")
	}
	if top.Waste != full.Waste || top.Use != full.Use || top.Redundancy != full.Redundancy {
		t.Fatalf("SnapshotTop meta diverges: waste %v/%v use %v/%v", top.Waste, full.Waste, top.Use, full.Use)
	}
	// n <= 0 and missing keys degrade exactly like Snapshot.
	if got := a.SnapshotTop(string(witch.DeadStores), "synthetic", 0); got == nil || len(got.TopPairs(0)) != 500 {
		t.Fatal("SnapshotTop(n<=0) should be the unbounded snapshot")
	}
	if a.SnapshotTop("no-such-tool", "", 20) != nil {
		t.Fatal("SnapshotTop of unknown tool should be nil")
	}
}
