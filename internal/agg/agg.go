// Package agg merges witch profiles from many runs, processes, and
// machines into one queryable view — the fleet-level aggregation layer
// behind the witchd daemon. The paper separates collection from
// inspection (hpcrun measurement files consumed postmortem by hpcviewer,
// §6.5); agg extends that split from one file per run to a continuous
// stream of runs.
//
// Merging preserves the §4.2 proportional-attribution semantics: every
// pair's waste and use are plain sums over the contributing profiles, so
// merging k identical profiles scales waste and use by k while the
// redundancy fraction waste/(waste+use) — Equation 1 — stays fixed.
// Merge is commutative and associative (it is a sum), which is what lets
// the store fold expired retention buckets into a rollup without
// changing any ranking.
//
// The aggregator is lock-striped: pair accumulators are sharded by a
// hash of their ⟨tool, program, context-pair signature⟩ key so
// concurrent ingest from many pushers contends only per shard, and the
// per-(tool, program) scalar totals live under a separate small lock.
package agg

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/witch"
)

// numShards is the lock-stripe width for pair accumulators. 64 shards
// keep 8–16 concurrent pushers mostly contention-free while the
// per-shard maps stay small enough to snapshot cheaply. Must be a power
// of two: shard routing is a mask over the precomputed pair hash.
const numShards = 64

// pairKey identifies one merged pair stream: the tool that found it, the
// program it was found in, and the full context-pair signature (leaf
// locations plus the synthetic chain, i.e. the complete ⟨C_watch,
// C_trap⟩ calling contexts of §4.2 — two pairs with the same leaves but
// different chains stay distinct, exactly as they do in one profile).
type pairKey struct {
	tool    string
	program string
	src     string
	dst     string
	chain   string
}

// pairAcc accumulates one pair stream's metrics. It embeds its key and
// the key's 64-bit hash — the map is keyed by that hash alone (one
// word-sized comparison instead of five string comparisons on lookup),
// with genuine hash collisions chained through next and resolved by
// full key equality.
type pairAcc struct {
	pairKey
	hash             uint64
	waste, use       float64
	srcLine, dstLine int
	next             *pairAcc // hash-collision chain
}

// shard is one lock stripe of the pair map. count tracks accumulators
// including chained collisions, which len(pairs) would undercount.
type shard struct {
	mu    sync.Mutex
	pairs map[uint64]*pairAcc
	count int
}

// find walks the hash slot's chain for an exact key match. Caller holds
// sh.mu.
func (sh *shard) find(h uint64, tool, program, src, dst, chain string) *pairAcc {
	for acc := sh.pairs[h]; acc != nil; acc = acc.next {
		if acc.tool == tool && acc.program == program &&
			acc.src == src && acc.dst == dst && acc.chain == chain {
			return acc
		}
	}
	return nil
}

// insert adds a new accumulator to its hash slot. Caller holds sh.mu
// and has checked find missed.
func (sh *shard) insert(acc *pairAcc) {
	acc.next = sh.pairs[acc.hash]
	sh.pairs[acc.hash] = acc
	sh.count++
}

// FNV-1a 64 constants; the hash is computed inline (hash/fnv's Writer
// interface would allocate per string on this, the hottest loop the
// daemon has).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// hashPart folds one string plus a 0-byte separator into h, so
// ("ab","c") and ("a","bc") hash differently.
func hashPart(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	h *= fnvPrime64 // separator: h ^= 0 is a no-op, the multiply is not
	return h
}

// hashKey computes the pair-stream hash used for both shard routing
// (low bits) and map keying.
func hashKey(tool, program, src, dst, chain string) uint64 {
	h := hashPart(fnvOffset64, tool)
	h = hashPart(h, program)
	h = hashPart(h, src)
	h = hashPart(h, dst)
	return hashPart(h, chain)
}

// metaKey groups profile-level scalars.
type metaKey struct {
	tool    string
	program string
}

// meta is the per-(tool, program) scalar accumulator.
type meta struct {
	profiles   uint64
	waste, use float64
	wallNanos  int64
	toolBytes  uint64
	instrs     uint64
	loads      uint64
	stores     uint64
	exhaustive bool
	stats      witch.Stats
	health     witch.Health
}

// Aggregator merges profiles. The zero value is not usable; call New.
type Aggregator struct {
	shards [numShards]shard

	metaMu sync.Mutex
	metas  map[metaKey]*meta
}

// New returns an empty aggregator.
func New() *Aggregator { return NewSized(0) }

// NewSized returns an empty aggregator whose shard maps are pre-sized
// for about pairHint distinct pair streams, so a bulk fold (retention
// rollup, a query-time merge of the ring) skips the incremental map
// growth. A zero or negative hint means no pre-sizing.
func NewSized(pairHint int) *Aggregator {
	a := &Aggregator{metas: make(map[metaKey]*meta)}
	per := 0
	if pairHint > 0 {
		per = pairHint/numShards + 1
	}
	for i := range a.shards {
		a.shards[i].pairs = make(map[uint64]*pairAcc, per)
	}
	return a
}

// Merge folds one profile into the aggregate. Safe for concurrent use.
func (a *Aggregator) Merge(p *witch.Profile) {
	a.mergeMeta(metaKey{p.Tool, p.Program}, meta{
		profiles:   1,
		waste:      p.Waste,
		use:        p.Use,
		wallNanos:  p.WallTime.Nanoseconds(),
		toolBytes:  p.ToolBytes,
		instrs:     p.Instrs,
		loads:      p.Loads,
		stores:     p.Stores,
		exhaustive: p.Exhaustive,
		stats:      p.Stats,
		health:     p.Health,
	})
	for _, pr := range p.TopPairs(0) {
		h := hashKey(p.Tool, p.Program, pr.Src, pr.Dst, pr.Chain)
		sh := &a.shards[h&(numShards-1)]
		sh.mu.Lock()
		acc := sh.find(h, p.Tool, p.Program, pr.Src, pr.Dst, pr.Chain)
		if acc == nil {
			acc = &pairAcc{
				pairKey: pairKey{p.Tool, p.Program, pr.Src, pr.Dst, pr.Chain},
				hash:    h,
				srcLine: pr.SrcLine, dstLine: pr.DstLine,
			}
			sh.insert(acc)
		}
		acc.waste += pr.Waste
		acc.use += pr.Use
		sh.mu.Unlock()
	}
}

// MergeFrom folds another aggregator into this one — the operation the
// store uses to roll expired retention buckets into the long-tail
// rollup, and the reason merge associativity across shard boundaries is
// a tested property. Concurrent Merge calls on either side are safe
// (everything is read and written under the shard locks), but a merge
// landing in other mid-copy may miss this pass — callers wanting an
// exact cut must quiesce other first, as the store's eviction does. Two
// aggregators must not MergeFrom each other concurrently (lock order).
func (a *Aggregator) MergeFrom(other *Aggregator) {
	other.metaMu.Lock()
	for k, m := range other.metas {
		a.mergeMeta(k, *m)
	}
	other.metaMu.Unlock()
	for i := range other.shards {
		osh := &other.shards[i]
		osh.mu.Lock()
		for _, head := range osh.pairs {
			// The source accumulator carries its hash, so a cross-
			// aggregator fold never re-hashes a single string.
			for acc := head; acc != nil; acc = acc.next {
				sh := &a.shards[acc.hash&(numShards-1)]
				sh.mu.Lock()
				dst := sh.find(acc.hash, acc.tool, acc.program, acc.src, acc.dst, acc.chain)
				if dst == nil {
					dst = &pairAcc{
						pairKey: acc.pairKey,
						hash:    acc.hash,
						srcLine: acc.srcLine, dstLine: acc.dstLine,
					}
					sh.insert(dst)
				}
				dst.waste += acc.waste
				dst.use += acc.use
				sh.mu.Unlock()
			}
		}
		osh.mu.Unlock()
	}
}

// mergeMeta folds one scalar bundle into the (tool, program) totals.
// By-value m keeps the per-profile bundle off the heap except on the
// first sighting of a (tool, program) group.
func (a *Aggregator) mergeMeta(k metaKey, m meta) {
	a.metaMu.Lock()
	defer a.metaMu.Unlock()
	dst := a.metas[k]
	if dst == nil {
		cp := m
		a.metas[k] = &cp
		return
	}
	dst.profiles += m.profiles
	dst.waste += m.waste
	dst.use += m.use
	dst.wallNanos += m.wallNanos
	dst.toolBytes += m.toolBytes
	dst.instrs += m.instrs
	dst.loads += m.loads
	dst.stores += m.stores
	dst.exhaustive = dst.exhaustive || m.exhaustive
	dst.stats = mergeStats(dst.stats, m.stats)
	dst.health = MergeHealth(dst.health, m.health)
}

// mergeStats sums framework counters; MaxBlindSpot is a maximum, not a
// sum — the fleet-level figure is the worst blind spot any run saw.
func mergeStats(x, y witch.Stats) witch.Stats {
	x.Samples += y.Samples
	x.Monitored += y.Monitored
	x.Traps += y.Traps
	x.SpuriousTraps += y.SpuriousTraps
	if y.MaxBlindSpot > x.MaxBlindSpot {
		x.MaxBlindSpot = y.MaxBlindSpot
	}
	x.Opens += y.Opens
	x.Closes += y.Closes
	x.Modifies += y.Modifies
	x.DisasmInstrs += y.DisasmInstrs
	return x
}

// MergeHealth combines degradation records: counters sum, flags OR,
// ConfiguredRegs is the largest configuration seen and EffectiveRegs the
// smallest any contributing run ended with (zero means "no sampling
// substrate", e.g. an exhaustive run, and never wins the minimum). The
// /healthz endpoint serves this so degraded clients are visible
// fleet-wide.
func MergeHealth(x, y witch.Health) witch.Health {
	x.SignalsLost += y.SignalsLost
	x.RingLost += y.RingLost
	x.ArmFailures += y.ArmFailures
	x.ArmRetries += y.ArmRetries
	x.ModifyFallbacks += y.ModifyFallbacks
	x.LBROutages += y.LBROutages
	if y.ConfiguredRegs > x.ConfiguredRegs {
		x.ConfiguredRegs = y.ConfiguredRegs
	}
	if y.EffectiveRegs > 0 && (x.EffectiveRegs == 0 || y.EffectiveRegs < x.EffectiveRegs) {
		x.EffectiveRegs = y.EffectiveRegs
	}
	x.RegistersShrunk = x.RegistersShrunk || y.RegistersShrunk
	x.SampleLoss = x.SampleLoss || y.SampleLoss
	x.Degraded = x.Degraded || y.Degraded
	return x
}

// Snapshot re-materializes the merged profile for one tool, optionally
// filtered to one program (program == "" merges across programs). Pairs
// are ranked exactly as a single profile ranks them — waste descending,
// chain ascending on ties — so a single-source snapshot round-trips
// bit-compatibly through WriteJSON/witchdiff. Returns nil if nothing
// matching has been merged.
func (a *Aggregator) Snapshot(tool, program string) *witch.Profile {
	mk, n := a.combinedMeta(tool, program)
	if n == 0 {
		return nil
	}
	progName := program
	if program == "" {
		progs := a.Programs(tool)
		if len(progs) == 1 {
			progName = progs[0]
		} else {
			progName = fmt.Sprintf("merged(%d programs)", len(progs))
		}
	}
	pairs := a.pairsFor(tool, program)
	red := 0.0
	if mk.waste+mk.use > 0 {
		red = mk.waste / (mk.waste + mk.use)
	}
	return witch.NewProfile(witch.Profile{
		Program:    progName,
		Tool:       tool,
		Exhaustive: mk.exhaustive,
		Redundancy: red,
		Waste:      mk.waste,
		Use:        mk.use,
		WallTime:   time.Duration(mk.wallNanos),
		ToolBytes:  mk.toolBytes,
		Instrs:     mk.instrs,
		Loads:      mk.loads,
		Stores:     mk.stores,
		Stats:      mk.stats,
		Health:     mk.health,
	}, pairs)
}

// combinedMeta folds the matching (tool, program) scalar groups and
// returns the number of contributing profiles.
func (a *Aggregator) combinedMeta(tool, program string) (meta, uint64) {
	var out meta
	a.metaMu.Lock()
	defer a.metaMu.Unlock()
	for k, m := range a.metas {
		if k.tool != tool || (program != "" && k.program != program) {
			continue
		}
		out.profiles += m.profiles
		out.waste += m.waste
		out.use += m.use
		out.wallNanos += m.wallNanos
		out.toolBytes += m.toolBytes
		out.instrs += m.instrs
		out.loads += m.loads
		out.stores += m.stores
		out.exhaustive = out.exhaustive || m.exhaustive
		out.stats = mergeStats(out.stats, m.stats)
		out.health = MergeHealth(out.health, m.health)
	}
	return out, out.profiles
}

// pairsFor collects and ranks the merged pairs matching a tool and
// optional program filter. Witch.Pair carries the chain, so ranking
// sorts the output slice directly — no wrapper structs — and a count
// pass sizes that one allocation exactly.
func (a *Aggregator) pairsFor(tool, program string) []witch.Pair {
	match := func(acc *pairAcc) bool {
		return acc.tool == tool && (program == "" || acc.program == program)
	}
	n := 0
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		for _, head := range sh.pairs {
			for acc := head; acc != nil; acc = acc.next {
				if match(acc) {
					n++
				}
			}
		}
		sh.mu.Unlock()
	}
	out := make([]witch.Pair, 0, n)
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		for _, head := range sh.pairs {
			for acc := head; acc != nil; acc = acc.next {
				if !match(acc) {
					continue
				}
				out = append(out, witch.Pair{
					Src: acc.src, Dst: acc.dst, Chain: acc.chain,
					Waste: acc.waste, Use: acc.use,
					SrcLine: acc.srcLine, DstLine: acc.dstLine,
				})
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return pairLess(&out[i], &out[j]) })
	return out
}

// pairLess is the canonical pair ranking: waste descending, then chain,
// source, destination ascending — the order a single profile ranks its
// own pairs, shared by the full sort and the top-n selection.
func pairLess(a, b *witch.Pair) bool {
	if a.Waste != b.Waste {
		return a.Waste > b.Waste
	}
	if a.Chain != b.Chain {
		return a.Chain < b.Chain
	}
	if a.Src != b.Src {
		return a.Src < b.Src
	}
	return a.Dst < b.Dst
}

// pairsForTop is pairsFor truncated to the n best-ranked pairs without
// sorting the rest: a bounded min-heap (worst-of-the-best at the root)
// admits each candidate in O(log n), so selecting 20 of 100k pairs does
// ~100k comparisons instead of a 100k-element sort. n <= 0 means no
// bound (plain pairsFor). The result is the exact prefix a full sort
// would produce.
func (a *Aggregator) pairsForTop(tool, program string, n int) []witch.Pair {
	if n <= 0 {
		return a.pairsFor(tool, program)
	}
	match := func(acc *pairAcc) bool {
		return acc.tool == tool && (program == "" || acc.program == program)
	}
	// heap[0] is the WORST retained pair; heapWorse orders the heap so a
	// candidate better than the root evicts it.
	heap := make([]witch.Pair, 0, n)
	heapWorse := func(i, j int) bool { return pairLess(&heap[j], &heap[i]) }
	siftDown := func(i int) {
		for {
			l, r := 2*i+1, 2*i+2
			w := i
			if l < len(heap) && heapWorse(l, w) {
				w = l
			}
			if r < len(heap) && heapWorse(r, w) {
				w = r
			}
			if w == i {
				return
			}
			heap[i], heap[w] = heap[w], heap[i]
			i = w
		}
	}
	siftUp := func(i int) {
		for i > 0 {
			p := (i - 1) / 2
			if !heapWorse(i, p) {
				return
			}
			heap[i], heap[p] = heap[p], heap[i]
			i = p
		}
	}
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		for _, head := range sh.pairs {
			for acc := head; acc != nil; acc = acc.next {
				if !match(acc) {
					continue
				}
				p := witch.Pair{
					Src: acc.src, Dst: acc.dst, Chain: acc.chain,
					Waste: acc.waste, Use: acc.use,
					SrcLine: acc.srcLine, DstLine: acc.dstLine,
				}
				if len(heap) < n {
					heap = append(heap, p)
					siftUp(len(heap) - 1)
				} else if pairLess(&p, &heap[0]) {
					heap[0] = p
					siftDown(0)
				}
			}
		}
		sh.mu.Unlock()
	}
	sort.Slice(heap, func(i, j int) bool { return pairLess(&heap[i], &heap[j]) })
	return heap
}

// SnapshotTop is Snapshot bounded to the n highest-ranked pairs — the
// /v1/top serving path, where n is the dashboard's page size and the
// pair population is the whole retained state. Identical to
// Snapshot(tool, program) with the pair list truncated to n; meta
// scalars still cover every matching pair.
func (a *Aggregator) SnapshotTop(tool, program string, n int) *witch.Profile {
	if n <= 0 {
		return a.Snapshot(tool, program)
	}
	mk, cnt := a.combinedMeta(tool, program)
	if cnt == 0 {
		return nil
	}
	progName := program
	if program == "" {
		progs := a.Programs(tool)
		if len(progs) == 1 {
			progName = progs[0]
		} else {
			progName = fmt.Sprintf("merged(%d programs)", len(progs))
		}
	}
	pairs := a.pairsForTop(tool, program, n)
	red := 0.0
	if mk.waste+mk.use > 0 {
		red = mk.waste / (mk.waste + mk.use)
	}
	return witch.NewProfile(witch.Profile{
		Program:    progName,
		Tool:       tool,
		Exhaustive: mk.exhaustive,
		Redundancy: red,
		Waste:      mk.waste,
		Use:        mk.use,
		WallTime:   time.Duration(mk.wallNanos),
		ToolBytes:  mk.toolBytes,
		Instrs:     mk.instrs,
		Loads:      mk.loads,
		Stores:     mk.stores,
		Stats:      mk.stats,
		Health:     mk.health,
	}, pairs)
}

// Tools lists the tools with merged data, sorted.
func (a *Aggregator) Tools() []string {
	a.metaMu.Lock()
	set := make(map[string]bool, len(a.metas))
	for k := range a.metas {
		set[k.tool] = true
	}
	a.metaMu.Unlock()
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Programs lists the programs with merged data for a tool, sorted.
func (a *Aggregator) Programs(tool string) []string {
	a.metaMu.Lock()
	set := make(map[string]bool)
	for k := range a.metas {
		if k.tool == tool {
			set[k.program] = true
		}
	}
	a.metaMu.Unlock()
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Profiles returns how many profiles have been merged in, across all
// tools and programs.
func (a *Aggregator) Profiles() uint64 {
	a.metaMu.Lock()
	defer a.metaMu.Unlock()
	var n uint64
	for _, m := range a.metas {
		n += m.profiles
	}
	return n
}

// PairCount returns the number of distinct merged pair streams held —
// the live-memory figure retention eviction is meant to bound.
func (a *Aggregator) PairCount() int {
	var n int
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		n += sh.count
		sh.mu.Unlock()
	}
	return n
}

// Health returns the fleet-wide combined degradation record and the
// number of profiles it covers.
func (a *Aggregator) Health() (witch.Health, uint64) {
	a.metaMu.Lock()
	defer a.metaMu.Unlock()
	var h witch.Health
	var n uint64
	for _, m := range a.metas {
		h = MergeHealth(h, m.health)
		n += m.profiles
	}
	return h, n
}
