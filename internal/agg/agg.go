// Package agg merges witch profiles from many runs, processes, and
// machines into one queryable view — the fleet-level aggregation layer
// behind the witchd daemon. The paper separates collection from
// inspection (hpcrun measurement files consumed postmortem by hpcviewer,
// §6.5); agg extends that split from one file per run to a continuous
// stream of runs.
//
// Merging preserves the §4.2 proportional-attribution semantics: every
// pair's waste and use are plain sums over the contributing profiles, so
// merging k identical profiles scales waste and use by k while the
// redundancy fraction waste/(waste+use) — Equation 1 — stays fixed.
// Merge is commutative and associative (it is a sum), which is what lets
// the store fold expired retention buckets into a rollup without
// changing any ranking.
//
// The aggregator is lock-striped: pair accumulators are sharded by a
// hash of their ⟨tool, program, context-pair signature⟩ key so
// concurrent ingest from many pushers contends only per shard, and the
// per-(tool, program) scalar totals live under a separate small lock.
package agg

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"repro/witch"
)

// numShards is the lock-stripe width for pair accumulators. 64 shards
// keep 8–16 concurrent pushers mostly contention-free while the
// per-shard maps stay small enough to snapshot cheaply.
const numShards = 64

// pairKey identifies one merged pair stream: the tool that found it, the
// program it was found in, and the full context-pair signature (leaf
// locations plus the synthetic chain, i.e. the complete ⟨C_watch,
// C_trap⟩ calling contexts of §4.2 — two pairs with the same leaves but
// different chains stay distinct, exactly as they do in one profile).
type pairKey struct {
	tool    string
	program string
	src     string
	dst     string
	chain   string
}

// pairAcc accumulates one pair stream's metrics.
type pairAcc struct {
	waste, use       float64
	srcLine, dstLine int
}

// shard is one lock stripe of the pair map.
type shard struct {
	mu    sync.Mutex
	pairs map[pairKey]*pairAcc
}

// metaKey groups profile-level scalars.
type metaKey struct {
	tool    string
	program string
}

// meta is the per-(tool, program) scalar accumulator.
type meta struct {
	profiles   uint64
	waste, use float64
	wallNanos  int64
	toolBytes  uint64
	instrs     uint64
	loads      uint64
	stores     uint64
	exhaustive bool
	stats      witch.Stats
	health     witch.Health
}

// Aggregator merges profiles. The zero value is not usable; call New.
type Aggregator struct {
	shards [numShards]shard

	metaMu sync.Mutex
	metas  map[metaKey]*meta
}

// New returns an empty aggregator.
func New() *Aggregator {
	a := &Aggregator{metas: make(map[metaKey]*meta)}
	for i := range a.shards {
		a.shards[i].pairs = make(map[pairKey]*pairAcc)
	}
	return a
}

// shardFor hashes a pair key onto its lock stripe.
func shardFor(k pairKey) int {
	h := fnv.New32a()
	h.Write([]byte(k.tool))
	h.Write([]byte{0})
	h.Write([]byte(k.program))
	h.Write([]byte{0})
	h.Write([]byte(k.src))
	h.Write([]byte{0})
	h.Write([]byte(k.dst))
	h.Write([]byte{0})
	h.Write([]byte(k.chain))
	return int(h.Sum32() % numShards)
}

// Merge folds one profile into the aggregate. Safe for concurrent use.
func (a *Aggregator) Merge(p *witch.Profile) {
	a.mergeMeta(metaKey{p.Tool, p.Program}, &meta{
		profiles:   1,
		waste:      p.Waste,
		use:        p.Use,
		wallNanos:  p.WallTime.Nanoseconds(),
		toolBytes:  p.ToolBytes,
		instrs:     p.Instrs,
		loads:      p.Loads,
		stores:     p.Stores,
		exhaustive: p.Exhaustive,
		stats:      p.Stats,
		health:     p.Health,
	})
	for _, pr := range p.TopPairs(0) {
		k := pairKey{p.Tool, p.Program, pr.Src, pr.Dst, pr.Chain}
		sh := &a.shards[shardFor(k)]
		sh.mu.Lock()
		acc := sh.pairs[k]
		if acc == nil {
			acc = &pairAcc{srcLine: pr.SrcLine, dstLine: pr.DstLine}
			sh.pairs[k] = acc
		}
		acc.waste += pr.Waste
		acc.use += pr.Use
		sh.mu.Unlock()
	}
}

// MergeFrom folds another aggregator into this one — the operation the
// store uses to roll expired retention buckets into the long-tail
// rollup, and the reason merge associativity across shard boundaries is
// a tested property. Concurrent Merge calls on either side are safe
// (everything is read and written under the shard locks), but a merge
// landing in other mid-copy may miss this pass — callers wanting an
// exact cut must quiesce other first, as the store's eviction does. Two
// aggregators must not MergeFrom each other concurrently (lock order).
func (a *Aggregator) MergeFrom(other *Aggregator) {
	other.metaMu.Lock()
	for k, m := range other.metas {
		cp := *m
		a.mergeMeta(k, &cp)
	}
	other.metaMu.Unlock()
	for i := range other.shards {
		osh := &other.shards[i]
		osh.mu.Lock()
		for k, acc := range osh.pairs {
			sh := &a.shards[shardFor(k)]
			sh.mu.Lock()
			dst := sh.pairs[k]
			if dst == nil {
				dst = &pairAcc{srcLine: acc.srcLine, dstLine: acc.dstLine}
				sh.pairs[k] = dst
			}
			dst.waste += acc.waste
			dst.use += acc.use
			sh.mu.Unlock()
		}
		osh.mu.Unlock()
	}
}

// mergeMeta folds one scalar bundle into the (tool, program) totals.
func (a *Aggregator) mergeMeta(k metaKey, m *meta) {
	a.metaMu.Lock()
	defer a.metaMu.Unlock()
	dst := a.metas[k]
	if dst == nil {
		a.metas[k] = m
		return
	}
	dst.profiles += m.profiles
	dst.waste += m.waste
	dst.use += m.use
	dst.wallNanos += m.wallNanos
	dst.toolBytes += m.toolBytes
	dst.instrs += m.instrs
	dst.loads += m.loads
	dst.stores += m.stores
	dst.exhaustive = dst.exhaustive || m.exhaustive
	dst.stats = mergeStats(dst.stats, m.stats)
	dst.health = MergeHealth(dst.health, m.health)
}

// mergeStats sums framework counters; MaxBlindSpot is a maximum, not a
// sum — the fleet-level figure is the worst blind spot any run saw.
func mergeStats(x, y witch.Stats) witch.Stats {
	x.Samples += y.Samples
	x.Monitored += y.Monitored
	x.Traps += y.Traps
	x.SpuriousTraps += y.SpuriousTraps
	if y.MaxBlindSpot > x.MaxBlindSpot {
		x.MaxBlindSpot = y.MaxBlindSpot
	}
	x.Opens += y.Opens
	x.Closes += y.Closes
	x.Modifies += y.Modifies
	x.DisasmInstrs += y.DisasmInstrs
	return x
}

// MergeHealth combines degradation records: counters sum, flags OR,
// ConfiguredRegs is the largest configuration seen and EffectiveRegs the
// smallest any contributing run ended with (zero means "no sampling
// substrate", e.g. an exhaustive run, and never wins the minimum). The
// /healthz endpoint serves this so degraded clients are visible
// fleet-wide.
func MergeHealth(x, y witch.Health) witch.Health {
	x.SignalsLost += y.SignalsLost
	x.RingLost += y.RingLost
	x.ArmFailures += y.ArmFailures
	x.ArmRetries += y.ArmRetries
	x.ModifyFallbacks += y.ModifyFallbacks
	x.LBROutages += y.LBROutages
	if y.ConfiguredRegs > x.ConfiguredRegs {
		x.ConfiguredRegs = y.ConfiguredRegs
	}
	if y.EffectiveRegs > 0 && (x.EffectiveRegs == 0 || y.EffectiveRegs < x.EffectiveRegs) {
		x.EffectiveRegs = y.EffectiveRegs
	}
	x.RegistersShrunk = x.RegistersShrunk || y.RegistersShrunk
	x.SampleLoss = x.SampleLoss || y.SampleLoss
	x.Degraded = x.Degraded || y.Degraded
	return x
}

// Snapshot re-materializes the merged profile for one tool, optionally
// filtered to one program (program == "" merges across programs). Pairs
// are ranked exactly as a single profile ranks them — waste descending,
// chain ascending on ties — so a single-source snapshot round-trips
// bit-compatibly through WriteJSON/witchdiff. Returns nil if nothing
// matching has been merged.
func (a *Aggregator) Snapshot(tool, program string) *witch.Profile {
	mk, n := a.combinedMeta(tool, program)
	if n == 0 {
		return nil
	}
	progName := program
	if program == "" {
		progs := a.Programs(tool)
		if len(progs) == 1 {
			progName = progs[0]
		} else {
			progName = fmt.Sprintf("merged(%d programs)", len(progs))
		}
	}
	pairs := a.pairsFor(tool, program)
	red := 0.0
	if mk.waste+mk.use > 0 {
		red = mk.waste / (mk.waste + mk.use)
	}
	return witch.NewProfile(witch.Profile{
		Program:    progName,
		Tool:       tool,
		Exhaustive: mk.exhaustive,
		Redundancy: red,
		Waste:      mk.waste,
		Use:        mk.use,
		WallTime:   time.Duration(mk.wallNanos),
		ToolBytes:  mk.toolBytes,
		Instrs:     mk.instrs,
		Loads:      mk.loads,
		Stores:     mk.stores,
		Stats:      mk.stats,
		Health:     mk.health,
	}, pairs)
}

// combinedMeta folds the matching (tool, program) scalar groups and
// returns the number of contributing profiles.
func (a *Aggregator) combinedMeta(tool, program string) (meta, uint64) {
	var out meta
	a.metaMu.Lock()
	defer a.metaMu.Unlock()
	for k, m := range a.metas {
		if k.tool != tool || (program != "" && k.program != program) {
			continue
		}
		out.profiles += m.profiles
		out.waste += m.waste
		out.use += m.use
		out.wallNanos += m.wallNanos
		out.toolBytes += m.toolBytes
		out.instrs += m.instrs
		out.loads += m.loads
		out.stores += m.stores
		out.exhaustive = out.exhaustive || m.exhaustive
		out.stats = mergeStats(out.stats, m.stats)
		out.health = MergeHealth(out.health, m.health)
	}
	return out, out.profiles
}

// pairsFor collects and ranks the merged pairs matching a tool and
// optional program filter.
func (a *Aggregator) pairsFor(tool, program string) []witch.Pair {
	type ranked struct {
		witch.Pair
		chain string
	}
	var out []ranked
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		for k, acc := range sh.pairs {
			if k.tool != tool || (program != "" && k.program != program) {
				continue
			}
			out = append(out, ranked{witch.Pair{
				Src: k.src, Dst: k.dst, Chain: k.chain,
				Waste: acc.waste, Use: acc.use,
				SrcLine: acc.srcLine, DstLine: acc.dstLine,
			}, k.chain})
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Waste != out[j].Waste {
			return out[i].Waste > out[j].Waste
		}
		if out[i].chain != out[j].chain {
			return out[i].chain < out[j].chain
		}
		if out[i].Src != out[j].Src {
			return out[i].Src < out[j].Src
		}
		return out[i].Dst < out[j].Dst
	})
	pairs := make([]witch.Pair, len(out))
	for i, r := range out {
		pairs[i] = r.Pair
	}
	return pairs
}

// Tools lists the tools with merged data, sorted.
func (a *Aggregator) Tools() []string {
	a.metaMu.Lock()
	set := make(map[string]bool, len(a.metas))
	for k := range a.metas {
		set[k.tool] = true
	}
	a.metaMu.Unlock()
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Programs lists the programs with merged data for a tool, sorted.
func (a *Aggregator) Programs(tool string) []string {
	a.metaMu.Lock()
	set := make(map[string]bool)
	for k := range a.metas {
		if k.tool == tool {
			set[k.program] = true
		}
	}
	a.metaMu.Unlock()
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Profiles returns how many profiles have been merged in, across all
// tools and programs.
func (a *Aggregator) Profiles() uint64 {
	a.metaMu.Lock()
	defer a.metaMu.Unlock()
	var n uint64
	for _, m := range a.metas {
		n += m.profiles
	}
	return n
}

// PairCount returns the number of distinct merged pair streams held —
// the live-memory figure retention eviction is meant to bound.
func (a *Aggregator) PairCount() int {
	var n int
	for i := range a.shards {
		sh := &a.shards[i]
		sh.mu.Lock()
		n += len(sh.pairs)
		sh.mu.Unlock()
	}
	return n
}

// Health returns the fleet-wide combined degradation record and the
// number of profiles it covers.
func (a *Aggregator) Health() (witch.Health, uint64) {
	a.metaMu.Lock()
	defer a.metaMu.Unlock()
	var h witch.Health
	var n uint64
	for _, m := range a.metas {
		h = MergeHealth(h, m.health)
		n += m.profiles
	}
	return h, n
}
