package agg_test

import (
	"testing"

	"repro/internal/agg"
	"repro/witch"
)

// benchProfile builds the merge-benchmark input: a real h264ref
// DeadStores profile (~11 pairs).
func benchProfile(b *testing.B) *witch.Profile {
	b.Helper()
	prog, err := witch.Workload("h264ref")
	if err != nil {
		b.Fatal(err)
	}
	prof, err := witch.Run(prog, witch.Options{Tool: witch.DeadStores, Period: 97, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return prof
}

// BenchmarkMerge is the steady-state ingest fold: re-merging a profile
// whose pair streams already exist, which is what a fleet pushing the
// same programs does after the first minute.
func BenchmarkMerge(b *testing.B) {
	prof := benchProfile(b)
	a := agg.New()
	a.Merge(prof)
	b.ReportMetric(float64(len(prof.TopPairs(0))), "pairs/op")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Merge(prof)
	}
}

// BenchmarkMergeFrom measures the bucket-fold path (retention eviction,
// query-time ring merges): an aggregator-to-aggregator fold where the
// precomputed hashes make re-hashing unnecessary.
func BenchmarkMergeFrom(b *testing.B) {
	prof := benchProfile(b)
	src := agg.New()
	src.Merge(prof)
	dst := agg.NewSized(src.PairCount())
	dst.MergeFrom(src)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst.MergeFrom(src)
	}
}

// BenchmarkSnapshot re-materializes the merged profile — the /v1/profile
// query path.
func BenchmarkSnapshot(b *testing.B) {
	prof := benchProfile(b)
	a := agg.New()
	a.Merge(prof)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if a.Snapshot(prof.Tool, prof.Program) == nil {
			b.Fatal("empty snapshot")
		}
	}
}
