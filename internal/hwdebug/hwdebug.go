// Package hwdebug models x86-style hardware debug registers used as data
// watchpoints. A small, fixed number of registers (four on real x86; the
// count is configurable here so Figure 5's one-to-four sweep can run) each
// monitor an address range and trap the CPU when an instruction accesses
// it. Matching x86 semantics that the Witch client tools depend on:
//
//   - The trap fires *after* the access retires, so on a store trap the
//     monitored memory already holds the stored value (SilentCraft reads
//     it to compare against its snapshot).
//   - Only break-on-write (W_TRAP) and break-on-read-or-write (RW_TRAP)
//     conditions exist; there is no break-on-load, which is why LoadCraft
//     must use RW_TRAP and discard spurious store traps.
//   - The exception reports the PC of the *next* instruction (contextPC);
//     recovering the precise trapping PC requires disassembly help (the
//     LBR fast path in internal/perfevent).
//
// Registers are virtualized per software thread (§6.3): a watchpoint armed
// by one thread never traps in another.
package hwdebug

import "repro/internal/isa"

// Kind is the trap condition of a watchpoint.
type Kind uint8

// Trap conditions.
const (
	WTrap  Kind = iota // trap on write
	RWTrap             // trap on read or write
)

// String returns "W_TRAP" or "RW_TRAP".
func (k Kind) String() string {
	if k == WTrap {
		return "W_TRAP"
	}
	return "RW_TRAP"
}

// Watchpoint is one debug register's programming.
type Watchpoint struct {
	Active bool
	Addr   uint64
	Len    uint8 // monitored range length in bytes (1..8)
	Kind   Kind
	// Cookie carries client state (Witch attaches the sampled context,
	// snapshot value, etc.). Hardware has no such field; it lives in the
	// perf_event layer on real systems.
	Cookie any
	// ArmedAt is the sample sequence number at arm time (bookkeeping for
	// blind-spot statistics).
	ArmedAt uint64
}

// Trap describes a watchpoint exception.
type Trap struct {
	Reg        int        // debug register index that fired
	WP         Watchpoint // programming at fire time (including Cookie)
	Kind       AccessKind // access kind that caused the trap
	ContextPC  isa.PC     // PC of the *next* instruction (x86 trap-after)
	Addr       uint64     // effective address of the trapping access
	Width      uint8
	Value      uint64 // post-access memory bits for the accessed range
	Float      bool
	Overlap    uint8 // bytes of overlap between access and watchpoint
	ThreadID   int
	KernelView bool // access came from the simulated kernel (signal-frame write), i.e. a spurious trap in the Figure 3 sense
}

// AccessKind aliases pmu's kind to avoid an import cycle; 0=load, 1=store.
type AccessKind uint8

// Access kinds.
const (
	Load  AccessKind = 0
	Store AccessKind = 1
)

// String returns "load" or "store".
func (k AccessKind) String() string {
	if k == Store {
		return "store"
	}
	return "load"
}

// Handler receives watchpoint exceptions, delivered like signals.
type Handler func(Trap)

// Unit is one thread's set of virtualized debug registers.
type Unit struct {
	regs    []Watchpoint
	armed   int // count of active registers, for a fast skip
	handler Handler

	// reserved marks registers held by an external agent (a debugger or
	// another profiling tool, the classic perf_event_open EBUSY cause);
	// arming a reserved register fails until it is released.
	reserved []bool

	threadID int
	// Traps counts delivered exceptions (excluding kernel-view spurious
	// ones), used by overhead accounting and tests.
	Traps uint64
	// Spurious counts kernel-view (signal-frame) triggers.
	Spurious uint64
}

// NewUnit returns a unit with n debug registers for the given thread.
func NewUnit(threadID, n int) *Unit {
	if n <= 0 {
		n = 4
	}
	return &Unit{regs: make([]Watchpoint, n), reserved: make([]bool, n), threadID: threadID}
}

// Reserve marks register i as held by an external agent: subsequent Arm
// calls on it fail (EBUSY) until Release. Reserving does not disturb a
// currently-armed watchpoint, matching how a late-attaching tool contends
// only for free registers.
func (u *Unit) Reserve(i int) { u.reserved[i] = true }

// Release returns register i to the pool.
func (u *Unit) Release(i int) { u.reserved[i] = false }

// Reserved reports whether register i is held externally.
func (u *Unit) Reserved(i int) bool { return u.reserved[i] }

// SetHandler installs the exception handler.
func (u *Unit) SetHandler(h Handler) { u.handler = h }

// NumRegs returns the number of debug registers.
func (u *Unit) NumRegs() int { return len(u.regs) }

// Armed returns how many registers are currently active.
func (u *Unit) Armed() int { return u.armed }

// Reg returns a copy of register i's programming.
func (u *Unit) Reg(i int) Watchpoint { return u.regs[i] }

// FreeReg returns the index of an inactive register, or -1.
func (u *Unit) FreeReg() int {
	for i := range u.regs {
		if !u.regs[i].Active {
			return i
		}
	}
	return -1
}

// Arm programs register i. Length is clamped to 1..8 as on real hardware.
// Arming a reserved register is a no-op (the perfevent layer reports the
// EBUSY to its caller before ever arming; this guard keeps a direct Arm
// from clobbering an externally-held register).
func (u *Unit) Arm(i int, addr uint64, length uint8, kind Kind, cookie any, armedAt uint64) {
	if u.reserved[i] {
		return
	}
	if length == 0 {
		length = 1
	}
	if length > 8 {
		length = 8
	}
	if !u.regs[i].Active {
		u.armed++
	}
	u.regs[i] = Watchpoint{Active: true, Addr: addr, Len: length, Kind: kind, Cookie: cookie, ArmedAt: armedAt}
}

// Disarm deactivates register i.
func (u *Unit) Disarm(i int) {
	if u.regs[i].Active {
		u.armed--
	}
	u.regs[i] = Watchpoint{}
}

// DisarmAll deactivates every register.
func (u *Unit) DisarmAll() {
	for i := range u.regs {
		u.regs[i] = Watchpoint{}
	}
	u.armed = 0
}

// overlap returns the byte overlap of [a1,a1+l1) and [a2,a2+l2).
func overlap(a1 uint64, l1 uint8, a2 uint64, l2 uint8) uint8 {
	lo := a1
	if a2 > lo {
		lo = a2
	}
	hi := a1 + uint64(l1)
	if h2 := a2 + uint64(l2); h2 < hi {
		hi = h2
	}
	if hi <= lo {
		return 0
	}
	return uint8(hi - lo)
}

// Check tests a retired access against all armed registers and delivers an
// exception for each match. contextPC is the PC of the instruction *after*
// the access (what the signal context exposes on x86). kernel marks
// accesses performed by the simulated kernel while writing a signal frame;
// those still trigger watchpoints (that is precisely the Figure 3 hazard)
// but are tallied separately. Returns the number of traps delivered.
func (u *Unit) Check(kind AccessKind, addr uint64, width uint8, value uint64, float bool, contextPC isa.PC, kernel bool) int {
	if u.armed == 0 {
		return 0
	}
	fired := 0
	for i := range u.regs {
		wp := &u.regs[i]
		if !wp.Active {
			continue
		}
		if wp.Kind == WTrap && kind != Store {
			continue
		}
		ov := overlap(addr, width, wp.Addr, wp.Len)
		if ov == 0 {
			continue
		}
		tr := Trap{
			Reg: i, WP: *wp, Kind: kind, ContextPC: contextPC,
			Addr: addr, Width: width, Value: value, Float: float,
			Overlap: ov, ThreadID: u.threadID, KernelView: kernel,
		}
		fired++
		if kernel {
			u.Spurious++
		} else {
			u.Traps++
		}
		if u.handler != nil {
			u.handler(tr)
		}
	}
	return fired
}
