package hwdebug

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestArmDisarmBookkeeping(t *testing.T) {
	u := NewUnit(0, 4)
	if u.NumRegs() != 4 || u.Armed() != 0 {
		t.Fatal("fresh unit state wrong")
	}
	u.Arm(1, 100, 8, RWTrap, "cookie", 5)
	if u.Armed() != 1 || u.FreeReg() != 0 {
		t.Fatalf("armed=%d free=%d", u.Armed(), u.FreeReg())
	}
	wp := u.Reg(1)
	if !wp.Active || wp.Addr != 100 || wp.Cookie != "cookie" || wp.ArmedAt != 5 {
		t.Fatalf("reg state: %+v", wp)
	}
	u.Disarm(1)
	if u.Armed() != 0 {
		t.Fatal("disarm did not release")
	}
	// Re-arming an armed register must not double count.
	u.Arm(0, 1, 1, WTrap, nil, 0)
	u.Arm(0, 2, 1, WTrap, nil, 0)
	if u.Armed() != 1 {
		t.Fatalf("re-arm counted twice: %d", u.Armed())
	}
	u.DisarmAll()
	if u.Armed() != 0 {
		t.Fatal("DisarmAll failed")
	}
}

func TestLengthClamping(t *testing.T) {
	u := NewUnit(0, 1)
	u.Arm(0, 100, 0, WTrap, nil, 0)
	if u.Reg(0).Len != 1 {
		t.Fatalf("len 0 should clamp to 1, got %d", u.Reg(0).Len)
	}
	u.Arm(0, 100, 64, WTrap, nil, 0)
	if u.Reg(0).Len != 8 {
		t.Fatalf("len 64 should clamp to 8, got %d", u.Reg(0).Len)
	}
}

func TestWTrapIgnoresLoads(t *testing.T) {
	u := NewUnit(0, 1)
	var traps []Trap
	u.SetHandler(func(tr Trap) { traps = append(traps, tr) })
	u.Arm(0, 100, 8, WTrap, nil, 0)
	if n := u.Check(Load, 100, 8, 0, false, isa.MakePC(0, 1), false); n != 0 {
		t.Fatal("W_TRAP must not fire on a load")
	}
	if n := u.Check(Store, 100, 8, 42, false, isa.MakePC(0, 2), false); n != 1 {
		t.Fatal("W_TRAP must fire on a store")
	}
	if traps[0].Value != 42 || traps[0].Overlap != 8 {
		t.Fatalf("trap = %+v", traps[0])
	}
}

func TestRWTrapFiresOnBoth(t *testing.T) {
	u := NewUnit(0, 1)
	fired := 0
	u.SetHandler(func(tr Trap) { fired++ })
	u.Arm(0, 200, 4, RWTrap, nil, 0)
	u.Check(Load, 200, 4, 0, false, 0, false)
	u.Check(Store, 200, 4, 0, false, 0, false)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
}

func TestPartialOverlap(t *testing.T) {
	u := NewUnit(0, 1)
	var got Trap
	u.SetHandler(func(tr Trap) { got = tr })
	u.Arm(0, 100, 8, RWTrap, nil, 0)
	// Access [104,112): overlaps [100,108) by 4 bytes.
	if n := u.Check(Store, 104, 8, 0, false, 0, false); n != 1 {
		t.Fatal("expected overlap trap")
	}
	if got.Overlap != 4 {
		t.Fatalf("overlap = %d, want 4", got.Overlap)
	}
	// Access entirely outside.
	if n := u.Check(Store, 108, 4, 0, false, 0, false); n != 0 {
		t.Fatal("no overlap expected")
	}
}

func TestKernelViewCountsSpurious(t *testing.T) {
	u := NewUnit(0, 1)
	u.SetHandler(func(tr Trap) {
		if !tr.KernelView {
			t.Error("expected kernel-view trap")
		}
	})
	u.Arm(0, 100, 8, RWTrap, nil, 0)
	u.Check(Store, 100, 8, 0, false, 0, true)
	if u.Spurious != 1 || u.Traps != 0 {
		t.Fatalf("spurious=%d traps=%d", u.Spurious, u.Traps)
	}
}

// TestOverlapProperty: overlap is symmetric, bounded by both lengths, and
// zero iff the ranges are disjoint.
func TestOverlapProperty(t *testing.T) {
	f := func(a1off, a2off uint8, l1s, l2s uint8) bool {
		a1 := 1000 + uint64(a1off%32)
		a2 := 1000 + uint64(a2off%32)
		l1 := l1s%8 + 1
		l2 := l2s%8 + 1
		ov := overlap(a1, l1, a2, l2)
		ov2 := overlap(a2, l2, a1, l1)
		if ov != ov2 || ov > l1 || ov > l2 {
			return false
		}
		disjoint := a1+uint64(l1) <= a2 || a2+uint64(l2) <= a1
		return (ov == 0) == disjoint
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKindStrings(t *testing.T) {
	if WTrap.String() != "W_TRAP" || RWTrap.String() != "RW_TRAP" {
		t.Fatal("kind strings")
	}
	if Load.String() != "load" || Store.String() != "store" {
		t.Fatal("access kind strings")
	}
}

func TestDefaultRegisterCount(t *testing.T) {
	if NewUnit(0, 0).NumRegs() != 4 {
		t.Fatal("default should be 4 registers, like x86")
	}
}
