// Package mem implements the sparse, paged, byte-addressable memory of the
// simulated machine. Pages materialize on first touch and are accounted,
// so the benchmark harness can report a program's native memory footprint
// and compare it against tool-added bloat (Table 1/2 of the Witch paper).
package mem

import "encoding/binary"

// PageBits is log2 of the page size.
const PageBits = 12

// PageSize is the size of a memory page in bytes.
const PageSize = 1 << PageBits

type page [PageSize]byte

// Memory is a sparse 64-bit address space. The zero value is not usable;
// call New.
type Memory struct {
	pages map[uint64]*page
}

// New returns an empty address space.
func New() *Memory {
	return &Memory{pages: make(map[uint64]*page)}
}

// page returns the page containing addr, materializing it if needed.
func (m *Memory) pageFor(addr uint64) *page {
	key := addr >> PageBits
	p := m.pages[key]
	if p == nil {
		p = new(page)
		m.pages[key] = p
	}
	return p
}

// PageCount returns the number of materialized pages.
func (m *Memory) PageCount() int { return len(m.pages) }

// Footprint returns the resident size in bytes of all touched pages.
func (m *Memory) Footprint() uint64 { return uint64(len(m.pages)) * PageSize }

// LoadN reads width bytes (1, 2, 4 or 8) little-endian at addr, handling
// page-straddling accesses.
func (m *Memory) LoadN(addr uint64, width uint8) uint64 {
	off := addr & (PageSize - 1)
	if off+uint64(width) <= PageSize {
		p := m.pageFor(addr)
		switch width {
		case 1:
			return uint64(p[off])
		case 2:
			return uint64(binary.LittleEndian.Uint16(p[off:]))
		case 4:
			return uint64(binary.LittleEndian.Uint32(p[off:]))
		default:
			return binary.LittleEndian.Uint64(p[off:])
		}
	}
	var v uint64
	for i := uint8(0); i < width; i++ {
		v |= uint64(m.LoadByte(addr+uint64(i))) << (8 * i)
	}
	return v
}

// StoreN writes the low width bytes of val little-endian at addr, handling
// page-straddling accesses.
func (m *Memory) StoreN(addr uint64, val uint64, width uint8) {
	off := addr & (PageSize - 1)
	if off+uint64(width) <= PageSize {
		p := m.pageFor(addr)
		switch width {
		case 1:
			p[off] = byte(val)
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(val))
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(val))
		default:
			binary.LittleEndian.PutUint64(p[off:], val)
		}
		return
	}
	for i := uint8(0); i < width; i++ {
		m.StoreByte(addr+uint64(i), byte(val>>(8*i)))
	}
}

// LoadByte reads one byte.
func (m *Memory) LoadByte(addr uint64) byte {
	return m.pageFor(addr)[addr&(PageSize-1)]
}

// StoreByte writes one byte.
func (m *Memory) StoreByte(addr uint64, b byte) {
	m.pageFor(addr)[addr&(PageSize-1)] = b
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = m.LoadByte(addr + uint64(i))
	}
	return out
}

// WriteBytes copies the slice into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for i, v := range b {
		m.StoreByte(addr+uint64(i), v)
	}
}
