package mem

import (
	"testing"
	"testing/quick"
)

func TestLoadStoreWidths(t *testing.T) {
	m := New()
	for _, w := range []uint8{1, 2, 4, 8} {
		addr := uint64(0x1000 + uint64(w)*32)
		val := uint64(0x1122334455667788)
		m.StoreN(addr, val, w)
		want := val
		if w < 8 {
			want &= (1 << (8 * uint64(w))) - 1
		}
		if got := m.LoadN(addr, w); got != want {
			t.Errorf("width %d: got %#x want %#x", w, got, want)
		}
	}
}

func TestZeroInitialized(t *testing.T) {
	m := New()
	if got := m.LoadN(0xdeadbeef, 8); got != 0 {
		t.Fatalf("fresh memory = %#x, want 0", got)
	}
}

func TestPageStraddle(t *testing.T) {
	m := New()
	addr := uint64(PageSize - 3) // 8-byte access crossing the page boundary
	m.StoreN(addr, 0x8877665544332211, 8)
	if got := m.LoadN(addr, 8); got != 0x8877665544332211 {
		t.Fatalf("straddle load = %#x", got)
	}
	// Byte view must agree (little endian).
	if b := m.LoadByte(addr); b != 0x11 {
		t.Fatalf("first byte = %#x", b)
	}
	if b := m.LoadByte(addr + 7); b != 0x88 {
		t.Fatalf("last byte = %#x", b)
	}
	if m.PageCount() != 2 {
		t.Fatalf("pages = %d, want 2", m.PageCount())
	}
}

func TestFootprintAccounting(t *testing.T) {
	m := New()
	m.StoreByte(0, 1)
	m.StoreByte(10*PageSize, 1)
	if got := m.Footprint(); got != 2*PageSize {
		t.Fatalf("footprint = %d", got)
	}
}

func TestReadWriteBytes(t *testing.T) {
	m := New()
	data := []byte{1, 2, 3, 4, 5}
	m.WriteBytes(PageSize-2, data) // straddles
	if got := m.ReadBytes(PageSize-2, 5); string(got) != string(data) {
		t.Fatalf("roundtrip = %v", got)
	}
}

// TestAgainstReferenceModel cross-checks paged memory against a plain map
// under random operations (property-based).
func TestAgainstReferenceModel(t *testing.T) {
	m := New()
	ref := map[uint64]byte{}
	widths := []uint8{1, 2, 4, 8}

	f := func(addrSeed uint32, val uint64, wIdx uint8, isStore bool) bool {
		addr := uint64(addrSeed) % (4 * PageSize)
		w := widths[wIdx%4]
		if isStore {
			m.StoreN(addr, val, w)
			for i := uint8(0); i < w; i++ {
				ref[addr+uint64(i)] = byte(val >> (8 * i))
			}
			return true
		}
		got := m.LoadN(addr, w)
		var want uint64
		for i := uint8(0); i < w; i++ {
			want |= uint64(ref[addr+uint64(i)]) << (8 * i)
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
