package report

import (
	"strings"
	"testing"
	"time"
)

func TestTableAlignment(t *testing.T) {
	var sb strings.Builder
	tbl := NewTable("title", "name", "value")
	tbl.Row("a", "1")
	tbl.Row("longer-name", "2")
	tbl.Row("short") // padded
	tbl.Fprint(&sb)
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "title" {
		t.Fatalf("missing title: %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") {
		t.Fatalf("header: %q", lines[1])
	}
	// All data rows align the second column at the same offset.
	idx := strings.Index(lines[3], "1")
	if strings.Index(lines[4], "2") != idx {
		t.Fatalf("columns misaligned:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if F(3.14159, 2) != "3.14" {
		t.Fatal(F(3.14159, 2))
	}
	if Pct(0.375) != "37.5%" {
		t.Fatal(Pct(0.375))
	}
	if X(1.5) != "1.50x" {
		t.Fatal(X(1.5))
	}
	if Dur(1500*time.Microsecond) != "2ms" {
		t.Fatal(Dur(1500 * time.Microsecond))
	}
}

func TestBar(t *testing.T) {
	if b := Bar(5, 10, 10); b != "#####....." {
		t.Fatalf("bar = %q", b)
	}
	if b := Bar(20, 10, 4); b != "####" {
		t.Fatalf("clamped bar = %q", b)
	}
	if b := Bar(-1, 10, 4); b != "...." {
		t.Fatalf("negative bar = %q", b)
	}
	if b := Bar(1, 0, 4); b != "####" {
		t.Fatalf("zero-max bar = %q", b)
	}
}

func TestSection(t *testing.T) {
	var sb strings.Builder
	Section(&sb, "Experiment")
	if !strings.Contains(sb.String(), "== Experiment ==") {
		t.Fatal(sb.String())
	}
}
