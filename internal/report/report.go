// Package report renders the aligned text tables and simple text figures
// the benchmark harness prints when regenerating the paper's tables and
// figures.
package report

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// Row appends a row; short rows are padded.
func (t *Table) Row(cells ...string) {
	for len(cells) < len(t.headers) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

// Fprint writes the table.
func (t *Table) Fprint(w io.Writer) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				fmt.Fprint(w, "  ")
			}
			fmt.Fprintf(w, "%-*s", widths[i], c)
		}
		fmt.Fprintln(w)
	}
	line(t.headers)
	total := len(t.headers)*2 - 2
	for _, wd := range widths {
		total += wd
	}
	fmt.Fprintln(w, strings.Repeat("-", total))
	for _, r := range t.rows {
		line(r)
	}
}

// F formats a float with the given precision.
func F(x float64, prec int) string { return fmt.Sprintf("%.*f", prec, x) }

// Pct formats a fraction as a percentage.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// X formats a ratio as "1.23x".
func X(x float64) string { return fmt.Sprintf("%.2fx", x) }

// Dur formats a duration compactly.
func Dur(d time.Duration) string { return d.Round(time.Millisecond).String() }

// Bar renders a fixed-width text bar for a value in [0, max].
func Bar(v, max float64, width int) string {
	if max <= 0 {
		max = 1
	}
	n := int(v / max * float64(width))
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n) + strings.Repeat(".", width-n)
}

// Section prints a header between experiments.
func Section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n\n", title)
}
