// Package pmu models a per-core performance monitoring unit with
// precise-event-based sampling (PEBS-like): a programmable counter counts
// retired memory events and, on threshold overflow, captures a precise
// snapshot of the triggering access — program counter, effective address,
// width, and value — exactly the information the Witch framework consumes
// from MEM_UOPS_RETIRED:ALL_STORES / ALL_LOADS on Intel hardware.
//
// The unit optionally reproduces the "shadow sampling" artefact of real
// PEBS hardware (§4.3 of the paper): a short-latency store retiring in the
// shadow of a long-latency store may have its sample attributed to the
// long-latency instruction, biasing samples toward long-latency ops. The
// paper blames this effect for DeadCraft/SilentCraft inaccuracy on hmmer
// and calculix; enabling Shadow on workloads with mixed latency classes
// reproduces that bias.
package pmu

import "repro/internal/isa"

// Event selects which retired events a counter counts.
type Event uint8

// Supported events, mirroring the Intel event names the paper uses.
const (
	EventNone      Event = iota
	EventAllStores       // MEM_UOPS_RETIRED:ALL_STORES
	EventAllLoads        // MEM_UOPS_RETIRED:ALL_LOADS
	EventAllMemOps       // loads + stores
)

// String returns the human-readable event name.
func (e Event) String() string {
	switch e {
	case EventAllStores:
		return "MEM_UOPS_RETIRED:ALL_STORES"
	case EventAllLoads:
		return "MEM_UOPS_RETIRED:ALL_LOADS"
	case EventAllMemOps:
		return "MEM_UOPS_RETIRED:ALL"
	}
	return "NONE"
}

// AccessKind distinguishes loads from stores.
type AccessKind uint8

// Access kinds.
const (
	Load AccessKind = iota
	Store
)

// String returns "load" or "store".
func (k AccessKind) String() string {
	if k == Store {
		return "store"
	}
	return "load"
}

// Sample is the precise snapshot delivered on a counter overflow.
type Sample struct {
	Event    Event
	Kind     AccessKind
	PC       isa.PC // precise PC of the sampled instruction (PEBS)
	Addr     uint64 // effective address
	Width    uint8
	Value    uint64 // raw bits accessed
	Float    bool   // datum is floating point
	ThreadID int
	Seq      uint64 // monotone sample number on this unit
}

// Handler receives samples. It runs synchronously in "signal context":
// the machine delivers it like a kernel signal, after simulating the
// signal-frame write.
type Handler func(Sample)

// Mode selects the sampling mechanism.
type Mode uint8

// Sampling modes. The paper implements Witch on Intel PEBS and notes it
// is straightforward to port to AMD IBS and PowerPC MRK (§3); both
// flavours exist here.
const (
	// ModePEBS counts only the retired events of interest (loads or
	// stores) and every overflow is a usable precise sample.
	ModePEBS Mode = iota
	// ModeIBS counts *all* retired instructions and tags whichever
	// instruction the counter overflows on, AMD-style: overflows landing
	// on instructions that are not matching memory operations capture no
	// effective address and are dropped, so fewer overflows become
	// usable samples.
	ModeIBS
)

// Unit is one thread's virtualized PMU counter (debug registers and PMUs
// are per-core and virtualized per software thread; §6.3).
type Unit struct {
	event   Event
	period  uint64
	counter uint64
	handler Handler
	enabled bool

	// Mode selects PEBS- or IBS-style sampling.
	Mode Mode
	// Dropped counts IBS overflows that tagged a non-matching
	// instruction.
	Dropped uint64

	// DropSignal, when non-nil, is consulted on every counter overflow;
	// returning true loses the overflow signal (dropped or coalesced
	// delivery under load): the period's events are consumed but no
	// sample reaches the handler. LostSignals counts the losses so
	// profilers can rescale attribution (witch folds this into the μ/η
	// proportional scale) and report honest sample-loss health.
	DropSignal  func() bool
	LostSignals uint64

	// Shadow enables the PEBS shadow-sampling bias.
	Shadow bool
	// shadowLeft counts remaining retirement slots hidden behind the
	// last long-latency op; shadowed overflows report that op instead.
	shadowLeft int
	shadowOp   Sample

	threadID int
	seq      uint64
}

// NewUnit returns a disabled unit for the given thread.
func NewUnit(threadID int) *Unit { return &Unit{threadID: threadID} }

// Configure programs the counter: event, sampling period (events per
// overflow) and the overflow handler. Configuring resets the counter.
func (u *Unit) Configure(event Event, period uint64, h Handler) {
	if period == 0 {
		period = 1
	}
	u.event, u.period, u.handler = event, period, h
	u.counter = 0
}

// Skew pre-loads the counter so the first overflow arrives after
// period−(n mod period) events instead of a full period. Profilers use a
// seeded skew per run: real deployments never sample at identical phase
// across runs, and the paper's run-to-run stability experiment (§7)
// depends on that variation existing.
func (u *Unit) Skew(n uint64) {
	if u.period > 0 {
		u.counter = n % u.period
	}
}

// Enable starts counting.
func (u *Unit) Enable() { u.enabled = true }

// Disable stops counting without losing configuration.
func (u *Unit) Disable() { u.enabled = false }

// Enabled reports whether the counter is running.
func (u *Unit) Enabled() bool { return u.enabled }

// Period returns the configured sampling period.
func (u *Unit) Period() uint64 { return u.period }

// Event returns the configured event.
func (u *Unit) Event() Event { return u.event }

// Samples returns how many overflows this unit has delivered.
func (u *Unit) Samples() uint64 { return u.seq }

// matches reports whether the configured event counts the access kind.
func (u *Unit) matches(kind AccessKind) bool {
	switch u.event {
	case EventAllStores:
		return kind == Store
	case EventAllLoads:
		return kind == Load
	case EventAllMemOps:
		return true
	}
	return false
}

// NeedsAllRetired reports whether the unit must observe non-memory
// retirements too (IBS counts every instruction).
func (u *Unit) NeedsAllRetired() bool { return u.enabled && u.Mode == ModeIBS }

// CountNonMem counts a retired non-memory instruction in IBS mode; an
// overflow tagging it captures no effective address and is dropped.
func (u *Unit) CountNonMem() {
	u.counter++
	if u.counter >= u.period {
		u.counter = 0
		u.Dropped++
	}
}

// CountMemOp counts one retired memory operation and delivers a sample if
// the counter overflows. latency > 1 marks a long-latency operation that
// casts a shadow over subsequent retirements when Shadow is enabled.
// It returns true if a sample was delivered.
func (u *Unit) CountMemOp(kind AccessKind, pc isa.PC, addr uint64, width uint8, value uint64, float bool, latency uint8) bool {
	if !u.enabled {
		return false
	}
	if !u.matches(kind) {
		// In IBS mode the instruction still advances the counter; a
		// tagged non-matching op is a dropped overflow.
		if u.Mode == ModeIBS {
			u.CountNonMem()
		}
		return false
	}
	cur := Sample{
		Event: u.event, Kind: kind, PC: pc, Addr: addr,
		Width: width, Value: value, Float: float, ThreadID: u.threadID,
	}
	if u.Shadow {
		if latency > 1 {
			u.shadowOp = cur
			u.shadowLeft = int(latency) - 1
		} else if u.shadowLeft > 0 {
			u.shadowLeft--
			// A short op retiring in the shadow: an overflow here is
			// attributed to the long-latency op.
			cur = u.shadowOp
		}
	}
	u.counter++
	if u.counter < u.period {
		return false
	}
	u.counter = 0
	if u.DropSignal != nil && u.DropSignal() {
		// The overflow happened — the period's events are gone — but the
		// signal never reached user space.
		u.LostSignals++
		return true
	}
	u.seq++
	cur.Seq = u.seq
	if u.handler != nil {
		u.handler(cur)
	}
	return true
}
