package pmu

import (
	"testing"

	"repro/internal/isa"
)

func TestIBSDropsNonMatchingOverflows(t *testing.T) {
	u := NewUnit(0)
	u.Mode = ModeIBS
	delivered := 0
	u.Configure(EventAllStores, 3, func(Sample) { delivered++ })
	u.Enable()
	// Pattern: two non-mem instructions then a store, repeating. With
	// period 3 every overflow tags the store (positions 3, 6, 9, ...).
	for i := 0; i < 9; i++ {
		if i%3 == 2 {
			u.CountMemOp(Store, isa.MakePC(0, i), 0x100, 8, 0, false, 1)
		} else {
			u.CountNonMem()
		}
	}
	if delivered != 3 {
		t.Fatalf("delivered = %d, want 3", delivered)
	}
	if u.Dropped != 0 {
		t.Fatalf("dropped = %d, want 0", u.Dropped)
	}
}

func TestIBSCountsLoadsAgainstStorePeriod(t *testing.T) {
	u := NewUnit(0)
	u.Mode = ModeIBS
	delivered := 0
	u.Configure(EventAllStores, 2, func(Sample) { delivered++ })
	u.Enable()
	// Alternating load/store: overflows land alternately on loads
	// (dropped: no usable sample for a store event) and stores.
	for i := 0; i < 8; i++ {
		kind := Load
		if i%2 == 1 {
			kind = Store
		}
		u.CountMemOp(kind, isa.MakePC(0, i), 0x100, 8, 0, false, 1)
	}
	if delivered+int(u.Dropped) != 4 {
		t.Fatalf("total overflows = %d, want 4", delivered+int(u.Dropped))
	}
	if delivered == 0 {
		t.Fatal("some overflows should land on stores")
	}
}

func TestPEBSIgnoresNonMatching(t *testing.T) {
	u := NewUnit(0)
	delivered := 0
	u.Configure(EventAllStores, 2, func(Sample) { delivered++ })
	u.Enable()
	// PEBS mode: loads do not advance a store counter at all.
	for i := 0; i < 8; i++ {
		u.CountMemOp(Load, 0, 0, 8, 0, false, 1)
	}
	if delivered != 0 || u.Dropped != 0 {
		t.Fatalf("PEBS should ignore loads entirely: delivered=%d dropped=%d", delivered, u.Dropped)
	}
}
