package pmu

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestPeriodAndOverflow(t *testing.T) {
	u := NewUnit(3)
	var samples []Sample
	u.Configure(EventAllStores, 4, func(s Sample) { samples = append(samples, s) })
	u.Enable()
	for i := 0; i < 10; i++ {
		u.CountMemOp(Store, isa.MakePC(0, i), uint64(i), 8, uint64(i), false, 1)
	}
	if len(samples) != 2 { // overflows at the 4th and 8th store
		t.Fatalf("samples = %d, want 2", len(samples))
	}
	s := samples[0]
	if s.Addr != 3 || s.PC.Index() != 3 || s.ThreadID != 3 || s.Seq != 1 {
		t.Fatalf("sample = %+v", s)
	}
	if samples[1].Seq != 2 {
		t.Fatal("sequence numbers must increase")
	}
}

func TestEventFiltering(t *testing.T) {
	u := NewUnit(0)
	n := 0
	u.Configure(EventAllLoads, 1, func(Sample) { n++ })
	u.Enable()
	u.CountMemOp(Store, 0, 0, 8, 0, false, 1)
	if n != 0 {
		t.Fatal("store must not count for ALL_LOADS")
	}
	u.CountMemOp(Load, 0, 0, 8, 0, false, 1)
	if n != 1 {
		t.Fatal("load must count for ALL_LOADS")
	}
	u.Configure(EventAllMemOps, 1, func(Sample) { n++ })
	u.Enable()
	u.CountMemOp(Store, 0, 0, 8, 0, false, 1)
	u.CountMemOp(Load, 0, 0, 8, 0, false, 1)
	if n != 3 {
		t.Fatalf("ALL_MEMOPS should count both, n=%d", n)
	}
}

func TestDisableStopsCounting(t *testing.T) {
	u := NewUnit(0)
	n := 0
	u.Configure(EventAllStores, 1, func(Sample) { n++ })
	u.Enable()
	u.CountMemOp(Store, 0, 0, 8, 0, false, 1)
	u.Disable()
	u.CountMemOp(Store, 0, 0, 8, 0, false, 1)
	if n != 1 {
		t.Fatalf("n = %d, want 1", n)
	}
	if u.Enabled() {
		t.Fatal("Enabled() should be false")
	}
}

func TestZeroPeriodBecomesOne(t *testing.T) {
	u := NewUnit(0)
	u.Configure(EventAllStores, 0, nil)
	if u.Period() != 1 {
		t.Fatalf("period = %d", u.Period())
	}
}

func TestShadowAttributesToLongLatencyOp(t *testing.T) {
	u := NewUnit(0)
	u.Shadow = true
	var got []Sample
	u.Configure(EventAllStores, 2, func(s Sample) { got = append(got, s) })
	u.Enable()
	// Long-latency store at addr 100 (latency 4), then short stores in
	// its shadow at addrs 200, 201, 202.
	u.CountMemOp(Store, isa.MakePC(0, 0), 100, 8, 0, false, 4)
	u.CountMemOp(Store, isa.MakePC(0, 1), 200, 8, 0, false, 1) // overflow here
	if len(got) != 1 {
		t.Fatalf("samples = %d", len(got))
	}
	if got[0].Addr != 100 {
		t.Fatalf("shadowed sample should report the long-latency op, got addr %d", got[0].Addr)
	}
	// Shadow expires after latency-1 retirements.
	u.CountMemOp(Store, isa.MakePC(0, 2), 201, 8, 0, false, 1)
	u.CountMemOp(Store, isa.MakePC(0, 3), 202, 8, 0, false, 1) // overflow, shadow has 1 slot left... consumed at 201
	u.CountMemOp(Store, isa.MakePC(0, 4), 300, 8, 0, false, 1)
	u.CountMemOp(Store, isa.MakePC(0, 5), 301, 8, 0, false, 1) // overflow, out of shadow
	if last := got[len(got)-1]; last.Addr != 301 {
		t.Fatalf("post-shadow sample should be precise, got addr %d", last.Addr)
	}
}

// TestSampleCountProperty: over n ops with period p, exactly n/p samples.
func TestSampleCountProperty(t *testing.T) {
	f := func(n16 uint16, p8 uint8) bool {
		n := int(n16%5000) + 1
		p := uint64(p8%97) + 1
		u := NewUnit(0)
		count := 0
		u.Configure(EventAllStores, p, func(Sample) { count++ })
		u.Enable()
		for i := 0; i < n; i++ {
			u.CountMemOp(Store, 0, uint64(i), 8, 0, false, 1)
		}
		return count == n/int(p) && u.Samples() == uint64(count)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestEventStrings(t *testing.T) {
	if EventAllStores.String() != "MEM_UOPS_RETIRED:ALL_STORES" {
		t.Fatal(EventAllStores.String())
	}
	if EventAllLoads.String() != "MEM_UOPS_RETIRED:ALL_LOADS" {
		t.Fatal(EventAllLoads.String())
	}
	if Load.String() != "load" || Store.String() != "store" {
		t.Fatal("kind strings")
	}
}
