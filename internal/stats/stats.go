// Package stats provides the small statistics toolkit the evaluation
// harness uses: central tendencies for Table 2, run-to-run stability
// (standard deviations, §7), rank-order comparison of top-N redundancy
// pairs between sampled and exhaustive tools (edit distance and set
// difference, §7), and the harmonic-series expectation behind the
// adversary-sample analysis of §4.1.
package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Geomean returns the geometric mean (0 for empty input; panics on
// non-positive values, which never occur for ratios ≥ 1ish — guard with
// max(x, tiny) at call sites if needed).
func Geomean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += math.Log(x)
	}
	return math.Exp(s / float64(len(xs)))
}

// Median returns the median (0 for empty input).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MinMax returns the extremes (0,0 for empty input).
func MinMax(xs []float64) (lo, hi float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi
}

// EditDistance returns the Levenshtein distance between two sequences of
// identifiers, used to compare the rank ordering of top-N redundancy
// pairs between a sampled tool and its exhaustive counterpart.
func EditDistance(a, b []string) int {
	n, m := len(a), len(b)
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = j
	}
	for i := 1; i <= n; i++ {
		cur[0] = i
		for j := 1; j <= m; j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[m]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// SetDifference returns |A\B| + |B\A| for two identifier sets.
func SetDifference(a, b []string) int {
	as := map[string]bool{}
	for _, x := range a {
		as[x] = true
	}
	bs := map[string]bool{}
	for _, x := range b {
		bs[x] = true
	}
	d := 0
	for x := range as {
		if !bs[x] {
			d++
		}
	}
	for x := range bs {
		if !as[x] {
			d++
		}
	}
	return d
}

// Harmonic returns the n-th harmonic number H(n).
func Harmonic(n int) float64 {
	var h float64
	for i := 1; i <= n; i++ {
		h += 1 / float64(i)
	}
	return h
}

// AdversaryExpectedLifetime returns the expected number of additional
// samples before an adversary ("never again accessed") address sampled at
// position h since the last reservoir reset is replaced. §4.1 states this
// is ≈ 1.7·H: the survival probability after reaching sample k is h/k, so
// the expected lifetime is Σ_{k>h} h/k(... ) — the paper's closed-form
// approximation e·H − H ≈ 1.718·H is returned here.
func AdversaryExpectedLifetime(h int) float64 {
	return (math.E - 1) * float64(h)
}
