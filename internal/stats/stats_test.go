package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestCentralTendencies(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if !almost(Mean(xs), 2.5) {
		t.Fatalf("mean = %v", Mean(xs))
	}
	if !almost(Median(xs), 2.5) {
		t.Fatalf("median = %v", Median(xs))
	}
	if !almost(Median([]float64{1, 2, 9}), 2) {
		t.Fatal("odd median")
	}
	if !almost(Geomean([]float64{1, 4}), 2) {
		t.Fatalf("geomean = %v", Geomean([]float64{1, 4}))
	}
	if Mean(nil) != 0 || Median(nil) != 0 || Geomean(nil) != 0 {
		t.Fatal("empty inputs should be 0")
	}
}

func TestStdDev(t *testing.T) {
	if !almost(StdDev([]float64{2, 2, 2}), 0) {
		t.Fatal("constant stddev")
	}
	if s := StdDev([]float64{1, 3}); !almost(s, 1) {
		t.Fatalf("stddev = %v", s)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, 1, 4, 1, 5})
	if lo != 1 || hi != 5 {
		t.Fatalf("minmax = %v, %v", lo, hi)
	}
}

func TestEditDistance(t *testing.T) {
	cases := []struct {
		a, b []string
		want int
	}{
		{[]string{"x", "y"}, []string{"x", "y"}, 0},
		{[]string{"x", "y"}, []string{"y", "x"}, 2},
		{[]string{"a", "b", "c"}, []string{"a", "c"}, 1},
		{nil, []string{"a"}, 1},
		{nil, nil, 0},
	}
	for _, tc := range cases {
		if got := EditDistance(tc.a, tc.b); got != tc.want {
			t.Errorf("EditDistance(%v,%v) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

// Edit distance is a metric: symmetric, zero iff equal-ish (for our use,
// identity), and bounded by max length.
func TestEditDistanceProperties(t *testing.T) {
	f := func(a, b []string) bool {
		d1, d2 := EditDistance(a, b), EditDistance(b, a)
		if d1 != d2 {
			return false
		}
		maxLen := len(a)
		if len(b) > maxLen {
			maxLen = len(b)
		}
		return d1 <= maxLen && EditDistance(a, a) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSetDifference(t *testing.T) {
	if d := SetDifference([]string{"a", "b"}, []string{"b", "c"}); d != 2 {
		t.Fatalf("setdiff = %d", d)
	}
	if d := SetDifference(nil, nil); d != 0 {
		t.Fatal("empty setdiff")
	}
}

func TestHarmonic(t *testing.T) {
	if !almost(Harmonic(1), 1) || !almost(Harmonic(2), 1.5) {
		t.Fatal("harmonic")
	}
	// H(n) ≈ ln n + γ
	if math.Abs(Harmonic(100000)-(math.Log(100000)+0.5772156649)) > 1e-4 {
		t.Fatal("harmonic asymptotic")
	}
}

func TestAdversaryLifetime(t *testing.T) {
	// The paper's 1.7·H figure.
	if r := AdversaryExpectedLifetime(100) / 100; r < 1.69 || r > 1.75 {
		t.Fatalf("adversary lifetime ratio = %v", r)
	}
}
