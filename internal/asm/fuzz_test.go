package asm

import (
	"strings"
	"testing"
)

// FuzzAssemble checks the assembler never panics and that anything it
// accepts builds a structurally valid program (go's fuzzer extends the
// seed corpus under `go test -fuzz=FuzzAssemble ./internal/asm`; under
// plain `go test` the seeds below run as regular cases).
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"",
		"func main\n halt",
		"func main\n movi r1, 1\n halt",
		"func main\n store [r1+0], r2, 8\n halt",
		"func main\nl:\n jmp l",
		"func main\n call main\n halt",
		"entry main\nfunc main\n ret",
		"func main\n load r1, [sp-8], 8\n halt",
		"garbage input ; with comment",
		"func main\n beq r1, r2, nowhere\n halt",
		"func main\n movi r99, 1\n halt",
		"func main\n fmovi r1, 3.25\n fstore [r1+0], r1\n halt",
		"func a\n ret\nfunc a\n ret",
		strings.Repeat("func main\n halt\n", 2),
		"func main\n slowstore [r2+4], r3, 2\n halt",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz.wa", src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("accepted program fails validation: %v\nsource:\n%s", verr, src)
		}
		// Accepted programs must also disassemble and reassemble.
		text := Disassemble(p)
		if _, err := Assemble("fuzz2.wa", text); err != nil {
			t.Fatalf("disassembly does not reassemble: %v\n%s", err, text)
		}
	})
}
