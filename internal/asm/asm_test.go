package asm

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
)

const sample = `
; dead store demo
func main
  movi r1, 4096
  movi r2, 7
  store [r1+0], r2, 8     ; dead
  movi r2, 9
  store [r1+0], r2, 8     ; kill
  load r3, [r1+0], 8
  call helper
loop:
  addi r4, r4, 1
  movi r5, 3
  blt r4, r5, loop
  halt

func helper
  fmovi r6, 2.5
  fstore [sp-8], r6
  fload r7, [sp-8]
  ret
`

func TestAssembleAndRun(t *testing.T) {
	p, err := Assemble("demo.wa", sample)
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(p, machine.Config{})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	th := m.Threads[0]
	if th.Regs[isa.R3] != 9 {
		t.Fatalf("r3 = %d, want 9", th.Regs[isa.R3])
	}
	if isa.F64(th.Regs[isa.R7]) != 2.5 {
		t.Fatalf("r7 = %v, want 2.5", isa.F64(th.Regs[isa.R7]))
	}
	if th.Regs[isa.R4] != 3 {
		t.Fatalf("loop ran %d times", th.Regs[isa.R4])
	}
}

func TestSourceLinesAttached(t *testing.T) {
	p := MustAssemble("demo.wa", sample)
	// The first store is on line 6 of the source text.
	in := p.Funcs[0].Code[2]
	if in.Op != isa.OpStore || in.Line != 6 {
		t.Fatalf("store line = %d (op %v), want 6", in.Line, in.Op)
	}
	if loc := p.Location(isa.MakePC(0, 2)); loc != "demo.wa:main:6" {
		t.Fatalf("location = %q", loc)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"no function":     "movi r1, 1",
		"bad register":    "func main\n movi r99, 1\n halt",
		"bad width":       "func main\n movi r1, 0\n load r2, [r1+0], 3\n halt",
		"bad mem operand": "func main\n load r2, r1, 8\n halt",
		"unknown op":      "func main\n frobnicate r1\n halt",
		"bad label":       "func main\n jmp nowhere\n halt",
		"label outside":   "x:\nfunc main\n halt",
		"bad operand cnt": "func main\n add r1, r2\n halt",
		"bad entry":       "entry ghost\nfunc main\n halt",
		"bad imm":         "func main\n movi r1, abc\n halt",
	}
	for name, src := range cases {
		if _, err := Assemble("t.wa", src); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestCommentsAndHex(t *testing.T) {
	p, err := Assemble("t.wa", `
func main
  movi r1, 0x100   # hex immediate
  movi r2, -5      ; negative
  halt
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Funcs[0].Code[0].Imm != 0x100 || p.Funcs[0].Code[1].Imm != -5 {
		t.Fatal("immediates parsed wrong")
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	p := MustAssemble("demo.wa", sample)
	text := Disassemble(p)
	for _, want := range []string{"func main", "func helper", "store [r1+0], r2, 8",
		"fstore [sp-8], r6", "call helper", "blt r4, r5, L", "halt", "ret"} {
		if !strings.Contains(text, want) {
			t.Fatalf("disassembly missing %q:\n%s", want, text)
		}
	}
	// Reassembling the disassembly must yield a runnable program with
	// identical instruction count.
	p2, err := Assemble("demo2.wa", text)
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text)
	}
	if p2.NumInstrs() != p.NumInstrs() {
		t.Fatalf("instr count changed: %d vs %d", p2.NumInstrs(), p.NumInstrs())
	}
	m := machine.New(p2, machine.Config{})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if m.Threads[0].Regs[isa.R3] != 9 {
		t.Fatal("reassembled program computes differently")
	}
}

func TestSlowStoreRoundTrip(t *testing.T) {
	p := MustAssemble("t.wa", `
func main
  movi r1, 64
  slowstore [r1+0], r1, 8
  halt
`)
	if p.Funcs[0].Code[1].Latency <= 1 {
		t.Fatal("slowstore must set a long latency class")
	}
	if !strings.Contains(Disassemble(p), "slowstore") {
		t.Fatal("disassembler must preserve slowstore")
	}
}
