// Package asm implements a small text assembler and disassembler for the
// internal/isa instruction set. It is both a substrate convenience (test
// programs and examples can be written as text) and the public API's way
// to feed custom programs to the profiler without exposing internal
// types: the paper's tools run on arbitrary native binaries, and this
// assembler plays the role of the compiler toolchain producing them.
//
// Syntax (one instruction per line, ';' or '#' start comments):
//
//	func main            ; begins a function; "main" is the entry point
//	  movi  r1, 4096     ; r1 = 4096
//	  fmovi r2, 1.5      ; r2 = float64 bits of 1.5
//	  mov   r3, r1
//	  add   r3, r1, r2   ; three-operand ALU: add sub mul div and or xor mod
//	  addi  r3, r1, -8   ; immediate forms: addi muli shl shr
//	  fadd  r3, r1, r2   ; float ALU: fadd fsub fmul fdiv
//	  load  r4, [r1+16], 8   ; width 1, 2, 4 or 8
//	  store [r1+16], r4, 8
//	  fload r4, [r1+0]   ; float-typed 8-byte accesses
//	  fstore [r1+0], r4
//	  slowstore [r1+0], r4, 8 ; long-latency store (PEBS shadow class)
//	loop:                ; label
//	  beq  r1, r2, loop  ; branches: beq bne blt ble bgt bge, jmp label
//	  call helper
//	  halt               ; or ret
//	func helper
//	  ret
//
// Registers are r0..r31; sp is an alias for r31. Source line numbers of
// the assembly text become the instructions' attribution lines, so
// profiler reports point back into the .wa file.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
)

// Assemble parses source text into a validated program. file names the
// program in profiler reports.
func Assemble(file, source string) (*isa.Program, error) {
	b := isa.NewBuilder(file)
	var fb *isa.FuncBuilder
	entry := "main"

	for lineNo, raw := range strings.Split(source, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		ln := lineNo + 1
		fail := func(format string, args ...any) error {
			return fmt.Errorf("%s:%d: %s", file, ln, fmt.Sprintf(format, args...))
		}

		if strings.HasSuffix(line, ":") {
			if fb == nil {
				return nil, fail("label outside function")
			}
			fb.Label(strings.TrimSuffix(line, ":"))
			continue
		}

		op, rest, _ := strings.Cut(line, " ")
		op = strings.ToLower(op)
		args := splitArgs(rest)

		if op == "func" {
			if len(args) != 1 {
				return nil, fail("func needs a name")
			}
			fb = b.Func(args[0])
			continue
		}
		if op == "entry" {
			if len(args) != 1 {
				return nil, fail("entry needs a name")
			}
			entry = args[0]
			continue
		}
		if fb == nil {
			return nil, fail("instruction outside function")
		}
		fb.Line(ln)
		if err := emit(fb, op, args); err != nil {
			return nil, fail("%v", err)
		}
	}
	b.SetEntry(entry)
	return b.Build()
}

// MustAssemble is Assemble that panics on error, for fixed programs.
func MustAssemble(file, source string) *isa.Program {
	p, err := Assemble(file, source)
	if err != nil {
		panic(err)
	}
	return p
}

// splitArgs splits "r1, [r2+8], 4" into trimmed tokens.
func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// reg parses a register name.
func reg(s string) (isa.Reg, error) {
	ls := strings.ToLower(s)
	if ls == "sp" {
		return isa.SP, nil
	}
	if !strings.HasPrefix(ls, "r") {
		return 0, fmt.Errorf("bad register %q", s)
	}
	n, err := strconv.Atoi(ls[1:])
	if err != nil || n < 0 || n >= isa.NumRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return isa.Reg(n), nil
}

// imm parses an integer immediate (decimal or 0x hex, optionally signed).
func imm(s string) (int64, error) {
	return strconv.ParseInt(s, 0, 64)
}

// memOperand parses "[rN+off]" or "[rN-off]" or "[rN]".
func memOperand(s string) (isa.Reg, int64, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	inner := s[1 : len(s)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, err := reg(inner)
		return r, 0, err
	}
	r, err := reg(inner[:sep])
	if err != nil {
		return 0, 0, err
	}
	off, err := imm(inner[sep:])
	if err != nil {
		return 0, 0, fmt.Errorf("bad offset in %q", s)
	}
	return r, off, nil
}

// width parses an access width.
func width(s string) (uint8, error) {
	switch s {
	case "1", "2", "4", "8":
		return uint8(s[0] - '0'), nil
	}
	return 0, fmt.Errorf("bad width %q (want 1, 2, 4 or 8)", s)
}

// need checks the operand count.
func need(args []string, n int) error {
	if len(args) != n {
		return fmt.Errorf("want %d operands, got %d", n, len(args))
	}
	return nil
}

var alu3 = map[string]isa.Op{
	"add": isa.OpAdd, "sub": isa.OpSub, "mul": isa.OpMul, "div": isa.OpDiv,
	"and": isa.OpAnd, "or": isa.OpOr, "xor": isa.OpXor, "mod": isa.OpMod,
	"fadd": isa.OpFAdd, "fsub": isa.OpFSub, "fmul": isa.OpFMul, "fdiv": isa.OpFDiv,
}

var aluImm = map[string]isa.Op{
	"addi": isa.OpAddImm, "muli": isa.OpMulImm, "shl": isa.OpShl, "shr": isa.OpShr,
}

var branches = map[string]isa.Op{
	"beq": isa.OpBeq, "bne": isa.OpBne, "blt": isa.OpBlt,
	"ble": isa.OpBle, "bgt": isa.OpBgt, "bge": isa.OpBge,
}

// emit assembles one instruction onto fb.
func emit(fb *isa.FuncBuilder, op string, args []string) error {
	if o, ok := alu3[op]; ok {
		if err := need(args, 3); err != nil {
			return err
		}
		d, err1 := reg(args[0])
		a, err2 := reg(args[1])
		b, err3 := reg(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return err
		}
		fb.Emit(isa.Instr{Op: o, Dst: d, A: a, B: b})
		return nil
	}
	if o, ok := aluImm[op]; ok {
		if err := need(args, 3); err != nil {
			return err
		}
		d, err1 := reg(args[0])
		a, err2 := reg(args[1])
		v, err3 := imm(args[2])
		if err := firstErr(err1, err2, err3); err != nil {
			return err
		}
		fb.Emit(isa.Instr{Op: o, Dst: d, A: a, Imm: v})
		return nil
	}
	if o, ok := branches[op]; ok {
		if err := need(args, 3); err != nil {
			return err
		}
		a, err1 := reg(args[0])
		b, err2 := reg(args[1])
		if err := firstErr(err1, err2); err != nil {
			return err
		}
		switch o {
		case isa.OpBeq:
			fb.Beq(a, b, args[2])
		case isa.OpBne:
			fb.Bne(a, b, args[2])
		case isa.OpBlt:
			fb.Blt(a, b, args[2])
		case isa.OpBle:
			fb.Ble(a, b, args[2])
		case isa.OpBgt:
			fb.Bgt(a, b, args[2])
		case isa.OpBge:
			fb.Bge(a, b, args[2])
		}
		return nil
	}

	switch op {
	case "nop":
		fb.Emit(isa.Instr{Op: isa.OpNop})
	case "movi":
		if err := need(args, 2); err != nil {
			return err
		}
		d, err := reg(args[0])
		if err != nil {
			return err
		}
		v, err := imm(args[1])
		if err != nil {
			return err
		}
		fb.MovImm(d, v)
	case "fmovi":
		if err := need(args, 2); err != nil {
			return err
		}
		d, err := reg(args[0])
		if err != nil {
			return err
		}
		f, err := strconv.ParseFloat(args[1], 64)
		if err != nil {
			return err
		}
		fb.FMovImm(d, f)
	case "mov":
		if err := need(args, 2); err != nil {
			return err
		}
		d, err1 := reg(args[0])
		a, err2 := reg(args[1])
		if err := firstErr(err1, err2); err != nil {
			return err
		}
		fb.Mov(d, a)
	case "load":
		if err := need(args, 3); err != nil {
			return err
		}
		d, err := reg(args[0])
		if err != nil {
			return err
		}
		base, off, err := memOperand(args[1])
		if err != nil {
			return err
		}
		w, err := width(args[2])
		if err != nil {
			return err
		}
		fb.Load(d, base, off, w)
	case "store", "slowstore":
		if err := need(args, 3); err != nil {
			return err
		}
		base, off, err := memOperand(args[0])
		if err != nil {
			return err
		}
		src, err := reg(args[1])
		if err != nil {
			return err
		}
		w, err := width(args[2])
		if err != nil {
			return err
		}
		if op == "slowstore" {
			fb.SlowStore(base, off, src, w)
		} else {
			fb.Store(base, off, src, w)
		}
	case "fload":
		if err := need(args, 2); err != nil {
			return err
		}
		d, err := reg(args[0])
		if err != nil {
			return err
		}
		base, off, err := memOperand(args[1])
		if err != nil {
			return err
		}
		fb.FLoad(d, base, off)
	case "fstore":
		if err := need(args, 2); err != nil {
			return err
		}
		base, off, err := memOperand(args[0])
		if err != nil {
			return err
		}
		src, err := reg(args[1])
		if err != nil {
			return err
		}
		fb.FStore(base, off, src)
	case "jmp":
		if err := need(args, 1); err != nil {
			return err
		}
		fb.Jmp(args[0])
	case "call":
		if err := need(args, 1); err != nil {
			return err
		}
		fb.Call(args[0])
	case "ret":
		fb.Ret()
	case "halt":
		fb.Halt()
	default:
		return fmt.Errorf("unknown mnemonic %q", op)
	}
	return nil
}

func firstErr(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Disassemble renders a program back to assembler syntax (labels are
// synthesized as L<idx>).
func Disassemble(p *isa.Program) string {
	var sb strings.Builder
	// Preserve a non-default entry point across round trips.
	if p.Entry >= 0 && p.Entry < len(p.Funcs) && p.Funcs[p.Entry].Name != "main" {
		fmt.Fprintf(&sb, "entry %s\n\n", p.Funcs[p.Entry].Name)
	}
	for fi, f := range p.Funcs {
		// Collect branch targets.
		targets := map[int]bool{}
		for _, in := range f.Code {
			switch in.Op {
			case isa.OpJmp, isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBle, isa.OpBgt, isa.OpBge:
				targets[int(in.Imm)] = true
			}
		}
		fmt.Fprintf(&sb, "func %s\n", f.Name)
		for ii, in := range f.Code {
			if targets[ii] {
				fmt.Fprintf(&sb, "L%d:\n", ii)
			}
			sb.WriteString("  ")
			sb.WriteString(renderInstr(p, &in))
			sb.WriteByte('\n')
		}
		if fi != len(p.Funcs)-1 {
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// renderInstr renders one instruction.
func renderInstr(p *isa.Program, in *isa.Instr) string {
	r := func(x isa.Reg) string {
		if x == isa.SP {
			return "sp"
		}
		return fmt.Sprintf("r%d", x)
	}
	memOp := func() string { return fmt.Sprintf("[%s%+d]", r(in.A), in.Imm) }
	switch in.Op {
	case isa.OpNop:
		return "nop"
	case isa.OpMovImm:
		return fmt.Sprintf("movi %s, %d", r(in.Dst), in.Imm)
	case isa.OpFMovImm:
		return fmt.Sprintf("fmovi %s, %g", r(in.Dst), isa.F64(uint64(in.Imm)))
	case isa.OpMov:
		return fmt.Sprintf("mov %s, %s", r(in.Dst), r(in.A))
	case isa.OpAddImm, isa.OpMulImm, isa.OpShl, isa.OpShr:
		return fmt.Sprintf("%s %s, %s, %d", aluImmName(in.Op), r(in.Dst), r(in.A), in.Imm)
	case isa.OpAdd, isa.OpSub, isa.OpMul, isa.OpDiv, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpMod,
		isa.OpFAdd, isa.OpFSub, isa.OpFMul, isa.OpFDiv:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.Dst), r(in.A), r(in.B))
	case isa.OpLoad:
		if in.Float {
			return fmt.Sprintf("fload %s, %s", r(in.Dst), memOp())
		}
		return fmt.Sprintf("load %s, %s, %d", r(in.Dst), memOp(), in.Width)
	case isa.OpStore:
		if in.Float {
			return fmt.Sprintf("fstore %s, %s", memOp(), r(in.B))
		}
		name := "store"
		if in.Latency > 1 {
			name = "slowstore"
		}
		return fmt.Sprintf("%s %s, %s, %d", name, memOp(), r(in.B), in.Width)
	case isa.OpJmp:
		return fmt.Sprintf("jmp L%d", in.Imm)
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBle, isa.OpBgt, isa.OpBge:
		return fmt.Sprintf("%s %s, %s, L%d", in.Op, r(in.A), r(in.B), in.Imm)
	case isa.OpCall:
		if int(in.Fn) < len(p.Funcs) {
			return "call " + p.Funcs[in.Fn].Name
		}
		return fmt.Sprintf("call f%d", in.Fn)
	case isa.OpRet:
		return "ret"
	case isa.OpHalt:
		return "halt"
	}
	return fmt.Sprintf("; unknown op %d", in.Op)
}

func aluImmName(o isa.Op) string {
	switch o {
	case isa.OpAddImm:
		return "addi"
	case isa.OpMulImm:
		return "muli"
	case isa.OpShl:
		return "shl"
	default:
		return "shr"
	}
}
