// Package machine implements the simulated CPU that stands in for native
// execution in this Witch reproduction: an interpreter for the internal/isa
// instruction set with byte-addressable sparse memory, per-thread register
// files and call stacks, a round-robin scheduler, a Last Branch Record
// ring, per-thread virtualized PMU counters and debug registers, and a
// faithful model of Linux signal delivery — including the signal frame
// written onto the interrupted thread's stack, which is what makes the
// Figure 3 sigaltstack corner case reproducible.
//
// Instrumentation tools (the exhaustive DeadSpy/RedSpy/LoadSpy baselines)
// attach an Observer and see every retired access; sampling tools (Witch)
// attach nothing and rely on the PMU and debug registers only, which is
// exactly the overhead asymmetry Table 1 of the paper measures.
package machine

import (
	"fmt"

	"repro/internal/hwdebug"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/pmu"
)

// Config controls machine construction.
type Config struct {
	// NumDebugRegs is the number of hardware debug registers per thread
	// (4 on real x86; Figure 5 sweeps 1..4).
	NumDebugRegs int
	// StackBytes is the size of each thread's stack region.
	StackBytes uint64
	// SignalFrameBytes is how many bytes the simulated kernel scribbles
	// below the stack pointer when delivering a signal.
	SignalFrameBytes uint64
	// Quantum is the scheduler time slice in instructions.
	Quantum uint64
	// MaxSteps aborts runaway programs; 0 means no limit.
	MaxSteps uint64
	// MaxCallDepth bounds the call stack (a stack-overflow guard for
	// runaway recursion); default 1<<16 frames.
	MaxCallDepth int
	// ShadowSampling enables the PEBS shadow bias on all PMU units.
	ShadowSampling bool
	// LBRSize is the Last Branch Record depth (16 on Nehalem+).
	LBRSize int
}

// defaults fills zero fields.
func (c *Config) defaults() {
	if c.NumDebugRegs == 0 {
		c.NumDebugRegs = 4
	}
	if c.StackBytes == 0 {
		c.StackBytes = 1 << 20
	}
	if c.SignalFrameBytes == 0 {
		c.SignalFrameBytes = 192
	}
	if c.Quantum == 0 {
		c.Quantum = 4096
	}
	if c.LBRSize == 0 {
		c.LBRSize = 16
	}
	if c.MaxCallDepth == 0 {
		c.MaxCallDepth = 1 << 16
	}
}

// Access describes one retired memory operation as seen by an Observer.
type Access struct {
	Kind  pmu.AccessKind
	PC    isa.PC
	Addr  uint64
	Width uint8
	Value uint64 // bits loaded or stored
	Float bool
}

// Observer receives every retired access plus call/return edges, which is
// what exhaustive shadow-memory tools instrument. A nil observer costs one
// branch per access.
type Observer interface {
	OnAccess(t *Thread, acc *Access)
	OnCall(t *Thread, callee int32, callSite isa.PC)
	OnRet(t *Thread)
}

// Branch is one LBR entry: a taken control transfer.
type Branch struct {
	From, To isa.PC
}

// Frame is one activation record on a thread's call stack.
type Frame struct {
	FuncIdx  int32
	CallSite isa.PC // PC of the call instruction in the caller
	RetPC    isa.PC // where ret resumes
}

// SampleHandler receives PMU samples with the owning thread.
type SampleHandler func(t *Thread, s pmu.Sample)

// TrapHandler receives watchpoint exceptions with the owning thread.
type TrapHandler func(t *Thread, tr hwdebug.Trap)

// Thread is one simulated software thread.
type Thread struct {
	ID    int
	Regs  [isa.NumRegs]uint64
	PC    isa.PC
	Stack []Frame

	PMU   *pmu.Unit
	Watch *hwdebug.Unit

	lbr    []Branch
	lbrLen int
	lbrPos int

	halted bool
	m      *Machine

	// Stack region bounds: [StackLimit, StackTop). SP starts at StackTop.
	StackTop   uint64
	StackLimit uint64

	// UseAltStack routes signal frames to a dedicated region
	// (sigaltstack); AltStackTop is its ceiling.
	UseAltStack bool
	AltStackTop uint64

	sigDepth int

	// Per-thread retirement statistics.
	Instrs, Loads, Stores uint64
}

// Halted reports whether the thread has executed halt or returned from its
// entry function.
func (t *Thread) Halted() bool { return t.halted }

// Depth returns the current call-stack depth.
func (t *Thread) Depth() int { return len(t.Stack) }

// Frames returns the live call stack (do not mutate).
func (t *Thread) Frames() []Frame { return t.Stack }

// SP returns the current stack pointer register.
func (t *Thread) SP() uint64 { return t.Regs[isa.SP] }

// LBR returns the recorded taken branches, oldest first.
func (t *Thread) LBR() []Branch {
	out := make([]Branch, 0, t.lbrLen)
	start := t.lbrPos - t.lbrLen
	for i := 0; i < t.lbrLen; i++ {
		out = append(out, t.lbr[(start+i+len(t.lbr))%len(t.lbr)])
	}
	return out
}

// LastBranch returns the most recent taken branch and whether one exists.
func (t *Thread) LastBranch() (Branch, bool) {
	if t.lbrLen == 0 {
		return Branch{}, false
	}
	return t.lbr[(t.lbrPos-1+len(t.lbr))%len(t.lbr)], true
}

func (t *Thread) recordBranch(from, to isa.PC) {
	t.lbr[t.lbrPos] = Branch{From: from, To: to}
	t.lbrPos = (t.lbrPos + 1) % len(t.lbr)
	if t.lbrLen < len(t.lbr) {
		t.lbrLen++
	}
}

// Machine executes a program.
type Machine struct {
	Prog    *isa.Program
	Mem     *mem.Memory
	Threads []*Thread
	cfg     Config

	observer Observer

	samplerEvent  pmu.Event
	samplerPeriod uint64
	onSample      SampleHandler
	onTrap        TrapHandler

	steps uint64

	// base address for the next thread's stack region.
	nextStackTop uint64
}

// stack regions live high in the address space, one per thread, with an
// unmapped guard gap between them.
const stackCeiling = 0x7fff_0000_0000

// New builds a machine for prog with one initial thread at the entry
// function.
func New(prog *isa.Program, cfg Config) *Machine {
	cfg.defaults()
	m := &Machine{
		Prog:         prog,
		Mem:          mem.New(),
		cfg:          cfg,
		nextStackTop: stackCeiling,
	}
	m.SpawnThread(prog.Entry)
	return m
}

// Config returns the machine's effective configuration.
func (m *Machine) Config() Config { return m.cfg }

// SpawnThread creates a thread starting at function entry and returns it.
func (m *Machine) SpawnThread(entry int) *Thread {
	id := len(m.Threads)
	top := m.nextStackTop
	m.nextStackTop -= m.cfg.StackBytes + 1<<20 // guard gap
	altTop := m.nextStackTop
	m.nextStackTop -= 1 << 16 // alt-stack region + gap

	t := &Thread{
		ID:          id,
		PC:          isa.MakePC(entry, 0),
		PMU:         pmu.NewUnit(id),
		Watch:       hwdebug.NewUnit(id, m.cfg.NumDebugRegs),
		lbr:         make([]Branch, m.cfg.LBRSize),
		StackTop:    top,
		StackLimit:  top - m.cfg.StackBytes,
		AltStackTop: altTop,
		m:           m,
	}
	t.PMU.Shadow = m.cfg.ShadowSampling
	t.Regs[isa.SP] = top
	// Convention: R1 carries the thread ID at thread start, so one entry
	// function can partition work across threads (the multi-threaded
	// workloads rely on this).
	t.Regs[isa.R1] = uint64(id)
	t.Stack = append(t.Stack, Frame{FuncIdx: int32(entry)})
	if m.samplerEvent != pmu.EventNone {
		m.wireSampler(t)
	}
	m.Threads = append(m.Threads, t)
	return t
}

// SetObserver attaches exhaustive instrumentation (may be nil to detach).
func (m *Machine) SetObserver(o Observer) { m.observer = o }

// AttachSampler programs every thread's PMU for the event and period and
// installs the sample handler (delivered signal-style).
func (m *Machine) AttachSampler(event pmu.Event, period uint64, h SampleHandler) {
	m.samplerEvent, m.samplerPeriod, m.onSample = event, period, h
	for _, t := range m.Threads {
		m.wireSampler(t)
	}
}

func (m *Machine) wireSampler(t *Thread) {
	th := t
	th.PMU.Configure(m.samplerEvent, m.samplerPeriod, func(s pmu.Sample) {
		m.deliverSignal(th, func() {
			if m.onSample != nil {
				m.onSample(th, s)
			}
		})
	})
	th.PMU.Enable()
}

// SetTrapHandler installs the watchpoint exception handler on every thread
// (delivered signal-style).
func (m *Machine) SetTrapHandler(h TrapHandler) {
	m.onTrap = h
	for _, t := range m.Threads {
		th := t
		th.Watch.SetHandler(func(tr hwdebug.Trap) {
			m.deliverSignal(th, func() {
				if m.onTrap != nil {
					m.onTrap(th, tr)
				}
			})
		})
	}
}

// SetAltStack enables or disables the alternate signal stack on all
// threads (the sigaltstack fix from §5 / Figure 3c).
func (m *Machine) SetAltStack(on bool) {
	for _, t := range m.Threads {
		t.UseAltStack = on
	}
}

// deliverSignal simulates kernel signal delivery: it writes the signal
// frame to the thread's current stack (or the alternate stack), then runs
// the handler. Frame writes are kernel writes: they do not count PMU
// events, but they do hit armed watchpoints — the Figure 3 hazard — unless
// the frame lands on the alternate stack. Nested delivery (a frame write
// trapping a watchpoint inside another delivery) is bounded.
func (m *Machine) deliverSignal(t *Thread, handler func()) {
	base := t.Regs[isa.SP]
	if t.UseAltStack {
		base = t.AltStackTop - uint64(t.sigDepth)*m.cfg.SignalFrameBytes
	}
	t.sigDepth++
	lo := base - m.cfg.SignalFrameBytes
	// The kernel scribbles register state into the frame, 8 bytes at a
	// time. Each write may spuriously trigger a watchpoint.
	for a := lo; a+8 <= base; a += 8 {
		m.Mem.StoreN(a, a^0x51f0_51f0, 8)
		if t.sigDepth <= 2 {
			t.Watch.Check(hwdebug.Store, a, 8, a, false, t.PC, true)
		}
	}
	handler()
	t.sigDepth--
}

// Steps returns total retired instructions across threads.
func (m *Machine) Steps() uint64 { return m.steps }

// Footprint returns the native resident memory of the program: touched
// pages plus fixed machine state. Tool bloat is measured against this.
func (m *Machine) Footprint() uint64 {
	const perThread = 4096 // registers, frames, LBR
	return m.Mem.Footprint() + uint64(len(m.Threads))*perThread
}

// Run executes all threads round-robin until every thread halts. It
// returns an error on invalid programs or when MaxSteps is exceeded.
func (m *Machine) Run() error {
	for {
		live := false
		for _, t := range m.Threads {
			if t.halted {
				continue
			}
			live = true
			for q := uint64(0); q < m.cfg.Quantum && !t.halted; q++ {
				if err := m.step(t); err != nil {
					return err
				}
			}
		}
		if !live {
			return nil
		}
		if m.cfg.MaxSteps != 0 && m.steps > m.cfg.MaxSteps {
			return fmt.Errorf("machine: exceeded max steps %d", m.cfg.MaxSteps)
		}
	}
}

// step retires one instruction on t.
func (m *Machine) step(t *Thread) error {
	in := m.Prog.InstrAt(t.PC)
	if in == nil {
		return fmt.Errorf("machine: thread %d: invalid PC %v", t.ID, t.PC)
	}
	pc := t.PC
	next := pc.Add(1)
	r := &t.Regs
	m.steps++
	t.Instrs++

	switch in.Op {
	case isa.OpNop:
	case isa.OpMovImm, isa.OpFMovImm:
		r[in.Dst] = uint64(in.Imm)
	case isa.OpMov:
		r[in.Dst] = r[in.A]
	case isa.OpAdd:
		r[in.Dst] = r[in.A] + r[in.B]
	case isa.OpAddImm:
		r[in.Dst] = r[in.A] + uint64(in.Imm)
	case isa.OpSub:
		r[in.Dst] = r[in.A] - r[in.B]
	case isa.OpMul:
		r[in.Dst] = r[in.A] * r[in.B]
	case isa.OpMulImm:
		r[in.Dst] = r[in.A] * uint64(in.Imm)
	case isa.OpDiv:
		if r[in.B] == 0 {
			r[in.Dst] = 0
		} else {
			r[in.Dst] = r[in.A] / r[in.B]
		}
	case isa.OpMod:
		if r[in.B] == 0 {
			r[in.Dst] = 0
		} else {
			r[in.Dst] = r[in.A] % r[in.B]
		}
	case isa.OpAnd:
		r[in.Dst] = r[in.A] & r[in.B]
	case isa.OpOr:
		r[in.Dst] = r[in.A] | r[in.B]
	case isa.OpXor:
		r[in.Dst] = r[in.A] ^ r[in.B]
	case isa.OpShl:
		r[in.Dst] = r[in.A] << (uint64(in.Imm) & 63)
	case isa.OpShr:
		r[in.Dst] = r[in.A] >> (uint64(in.Imm) & 63)
	case isa.OpFAdd:
		r[in.Dst] = isa.F64Bits(isa.F64(r[in.A]) + isa.F64(r[in.B]))
	case isa.OpFSub:
		r[in.Dst] = isa.F64Bits(isa.F64(r[in.A]) - isa.F64(r[in.B]))
	case isa.OpFMul:
		r[in.Dst] = isa.F64Bits(isa.F64(r[in.A]) * isa.F64(r[in.B]))
	case isa.OpFDiv:
		r[in.Dst] = isa.F64Bits(isa.F64(r[in.A]) / isa.F64(r[in.B]))

	case isa.OpLoad:
		addr := r[in.A] + uint64(in.Imm)
		val := m.Mem.LoadN(addr, in.Width)
		r[in.Dst] = val
		t.Loads++
		m.retireAccess(t, pmu.Load, pc, next, addr, in.Width, val, in.Float, in.Latency)
	case isa.OpStore:
		addr := r[in.A] + uint64(in.Imm)
		val := r[in.B]
		if in.Width < 8 {
			val &= (1 << (8 * uint64(in.Width))) - 1
		}
		m.Mem.StoreN(addr, val, in.Width)
		t.Stores++
		m.retireAccess(t, pmu.Store, pc, next, addr, in.Width, val, in.Float, in.Latency)

	case isa.OpJmp:
		next = isa.MakePC(pc.Func(), int(in.Imm))
		t.recordBranch(pc, next)
	case isa.OpBeq, isa.OpBne, isa.OpBlt, isa.OpBle, isa.OpBgt, isa.OpBge:
		a, b := int64(r[in.A]), int64(r[in.B])
		var take bool
		switch in.Op {
		case isa.OpBeq:
			take = a == b
		case isa.OpBne:
			take = a != b
		case isa.OpBlt:
			take = a < b
		case isa.OpBle:
			take = a <= b
		case isa.OpBgt:
			take = a > b
		case isa.OpBge:
			take = a >= b
		}
		if take {
			next = isa.MakePC(pc.Func(), int(in.Imm))
			t.recordBranch(pc, next)
		}
	case isa.OpCall:
		if len(t.Stack) >= m.cfg.MaxCallDepth {
			return fmt.Errorf("machine: thread %d: call stack overflow (%d frames) at %v", t.ID, len(t.Stack), pc)
		}
		callee := isa.MakePC(int(in.Fn), 0)
		t.Stack = append(t.Stack, Frame{FuncIdx: in.Fn, CallSite: pc, RetPC: next})
		t.recordBranch(pc, callee)
		if m.observer != nil {
			m.observer.OnCall(t, in.Fn, pc)
		}
		next = callee
	case isa.OpRet:
		if len(t.Stack) <= 1 {
			t.halted = true
			if m.observer != nil {
				m.observer.OnRet(t)
			}
			return nil
		}
		fr := t.Stack[len(t.Stack)-1]
		t.Stack = t.Stack[:len(t.Stack)-1]
		t.recordBranch(pc, fr.RetPC)
		if m.observer != nil {
			m.observer.OnRet(t)
		}
		next = fr.RetPC
	case isa.OpHalt:
		t.halted = true
		return nil
	default:
		return fmt.Errorf("machine: thread %d: bad opcode %v at %v", t.ID, in.Op, pc)
	}

	// IBS-style sampling counts every retired instruction, not just
	// memory operations (memory ops are counted inside retireAccess).
	if !in.Op.IsMem() && t.PMU.NeedsAllRetired() {
		t.PMU.CountNonMem()
	}

	t.PC = next
	return nil
}

// retireAccess runs the post-retirement pipeline for a memory operation:
// exhaustive observer, then armed watchpoints (traps fire after execution,
// and a watchpoint armed *during* this access's own sample delivery must
// not see this access — hence watchpoints are checked before the PMU),
// then the PMU counter.
func (m *Machine) retireAccess(t *Thread, kind pmu.AccessKind, pc, next isa.PC, addr uint64, width uint8, val uint64, float bool, latency uint8) {
	if m.observer != nil {
		acc := Access{Kind: kind, PC: pc, Addr: addr, Width: width, Value: val, Float: float}
		m.observer.OnAccess(t, &acc)
	}
	t.Watch.Check(hwdebug.AccessKind(kind), addr, width, val, float, next, false)
	t.PMU.CountMemOp(kind, pc, addr, width, val, float, latency)
}
