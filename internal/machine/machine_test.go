package machine

import (
	"testing"

	"repro/internal/hwdebug"
	"repro/internal/isa"
	"repro/internal/pmu"
)

// buildAndRun assembles, runs, and returns the machine.
func buildAndRun(t *testing.T, build func(b *isa.Builder), cfg Config) *Machine {
	t.Helper()
	b := isa.NewBuilder("test")
	build(b)
	m := New(b.MustBuild(), cfg)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestALUAndControlFlow(t *testing.T) {
	m := buildAndRun(t, func(b *isa.Builder) {
		f := b.Func("main")
		// sum = 0; for i in 0..9: sum += i   → 45
		f.MovImm(isa.R2, 0)
		f.LoopN(isa.R1, 10, func(fb *isa.FuncBuilder) {
			fb.Add(isa.R2, isa.R2, isa.R1)
		})
		f.MovImm(isa.R3, 0x100)
		f.Store(isa.R3, 0, isa.R2, 8)
		f.Halt()
	}, Config{})
	if got := m.Mem.LoadN(0x100, 8); got != 45 {
		t.Fatalf("sum = %d, want 45", got)
	}
}

func TestFloatOps(t *testing.T) {
	m := buildAndRun(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.FMovImm(isa.R1, 1.5)
		f.FMovImm(isa.R2, 2.5)
		f.FAdd(isa.R3, isa.R1, isa.R2)
		f.FMul(isa.R4, isa.R3, isa.R2) // 10.0
		f.MovImm(isa.R5, 0x200)
		f.FStore(isa.R5, 0, isa.R4)
		f.Halt()
	}, Config{})
	if got := isa.F64(m.Mem.LoadN(0x200, 8)); got != 10.0 {
		t.Fatalf("fp result = %v, want 10", got)
	}
}

func TestCallRetAndStackDepth(t *testing.T) {
	var maxDepth int
	b := isa.NewBuilder("test")
	inner := b.Func("inner")
	inner.MovImm(isa.R3, 0x300)
	inner.Store(isa.R3, 0, isa.R3, 8)
	inner.Ret()
	outer := b.Func("outer")
	outer.Call("inner")
	outer.Ret()
	main := b.Func("main")
	main.Call("outer")
	main.Halt()
	b.SetEntry("main")
	m := New(b.MustBuild(), Config{})
	m.AttachSampler(pmu.EventAllStores, 1, func(t *Thread, s pmu.Sample) {
		if d := t.Depth(); d > maxDepth {
			maxDepth = d
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if maxDepth != 3 { // main -> outer -> inner
		t.Fatalf("max depth = %d, want 3", maxDepth)
	}
}

func TestReturnFromEntryHalts(t *testing.T) {
	m := buildAndRun(t, func(b *isa.Builder) {
		f := b.Func("main")
		f.MovImm(isa.R1, 1)
		f.Ret()
	}, Config{})
	if !m.Threads[0].Halted() {
		t.Fatal("thread should halt on entry ret")
	}
}

// obs records observer callbacks.
type obs struct {
	accesses []Access
	calls    int
	rets     int
}

func (o *obs) OnAccess(t *Thread, a *Access)       { o.accesses = append(o.accesses, *a) }
func (o *obs) OnCall(t *Thread, c int32, s isa.PC) { o.calls++ }
func (o *obs) OnRet(t *Thread)                     { o.rets++ }

func TestObserverSeesEveryAccess(t *testing.T) {
	b := isa.NewBuilder("test")
	callee := b.Func("callee")
	callee.MovImm(isa.R1, 0x400)
	callee.MovImm(isa.R2, 7)
	callee.Store(isa.R1, 0, isa.R2, 4)
	callee.Load(isa.R3, isa.R1, 0, 4)
	callee.Ret()
	main := b.Func("main")
	main.Call("callee")
	main.Call("callee")
	main.Halt()
	b.SetEntry("main")
	m := New(b.MustBuild(), Config{})
	o := &obs{}
	m.SetObserver(o)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(o.accesses) != 4 {
		t.Fatalf("accesses = %d, want 4", len(o.accesses))
	}
	if o.calls != 2 || o.rets != 2 {
		t.Fatalf("calls/rets = %d/%d", o.calls, o.rets)
	}
	if o.accesses[0].Kind != pmu.Store || o.accesses[0].Value != 7 {
		t.Fatalf("first access = %+v", o.accesses[0])
	}
	if o.accesses[1].Kind != pmu.Load || o.accesses[1].Value != 7 {
		t.Fatalf("second access = %+v", o.accesses[1])
	}
}

func TestPMUSamplingPeriod(t *testing.T) {
	b := isa.NewBuilder("test")
	f := b.Func("main")
	f.MovImm(isa.R3, 0x500)
	f.LoopN(isa.R1, 100, func(fb *isa.FuncBuilder) {
		fb.Store(isa.R3, 0, isa.R1, 8)
	})
	f.Halt()
	m := New(b.MustBuild(), Config{})
	var samples int
	m.AttachSampler(pmu.EventAllStores, 10, func(th *Thread, s pmu.Sample) {
		samples++
		if s.Kind != pmu.Store {
			t.Errorf("sampled kind = %v", s.Kind)
		}
		if s.Addr != 0x500 {
			t.Errorf("sampled addr = %#x", s.Addr)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if samples != 10 {
		t.Fatalf("samples = %d, want 10", samples)
	}
}

func TestWatchpointTrapAfterStoreSeesNewValue(t *testing.T) {
	b := isa.NewBuilder("test")
	f := b.Func("main")
	f.MovImm(isa.R3, 0x600)
	f.MovImm(isa.R2, 11)
	f.Store(isa.R3, 0, isa.R2, 8) // first store: sampled manually
	f.MovImm(isa.R2, 22)
	f.Store(isa.R3, 0, isa.R2, 8) // second store: traps
	f.Halt()
	m := New(b.MustBuild(), Config{})
	th := m.Threads[0]
	var traps []hwdebug.Trap
	m.SetTrapHandler(func(t *Thread, tr hwdebug.Trap) { traps = append(traps, tr) })
	th.Watch.Arm(0, 0x600, 8, hwdebug.RWTrap, nil, 0)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if len(traps) != 2 {
		t.Fatalf("traps = %d, want 2", len(traps))
	}
	// Trap-after-execute: the first trap (store of 11) must expose 11.
	if traps[0].Value != 11 || traps[1].Value != 22 {
		t.Fatalf("trap values = %d, %d", traps[0].Value, traps[1].Value)
	}
	// ContextPC is one instruction past the store.
	if traps[0].ContextPC.Index() != 3 {
		t.Fatalf("contextPC = %v", traps[0].ContextPC)
	}
}

func TestWatchpointArmedInsideSampleDoesNotSeeSameAccess(t *testing.T) {
	b := isa.NewBuilder("test")
	f := b.Func("main")
	f.MovImm(isa.R3, 0x700)
	f.LoopN(isa.R1, 10, func(fb *isa.FuncBuilder) {
		fb.Store(isa.R3, 0, isa.R1, 8)
	})
	f.Halt()
	m := New(b.MustBuild(), Config{})
	var traps int
	m.SetTrapHandler(func(t *Thread, tr hwdebug.Trap) {
		traps++
		t.Watch.Disarm(tr.Reg)
	})
	m.AttachSampler(pmu.EventAllStores, 3, func(t *Thread, s pmu.Sample) {
		if t.Watch.FreeReg() >= 0 {
			t.Watch.Arm(t.Watch.FreeReg(), s.Addr, s.Width, hwdebug.RWTrap, nil, s.Seq)
		}
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	// 10 stores, sample every 3rd: samples at store 3, 6, 9; watchpoint
	// armed at sample must trap at the NEXT store, not the sampled one.
	if traps != 3 {
		t.Fatalf("traps = %d, want 3", traps)
	}
}

func TestSignalFrameSpuriousTrapsWithoutAltStack(t *testing.T) {
	run := func(alt bool) uint64 {
		b := isa.NewBuilder("test")
		f := b.Func("main")
		// Store to an address just below SP (a "stack local"), then keep
		// storing to a global so PMU samples arrive and write signal
		// frames over the stack local.
		f.AddImm(isa.R3, isa.SP, -64)
		f.MovImm(isa.R2, 5)
		f.Store(isa.R3, 0, isa.R2, 8)
		f.MovImm(isa.R4, 0x800)
		f.LoopN(isa.R1, 50, func(fb *isa.FuncBuilder) {
			fb.Store(isa.R4, 0, isa.R1, 8)
		})
		f.Halt()
		m := New(b.MustBuild(), Config{})
		m.SetAltStack(alt)
		th := m.Threads[0]
		m.SetTrapHandler(func(t *Thread, tr hwdebug.Trap) {})
		m.AttachSampler(pmu.EventAllStores, 5, func(t *Thread, s pmu.Sample) {})
		// Watch the stack local.
		th.Watch.Arm(0, th.SP()-64, 8, hwdebug.RWTrap, nil, 0)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return th.Watch.Spurious
	}
	if got := run(false); got == 0 {
		t.Fatal("expected spurious traps without alt stack")
	}
	if got := run(true); got != 0 {
		t.Fatalf("alt stack should eliminate spurious traps, got %d", got)
	}
}

func TestLBRRecordsTakenBranches(t *testing.T) {
	b := isa.NewBuilder("test")
	callee := b.Func("callee")
	callee.Ret()
	main := b.Func("main")
	main.Call("callee")
	main.Halt()
	b.SetEntry("main")
	m := New(b.MustBuild(), Config{})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	lbr := m.Threads[0].LBR()
	if len(lbr) != 2 { // call + ret
		t.Fatalf("LBR entries = %d, want 2", len(lbr))
	}
	if lbr[0].To.Func() != m.Prog.FuncByName("callee") {
		t.Fatalf("call branch to = %v", lbr[0].To)
	}
}

func TestMultiThreadIsolatedWatchpoints(t *testing.T) {
	b := isa.NewBuilder("test")
	f := b.Func("main")
	f.MovImm(isa.R3, 0x900)
	f.LoopN(isa.R1, 20, func(fb *isa.FuncBuilder) {
		fb.Store(isa.R3, 0, isa.R1, 8)
	})
	f.Halt()
	m := New(b.MustBuild(), Config{})
	t2 := m.SpawnThread(m.Prog.Entry)
	trapThreads := map[int]int{}
	m.SetTrapHandler(func(th *Thread, tr hwdebug.Trap) { trapThreads[th.ID]++ })
	// Watch 0x900 only in thread 0; both threads store there.
	m.Threads[0].Watch.Arm(0, 0x900, 8, hwdebug.RWTrap, nil, 0)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if trapThreads[0] == 0 {
		t.Fatal("thread 0 should trap")
	}
	if trapThreads[t2.ID] != 0 {
		t.Fatal("thread 1 must not trap on thread 0's watchpoint")
	}
}

func TestMaxStepsGuard(t *testing.T) {
	b := isa.NewBuilder("test")
	f := b.Func("main")
	f.Label("spin")
	f.Jmp("spin")
	m := New(b.MustBuild(), Config{MaxSteps: 10000})
	if err := m.Run(); err == nil {
		t.Fatal("expected max-steps error")
	}
}

func TestShadowSamplingBiasesToLongLatency(t *testing.T) {
	build := func(shadow bool) map[int]int {
		b := isa.NewBuilder("test")
		f := b.Func("main")
		f.MovImm(isa.R3, 0xa00)
		f.MovImm(isa.R4, 0xb00)
		f.LoopN(isa.R1, 300, func(fb *isa.FuncBuilder) {
			fb.SlowStore(isa.R3, 0, isa.R1, 8) // long latency at 0xa00
			fb.Store(isa.R4, 0, isa.R1, 8)     // short, in its shadow
		})
		f.Halt()
		m := New(b.MustBuild(), Config{ShadowSampling: shadow})
		byAddr := map[int]int{}
		m.AttachSampler(pmu.EventAllStores, 7, func(t *Thread, s pmu.Sample) {
			byAddr[int(s.Addr)]++
		})
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		return byAddr
	}
	plain := build(false)
	biased := build(true)
	if plain[0xb00] == 0 {
		t.Fatal("unbiased sampling should see the short store")
	}
	if biased[0xb00] != 0 {
		t.Fatalf("shadowed short store should be hidden, got %d samples", biased[0xb00])
	}
}

func TestCallStackOverflowGuard(t *testing.T) {
	b := isa.NewBuilder("test")
	f := b.Func("main")
	f.Call("main") // unbounded recursion
	f.Halt()
	m := New(b.MustBuild(), Config{MaxCallDepth: 100})
	err := m.Run()
	if err == nil {
		t.Fatal("expected stack-overflow error")
	}
}
