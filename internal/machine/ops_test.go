package machine

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/pmu"
)

// TestOpcodeSemantics is a table-driven golden test of every ALU opcode:
// each case sets r1 and r2, executes one instruction into r3, and checks
// the result.
func TestOpcodeSemantics(t *testing.T) {
	cases := []struct {
		name string
		in   isa.Instr
		r1   uint64
		r2   uint64
		want uint64
	}{
		{"add", isa.Instr{Op: isa.OpAdd, Dst: 3, A: 1, B: 2}, 7, 5, 12},
		{"add wraps", isa.Instr{Op: isa.OpAdd, Dst: 3, A: 1, B: 2}, ^uint64(0), 1, 0},
		{"sub", isa.Instr{Op: isa.OpSub, Dst: 3, A: 1, B: 2}, 7, 5, 2},
		{"sub underflow", isa.Instr{Op: isa.OpSub, Dst: 3, A: 1, B: 2}, 5, 7, ^uint64(0) - 1},
		{"mul", isa.Instr{Op: isa.OpMul, Dst: 3, A: 1, B: 2}, 7, 5, 35},
		{"mulimm", isa.Instr{Op: isa.OpMulImm, Dst: 3, A: 1, Imm: 3}, 7, 0, 21},
		{"div", isa.Instr{Op: isa.OpDiv, Dst: 3, A: 1, B: 2}, 17, 5, 3},
		{"div by zero", isa.Instr{Op: isa.OpDiv, Dst: 3, A: 1, B: 2}, 17, 0, 0},
		{"mod", isa.Instr{Op: isa.OpMod, Dst: 3, A: 1, B: 2}, 17, 5, 2},
		{"mod by zero", isa.Instr{Op: isa.OpMod, Dst: 3, A: 1, B: 2}, 17, 0, 0},
		{"and", isa.Instr{Op: isa.OpAnd, Dst: 3, A: 1, B: 2}, 0b1100, 0b1010, 0b1000},
		{"or", isa.Instr{Op: isa.OpOr, Dst: 3, A: 1, B: 2}, 0b1100, 0b1010, 0b1110},
		{"xor", isa.Instr{Op: isa.OpXor, Dst: 3, A: 1, B: 2}, 0b1100, 0b1010, 0b0110},
		{"shl", isa.Instr{Op: isa.OpShl, Dst: 3, A: 1, Imm: 4}, 3, 0, 48},
		{"shl masks count", isa.Instr{Op: isa.OpShl, Dst: 3, A: 1, Imm: 64}, 3, 0, 3},
		{"shr", isa.Instr{Op: isa.OpShr, Dst: 3, A: 1, Imm: 2}, 48, 0, 12},
		{"mov", isa.Instr{Op: isa.OpMov, Dst: 3, A: 1}, 42, 0, 42},
		{"movimm", isa.Instr{Op: isa.OpMovImm, Dst: 3, Imm: -1}, 0, 0, ^uint64(0)},
		{"addimm negative", isa.Instr{Op: isa.OpAddImm, Dst: 3, A: 1, Imm: -3}, 10, 0, 7},
		{"fadd", isa.Instr{Op: isa.OpFAdd, Dst: 3, A: 1, B: 2},
			isa.F64Bits(1.5), isa.F64Bits(2.25), isa.F64Bits(3.75)},
		{"fsub", isa.Instr{Op: isa.OpFSub, Dst: 3, A: 1, B: 2},
			isa.F64Bits(1.5), isa.F64Bits(2.25), isa.F64Bits(-0.75)},
		{"fmul", isa.Instr{Op: isa.OpFMul, Dst: 3, A: 1, B: 2},
			isa.F64Bits(1.5), isa.F64Bits(2.0), isa.F64Bits(3.0)},
		{"fdiv", isa.Instr{Op: isa.OpFDiv, Dst: 3, A: 1, B: 2},
			isa.F64Bits(3.0), isa.F64Bits(2.0), isa.F64Bits(1.5)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog := &isa.Program{Funcs: []*isa.Function{{
				Name: "main",
				Code: []isa.Instr{tc.in, {Op: isa.OpHalt}},
			}}}
			m := New(prog, Config{})
			th := m.Threads[0]
			th.Regs[1], th.Regs[2] = tc.r1, tc.r2
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			if got := th.Regs[3]; got != tc.want {
				t.Fatalf("got %#x, want %#x", got, tc.want)
			}
		})
	}
}

// TestBranchSemantics drives every conditional branch both ways.
func TestBranchSemantics(t *testing.T) {
	cases := []struct {
		op    isa.Op
		a, b  int64
		taken bool
	}{
		{isa.OpBeq, 5, 5, true}, {isa.OpBeq, 5, 6, false},
		{isa.OpBne, 5, 6, true}, {isa.OpBne, 5, 5, false},
		{isa.OpBlt, -1, 0, true}, {isa.OpBlt, 0, -1, false},
		{isa.OpBle, 5, 5, true}, {isa.OpBle, 6, 5, false},
		{isa.OpBgt, 1, 0, true}, {isa.OpBgt, 0, 0, false},
		{isa.OpBge, 0, 0, true}, {isa.OpBge, -2, -1, false},
	}
	for _, tc := range cases {
		// Code: branch to 3 if taken; r3=1 (skipped when taken); halt.
		prog := &isa.Program{Funcs: []*isa.Function{{
			Name: "main",
			Code: []isa.Instr{
				{Op: tc.op, A: 1, B: 2, Imm: 3},
				{Op: isa.OpMovImm, Dst: 3, Imm: 1},
				{Op: isa.OpNop},
				{Op: isa.OpHalt},
			},
		}}}
		m := New(prog, Config{})
		th := m.Threads[0]
		th.Regs[1], th.Regs[2] = uint64(tc.a), uint64(tc.b)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		skipped := th.Regs[3] == 0
		if skipped != tc.taken {
			t.Errorf("%v(%d,%d): taken=%v want %v", tc.op, tc.a, tc.b, skipped, tc.taken)
		}
		// LBR must record taken branches only.
		if _, ok := th.LastBranch(); ok != tc.taken {
			t.Errorf("%v(%d,%d): LBR recorded=%v want %v", tc.op, tc.a, tc.b, ok, tc.taken)
		}
	}
}

// TestStoreWidthMasking: narrow stores write only their width.
func TestStoreWidthMasking(t *testing.T) {
	b := isa.NewBuilder("t")
	f := b.Func("main")
	f.MovImm(isa.R1, 0x100)
	f.MovImm(isa.R2, -1) // all ones
	f.Store(isa.R1, 0, isa.R2, 8)
	f.MovImm(isa.R3, 0)
	f.Store(isa.R1, 2, isa.R3, 2) // zero bytes 2..4
	f.Load(isa.R4, isa.R1, 0, 8)
	f.Halt()
	m := New(b.MustBuild(), Config{})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if got := m.Threads[0].Regs[isa.R4]; got != 0xFFFF_FFFF_0000_FFFF {
		t.Fatalf("masked store result = %#x", got)
	}
}

// TestIBSMachineIntegration: IBS mode counts every instruction; overflows
// on non-stores are dropped, and the observed sample count matches the
// instruction stream.
func TestIBSMachineIntegration(t *testing.T) {
	b := isa.NewBuilder("t")
	f := b.Func("main")
	f.MovImm(isa.R1, 0x100)
	f.LoopN(isa.R9, 1000, func(fb *isa.FuncBuilder) {
		fb.Store(isa.R1, 0, isa.R9, 8)
	})
	f.Halt()
	m := New(b.MustBuild(), Config{})
	th := m.Threads[0]
	samples := 0
	m.AttachSampler(pmu.EventAllStores, 97, func(t *Thread, s pmu.Sample) { samples++ })
	th.PMU.Mode = pmu.ModeIBS
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	total := samples + int(th.PMU.Dropped)
	wantOverflows := int(th.Instrs / 97)
	if total < wantOverflows-1 || total > wantOverflows+1 {
		t.Fatalf("overflows = %d, want ~%d", total, wantOverflows)
	}
	if samples == 0 || th.PMU.Dropped == 0 {
		t.Fatalf("expected both delivered (%d) and dropped (%d)", samples, th.PMU.Dropped)
	}
}
