package machine

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/pmu"
)

// benchProg: a tight load-add-store loop, the interpreter's hot path.
func benchProg(iters int64) *isa.Program {
	b := isa.NewBuilder("bench")
	f := b.Func("main")
	f.MovImm(isa.R1, 0x1000)
	f.LoopN(isa.R9, iters, func(fb *isa.FuncBuilder) {
		fb.Load(isa.R2, isa.R1, 0, 8)
		fb.AddImm(isa.R2, isa.R2, 1)
		fb.Store(isa.R1, 0, isa.R2, 8)
	})
	f.Halt()
	return b.MustBuild()
}

// BenchmarkInterpreter measures raw execution speed (ns per retired
// instruction) with no monitoring attached.
func BenchmarkInterpreter(b *testing.B) {
	prog := benchProg(10000)
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(prog, Config{})
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
		instrs += m.Threads[0].Instrs
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(instrs), "ns/instr")
}

// BenchmarkInterpreterWithSampler adds an armed PMU at a realistic period:
// the marginal cost of having the sampling hardware on.
func BenchmarkInterpreterWithSampler(b *testing.B) {
	prog := benchProg(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(prog, Config{})
		m.AttachSampler(pmu.EventAllStores, 4999, func(*Thread, pmu.Sample) {})
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWatchpointScan measures the per-access cost of checking armed
// debug registers (4 armed, no hits).
func BenchmarkWatchpointScan(b *testing.B) {
	prog := benchProg(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(prog, Config{})
		for r := 0; r < 4; r++ {
			m.Threads[0].Watch.Arm(r, uint64(0x9000+r*64), 8, 1, nil, 0)
		}
		if err := m.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
