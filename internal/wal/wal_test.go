package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// replayAll collects every record after a given LSN.
func replayAll(t *testing.T, dir string, after uint64) []Record {
	t.Helper()
	var out []Record
	if err := Replay(dir, after, func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("batch-%d", i))
		lsn, err := j.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d (dense from 1)", lsn, i+1)
		}
		want = append(want, p)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs := replayAll(t, dir, 0)
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || !bytes.Equal(r.Payload, want[i]) {
			t.Fatalf("record %d = {%d %q}", i, r.LSN, r.Payload)
		}
	}
	// Suffix replay honors the after cursor (the snapshot boundary).
	if got := replayAll(t, dir, 15); len(got) != 5 || got[0].LSN != 16 {
		t.Fatalf("suffix replay = %d records from %d", len(got), got[0].LSN)
	}
}

func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, Options{})
	for i := 0; i < 5; i++ {
		if _, err := j.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if ri := j2.Recovery(); ri.LastLSN != 5 || ri.TornTail {
		t.Fatalf("recovery = %+v", ri)
	}
	lsn, err := j2.Append([]byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 6 {
		t.Fatalf("post-reopen lsn = %d, want 6", lsn)
	}
	if got := replayAll(t, dir, 0); len(got) != 6 {
		t.Fatalf("replayed %d, want 6", len(got))
	}
}

func TestRotationAndGC(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, Options{SegmentBytes: 64}) // rotate almost every append
	payload := bytes.Repeat([]byte("p"), 50)
	for i := 0; i < 10; i++ {
		if _, err := j.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("only %d segments after forced rotation", len(segs))
	}
	// GC through LSN 8: every segment wholly <= 8 goes; records 9, 10
	// (and the active segment) survive.
	if _, err := j.RemoveThrough(8); err != nil {
		t.Fatal(err)
	}
	recs := replayAll(t, dir, 8)
	if len(recs) != 2 || recs[0].LSN != 9 {
		t.Fatalf("post-GC suffix = %+v", recs)
	}
	after, _ := listSegments(dir)
	if len(after) >= len(segs) {
		t.Fatalf("GC removed nothing: %d -> %d segments", len(segs), len(after))
	}
	j.Close()
}

// tearTail simulates a crash mid-append by appending garbage to the
// newest segment file.
func tearTail(t *testing.T, dir string, garbage []byte) {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments to tear (%v)", err)
	}
	path := segs[len(segs)-1].path
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	for _, tc := range []struct {
		name    string
		garbage []byte
	}{
		{"partial frame header", []byte{0x10, 0x00}},
		{"frame running past eof", append([]byte{0xff, 0x00, 0x00, 0x00, 1, 2, 3, 4}, []byte("short")...)},
		{"bad crc", append([]byte{3, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef}, []byte("abc")...)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			j, _ := Open(dir, Options{})
			for i := 0; i < 3; i++ {
				if _, err := j.Append([]byte(fmt.Sprintf("ok-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			j.Close()
			tearTail(t, dir, tc.garbage)

			j2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("torn tail must never prevent startup: %v", err)
			}
			ri := j2.Recovery()
			if !ri.TornTail || ri.TruncatedBytes != int64(len(tc.garbage)) || ri.LastLSN != 3 {
				t.Fatalf("recovery = %+v, want torn tail of %d bytes after lsn 3", ri, len(tc.garbage))
			}
			// The journal appends cleanly after the cut...
			if lsn, err := j2.Append([]byte("after")); err != nil || lsn != 4 {
				t.Fatalf("append after recovery: lsn=%d err=%v", lsn, err)
			}
			j2.Close()
			// ...and replay sees the full acknowledged history, nothing else.
			recs := replayAll(t, dir, 0)
			if len(recs) != 4 || string(recs[3].Payload) != "after" {
				t.Fatalf("replay after tear = %+v", recs)
			}
		})
	}
}

func TestAllTornSegmentRemoved(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, Options{})
	j.Append([]byte("keep"))
	j.Close()
	// A second segment that is pure tear: header cut short.
	if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000002.log"), []byte("WIT"), 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	ri := j2.Recovery()
	if !ri.TornTail || ri.Segments != 1 || ri.LastLSN != 1 {
		t.Fatalf("recovery = %+v", ri)
	}
	if lsn, _ := j2.Append([]byte("next")); lsn != 2 {
		t.Fatalf("lsn after dropping torn segment = %d, want 2", lsn)
	}
}

func TestZeroByteSegmentFromCrashedRotation(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, Options{})
	for i := 0; i < 3; i++ {
		if _, err := j.Append([]byte("acked")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	// A crash between segment create and header write leaves a zero-byte
	// file named for the next LSN.
	empty := filepath.Join(dir, fmt.Sprintf("wal-%016x.log", uint64(4)))
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ri := j2.Recovery(); !ri.TornTail || ri.LastLSN != 3 {
		t.Fatalf("recovery = %+v, want torn tail after lsn 3", ri)
	}
	if _, err := os.Stat(empty); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("headerless zero-byte segment survived recovery")
	}
	// LSNs continue, not restart from 1 — a restart would put new acked
	// records at-or-below any snapshot anchor, where replay skips them.
	if lsn, err := j2.Append([]byte("after")); err != nil || lsn != 4 {
		t.Fatalf("append after recovery: lsn=%d err=%v, want lsn 4", lsn, err)
	}
	j2.Close()
	// The repaired dir stays openable: no headerless poison pill causing
	// bad-magic failures on every later Open.
	j3, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after repair: %v", err)
	}
	j3.Close()
	if recs := replayAll(t, dir, 0); len(recs) != 4 || string(recs[3].Payload) != "after" {
		t.Fatalf("replay = %+v, want 4 records", recs)
	}
}

func TestSoleTornSegmentDoesNotRegressLSNs(t *testing.T) {
	dir := t.TempDir()
	// Only artifact on disk: a headerless torn segment whose name proves
	// the journal once reached LSN 5 (earlier segments GC'd away after a
	// snapshot anchored them). Removing it must not reset LSNs to 1.
	if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000005.log"), []byte("WIT"), 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if lsn, err := j.Append([]byte("fresh")); err != nil || lsn != 5 {
		t.Fatalf("append = lsn %d err %v, want 5 (filename floor)", lsn, err)
	}
}

func TestFloorLSNFromSnapshotAnchor(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{FloorLSN: 41})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if lsn, err := j.Append([]byte("fresh")); err != nil || lsn != 42 {
		t.Fatalf("append = lsn %d err %v, want 42 (> FloorLSN)", lsn, err)
	}
	if recs := replayAll(t, dir, 41); len(recs) != 1 || recs[0].LSN != 42 {
		t.Fatalf("replay past anchor = %+v, want the fresh record", recs)
	}
}

func TestGapAfterVanishedSegmentStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, Options{})
	j.Append([]byte("one"))
	j.Append([]byte("two"))
	j.Close()
	// A later segment whose records all tore floors LSN assignment at 7;
	// appending into the surviving segment would bury an LSN gap inside
	// it, so recovery must start a fresh segment instead.
	if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000007.log"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if lsn, _ := j2.Append([]byte("seven")); lsn != 7 {
		t.Fatalf("lsn = %d, want 7", lsn)
	}
	j2.Close()
	recs := replayAll(t, dir, 0)
	if len(recs) != 3 || recs[2].LSN != 7 || string(recs[2].Payload) != "seven" {
		t.Fatalf("replay = %+v, want records 1, 2, 7", recs)
	}
}

// TestInjectedAppendFaults drives the writer seam through every disk
// fault class: short writes, ENOSPC, and fsync failures roll back and
// leave the journal appendable; a torn record fails the journal until
// the next Open. In every case an errored Append is never replayable —
// the no-lost-ack half of the crash-safety contract.
func TestInjectedAppendFaults(t *testing.T) {
	for _, tc := range []struct {
		name  string
		plan  fault.Plan
		fatal bool // journal must declare itself Failed
	}{
		{"short write", fault.Plan{Seed: 1, ShortWrite: 1}, false},
		{"enospc", fault.Plan{Seed: 1, ENOSPC: 1}, false},
		{"sync fail", fault.Plan{Seed: 1, SyncFail: 1}, false},
		{"torn record", fault.Plan{Seed: 1, TornRecord: 1}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			j, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := j.Append([]byte("acked")); err != nil {
				t.Fatal(err)
			}
			// Arm the injector after the clean append: rate 1 fails the
			// next one deterministically.
			j.opts.Injector = fault.NewInjector(tc.plan)
			if _, err := j.Append([]byte("lost")); err == nil {
				t.Fatal("faulted append reported success")
			}
			if got := j.Failed(); got != tc.fatal {
				t.Fatalf("Failed() = %v, want %v", got, tc.fatal)
			}
			if tc.fatal {
				if _, err := j.Append([]byte("x")); !errors.Is(err, ErrFailed) {
					t.Fatalf("append on failed journal: %v, want ErrFailed", err)
				}
			} else {
				// Recovered in place: the next clean append succeeds.
				j.opts.Injector = nil
				if lsn, err := j.Append([]byte("retried")); err != nil || lsn != 2 {
					t.Fatalf("append after rollback: lsn=%d err=%v", lsn, err)
				}
			}
			j.Close()

			// Restart: only acknowledged records replay, and recovery
			// never fails.
			j2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("open after %s: %v", tc.name, err)
			}
			j2.Close()
			for _, r := range replayAll(t, dir, 0) {
				if string(r.Payload) == "lost" {
					t.Fatal("an unacknowledged (errored) append replayed")
				}
			}
			if recs := replayAll(t, dir, 0); string(recs[0].Payload) != "acked" {
				t.Fatalf("acknowledged record missing after recovery: %+v", recs)
			}
		})
	}
}

func TestUnsyncedBacklogWatermark(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, Options{NoSync: true})
	defer j.Close()
	if j.UnsyncedBytes() != 0 {
		t.Fatal("fresh journal has backlog")
	}
	j.Append(bytes.Repeat([]byte("b"), 100))
	if j.UnsyncedBytes() < 100 {
		t.Fatalf("backlog = %d after 100-byte unsynced append", j.UnsyncedBytes())
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if j.UnsyncedBytes() != 0 {
		t.Fatal("Sync did not clear the backlog watermark")
	}
}
