package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/fault"
)

// replayAll collects every record after a given LSN.
func replayAll(t *testing.T, dir string, after uint64) []Record {
	t.Helper()
	var out []Record
	if err := Replay(dir, after, func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("batch-%d", i))
		lsn, err := j.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn = %d, want %d (dense from 1)", lsn, i+1)
		}
		want = append(want, p)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	recs := replayAll(t, dir, 0)
	if len(recs) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(recs), len(want))
	}
	for i, r := range recs {
		if r.LSN != uint64(i+1) || !bytes.Equal(r.Payload, want[i]) {
			t.Fatalf("record %d = {%d %q}", i, r.LSN, r.Payload)
		}
	}
	// Suffix replay honors the after cursor (the snapshot boundary).
	if got := replayAll(t, dir, 15); len(got) != 5 || got[0].LSN != 16 {
		t.Fatalf("suffix replay = %d records from %d", len(got), got[0].LSN)
	}
}

func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, Options{})
	for i := 0; i < 5; i++ {
		if _, err := j.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if ri := j2.Recovery(); ri.LastLSN != 5 || ri.TornTail {
		t.Fatalf("recovery = %+v", ri)
	}
	lsn, err := j2.Append([]byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 6 {
		t.Fatalf("post-reopen lsn = %d, want 6", lsn)
	}
	if got := replayAll(t, dir, 0); len(got) != 6 {
		t.Fatalf("replayed %d, want 6", len(got))
	}
}

func TestRotationAndGC(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, Options{SegmentBytes: 64}) // rotate almost every append
	payload := bytes.Repeat([]byte("p"), 50)
	for i := 0; i < 10; i++ {
		if _, err := j.Append(payload); err != nil {
			t.Fatal(err)
		}
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("only %d segments after forced rotation", len(segs))
	}
	// GC through LSN 8: every segment wholly <= 8 goes; records 9, 10
	// (and the active segment) survive.
	if _, err := j.RemoveThrough(8); err != nil {
		t.Fatal(err)
	}
	recs := replayAll(t, dir, 8)
	if len(recs) != 2 || recs[0].LSN != 9 {
		t.Fatalf("post-GC suffix = %+v", recs)
	}
	after, _ := listSegments(dir)
	if len(after) >= len(segs) {
		t.Fatalf("GC removed nothing: %d -> %d segments", len(segs), len(after))
	}
	j.Close()
}

// tearTail simulates a crash mid-append by appending garbage to the
// newest segment file.
func tearTail(t *testing.T, dir string, garbage []byte) {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments to tear (%v)", err)
	}
	path := segs[len(segs)-1].path
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	for _, tc := range []struct {
		name    string
		garbage []byte
	}{
		{"partial frame header", []byte{0x10, 0x00}},
		{"frame running past eof", append([]byte{0xff, 0x00, 0x00, 0x00, 1, 2, 3, 4}, []byte("short")...)},
		{"bad crc", append([]byte{3, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef}, []byte("abc")...)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			j, _ := Open(dir, Options{})
			for i := 0; i < 3; i++ {
				if _, err := j.Append([]byte(fmt.Sprintf("ok-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			j.Close()
			tearTail(t, dir, tc.garbage)

			j2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("torn tail must never prevent startup: %v", err)
			}
			ri := j2.Recovery()
			if !ri.TornTail || ri.TruncatedBytes != int64(len(tc.garbage)) || ri.LastLSN != 3 {
				t.Fatalf("recovery = %+v, want torn tail of %d bytes after lsn 3", ri, len(tc.garbage))
			}
			// The journal appends cleanly after the cut...
			if lsn, err := j2.Append([]byte("after")); err != nil || lsn != 4 {
				t.Fatalf("append after recovery: lsn=%d err=%v", lsn, err)
			}
			j2.Close()
			// ...and replay sees the full acknowledged history, nothing else.
			recs := replayAll(t, dir, 0)
			if len(recs) != 4 || string(recs[3].Payload) != "after" {
				t.Fatalf("replay after tear = %+v", recs)
			}
		})
	}
}

func TestAllTornSegmentRemoved(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, Options{})
	j.Append([]byte("keep"))
	j.Close()
	// A second segment that is pure tear: header cut short.
	if err := os.WriteFile(filepath.Join(dir, "wal-0000000000000002.log"), []byte("WIT"), 0o644); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	ri := j2.Recovery()
	if !ri.TornTail || ri.Segments != 1 || ri.LastLSN != 1 {
		t.Fatalf("recovery = %+v", ri)
	}
	if lsn, _ := j2.Append([]byte("next")); lsn != 2 {
		t.Fatalf("lsn after dropping torn segment = %d, want 2", lsn)
	}
}

// TestInjectedAppendFaults drives the writer seam through every disk
// fault class: short writes, ENOSPC, and fsync failures roll back and
// leave the journal appendable; a torn record fails the journal until
// the next Open. In every case an errored Append is never replayable —
// the no-lost-ack half of the crash-safety contract.
func TestInjectedAppendFaults(t *testing.T) {
	for _, tc := range []struct {
		name  string
		plan  fault.Plan
		fatal bool // journal must declare itself Failed
	}{
		{"short write", fault.Plan{Seed: 1, ShortWrite: 1}, false},
		{"enospc", fault.Plan{Seed: 1, ENOSPC: 1}, false},
		{"sync fail", fault.Plan{Seed: 1, SyncFail: 1}, false},
		{"torn record", fault.Plan{Seed: 1, TornRecord: 1}, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			j, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := j.Append([]byte("acked")); err != nil {
				t.Fatal(err)
			}
			// Arm the injector after the clean append: rate 1 fails the
			// next one deterministically.
			j.opts.Injector = fault.NewInjector(tc.plan)
			if _, err := j.Append([]byte("lost")); err == nil {
				t.Fatal("faulted append reported success")
			}
			if got := j.Failed(); got != tc.fatal {
				t.Fatalf("Failed() = %v, want %v", got, tc.fatal)
			}
			if tc.fatal {
				if _, err := j.Append([]byte("x")); !errors.Is(err, ErrFailed) {
					t.Fatalf("append on failed journal: %v, want ErrFailed", err)
				}
			} else {
				// Recovered in place: the next clean append succeeds.
				j.opts.Injector = nil
				if lsn, err := j.Append([]byte("retried")); err != nil || lsn != 2 {
					t.Fatalf("append after rollback: lsn=%d err=%v", lsn, err)
				}
			}
			j.Close()

			// Restart: only acknowledged records replay, and recovery
			// never fails.
			j2, err := Open(dir, Options{})
			if err != nil {
				t.Fatalf("open after %s: %v", tc.name, err)
			}
			j2.Close()
			for _, r := range replayAll(t, dir, 0) {
				if string(r.Payload) == "lost" {
					t.Fatal("an unacknowledged (errored) append replayed")
				}
			}
			if recs := replayAll(t, dir, 0); string(recs[0].Payload) != "acked" {
				t.Fatalf("acknowledged record missing after recovery: %+v", recs)
			}
		})
	}
}

func TestUnsyncedBacklogWatermark(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, Options{NoSync: true})
	defer j.Close()
	if j.UnsyncedBytes() != 0 {
		t.Fatal("fresh journal has backlog")
	}
	j.Append(bytes.Repeat([]byte("b"), 100))
	if j.UnsyncedBytes() < 100 {
		t.Fatalf("backlog = %d after 100-byte unsynced append", j.UnsyncedBytes())
	}
	if err := j.Sync(); err != nil {
		t.Fatal(err)
	}
	if j.UnsyncedBytes() != 0 {
		t.Fatal("Sync did not clear the backlog watermark")
	}
}
