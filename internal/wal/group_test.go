package wal

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
)

// TestGroupCommitConcurrentAppends: many goroutines appending through
// the group committer must each get a distinct LSN, the LSN space must
// stay dense, and every acked payload must replay under exactly the LSN
// its Append returned — the same contract the per-append path gives.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	for _, delay := range []time.Duration{0, 200 * time.Microsecond} {
		t.Run(fmt.Sprintf("delay=%v", delay), func(t *testing.T) {
			dir := t.TempDir()
			j, err := Open(dir, Options{GroupCommit: true, MaxCommitDelay: delay, SegmentBytes: 4 << 10})
			if err != nil {
				t.Fatal(err)
			}
			const workers, per = 8, 50
			var mu sync.Mutex
			acked := make(map[uint64]string, workers*per)
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < per; i++ {
						payload := fmt.Sprintf("w%d-i%d", w, i)
						lsn, err := j.Append([]byte(payload))
						if err != nil {
							t.Errorf("append %s: %v", payload, err)
							return
						}
						mu.Lock()
						if prev, dup := acked[lsn]; dup {
							t.Errorf("lsn %d acked twice: %q and %q", lsn, prev, payload)
						}
						acked[lsn] = payload
						mu.Unlock()
					}
				}(w)
			}
			wg.Wait()
			if len(acked) != workers*per {
				t.Fatalf("acked %d LSNs, want %d", len(acked), workers*per)
			}
			for lsn := uint64(1); lsn <= workers*per; lsn++ {
				if _, ok := acked[lsn]; !ok {
					t.Fatalf("LSN space not dense: %d missing", lsn)
				}
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			if _, err := j.Append([]byte("late")); !errors.Is(err, ErrFailed) {
				t.Fatalf("append after Close: got %v, want ErrFailed", err)
			}
			replayed := 0
			err = Replay(dir, 0, func(r Record) error {
				replayed++
				if want := acked[r.LSN]; string(r.Payload) != want {
					return fmt.Errorf("lsn %d replayed %q, acked %q", r.LSN, r.Payload, want)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if replayed != workers*per {
				t.Fatalf("replayed %d records, want %d", replayed, workers*per)
			}
		})
	}
}

// TestGroupCommitFaultedBatch: with a disk fault injected under the
// gang, every waiter of the failed commit must get the error, none may
// be falsely acked, no LSN may be consumed, and the journal must stay
// replayable — recoverable in place for rollback-able faults, after an
// Open for a torn write.
func TestGroupCommitFaultedBatch(t *testing.T) {
	cases := []struct {
		name  string
		plan  fault.Plan
		fatal bool // torn tail: journal fails, recovery happens at Open
	}{
		{"sync fail", fault.Plan{Seed: 7, SyncFail: 1}, false},
		{"short write", fault.Plan{Seed: 7, ShortWrite: 1}, false},
		{"enospc", fault.Plan{Seed: 7, ENOSPC: 1}, false},
		{"torn record", fault.Plan{Seed: 7, TornRecord: 1}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			// A generous linger so the concurrent appends below gang up
			// into few (ideally one) batches.
			j, err := Open(dir, Options{GroupCommit: true, MaxCommitDelay: 20 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			// Rate 1 fires at every opportunity, so every gang fails no
			// matter how the appends happened to batch.
			j.opts.Injector = fault.NewInjector(tc.plan)
			const n = 16
			errs := make([]error, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					lsn, err := j.Append([]byte(fmt.Sprintf("doomed-%d", i)))
					if err == nil {
						t.Errorf("append %d falsely acked with lsn %d", i, lsn)
					}
					errs[i] = err
				}(i)
			}
			wg.Wait()
			for i, err := range errs {
				if err == nil {
					t.Fatalf("waiter %d has no error", i)
				}
				if tc.fatal && !errors.Is(err, ErrFailed) {
					t.Fatalf("waiter %d: torn batch returned %v, want ErrFailed", i, err)
				}
				if !tc.fatal && errors.Is(err, ErrFailed) {
					t.Fatalf("waiter %d: recoverable fault escalated to ErrFailed: %v", i, err)
				}
			}
			if j.Failed() != tc.fatal {
				t.Fatalf("Failed() = %v, want %v", j.Failed(), tc.fatal)
			}

			if tc.fatal {
				// Torn: reopen recovers; nothing from the doomed gang may
				// survive, and the first post-recovery LSN is 1.
				j.Close()
				j2, err := Open(dir, Options{GroupCommit: true})
				if err != nil {
					t.Fatal(err)
				}
				j = j2
			} else {
				// Rollback-able: the journal keeps serving once the disk
				// heals. Clearing the injector is race-free — the last
				// append's done-channel receive happens-before this write,
				// which happens-before the next enqueue.
				j.opts.Injector = nil
			}
			lsn, err := j.Append([]byte("alive"))
			if err != nil {
				t.Fatalf("append after failed gang: %v", err)
			}
			if lsn != 1 {
				t.Fatalf("first successful LSN = %d, want 1 (a rolled-back gang must not consume LSNs)", lsn)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			var got []string
			if err := Replay(dir, 0, func(r Record) error {
				got = append(got, fmt.Sprintf("%d:%s", r.LSN, r.Payload))
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != 1 || got[0] != "1:alive" {
				t.Fatalf("replay = %v, want exactly [1:alive]", got)
			}
		})
	}
}

// TestGroupCommitRotation: gangs must respect segment rotation so GC and
// recovery see the same multi-segment layout the per-append path builds.
func TestGroupCommitRotation(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, Options{GroupCommit: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	const n = 64
	payload := []byte("0123456789abcdef0123456789abcdef")
	// Sequential appends keep every gang at size 1, making the rotation
	// points deterministic (concurrent gangs are covered above — rotation
	// only ever happens between gangs, never inside one).
	for i := 0; i < n; i++ {
		if _, err := j.Append(payload); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := j2.Recovery(); got.LastLSN != n || got.TornTail {
		t.Fatalf("recovery after rotated group commits = %+v, want LastLSN=%d and no tear", got, n)
	}
	if j2.Recovery().Segments < 2 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", j2.Recovery().Segments)
	}
}
