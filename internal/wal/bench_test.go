package wal

import (
	"testing"
	"time"
)

// benchPayload approximates one journaled ingest batch envelope
// (timestamp header + a small pushed profile).
var benchPayload = make([]byte, 2048)

func init() {
	for i := range benchPayload {
		benchPayload[i] = byte(i)
	}
}

// BenchmarkAppendSync is the per-append-fsync baseline: one write + one
// fsync per record, serialized under the journal lock.
func BenchmarkAppendSync(b *testing.B) {
	j, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.SetBytes(int64(len(benchPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.Append(benchPayload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendGroup measures the group committer under parallel
// load — the shape witchd's ingest handlers produce. Throughput here
// versus BenchmarkAppendSync is the fsync amortization win. Zero
// MaxCommitDelay is the self-tuning sweet spot: the previous gang's
// fsync is the batching window.
func BenchmarkAppendGroup(b *testing.B) {
	j, err := Open(b.TempDir(), Options{GroupCommit: true})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.SetBytes(int64(len(benchPayload)))
	b.SetParallelism(8) // 8 × GOMAXPROCS concurrent appenders
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := j.Append(benchPayload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAppendGroupLinger turns on a half-millisecond linger so the
// committer's yield-based gather — not just the previous gang's fsync
// back-pressure — forms the gangs. This is the operating point a
// nonzero -commit-delay configures.
func BenchmarkAppendGroupLinger(b *testing.B) {
	j, err := Open(b.TempDir(), Options{GroupCommit: true, MaxCommitDelay: 500 * time.Microsecond})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.SetBytes(int64(len(benchPayload)))
	b.SetParallelism(8)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := j.Append(benchPayload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAppendNoSync isolates the non-fsync cost of the append path
// (framing, CRC, write syscall, bookkeeping).
func BenchmarkAppendNoSync(b *testing.B) {
	j, err := Open(b.TempDir(), Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer j.Close()
	b.SetBytes(int64(len(benchPayload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := j.Append(benchPayload); err != nil {
			b.Fatal(err)
		}
	}
}
