// Package wal is the write-ahead journal behind witchd's durability:
// every acknowledged ingest batch is appended — length-prefixed and
// CRC-framed — before the 200 goes back to the pusher, so a crash,
// OOM-kill, or deploy restart can lose only batches that were never
// acknowledged. The paper's hpcrun analogue writes measurement files
// once per run (§6.5); a continuous daemon instead needs an append-only
// log it can replay.
//
// On-disk layout: a data directory holds segment files named
// wal-%016x.log, where the hex field is the LSN of the segment's first
// record. Each segment starts with a fixed header (magic, version,
// first LSN) and then a sequence of frames:
//
//	[u32 payload length][u32 CRC-32C of payload][payload bytes]
//
// LSNs are assigned densely from 1, so snapshot metadata can name the
// exact boundary it covers and recovery replays only the suffix.
//
// Crash anatomy: a frame interrupted mid-write (torn record) fails its
// CRC or length check on the next Open, which truncates the file back
// to the last complete frame and reports what it cut — a torn tail is
// recovered from, never fatal. Append failures at runtime (short write,
// ENOSPC, fsync error) roll the partial frame back so the journal stays
// consistent and the caller refuses the ack; if even the rollback fails
// the journal declares itself Failed and every later append errors
// fast, which witchd turns into 503 shedding until restart.
//
// Fault injection rides the writer seam: Options.Injector maps
// fault.ShortWrite / SyncFail / TornRecord / ENOSPC onto the
// corresponding syscall-level failures, so the kill-restart chaos tests
// exercise exactly the error paths a real disk produces.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/fault"
)

const (
	magic         = "WITCHWAL"
	version       = 1
	headerSize    = len(magic) + 4 + 8 // magic + u32 version + u64 first LSN
	frameOverhead = 8                  // u32 length + u32 crc
)

// castagnoli is the CRC-32C table (the polynomial storage systems use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrFailed reports a journal that hit an unrecoverable append error
// (e.g. a rollback of a partial frame itself failed, or a torn-record
// fault left the tail in an unknown state). The journal refuses all
// further appends; recovery happens at the next Open.
var ErrFailed = errors.New("wal: journal failed, restart required")

// Options configures a journal.
type Options struct {
	// SegmentBytes rotates to a new segment file once the current one
	// exceeds this size (default 8 MiB). Rotation bounds the disk a
	// snapshot-anchored GC pass can reclaim at once.
	SegmentBytes int64
	// NoSync skips fsync after each append. Faster, but an acknowledged
	// batch may be lost to a machine (not process) crash — witchd maps
	// its -fsync flag here.
	NoSync bool
	// Injector injects disk faults at the writer seam; nil injects
	// nothing.
	Injector *fault.Injector
	// FloorLSN is a lower bound on LSN assignment: newly appended
	// records get LSNs strictly greater than FloorLSN even if every
	// segment file is missing or torn. witchd passes its newest snapshot
	// anchor here, so a gutted journal directory can never re-issue LSNs
	// a snapshot already covers (replay would silently skip them — an
	// acknowledged-data loss).
	FloorLSN uint64
	// GroupCommit batches concurrent Appends: callers enqueue framed
	// records to a committer goroutine that lands a whole gang with one
	// write and one fsync, acking every waiter at once. Durability
	// semantics are unchanged — no Append returns success before its
	// record is synced per policy — only the fsyncs are amortized.
	// witchd maps -fsync group here.
	GroupCommit bool
	// MaxCommitDelay bounds how long the committer waits to grow a gang
	// after the first record of a batch arrives. Zero commits immediately
	// with whatever has queued by then (concurrency alone forms the
	// gangs); a small positive value trades that much ack latency for
	// bigger gangs. Ignored without GroupCommit.
	MaxCommitDelay time.Duration
	// SyncDelay models a disk whose commit costs a fixed latency: every
	// successful fsync additionally holds the journal for this long.
	// Zero (production) adds nothing. Benchmarks use it to pin the
	// storage variable so a scaling experiment measures the layer under
	// test — e.g. the cluster's N-journal parallelism — rather than
	// whatever disk the host happens to have.
	SyncDelay time.Duration
	// ObserveCommit, when non-nil, receives the durability wait of each
	// successful Append: frame write + fsync per policy, including the
	// whole group-commit gang wait. A timing witness only — it runs
	// after the record is durable and must not block (witchd points it
	// at a wait-free latency histogram).
	ObserveCommit func(wait time.Duration)
}

// RecoveryInfo reports what Open found and repaired.
type RecoveryInfo struct {
	// LastLSN is the highest LSN of a complete, CRC-valid record (0 if
	// the journal is empty).
	LastLSN uint64
	// TruncatedBytes counts torn-tail bytes cut from the final segment;
	// TornTail is true when any were found.
	TruncatedBytes int64
	TornTail       bool
	// Segments is how many segment files survived recovery.
	Segments int
}

// Record is one replayed journal entry.
type Record struct {
	LSN     uint64
	Payload []byte
}

// segment describes one on-disk segment file.
type segment struct {
	path     string
	firstLSN uint64
	// lastLSN is the highest complete record in the segment, or
	// firstLSN-1 for a segment holding no complete records.
	lastLSN uint64
	size    int64
}

// Journal is a single-writer append log. Append is safe for concurrent
// use; Open/Close are not.
type Journal struct {
	dir  string
	opts Options

	mu      sync.Mutex
	f       *os.File
	seg     segment
	nextLSN uint64
	failed  bool
	appends uint64
	commits uint64
	// unsynced counts bytes appended since the last fsync — the backlog
	// watermark witchd sheds on when running with NoSync.
	unsynced int64

	recovery RecoveryInfo
	segments []segment // completed (rotated-out) segments, oldest first

	// Group-commit machinery, live only when opts.GroupCommit is set.
	// commitCh carries waiters to the committer goroutine; closeMu/closing
	// fence Append's channel send against Close's channel close; cbuf is
	// the gang concatenation buffer, touched only under mu.
	commitCh    chan *waiter
	closeMu     sync.RWMutex
	closing     bool
	committerWG sync.WaitGroup
	cbuf        []byte
}

// waiter carries one framed record from an Append caller to the group
// committer and the resulting LSN (or error) back. The done channel has
// capacity 1 so the committer never blocks on a slow waiter.
type waiter struct {
	frame []byte
	lsn   uint64
	err   error
	done  chan struct{}
}

// waiterPool recycles waiters (and their frame buffers) so a steady
// ingest load allocates nothing per append.
var waiterPool = sync.Pool{New: func() any { return &waiter{done: make(chan struct{}, 1)} }}

// Open scans dir, truncates any torn tail back to the last complete
// record, and returns a journal positioned to append after it. The dir
// is created if missing. Records already on disk are not read here —
// use Replay.
func Open(dir string, opts Options) (*Journal, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = 8 << 20
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	j := &Journal{dir: dir, opts: opts}
	// nextLSN must never regress below any LSN this directory may ever
	// have assigned, or fresh appends would land at-or-below an existing
	// snapshot anchor and be silently skipped by the next Replay. Every
	// segment filename is a floor — even for a file whose records all
	// tore, or that the post-tear sweep below removes — as is the
	// caller-declared FloorLSN.
	next := opts.FloorLSN + 1
	if next < 1 {
		next = 1
	}
	for i := range segs {
		if segs[i].firstLSN > next {
			next = segs[i].firstLSN
		}
	}
	var kept []segment
	for i := range segs {
		// Only the final segment may legitimately have a torn tail; an
		// earlier one implies a failed journal was restarted mid-history,
		// and everything after the tear was never acknowledged — scan
		// stops there and later segments are dropped.
		info, err := scanSegment(&segs[i])
		if err != nil {
			return nil, err
		}
		j.recovery.TruncatedBytes += info.truncated
		if info.torn {
			j.recovery.TornTail = true
			if err := truncateSegment(&segs[i], info.validSize); err != nil {
				return nil, err
			}
		}
		if segs[i].lastLSN+1 > next {
			next = segs[i].lastLSN + 1
		}
		// A segment holding at least one complete record (or an intact
		// header with a clean, record-free tail) survives; a torn one
		// with no complete records — including zero-byte and headerless
		// files from a crash mid-rotation — has been removed from disk
		// by truncateSegment.
		if segs[i].lastLSN >= segs[i].firstLSN || !info.torn {
			kept = append(kept, segs[i])
		}
		if info.torn && i < len(segs)-1 {
			for _, dead := range segs[i+1:] {
				if err := os.Remove(dead.path); err != nil {
					return nil, fmt.Errorf("wal: dropping post-tear segment: %w", err)
				}
			}
			break
		}
	}
	j.recovery.Segments = len(kept)
	j.nextLSN = next
	if n := len(kept); n > 0 {
		last := kept[n-1]
		j.recovery.LastLSN = last.lastLSN
		if next == last.lastLSN+1 {
			j.segments = kept[:n-1]
			f, err := os.OpenFile(last.path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				return nil, fmt.Errorf("wal: reopening %s: %w", last.path, err)
			}
			j.f = f
			j.seg = last
			return j.start(), nil
		}
		// next ran past the last surviving record (a later segment
		// vanished whole, or a snapshot anchor outruns the files on
		// disk): appending into the last segment would bury an LSN gap
		// inside it, which replay's dense per-segment numbering cannot
		// represent — keep it read-only and start a fresh segment.
		j.segments = kept
	}
	if err := j.openSegment(); err != nil {
		return nil, err
	}
	return j.start(), nil
}

// start launches the group committer when configured; called once, at
// the end of a successful Open.
func (j *Journal) start() *Journal {
	if j.opts.GroupCommit {
		j.commitCh = make(chan *waiter, 256)
		j.committerWG.Add(1)
		go j.committer()
	}
	return j
}

// Recovery reports what Open found and repaired.
func (j *Journal) Recovery() RecoveryInfo { return j.recovery }

// LastLSN returns the LSN of the most recently appended (or recovered)
// record, 0 when empty.
func (j *Journal) LastLSN() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextLSN - 1
}

// Commits reports physical write(+fsync) operations: one per append in
// per-append mode, one per gang under group commit — so appends divided
// by commits is the achieved mean gang size.
func (j *Journal) Commits() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.commits
}

// UnsyncedBytes reports bytes appended since the last fsync — zero when
// syncing every append.
func (j *Journal) UnsyncedBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.unsynced
}

// Failed reports whether the journal has declared itself unusable.
func (j *Journal) Failed() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.failed
}

// openSegment starts a fresh segment whose first record will be nextLSN.
// Caller holds j.mu (or is Open, single-threaded).
func (j *Journal) openSegment() error {
	path := filepath.Join(j.dir, fmt.Sprintf("wal-%016x.log", j.nextLSN))
	// O_APPEND matters beyond idiom: after a failed append is rolled back
	// with Truncate, a plain descriptor's offset would still point past
	// the new EOF and the next write would leave a zero-filled hole —
	// which a scanner would misread as a run of empty frames (a zero
	// payload has CRC 0). Appending always lands at the true EOF.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("wal: creating segment: %w", err)
	}
	hdr := make([]byte, headerSize)
	copy(hdr, magic)
	binary.LittleEndian.PutUint32(hdr[len(magic):], version)
	binary.LittleEndian.PutUint64(hdr[len(magic)+4:], j.nextLSN)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		os.Remove(path)
		return fmt.Errorf("wal: writing segment header: %w", err)
	}
	if !j.opts.NoSync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(path)
			return fmt.Errorf("wal: syncing segment header: %w", err)
		}
		// The file's contents being durable is not enough — its directory
		// entry must be too, or a machine crash can forget the segment
		// exists while later state (a snapshot rename, GC removals)
		// survives.
		if err := SyncDir(j.dir); err != nil {
			f.Close()
			os.Remove(path)
			return fmt.Errorf("wal: syncing dir after segment create: %w", err)
		}
	}
	j.f = f
	j.seg = segment{path: path, firstLSN: j.nextLSN, lastLSN: j.nextLSN - 1, size: int64(headerSize)}
	return nil
}

// Append writes one record, fsyncs per policy, and returns its LSN.
// On error nothing was durably appended — the partial frame has been
// rolled back — and the caller must not acknowledge the payload. An
// ErrFailed (possibly wrapped) means the journal is out of service
// until restart.
func (j *Journal) Append(payload []byte) (uint64, error) {
	if len(payload) == 0 {
		// An empty frame is indistinguishable from a zero-filled hole on
		// recovery, so it is not representable.
		return 0, errors.New("wal: empty payload")
	}
	var t0 time.Time
	if j.opts.ObserveCommit != nil {
		t0 = time.Now()
	}
	if j.opts.GroupCommit {
		lsn, err := j.appendGrouped(payload)
		if err == nil && j.opts.ObserveCommit != nil {
			j.opts.ObserveCommit(time.Since(t0))
		}
		return lsn, err
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed {
		return 0, ErrFailed
	}
	if j.seg.size >= j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			return 0, err
		}
	}
	frame := appendFrame(make([]byte, 0, frameOverhead+len(payload)), payload)

	preSize := j.seg.size
	n, werr := j.seamWrite(frame)
	if werr == nil && !j.opts.NoSync {
		werr = j.seamSync()
	}
	if werr != nil {
		// Roll the partial frame back so the tail stays a complete
		// record; if that fails too the tail is unknowable — declare the
		// journal failed and let the next Open truncate the tear.
		if errors.Is(werr, errTorn) {
			j.fail()
			return 0, fmt.Errorf("wal: append tore mid-write: %w", ErrFailed)
		}
		if terr := j.f.Truncate(preSize); terr != nil {
			j.fail()
			return 0, fmt.Errorf("wal: append failed (%v) and rollback failed (%v): %w", werr, terr, ErrFailed)
		}
		return 0, fmt.Errorf("wal: append: %w", werr)
	}
	j.seg.size = preSize + int64(n)
	lsn := j.nextLSN
	j.nextLSN++
	j.seg.lastLSN = lsn
	j.appends++
	j.commits++
	if j.opts.NoSync {
		j.unsynced += int64(n)
	}
	if j.opts.ObserveCommit != nil {
		j.opts.ObserveCommit(time.Since(t0))
	}
	return lsn, nil
}

// appendFrame appends one framed record ([len][crc][payload]) to dst.
func appendFrame(dst, payload []byte) []byte {
	var hdr [frameOverhead]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// appendGrouped frames the payload in the caller's goroutine (CRC and
// copy are the parallelizable work), hands it to the committer, and
// blocks until the gang containing it commits or rolls back.
func (j *Journal) appendGrouped(payload []byte) (uint64, error) {
	w := waiterPool.Get().(*waiter)
	w.lsn, w.err = 0, nil
	w.frame = appendFrame(w.frame[:0], payload)
	// The read-lock fences the send against Close: Close flips closing
	// and closes commitCh under the write lock, so a send that got past
	// this check is guaranteed to land before the close.
	j.closeMu.RLock()
	if j.closing {
		j.closeMu.RUnlock()
		waiterPool.Put(w)
		return 0, ErrFailed
	}
	j.commitCh <- w
	j.closeMu.RUnlock()
	<-w.done
	lsn, err := w.lsn, w.err
	waiterPool.Put(w)
	return lsn, err
}

// committer is the group-commit loop: take the first waiter of a gang,
// optionally linger up to MaxCommitDelay to let the gang grow, sweep
// whatever else has queued, and commit the lot with one write+fsync.
//
// The linger deliberately does not park on a timer. Waking from a timer
// costs milliseconds on virtualized hosts regardless of the duration
// asked for, which would put a multi-ms floor under every ack and make
// sub-millisecond lingers (the useful range: a gang fills in
// concurrency × per-append CPU) silently 10x longer than configured.
// Instead the committer yields the processor between non-blocking
// sweeps: each runtime.Gosched lets every runnable producer reach its
// Append, and two consecutive sweeps finding nothing new means the
// producers are all either blocked in this gang or idle — so the gang
// is as big as it is going to get and waiting longer only adds
// latency. An idle journal therefore still acks in microseconds while
// a saturated one fills gangs to the offered concurrency.
func (j *Journal) committer() {
	defer j.committerWG.Done()
	var batch []*waiter
	for w := range j.commitCh {
		batch = append(batch[:0], w)
		if d := j.opts.MaxCommitDelay; d > 0 {
			deadline := time.Now().Add(d)
			for empty := 0; empty < 2 && time.Now().Before(deadline); {
				grew := false
			gather:
				for {
					select {
					case w2, ok := <-j.commitCh:
						if !ok {
							break gather
						}
						batch = append(batch, w2)
						grew = true
					default:
						break gather
					}
				}
				if grew {
					empty = 0
				} else {
					empty++
				}
				runtime.Gosched()
			}
		}
	sweep:
		for {
			select {
			case w2, ok := <-j.commitCh:
				if !ok {
					break sweep
				}
				batch = append(batch, w2)
			default:
				break sweep
			}
		}
		j.commitBatch(batch)
	}
}

// commitBatch lands a gang of pre-framed records with a single write and
// a single fsync, then acks every waiter — or nacks every waiter.
// LSNs are positional within a segment (recovery re-derives them from
// frame order), so they are assigned only after the gang is durable: a
// rolled-back gang consumes no LSNs.
func (j *Journal) commitBatch(batch []*waiter) {
	j.mu.Lock()
	if j.failed {
		j.mu.Unlock()
		finish(batch, 0, ErrFailed)
		return
	}
	if j.seg.size >= j.opts.SegmentBytes {
		if err := j.rotateLocked(); err != nil {
			j.mu.Unlock()
			finish(batch, 0, err)
			return
		}
	}
	buf := j.cbuf[:0]
	for _, w := range batch {
		buf = append(buf, w.frame...)
	}
	j.cbuf = buf

	preSize := j.seg.size
	n, werr := j.seamWrite(buf)
	if werr == nil && !j.opts.NoSync {
		werr = j.seamSync()
	}
	if werr != nil {
		// A gang rollback must also remove any complete frames that
		// landed ahead of the failure point: none of them was
		// acknowledged, and leaving them durable would make recovery
		// replay batches whose pushers are about to retry them. This is
		// why — unlike the per-append path — truncation is attempted even
		// for a torn write.
		terr := j.f.Truncate(preSize)
		switch {
		case errors.Is(werr, errTorn):
			j.fail()
			j.mu.Unlock()
			finish(batch, 0, fmt.Errorf("wal: append tore mid-write: %w", ErrFailed))
		case terr != nil:
			j.fail()
			j.mu.Unlock()
			finish(batch, 0, fmt.Errorf("wal: append failed (%v) and rollback failed (%v): %w", werr, terr, ErrFailed))
		default:
			j.mu.Unlock()
			finish(batch, 0, fmt.Errorf("wal: append: %w", werr))
		}
		return
	}
	j.seg.size = preSize + int64(n)
	first := j.nextLSN
	j.nextLSN += uint64(len(batch))
	j.seg.lastLSN = j.nextLSN - 1
	j.appends += uint64(len(batch))
	j.commits++
	if j.opts.NoSync {
		j.unsynced += int64(n)
	}
	j.mu.Unlock()
	finish(batch, first, nil)
}

// finish acks (dense LSNs from first) or nacks (shared err) every
// waiter of a gang.
func finish(batch []*waiter, first uint64, err error) {
	for i, w := range batch {
		if err != nil {
			w.err = err
		} else {
			w.lsn = first + uint64(i)
		}
		w.done <- struct{}{}
	}
}

// errTorn marks a fault-injected crash-mid-write; see fault.TornRecord.
var errTorn = errors.New("wal: torn write")

// seamWrite is the fault-injectable write path. It returns the byte
// count actually landed in the file so rollback can account for it.
func (j *Journal) seamWrite(frame []byte) (int, error) {
	in := j.opts.Injector
	switch {
	case in.Should(fault.ENOSPC):
		return 0, fmt.Errorf("write %s: %w", j.seg.path, errNoSpace)
	case in.Should(fault.TornRecord):
		// Crash mid-write: half the frame lands, then the "process" dies
		// as far as this journal is concerned.
		n, _ := j.f.Write(frame[:len(frame)/2])
		return n, errTorn
	case in.Should(fault.ShortWrite):
		n, _ := j.f.Write(frame[:len(frame)/2])
		return n, fmt.Errorf("short write (%d of %d bytes): %w", n, len(frame), errNoSpace)
	}
	return j.f.Write(frame)
}

// errNoSpace is the injected analogue of ENOSPC.
var errNoSpace = errors.New("no space left on device")

// seamSync is the fault-injectable fsync path. Both commit flavours
// (per-append and group) sync through here, so the SyncDelay disk
// model is applied exactly once per physical sync, while the journal
// lock is held — a slower modeled disk serializes commits just like a
// slower real one.
func (j *Journal) seamSync() error {
	if j.opts.Injector.Should(fault.SyncFail) {
		return fmt.Errorf("fsync %s: input/output error", j.seg.path)
	}
	if err := j.f.Sync(); err != nil {
		return err
	}
	if j.opts.SyncDelay > 0 {
		time.Sleep(j.opts.SyncDelay)
	}
	return nil
}

// fail marks the journal out of service. Caller holds j.mu.
func (j *Journal) fail() {
	j.failed = true
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// rotateLocked closes the current segment and starts the next.
func (j *Journal) rotateLocked() error {
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing before rotation: %w", err)
	}
	if err := j.f.Close(); err != nil {
		return fmt.Errorf("wal: closing segment: %w", err)
	}
	j.unsynced = 0
	j.segments = append(j.segments, j.seg)
	return j.openSegment()
}

// Sync flushes the current segment to disk (a no-op error-wise when the
// journal already syncs every append).
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed {
		return ErrFailed
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	j.unsynced = 0
	return nil
}

// Close syncs and closes the journal. With GroupCommit it first stops
// new enqueues, drains the committer (every already-enqueued Append is
// still committed and acked), and joins the goroutine.
func (j *Journal) Close() error {
	if j.opts.GroupCommit {
		j.closeMu.Lock()
		already := j.closing
		j.closing = true
		if !already {
			close(j.commitCh)
		}
		j.closeMu.Unlock()
		j.committerWG.Wait()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed || j.f == nil {
		return nil
	}
	serr := j.f.Sync()
	cerr := j.f.Close()
	j.f = nil
	j.failed = true // no appends after Close
	if serr != nil {
		return serr
	}
	return cerr
}

// SizeBytes reports the journal's total on-disk footprint: every
// rotated-out segment plus the active one. The pusher spool polls it to
// enforce its disk budget.
func (j *Journal) SizeBytes() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	total := j.seg.size
	for _, s := range j.segments {
		total += s.size
	}
	return total
}

// Rotate forces the active segment closed and starts a fresh one, so
// its records become evictable by EvictOldest. A segment holding no
// records is not rotated (nothing would become evictable).
func (j *Journal) Rotate() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.failed {
		return ErrFailed
	}
	if j.seg.lastLSN < j.seg.firstLSN {
		return nil
	}
	return j.rotateLocked()
}

// EvictOldest removes the oldest rotated-out segment regardless of any
// snapshot anchor — the spool's bounded-disk eviction, where the caller
// (not a snapshot) decides the budget and must count the records in
// [first, last] as dropped. ok is false when only the active segment
// remains; rotate first to free it.
func (j *Journal) EvictOldest() (first, last uint64, ok bool, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.segments) == 0 {
		return 0, 0, false, nil
	}
	s := j.segments[0]
	if err := os.Remove(s.path); err != nil {
		return 0, 0, false, fmt.Errorf("wal: evict: %w", err)
	}
	j.segments = j.segments[1:]
	return s.firstLSN, s.lastLSN, true, nil
}

// Abandon closes the journal without syncing or draining — the
// kill -9 twin of Close, used by crash tests and Pusher.Abort to model
// a process death: whatever the page cache held is all a restart gets.
func (j *Journal) Abandon() {
	if j.opts.GroupCommit {
		j.closeMu.Lock()
		already := j.closing
		j.closing = true
		if !already {
			close(j.commitCh)
		}
		j.closeMu.Unlock()
		j.committerWG.Wait()
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
	j.failed = true
}

// RemoveThrough deletes segments every record of which has LSN <= lsn —
// the snapshot-anchored GC: once a snapshot covers lsn, the prefix it
// covers is dead weight. The active segment is never removed.
func (j *Journal) RemoveThrough(lsn uint64) (removed int, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	keep := j.segments[:0]
	for _, s := range j.segments {
		if s.lastLSN <= lsn {
			if rerr := os.Remove(s.path); rerr != nil && err == nil {
				err = fmt.Errorf("wal: gc: %w", rerr)
				keep = append(keep, s)
				continue
			}
			removed++
			continue
		}
		keep = append(keep, s)
	}
	j.segments = keep
	return removed, err
}

// Replay streams every complete record with LSN > after, in order, to
// fn. It reads the segment files directly and may run on an open
// journal as long as no Append lands concurrently (witchd replays
// before serving). A replay error from fn aborts and is returned.
func Replay(dir string, after uint64, fn func(Record) error) error {
	segs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for i := range segs {
		s := &segs[i]
		info, err := scanSegment(s)
		if err != nil {
			return err
		}
		if s.lastLSN < s.firstLSN || s.lastLSN <= after {
			if info.torn {
				return nil // nothing acknowledged lives past a tear
			}
			continue
		}
		if err := replaySegment(s, after, fn); err != nil {
			return err
		}
		if info.torn {
			return nil
		}
	}
	return nil
}

// replaySegment feeds fn the complete records of one scanned segment.
func replaySegment(s *segment, after uint64, fn func(Record) error) error {
	f, err := os.Open(s.path)
	if err != nil {
		return fmt.Errorf("wal: replay open: %w", err)
	}
	defer f.Close()
	if _, err := io.CopyN(io.Discard, f, int64(headerSize)); err != nil {
		return fmt.Errorf("wal: replay header: %w", err)
	}
	var hdr [frameOverhead]byte
	for lsn := s.firstLSN; lsn <= s.lastLSN; lsn++ {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return fmt.Errorf("wal: replay frame at lsn %d: %w", lsn, err)
		}
		length := binary.LittleEndian.Uint32(hdr[:4])
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			return fmt.Errorf("wal: replay payload at lsn %d: %w", lsn, err)
		}
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:]) {
			return fmt.Errorf("wal: replay crc mismatch at lsn %d", lsn)
		}
		if lsn <= after {
			continue
		}
		if err := fn(Record{LSN: lsn, Payload: payload}); err != nil {
			return err
		}
	}
	return nil
}

// scanInfo is what scanSegment learns about a file.
type scanInfo struct {
	validSize int64 // offset of the first byte past the last complete record
	truncated int64 // bytes past validSize
	torn      bool
}

// scanSegment validates a segment file, filling in lastLSN and size and
// reporting any torn tail (which the caller decides to truncate).
func scanSegment(s *segment) (scanInfo, error) {
	f, err := os.Open(s.path)
	if err != nil {
		return scanInfo{}, fmt.Errorf("wal: opening %s: %w", s.path, err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return scanInfo{}, err
	}
	hdr := make([]byte, headerSize)
	if _, err := io.ReadFull(f, hdr); err != nil {
		// A segment too short for its own header — including a zero-byte
		// file from a crash between create and header write — is all
		// tear: no complete records, remove-on-recovery.
		s.lastLSN = s.firstLSN - 1
		return scanInfo{validSize: 0, truncated: st.Size(), torn: true}, nil
	}
	if string(hdr[:len(magic)]) != magic {
		return scanInfo{}, fmt.Errorf("wal: %s: bad magic", s.path)
	}
	if v := binary.LittleEndian.Uint32(hdr[len(magic):]); v != version {
		return scanInfo{}, fmt.Errorf("wal: %s: unsupported version %d", s.path, v)
	}
	if got := binary.LittleEndian.Uint64(hdr[len(magic)+4:]); got != s.firstLSN {
		return scanInfo{}, fmt.Errorf("wal: %s: header LSN %d does not match filename", s.path, got)
	}
	info := scanInfo{validSize: int64(headerSize)}
	s.lastLSN = s.firstLSN - 1
	var fh [frameOverhead]byte
	for {
		if _, err := io.ReadFull(f, fh[:]); err != nil {
			if errors.Is(err, io.EOF) {
				break // clean end
			}
			info.torn = true // partial frame header
			break
		}
		length := int64(binary.LittleEndian.Uint32(fh[:4]))
		want := binary.LittleEndian.Uint32(fh[4:])
		if length == 0 {
			// Append refuses empty payloads, so a zero length (with its
			// vacuously valid CRC of nothing) can only be filesystem damage
			// — typically a zero-filled hole. Treat it as a tear.
			info.torn = true
			break
		}
		if info.validSize+frameOverhead+length > st.Size() {
			info.torn = true // frame runs past EOF
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(f, payload); err != nil {
			info.torn = true
			break
		}
		if crc32.Checksum(payload, castagnoli) != want {
			info.torn = true // corrupt payload: treat it and all after as tear
			break
		}
		info.validSize += frameOverhead + length
		s.lastLSN++
	}
	info.truncated = st.Size() - info.validSize
	s.size = info.validSize
	return info, nil
}

// truncateSegment cuts a torn tail (or removes a segment with no
// complete records at all).
func truncateSegment(s *segment, validSize int64) error {
	if validSize <= int64(headerSize) && s.lastLSN < s.firstLSN {
		if err := os.Remove(s.path); err != nil {
			return fmt.Errorf("wal: removing empty torn segment: %w", err)
		}
		return nil
	}
	if err := os.Truncate(s.path, validSize); err != nil {
		return fmt.Errorf("wal: truncating torn tail: %w", err)
	}
	return nil
}

// SyncDir fsyncs a directory so freshly created, renamed, or removed
// entries survive a machine crash. The WAL calls it after each segment
// create; witchd also calls it after the snapshot-rename commit point.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("fsync %s: %w", dir, err)
	}
	return nil
}

// listSegments finds and orders the segment files of a dir.
func listSegments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: reading %s: %w", dir, err)
	}
	var segs []segment
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
			continue
		}
		lsn, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 16, 64)
		if err != nil || lsn == 0 {
			continue // foreign file (LSNs are dense from 1); leave it alone
		}
		segs = append(segs, segment{path: filepath.Join(dir, name), firstLSN: lsn})
	}
	sort.Slice(segs, func(i, k int) bool { return segs[i].firstLSN < segs[k].firstLSN })
	return segs, nil
}
