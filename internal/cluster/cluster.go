// Package cluster turns N witchd processes into one logical daemon.
//
// Membership is static: every node is started with the same -peers
// list and its own advertised URL. Batch ownership is decided by
// rendezvous (highest-random-weight) hashing over the durable pusher
// identity — the same identity the dedup window and the client spool
// are keyed on — so one pusher's whole sequence stream lands on one
// owner and the per-pusher sliding window keeps deduplicating across
// the fleet exactly as it did on a single node. Ownership depends
// only on the peer list, never on liveness: a dead owner means the
// batch is shed with Retry-After (the pusher spools and retries), it
// is never rerouted to a node whose dedup window has no memory of
// that pusher.
//
// Any node accepts any batch. A non-owner forwards it to the owner
// over plain HTTP (one hop, marked so a stale peer list cannot build
// a forwarding loop) and relays the owner's verdict — status, body,
// Retry-After, duplicate marker — byte for byte, acking only after
// the owner's journal-before-ack commit. Queries scatter to every
// peer and gather with internal/agg's merge rules; unreachable peers
// degrade the answer to a partial one instead of failing it.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// traceSpan opens a client-side child span for one peer call when the
// context carries a trace, stamping the outgoing request so the peer's
// own span chains under it. It returns the span (inert without a
// trace) — the caller Ends it around the round trip.
func (r *Router) traceSpan(ctx context.Context, req *http.Request, stage, peer string) obs.ActiveSpan {
	sc, ok := obs.SpanFromContext(ctx)
	if !ok {
		return obs.ActiveSpan{}
	}
	sp := r.obs.StartChild(sc, stage)
	if sp.Active() {
		sp.SetPeer(peer)
		req.Header.Set(obs.TraceHeader, sp.Header())
	}
	return sp
}

// ForwardedHeader marks a batch that already made its routing hop.
// A node receiving it ingests locally no matter what its own ring
// says: with a skewed peer list both nodes forwarding at each other
// would otherwise loop, and one hop already placed the batch on the
// node the first router chose.
const ForwardedHeader = "X-Witch-Forwarded"

// RingHeader carries the sender's ring hash (an FNV-1a fold of the
// sorted peer list) on every inter-node request. The receiver rejects
// a mismatch with 409 before touching any state: a typoed -peers list
// on one node would otherwise silently split ownership, with each side
// forwarding, replicating, and repairing against a different ring.
const RingHeader = "X-Witch-Ring"

// TimestampHeader carries the coordinator's ingest wall time (UnixNano)
// on replication requests, so the follower buckets the batch at the
// same instant and replayed/repaired layouts stay byte-comparable.
const TimestampHeader = "X-Witch-TS"

// Defaults for Config zero values.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 500 * time.Millisecond
	DefaultMaxCooldown      = 15 * time.Second
	DefaultForwardTimeout   = 5 * time.Second
	DefaultQueryTimeout     = 5 * time.Second
	DefaultRetryAfter       = 2 * time.Second
)

// Config describes one node's view of the cluster.
type Config struct {
	// Self is this node's advertised base URL. Must appear in Peers:
	// every node must agree on the ring, and a Self the others do not
	// know about would silently own nothing.
	Self string
	// Peers is the full static membership, Self included.
	Peers []string
	// ReplicationFactor is how many nodes (the top of each pusher's
	// preference list) hold that pusher's data. Zero means 1 — the
	// pre-replication single-owner behavior. Must not exceed the peer
	// count.
	ReplicationFactor int
	// Client issues all inter-node requests (forwards and scatters).
	// Nil gets a plain client; tests thread a fault.Transport here.
	Client *http.Client
	// BreakerThreshold is the consecutive-failure count that opens a
	// peer's forwarding breaker. Zero means DefaultBreakerThreshold.
	BreakerThreshold int
	// BreakerCooldown is the initial open interval; it doubles per
	// consecutive trip up to DefaultMaxCooldown. Zero means
	// DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// ForwardTimeout bounds one forwarded ingest round trip. Zero
	// means DefaultForwardTimeout.
	ForwardTimeout time.Duration
	// QueryTimeout bounds one peer's leg of a scatter-gather query.
	// Zero means DefaultQueryTimeout.
	QueryTimeout time.Duration
	// Now is the clock, for tests. Nil means time.Now.
	Now func() time.Time
	// Logf, when set, receives one line per breaker transition and
	// per failed scatter leg.
	Logf func(format string, args ...any)
	// Obs, when set, witnesses every peer call: per-(op, peer) RTT
	// histograms, and client-side spans for forward, replicate, and
	// scatter legs when the inbound request carries a trace context
	// (obs.ContextWithSpan). Nil disables at zero cost.
	Obs *obs.Observer
}

// Router is one node's routing, forwarding, and scatter engine.
// All methods are safe for concurrent use.
type Router struct {
	self     string
	peers    []string // sorted, normalized, includes self
	others   []string // peers minus self, same order
	rf       int      // replica group size
	ringHash string   // FNV-1a fold of the sorted peer list, hex
	client   *http.Client
	now      func() time.Time
	logf     func(string, ...any)
	obs      *obs.Observer
	queryTO  time.Duration

	threshold int
	cooldown0 time.Duration
	forwardTO time.Duration

	mu  sync.Mutex
	brs map[string]*peerBreaker

	forwards        atomic.Uint64 // forwards acked by the owner (2xx relayed)
	forwardShed     atomic.Uint64 // owner said 429/503; shed relayed to the pusher
	forwardErrors   atomic.Uint64 // forward never got an owner verdict
	forwardReroutes atomic.Uint64 // forwards retargeted past a breaker-open replica
	scatters        atomic.Uint64 // fleet queries fanned out
	scatterPartials atomic.Uint64 // fleet queries with ≥1 unreachable peer
	replicates      atomic.Uint64 // replication legs acked by a follower
	replicateErrors atomic.Uint64 // replication legs that got no usable verdict

	scatterBytes     atomic.Uint64 // shard response bytes received, delta legs included
	scatterFullLegs  atomic.Uint64 // delta legs answered with a full export
	scatterDeltaLegs atomic.Uint64 // delta legs answered incrementally

	// scatterCache is the per-(peer, window) delta-scatter baseline: the
	// last reconstructed full export per peer plus the version vector it
	// was built at, patched in place by each delta leg. Entries are
	// per-key locked so one slow peer's patch never blocks another's.
	scMu         sync.Mutex
	scatterCache map[string]*scatterEntry
}

// peerBreaker tracks one peer's forwarding health. Guarded by
// Router.mu (transitions are rare and cheap; no per-peer lock).
type peerBreaker struct {
	fails     int       // consecutive failures since last success
	trips     uint64    // lifetime open transitions
	openUntil time.Time // zero when closed
	cooldown  time.Duration
	forwards  uint64 // lifetime attempts that reached a verdict
	errors    uint64 // lifetime attempts that did not
}

// New validates the membership and returns the node's router.
func New(cfg Config) (*Router, error) {
	if len(cfg.Peers) < 2 {
		return nil, errors.New("cluster: needs at least two peers (run without -peers for a single node)")
	}
	self, err := normalizeURL(cfg.Self)
	if err != nil {
		return nil, fmt.Errorf("cluster: self %q: %w", cfg.Self, err)
	}
	seen := make(map[string]bool, len(cfg.Peers))
	peers := make([]string, 0, len(cfg.Peers))
	for _, raw := range cfg.Peers {
		p, err := normalizeURL(raw)
		if err != nil {
			return nil, fmt.Errorf("cluster: peer %q: %w", raw, err)
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %q", p)
		}
		seen[p] = true
		peers = append(peers, p)
	}
	if !seen[self] {
		return nil, fmt.Errorf("cluster: self %q is not in the peer list", self)
	}
	sort.Strings(peers)
	others := make([]string, 0, len(peers)-1)
	for _, p := range peers {
		if p != self {
			others = append(others, p)
		}
	}
	rf := cfg.ReplicationFactor
	if rf == 0 {
		rf = 1
	}
	if rf < 1 || rf > len(peers) {
		return nil, fmt.Errorf("cluster: replication factor %d must be between 1 and the peer count (%d)", rf, len(peers))
	}
	r := &Router{
		self:     self,
		peers:    peers,
		others:   others,
		rf:       rf,
		ringHash: hashRing(peers),
		client:   cfg.Client,
		now:      cfg.Now,
		logf:     cfg.Logf,
		obs:      cfg.Obs,
		queryTO:  cfg.QueryTimeout,
		brs:      make(map[string]*peerBreaker, len(others)),

		scatterCache: make(map[string]*scatterEntry),
	}
	if r.client == nil {
		r.client = &http.Client{}
	}
	if r.now == nil {
		r.now = time.Now
	}
	if r.queryTO <= 0 {
		r.queryTO = DefaultQueryTimeout
	}
	threshold := cfg.BreakerThreshold
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	cooldown := cfg.BreakerCooldown
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	fwdTO := cfg.ForwardTimeout
	if fwdTO <= 0 {
		fwdTO = DefaultForwardTimeout
	}
	r.threshold, r.cooldown0, r.forwardTO = threshold, cooldown, fwdTO
	for _, p := range others {
		r.brs[p] = &peerBreaker{cooldown: cooldown}
	}
	return r, nil
}

// normalizeURL canonicalizes a peer URL so that string equality is
// ring equality on every node: scheme+host only, no trailing slash.
func normalizeURL(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil {
		return "", err
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("scheme must be http or https, got %q", u.Scheme)
	}
	if u.Host == "" {
		return "", errors.New("missing host")
	}
	if u.Path != "" && u.Path != "/" {
		return "", fmt.Errorf("peer URLs must not carry a path, got %q", u.Path)
	}
	return u.Scheme + "://" + u.Host, nil
}

// Self returns this node's advertised URL.
func (r *Router) Self() string { return r.self }

// Peers returns the full membership, sorted. Callers must not mutate.
func (r *Router) Peers() []string { return r.peers }

// Others returns the membership minus self, sorted.
func (r *Router) Others() []string { return r.others }

// Owner maps a pusher identity onto its owning node via rendezvous
// hashing: each peer scores hash(peer, key) and the highest score
// wins. Every node computes the same winner from the same peer list,
// no coordination; removing one peer reassigns only that peer's keys.
func (r *Router) Owner(pusherID string) string {
	best := ""
	var bestScore uint64
	for _, p := range r.peers {
		s := rendezvousScore(p, pusherID)
		if best == "" || s > bestScore {
			best, bestScore = p, s
		}
	}
	return best
}

// IsOwner reports whether this node owns the pusher's batches.
func (r *Router) IsOwner(pusherID string) bool { return r.Owner(pusherID) == r.self }

// RF returns the replica group size.
func (r *Router) RF() int { return r.rf }

// RingHash returns the hex FNV-1a hash of the sorted peer list — the
// value every inter-node request carries in RingHeader. Two nodes with
// equal hashes computed the peer set from identical membership.
func (r *Router) RingHash() string { return r.ringHash }

// hashRing folds the sorted, normalized peer list through FNV-1a with
// a 0x00 separator (peers are ASCII URLs, so the separator cannot
// occur inside one and distinct lists never concatenate equal).
func hashRing(peers []string) string {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, p := range peers {
		for i := 0; i < len(p); i++ {
			h ^= uint64(p[i])
			h *= prime64
		}
		h ^= 0x00
		h *= prime64
	}
	return fmt.Sprintf("%016x", h)
}

// Preference returns the full membership ordered by descending
// rendezvous score for the pusher — the preference list. Index 0 is
// the owner; the top RF entries form the replica set; on permanent
// owner loss the next preference-list node is the natural successor.
// Deterministic across nodes: score ties (practically impossible for
// FNV over distinct URLs) break by peer name.
func (r *Router) Preference(pusherID string) []string {
	type scored struct {
		peer  string
		score uint64
	}
	sc := make([]scored, len(r.peers))
	for i, p := range r.peers {
		sc[i] = scored{p, rendezvousScore(p, pusherID)}
	}
	sort.Slice(sc, func(i, j int) bool {
		if sc[i].score != sc[j].score {
			return sc[i].score > sc[j].score
		}
		return sc[i].peer < sc[j].peer
	})
	out := make([]string, len(sc))
	for i, s := range sc {
		out[i] = s.peer
	}
	return out
}

// ReplicaSet returns the top-RF prefix of the preference list — the
// nodes that durably hold this pusher's batches.
func (r *Router) ReplicaSet(pusherID string) []string {
	return r.Preference(pusherID)[:r.rf]
}

// InReplicaSet reports whether peer is in the pusher's replica set.
func (r *Router) InReplicaSet(pusherID, peer string) bool {
	for _, p := range r.ReplicaSet(pusherID) {
		if p == peer {
			return true
		}
	}
	return false
}

// PreferenceIndex returns peer's rank in the pusher's preference list
// (0 = owner), or len(peers) if peer is unknown. Query gather uses it
// to pick, among the reachable holders of a partition, the one
// replication keeps most authoritative.
func (r *Router) PreferenceIndex(pusherID, peer string) int {
	for i, p := range r.Preference(pusherID) {
		if p == peer {
			return i
		}
	}
	return len(r.peers)
}

// Available reports whether peer's breaker currently lets requests
// flow. A true result is a hint, not a guarantee; a false result means
// no request would even be attempted.
func (r *Router) Available(peer string) bool {
	return r.breakerGate(peer) == 0
}

// rendezvousScore is FNV-1a over peer ‖ 0xff ‖ key. The sentinel
// byte cannot occur in either string (both are ASCII by validation),
// so distinct (peer, key) splits never collide by concatenation.
func rendezvousScore(peer, key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(peer); i++ {
		h ^= uint64(peer[i])
		h *= prime64
	}
	h ^= 0xff
	h *= prime64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	// FNV-1a alone has weak trailing-byte avalanche: two keys differing
	// only in their last byte produce scores within ~2^49 of each other,
	// so the argmax peer is almost always the same — sequential pusher
	// IDs ("host-1", "host-2", ...) would all land on one node. The
	// fmix64 finalizer (murmur3) diffuses every input bit across the
	// whole word, restoring rendezvous hashing's balance guarantee.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// PeerDownError reports a forward that never got the owner's verdict
// — breaker already open, connection refused, timeout, torn response.
// The batch was NOT acked; the caller must shed it to the pusher with
// the RetryAfter hint so the pusher spools and retries the same
// sequence number later.
type PeerDownError struct {
	Peer       string
	RetryAfter time.Duration
	Status     int   // HTTP status from the peer's refusal; 0 when no response arrived
	Err        error // nil when the breaker was open
}

func (e *PeerDownError) Error() string {
	if e.Err == nil {
		return fmt.Sprintf("cluster: owner %s breaker open, retry after %s", e.Peer, e.RetryAfter)
	}
	return fmt.Sprintf("cluster: owner %s unreachable: %v", e.Peer, e.Err)
}

func (e *PeerDownError) Unwrap() error { return e.Err }

// Permanent reports whether the peer durably rejected the request —
// a 4xx verdict that retrying the identical bytes cannot change (too
// large for the follower's MaxBody, malformed payload). Excluded:
// 408 (the peer timed us out — transport, not verdict), 409 (ring
// mismatch heals when config skew resolves), and 429 (overload is
// retryable by definition). Transport failures and 5xx are never
// permanent: the same bytes may well land after the peer recovers.
func (e *PeerDownError) Permanent() bool {
	switch e.Status {
	case http.StatusRequestTimeout, http.StatusConflict, http.StatusTooManyRequests:
		return false
	}
	return e.Status >= 400 && e.Status < 500
}

// Stats is the router's counter snapshot for /healthz and /metrics.
type Stats struct {
	Self            string   `json:"self"`
	Peers           []string `json:"peers"`
	RF              int      `json:"replication_factor"`
	Ring            string   `json:"ring"`
	Forwards        uint64   `json:"forwards"`
	ForwardShed     uint64   `json:"forward_shed"`
	ForwardErrors   uint64   `json:"forward_errors"`
	ForwardReroutes uint64   `json:"forward_reroutes"`
	Scatters        uint64   `json:"scatters"`
	ScatterPartials uint64   `json:"scatter_partials"`
	Replicates      uint64   `json:"replicates"`
	ReplicateErrors uint64   `json:"replicate_errors"`

	ScatterBytes     uint64 `json:"scatter_bytes"`
	ScatterFullLegs  uint64 `json:"scatter_full_legs"`
	ScatterDeltaLegs uint64 `json:"scatter_delta_legs"`
}

// StatsSnapshot returns the router's counters.
func (r *Router) StatsSnapshot() Stats {
	return Stats{
		Self:            r.self,
		Peers:           r.peers,
		RF:              r.rf,
		Ring:            r.ringHash,
		Forwards:        r.forwards.Load(),
		ForwardShed:     r.forwardShed.Load(),
		ForwardErrors:   r.forwardErrors.Load(),
		ForwardReroutes: r.forwardReroutes.Load(),
		Scatters:        r.scatters.Load(),
		ScatterPartials: r.scatterPartials.Load(),
		Replicates:      r.replicates.Load(),
		ReplicateErrors: r.replicateErrors.Load(),

		ScatterBytes:     r.scatterBytes.Load(),
		ScatterFullLegs:  r.scatterFullLegs.Load(),
		ScatterDeltaLegs: r.scatterDeltaLegs.Load(),
	}
}

// PeerState is one peer's breaker view for /metrics.
type PeerState struct {
	Peer     string
	Open     bool
	Fails    int
	Trips    uint64
	Forwards uint64
	Errors   uint64
}

// PeerStates returns every other peer's breaker state, sorted.
func (r *Router) PeerStates() []PeerState {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PeerState, 0, len(r.others))
	for _, p := range r.others {
		b := r.brs[p]
		out = append(out, PeerState{
			Peer:     p,
			Open:     b.openUntil.After(now),
			Fails:    b.fails,
			Trips:    b.trips,
			Forwards: b.forwards,
			Errors:   b.errors,
		})
	}
	return out
}

// breakerGate returns how long the peer's breaker stays open, or 0 if
// requests may flow.
func (r *Router) breakerGate(peer string) time.Duration {
	now := r.now()
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.brs[peer]
	if b == nil || !b.openUntil.After(now) {
		return 0
	}
	return b.openUntil.Sub(now)
}

// breakerFailure records a failed forward attempt. A positive
// retryAfter (the owner shed with an explicit hint) opens the breaker
// immediately for that long — the owner knows its own backlog better
// than our counter does. Otherwise threshold consecutive failures
// open it for a doubling cooldown.
func (r *Router) breakerFailure(peer string, retryAfter time.Duration, verdict bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.brs[peer]
	if b == nil {
		return
	}
	if verdict {
		b.forwards++
	} else {
		b.errors++
	}
	b.fails++
	open := time.Duration(0)
	switch {
	case retryAfter > 0:
		open = retryAfter
	case b.fails >= r.threshold:
		open = b.cooldown
		b.cooldown *= 2
		if b.cooldown > DefaultMaxCooldown {
			b.cooldown = DefaultMaxCooldown
		}
	}
	if open > 0 {
		until := r.now().Add(open)
		if until.After(b.openUntil) {
			if !b.openUntil.After(r.now()) {
				b.trips++
				if r.logf != nil {
					r.logf("cluster: breaker open for %s (%s)", peer, open)
				}
			}
			b.openUntil = until
		}
	}
}

// breakerSuccess records a forward that got a usable verdict.
func (r *Router) breakerSuccess(peer string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b := r.brs[peer]
	if b == nil {
		return
	}
	b.forwards++
	if b.fails >= r.threshold && r.logf != nil {
		r.logf("cluster: breaker closed for %s", peer)
	}
	b.fails = 0
	b.cooldown = r.cooldown0
	b.openUntil = time.Time{}
}

// parseRetryAfter reads an HTTP Retry-After header (delay-seconds or
// HTTP-date) into a duration; 0 when absent or unparseable.
func (r *Router) parseRetryAfter(h http.Header) time.Duration {
	v := h.Get("Retry-After")
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil {
		if secs < 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := t.Sub(r.now()); d > 0 {
			return d
		}
	}
	return 0
}
