package cluster

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/store"
	"repro/witch"
)

func threeNodes() []string {
	return []string{"http://10.0.0.1:9147", "http://10.0.0.2:9147", "http://10.0.0.3:9147"}
}

func mustRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestNewValidation: membership bugs are config bugs and must die at
// construction with an error naming the offender.
func TestNewValidation(t *testing.T) {
	peers := threeNodes()
	cases := []struct {
		name string
		cfg  Config
		want string
	}{
		{"one peer", Config{Self: peers[0], Peers: peers[:1]}, "at least two"},
		{"self missing", Config{Self: "http://10.9.9.9:1", Peers: peers}, "not in the peer list"},
		{"duplicate", Config{Self: peers[0], Peers: []string{peers[0], peers[0]}}, "duplicate"},
		{"bad scheme", Config{Self: peers[0], Peers: []string{peers[0], "ftp://x:1"}}, "scheme"},
		{"path in peer", Config{Self: peers[0], Peers: []string{peers[0], "http://x:1/v1"}}, "path"},
		{"no host", Config{Self: peers[0], Peers: []string{peers[0], "http://"}}, "host"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := New(tc.cfg)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("New(%+v) = %v, want error containing %q", tc.cfg, err, tc.want)
			}
		})
	}

	// Trailing slashes normalize away: the ring must not split on
	// cosmetic URL differences.
	r := mustRouter(t, Config{Self: peers[0] + "/", Peers: []string{peers[0], peers[1] + "/"}})
	if r.Self() != peers[0] {
		t.Fatalf("self not normalized: %q", r.Self())
	}
	if got := r.Others(); len(got) != 1 || got[0] != peers[1] {
		t.Fatalf("others not normalized: %v", got)
	}
}

// TestOwnerAgreementAndSpread: every node computes the same owner for
// every key (the whole point of rendezvous hashing over a shared
// list), the assignment uses all nodes, and removing one peer
// reassigns only that peer's keys.
func TestOwnerAgreementAndSpread(t *testing.T) {
	peers := threeNodes()
	routers := make([]*Router, len(peers))
	for i := range peers {
		routers[i] = mustRouter(t, Config{Self: peers[i], Peers: peers})
	}
	const keys = 3000
	counts := map[string]int{}
	owner := make([]string, keys)
	for k := 0; k < keys; k++ {
		id := fmt.Sprintf("pusher-%06x", k*2654435761)
		owner[k] = routers[0].Owner(id)
		counts[owner[k]]++
		for _, r := range routers[1:] {
			if got := r.Owner(id); got != owner[k] {
				t.Fatalf("ring disagreement for %q: %s vs %s", id, got, owner[k])
			}
		}
	}
	for _, p := range peers {
		if counts[p] < keys/10 {
			t.Fatalf("lopsided ring: %s owns %d of %d", p, counts[p], keys)
		}
	}

	// Minimal-disruption property: with peer[2] gone, keys it did not
	// own keep their owner.
	small := mustRouter(t, Config{Self: peers[0], Peers: peers[:2]})
	for k := 0; k < keys; k++ {
		id := fmt.Sprintf("pusher-%06x", k*2654435761)
		if owner[k] != peers[2] && small.Owner(id) != owner[k] {
			t.Fatalf("removing %s moved key %q from %s", peers[2], id, owner[k])
		}
	}
}

// TestOwnerSpreadSequentialIDs: real pusher fleets use sequential
// identities ("host-1", "host-2", ...). Raw FNV-1a scores for keys
// differing only in trailing bytes are so close that one peer used to
// win every one of them — the fmix64 finalizer in rendezvousScore
// must keep near-identical keys spread across the ring.
func TestOwnerSpreadSequentialIDs(t *testing.T) {
	peers := threeNodes()
	r := mustRouter(t, Config{Self: peers[0], Peers: peers})
	counts := map[string]int{}
	const keys = 90
	for k := 0; k < keys; k++ {
		counts[r.Owner(fmt.Sprintf("host-%02d", k))]++
	}
	for _, p := range peers {
		if counts[p] < keys/10 {
			t.Fatalf("sequential IDs lopsided: %s owns %d of %d (%v)", p, counts[p], keys, counts)
		}
	}
}

// TestForwardRelaysVerdict: the owner's status, body, and duplicate
// marker come back verbatim — the pusher must not be able to tell it
// hit a non-owner.
func TestForwardRelaysVerdict(t *testing.T) {
	var gotID, gotSeq, gotHop string
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotID = r.Header.Get(witch.PusherIDHeader)
		gotSeq = r.Header.Get(witch.PusherSeqHeader)
		gotHop = r.Header.Get(ForwardedHeader)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Witch-Duplicate", "window")
		w.Write([]byte(`{"accepted":1}`))
	}))
	defer owner.Close()

	self := "http://10.0.0.1:9147"
	r := mustRouter(t, Config{Self: self, Peers: []string{self, owner.URL}})
	fr, err := r.Forward(context.Background(), owner.URL, "application/json", "pusher-1", 42, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if fr.Status != 200 || string(fr.Body) != `{"accepted":1}` || fr.Duplicate != "window" {
		t.Fatalf("verdict not relayed: %+v", fr)
	}
	if gotID != "pusher-1" || gotSeq != "42" || gotHop != self {
		t.Fatalf("forward headers wrong: id=%q seq=%q hop=%q", gotID, gotSeq, gotHop)
	}
	if s := r.StatsSnapshot(); s.Forwards != 1 || s.ForwardErrors != 0 {
		t.Fatalf("counters: %+v", s)
	}
}

// TestForwardBreaker: a dead owner costs one connection attempt per
// forward until the threshold, then the breaker answers instantly
// with a Retry-After hint; a success resets it.
func TestForwardBreaker(t *testing.T) {
	now := time.Unix(1700000000, 0)
	clock := func() time.Time { return now }
	self := "http://10.0.0.1:9147"
	dead := "http://127.0.0.1:1" // nothing listens on port 1
	r := mustRouter(t, Config{
		Self: self, Peers: []string{self, dead},
		BreakerThreshold: 2, BreakerCooldown: time.Second, Now: clock,
		Client: &http.Client{Timeout: 200 * time.Millisecond},
	})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		if _, err := r.Forward(ctx, dead, "application/json", "p", uint64(i), nil); err == nil {
			t.Fatal("forward to dead peer succeeded")
		}
	}
	ps := r.PeerStates()
	if len(ps) != 1 || !ps[0].Open || ps[0].Errors != 2 {
		t.Fatalf("breaker not open after threshold: %+v", ps)
	}
	_, err := r.Forward(ctx, dead, "application/json", "p", 9, nil)
	var pd *PeerDownError
	if !errors.As(err, &pd) || pd.RetryAfter <= 0 || pd.Err != nil {
		t.Fatalf("want fast-fail PeerDownError with RetryAfter, got %v", err)
	}
	// Cooldown elapses; the half-open probe happens (and fails again).
	now = now.Add(2 * time.Second)
	if _, err := r.Forward(ctx, dead, "application/json", "p", 10, nil); err == nil {
		t.Fatal("half-open probe succeeded against a dead peer")
	}
}

// TestForwardShedOpensBreaker: an owner shedding with Retry-After gets
// its verdict relayed AND the breaker opened for the advertised
// interval, so the next batch for that owner sheds locally.
func TestForwardShedOpensBreaker(t *testing.T) {
	hits := 0
	owner := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.Header().Set("Retry-After", "3")
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer owner.Close()
	now := time.Unix(1700000000, 0)
	self := "http://10.0.0.1:9147"
	r := mustRouter(t, Config{Self: self, Peers: []string{self, owner.URL}, Now: func() time.Time { return now }})

	fr, err := r.Forward(context.Background(), owner.URL, "application/json", "p", 1, nil)
	if err != nil || fr.Status != http.StatusServiceUnavailable || fr.RetryAfter != "3" {
		t.Fatalf("shed verdict not relayed: fr=%+v err=%v", fr, err)
	}
	if !fr.Shed() {
		t.Fatal("503 not classified as shed")
	}
	_, err = r.Forward(context.Background(), owner.URL, "application/json", "p", 2, nil)
	var pd *PeerDownError
	if !errors.As(err, &pd) || pd.RetryAfter != 3*time.Second {
		t.Fatalf("breaker did not adopt the advertised interval: %v", err)
	}
	if hits != 1 {
		t.Fatalf("second forward hit the shedding owner (%d hits)", hits)
	}
	if s := r.StatsSnapshot(); s.ForwardShed != 1 {
		t.Fatalf("shed not counted: %+v", s)
	}
}

// TestScatterPartial: one live peer and one dead peer produce one
// Export and one error — a partial gather, never a failed one.
func TestScatterPartial(t *testing.T) {
	a := agg.New()
	live := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/shard" {
			http.NotFound(w, r)
			return
		}
		if got := r.URL.Query().Get("window"); got != "5m" {
			t.Errorf("window not passed through: %q", got)
		}
		gob.NewEncoder(w).Encode(&ShardPayload{Export: &store.Export{Unkeyed: a.State()}})
	}))
	defer live.Close()
	self := "http://10.0.0.1:9147"
	dead := "http://127.0.0.1:1"
	r := mustRouter(t, Config{
		Self: self, Peers: []string{self, live.URL, dead},
		Client: &http.Client{Timeout: 200 * time.Millisecond},
	})
	res := r.ScatterExports(context.Background(), "5m")
	if len(res) != 2 {
		t.Fatalf("want 2 legs, got %d", len(res))
	}
	okLegs, errLegs := 0, 0
	for _, sr := range res {
		switch {
		case sr.Err == nil && sr.Export != nil:
			okLegs++
		case sr.Err != nil && sr.Peer == dead:
			errLegs++
		default:
			t.Fatalf("odd leg: %+v", sr)
		}
	}
	if okLegs != 1 || errLegs != 1 {
		t.Fatalf("legs: ok=%d err=%d", okLegs, errLegs)
	}
	if s := r.StatsSnapshot(); s.Scatters != 1 || s.ScatterPartials != 1 {
		t.Fatalf("scatter counters: %+v", s)
	}
}

// TestPreferenceAndReplicaSets: every node agrees on every pusher's
// full preference order, the replica set is its RF-prefix with the
// owner first, and RF is validated at construction.
func TestPreferenceAndReplicaSets(t *testing.T) {
	peers := threeNodes()
	routers := make([]*Router, len(peers))
	for i := range peers {
		routers[i] = mustRouter(t, Config{Self: peers[i], Peers: peers, ReplicationFactor: 2})
	}
	for k := 0; k < 500; k++ {
		id := fmt.Sprintf("pusher-%06x", k*2654435761)
		pref := routers[0].Preference(id)
		if len(pref) != len(peers) {
			t.Fatalf("preference list truncated: %v", pref)
		}
		if pref[0] != routers[0].Owner(id) {
			t.Fatalf("preference head %q is not the owner %q", pref[0], routers[0].Owner(id))
		}
		set := routers[0].ReplicaSet(id)
		if len(set) != 2 || set[0] != pref[0] || set[1] != pref[1] {
			t.Fatalf("replica set %v is not the preference prefix of %v", set, pref)
		}
		for _, r := range routers[1:] {
			got := r.Preference(id)
			for i := range pref {
				if got[i] != pref[i] {
					t.Fatalf("preference disagreement for %q: %v vs %v", id, got, pref)
				}
			}
		}
		if idx := routers[0].PreferenceIndex(id, pref[2]); idx != 2 {
			t.Fatalf("PreferenceIndex(%q) = %d, want 2", pref[2], idx)
		}
	}

	if _, err := New(Config{Self: peers[0], Peers: peers, ReplicationFactor: 4}); err == nil {
		t.Fatal("RF above peer count accepted")
	}
	if r := mustRouter(t, Config{Self: peers[0], Peers: peers}); r.RF() != 1 {
		t.Fatalf("default RF = %d, want 1", r.RF())
	}
}

// TestRingHash: same membership (any order, cosmetic slashes) hashes
// identically; different membership differs.
func TestRingHash(t *testing.T) {
	peers := threeNodes()
	a := mustRouter(t, Config{Self: peers[0], Peers: peers})
	b := mustRouter(t, Config{Self: peers[1], Peers: []string{peers[2] + "/", peers[0], peers[1]}})
	if a.RingHash() != b.RingHash() {
		t.Fatalf("same membership, different rings: %s vs %s", a.RingHash(), b.RingHash())
	}
	c := mustRouter(t, Config{Self: peers[0], Peers: peers[:2]})
	if c.RingHash() == a.RingHash() {
		t.Fatal("different membership, same ring")
	}
}

// TestReplicateClient: the replicate leg carries the key, the
// coordinator timestamp, and the ring hash; a 2xx closes the loop and
// a refusal surfaces as a breaker-visible error.
func TestReplicateClient(t *testing.T) {
	var gotID, gotSeq, gotTS, gotRing string
	refuse := false
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/replicate" {
			http.NotFound(w, r)
			return
		}
		gotID = r.Header.Get(witch.PusherIDHeader)
		gotSeq = r.Header.Get(witch.PusherSeqHeader)
		gotTS = r.Header.Get(TimestampHeader)
		gotRing = r.Header.Get(RingHeader)
		if refuse {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("X-Witch-Duplicate", "window")
		w.Write([]byte(`{"replicated":1}`))
	}))
	defer peer.Close()
	self := "http://10.0.0.1:9147"
	r := mustRouter(t, Config{Self: self, Peers: []string{self, peer.URL}, ReplicationFactor: 2})
	ts := time.Unix(1700000000, 12345)
	rr, err := r.Replicate(context.Background(), peer.URL, "application/json", "pusher-1", 7, ts, []byte(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	if !rr.Duplicate {
		t.Fatalf("duplicate marker not relayed: %+v", rr)
	}
	if gotID != "pusher-1" || gotSeq != "7" || gotTS != fmt.Sprint(ts.UnixNano()) || gotRing != r.RingHash() {
		t.Fatalf("replicate headers wrong: id=%q seq=%q ts=%q ring=%q", gotID, gotSeq, gotTS, gotRing)
	}
	refuse = true
	if _, err := r.Replicate(context.Background(), peer.URL, "application/json", "pusher-1", 8, ts, []byte(`{}`)); err == nil {
		t.Fatal("refused replicate reported success")
	}
	if s := r.StatsSnapshot(); s.Replicates != 1 || s.ReplicateErrors != 1 {
		t.Fatalf("replicate counters: %+v", s)
	}
}
