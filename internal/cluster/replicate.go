package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/witch"
)

// NoteReroute counts a forward that skipped a breaker-open replica in
// favor of the next preference-list member.
func (r *Router) NoteReroute() { r.forwardReroutes.Add(1) }

// ReplicateResult is the follower's verdict on a replicated batch.
type ReplicateResult struct {
	Status    int
	Duplicate bool // follower had already applied this sequence
}

// Replicate ships one keyed batch to a replica peer's /v1/replicate
// endpoint and waits for its durable (journal-before-ack) verdict. ts
// is the coordinator's ingest wall time; the follower buckets at that
// instant, so both copies of the batch land in the same retention
// window. A nil error means the follower has the batch durably (fresh
// or as a dedup re-ack). Any error means replication did NOT happen
// and the caller must fall back to a hinted handoff or shed the batch
// un-acked — never ack on a failed leg.
//
// The same per-peer breaker that guards forwards guards replication:
// a breaker-open peer fails fast here, and a replication failure opens
// the breaker for forwards too (it is the same TCP path that is down).
func (r *Router) Replicate(ctx context.Context, peer, ctype, pusherID string, seq uint64, ts time.Time, body []byte) (*ReplicateResult, error) {
	if wait := r.breakerGate(peer); wait > 0 {
		r.replicateErrors.Add(1)
		return nil, &PeerDownError{Peer: peer, RetryAfter: wait}
	}
	ctx, cancel := context.WithTimeout(ctx, r.forwardTO)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, peer+"/v1/replicate", bytes.NewReader(body))
	if err != nil {
		r.replicateErrors.Add(1)
		return nil, &PeerDownError{Peer: peer, RetryAfter: DefaultRetryAfter, Err: err}
	}
	req.Header.Set("Content-Type", ctype)
	req.Header.Set(witch.PusherIDHeader, pusherID)
	req.Header.Set(witch.PusherSeqHeader, strconv.FormatUint(seq, 10))
	req.Header.Set(TimestampHeader, strconv.FormatInt(ts.UnixNano(), 10))
	req.Header.Set(RingHeader, r.ringHash)
	sp := r.traceSpan(ctx, req, "replicate_leg", peer)
	sp.Annotate(pusherID, seq)
	t0 := r.obs.Start()
	resp, err := r.client.Do(req)
	if err != nil {
		sp.Fail(err.Error())
		sp.End()
		r.breakerFailure(peer, 0, false)
		r.replicateErrors.Add(1)
		return nil, &PeerDownError{Peer: peer, RetryAfter: DefaultRetryAfter, Err: err}
	}
	// Drain so the connection is reusable. A torn body after the status
	// line is ignored: unlike forwards (where the body IS the relayed
	// pusher ack), the replication verdict is the status alone, and a
	// 2xx means the follower committed before writing it.
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, maxAckBody))
	resp.Body.Close()
	r.obs.PeerSince("replicate", peer, t0)
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		sp.Fail(resp.Status)
	}
	sp.End()
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		ra := r.parseRetryAfter(resp.Header)
		verdict := resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable
		if verdict && ra <= 0 {
			ra = DefaultRetryAfter
		}
		r.breakerFailure(peer, ra, verdict)
		r.replicateErrors.Add(1)
		return nil, &PeerDownError{Peer: peer, RetryAfter: ra, Status: resp.StatusCode,
			Err: fmt.Errorf("replica %s refused batch: status %d", peer, resp.StatusCode)}
	}
	r.breakerSuccess(peer)
	r.replicates.Add(1)
	return &ReplicateResult{
		Status:    resp.StatusCode,
		Duplicate: resp.Header.Get("X-Witch-Duplicate") != "",
	}, nil
}
