package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro/witch"
)

// maxAckBody bounds how much of the owner's response a forwarder will
// buffer for relay. Ingest acks are a few hundred bytes; a megabyte
// means something upstream is broken and truncating is the safe move.
const maxAckBody = 1 << 20

// ForwardResult is the owner's verdict on a forwarded batch, carried
// back verbatim so the entry node can relay an ack that is
// byte-identical to what the owner would have sent directly. In
// particular Duplicate preserves the owner's re-ack marker: the
// pusher cannot tell (and must not care) which node it talked to.
type ForwardResult struct {
	Status     int
	Body       []byte
	Ctype      string
	RetryAfter string // owner's Retry-After header, verbatim
	Duplicate  string // owner's X-Witch-Duplicate header, verbatim
}

// Shed reports whether the owner refused the batch with a backpressure
// status (relayed to the pusher as its own shed).
func (fr *ForwardResult) Shed() bool {
	return fr.Status == http.StatusTooManyRequests || fr.Status == http.StatusServiceUnavailable
}

// Forward sends one keyed batch to its owner and returns the owner's
// verdict. The entry node has NOT journaled the batch; the ack chain
// is pusher → entry → owner, and only the owner's journal-before-ack
// commit turns into a 2xx. A nil error means the owner produced a
// verdict (success, duplicate re-ack, validation error, or shed) that
// the caller must relay as-is. A *PeerDownError means no verdict
// exists: the caller sheds with Retry-After and the pusher keeps the
// batch.
func (r *Router) Forward(ctx context.Context, owner, ctype, pusherID string, seq uint64, body []byte) (*ForwardResult, error) {
	if wait := r.breakerGate(owner); wait > 0 {
		r.forwardErrors.Add(1)
		return nil, &PeerDownError{Peer: owner, RetryAfter: wait}
	}
	ctx, cancel := context.WithTimeout(ctx, r.forwardTO)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, owner+"/v1/ingest", bytes.NewReader(body))
	if err != nil {
		r.forwardErrors.Add(1)
		return nil, &PeerDownError{Peer: owner, RetryAfter: DefaultRetryAfter, Err: err}
	}
	req.Header.Set("Content-Type", ctype)
	req.Header.Set(witch.PusherIDHeader, pusherID)
	req.Header.Set(witch.PusherSeqHeader, strconv.FormatUint(seq, 10))
	req.Header.Set(ForwardedHeader, r.self)
	req.Header.Set(RingHeader, r.ringHash)
	sp := r.traceSpan(ctx, req, "forward_leg", owner)
	sp.Annotate(pusherID, seq)
	t0 := r.obs.Start()
	resp, err := r.client.Do(req)
	if err != nil {
		sp.Fail(err.Error())
		sp.End()
		r.breakerFailure(owner, 0, false)
		r.forwardErrors.Add(1)
		return nil, &PeerDownError{Peer: owner, RetryAfter: DefaultRetryAfter, Err: err}
	}
	ack, err := io.ReadAll(io.LimitReader(resp.Body, maxAckBody))
	resp.Body.Close()
	r.obs.PeerSince("forward", owner, t0)
	if err != nil {
		sp.Fail(err.Error())
	}
	sp.End()
	if err != nil {
		// The owner may have committed before the response tore, so this
		// is NOT a safe moment to re-route; shed and let the pusher retry
		// the same sequence number at the same owner, where dedup re-acks.
		r.breakerFailure(owner, 0, false)
		r.forwardErrors.Add(1)
		return nil, &PeerDownError{Peer: owner, RetryAfter: DefaultRetryAfter,
			Err: fmt.Errorf("reading owner ack: %w", err)}
	}
	fr := &ForwardResult{
		Status:     resp.StatusCode,
		Body:       ack,
		Ctype:      resp.Header.Get("Content-Type"),
		RetryAfter: resp.Header.Get("Retry-After"),
		Duplicate:  resp.Header.Get("X-Witch-Duplicate"),
	}
	if fr.Shed() {
		// The owner is up but shedding: open the breaker for exactly the
		// interval it advertised, so the next batch for that owner sheds
		// here instantly instead of burning a doomed hop.
		ra := r.parseRetryAfter(resp.Header)
		if ra <= 0 {
			ra = DefaultRetryAfter
		}
		r.breakerFailure(owner, ra, true)
		r.forwardShed.Add(1)
	} else {
		r.breakerSuccess(owner)
		r.forwards.Add(1)
	}
	return fr, nil
}
