package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"repro/internal/agg"
	"repro/internal/store"
	"repro/witch"
)

func deltaProfile(rng *rand.Rand, program string) *witch.Profile {
	n := 1 + rng.Intn(20)
	pairs := make([]witch.Pair, 0, n)
	for i := 0; i < n; i++ {
		k := rng.Intn(200)
		pairs = append(pairs, witch.Pair{
			Src:   fmt.Sprintf("s%03d", k),
			Dst:   fmt.Sprintf("d%03d", k),
			Chain: fmt.Sprintf("s%03d->d%03d", k, k),
			Waste: float64(rng.Intn(50)), Use: float64(rng.Intn(50)),
		})
	}
	return witch.NewProfile(witch.Profile{
		Program: program, Tool: string(witch.DeadStores), Waste: 1, Use: 1,
	}, pairs)
}

// foldExport merges an export the way the daemon's materialize step
// does (unkeyed plus every partition) and returns canonical JSON.
func foldExport(t *testing.T, exp *store.Export) []byte {
	t.Helper()
	a := agg.New()
	if exp.Unkeyed != nil {
		a.MergeState(exp.Unkeyed)
	}
	ids := make([]string, 0, len(exp.Parts))
	for id := range exp.Parts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		a.MergeState(exp.Parts[id])
	}
	b, err := json.Marshal(a.State())
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDeltaPatchingMatchesFullExport is the delta-protocol property
// test: across random sequences of keyed/unkeyed ingest, clock jumps
// (bucket eviction), partition removal/replacement, and snapshot
// restore, a coordinator baseline patched with ExportDelta responses
// must fold byte-identically to the store's own full export — and the
// steady-state delta (nothing changed) must ship no partitions.
func TestDeltaPatchingMatchesFullExport(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		clock := time.Unix(1700000000, 0)
		st := store.New(store.Config{Window: time.Minute, Buckets: 3, Now: func() time.Time { return clock }})
		e := &scatterEntry{}

		ids := []string{"", "p0", "p1", "p2", "p3"}
		for step := 0; step < 60; step++ {
			switch op := rng.Intn(10); {
			case op < 6: // ingest, keyed or unkeyed
				id := ids[rng.Intn(len(ids))]
				st.IngestKeyedAt(id, deltaProfile(rng, "prog-"+id), clock)
			case op < 8: // clock jump: ages buckets out, forces folds
				clock = clock.Add(time.Duration(1+rng.Intn(4)) * time.Minute)
			case op < 9: // partition churn: remove, sometimes reinstall
				id := ids[1+rng.Intn(len(ids)-1)]
				img := st.PartitionImage(id)
				st.ReplacePartition(id, nil)
				if rng.Intn(2) == 0 {
					st.ReplacePartition(id, img)
				}
			default: // snapshot/restore: new generation, epochs reset
				var buf bytes.Buffer
				if err := st.Snapshot(&buf, 0, nil); err != nil {
					t.Fatal(err)
				}
				st2 := store.New(store.Config{Window: time.Minute, Buckets: 3, Now: func() time.Time { return clock }})
				if _, _, err := st2.Restore(&buf); err != nil {
					t.Fatal(err)
				}
				st = st2
			}

			d := st.ExportDelta(0, e.ver)
			e.apply(&ShardDelta{Delta: d})
			if got, want := foldExport(t, e.export), foldExport(t, st.Export(0)); !bytes.Equal(got, want) {
				t.Fatalf("seed %d step %d: patched baseline diverges from full export", seed, step)
			}

			// A second delta with nothing changed must be empty and
			// non-full, and applying it must not change the baseline.
			d2 := st.ExportDelta(0, e.ver)
			if d2.Full {
				t.Fatalf("seed %d step %d: unchanged epochs answered with a full export", seed, step)
			}
			if d2.Export != nil && (d2.Export.Unkeyed != nil || len(d2.Export.Parts) > 0) || len(d2.Tombstones) > 0 {
				t.Fatalf("seed %d step %d: unchanged epochs shipped partitions", seed, step)
			}
			rev := e.rev
			e.apply(&ShardDelta{Delta: d2})
			if e.rev != rev {
				t.Fatalf("seed %d step %d: empty delta bumped the baseline revision", seed, step)
			}
		}
	}
}

// TestDeltaGenerationMismatchFullShips: a baseline from another store
// generation (restart/restore) must be answered with a full export,
// never trusted for epoch comparison.
func TestDeltaGenerationMismatchFullShips(t *testing.T) {
	clock := time.Unix(1700000000, 0)
	now := func() time.Time { return clock }
	st := store.New(store.Config{Window: time.Minute, Buckets: 3, Now: now})
	st.IngestKeyedAt("p0", deltaProfile(rand.New(rand.NewSource(1)), "prog"), clock)

	e := &scatterEntry{}
	e.apply(&ShardDelta{Delta: st.ExportDelta(0, e.ver)})

	// Same data, new generation via snapshot/restore.
	var buf bytes.Buffer
	if err := st.Snapshot(&buf, 0, nil); err != nil {
		t.Fatal(err)
	}
	st2 := store.New(store.Config{Window: time.Minute, Buckets: 3, Now: now})
	if _, _, err := st2.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	d := st2.ExportDelta(0, e.ver)
	if !d.Full {
		t.Fatal("cross-generation vector must be answered with a full export")
	}
	e.apply(&ShardDelta{Delta: d})
	if got, want := foldExport(t, e.export), foldExport(t, st2.Export(0)); !bytes.Equal(got, want) {
		t.Fatal("full-ship after generation change diverges")
	}
}
