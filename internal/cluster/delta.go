// Delta scatter: the read-path counterpart of replicated forwarding.
//
// A v1 scatter re-ships every peer's entire window export per query —
// O(total state) bytes on the wire even when nothing changed between
// polls. v2 makes the coordinator stateful: it remembers, per (peer,
// window), the last full export it reconstructed and the epoch vector
// it was built at (internal/store's ExportVersion), presents that
// vector on the next scatter, and the peer ships only the partitions
// whose epochs moved plus tombstones for the ones that vanished.
// Patching the remembered baseline with the delta reproduces the
// peer's current full export exactly — same *agg.State values — so
// query results are byte-identical to a v1 scatter's.
//
// Correctness never depends on the cache being right: the version
// vector travels with the baseline, the peer full-ships whenever the
// presented vector is from another generation or clock quantum (or the
// first contact, when there is none), and a peer that does not speak
// v2 (mid-upgrade) makes the leg fall back to a v1 full fetch. An
// errored leg keeps the stale baseline for later but reports the peer
// unreachable exactly like v1 — cached data is never passed off as a
// live answer.
package cluster

import (
	"bytes"
	"context"
	"encoding/gob"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"

	"repro/internal/agg"
	"repro/internal/store"
)

// DeltaRequest is the v2 /v1/shard POST body: the caller's last-seen
// version vector for this peer+window. A zero-value request (nil
// Epochs) asks for a full export.
type DeltaRequest struct {
	Ver store.ExportVersion
}

// ShardDelta is the v2 /v1/shard response envelope: an export delta
// plus the exporter's hinted-handoff ledger (always full — hints are
// tiny and change independently of store epochs).
type ShardDelta struct {
	Delta  *store.ExportDelta
	Hinted map[string][]string
}

// scatterEntry is one (peer, window) baseline. mu serializes
// fetch+patch per key, so two concurrent queries cannot interleave
// their deltas; the maps inside are mutated in place by patches, which
// is why readers get shallow copies made under mu (see snapshot).
type scatterEntry struct {
	mu     sync.Mutex
	ver    store.ExportVersion
	export *store.Export
	hinted map[string][]string
	rev    uint64 // bumped whenever the reconstructed view changes
}

func (r *Router) scatterEntryFor(peer, rawWindow string) *scatterEntry {
	key := peer + "\x00" + rawWindow
	r.scMu.Lock()
	defer r.scMu.Unlock()
	e := r.scatterCache[key]
	if e == nil {
		e = &scatterEntry{}
		r.scatterCache[key] = e
	}
	return e
}

// snapshot returns a shallow copy of the entry's reconstructed export:
// fresh top-level maps over the shared immutable *agg.State values, so
// a later patch (which replaces map entries) cannot race a merge that
// is still iterating this result. Callers must hold e.mu.
func (e *scatterEntry) snapshot() (*store.Export, map[string][]string) {
	out := &store.Export{Unkeyed: e.export.Unkeyed, Parts: make(map[string]*agg.State, len(e.export.Parts))}
	for id, st := range e.export.Parts {
		out.Parts[id] = st
	}
	return out, e.hinted
}

// apply patches the entry with one delta response and reports whether
// the reconstructed view changed. Callers must hold e.mu.
func (e *scatterEntry) apply(sd *ShardDelta) bool {
	d := sd.Delta
	if d.Export == nil {
		// gob omits zero values, so an empty delta (the steady-state
		// answer) or an empty peer's full export arrives with no Export
		// field at all.
		d.Export = &store.Export{}
	}
	changed := false
	if d.Full || e.export == nil {
		e.export = &store.Export{Unkeyed: d.Export.Unkeyed, Parts: make(map[string]*agg.State, len(d.Export.Parts))}
		for id, st := range d.Export.Parts {
			e.export.Parts[id] = st
		}
		changed = true
	} else {
		if d.Export.Unkeyed != nil {
			e.export.Unkeyed = d.Export.Unkeyed
			changed = true
		}
		for id, st := range d.Export.Parts {
			e.export.Parts[id] = st
			changed = true
		}
		for _, id := range d.Tombstones {
			if id == "" {
				e.export.Unkeyed = nil
			} else {
				delete(e.export.Parts, id)
			}
			changed = true
		}
	}
	e.ver = d.Ver
	if !hintedEqual(e.hinted, sd.Hinted) {
		e.hinted = sd.Hinted
		changed = true
	}
	if changed {
		e.rev++
	}
	return changed
}

func hintedEqual(a, b map[string][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}

// ScatterDeltas is ScatterExports through the per-peer baselines: same
// fan-out, same result shape (plus Rev), a fraction of the bytes when
// epochs are unchanged. Each leg POSTs the remembered version vector,
// applies the delta under the entry lock, and returns a shallow-copied
// snapshot of the reconstructed export. The Rev in each result
// identifies the reconstructed view's content: two scatters returning
// equal (Peer, Rev) pairs returned identical exports, which is what
// the daemon's rendered-response cache keys on.
//
// Error legs report Err exactly like v1 — the stale baseline is kept
// for the peer's recovery but never served as a live answer.
func (r *Router) ScatterDeltas(ctx context.Context, rawWindow string) []ShardResult {
	r.scatters.Add(1)
	out := make([]ShardResult, len(r.others))
	var wg sync.WaitGroup
	for i, peer := range r.others {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			out[i] = r.fetchShardDelta(ctx, peer, rawWindow)
		}(i, peer)
	}
	wg.Wait()
	partial := false
	for _, sr := range out {
		if sr.Err != nil {
			partial = true
			if r.logf != nil {
				r.logf("cluster: scatter leg %s failed: %v", sr.Peer, sr.Err)
			}
		}
	}
	if partial {
		r.scatterPartials.Add(1)
	}
	return out
}

func (r *Router) fetchShardDelta(ctx context.Context, peer, rawWindow string) ShardResult {
	sr := ShardResult{Peer: peer}
	e := r.scatterEntryFor(peer, rawWindow)
	// Hold the entry across fetch+patch: concurrent queries to one peer
	// serialize here, so a delta is always applied to the exact baseline
	// its request vector described.
	e.mu.Lock()
	defer e.mu.Unlock()

	ctx, cancel := context.WithTimeout(ctx, r.queryTO)
	defer cancel()
	u := peer + "/v1/shard"
	if rawWindow != "" {
		u += "?window=" + url.QueryEscape(rawWindow)
	}
	var body bytes.Buffer
	if err := gob.NewEncoder(&body).Encode(&DeltaRequest{Ver: e.ver}); err != nil {
		sr.Err = fmt.Errorf("encoding delta request: %w", err)
		return sr
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, u, &body)
	if err != nil {
		sr.Err = err
		return sr
	}
	req.Header.Set(RingHeader, r.ringHash)
	sp := r.traceSpan(ctx, req, "scatter_leg", peer)
	t0 := r.obs.Start()
	defer func() {
		r.obs.PeerSince("scatter", peer, t0)
		if sr.Err != nil {
			sp.Fail(sr.Err.Error())
		}
		sp.End()
	}()
	resp, err := r.client.Do(req)
	if err != nil {
		sr.Err = err
		return sr
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusMethodNotAllowed {
		// Pre-v2 peer: fall back to the v1 GET for this leg. The baseline
		// still updates (as a full export at an empty vector), so the
		// upgrade path converges to deltas once the peer speaks v2.
		pl, err := r.fetchShard(ctx, peer, rawWindow)
		if err != nil {
			sr.Err = err
			return sr
		}
		r.scatterFullLegs.Add(1)
		e.apply(&ShardDelta{
			Delta:  &store.ExportDelta{Full: true, Export: pl.Export},
			Hinted: pl.Hinted,
		})
		sr.Export, sr.Hinted = e.snapshot()
		sr.Rev = e.rev
		return sr
	}
	if resp.StatusCode != http.StatusOK {
		sr.Err = fmt.Errorf("shard query: %s", resp.Status)
		return sr
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		sr.Err = fmt.Errorf("reading shard delta: %w", err)
		return sr
	}
	r.scatterBytes.Add(uint64(len(raw)))
	sd := new(ShardDelta)
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(sd); err != nil {
		sr.Err = fmt.Errorf("decoding shard delta: %w", err)
		return sr
	}
	if sd.Delta == nil {
		sr.Err = fmt.Errorf("shard delta from %s missing payload", peer)
		return sr
	}
	if sd.Delta.Full {
		r.scatterFullLegs.Add(1)
	} else {
		r.scatterDeltaLegs.Add(1)
	}
	e.apply(sd)
	sr.Export, sr.Hinted = e.snapshot()
	sr.Rev = e.rev
	return sr
}
