package cluster

import (
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/witch"
)

// ShardPayload is the gob wire envelope for a /v1/shard window export.
// Alongside the raw export it carries the exporter's hinted-handoff
// ledger: for each pusher with batches parked in the exporter's hint
// queues, the destination peers those hints are bound for. The gather
// side uses this to prefer a hinter as the partition holder (its copy
// is a superset — a hint implies the data is in its own journal and
// store too) and to flag divergence when two reachable nodes both hold
// hints for the same pusher.
type ShardPayload struct {
	Export *store.Export
	Hinted map[string][]string // pusher id -> destination peers with pending hints
}

// ShardResult is one peer's leg of a scatter-gather query: either its
// partitioned export for the requested window, or the error that made
// this leg partial. Rev (delta legs only) identifies the reconstructed
// view's content: equal (Peer, Rev) across scatters means an identical
// export, which is what rendered-response caches key on.
type ShardResult struct {
	Peer   string
	Export *store.Export
	Hinted map[string][]string // exporter's pending-hint ledger, by pusher
	Rev    uint64
	Err    error
}

// ScatterExports fans a window query out to every other peer's
// /v1/shard and gathers the raw partitioned exports. Results come back
// in peer order (sorted), one entry per peer, errors in place — the
// caller merges the anonymous partitions from every reachable peer,
// picks exactly one holder per pusher partition (dedup across
// replicas), and reports the failures as the query's Incomplete set
// rather than failing the query. rawWindow is passed through verbatim
// (the caller already validated it against its own parser, which is
// the same parser the peer will use).
//
// Scatter legs deliberately ignore the forwarding breakers: those
// track the ingest path, and a peer refusing writes can still answer
// reads. Each leg is bounded by QueryTimeout instead.
func (r *Router) ScatterExports(ctx context.Context, rawWindow string) []ShardResult {
	r.scatters.Add(1)
	out := make([]ShardResult, len(r.others))
	var wg sync.WaitGroup
	for i, peer := range r.others {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			pl, err := r.fetchShard(ctx, peer, rawWindow)
			sr := ShardResult{Peer: peer, Err: err}
			if pl != nil {
				sr.Export = pl.Export
				sr.Hinted = pl.Hinted
			}
			out[i] = sr
		}(i, peer)
	}
	wg.Wait()
	partial := false
	for _, sr := range out {
		if sr.Err != nil {
			partial = true
			if r.logf != nil {
				r.logf("cluster: scatter leg %s failed: %v", sr.Peer, sr.Err)
			}
		}
	}
	if partial {
		r.scatterPartials.Add(1)
	}
	return out
}

func (r *Router) fetchShard(ctx context.Context, peer, rawWindow string) (*ShardPayload, error) {
	ctx, cancel := context.WithTimeout(ctx, r.queryTO)
	defer cancel()
	u := peer + "/v1/shard"
	if rawWindow != "" {
		u += "?window=" + url.QueryEscape(rawWindow)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(RingHeader, r.ringHash)
	sp := r.traceSpan(ctx, req, "scatter_leg", peer)
	t0 := r.obs.Start()
	defer func() {
		r.obs.PeerSince("scatter", peer, t0)
		sp.End()
	}()
	resp, err := r.client.Do(req)
	if err != nil {
		sp.Fail(err.Error())
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		sp.Fail(resp.Status)
		return nil, fmt.Errorf("shard query: %s", resp.Status)
	}
	pl := new(ShardPayload)
	if err := gob.NewDecoder(resp.Body).Decode(pl); err != nil {
		sp.Fail(err.Error())
		return nil, fmt.Errorf("decoding shard export: %w", err)
	}
	return pl, nil
}

// DigestEntry summarizes one pusher partition for anti-entropy: the
// highest sequence the dedup window has acked, how many batches the
// partition has merged all-time, and a checksum of its aggregate
// state. The merge count disambiguates equal-max comparisons: a blank
// node that caught mid-sequence hint replays can tie a survivor's max
// while holding only the replayed suffix, and without N the owner-wins
// checksum rule could propagate that incomplete copy.
type DigestEntry struct {
	Max uint64 `json:"max"`
	N   uint64 `json:"n"`
	Sum string `json:"sum"`
}

// Digest is one node's /v1/digest answer.
type Digest struct {
	Self    string                 `json:"self"`
	Ring    string                 `json:"ring"`
	Pushers map[string]DigestEntry `json:"pushers"`
}

// FetchDigest polls one peer's /v1/digest.
func (r *Router) FetchDigest(ctx context.Context, peer string) (*Digest, error) {
	ctx, cancel := context.WithTimeout(ctx, r.queryTO)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/digest", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(RingHeader, r.ringHash)
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("digest query: %s", resp.Status)
	}
	d := new(Digest)
	if err := json.NewDecoder(resp.Body).Decode(d); err != nil {
		return nil, fmt.Errorf("decoding digest: %w", err)
	}
	return d, nil
}

// PartitionTransfer is the unit anti-entropy repair pulls: one
// pusher's full bucket-structured history plus the dedup window that
// guards it, so the adopting node re-acks (never re-merges) retries of
// sequences the source had already acked.
type PartitionTransfer struct {
	Image     *store.PartitionImage
	DedupMax  uint64
	DedupBits []uint64
}

// FetchPartition pulls one pusher's transferable partition from a
// peer's /v1/shard?pusher= export.
func (r *Router) FetchPartition(ctx context.Context, peer, pusherID string) (*PartitionTransfer, error) {
	ctx, cancel := context.WithTimeout(ctx, r.queryTO)
	defer cancel()
	u := peer + "/v1/shard?pusher=" + url.QueryEscape(pusherID)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(RingHeader, r.ringHash)
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("partition query: %s", resp.Status)
	}
	pt := new(PartitionTransfer)
	if err := gob.NewDecoder(resp.Body).Decode(pt); err != nil {
		return nil, fmt.Errorf("decoding partition transfer: %w", err)
	}
	return pt, nil
}

// FetchTrace pulls one peer's locally retained spans for a trace ID
// (the scope=local leg of a /v1/trace gather — legs never recurse).
func (r *Router) FetchTrace(ctx context.Context, peer, traceID string) ([]obs.Span, error) {
	ctx, cancel := context.WithTimeout(ctx, r.queryTO)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		peer+"/v1/trace/"+url.PathEscape(traceID)+"?scope=local", nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set(RingHeader, r.ringHash)
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, nil // peer holds no spans for this trace (or traces disabled)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("trace query: %s", resp.Status)
	}
	var body struct {
		Spans []obs.Span `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("decoding trace: %w", err)
	}
	return body.Spans, nil
}

// PeerHealth is one peer's row in the fleet health view.
type PeerHealth struct {
	Peer     string       `json:"peer"`
	Err      string       `json:"error,omitempty"`
	Status   string       `json:"status,omitempty"`
	State    string       `json:"state,omitempty"`
	Ring     string       `json:"ring,omitempty"`
	Profiles uint64       `json:"profiles"`
	Batches  uint64       `json:"batches"`
	Health   witch.Health `json:"health"`
}

// PeerHealths polls every other peer's local /healthz concurrently
// and returns one row per peer in sorted order; an unreachable peer's
// row carries Err and zero values. The caller folds the rows into the
// fleet view with agg.MergeHealth (flags OR, counters sum) and can
// compare Ring against its own hash to spot membership skew.
func (r *Router) PeerHealths(ctx context.Context) []PeerHealth {
	out := make([]PeerHealth, len(r.others))
	var wg sync.WaitGroup
	for i, peer := range r.others {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			out[i] = r.fetchHealth(ctx, peer)
		}(i, peer)
	}
	wg.Wait()
	return out
}

func (r *Router) fetchHealth(ctx context.Context, peer string) PeerHealth {
	ph := PeerHealth{Peer: peer}
	ctx, cancel := context.WithTimeout(ctx, r.queryTO)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
	if err != nil {
		ph.Err = err.Error()
		return ph
	}
	resp, err := r.client.Do(req)
	if err != nil {
		ph.Err = err.Error()
		return ph
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&ph); err != nil {
		ph.Err = fmt.Sprintf("decoding healthz: %v", err)
		return ph
	}
	ph.Peer = peer // never trust the body to overwrite the row key
	ph.Err = ""
	return ph
}
