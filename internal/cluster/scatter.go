package cluster

import (
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sync"

	"repro/internal/agg"
	"repro/witch"
)

// ShardResult is one peer's leg of a scatter-gather query: either its
// exported aggregate State for the requested window, or the error
// that made this leg partial.
type ShardResult struct {
	Peer  string
	State *agg.State
	Err   error
}

// ScatterStates fans a window query out to every other peer's
// /v1/shard and gathers the raw shard images. Results come back in
// peer order (sorted), one entry per peer, errors in place — the
// caller merges the successes with agg.MergeState and reports the
// failures as the query's Incomplete set rather than failing the
// query. rawWindow is passed through verbatim (the caller already
// validated it against its own parser, which is the same parser the
// peer will use).
//
// Scatter legs deliberately ignore the forwarding breakers: those
// track the ingest path, and a peer refusing writes can still answer
// reads. Each leg is bounded by QueryTimeout instead.
func (r *Router) ScatterStates(ctx context.Context, rawWindow string) []ShardResult {
	r.scatters.Add(1)
	out := make([]ShardResult, len(r.others))
	var wg sync.WaitGroup
	for i, peer := range r.others {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			st, err := r.fetchShard(ctx, peer, rawWindow)
			out[i] = ShardResult{Peer: peer, State: st, Err: err}
		}(i, peer)
	}
	wg.Wait()
	partial := false
	for _, sr := range out {
		if sr.Err != nil {
			partial = true
			if r.logf != nil {
				r.logf("cluster: scatter leg %s failed: %v", sr.Peer, sr.Err)
			}
		}
	}
	if partial {
		r.scatterPartials.Add(1)
	}
	return out
}

func (r *Router) fetchShard(ctx context.Context, peer, rawWindow string) (*agg.State, error) {
	ctx, cancel := context.WithTimeout(ctx, r.queryTO)
	defer cancel()
	u := peer + "/v1/shard"
	if rawWindow != "" {
		u += "?window=" + url.QueryEscape(rawWindow)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard query: %s", resp.Status)
	}
	st := new(agg.State)
	if err := gob.NewDecoder(resp.Body).Decode(st); err != nil {
		return nil, fmt.Errorf("decoding shard state: %w", err)
	}
	return st, nil
}

// PeerHealth is one peer's row in the fleet health view.
type PeerHealth struct {
	Peer     string       `json:"peer"`
	Err      string       `json:"error,omitempty"`
	Status   string       `json:"status,omitempty"`
	State    string       `json:"state,omitempty"`
	Profiles uint64       `json:"profiles"`
	Batches  uint64       `json:"batches"`
	Health   witch.Health `json:"health"`
}

// PeerHealths polls every other peer's local /healthz concurrently
// and returns one row per peer in sorted order; an unreachable peer's
// row carries Err and zero values. The caller folds the rows into the
// fleet view with agg.MergeHealth (flags OR, counters sum).
func (r *Router) PeerHealths(ctx context.Context) []PeerHealth {
	out := make([]PeerHealth, len(r.others))
	var wg sync.WaitGroup
	for i, peer := range r.others {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			out[i] = r.fetchHealth(ctx, peer)
		}(i, peer)
	}
	wg.Wait()
	return out
}

func (r *Router) fetchHealth(ctx context.Context, peer string) PeerHealth {
	ph := PeerHealth{Peer: peer}
	ctx, cancel := context.WithTimeout(ctx, r.queryTO)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
	if err != nil {
		ph.Err = err.Error()
		return ph
	}
	resp, err := r.client.Do(req)
	if err != nil {
		ph.Err = err.Error()
		return ph
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&ph); err != nil {
		ph.Err = fmt.Sprintf("decoding healthz: %v", err)
		return ph
	}
	ph.Peer = peer // never trust the body to overwrite the row key
	ph.Err = ""
	return ph
}
