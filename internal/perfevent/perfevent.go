// Package perfevent models the slice of the Linux perf_event interface
// that Witch is built on: opening sampling events and HW_BREAKPOINT
// (watchpoint) events, per-event ring buffers, the
// PERF_EVENT_IOC_MODIFY_ATTRIBUTES fast-replacement ioctl the authors
// contributed to the kernel (§5), and precise-PC recovery for watchpoint
// traps via the Last Branch Record (LBR) fast path or whole-function
// linear disassembly as the slow path.
//
// The cost structure is preserved, not just the API shape: creating a
// watchpoint event allocates kernel resources (a ring buffer) while
// modifying one only rewrites attributes, and LBR-based precise-PC
// recovery disassembles a basic block while the fallback disassembles from
// the function entry — so the two ~5% optimizations the paper describes
// are measurable ablations here too.
package perfevent

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/hwdebug"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/pmu"
)

// ErrBusy is the EBUSY of perf_event_open: the requested debug register
// is held by another agent (or the kernel transiently refuses it).
var ErrBusy = errors.New("perfevent: EBUSY: debug register busy")

// Options configures a Session.
type Options struct {
	// FastModify enables PERF_EVENT_IOC_MODIFY_ATTRIBUTES: reprogramming
	// an existing watchpoint fd in place instead of close+reopen.
	FastModify bool
	// UseLBR enables the Last Branch Record fast path for precise-PC
	// recovery on watchpoint traps.
	UseLBR bool
	// RingBytes is the size of the per-event mmap ring buffer.
	RingBytes int
	// Faults injects substrate failures (nil = never fail, the
	// pre-fault-injection behaviour, bit for bit).
	Faults *fault.Injector
}

// SessionStats are the session's kernel-resource and degradation
// counters (ablation reports and Profile.Health both read them).
type SessionStats struct {
	Opens        uint64 // watchpoint + sampling fd opens
	Closes       uint64
	Modifies     uint64 // successful IOC_MODIFY_ATTRIBUTES calls
	DisasmInstrs uint64 // instructions decoded for precise-PC recovery

	RingLost        uint64 // trap records lost to ring overflow (natural + injected)
	ArmRejects      uint64 // watchpoint creations refused with EBUSY
	ModifyFallbacks uint64 // Modify calls forced onto close+reopen by injection
	LBROutages      uint64 // precise-PC recoveries with the LBR unavailable
}

// Session wires a machine's simulated hardware to profiler callbacks.
type Session struct {
	m    *machine.Machine
	prog *isa.Program
	opts Options

	// openFDs counts live event fds, closedFDs total closes — the
	// fast-replacement ablation shows up directly in these.
	openFDs, totalOpens, totalCloses, totalModifies uint64

	// DisasmInstrs counts instructions decoded during precise-PC
	// recovery (the LBR ablation's work metric).
	DisasmInstrs uint64

	ringBytes uint64 // total live ring-buffer bytes (memory accounting)

	// Degradation counters (see SessionStats).
	ringLost, armRejects, modifyFallbacks, lbrOutages uint64
}

// NewSession opens a perf session on the machine.
func NewSession(m *machine.Machine, opts Options) *Session {
	if opts.RingBytes == 0 {
		opts.RingBytes = 4096
	}
	return &Session{m: m, prog: m.Prog, opts: opts}
}

// Stats reports kernel-resource and degradation counters.
func (s *Session) Stats() SessionStats {
	return SessionStats{
		Opens:        s.totalOpens,
		Closes:       s.totalCloses,
		Modifies:     s.totalModifies,
		DisasmInstrs: s.DisasmInstrs,

		RingLost:        s.ringLost,
		ArmRejects:      s.armRejects,
		ModifyFallbacks: s.modifyFallbacks,
		LBROutages:      s.lbrOutages,
	}
}

// RingBytes returns live ring-buffer memory attributable to the session.
func (s *Session) RingBytes() uint64 { return s.ringBytes }

// OpenSampling programs every thread's PMU (a PERF_TYPE_RAW sampling event
// with precise_ip set, in Linux terms) and installs the handler.
func (s *Session) OpenSampling(event pmu.Event, period uint64, h machine.SampleHandler) {
	s.m.AttachSampler(event, period, h)
	s.totalOpens++
	s.openFDs++
	s.ringBytes += uint64(s.opts.RingBytes)
}

// SetTrapDispatch installs the session-wide watchpoint exception handler.
func (s *Session) SetTrapDispatch(h machine.TrapHandler) {
	s.m.SetTrapHandler(h)
}

// WatchFD is a HW_BREAKPOINT perf event: one debug register on one thread
// plus its kernel resources (fd + mmap ring).
type WatchFD struct {
	s      *Session
	thread *machine.Thread
	reg    int
	open   bool
	ring   []byte // simulated mmap ring buffer backing store
	recs   *ring  // decoded-record view of the ring
}

// CreateWatchpoint opens a HW_BREAKPOINT event bound to debug register reg
// of thread t and arms it. sample_period is 1: the trap signal is
// delivered synchronously on the access. It fails with ErrBusy when the
// register is held by an external agent or the fault injector refuses the
// open, exactly as perf_event_open fails with EBUSY in production.
func (s *Session) CreateWatchpoint(t *machine.Thread, reg int, addr uint64, length uint8, kind hwdebug.Kind, cookie any, armedAt uint64) (*WatchFD, error) {
	if t.Watch.Reserved(reg) || s.opts.Faults.Should(fault.ArmEBUSY) {
		s.armRejects++
		return nil, ErrBusy
	}
	fd := &WatchFD{s: s, thread: t, reg: reg, open: true, ring: make([]byte, s.opts.RingBytes)}
	// Touch the ring so the allocation is not optimized away and models
	// the kernel zeroing pages for the mmap.
	for i := range fd.ring {
		fd.ring[i] = 0
	}
	s.totalOpens++
	s.openFDs++
	s.ringBytes += uint64(len(fd.ring))
	t.Watch.Arm(reg, addr, length, kind, cookie, armedAt)
	return fd, nil
}

// Modify reprograms the watchpoint. With FastModify (the paper's
// PERF_EVENT_IOC_MODIFY_ATTRIBUTES kernel patch) the existing fd and ring
// are reused; otherwise — or when the fault injector withholds the ioctl,
// as on a pre-patch kernel — the kernel resources are torn down and
// recreated, which is what Witch had to do before the patch. On the
// close+reopen path the reopen itself can fail with ErrBusy; the old fd
// is already closed then, so the caller holds no watchpoint either way.
func (fd *WatchFD) Modify(addr uint64, length uint8, kind hwdebug.Kind, cookie any, armedAt uint64) (*WatchFD, error) {
	if !fd.open {
		panic("perfevent: Modify on closed fd")
	}
	if fd.s.opts.FastModify {
		if !fd.s.opts.Faults.Should(fault.ModifyFail) {
			fd.s.totalModifies++
			fd.thread.Watch.Arm(fd.reg, addr, length, kind, cookie, armedAt)
			return fd, nil
		}
		fd.s.modifyFallbacks++
	}
	t, reg, s := fd.thread, fd.reg, fd.s
	fd.Close()
	return s.CreateWatchpoint(t, reg, addr, length, kind, cookie, armedAt)
}

// Disarm deactivates the debug register but keeps the fd open for reuse
// (the event is disabled, not closed). Disarm on a closed fd is a no-op:
// after a close+reopen replacement the same register belongs to the
// successor fd, and a stale handle must not tear that watchpoint down.
func (fd *WatchFD) Disarm() {
	if !fd.open {
		return
	}
	fd.thread.Watch.Disarm(fd.reg)
}

// Close releases the kernel resources.
func (fd *WatchFD) Close() {
	if !fd.open {
		return
	}
	fd.open = false
	fd.thread.Watch.Disarm(fd.reg)
	fd.s.totalCloses++
	fd.s.openFDs--
	fd.s.ringBytes -= uint64(len(fd.ring))
	fd.ring = nil
}

// PrecisePC recovers the PC of the instruction that caused a watchpoint
// trap from the contextPC visible in the signal frame (which on x86 is one
// instruction *past* the trapping instruction). With UseLBR it
// disassembles forward from the target of the last recorded taken branch —
// a basic block at most — otherwise from the function entry, exactly the
// two strategies §5 of the paper contrasts.
func (s *Session) PrecisePC(t *machine.Thread, contextPC isa.PC) (isa.PC, error) {
	fn := contextPC.Func()
	target := contextPC.Index()
	if target == 0 {
		return 0, fmt.Errorf("perfevent: contextPC %v is at a function start", contextPC)
	}
	start := 0
	useLBR := s.opts.UseLBR
	if useLBR && s.opts.Faults.Should(fault.LBROutage) {
		// Transient LBR unavailability (capture disabled, freeze raced,
		// or the record was overwritten): fall back to linear
		// disassembly from the function entry for this recovery only.
		s.lbrOutages++
		useLBR = false
	}
	if useLBR {
		if br, ok := t.LastBranch(); ok && br.To.Func() == fn && br.To.Index() < target {
			start = br.To.Index()
		}
	}
	f := s.prog.Funcs[fn]
	// Linear disassembly from start: decode each instruction until the
	// one preceding contextPC. Decoding does real (checksum) work so the
	// LBR-vs-function-entry cost difference is honest.
	var sum uint64
	idx := start
	for ; idx < target-1; idx++ {
		in := &f.Code[idx]
		sum += uint64(in.Op)<<8 ^ uint64(in.Width) ^ uint64(in.Imm)
		s.DisasmInstrs++
	}
	_ = sum
	return isa.MakePC(fn, target-1), nil
}
