package perfevent

import (
	"testing"

	"repro/internal/hwdebug"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/pmu"
)

// loopProg returns a program with one function containing a long straight
// run of stores after a loop back-edge, for precise-PC tests.
func loopProg() *isa.Program {
	b := isa.NewBuilder("t")
	f := b.Func("main")
	f.MovImm(isa.R1, 0x100)
	f.LoopN(isa.R2, 50, func(fb *isa.FuncBuilder) {
		for i := 0; i < 10; i++ {
			fb.Store(isa.R1, int64(i*8), isa.R2, 8)
		}
	})
	f.Halt()
	return b.MustBuild()
}

func TestWatchpointLifecycle(t *testing.T) {
	m := machine.New(loopProg(), machine.Config{})
	s := NewSession(m, Options{FastModify: true, UseLBR: true})
	th := m.Threads[0]

	fd := s.CreateWatchpoint(th, 0, 0x100, 8, hwdebug.RWTrap, "c1", 1)
	if th.Watch.Armed() != 1 {
		t.Fatal("watchpoint not armed")
	}
	fd2 := fd.Modify(0x108, 8, hwdebug.WTrap, "c2", 2)
	if fd2 != fd {
		t.Fatal("fast modify must reuse the fd")
	}
	if wp := th.Watch.Reg(0); wp.Addr != 0x108 || wp.Kind != hwdebug.WTrap {
		t.Fatalf("modify did not reprogram: %+v", wp)
	}
	opens, closes, modifies, _ := s.Stats()
	if opens != 1 || closes != 0 || modifies != 1 {
		t.Fatalf("opens/closes/modifies = %d/%d/%d", opens, closes, modifies)
	}
	fd.Close()
	if th.Watch.Armed() != 0 {
		t.Fatal("close must disarm")
	}
	fd.Close() // idempotent
	if _, closes, _, _ := s.Stats(); closes != 1 {
		t.Fatalf("closes = %d", closes)
	}
}

func TestSlowModifyReopens(t *testing.T) {
	m := machine.New(loopProg(), machine.Config{})
	s := NewSession(m, Options{FastModify: false})
	th := m.Threads[0]
	fd := s.CreateWatchpoint(th, 0, 0x100, 8, hwdebug.RWTrap, nil, 0)
	fd2 := fd.Modify(0x108, 8, hwdebug.RWTrap, nil, 0)
	if fd2 == fd {
		t.Fatal("slow modify must return a new fd")
	}
	opens, closes, modifies, _ := s.Stats()
	if opens != 2 || closes != 1 || modifies != 0 {
		t.Fatalf("opens/closes/modifies = %d/%d/%d", opens, closes, modifies)
	}
}

func TestRingBytesAccounting(t *testing.T) {
	m := machine.New(loopProg(), machine.Config{})
	s := NewSession(m, Options{FastModify: true, RingBytes: 4096})
	th := m.Threads[0]
	fd := s.CreateWatchpoint(th, 0, 0x100, 8, hwdebug.RWTrap, nil, 0)
	if s.RingBytes() != 4096 {
		t.Fatalf("ring bytes = %d", s.RingBytes())
	}
	fd.Close()
	if s.RingBytes() != 0 {
		t.Fatalf("ring bytes after close = %d", s.RingBytes())
	}
}

func TestPrecisePCRecovery(t *testing.T) {
	// Run the program, capture a watchpoint trap, and verify the
	// recovered precise PC is the instruction before the contextPC and
	// is a store.
	prog := loopProg()
	for _, useLBR := range []bool{true, false} {
		m := machine.New(prog, machine.Config{})
		s := NewSession(m, Options{FastModify: true, UseLBR: useLBR})
		th := m.Threads[0]
		var recovered []isa.PC
		s.SetTrapDispatch(func(th *machine.Thread, tr hwdebug.Trap) {
			pc, err := s.PrecisePC(th, tr.ContextPC)
			if err != nil {
				t.Fatal(err)
			}
			recovered = append(recovered, pc)
			th.Watch.Disarm(tr.Reg)
		})
		s.CreateWatchpoint(th, 0, 0x100+3*8, 8, hwdebug.RWTrap, nil, 0)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if len(recovered) != 1 {
			t.Fatalf("traps = %d", len(recovered))
		}
		in := prog.InstrAt(recovered[0])
		if in == nil || in.Op != isa.OpStore {
			t.Fatalf("useLBR=%v: precise PC %v is not a store", useLBR, recovered[0])
		}
		if in.Imm != 3*8 {
			t.Fatalf("useLBR=%v: wrong store recovered (offset %d)", useLBR, in.Imm)
		}
	}
}

func TestLBRPathDecodesFewerInstructions(t *testing.T) {
	prog := loopProg()
	work := map[bool]uint64{}
	for _, useLBR := range []bool{true, false} {
		m := machine.New(prog, machine.Config{})
		s := NewSession(m, Options{FastModify: true, UseLBR: useLBR})
		th := m.Threads[0]
		// Leave the watchpoint armed: later traps occur after the loop
		// back-edge, where the LBR fast path starts from the branch
		// target instead of the function entry.
		s.SetTrapDispatch(func(th *machine.Thread, tr hwdebug.Trap) {
			if _, err := s.PrecisePC(th, tr.ContextPC); err != nil {
				t.Fatal(err)
			}
		})
		s.CreateWatchpoint(th, 0, 0x100+9*8, 8, hwdebug.RWTrap, nil, 0)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		_, _, _, disasm := s.Stats()
		work[useLBR] = disasm
	}
	if work[true] >= work[false] {
		t.Fatalf("LBR should decode less: lbr=%d full=%d", work[true], work[false])
	}
}

func TestPrecisePCAtFunctionStartErrors(t *testing.T) {
	m := machine.New(loopProg(), machine.Config{})
	s := NewSession(m, Options{})
	if _, err := s.PrecisePC(m.Threads[0], isa.MakePC(0, 0)); err == nil {
		t.Fatal("expected error for contextPC at function start")
	}
}

func TestOpenSamplingWiresPMU(t *testing.T) {
	m := machine.New(loopProg(), machine.Config{})
	s := NewSession(m, Options{})
	n := 0
	s.OpenSampling(pmu.EventAllStores, 100, func(th *machine.Thread, sm pmu.Sample) { n++ })
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 5 { // 500 stores / 100
		t.Fatalf("samples = %d, want 5", n)
	}
}
