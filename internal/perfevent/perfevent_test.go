package perfevent

import (
	"testing"

	"repro/internal/hwdebug"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/pmu"
)

// loopProg returns a program with one function containing a long straight
// run of stores after a loop back-edge, for precise-PC tests.
func loopProg() *isa.Program {
	b := isa.NewBuilder("t")
	f := b.Func("main")
	f.MovImm(isa.R1, 0x100)
	f.LoopN(isa.R2, 50, func(fb *isa.FuncBuilder) {
		for i := 0; i < 10; i++ {
			fb.Store(isa.R1, int64(i*8), isa.R2, 8)
		}
	})
	f.Halt()
	return b.MustBuild()
}

// mustWatch creates a watchpoint that is expected to succeed.
func mustWatch(t *testing.T, s *Session, th *machine.Thread, reg int, addr uint64, length uint8, kind hwdebug.Kind, cookie any, armedAt uint64) *WatchFD {
	t.Helper()
	fd, err := s.CreateWatchpoint(th, reg, addr, length, kind, cookie, armedAt)
	if err != nil {
		t.Fatalf("CreateWatchpoint: %v", err)
	}
	return fd
}

func TestWatchpointLifecycle(t *testing.T) {
	m := machine.New(loopProg(), machine.Config{})
	s := NewSession(m, Options{FastModify: true, UseLBR: true})
	th := m.Threads[0]

	fd := mustWatch(t, s, th, 0, 0x100, 8, hwdebug.RWTrap, "c1", 1)
	if th.Watch.Armed() != 1 {
		t.Fatal("watchpoint not armed")
	}
	fd2, err := fd.Modify(0x108, 8, hwdebug.WTrap, "c2", 2)
	if err != nil {
		t.Fatal(err)
	}
	if fd2 != fd {
		t.Fatal("fast modify must reuse the fd")
	}
	if wp := th.Watch.Reg(0); wp.Addr != 0x108 || wp.Kind != hwdebug.WTrap {
		t.Fatalf("modify did not reprogram: %+v", wp)
	}
	st := s.Stats()
	if st.Opens != 1 || st.Closes != 0 || st.Modifies != 1 {
		t.Fatalf("opens/closes/modifies = %d/%d/%d", st.Opens, st.Closes, st.Modifies)
	}
	fd.Close()
	if th.Watch.Armed() != 0 {
		t.Fatal("close must disarm")
	}
	fd.Close() // idempotent
	if st := s.Stats(); st.Closes != 1 {
		t.Fatalf("closes = %d", st.Closes)
	}
}

func TestSlowModifyReopens(t *testing.T) {
	m := machine.New(loopProg(), machine.Config{})
	s := NewSession(m, Options{FastModify: false})
	th := m.Threads[0]
	fd := mustWatch(t, s, th, 0, 0x100, 8, hwdebug.RWTrap, nil, 0)
	fd2, err := fd.Modify(0x108, 8, hwdebug.RWTrap, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if fd2 == fd {
		t.Fatal("slow modify must return a new fd")
	}
	st := s.Stats()
	if st.Opens != 2 || st.Closes != 1 || st.Modifies != 0 {
		t.Fatalf("opens/closes/modifies = %d/%d/%d", st.Opens, st.Closes, st.Modifies)
	}
}

// TestStaleFDIsInert is the idempotence regression test: after a slow
// Modify replaced the fd, the stale handle's Disarm and Close must not
// touch the successor's watchpoint or the session accounting.
func TestStaleFDIsInert(t *testing.T) {
	m := machine.New(loopProg(), machine.Config{})
	s := NewSession(m, Options{FastModify: false})
	th := m.Threads[0]
	stale := mustWatch(t, s, th, 0, 0x100, 8, hwdebug.RWTrap, nil, 0)
	live, err := stale.Modify(0x108, 8, hwdebug.RWTrap, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	ringBefore := s.RingBytes()

	stale.Disarm() // must not disarm the successor's register
	if th.Watch.Armed() != 1 {
		t.Fatal("stale Disarm tore down the successor watchpoint")
	}
	stale.Close() // must not double-count closes or free the live ring
	stale.Close()
	if got := s.Stats(); got != before {
		t.Fatalf("stale Close changed accounting: %+v -> %+v", before, got)
	}
	if s.RingBytes() != ringBefore {
		t.Fatalf("stale Close freed live ring bytes: %d -> %d", ringBefore, s.RingBytes())
	}

	live.Close()
	live.Close() // double close of the live fd is also idempotent
	if got := s.Stats(); got.Closes != before.Closes+1 || got.Opens != before.Opens {
		t.Fatalf("close accounting corrupt: %+v", got)
	}
	if th.Watch.Armed() != 0 {
		t.Fatal("live close must disarm")
	}
}

func TestRingBytesAccounting(t *testing.T) {
	m := machine.New(loopProg(), machine.Config{})
	s := NewSession(m, Options{FastModify: true, RingBytes: 4096})
	th := m.Threads[0]
	fd := mustWatch(t, s, th, 0, 0x100, 8, hwdebug.RWTrap, nil, 0)
	if s.RingBytes() != 4096 {
		t.Fatalf("ring bytes = %d", s.RingBytes())
	}
	fd.Close()
	if s.RingBytes() != 0 {
		t.Fatalf("ring bytes after close = %d", s.RingBytes())
	}
}

func TestPrecisePCRecovery(t *testing.T) {
	// Run the program, capture a watchpoint trap, and verify the
	// recovered precise PC is the instruction before the contextPC and
	// is a store.
	prog := loopProg()
	for _, useLBR := range []bool{true, false} {
		m := machine.New(prog, machine.Config{})
		s := NewSession(m, Options{FastModify: true, UseLBR: useLBR})
		th := m.Threads[0]
		var recovered []isa.PC
		s.SetTrapDispatch(func(th *machine.Thread, tr hwdebug.Trap) {
			pc, err := s.PrecisePC(th, tr.ContextPC)
			if err != nil {
				t.Fatal(err)
			}
			recovered = append(recovered, pc)
			th.Watch.Disarm(tr.Reg)
		})
		mustWatch(t, s, th, 0, 0x100+3*8, 8, hwdebug.RWTrap, nil, 0)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		if len(recovered) != 1 {
			t.Fatalf("traps = %d", len(recovered))
		}
		in := prog.InstrAt(recovered[0])
		if in == nil || in.Op != isa.OpStore {
			t.Fatalf("useLBR=%v: precise PC %v is not a store", useLBR, recovered[0])
		}
		if in.Imm != 3*8 {
			t.Fatalf("useLBR=%v: wrong store recovered (offset %d)", useLBR, in.Imm)
		}
	}
}

func TestLBRPathDecodesFewerInstructions(t *testing.T) {
	prog := loopProg()
	work := map[bool]uint64{}
	for _, useLBR := range []bool{true, false} {
		m := machine.New(prog, machine.Config{})
		s := NewSession(m, Options{FastModify: true, UseLBR: useLBR})
		th := m.Threads[0]
		// Leave the watchpoint armed: later traps occur after the loop
		// back-edge, where the LBR fast path starts from the branch
		// target instead of the function entry.
		s.SetTrapDispatch(func(th *machine.Thread, tr hwdebug.Trap) {
			if _, err := s.PrecisePC(th, tr.ContextPC); err != nil {
				t.Fatal(err)
			}
		})
		mustWatch(t, s, th, 0, 0x100+9*8, 8, hwdebug.RWTrap, nil, 0)
		if err := m.Run(); err != nil {
			t.Fatal(err)
		}
		work[useLBR] = s.Stats().DisasmInstrs
	}
	if work[true] >= work[false] {
		t.Fatalf("LBR should decode less: lbr=%d full=%d", work[true], work[false])
	}
}

func TestPrecisePCAtFunctionStartErrors(t *testing.T) {
	m := machine.New(loopProg(), machine.Config{})
	s := NewSession(m, Options{})
	if _, err := s.PrecisePC(m.Threads[0], isa.MakePC(0, 0)); err == nil {
		t.Fatal("expected error for contextPC at function start")
	}
}

func TestOpenSamplingWiresPMU(t *testing.T) {
	m := machine.New(loopProg(), machine.Config{})
	s := NewSession(m, Options{})
	n := 0
	s.OpenSampling(pmu.EventAllStores, 100, func(th *machine.Thread, sm pmu.Sample) { n++ })
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if n != 5 { // 500 stores / 100
		t.Fatalf("samples = %d, want 5", n)
	}
}
