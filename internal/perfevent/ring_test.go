package perfevent

import (
	"testing"

	"repro/internal/hwdebug"
	"repro/internal/isa"
	"repro/internal/machine"
)

func TestRingWriteDrain(t *testing.T) {
	r := newRing(recordBytes * 4)
	if r.capacity() != 4 {
		t.Fatalf("capacity = %d", r.capacity())
	}
	for i := uint64(1); i <= 3; i++ {
		r.write(Record{Seq: i, Addr: 100 * i, Kind: 1, Width: 8, TID: 7, ContextPC: isa.MakePC(1, int(i)), Value: i})
	}
	recs := r.drain()
	if len(recs) != 3 {
		t.Fatalf("drained %d", len(recs))
	}
	for i, rec := range recs {
		want := uint64(i + 1)
		if rec.Seq != want || rec.Addr != 100*want || rec.Value != want {
			t.Fatalf("record %d = %+v", i, rec)
		}
		if rec.TID != 7 || rec.Kind != 1 || rec.Width != 8 {
			t.Fatalf("record %d fields = %+v", i, rec)
		}
		if rec.ContextPC != isa.MakePC(1, int(want)) {
			t.Fatalf("record %d pc = %v", i, rec.ContextPC)
		}
	}
	// Drain consumes.
	if len(r.drain()) != 0 {
		t.Fatal("drain should consume")
	}
}

func TestRingOverwritesOldest(t *testing.T) {
	r := newRing(recordBytes * 2)
	for i := uint64(1); i <= 5; i++ {
		r.write(Record{Seq: i})
	}
	recs := r.drain()
	if len(recs) != 2 || recs[0].Seq != 4 || recs[1].Seq != 5 {
		t.Fatalf("overwrite semantics wrong: %+v", recs)
	}
}

// TestRingCountsLostRecords overflows the ring and checks every
// overwritten record is counted, not silently dropped.
func TestRingCountsLostRecords(t *testing.T) {
	r := newRing(recordBytes * 2)
	for i := uint64(1); i <= 5; i++ {
		lost := r.write(Record{Seq: i})
		if want := i > 2; lost != want {
			t.Fatalf("write %d: overflowed=%v, want %v", i, lost, want)
		}
	}
	if r.Lost() != 3 {
		t.Fatalf("lost = %d, want 3", r.Lost())
	}
	// Draining frees space: the next writes do not lose records, and the
	// historical loss count is preserved.
	r.drain()
	r.write(Record{Seq: 6})
	if r.Lost() != 3 {
		t.Fatalf("lost after drain = %d, want 3", r.Lost())
	}
}

// TestSessionSurfacesRingLost overflows a watchpoint fd's ring during a
// run and checks the loss shows up in Session.Stats().
func TestSessionSurfacesRingLost(t *testing.T) {
	m := machine.New(loopProg(), machine.Config{})
	// One-record ring: every trap after the first overwrites.
	s := NewSession(m, Options{FastModify: true, RingBytes: recordBytes})
	th := m.Threads[0]
	fd, err := s.CreateWatchpoint(th, 0, 0x100, 8, hwdebug.RWTrap, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	traps := uint64(0)
	s.SetTrapDispatch(func(th *machine.Thread, tr hwdebug.Trap) {
		traps++
		fd.RecordTrap(tr, traps)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if traps < 2 {
		t.Fatalf("need >= 2 traps to overflow, got %d", traps)
	}
	if got := s.Stats().RingLost; got != traps-1 {
		t.Fatalf("RingLost = %d, want %d", got, traps-1)
	}
	if fd.Lost() != traps-1 {
		t.Fatalf("fd.Lost() = %d, want %d", fd.Lost(), traps-1)
	}
}

func TestWatchFDRecordsTraps(t *testing.T) {
	m := machine.New(loopProg(), machine.Config{})
	s := NewSession(m, Options{FastModify: true})
	th := m.Threads[0]
	fd, err := s.CreateWatchpoint(th, 0, 0x100, 8, hwdebug.RWTrap, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	seq := uint64(0)
	s.SetTrapDispatch(func(th *machine.Thread, tr hwdebug.Trap) {
		seq++
		fd.RecordTrap(tr, seq)
	})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	recs := fd.ReadRecords()
	if len(recs) == 0 {
		t.Fatal("no trap records")
	}
	if recs[len(recs)-1].Seq != seq {
		t.Fatalf("last record seq = %d, want %d", recs[len(recs)-1].Seq, seq)
	}
	if recs[0].Addr != 0x100 {
		t.Fatalf("record addr = %#x", recs[0].Addr)
	}
}
