package perfevent

import (
	"encoding/binary"

	"repro/internal/fault"
	"repro/internal/hwdebug"
	"repro/internal/isa"
)

// Record is a decoded entry from an event's mmap ring buffer, modelled on
// PERF_RECORD_SAMPLE: the kernel appends one for every watchpoint trap so
// user space can consume trap details (precise PC candidates, address,
// access kind) without extra syscalls — this is the "ring buffer
// associated with the event" that §5 says carries the kernel-recovered
// precise PC to Witch's exception handler.
type Record struct {
	Seq       uint64
	TID       uint32
	Kind      uint8 // 0 load, 1 store
	Width     uint8
	ContextPC isa.PC
	Addr      uint64
	Value     uint64
}

// recordBytes is the fixed on-ring encoding size.
const recordBytes = 8 + 4 + 1 + 1 + 2 /*pad*/ + 8 + 8 + 8

// ring is a fixed-size overwriting circular buffer, like a perf mmap ring
// running in overwrite mode: when full, the oldest record is lost.
type ring struct {
	buf   []byte
	head  uint64 // total bytes ever written
	count int    // records currently readable
	lost  uint64 // records overwritten before ever being drained
}

func newRing(bytes int) *ring {
	n := bytes / recordBytes
	if n < 1 {
		n = 1
	}
	return &ring{buf: make([]byte, n*recordBytes)}
}

// capacity returns how many records fit.
func (r *ring) capacity() int { return len(r.buf) / recordBytes }

// Lost returns how many records have been overwritten unread (ring
// overflow). Real perf rings running in overwrite mode lose the oldest
// records the same way; the kernel's non-overwrite mode reports the loss
// as PERF_RECORD_LOST, which this counter stands in for.
func (r *ring) Lost() uint64 { return r.lost }

// write appends one record, overwriting the oldest when full, and
// reports whether an unread record was lost to make room.
func (r *ring) write(rec Record) (overflowed bool) {
	if r.count == r.capacity() {
		r.lost++
		overflowed = true
	}
	off := int(r.head) % len(r.buf)
	b := r.buf[off : off+recordBytes]
	binary.LittleEndian.PutUint64(b[0:], rec.Seq)
	binary.LittleEndian.PutUint32(b[8:], rec.TID)
	b[12] = rec.Kind
	b[13] = rec.Width
	binary.LittleEndian.PutUint64(b[16:], uint64(rec.ContextPC))
	binary.LittleEndian.PutUint64(b[24:], rec.Addr)
	binary.LittleEndian.PutUint64(b[32:], rec.Value)
	r.head += recordBytes
	if r.count < r.capacity() {
		r.count++
	}
	return overflowed
}

// drain returns and consumes all readable records, oldest first.
func (r *ring) drain() []Record {
	out := make([]Record, 0, r.count)
	start := r.head - uint64(r.count*recordBytes)
	for i := 0; i < r.count; i++ {
		off := int(start+uint64(i*recordBytes)) % len(r.buf)
		b := r.buf[off : off+recordBytes]
		out = append(out, Record{
			Seq:       binary.LittleEndian.Uint64(b[0:]),
			TID:       binary.LittleEndian.Uint32(b[8:]),
			Kind:      b[12],
			Width:     b[13],
			ContextPC: isa.PC(binary.LittleEndian.Uint64(b[16:])),
			Addr:      binary.LittleEndian.Uint64(b[24:]),
			Value:     binary.LittleEndian.Uint64(b[32:]),
		})
	}
	r.count = 0
	return out
}

// RecordTrap appends a trap record to the fd's ring buffer (the machine's
// trap dispatch calls this before invoking the user handler when ring
// recording is enabled). Overflow — natural, when user space drains too
// slowly for the trap rate, or injected — loses records; every loss is
// counted in the session's RingLost.
func (fd *WatchFD) RecordTrap(tr hwdebug.Trap, seq uint64) {
	if fd.s.opts.Faults.Should(fault.RingOverflow) {
		// The kernel wrapped before this record landed: it is gone.
		fd.s.ringLost++
		return
	}
	if fd.recs == nil {
		fd.recs = newRing(len(fd.ring))
	}
	if fd.recs.write(Record{
		Seq:       seq,
		TID:       uint32(tr.ThreadID),
		Kind:      uint8(tr.Kind),
		Width:     tr.Width,
		ContextPC: tr.ContextPC,
		Addr:      tr.Addr,
		Value:     tr.Value,
	}) {
		fd.s.ringLost++
	}
}

// Lost returns how many records this fd's ring has overwritten unread.
func (fd *WatchFD) Lost() uint64 {
	if fd.recs == nil {
		return 0
	}
	return fd.recs.Lost()
}

// ReadRecords drains the fd's ring buffer, oldest record first. Records
// lost to overwrite (ring overflow) are gone, exactly as with a real perf
// mmap ring in overwrite mode.
func (fd *WatchFD) ReadRecords() []Record {
	if fd.recs == nil {
		return nil
	}
	return fd.recs.drain()
}
