package workloads

import (
	"testing"

	"repro/internal/exhaustive"
	"repro/internal/isa"
	"repro/internal/machine"
)

func TestSuiteProgramsBuildAndRun(t *testing.T) {
	for _, sp := range Suite() {
		sp := sp
		t.Run(sp.Name, func(t *testing.T) {
			// Build at a tiny scale by shrinking iterations.
			small := sp
			small.Iters = 3
			prog := small.Build(1)
			if err := prog.Validate(); err != nil {
				t.Fatal(err)
			}
			m := machine.New(prog, machine.Config{MaxSteps: 50_000_000})
			if err := m.Run(); err != nil {
				t.Fatal(err)
			}
			th := m.Threads[0]
			if th.Stores == 0 || th.Loads == 0 {
				t.Fatalf("no memory traffic: loads=%d stores=%d", th.Loads, th.Stores)
			}
		})
	}
}

func TestSuiteHas29Benchmarks(t *testing.T) {
	if n := len(Suite()); n != 29 {
		t.Fatalf("suite size = %d, want 29 (SPEC CPU2006)", n)
	}
	seen := map[string]bool{}
	for _, sp := range Suite() {
		if seen[sp.Name] {
			t.Fatalf("duplicate benchmark %q", sp.Name)
		}
		seen[sp.Name] = true
	}
}

func TestSuiteSpecLookup(t *testing.T) {
	if _, ok := SuiteSpec("gcc"); !ok {
		t.Fatal("gcc missing")
	}
	if _, ok := SuiteSpec("nope"); ok {
		t.Fatal("unexpected benchmark")
	}
}

// TestTraitsShapeGroundTruth spot-checks that the trait mixes produce the
// intended qualitative structure in the exhaustive ground truth.
func TestTraitsShapeGroundTruth(t *testing.T) {
	dead := func(name string) float64 {
		sp, ok := SuiteSpec(name)
		if !ok {
			t.Fatalf("missing %s", name)
		}
		sp.Iters = 20
		prog := sp.Build(1)
		res, err := exhaustive.Run(machine.New(prog, machine.Config{}), exhaustive.NewDeadSpy(prog))
		if err != nil {
			t.Fatal(err)
		}
		return res.Redundancy()
	}
	if g, l := dead("gcc"), dead("lbm"); g < 0.45 || l > 0.1 || g <= l {
		t.Fatalf("dead ordering wrong: gcc=%.3f lbm=%.3f", g, l)
	}
}

func TestRecursiveBenchmarksBuildDeepStacks(t *testing.T) {
	sp, _ := SuiteSpec("sjeng")
	sp.Iters = 2
	prog := sp.Build(1)
	m := machine.New(prog, machine.Config{})
	maxDepth := 0
	m.SetObserver(depthObserver{&maxDepth})
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if maxDepth < sp.RecDepth {
		t.Fatalf("max call depth = %d, want >= %d", maxDepth, sp.RecDepth)
	}
}

type depthObserver struct{ max *int }

func (d depthObserver) OnAccess(t *machine.Thread, a *machine.Access) {}
func (d depthObserver) OnRet(t *machine.Thread)                       {}
func (d depthObserver) OnCall(t *machine.Thread, c int32, s isa.PC) {
	if depth := t.Depth(); depth > *d.max {
		*d.max = depth
	}
}

func TestListingsBuild(t *testing.T) {
	for name, p := range map[string]interface{ Validate() error }{
		"listing2":     Listing2(1000),
		"listing3":     Listing3(100, 2),
		"figure2":      Figure2(50, 2),
		"stacksignals": StackSignals(10),
	} {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestCaseStudiesFixedIsFaster(t *testing.T) {
	for _, cs := range CaseStudies() {
		cs := cs
		t.Run(cs.Name, func(t *testing.T) {
			buggy := machine.New(cs.Buggy(1), machine.Config{MaxSteps: 200_000_000})
			if err := buggy.Run(); err != nil {
				t.Fatal(err)
			}
			fixed := machine.New(cs.Fixed(1), machine.Config{MaxSteps: 200_000_000})
			if err := fixed.Run(); err != nil {
				t.Fatal(err)
			}
			bi, fi := buggy.Steps(), fixed.Steps()
			if fi >= bi {
				t.Fatalf("fixed (%d instrs) not faster than buggy (%d)", fi, bi)
			}
			speedup := float64(bi) / float64(fi)
			// The shape requirement: meaningful speedup, not orders of
			// magnitude off the paper's number.
			if speedup < 1.02 {
				t.Fatalf("speedup %.3f too small (paper: %.2f)", speedup, cs.PaperSpeedup)
			}
			if cs.PaperSpeedup < 2 && speedup > 4*cs.PaperSpeedup {
				t.Fatalf("speedup %.2f wildly exceeds paper's %.2f", speedup, cs.PaperSpeedup)
			}
		})
	}
}

func TestCaseStudyLookup(t *testing.T) {
	if _, ok := CaseStudyByName("binutils-dwarf2"); !ok {
		t.Fatal("missing binutils case")
	}
	if _, ok := CaseStudyByName("nope"); ok {
		t.Fatal("unexpected case")
	}
	if len(CaseStudies()) < 12 {
		t.Fatalf("only %d case studies", len(CaseStudies()))
	}
}

func TestFigure2RegionClassifier(t *testing.T) {
	for line, want := range map[int]string{
		LineA1: "a", LineA2: "a", LineB1: "b", LineB2: "b", LineX1: "x", LineX2: "x", 99: "?",
	} {
		if got := Figure2Region(line); got != want {
			t.Errorf("line %d → %q, want %q", line, got, want)
		}
	}
}
