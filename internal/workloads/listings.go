package workloads

import "repro/internal/isa"

// Program bases for listing/case-study workloads.
const (
	baseArray = 0x2000_0000
	baseP     = 0x2100_0000 // the aliased *p/*q cell of Listing 3
	baseA     = 0x2200_0000
	baseB     = 0x2300_0000
	baseX     = 0x2400_0000
	baseTable = 0x2500_0000
	baseWork  = 0x2600_0000
	baseList  = 0x2700_0000
	baseGlob  = 0x2800_0000
)

// Listing2 reproduces the paper's Listing 2: an i-loop zeroing
// array[0..n) followed by a j-loop overwriting every element — every store
// in the i-loop is dead, but the kill is separated from the store by ~n
// intervening samples, which defeats naive watchpoint replacement (§4.1).
func Listing2(n int64) *isa.Program {
	b := isa.NewBuilder("listing2")
	f := b.Func("main")
	f.LoopN(isa.R1, n, func(fb *isa.FuncBuilder) {
		fb.MulImm(isa.R5, isa.R1, 8)
		fb.AddImm(isa.R5, isa.R5, baseArray)
		fb.MovImm(isa.R6, 0)
		fb.Store(isa.R5, 0, isa.R6, 8) // array[i] = 0 (all dead)
	})
	f.LoopN(isa.R2, n, func(fb *isa.FuncBuilder) {
		fb.MulImm(isa.R5, isa.R2, 8)
		fb.AddImm(isa.R5, isa.R5, baseArray)
		fb.Store(isa.R5, 0, isa.R2, 8) // array[j] = j (the kill)
	})
	f.Halt()
	return b.MustBuild()
}

// Listing3 reproduces the paper's Listing 3: sparse long-distance dead
// stores (the i- and j-loops over array) mixed with a dense aliased
// dead-store pair (*p = 0; *q = 0 in the k-loop), the scenario that
// motivates proportional attribution (§4.2).
func Listing3(n, outer int64) *isa.Program {
	b := isa.NewBuilder("listing3")
	f := b.Func("main")
	// Source lines follow the paper's Listing 3: line 3 is the i-loop
	// store, lines 7/8 the aliased *p/*q stores, line 11 the j-loop store.
	f.LoopN(isa.R9, outer, func(fb *isa.FuncBuilder) {
		fb.LoopN(isa.R1, n, func(fb *isa.FuncBuilder) {
			fb.MulImm(isa.R5, isa.R1, 8)
			fb.AddImm(isa.R5, isa.R5, baseArray)
			fb.MovImm(isa.R6, 0)
			fb.Line(3).Store(isa.R5, 0, isa.R6, 8) // array[i] = 0
		})
		fb.LoopN(isa.R2, n, func(fb *isa.FuncBuilder) {
			fb.MovImm(isa.R5, baseP)
			fb.MovImm(isa.R6, 0)
			fb.Line(7).Store(isa.R5, 0, isa.R6, 8) // *p = 0 (dead)
			fb.Line(8).Store(isa.R5, 0, isa.R6, 8) // *q = 0 (kills; p and q alias)
		})
		fb.LoopN(isa.R3, n, func(fb *isa.FuncBuilder) {
			fb.MulImm(isa.R5, isa.R3, 8)
			fb.AddImm(isa.R5, isa.R5, baseArray)
			fb.MovImm(isa.R6, 0)
			fb.Line(11).Store(isa.R5, 0, isa.R6, 8) // array[j] = 0 (kills the i-loop)
		})
	})
	f.Halt()
	return b.MustBuild()
}

// Figure2 reproduces the Figure 2 scenario: regions a, b and the single
// cell x incur dead writes in a 3:2:1 byte ratio (50%:33%:17%), with the
// x pair adjacent in code (dense) while a and b are killed a full loop
// later (sparse). Correct proportional attribution recovers the ratio;
// replace-oldest or coin-flip replacement does not.
func Figure2(n, outer int64) *isa.Program {
	b := isa.NewBuilder("figure2")
	storeRegion := func(fb *isa.FuncBuilder, ctr isa.Reg, count int64, base int64, val isa.Reg, line int) {
		fb.LoopN(ctr, count, func(fb *isa.FuncBuilder) {
			fb.MulImm(isa.R5, ctr, 8)
			fb.AddImm(isa.R5, isa.R5, base)
			fb.Line(line).Store(isa.R5, 0, val, 8)
		})
	}
	f := b.Func("main")
	f.LoopN(isa.R9, outer, func(fb *isa.FuncBuilder) {
		fb.MovImm(isa.R6, 0)
		storeRegion(fb, isa.R1, 3*n, baseA, isa.R6, LineA1) // a[i] = 0   (dead)
		fb.MovImm(isa.R6, 1)
		storeRegion(fb, isa.R1, 3*n, baseA, isa.R6, LineA2) // a[i] = 1   (kill + dead)
		fb.MovImm(isa.R6, 0)
		storeRegion(fb, isa.R2, 2*n, baseB, isa.R6, LineB1) // b[i] = 0
		fb.MovImm(isa.R6, 1)
		storeRegion(fb, isa.R2, 2*n, baseB, isa.R6, LineB2) // b[i] = 1
		fb.LoopN(isa.R3, n, func(fb *isa.FuncBuilder) {
			fb.MovImm(isa.R5, baseX)
			fb.MovImm(isa.R6, 0)
			fb.Line(LineX1).Store(isa.R5, 0, isa.R6, 8) // x = 0 (dense dead pair)
			fb.MovImm(isa.R6, 1)
			fb.Line(LineX2).Store(isa.R5, 0, isa.R6, 8) // x = 1
		})
	})
	f.Halt()
	return b.MustBuild()
}

// Source lines of the Figure 2 stores (mirroring the paper's listing
// where the dense pair is lines 16/17).
const (
	LineA1 = 2
	LineA2 = 5
	LineB1 = 9
	LineB2 = 12
	LineX1 = 16
	LineX2 = 17
)

// Figure2Region classifies a Figure 2 store by its source line into
// region "a", "b" or "x".
func Figure2Region(srcLine int) string {
	switch srcLine {
	case LineA1, LineA2:
		return "a"
	case LineB1, LineB2:
		return "b"
	case LineX1, LineX2:
		return "x"
	}
	return "?"
}

// StackSignals builds the Figure 3 scenario: a callee writes (dead) stores
// into its own stack frame and returns; the caller then produces PMU
// samples at a shallower stack depth, so without an alternate signal stack
// the kernel's signal frame overwrites the callee's dead frame and
// spuriously triggers the watchpoints armed there.
func StackSignals(outer int64) *isa.Program {
	b := isa.NewBuilder("stacksignals")

	deep := b.Func("deep")
	deep.AddImm(isa.SP, isa.SP, -256) // allocate frame
	deep.LoopN(isa.R1, 16, func(fb *isa.FuncBuilder) {
		fb.MulImm(isa.R5, isa.R1, 8)
		fb.Add(isa.R5, isa.R5, isa.SP)
		fb.Store(isa.R5, 0, isa.R1, 8) // local[i] = i — never read: dead
	})
	deep.AddImm(isa.SP, isa.SP, 256) // release frame
	deep.Ret()

	shallow := b.Func("shallow_work")
	shallow.LoopN(isa.R2, 64, func(fb *isa.FuncBuilder) {
		fb.MulImm(isa.R5, isa.R2, 8)
		fb.AddImm(isa.R5, isa.R5, baseGlob)
		fb.Store(isa.R5, 0, isa.R2, 8) // heap stores keep samples coming
	})
	shallow.Ret()

	main := b.Func("main")
	main.LoopN(isa.R9, outer, func(fb *isa.FuncBuilder) {
		fb.Call("deep")
		fb.Call("shallow_work")
	})
	main.Halt()
	return b.MustBuild()
}
