package workloads

import "repro/internal/isa"

// ParallelCounters is the classic false-sharing workload: every thread
// read-modify-writes its own counter, with the counters strideBytes
// apart. A stride of 8 packs all counters into one 64-byte cache line
// (false sharing); a stride of 128 pads them onto separate lines (the
// standard fix). Threads find their ID in R1 (machine convention).
func ParallelCounters(iters, strideBytes int64) *isa.Program {
	b := isa.NewBuilder("parcounters")
	f := b.Func("main")
	f.MulImm(isa.R3, isa.R1, strideBytes)
	f.AddImm(isa.R3, isa.R3, baseGlob)
	f.LoopN(isa.R9, iters, func(fb *isa.FuncBuilder) {
		fb.Load(isa.R4, isa.R3, 0, 8)
		fb.AddImm(isa.R4, isa.R4, 1)
		fb.Store(isa.R3, 0, isa.R4, 8)
	})
	f.Halt()
	return b.MustBuild()
}

// ParallelDead is the multi-threaded intra-thread-inefficiency workload
// (SPEC OMP2012-style): every thread repeatedly zero-fills and then
// overwrites a private region — 100% dead stores per thread, no sharing.
// Witch's per-thread debug registers and PMUs (§6.3) must report the same
// redundancy regardless of thread count.
func ParallelDead(elems, iters int64) *isa.Program {
	b := isa.NewBuilder("pardead")
	f := b.Func("main")
	// Private region: base + tid * (elems*8 + one page of padding).
	f.MulImm(isa.R3, isa.R1, elems*8+4096)
	f.AddImm(isa.R3, isa.R3, baseGlob)
	f.LoopN(isa.R9, iters, func(fb *isa.FuncBuilder) {
		fb.LoopN(isa.R2, elems, func(fb *isa.FuncBuilder) {
			fb.MulImm(isa.R5, isa.R2, 8)
			fb.Add(isa.R5, isa.R5, isa.R3)
			fb.MovImm(isa.R6, 0)
			fb.Store(isa.R5, 0, isa.R6, 8) // dead: overwritten below
		})
		fb.LoopN(isa.R2, elems, func(fb *isa.FuncBuilder) {
			fb.MulImm(isa.R5, isa.R2, 8)
			fb.Add(isa.R5, isa.R5, isa.R3)
			fb.Store(isa.R5, 0, isa.R9, 8) // kill (also dead next iter)
		})
	})
	f.Halt()
	return b.MustBuild()
}

// SharedCounter is the true-sharing contrast: every thread hammers the
// same memory word.
func SharedCounter(iters int64) *isa.Program {
	b := isa.NewBuilder("sharedcounter")
	f := b.Func("main")
	f.MovImm(isa.R3, baseGlob)
	f.LoopN(isa.R9, iters, func(fb *isa.FuncBuilder) {
		fb.Load(isa.R4, isa.R3, 0, 8)
		fb.AddImm(isa.R4, isa.R4, 1)
		fb.Store(isa.R3, 0, isa.R4, 8)
	})
	f.Halt()
	return b.MustBuild()
}
