// Package workloads builds the simulated programs the evaluation runs on:
// a 29-benchmark suite standing in for SPEC CPU2006 (each benchmark's
// dead-store / silent-store / redundant-load trait mix, call depth,
// recursion, floating-point character, latency mix, and inefficiency
// scatter are design parameters chosen to echo the paper's Figure 4 and
// Table 1 behaviour), plus faithful re-creations of the paper's Listings
// 1–6 and the case-study programs of §8 in buggy and fixed forms.
package workloads

import (
	"repro/internal/isa"
)

// Region base addresses for generated benchmarks. They are far apart so
// phases never alias.
const (
	baseDead   = 0x1000_0000
	baseDead2  = 0x1080_0000
	baseDead3  = 0x10c0_0000
	baseDead4  = 0x10e0_0000
	baseSilent = 0x1100_0000
	baseNoisy  = 0x1200_0000
	baseRed    = 0x1300_0000
	baseStream = 0x1400_0000
)

// Spec parameterizes one generated benchmark. All element counts are per
// outer iteration; elements are 8 bytes.
type Spec struct {
	Name string

	// DeadPct, SilentPct and RedPct are the approximate target
	// percentages for the three Equation-1 metrics; the generator sizes
	// its phases from them (ground truth still comes from the spies).
	DeadPct   float64
	SilentPct float64
	RedPct    float64

	// StoresPerIter is the store budget split across phases.
	StoresPerIter int
	// Iters is the outer iteration count at scale 1.
	Iters int

	// FP makes the silent and redundant phases use floating-point data
	// whose values drift below the 1% comparison precision (lbm-like).
	FP bool
	// Scatter spreads the inefficiencies across this many distinct
	// straight-line code sites (GemsFDTD/perlbench-like).
	Scatter int
	// Depth interposes a chain of this many calls between main and the
	// phase code.
	Depth int
	// RecDepth executes the phases at the bottom of a recursion of this
	// depth (gobmk/sjeng/xalancbmk-like; large CCTs).
	RecDepth int
	// Slow marks half the dead-phase stores long-latency so the PEBS
	// shadow effect can bias samples (hmmer/calculix-like).
	Slow bool
	// Interleave4 splits the dead phase across four regions written and
	// killed in an interleaved pattern with a long kill distance, the
	// shape on which extra debug registers help (h264ref in Figure 5).
	Interleave4 bool
	// StreamElems writes this many never-again-touched elements per
	// iteration (mcf-like; produces long blind-spot windows).
	StreamElems int
}

// registers reserved by the generator; see the package design notes.
const (
	rOuter = isa.Reg(20) // outer iteration counter, also the "varying" value
	rCtr   = isa.Reg(2)  // phase loop counter
	rAddr  = isa.Reg(5)  // effective address scratch
	rVal   = isa.Reg(10) // value scratch
	rVal2  = isa.Reg(11)
	rRec   = isa.Reg(7) // recursion depth counter
	rTmp   = isa.Reg(12)
)

// elemAddr emits rAddr = base + rCtr*8.
func elemAddr(fb *isa.FuncBuilder, base int64) {
	fb.MulImm(rAddr, rCtr, 8)
	fb.AddImm(rAddr, rAddr, base)
}

// Build generates the benchmark program. scale multiplies the outer
// iteration count (use <1x via integer division in callers by adjusting
// Iters instead).
func (sp Spec) Build(scale int) *isa.Program {
	if scale <= 0 {
		scale = 1
	}
	b := isa.NewBuilder(sp.Name)

	st := float64(sp.StoresPerIter)
	if st == 0 {
		st = 1200
	}
	// Solve phase sizes from the target percentages (see DESIGN.md):
	// stores = 2*dead + silent + noisy, loads = silent + noisy + red.
	deadElems := int(sp.DeadPct / 100 * st / 2)
	silentElems := int(sp.SilentPct / 100 * st)
	noisyElems := int(st) - 2*deadElems - silentElems
	if noisyElems < 8 {
		noisyElems = 8
	}
	sn := float64(silentElems + noisyElems)
	redElems := 0
	if l := sp.RedPct / 100; l < 1 {
		if r := (l*sn - float64(silentElems)) / (1 - l); r > 0 {
			redElems = int(r)
		}
	}

	// Phase functions. With Interleave4, the dead-region writes and
	// their kills sit at opposite ends of the iteration with every other
	// phase in between — the long kill distance on which extra debug
	// registers pay off (h264ref in Figure 5).
	if sp.Interleave4 {
		wf := b.Func("dead_write_phase")
		sp.emitInterleavedStores(wf, int64(deadElems), 0)
		wf.Ret()
		kf := b.Func("dead_kill_phase")
		sp.emitInterleavedStores(kf, int64(deadElems), 1<<20)
		kf.Ret()
	}
	deadFn := b.Func("dead_phase")
	if !sp.Interleave4 {
		sp.emitDead(deadFn, int64(deadElems))
	}
	deadFn.Ret()

	silFn := b.Func("silent_phase")
	sp.emitSilent(silFn, int64(silentElems))
	silFn.Ret()

	noiFn := b.Func("noisy_phase")
	sp.emitNoisy(noiFn, int64(noisyElems))
	noiFn.Ret()

	redFn := b.Func("red_phase")
	sp.emitRed(redFn, int64(redElems))
	redFn.Ret()

	if sp.StreamElems > 0 {
		strFn := b.Func("stream_phase")
		strFn.LoopN(rCtr, int64(sp.StreamElems), func(fb *isa.FuncBuilder) {
			// Streamed writes: addr advances with the outer iteration
			// so no element is ever revisited.
			fb.MulImm(rAddr, rOuter, int64(sp.StreamElems)*8)
			fb.MulImm(rTmp, rCtr, 8)
			fb.Add(rAddr, rAddr, rTmp)
			fb.AddImm(rAddr, rAddr, baseStream)
			fb.Store(rAddr, 0, rOuter, 8)
		})
		strFn.Ret()
	}

	// Scatter sites: straight-line dead+silent micro-inefficiencies at
	// distinct code locations.
	for i := 0; i < sp.Scatter; i++ {
		f := b.Func(scatterName(i))
		addr := int64(baseDead3 + i*64)
		f.MovImm(rTmp, 0) // zero base register
		f.MovImm(rVal, int64(i))
		f.Store(rTmp, addr, rVal, 8) // dead (overwritten next line)
		f.MovImm(rVal2, int64(i)+1)
		f.Store(rTmp, addr, rVal2, 8)  // kills the store above
		f.Store(rTmp, addr+8, rVal, 8) // silent across outer iterations
		f.Load(rVal2, rTmp, addr+8, 8)
		f.Ret()
	}

	// work() runs one iteration's phases.
	work := b.Func("work")
	if sp.Interleave4 {
		work.Call("dead_write_phase")
	} else {
		work.Call("dead_phase")
	}
	work.Call("silent_phase")
	work.Call("noisy_phase")
	work.Call("red_phase")
	if sp.StreamElems > 0 {
		work.Call("stream_phase")
	}
	for i := 0; i < sp.Scatter; i++ {
		work.Call(scatterName(i))
	}
	if sp.Interleave4 {
		work.Call("dead_kill_phase")
	}
	work.Ret()

	// Optional call-depth chain main -> level1 -> ... -> work.
	callTarget := "work"
	for d := sp.Depth; d > 0; d-- {
		f := b.Func(levelName(d))
		f.Call(callTarget)
		f.Ret()
		callTarget = levelName(d)
	}

	// Optional recursion wrapper: rec(n) { if n==0 work() else rec(n-1) }.
	if sp.RecDepth > 0 {
		rec := b.Func("rec")
		rec.MovImm(rTmp, 0)
		rec.Bgt(rRec, rTmp, "deeper")
		rec.Call(callTarget)
		rec.Ret()
		rec.Label("deeper")
		rec.AddImm(rRec, rRec, -1)
		rec.Call("rec")
		rec.Ret()
		callTarget = "rec"
	}

	main := b.Func("main")
	// Initialize the red-load region once so its loads see stable data.
	main.LoopN(rCtr, int64(redElems), func(fb *isa.FuncBuilder) {
		elemAddr(fb, baseRed)
		if sp.FP {
			fb.FMovImm(rVal, 1234.5)
			fb.FStore(rAddr, 0, rVal)
		} else {
			fb.MovImm(rVal, 7777)
			fb.Store(rAddr, 0, rVal, 8)
		}
	})
	if sp.FP {
		// Seed the FP silent region with nonzero values so the
		// per-iteration ×1.0001 drift is real: exact comparison then
		// sees changing values while the 1% tolerance sees silence
		// (zero-valued cells would be trivially silent at any
		// precision).
		main.LoopN(rCtr, int64(silentElems), func(fb *isa.FuncBuilder) {
			elemAddr(fb, baseSilent)
			fb.FMovImm(rVal, 250.0)
			fb.FStore(rAddr, 0, rVal)
		})
	}
	iters := int64(sp.Iters * scale)
	if iters == 0 {
		iters = 1
	}
	tgt := callTarget
	main.LoopN(rOuter, iters, func(fb *isa.FuncBuilder) {
		if sp.RecDepth > 0 {
			fb.MovImm(rRec, int64(sp.RecDepth))
		}
		fb.Call(tgt)
	})
	main.Halt()

	b.SetEntry("main")
	return b.MustBuild()
}

func scatterName(i int) string { return "scatter_" + string(rune('a'+i%26)) + itoa(i) }
func levelName(d int) string   { return "level" + itoa(d) }

// itoa is a tiny integer formatter (avoids fmt in hot generator paths).
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// emitDead writes n elements twice without any intervening load: every
// store to the region is dead (Listing-2 style). With Interleave4 the
// writes and the kills are spread over four regions with a long distance
// between a write and its kill.
func (sp Spec) emitDead(fb *isa.FuncBuilder, n int64) {
	if n <= 0 {
		return
	}
	fb.LoopN(rCtr, n, func(fb *isa.FuncBuilder) {
		elemAddr(fb, baseDead)
		if sp.Slow {
			fb.SlowStore(rAddr, 0, rOuter, 8)
		} else {
			fb.Store(rAddr, 0, rOuter, 8)
		}
	})
	fb.LoopN(rCtr, n, func(fb *isa.FuncBuilder) {
		elemAddr(fb, baseDead)
		fb.Store(rAddr, 0, rCtr, 8)
	})
}

// emitInterleavedStores writes n elements across four regions in an
// interleaved pattern; the stored value is rOuter+bias, so the write and
// kill passes differ from each other within an iteration and both vary
// across iterations (neither pass is silent).
func (sp Spec) emitInterleavedStores(fb *isa.FuncBuilder, n, bias int64) {
	quarter := n / 4
	if quarter == 0 {
		quarter = 1
	}
	bases := []int64{baseDead, baseDead2, baseDead3 + 1<<20, baseDead4}
	fb.LoopN(rCtr, quarter, func(fb *isa.FuncBuilder) {
		fb.AddImm(rVal, rOuter, bias)
		for _, base := range bases {
			elemAddr(fb, base)
			fb.Store(rAddr, 0, rVal, 8)
		}
	})
}

// emitSilent loads then rewrites each element with an unchanging (or, for
// FP, sub-precision drifting) value: silent stores and redundant loads,
// but no dead stores because a load intervenes.
func (sp Spec) emitSilent(fb *isa.FuncBuilder, n int64) {
	if n <= 0 {
		return
	}
	fb.LoopN(rCtr, n, func(fb *isa.FuncBuilder) {
		elemAddr(fb, baseSilent)
		if sp.FP {
			fb.FLoad(rVal, rAddr, 0)
			// value *= 1.0001: drifts far below the 1% precision.
			fb.FMovImm(rVal2, 1.0001)
			fb.FMul(rVal, rVal, rVal2)
			fb.FStore(rAddr, 0, rVal)
		} else {
			fb.Load(rVal, rAddr, 0, 8)
			fb.MovImm(rVal, 4242)
			fb.Store(rAddr, 0, rVal, 8)
		}
	})
}

// emitNoisy loads then rewrites each element with an iteration-varying
// value: useful stores, fresh loads.
func (sp Spec) emitNoisy(fb *isa.FuncBuilder, n int64) {
	if n <= 0 {
		return
	}
	fb.LoopN(rCtr, n, func(fb *isa.FuncBuilder) {
		elemAddr(fb, baseNoisy)
		fb.Load(rVal, rAddr, 0, 8)
		fb.Add(rVal, rCtr, rOuter)
		fb.AddImm(rVal, rVal, 1) // ensure the value changes every iter
		fb.Mul(rVal, rVal, rVal)
		fb.Add(rVal, rVal, rOuter)
		fb.Store(rAddr, 0, rVal, 8)
	})
}

// emitRed loads a never-written region: pure redundant loads.
func (sp Spec) emitRed(fb *isa.FuncBuilder, n int64) {
	if n <= 0 {
		return
	}
	fb.LoopN(rCtr, n, func(fb *isa.FuncBuilder) {
		elemAddr(fb, baseRed)
		if sp.FP {
			fb.FLoad(rVal, rAddr, 0)
		} else {
			fb.Load(rVal, rAddr, 0, 8)
		}
	})
}

// Suite returns the 29-benchmark evaluation suite. Names follow SPEC
// CPU2006; the trait mixes are design parameters (see DESIGN.md §2) chosen
// so the evaluation exhibits the paper's qualitative structure: lbm is
// ~100% silent FP traffic, hmmer/calculix carry long-latency stores,
// gobmk/sjeng/xalancbmk recurse deeply, GemsFDTD/perlbench/zeusmp scatter
// many small inefficiencies, h264ref interleaves four dead regions, and
// mcf streams (long blind spots).
func Suite() []Spec {
	return []Spec{
		{Name: "astar", DeadPct: 18, SilentPct: 22, RedPct: 35, Iters: 260, Depth: 3},
		{Name: "bwaves", DeadPct: 8, SilentPct: 30, RedPct: 45, Iters: 260, FP: true, Depth: 2},
		{Name: "bzip2", DeadPct: 32, SilentPct: 18, RedPct: 30, Iters: 260, Depth: 2},
		{Name: "cactusADM", DeadPct: 12, SilentPct: 35, RedPct: 40, Iters: 240, FP: true, Depth: 4},
		{Name: "calculix", DeadPct: 25, SilentPct: 30, RedPct: 30, Iters: 240, Slow: true, Depth: 3},
		{Name: "dealII", DeadPct: 20, SilentPct: 25, RedPct: 40, Iters: 240, Depth: 5},
		{Name: "gamess", DeadPct: 22, SilentPct: 28, RedPct: 35, Iters: 240, Depth: 4},
		{Name: "gcc", DeadPct: 60, SilentPct: 15, RedPct: 35, Iters: 260, Depth: 3},
		{Name: "GemsFDTD", DeadPct: 20, SilentPct: 30, RedPct: 35, Iters: 200, Scatter: 40, Depth: 2},
		{Name: "gobmk", DeadPct: 25, SilentPct: 25, RedPct: 35, Iters: 180, RecDepth: 120},
		{Name: "gromacs", DeadPct: 15, SilentPct: 25, RedPct: 30, Iters: 240, FP: true, Depth: 3},
		{Name: "h264ref", DeadPct: 36, SilentPct: 20, RedPct: 45, Iters: 240, Interleave4: true, Depth: 2},
		{Name: "hmmer", DeadPct: 30, SilentPct: 35, RedPct: 30, Iters: 240, Slow: true, Depth: 2},
		{Name: "lbm", DeadPct: 1, SilentPct: 95, RedPct: 97, Iters: 260, FP: true, Depth: 1},
		{Name: "leslie3d", DeadPct: 10, SilentPct: 30, RedPct: 40, Iters: 240, FP: true, Depth: 2},
		{Name: "libquantum", DeadPct: 14, SilentPct: 20, RedPct: 50, Iters: 260, Depth: 1},
		{Name: "mcf", DeadPct: 16, SilentPct: 20, RedPct: 45, Iters: 220, StreamElems: 400, Depth: 2},
		{Name: "milc", DeadPct: 12, SilentPct: 30, RedPct: 40, Iters: 240, FP: true, Depth: 3},
		{Name: "namd", DeadPct: 8, SilentPct: 25, RedPct: 35, Iters: 240, FP: true, Depth: 4},
		{Name: "omnetpp", DeadPct: 26, SilentPct: 22, RedPct: 40, Iters: 220, Depth: 6},
		{Name: "perlbench", DeadPct: 35, SilentPct: 30, RedPct: 45, Iters: 200, Scatter: 40, Depth: 3},
		{Name: "povray", DeadPct: 10, SilentPct: 15, RedPct: 25, Iters: 420, StoresPerIter: 600, Depth: 5},
		{Name: "sjeng", DeadPct: 20, SilentPct: 25, RedPct: 30, Iters: 170, RecDepth: 160},
		{Name: "soplex", DeadPct: 22, SilentPct: 25, RedPct: 40, Iters: 240, Depth: 3},
		{Name: "sphinx3", DeadPct: 15, SilentPct: 28, RedPct: 40, Iters: 240, FP: true, Depth: 2},
		{Name: "tonto", DeadPct: 18, SilentPct: 30, RedPct: 35, Iters: 240, FP: true, Depth: 4},
		{Name: "wrf", DeadPct: 12, SilentPct: 32, RedPct: 40, Iters: 240, FP: true, Depth: 3},
		{Name: "xalancbmk", DeadPct: 30, SilentPct: 30, RedPct: 55, Iters: 170, RecDepth: 140},
		{Name: "zeusmp", DeadPct: 15, SilentPct: 25, RedPct: 30, Iters: 220, Scatter: 28, FP: true, Depth: 2},
	}
}

// SuiteSpec returns the named suite benchmark.
func SuiteSpec(name string) (Spec, bool) {
	for _, sp := range Suite() {
		if sp.Name == name {
			return sp, true
		}
	}
	return Spec{}, false
}
