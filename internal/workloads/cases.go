package workloads

import "repro/internal/isa"

// CaseStudy is one Table 3 row: a program with a known inefficiency, the
// fix the paper's tools guided, and the speedup the paper reports.
// Speedups here are measured by running Buggy and Fixed natively and
// comparing wall-clock/instruction counts; the paper's absolute numbers
// come from real hardware, so only the ordering and rough magnitude are
// expected to match (see EXPERIMENTS.md).
type CaseStudy struct {
	Name         string  // short identifier
	Program      string  // program the paper found it in
	Location     string  // code location the paper cites
	Problem      string  // problem class
	Tool         string  // DS, SS, SL — which craft pinpoints it
	PaperSpeedup float64 // whole-program speedup the paper reports
	Buggy        func(scale int) *isa.Program
	Fixed        func(scale int) *isa.Program
}

// fillerALU emits ops iterations of pure ALU work (no memory traffic, so
// it dilutes speedups without touching the inefficiency metrics).
func fillerALU(fb *isa.FuncBuilder, ops int64) {
	fb.LoopN(isa.R8, ops, func(fb *isa.FuncBuilder) {
		fb.MulImm(isa.R6, isa.R8, 3)
		fb.AddImm(isa.R6, isa.R6, 1)
	})
}

// overInit builds the repeated-over-initialization pattern of Listing 1
// (gcc loop_regs_scan), NWChem's dfill, bzip2's mainGtU_init and Chombo:
// each "block" zero-fills a table of tableElems although only usedElems
// are touched; the fixed version resets only the used elements.
func overInit(name string, tableElems, usedElems, blocks, work int64, fixed bool) func(scale int) *isa.Program {
	return func(scale int) *isa.Program {
		b := isa.NewBuilder(name)

		scan := b.Func("scan_block")
		if fixed {
			// Reset only the entries the previous block used.
			scan.LoopN(isa.R1, usedElems, func(fb *isa.FuncBuilder) {
				fb.MulImm(isa.R5, isa.R1, 8*97) // the sparse used slots
				fb.AddImm(isa.R5, isa.R5, baseTable)
				fb.MovImm(isa.R6, 0)
				fb.Store(isa.R5, 0, isa.R6, 8)
			})
		} else {
			// memset(table, 0, tableElems*8) at the end of each block.
			scan.LoopN(isa.R1, tableElems, func(fb *isa.FuncBuilder) {
				fb.MulImm(isa.R5, isa.R1, 8)
				fb.AddImm(isa.R5, isa.R5, baseTable)
				fb.MovImm(isa.R6, 0)
				fb.Store(isa.R5, 0, isa.R6, 8)
			})
		}
		// Touch the few used entries: store then load (useful work).
		scan.LoopN(isa.R2, usedElems, func(fb *isa.FuncBuilder) {
			fb.MulImm(isa.R5, isa.R2, 8*97)
			fb.AddImm(isa.R5, isa.R5, baseTable)
			fb.AddImm(isa.R6, isa.R2, 11)
			fb.Store(isa.R5, 0, isa.R6, 8)
			fb.Load(isa.R7, isa.R5, 0, 8)
		})
		fillerALU(scan, work)
		scan.Ret()

		main := b.Func("main")
		main.LoopN(isa.R9, blocks*int64(scale), func(fb *isa.FuncBuilder) {
			fb.Call("scan_block")
		})
		main.Halt()
		return b.MustBuild()
	}
}

// searchProgram builds the binutils-2.27 dwarf2.c case (Listing 5): Q
// address lookups against N function ranges. The buggy variant walks a
// linked list linearly for every query (the same range bounds are loaded
// over and over — LoadCraft flags ~all loads redundant); the fixed variant
// binary-searches a sorted array, the paper's 10× fix.
func searchProgram(n, queries, perQueryWork int64, fixed bool) func(scale int) *isa.Program {
	return func(scale int) *isa.Program {
		b := isa.NewBuilder("binutils-dwarf2")
		const stride = 24 // node: low, high, next

		setup := b.Func("setup")
		setup.LoopN(isa.R1, n, func(fb *isa.FuncBuilder) {
			fb.MulImm(isa.R5, isa.R1, stride)
			fb.AddImm(isa.R5, isa.R5, baseList)
			fb.MulImm(isa.R6, isa.R1, 100) // low = i*100
			fb.Store(isa.R5, 0, isa.R6, 8)
			fb.AddImm(isa.R6, isa.R6, 100) // high = low+100
			fb.Store(isa.R5, 8, isa.R6, 8)
		})
		setup.Ret()

		lookup := b.Func("lookup_address_in_function_table")
		// R10 = query address; result (matched low) in R11.
		if fixed {
			// Binary search over the sorted (low, high) array.
			lookup.MovImm(isa.R1, 0) // lo
			lookup.MovImm(isa.R2, n) // hi
			lookup.Label("loop")
			lookup.Bge(isa.R1, isa.R2, "done")
			lookup.Add(isa.R3, isa.R1, isa.R2)
			lookup.Emit(isa.Instr{Op: isa.OpShr, Dst: isa.R3, A: isa.R3, Imm: 1}) // mid
			lookup.MulImm(isa.R5, isa.R3, stride)
			lookup.AddImm(isa.R5, isa.R5, baseList)
			lookup.Load(isa.R6, isa.R5, 0, 8) // low
			lookup.Load(isa.R7, isa.R5, 8, 8) // high
			lookup.Blt(isa.R10, isa.R6, "goleft")
			lookup.Bge(isa.R10, isa.R7, "goright")
			lookup.Mov(isa.R11, isa.R6) // found
			lookup.Ret()
			lookup.Label("goleft")
			lookup.Mov(isa.R2, isa.R3)
			lookup.Jmp("loop")
			lookup.Label("goright")
			lookup.AddImm(isa.R1, isa.R3, 1)
			lookup.Jmp("loop")
			lookup.Label("done")
			lookup.MovImm(isa.R11, 0)
			lookup.Ret()
		} else {
			// Linear scan of every node for every query, tracking the
			// best fit (so the scan never early-exits, as in dwarf2.c).
			lookup.MovImm(isa.R11, 0) // best_fit
			lookup.LoopN(isa.R1, n, func(fb *isa.FuncBuilder) {
				fb.MulImm(isa.R5, isa.R1, stride)
				fb.AddImm(isa.R5, isa.R5, baseList)
				fb.Load(isa.R6, isa.R5, 0, 8) // arange->low   (redundant)
				fb.Load(isa.R7, isa.R5, 8, 8) // arange->high  (redundant)
				fb.Blt(isa.R10, isa.R6, "miss")
				fb.Bge(isa.R10, isa.R7, "miss")
				fb.Mov(isa.R11, isa.R6) // best_fit = each_func
				fb.Label("miss")
			})
			lookup.Ret()
		}

		main := b.Func("main")
		main.Call("setup")
		main.LoopN(isa.R9, queries*int64(scale), func(fb *isa.FuncBuilder) {
			// Query address spread over the covered range.
			fb.MulImm(isa.R10, isa.R9, 7919)
			fb.MovImm(isa.R12, n*100)
			fb.Mod(isa.R10, isa.R10, isa.R12)
			fb.Call("lookup_address_in_function_table")
			fillerALU(fb, perQueryWork)
		})
		main.Halt()
		return b.MustBuild()
	}
}

// hashProgram builds the Kallisto KmerHashTable case: Q lookups (over a
// hot set of keys, as k-mer queries repeat) in a linear-probing hash
// table. The buggy variant runs at ~0.93 load factor — long, clustered
// probe chains reloading the same slots over and over (redundant loads);
// the fixed variant quarters the load factor, the paper's 4.1× fix.
func hashProgram(tableSize, keys, hotKeys, queries, perQueryWork int64) func(fixed bool) func(scale int) *isa.Program {
	return func(fixed bool) func(scale int) *isa.Program {
		size := tableSize
		if fixed {
			size = tableSize * 4 // rebuild with a lower load factor
		}
		return func(scale int) *isa.Program {
			b := isa.NewBuilder("kallisto-hash")

			// probe: R10 = key; finds slot via linear probing. Keys are
			// already well mixed (see keygen), so h = key % size.
			probe := b.Func("probe")
			probe.MovImm(isa.R12, size)
			probe.Mod(isa.R1, isa.R10, isa.R12)
			probe.Label("chain")
			probe.MulImm(isa.R5, isa.R1, 8)
			probe.AddImm(isa.R5, isa.R5, baseTable)
			probe.Load(isa.R6, isa.R5, 0, 8) // table[h]
			probe.Beq(isa.R6, isa.R10, "hit")
			probe.MovImm(isa.R7, 0)
			probe.Beq(isa.R6, isa.R7, "empty")
			probe.AddImm(isa.R1, isa.R1, 1)
			probe.MovImm(isa.R12, size)
			probe.Mod(isa.R1, isa.R1, isa.R12)
			probe.Jmp("chain")
			probe.Label("hit")
			probe.Ret()
			probe.Label("empty")
			probe.Ret()

			insert := b.Func("insert") // R10 = key; probe then store
			insert.Call("probe")
			insert.Store(isa.R5, 0, isa.R10, 8)
			insert.Ret()

			// keygen: R10 = mixed key for index R11 (LCG high bits, so
			// low bits collide realistically in the table).
			keygen := b.Func("keygen")
			keygen.MulImm(isa.R10, isa.R11, 6364136223846793005)
			keygen.AddImm(isa.R10, isa.R10, 1442695040888963407)
			keygen.Emit(isa.Instr{Op: isa.OpShr, Dst: isa.R10, A: isa.R10, Imm: 33})
			keygen.AddImm(isa.R10, isa.R10, 1) // avoid the empty marker 0
			keygen.Ret()

			setup := b.Func("setup")
			setup.LoopN(isa.R9, keys, func(fb *isa.FuncBuilder) {
				fb.Mov(isa.R11, isa.R9)
				fb.Call("keygen")
				fb.Call("insert")
			})
			setup.Ret()

			main := b.Func("main")
			main.Call("setup")
			main.LoopN(isa.R9, queries*int64(scale), func(fb *isa.FuncBuilder) {
				// The hot set is the LAST-inserted keys: under linear
				// probing at high load factor those are the keys pushed
				// farthest from their home slots.
				fb.MovImm(isa.R12, hotKeys)
				fb.Mod(isa.R11, isa.R9, isa.R12)
				fb.MovImm(isa.R12, keys-1)
				fb.Sub(isa.R11, isa.R12, isa.R11)
				fb.Call("keygen")
				fb.Call("probe")
				fillerALU(fb, perQueryWork)
			})
			main.Halt()
			return b.MustBuild()
		}
	}
}

// zeroSkip builds the Caffe pooling (Listing 4) and imagick (Listing 6)
// shape: a nested loop accumulates src[u]*k into dst, but most src values
// are zero, so most stores are silent (Caffe) and most loads redundant
// (imagick). The fixed variant tests src[u] and skips the computation.
func zeroSkip(name string, rows, cols, width, zeroOutOf, fields, work int64, fixed bool) func(scale int) *isa.Program {
	return func(scale int) *isa.Program {
		b := isa.NewBuilder(name)

		setup := b.Func("setup")
		// src[u] is nonzero only every zeroOutOf-th element.
		setup.LoopN(isa.R1, width, func(fb *isa.FuncBuilder) {
			fb.MulImm(isa.R5, isa.R1, 8)
			fb.AddImm(isa.R5, isa.R5, baseA)
			fb.MovImm(isa.R12, zeroOutOf)
			fb.Mod(isa.R6, isa.R1, isa.R12)
			fb.MovImm(isa.R7, 0)
			fb.Bne(isa.R6, isa.R7, "zero")
			fb.AddImm(isa.R7, isa.R1, 3) // nonzero kernel value
			fb.Label("zero")
			fb.Store(isa.R5, 0, isa.R7, 8)
		})
		setup.Ret()

		kernel := b.Func("kernel") // R9 = pixel index
		kernel.MulImm(isa.R4, isa.R9, int64(fields)*8)
		kernel.AddImm(isa.R4, isa.R4, baseB) // &dst[pixel]
		kernel.LoopN(isa.R1, width, func(fb *isa.FuncBuilder) {
			fb.MulImm(isa.R5, isa.R1, 8)
			fb.AddImm(isa.R5, isa.R5, baseA)
			fb.Load(isa.R6, isa.R5, 0, 8) // src[u] (the kernel weight)
			if fixed {
				fb.MovImm(isa.R7, 0)
				fb.Beq(isa.R6, isa.R7, "skip")
			}
			// Accumulate into each destination field (pixel.red/
			// green/blue in Listing 6): silent when src[u]==0.
			for fidx := int64(0); fidx < fields; fidx++ {
				fb.Load(isa.R7, isa.R4, fidx*8, 8)
				fb.Mul(isa.R11, isa.R6, isa.R6)
				fb.Add(isa.R7, isa.R7, isa.R11)
				fb.Store(isa.R4, fidx*8, isa.R7, 8)
			}
			if fixed {
				fb.Label("skip")
			}
		})
		fillerALU(kernel, work)
		kernel.Ret()

		main := b.Func("main")
		main.Call("setup")
		main.LoopN(isa.R9, rows*cols*int64(scale), func(fb *isa.FuncBuilder) {
			fb.Call("kernel")
		})
		main.Halt()
		return b.MustBuild()
	}
}

// memoize builds the STAMP vacation shape: every transaction looks the
// same item up twice; the fixed variant memoizes the first result.
func memoize(name string, queries, chainLen, perQueryWork int64, fixed bool) func(scale int) *isa.Program {
	return func(scale int) *isa.Program {
		b := isa.NewBuilder(name)

		setup := b.Func("setup")
		setup.LoopN(isa.R1, chainLen, func(fb *isa.FuncBuilder) {
			fb.MulImm(isa.R5, isa.R1, 8)
			fb.AddImm(isa.R5, isa.R5, baseList)
			fb.AddImm(isa.R6, isa.R1, 101)
			fb.Store(isa.R5, 0, isa.R6, 8)
		})
		setup.Ret()

		lookup := b.Func("lookup") // scans the chain for R10
		lookup.LoopN(isa.R1, chainLen, func(fb *isa.FuncBuilder) {
			fb.MulImm(isa.R5, isa.R1, 8)
			fb.AddImm(isa.R5, isa.R5, baseList)
			fb.Load(isa.R6, isa.R5, 0, 8) // redundant across both calls
			fb.Beq(isa.R6, isa.R10, "found")
			fb.Label("found")
		})
		lookup.Ret()

		main := b.Func("main")
		main.Call("setup")
		main.LoopN(isa.R9, queries*int64(scale), func(fb *isa.FuncBuilder) {
			fb.MovImm(isa.R12, chainLen)
			fb.Mod(isa.R10, isa.R9, isa.R12)
			fb.AddImm(isa.R10, isa.R10, 101)
			fb.Call("lookup")
			if !fixed {
				fb.Call("lookup") // the unnecessary second lookup
			}
			fillerALU(fb, perQueryWork)
		})
		main.Halt()
		return b.MustBuild()
	}
}

// scalarTemp builds the hmmer fast_algorithms.c shape: a reduction loop
// that stores its running accumulator to memory on every element (dead and
// often silent stores); the fixed ("vectorized") variant keeps the
// accumulator in a register and stores once.
func scalarTemp(name string, elems, iters, work int64, fixed bool) func(scale int) *isa.Program {
	return func(scale int) *isa.Program {
		b := isa.NewBuilder(name)

		body := b.Func("reduce")
		body.MovImm(isa.R6, 0) // acc
		body.LoopN(isa.R1, elems, func(fb *isa.FuncBuilder) {
			fb.MulImm(isa.R5, isa.R1, 8)
			fb.AddImm(isa.R5, isa.R5, baseA)
			fb.Load(isa.R7, isa.R5, 0, 8)
			fb.Add(isa.R6, isa.R6, isa.R7)
			if !fixed {
				// The un-vectorized code writes the running value to a
				// per-element scratch array nothing ever reads: dead
				// (killed by the next call) and silent (identical
				// values across calls) — the paper marks hmmer DS/SS.
				fb.MulImm(isa.R4, isa.R1, 8)
				fb.AddImm(isa.R4, isa.R4, baseGlob)
				fb.Store(isa.R4, 0, isa.R6, 8)
			}
		})
		body.MovImm(isa.R4, baseGlob)
		body.Store(isa.R4, 0, isa.R6, 8)
		fillerALU(body, work)
		body.Ret()

		main := b.Func("main")
		main.LoopN(isa.R9, iters*int64(scale), func(fb *isa.FuncBuilder) {
			fb.Call("reduce")
		})
		main.Halt()
		return b.MustBuild()
	}
}

// calleeReload builds the h264ref mv-search / povray csg shape: a helper
// called per element reloads loop-invariant parameters from memory on
// every call (redundant loads); the fixed (inlined) variant hoists them.
func calleeReload(name string, elems, iters, work int64, fixed bool) func(scale int) *isa.Program {
	return func(scale int) *isa.Program {
		b := isa.NewBuilder(name)

		helper := b.Func("helper") // R9 = element index
		if !fixed {
			helper.MovImm(isa.R4, baseGlob)
			helper.Load(isa.R6, isa.R4, 0, 8)   // stride (invariant)
			helper.Load(isa.R7, isa.R4, 8, 8)   // width  (invariant)
			helper.Load(isa.R10, isa.R4, 16, 8) // offset (invariant)
		}
		helper.Mul(isa.R5, isa.R9, isa.R6)
		helper.Add(isa.R5, isa.R5, isa.R7)
		helper.Add(isa.R5, isa.R5, isa.R10)
		helper.AddImm(isa.R5, isa.R5, baseB)
		helper.Load(isa.R11, isa.R5, 0, 8) // the pixel itself
		if !fixed {
			// The out-of-line helper writes its result to a scratch
			// return slot the caller never reads: a dead store per call.
			helper.MovImm(isa.R4, baseGlob)
			helper.Store(isa.R4, 64, isa.R11, 8)
		}
		helper.Ret()

		main := b.Func("main")
		main.MovImm(isa.R4, baseGlob)
		main.MovImm(isa.R6, 8)
		main.Store(isa.R4, 0, isa.R6, 8) // stride
		main.MovImm(isa.R7, 16)
		main.Store(isa.R4, 8, isa.R7, 8) // width
		main.MovImm(isa.R10, 4)
		main.Store(isa.R4, 16, isa.R10, 8) // offset
		main.LoopN(isa.R2, iters*int64(scale), func(fb *isa.FuncBuilder) {
			if fixed {
				fb.MovImm(isa.R4, baseGlob)
				fb.Load(isa.R6, isa.R4, 0, 8) // hoisted
				fb.Load(isa.R7, isa.R4, 8, 8)
				fb.Load(isa.R10, isa.R4, 16, 8)
			}
			fb.LoopN(isa.R9, elems, func(fb *isa.FuncBuilder) {
				fb.Call("helper")
			})
			fillerALU(fb, work)
		})
		main.Halt()
		return b.MustBuild()
	}
}

// lbmStencil builds the lbm shape of §8.5: a floating-point stencil
// whose per-iteration drift is below the 1% comparison precision, making
// it "an excellent candidate for approximate computing". The fixed
// variant applies loop perforation (skip every fourth element update),
// the paper's 1.25× optimization.
func lbmStencil(elems, iters int64, perforated bool) func(scale int) *isa.Program {
	return func(scale int) *isa.Program {
		b := isa.NewBuilder("lbm-perforation")

		setup := b.Func("setup")
		setup.LoopN(isa.R1, elems, func(fb *isa.FuncBuilder) {
			fb.MulImm(isa.R5, isa.R1, 8)
			fb.AddImm(isa.R5, isa.R5, baseA)
			fb.FMovImm(isa.R6, 100.0)
			fb.FStore(isa.R5, 0, isa.R6)
		})
		setup.Ret()

		step := b.Func("stencil_step")
		step.LoopN(isa.R1, elems, func(fb *isa.FuncBuilder) {
			fb.MulImm(isa.R5, isa.R1, 8)
			fb.AddImm(isa.R5, isa.R5, baseA)
			fb.FLoad(isa.R6, isa.R5, 0)
			fb.FMovImm(isa.R7, 1.0001)
			fb.FMul(isa.R6, isa.R6, isa.R7)
			fb.FMul(isa.R6, isa.R6, isa.R7)
			fb.FDiv(isa.R6, isa.R6, isa.R7) // extra FP work per element
			fb.FStore(isa.R5, 0, isa.R6)    // silent within 1% precision
		})
		step.Ret()

		main := b.Func("main")
		main.Call("setup")
		main.LoopN(isa.R9, iters*int64(scale), func(fb *isa.FuncBuilder) {
			if perforated {
				// Outer-loop perforation: skip every 4th time step —
				// the values drift <1% per step, so the accuracy loss
				// is negligible (the paper measured 7.7e-5%).
				fb.MovImm(isa.R7, 4)
				fb.Mod(isa.R6, isa.R9, isa.R7)
				fb.MovImm(isa.R7, 3)
				fb.Beq(isa.R6, isa.R7, "skipstep")
			}
			fb.Call("stencil_step")
			if perforated {
				fb.Label("skipstep")
			}
		})
		main.Halt()
		return b.MustBuild()
	}
}

// CaseStudies returns the Table 3 experiments. Each row's Buggy/Fixed
// programs implement the paper's inefficiency class with the cited shape;
// PaperSpeedup is what Table 3 reports on real hardware.
func CaseStudies() []CaseStudy {
	hash := hashProgram(4096, 4060, 97, 6000, 2)
	return []CaseStudy{
		{
			Name: "gcc-cselib", Program: "gcc (SPEC CPU2006)", Location: "cselib.c:cselib_init",
			Problem: "Poor data structure", Tool: "DS", PaperSpeedup: 1.33,
			Buggy: overInit("gcc-cselib", 2048, 2, 60, 8300, false),
			Fixed: overInit("gcc-cselib", 2048, 2, 60, 8300, true),
		},
		{
			Name: "bzip2-mainGtU", Program: "bzip2 (SPEC CPU2006)", Location: "blocksort.c:mainGtU_init",
			Problem: "Poor code generation", Tool: "DS", PaperSpeedup: 1.07,
			Buggy: overInit("bzip2-mainGtU", 256, 3, 100, 4600, false),
			Fixed: overInit("bzip2-mainGtU", 256, 3, 100, 4600, true),
		},
		{
			Name: "hmmer-novec", Program: "hmmer (SPEC CPU2006)", Location: "fast_algorithms.c:loop(119)",
			Problem: "No vectorization", Tool: "DS/SS", PaperSpeedup: 1.28,
			Buggy: scalarTemp("hmmer-novec", 512, 250, 380, false),
			Fixed: scalarTemp("hmmer-novec", 512, 250, 380, true),
		},
		{
			Name: "h264ref-inline", Program: "h264ref (SPEC CPU2006)", Location: "mv-search.c:loop(394)",
			Problem: "Missed inlining", Tool: "SL", PaperSpeedup: 1.27,
			Buggy: calleeReload("h264ref-inline", 64, 600, 70, false),
			Fixed: calleeReload("h264ref-inline", 64, 600, 70, true),
		},
		{
			Name: "povray-csg", Program: "povray (SPEC CPU2006)", Location: "csg.cpp:loop(248)",
			Problem: "Missed inlining", Tool: "DS", PaperSpeedup: 1.08,
			Buggy: calleeReload("povray-csg", 160, 300, 1580, false),
			Fixed: calleeReload("povray-csg", 160, 300, 1580, true),
		},
		{
			Name: "chombo-polytropic", Program: "Chombo", Location: "PolytropicPhysicsF.ChF:434",
			Problem: "Inattention to performance", Tool: "DS", PaperSpeedup: 1.07,
			Buggy: overInit("chombo-polytropic", 320, 4, 80, 5200, false),
			Fixed: overInit("chombo-polytropic", 320, 4, 80, 5200, true),
		},
		{
			Name: "botsspar-fwd", Program: "botsspar (SPEC OMP2012)", Location: "sparselu.c:fwd",
			Problem: "Redundant computation", Tool: "SL", PaperSpeedup: 1.15,
			Buggy: memoize("botsspar-fwd", 700, 48, 380, false),
			Fixed: memoize("botsspar-fwd", 700, 48, 380, true),
		},
		{
			Name: "imagick-effect", Program: "367.imagick (SPEC OMP2012)", Location: "magick_effect.c:loop(1482)",
			Problem: "Redundant computation", Tool: "SL", PaperSpeedup: 1.6,
			Buggy: zeroSkip("imagick-effect", 40, 40, 64, 10, 3, 45, false),
			Fixed: zeroSkip("imagick-effect", 40, 40, 64, 10, 3, 45, true),
		},
		{
			Name: "smb-msgrate", Program: "SMB (NERSC Trinity)", Location: "msgrate.c:cache_invalidate",
			Problem: "Redundant computation", Tool: "SL", PaperSpeedup: 1.47,
			Buggy: memoize("smb-msgrate", 700, 64, 100, false),
			Fixed: memoize("smb-msgrate", 700, 64, 100, true),
		},
		{
			Name: "backprop-adjust", Program: "backprop (Rodinia)", Location: "bpnn_adjust_weights",
			Problem: "Redundant computation", Tool: "SS", PaperSpeedup: 1.20,
			Buggy: scalarTemp("backprop-adjust", 384, 250, 600, false),
			Fixed: scalarTemp("backprop-adjust", 384, 250, 600, true),
		},
		{
			Name: "lavaMD-kernel", Program: "lavaMD (Rodinia)", Location: "kernel_cpu.c:loop(117)",
			Problem: "Redundant computation", Tool: "SL", PaperSpeedup: 1.66,
			Buggy: zeroSkip("lavaMD-kernel", 36, 36, 56, 8, 3, 25, false),
			Fixed: zeroSkip("lavaMD-kernel", 36, 36, 56, 8, 3, 25, true),
		},
		{
			Name: "vacation-lookup", Program: "vacation (STAMP)", Location: "client.c:loop(198)",
			Problem: "Redundant computation", Tool: "SL", PaperSpeedup: 1.31,
			Buggy: memoize("vacation-lookup", 800, 56, 175, false),
			Fixed: memoize("vacation-lookup", 800, 56, 175, true),
		},
		{
			Name: "nwchem-dfill", Program: "NWChem-6.3", Location: "tce_mo2e_trans.F:240",
			Problem: "Useless initialization", Tool: "DS/SS", PaperSpeedup: 1.43,
			Buggy: overInit("nwchem-dfill", 4096, 3, 50, 13600, false),
			Fixed: overInit("nwchem-dfill", 4096, 3, 50, 13600, true),
		},
		{
			Name: "caffe-pooling", Program: "Caffe-1.0", Location: "pooling_layer.cpp:289",
			Problem: "Redundant computation", Tool: "SS", PaperSpeedup: 1.06,
			Buggy: zeroSkip("caffe-pooling", 32, 32, 48, 12, 1, 250, false),
			Fixed: zeroSkip("caffe-pooling", 32, 32, 48, 12, 1, 250, true),
		},
		{
			Name: "binutils-dwarf2", Program: "Binutils-2.27", Location: "dwarf2.c:1561",
			Problem: "Linear search algorithm", Tool: "SL", PaperSpeedup: 10,
			Buggy: searchProgram(220, 700, 25, false),
			Fixed: searchProgram(220, 700, 25, true),
		},
		{
			Name: "kallisto-hash", Program: "Kallisto-0.43", Location: "KmerHashTable.h:131",
			Problem: "Poor hashing", Tool: "SL", PaperSpeedup: 4.1,
			Buggy: hash(false),
			Fixed: hash(true),
		},
		{
			Name: "lbm-perforation", Program: "lbm (SPEC CPU2006)", Location: "stencil loop (§8.5)",
			Problem: "Approximate-computing candidate", Tool: "SS", PaperSpeedup: 1.25,
			Buggy: lbmStencil(512, 240, false),
			Fixed: lbmStencil(512, 240, true),
		},
	}
}

// CaseStudyByName returns the named Table 3 case.
func CaseStudyByName(name string) (CaseStudy, bool) {
	for _, cs := range CaseStudies() {
		if cs.Name == name {
			return cs, true
		}
	}
	return CaseStudy{}, false
}
