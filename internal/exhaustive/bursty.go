package exhaustive

import (
	"repro/internal/machine"
)

// Bursty wraps an exhaustive spy with bursty tracing (Hirzel & Chilimbi;
// the mitigation RedSpy ships with, §2 of the Witch paper): monitoring is
// enabled for On consecutive accesses, then disabled for Off, repeating.
// Call/return edges are always tracked (the calling-context cursor must
// stay correct), so the burst discount applies to shadow-memory work
// only — which is why the paper reports bursty sampling still costing ~12×
// while Witch costs <5%.
type Bursty struct {
	Spy
	// On and Off are the duty-cycle window lengths in accesses.
	On, Off uint64

	pos        uint64
	observed   uint64
	suppressed uint64
}

// NewBursty wraps spy with an On/Off access duty cycle.
func NewBursty(spy Spy, on, off uint64) *Bursty {
	if on == 0 {
		on = 1
	}
	return &Bursty{Spy: spy, On: on, Off: off}
}

// Name implements Spy.
func (b *Bursty) Name() string { return b.Spy.Name() + "+bursty" }

// OnAccess forwards only during the on-window.
func (b *Bursty) OnAccess(t *machine.Thread, acc *machine.Access) {
	inWindow := b.pos%(b.On+b.Off) < b.On
	b.pos++
	if inWindow {
		b.observed++
		b.Spy.OnAccess(t, acc)
		return
	}
	b.suppressed++
}

// Coverage returns the fraction of accesses actually observed.
func (b *Bursty) Coverage() float64 {
	total := b.observed + b.suppressed
	if total == 0 {
		return 0
	}
	return float64(b.observed) / float64(total)
}

// Finish implements Spy, renaming the result.
func (b *Bursty) Finish() *Result {
	res := b.Spy.Finish()
	res.Tool = b.Name()
	return res
}
