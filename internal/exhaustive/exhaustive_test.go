package exhaustive

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
)

// deadProg: store A twice (dead), store B then load it (used).
func deadProg() *isa.Program {
	b := isa.NewBuilder("t")
	f := b.Func("main")
	f.MovImm(isa.R1, 0x100)
	f.MovImm(isa.R2, 0x200)
	f.MovImm(isa.R3, 7)
	f.Store(isa.R1, 0, isa.R3, 8) // dead
	f.Store(isa.R1, 0, isa.R3, 8) // kill (also trailing)
	f.Store(isa.R2, 0, isa.R3, 8) // used
	f.Load(isa.R4, isa.R2, 0, 8)
	f.Halt()
	return b.MustBuild()
}

func run(t *testing.T, prog *isa.Program, spy Spy) *Result {
	t.Helper()
	res, err := Run(machine.New(prog, machine.Config{}), spy)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestDeadSpyExactCounts(t *testing.T) {
	prog := deadProg()
	res := run(t, prog, NewDeadSpy(prog))
	if res.Waste != 8 {
		t.Fatalf("dead bytes = %v, want 8", res.Waste)
	}
	if res.Use != 8 {
		t.Fatalf("used bytes = %v, want 8", res.Use)
	}
	if res.Redundancy() != 0.5 {
		t.Fatalf("D = %v, want 0.5", res.Redundancy())
	}
	if res.Loads != 1 || res.Stores != 3 {
		t.Fatalf("loads/stores = %d/%d", res.Loads, res.Stores)
	}
}

func TestRedSpySilentVsNoisy(t *testing.T) {
	b := isa.NewBuilder("t")
	f := b.Func("main")
	f.MovImm(isa.R1, 0x100)
	f.MovImm(isa.R3, 7)
	f.Store(isa.R1, 0, isa.R3, 8) // first store: no previous value
	f.Store(isa.R1, 0, isa.R3, 8) // silent (same value)
	f.MovImm(isa.R3, 8)
	f.Store(isa.R1, 0, isa.R3, 8) // not silent
	f.Halt()
	prog := b.MustBuild()
	res := run(t, prog, NewRedSpy(prog))
	if res.Waste != 8 || res.Use != 8 {
		t.Fatalf("waste/use = %v/%v, want 8/8", res.Waste, res.Use)
	}
}

func TestRedSpyFloatApprox(t *testing.T) {
	b := isa.NewBuilder("t")
	f := b.Func("main")
	f.MovImm(isa.R1, 0x100)
	f.FMovImm(isa.R3, 100.0)
	f.FStore(isa.R1, 0, isa.R3)
	f.FMovImm(isa.R3, 100.5) // within 1%: approximately silent
	f.FStore(isa.R1, 0, isa.R3)
	f.FMovImm(isa.R3, 150.0) // far: not silent
	f.FStore(isa.R1, 0, isa.R3)
	f.Halt()
	prog := b.MustBuild()
	res := run(t, prog, NewRedSpy(prog))
	if res.Waste != 8 || res.Use != 8 {
		t.Fatalf("waste/use = %v/%v, want 8/8", res.Waste, res.Use)
	}
}

func TestLoadSpyIgnoresStores(t *testing.T) {
	b := isa.NewBuilder("t")
	f := b.Func("main")
	f.MovImm(isa.R1, 0x100)
	f.MovImm(isa.R3, 7)
	f.Store(isa.R1, 0, isa.R3, 8)
	f.Load(isa.R4, isa.R1, 0, 8)  // first load: no previous load
	f.Store(isa.R1, 0, isa.R3, 8) // intervening store, same value
	f.Load(isa.R4, isa.R1, 0, 8)  // redundant: loaded value unchanged
	f.MovImm(isa.R3, 9)
	f.Store(isa.R1, 0, isa.R3, 8)
	f.Load(isa.R4, isa.R1, 0, 8) // fresh: value changed
	f.Halt()
	prog := b.MustBuild()
	res := run(t, prog, NewLoadSpy(prog))
	if res.Waste != 8 || res.Use != 8 {
		t.Fatalf("waste/use = %v/%v, want 8/8", res.Waste, res.Use)
	}
}

func TestPairAttributionAcrossCalls(t *testing.T) {
	b := isa.NewBuilder("t")
	w := b.Func("writer")
	w.MovImm(isa.R1, 0x100)
	w.MovImm(isa.R3, 1)
	w.Store(isa.R1, 0, isa.R3, 8)
	w.Ret()
	k := b.Func("killer")
	k.MovImm(isa.R1, 0x100)
	k.MovImm(isa.R3, 2)
	k.Store(isa.R1, 0, isa.R3, 8)
	k.Ret()
	m := b.Func("main")
	m.Call("writer")
	m.Call("killer")
	m.Halt()
	b.SetEntry("main")
	prog := b.MustBuild()
	res := run(t, prog, NewDeadSpy(prog))
	pairs := res.Tree.Pairs()
	if len(pairs) != 1 {
		t.Fatalf("pairs = %d, want 1", len(pairs))
	}
	if pairs[0].Waste != 8 {
		t.Fatalf("pair waste = %v", pairs[0].Waste)
	}
	if want := "t:writer:"; pairs[0].Src[:len(want)] != want {
		t.Fatalf("src = %q", pairs[0].Src)
	}
	if want := "t:killer:"; pairs[0].Dst[:len(want)] != want {
		t.Fatalf("dst = %q", pairs[0].Dst)
	}
}

func TestToolBytesIncludesShadow(t *testing.T) {
	prog := deadProg()
	res := run(t, prog, NewDeadSpy(prog))
	if res.ToolBytes == 0 {
		t.Fatal("tool bytes should be accounted")
	}
}

func TestPartialWidthOverwrite(t *testing.T) {
	b := isa.NewBuilder("t")
	f := b.Func("main")
	f.MovImm(isa.R1, 0x100)
	f.MovImm(isa.R3, 0x11223344)
	f.Store(isa.R1, 0, isa.R3, 8) // 8-byte store
	f.Store(isa.R1, 0, isa.R3, 2) // 2-byte overwrite: kills 2 of 8 bytes
	f.Load(isa.R4, isa.R1, 4, 4)  // read bytes 4..8: those 4 were used
	f.Halt()
	prog := b.MustBuild()
	res := run(t, prog, NewDeadSpy(prog))
	if res.Waste != 2 {
		t.Fatalf("dead bytes = %v, want 2", res.Waste)
	}
	if res.Use != 4 {
		t.Fatalf("used bytes = %v, want 4", res.Use)
	}
}
