package exhaustive

import (
	"math"
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
)

// burstyProg emits a long loop with a fixed dead-store ratio.
func burstyProg() *isa.Program {
	b := isa.NewBuilder("bursty")
	f := b.Func("main")
	f.MovImm(isa.R1, 0x100)
	f.MovImm(isa.R2, 0x200)
	f.LoopN(isa.R9, 20000, func(fb *isa.FuncBuilder) {
		fb.Store(isa.R1, 0, isa.R9, 8) // dead (next iteration overwrites)
		fb.Store(isa.R2, 0, isa.R9, 8) // used
		fb.Load(isa.R3, isa.R2, 0, 8)
	})
	f.Halt()
	return b.MustBuild()
}

func TestBurstyCoverageAndAccuracy(t *testing.T) {
	prog := burstyProg()
	full, err := Run(machine.New(prog, machine.Config{}), NewDeadSpy(prog))
	if err != nil {
		t.Fatal(err)
	}
	spy := NewDeadSpy(prog)
	burst := NewBursty(spy, 1000, 9000)
	res, err := Run(machine.New(prog, machine.Config{}), burst)
	if err != nil {
		t.Fatal(err)
	}
	if c := burst.Coverage(); math.Abs(c-0.1) > 0.02 {
		t.Fatalf("coverage = %.3f, want ~0.1", c)
	}
	// The redundancy ratio survives bursting on a homogeneous workload.
	if math.Abs(res.Redundancy()-full.Redundancy()) > 0.1 {
		t.Fatalf("bursty D %.3f vs full %.3f", res.Redundancy(), full.Redundancy())
	}
	// Absolute waste shrinks to ~coverage of the full count.
	if res.Waste >= full.Waste/2 {
		t.Fatalf("bursty waste %v should be a fraction of full %v", res.Waste, full.Waste)
	}
	if res.Tool != "DeadSpy+bursty" {
		t.Fatalf("tool = %q", res.Tool)
	}
}

func TestBurstyKeepsCallPathCursorCorrect(t *testing.T) {
	// Calls happen during off-windows too; the cursor must stay correct
	// so attribution in on-windows points at the right contexts.
	b := isa.NewBuilder("t")
	wfn := b.Func("writer")
	wfn.MovImm(isa.R1, 0x100)
	wfn.Store(isa.R1, 0, isa.R1, 8)
	wfn.Store(isa.R1, 0, isa.R1, 8) // dead pair inside writer
	wfn.Ret()
	main := b.Func("main")
	main.LoopN(isa.R9, 500, func(fb *isa.FuncBuilder) {
		fb.Call("writer")
	})
	main.Halt()
	b.SetEntry("main")
	prog := b.MustBuild()

	burst := NewBursty(NewDeadSpy(prog), 10, 90)
	res, err := Run(machine.New(prog, machine.Config{}), burst)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Tree.Pairs() {
		if p.Waste > 0 && p.Src[:len("t:writer:")] != "t:writer:" {
			t.Fatalf("misattributed pair src %q", p.Src)
		}
	}
}
