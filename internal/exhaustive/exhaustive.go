// Package exhaustive implements the ground-truth instrumentation tools the
// paper evaluates Witch against: DeadSpy (dead stores), RedSpy (silent
// stores; register redundancy disabled, as in the paper's evaluation), and
// LoadSpy (redundant loads — which the authors wrote themselves because no
// prior tool existed). Each tool observes *every* retired memory access
// through the machine's Observer hook, maintains per-byte shadow state,
// and attributes waste/use bytes to calling-context pairs on a CCT kept
// incrementally with a per-thread cursor (CCTLib style).
//
// These tools are deliberately heavyweight — shadow entry per application
// byte, CCT work on every access — because their cost relative to the
// sampling crafts is itself one of the paper's results (Tables 1 and 2).
package exhaustive

import (
	"time"

	"repro/internal/cct"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/pmu"
	"repro/internal/shadow"
)

// Result is the outcome of an exhaustive profiling run.
type Result struct {
	Tool       string
	Tree       *cct.Tree
	Waste, Use float64
	WallTime   time.Duration
	ToolBytes  uint64
	Instrs     uint64
	Loads      uint64
	Stores     uint64
}

// Redundancy returns waste/(waste+use) — the same Equation 1 metric the
// sampling tools report, making Figure 4 a direct comparison.
func (r *Result) Redundancy() float64 {
	if r.Waste+r.Use == 0 {
		return 0
	}
	return r.Waste / (r.Waste + r.Use)
}

// Spy is an exhaustive tool: a machine Observer that can summarize itself.
type Spy interface {
	machine.Observer
	Name() string
	// Finish computes the result after the machine has run.
	Finish() *Result
}

// base carries the CCT, per-thread cursors, and the pair-node cache shared
// by all three spies.
type base struct {
	name    string
	tree    *cct.Tree
	cursors map[int]*cct.Node
	pairs   map[[2]*cct.Node]*cct.Node
	bytes   func() uint64

	instrs, loads, stores uint64
}

func newBase(name string, prog *isa.Program) base {
	return base{
		name:    name,
		tree:    cct.New(prog),
		cursors: make(map[int]*cct.Node),
		pairs:   make(map[[2]*cct.Node]*cct.Node),
	}
}

// Name implements Spy.
func (b *base) Name() string { return b.name }

// cursor returns the thread's current CCT frame node, replaying the live
// stack on first sight of the thread.
func (b *base) cursor(t *machine.Thread) *cct.Node {
	n, ok := b.cursors[t.ID]
	if !ok {
		n = b.tree.Root()
		for _, f := range t.Frames() {
			n = b.tree.ChildFrame(n, f.CallSite, f.FuncIdx)
		}
		b.cursors[t.ID] = n
	}
	return n
}

// OnCall implements machine.Observer.
func (b *base) OnCall(t *machine.Thread, callee int32, site isa.PC) {
	b.cursors[t.ID] = b.tree.ChildFrame(b.cursor(t), site, callee)
}

// OnRet implements machine.Observer.
func (b *base) OnRet(t *machine.Thread) {
	cur := b.cursor(t)
	if p := cur.Parent(); p != nil {
		b.cursors[t.ID] = p
	}
}

// leaf interns the context leaf for the current access.
func (b *base) leaf(t *machine.Thread, pc isa.PC) *cct.Node {
	return b.tree.ChildLeaf(b.cursor(t), pc)
}

// pair returns (caching) the synthetic-chain node for ⟨src, dst⟩.
func (b *base) pair(src, dst *cct.Node) *cct.Node {
	k := [2]*cct.Node{src, dst}
	if n, ok := b.pairs[k]; ok {
		return n
	}
	n := b.tree.PairNode(src, dst)
	b.pairs[k] = n
	return n
}

// count tallies retirement statistics.
func (b *base) count(kind pmu.AccessKind) {
	b.instrs++
	if kind == pmu.Load {
		b.loads++
	} else {
		b.stores++
	}
}

// finish assembles the common result fields.
func (b *base) finish(wall time.Duration, shadowBytes uint64) *Result {
	waste, use := b.tree.Totals()
	return &Result{
		Tool:      b.name,
		Tree:      b.tree,
		Waste:     waste,
		Use:       use,
		WallTime:  wall,
		ToolBytes: b.tree.Bytes() + shadowBytes + uint64(len(b.pairs))*48,
		Instrs:    b.instrs,
		Loads:     b.loads,
		Stores:    b.stores,
	}
}

// deadEntry is DeadSpy's per-byte shadow state: the last operation kind on
// the byte and, for stores, the storing context.
type deadEntry struct {
	op  uint8 // 0 untouched, 1 load, 2 store
	ctx *cct.Node
}

// DeadSpy detects dead writes exhaustively: a write→write transition on a
// shadow byte is a dead write of the earlier store (Chabbi &
// Mellor-Crummey, CGO'12).
type DeadSpy struct {
	base
	shadow *shadow.Table[deadEntry]
	start  time.Time
}

// NewDeadSpy returns a DeadSpy over prog.
func NewDeadSpy(prog *isa.Program) *DeadSpy {
	return &DeadSpy{base: newBase("DeadSpy", prog), shadow: shadow.NewTable[deadEntry](), start: time.Now()}
}

// OnAccess implements machine.Observer.
func (d *DeadSpy) OnAccess(t *machine.Thread, acc *machine.Access) {
	d.count(acc.Kind)
	ctx := d.leaf(t, acc.PC)
	if acc.Kind == pmu.Store {
		for i := uint8(0); i < acc.Width; i++ {
			e := d.shadow.At(acc.Addr + uint64(i))
			if e.op == 2 {
				// Store after store: the previous store byte was dead.
				d.pair(e.ctx, ctx).Waste++
			}
			e.op = 2
			e.ctx = ctx
		}
		return
	}
	for i := uint8(0); i < acc.Width; i++ {
		e := d.shadow.At(acc.Addr + uint64(i))
		if e.op == 2 {
			// Load after store: the store byte was useful.
			d.pair(e.ctx, ctx).Use++
		}
		e.op = 1
	}
}

// Finish implements Spy.
func (d *DeadSpy) Finish() *Result {
	return d.finish(time.Since(d.start), d.shadow.Bytes())
}

// valueEntry is the per-byte shadow state for the two value-locality
// spies: validity, last value byte, and the context that produced it.
type valueEntry struct {
	valid bool
	val   byte
	ctx   *cct.Node
}

// RedSpy detects silent stores exhaustively: a store whose bytes equal the
// bytes already present (with approximate equality for floating-point
// data, as the paper's evaluation configures).
type RedSpy struct {
	base
	shadow    *shadow.Table[valueEntry]
	precision float64
	start     time.Time
}

// NewRedSpy returns a RedSpy with the paper's 1% FP precision.
func NewRedSpy(prog *isa.Program) *RedSpy {
	return &RedSpy{base: newBase("RedSpy", prog), shadow: shadow.NewTable[valueEntry](), precision: 0.01, start: time.Now()}
}

// OnAccess implements machine.Observer.
func (r *RedSpy) OnAccess(t *machine.Thread, acc *machine.Access) {
	r.count(acc.Kind)
	if acc.Kind != pmu.Store {
		return
	}
	ctx := r.leaf(t, acc.PC)
	classifyValue(&r.base, r.shadow, acc, ctx, r.precision)
}

// Finish implements Spy.
func (r *RedSpy) Finish() *Result {
	return r.finish(time.Since(r.start), r.shadow.Bytes())
}

// LoadSpy detects redundant loads exhaustively: a load observing the same
// value as the previous load of the same bytes (intervening stores are
// ignored, per §6.2 — only consecutive *loaded values* are compared).
type LoadSpy struct {
	base
	shadow    *shadow.Table[valueEntry]
	precision float64
	start     time.Time
}

// NewLoadSpy returns a LoadSpy with the paper's 1% FP precision.
func NewLoadSpy(prog *isa.Program) *LoadSpy {
	return &LoadSpy{base: newBase("LoadSpy", prog), shadow: shadow.NewTable[valueEntry](), precision: 0.01, start: time.Now()}
}

// OnAccess implements machine.Observer.
func (l *LoadSpy) OnAccess(t *machine.Thread, acc *machine.Access) {
	l.count(acc.Kind)
	if acc.Kind != pmu.Load {
		return
	}
	ctx := l.leaf(t, acc.PC)
	classifyValue(&l.base, l.shadow, acc, ctx, l.precision)
}

// classifyValue updates value shadow state for one access and attributes
// waste (unchanged value) or use (changed) bytes against the previous
// same-kind access. Classification is all-or-nothing at instruction
// granularity (§6.4: "if a dynamic instruction writes M bytes, either all
// M bytes contribute to the inefficiency metric or none"), with
// approximate comparison for full-width floating-point accesses.
func classifyValue(b *base, tbl *shadow.Table[valueEntry], acc *machine.Access, ctx *cct.Node, precision float64) {
	var prev uint64
	complete := true
	e0 := tbl.At(acc.Addr)
	for i := uint8(0); i < acc.Width; i++ {
		e := tbl.At(acc.Addr + uint64(i))
		if !e.valid {
			complete = false
			break
		}
		prev |= uint64(e.val) << (8 * i)
	}
	if complete {
		same := prev == acc.Value
		if acc.Float && acc.Width == 8 {
			same = approxEqual(prev, acc.Value, precision)
		}
		if same {
			b.pair(e0.ctx, ctx).Waste += float64(acc.Width)
		} else {
			b.pair(e0.ctx, ctx).Use += float64(acc.Width)
		}
	}
	for i := uint8(0); i < acc.Width; i++ {
		e := tbl.At(acc.Addr + uint64(i))
		e.valid, e.val, e.ctx = true, byte(acc.Value>>(8*i)), ctx
	}
}

// approxEqual compares two float64 bit patterns within a relative
// precision.
func approxEqual(bits1, bits2 uint64, precision float64) bool {
	f1, f2 := isa.F64(bits1), isa.F64(bits2)
	if f1 == f2 {
		return true
	}
	d := f1 - f2
	if d < 0 {
		d = -d
	}
	m1, m2 := f1, f2
	if m1 < 0 {
		m1 = -m1
	}
	if m2 < 0 {
		m2 = -m2
	}
	if m2 > m1 {
		m1 = m2
	}
	return d <= precision*m1
}

// Finish implements Spy.
func (l *LoadSpy) Finish() *Result {
	return l.finish(time.Since(l.start), l.shadow.Bytes())
}

// Run attaches the spy to the machine, runs it to completion, and returns
// the result.
func Run(m *machine.Machine, s Spy) (*Result, error) {
	m.SetObserver(s)
	start := time.Now()
	if err := m.Run(); err != nil {
		return nil, err
	}
	res := s.Finish()
	res.WallTime = time.Since(start)
	return res, nil
}
