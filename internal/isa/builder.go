package isa

import "fmt"

// Builder assembles a Program from a fluent, label-based API. Workload
// generators use it instead of hand-writing instruction slices; the text
// assembler in internal/asm lowers onto it too.
type Builder struct {
	prog    *Program
	file    string
	entry   string
	funcs   map[string]int
	pending []*FuncBuilder
	errs    []error
}

// NewBuilder returns a Builder whose functions are attributed to the given
// pseudo source file (typically the workload name).
func NewBuilder(file string) *Builder {
	return &Builder{
		prog:  &Program{},
		file:  file,
		funcs: map[string]int{},
	}
}

// errf records a build error; Build reports the first one.
func (b *Builder) errf(format string, args ...any) {
	b.errs = append(b.errs, fmt.Errorf("isa builder: "+format, args...))
}

// Func starts (or errors on a duplicate of) a new function.
func (b *Builder) Func(name string) *FuncBuilder {
	if _, dup := b.funcs[name]; dup {
		b.errf("duplicate function %q", name)
	}
	idx := len(b.prog.Funcs)
	b.funcs[name] = idx
	f := &Function{Name: name, File: b.file}
	b.prog.Funcs = append(b.prog.Funcs, f)
	fb := &FuncBuilder{b: b, f: f, labels: map[string]int{}, line: 1}
	b.pending = append(b.pending, fb)
	return fb
}

// SetEntry selects the entry function by name; defaults to "main" if
// present, else the first function.
func (b *Builder) SetEntry(name string) { b.entry = name }

// Build resolves labels and call targets, validates, and returns the
// program.
func (b *Builder) Build() (*Program, error) {
	for _, fb := range b.pending {
		fb.resolve()
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	entry := b.entry
	if entry == "" {
		entry = "main"
	}
	if idx, ok := b.funcs[entry]; ok {
		b.prog.Entry = idx
	} else if b.entry != "" {
		return nil, fmt.Errorf("isa builder: entry function %q not defined", b.entry)
	}
	if err := b.prog.Validate(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// MustBuild is Build that panics on error; for workload constructors whose
// programs are fixed at compile time.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}

// fixup is an unresolved label or call reference.
type fixup struct {
	instr int
	label string // branch label, or "" for a call fixup
	call  string // callee name for call fixups
}

// FuncBuilder emits instructions into one function.
type FuncBuilder struct {
	b      *Builder
	f      *Function
	labels map[string]int
	fixups []fixup
	line   int32
}

// Line sets the source line attributed to subsequently emitted
// instructions. If never called, lines auto-increment per instruction.
func (fb *FuncBuilder) Line(n int) *FuncBuilder { fb.line = int32(n); return fb }

// Len returns the number of instructions emitted so far.
func (fb *FuncBuilder) Len() int { return len(fb.f.Code) }

// Emit appends a raw instruction, stamping the current source line if the
// instruction has none.
func (fb *FuncBuilder) Emit(in Instr) *FuncBuilder {
	if in.Line == 0 {
		in.Line = fb.line
		fb.line++
	}
	if in.Latency == 0 {
		in.Latency = 1
	}
	fb.f.Code = append(fb.f.Code, in)
	return fb
}

// Label defines a branch target at the current position.
func (fb *FuncBuilder) Label(name string) *FuncBuilder {
	if _, dup := fb.labels[name]; dup {
		fb.b.errf("%s: duplicate label %q", fb.f.Name, name)
	}
	fb.labels[name] = len(fb.f.Code)
	return fb
}

// MovImm emits R[dst] = imm.
func (fb *FuncBuilder) MovImm(dst Reg, imm int64) *FuncBuilder {
	return fb.Emit(Instr{Op: OpMovImm, Dst: dst, Imm: imm})
}

// FMovImm emits R[dst] = bits(f).
func (fb *FuncBuilder) FMovImm(dst Reg, f float64) *FuncBuilder {
	return fb.Emit(Instr{Op: OpFMovImm, Dst: dst, Imm: int64(F64Bits(f))})
}

// Mov emits R[dst] = R[a].
func (fb *FuncBuilder) Mov(dst, a Reg) *FuncBuilder {
	return fb.Emit(Instr{Op: OpMov, Dst: dst, A: a})
}

// Add emits R[dst] = R[a] + R[b].
func (fb *FuncBuilder) Add(dst, a, b Reg) *FuncBuilder {
	return fb.Emit(Instr{Op: OpAdd, Dst: dst, A: a, B: b})
}

// AddImm emits R[dst] = R[a] + imm.
func (fb *FuncBuilder) AddImm(dst, a Reg, imm int64) *FuncBuilder {
	return fb.Emit(Instr{Op: OpAddImm, Dst: dst, A: a, Imm: imm})
}

// Sub emits R[dst] = R[a] - R[b].
func (fb *FuncBuilder) Sub(dst, a, b Reg) *FuncBuilder {
	return fb.Emit(Instr{Op: OpSub, Dst: dst, A: a, B: b})
}

// Mul emits R[dst] = R[a] * R[b].
func (fb *FuncBuilder) Mul(dst, a, b Reg) *FuncBuilder {
	return fb.Emit(Instr{Op: OpMul, Dst: dst, A: a, B: b})
}

// MulImm emits R[dst] = R[a] * imm.
func (fb *FuncBuilder) MulImm(dst, a Reg, imm int64) *FuncBuilder {
	return fb.Emit(Instr{Op: OpMulImm, Dst: dst, A: a, Imm: imm})
}

// Mod emits R[dst] = R[a] % R[b].
func (fb *FuncBuilder) Mod(dst, a, b Reg) *FuncBuilder {
	return fb.Emit(Instr{Op: OpMod, Dst: dst, A: a, B: b})
}

// Xor emits R[dst] = R[a] ^ R[b].
func (fb *FuncBuilder) Xor(dst, a, b Reg) *FuncBuilder {
	return fb.Emit(Instr{Op: OpXor, Dst: dst, A: a, B: b})
}

// FAdd emits floating-point addition.
func (fb *FuncBuilder) FAdd(dst, a, b Reg) *FuncBuilder {
	return fb.Emit(Instr{Op: OpFAdd, Dst: dst, A: a, B: b})
}

// FMul emits floating-point multiplication.
func (fb *FuncBuilder) FMul(dst, a, b Reg) *FuncBuilder {
	return fb.Emit(Instr{Op: OpFMul, Dst: dst, A: a, B: b})
}

// FDiv emits floating-point division.
func (fb *FuncBuilder) FDiv(dst, a, b Reg) *FuncBuilder {
	return fb.Emit(Instr{Op: OpFDiv, Dst: dst, A: a, B: b})
}

// Load emits R[dst] = mem[R[base]+off] of the given width.
func (fb *FuncBuilder) Load(dst, base Reg, off int64, width uint8) *FuncBuilder {
	return fb.Emit(Instr{Op: OpLoad, Dst: dst, A: base, Imm: off, Width: width})
}

// Store emits mem[R[base]+off] = R[src] of the given width.
func (fb *FuncBuilder) Store(base Reg, off int64, src Reg, width uint8) *FuncBuilder {
	return fb.Emit(Instr{Op: OpStore, A: base, Imm: off, B: src, Width: width})
}

// FLoad is Load with the floating-point datum flag set (width 8).
func (fb *FuncBuilder) FLoad(dst, base Reg, off int64) *FuncBuilder {
	return fb.Emit(Instr{Op: OpLoad, Dst: dst, A: base, Imm: off, Width: 8, Float: true})
}

// FStore is Store with the floating-point datum flag set (width 8).
func (fb *FuncBuilder) FStore(base Reg, off int64, src Reg) *FuncBuilder {
	return fb.Emit(Instr{Op: OpStore, A: base, Imm: off, B: src, Width: 8, Float: true})
}

// SlowStore emits a store in the long-latency class, used to reproduce the
// PEBS shadow-sampling effect (§4.3 of the paper).
func (fb *FuncBuilder) SlowStore(base Reg, off int64, src Reg, width uint8) *FuncBuilder {
	return fb.Emit(Instr{Op: OpStore, A: base, Imm: off, B: src, Width: width, Latency: 4})
}

// branch emits a control transfer to a label (resolved at Build).
func (fb *FuncBuilder) branch(op Op, a, b Reg, label string) *FuncBuilder {
	fb.fixups = append(fb.fixups, fixup{instr: len(fb.f.Code), label: label})
	return fb.Emit(Instr{Op: op, A: a, B: b})
}

// Jmp emits an unconditional jump to a label.
func (fb *FuncBuilder) Jmp(label string) *FuncBuilder { return fb.branch(OpJmp, 0, 0, label) }

// Beq branches to label if R[a] == R[b].
func (fb *FuncBuilder) Beq(a, b Reg, label string) *FuncBuilder { return fb.branch(OpBeq, a, b, label) }

// Bne branches to label if R[a] != R[b].
func (fb *FuncBuilder) Bne(a, b Reg, label string) *FuncBuilder { return fb.branch(OpBne, a, b, label) }

// Blt branches to label if R[a] < R[b] (signed).
func (fb *FuncBuilder) Blt(a, b Reg, label string) *FuncBuilder { return fb.branch(OpBlt, a, b, label) }

// Ble branches to label if R[a] <= R[b] (signed).
func (fb *FuncBuilder) Ble(a, b Reg, label string) *FuncBuilder { return fb.branch(OpBle, a, b, label) }

// Bgt branches to label if R[a] > R[b] (signed).
func (fb *FuncBuilder) Bgt(a, b Reg, label string) *FuncBuilder { return fb.branch(OpBgt, a, b, label) }

// Bge branches to label if R[a] >= R[b] (signed).
func (fb *FuncBuilder) Bge(a, b Reg, label string) *FuncBuilder { return fb.branch(OpBge, a, b, label) }

// Call emits a call to the named function (resolved at Build, so forward
// references are fine).
func (fb *FuncBuilder) Call(name string) *FuncBuilder {
	fb.fixups = append(fb.fixups, fixup{instr: len(fb.f.Code), call: name})
	return fb.Emit(Instr{Op: OpCall})
}

// Ret emits a return.
func (fb *FuncBuilder) Ret() *FuncBuilder { return fb.Emit(Instr{Op: OpRet}) }

// Halt emits a thread stop.
func (fb *FuncBuilder) Halt() *FuncBuilder { return fb.Emit(Instr{Op: OpHalt}) }

// LoopN emits a counted loop executing body n times with ctr as the
// induction register counting 0..n-1. The body callback may use ctr but
// must not clobber it.
func (fb *FuncBuilder) LoopN(ctr Reg, n int64, body func(fb *FuncBuilder)) *FuncBuilder {
	top := fmt.Sprintf(".L%d_top", len(fb.f.Code))
	end := fmt.Sprintf(".L%d_end", len(fb.f.Code))
	limit := Reg(30) // scratch register reserved for loop bounds
	fb.MovImm(ctr, 0)
	fb.MovImm(limit, n)
	fb.Label(top)
	fb.Bge(ctr, limit, end)
	body(fb)
	fb.AddImm(ctr, ctr, 1)
	// Re-materialize the limit in case the body used the scratch reg.
	fb.MovImm(limit, n)
	fb.Jmp(top)
	fb.Label(end)
	return fb
}

// resolve patches label branches and call targets.
func (fb *FuncBuilder) resolve() {
	for _, fx := range fb.fixups {
		in := &fb.f.Code[fx.instr]
		if fx.call != "" {
			idx, ok := fb.b.funcs[fx.call]
			if !ok {
				fb.b.errf("%s: call to undefined function %q", fb.f.Name, fx.call)
				continue
			}
			in.Fn = int32(idx)
			continue
		}
		tgt, ok := fb.labels[fx.label]
		if !ok {
			fb.b.errf("%s: undefined label %q", fb.f.Name, fx.label)
			continue
		}
		in.Imm = int64(tgt)
	}
}
