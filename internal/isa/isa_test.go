package isa

import (
	"testing"
	"testing/quick"
)

func TestPCRoundTrip(t *testing.T) {
	f := func(fn uint16, idx uint16) bool {
		pc := MakePC(int(fn), int(idx))
		return pc.Func() == int(fn) && pc.Index() == int(idx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPCAdd(t *testing.T) {
	pc := MakePC(7, 3)
	if got := pc.Add(5); got.Func() != 7 || got.Index() != 8 {
		t.Fatalf("Add: got %v", got)
	}
}

func TestOpStrings(t *testing.T) {
	for op := OpNop; op < opCount; op++ {
		if s := op.String(); s == "" {
			t.Fatalf("op %d has empty name", op)
		}
	}
	if Op(200).String() == "" {
		t.Fatal("unknown op should format")
	}
}

func TestIsBranchIsMem(t *testing.T) {
	if !OpJmp.IsBranch() || !OpCall.IsBranch() || !OpRet.IsBranch() {
		t.Fatal("control ops must be branches")
	}
	if OpAdd.IsBranch() || OpLoad.IsBranch() {
		t.Fatal("non-control ops must not be branches")
	}
	if !OpLoad.IsMem() || !OpStore.IsMem() || OpAdd.IsMem() {
		t.Fatal("IsMem misclassifies")
	}
}

func TestBuilderResolvesLabelsAndCalls(t *testing.T) {
	b := NewBuilder("test")
	callee := b.Func("callee")
	callee.MovImm(R1, 42)
	callee.Ret()
	main := b.Func("main")
	main.MovImm(R1, 0)
	main.Jmp("end")
	main.MovImm(R1, 99) // skipped
	main.Label("end")
	main.Call("callee")
	main.Halt()
	b.SetEntry("main")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != p.FuncByName("main") {
		t.Fatalf("entry = %d", p.Entry)
	}
	mainFn := p.Funcs[p.FuncByName("main")]
	if mainFn.Code[1].Imm != 3 {
		t.Fatalf("jmp target = %d, want 3", mainFn.Code[1].Imm)
	}
	if int(mainFn.Code[3].Fn) != p.FuncByName("callee") {
		t.Fatalf("call target = %d", mainFn.Code[3].Fn)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func(b *Builder)
	}{
		{"undefined label", func(b *Builder) {
			f := b.Func("main")
			f.Jmp("nowhere")
			f.Halt()
		}},
		{"undefined call", func(b *Builder) {
			f := b.Func("main")
			f.Call("ghost")
			f.Halt()
		}},
		{"duplicate function", func(b *Builder) {
			b.Func("main").Halt()
			b.Func("main").Halt()
		}},
		{"duplicate label", func(b *Builder) {
			f := b.Func("main")
			f.Label("x")
			f.Label("x")
			f.Halt()
		}},
		{"missing entry", func(b *Builder) {
			b.Func("notmain").Halt()
			b.SetEntry("main")
		}},
	}
	for _, tc := range cases {
		b := NewBuilder("test")
		tc.build(b)
		if _, err := b.Build(); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	mk := func(mut func(p *Program)) *Program {
		p := &Program{Funcs: []*Function{{Name: "main", Code: []Instr{{Op: OpHalt}}}}}
		mut(p)
		return p
	}
	cases := []struct {
		name string
		p    *Program
	}{
		{"empty", &Program{}},
		{"bad entry", mk(func(p *Program) { p.Entry = 5 })},
		{"empty func", mk(func(p *Program) { p.Funcs[0].Code = nil })},
		{"bad width", mk(func(p *Program) {
			p.Funcs[0].Code = []Instr{{Op: OpLoad, Width: 3}, {Op: OpHalt}}
		})},
		{"branch out of range", mk(func(p *Program) {
			p.Funcs[0].Code = []Instr{{Op: OpJmp, Imm: 9}, {Op: OpHalt}}
		})},
		{"call out of range", mk(func(p *Program) {
			p.Funcs[0].Code = []Instr{{Op: OpCall, Fn: 3}, {Op: OpHalt}}
		})},
		{"no terminator", mk(func(p *Program) {
			p.Funcs[0].Code = []Instr{{Op: OpNop}}
		})},
	}
	for _, tc := range cases {
		if err := tc.p.Validate(); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestLoopNEmitsCountedLoop(t *testing.T) {
	b := NewBuilder("test")
	f := b.Func("main")
	f.LoopN(R1, 10, func(fb *FuncBuilder) {
		fb.AddImm(R2, R2, 1)
	})
	f.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLocationRendering(t *testing.T) {
	b := NewBuilder("myfile")
	f := b.Func("main")
	f.Line(42)
	f.MovImm(R1, 1)
	f.Halt()
	p := b.MustBuild()
	loc := p.Location(MakePC(0, 0))
	if loc != "myfile:main:42" {
		t.Fatalf("Location = %q", loc)
	}
	if p.Location(MakePC(9, 9)) == "" {
		t.Fatal("out-of-range PC should still render")
	}
}

func TestF64RoundTrip(t *testing.T) {
	f := func(x float64) bool { return F64(F64Bits(x)) == x || x != x }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNumInstrs(t *testing.T) {
	b := NewBuilder("t")
	b.Func("main").MovImm(R1, 1).Halt()
	b.Func("f").Ret()
	p := b.MustBuild()
	if got := p.NumInstrs(); got != 3 {
		t.Fatalf("NumInstrs = %d, want 3", got)
	}
}
