// Package isa defines the instruction set, program representation, and
// program builder for the simulated CPU that substitutes for native x86
// binaries in this reproduction of Witch (ASPLOS 2018).
//
// The ISA is a small load/store register machine: 32 general-purpose 64-bit
// registers, byte-addressable memory with 1/2/4/8-byte accesses, integer and
// floating-point ALU operations, conditional branches, and call/ret. It is
// deliberately minimal — Witch only needs a stream of retired loads and
// stores carrying a precise PC, effective address, width, and value, plus a
// walkable call stack — but it is complete enough to express every workload
// in the paper's evaluation (repeated initialization, silent stores,
// redundant linear searches, deep recursion, floating-point stencils).
package isa

import (
	"fmt"
	"math"
)

// Op enumerates instruction opcodes.
type Op uint8

// Opcode space. ALU operations read registers A and B and write Dst.
// Memory operations compute the effective address as R[A]+Imm.
const (
	OpNop Op = iota

	// Data movement.
	OpMovImm // R[Dst] = Imm
	OpMov    // R[Dst] = R[A]

	// Integer ALU.
	OpAdd    // R[Dst] = R[A] + R[B]
	OpAddImm // R[Dst] = R[A] + Imm
	OpSub    // R[Dst] = R[A] - R[B]
	OpMul    // R[Dst] = R[A] * R[B]
	OpMulImm // R[Dst] = R[A] * Imm
	OpDiv    // R[Dst] = R[A] / R[B] (0 if R[B]==0)
	OpAnd    // R[Dst] = R[A] & R[B]
	OpOr     // R[Dst] = R[A] | R[B]
	OpXor    // R[Dst] = R[A] ^ R[B]
	OpShl    // R[Dst] = R[A] << (Imm & 63)
	OpShr    // R[Dst] = R[A] >> (Imm & 63)
	OpMod    // R[Dst] = R[A] % R[B] (0 if R[B]==0)

	// Floating point (registers hold float64 bit patterns).
	OpFAdd // R[Dst] = f64(R[A]) + f64(R[B])
	OpFSub // R[Dst] = f64(R[A]) - f64(R[B])
	OpFMul // R[Dst] = f64(R[A]) * f64(R[B])
	OpFDiv // R[Dst] = f64(R[A]) / f64(R[B])
	OpFMovImm

	// Memory. Width selects 1, 2, 4 or 8 bytes; loads zero-extend.
	// The Float flag marks the datum as floating point, which a
	// disassembling client (e.g. SilentCraft) uses to choose approximate
	// value comparison, exactly as the paper's tools disassemble the
	// trapping instruction to infer the datum type.
	OpLoad  // R[Dst] = zext(mem[R[A]+Imm .. +Width])
	OpStore // mem[R[A]+Imm .. +Width] = low Width bytes of R[B]

	// Control flow. Branch targets are absolute instruction indices
	// within the current function (resolved from labels by the Builder).
	OpJmp // goto Imm
	OpBeq // if R[A] == R[B] goto Imm
	OpBne // if R[A] != R[B] goto Imm
	OpBlt // if R[A] <  R[B] goto Imm (signed)
	OpBle // if R[A] <= R[B] goto Imm (signed)
	OpBgt // if R[A] >  R[B] goto Imm (signed)
	OpBge // if R[A] >= R[B] goto Imm (signed)

	OpCall // call Funcs[Fn]
	OpRet  // return to caller
	OpHalt // stop the thread

	opCount // sentinel
)

var opNames = [...]string{
	OpNop: "nop", OpMovImm: "movi", OpMov: "mov",
	OpAdd: "add", OpAddImm: "addi", OpSub: "sub", OpMul: "mul",
	OpMulImm: "muli", OpDiv: "div", OpAnd: "and", OpOr: "or",
	OpXor: "xor", OpShl: "shl", OpShr: "shr", OpMod: "mod",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpFMovImm: "fmovi",
	OpLoad:    "load", OpStore: "store",
	OpJmp: "jmp", OpBeq: "beq", OpBne: "bne", OpBlt: "blt",
	OpBle: "ble", OpBgt: "bgt", OpBge: "bge",
	OpCall: "call", OpRet: "ret", OpHalt: "halt",
}

// String returns the assembler mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// IsBranch reports whether the opcode is a taken-able control transfer
// (used by the simulated Last Branch Record facility).
func (o Op) IsBranch() bool {
	switch o {
	case OpJmp, OpBeq, OpBne, OpBlt, OpBle, OpBgt, OpBge, OpCall, OpRet:
		return true
	}
	return false
}

// IsMem reports whether the opcode accesses memory.
func (o Op) IsMem() bool { return o == OpLoad || o == OpStore }

// Reg names a general-purpose register. R31 is the stack pointer by
// convention (the machine initializes it to the top of the thread's stack
// region), mirroring how native ABIs give profilers a stack to corrupt —
// which is what Figure 3 of the paper is about.
type Reg uint8

// Register file size and conventional names.
const (
	NumRegs     = 32
	SP      Reg = 31 // stack pointer
	R0      Reg = 0
	R1      Reg = 1
	R2      Reg = 2
	R3      Reg = 3
	R4      Reg = 4
	R5      Reg = 5
	R6      Reg = 6
	R7      Reg = 7
	R8      Reg = 8
	R9      Reg = 9
	R10     Reg = 10
	R11     Reg = 11
	R12     Reg = 12
)

// Instr is a single decoded instruction. The layout favours interpreter
// speed over encoding density; this is a simulator, not an emulator.
type Instr struct {
	Op      Op
	Dst     Reg
	A, B    Reg
	Imm     int64
	Width   uint8 // memory access width in bytes (1, 2, 4, 8)
	Float   bool  // memory datum is floating point
	Latency uint8 // relative latency class; >1 marks "long latency" ops that can shadow neighbours in PEBS-style sampling
	Fn      int32 // call target (index into Program.Funcs)
	Line    int32 // source line for attribution
}

// Function is a named, contiguous sequence of instructions.
type Function struct {
	Name string
	Code []Instr
	// File is the pseudo source file functions are attributed to in
	// reports (typically the workload name).
	File string
}

// Program is a complete executable image.
type Program struct {
	Funcs []*Function
	Entry int // index of the entry function
}

// PC is a global program counter: function index in the high 32 bits and
// instruction index in the low 32 bits. A PC of this form survives across
// functions, which the calling-context tree and the LBR rely on.
type PC uint64

// MakePC builds a global PC from a function and instruction index.
func MakePC(fn, idx int) PC { return PC(uint64(uint32(fn))<<32 | uint64(uint32(idx))) }

// Func returns the function index encoded in the PC.
func (p PC) Func() int { return int(uint64(p) >> 32) }

// Index returns the instruction index encoded in the PC.
func (p PC) Index() int { return int(uint32(uint64(p))) }

// Add returns the PC advanced by n instructions within the same function.
func (p PC) Add(n int) PC { return MakePC(p.Func(), p.Index()+n) }

// String formats the PC as func#idx.
func (p PC) String() string { return fmt.Sprintf("f%d+%d", p.Func(), p.Index()) }

// FuncByName returns the index of the named function, or -1.
func (p *Program) FuncByName(name string) int {
	for i, f := range p.Funcs {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// InstrAt returns the instruction at a global PC, or nil if out of range.
func (p *Program) InstrAt(pc PC) *Instr {
	fi, ii := pc.Func(), pc.Index()
	if fi < 0 || fi >= len(p.Funcs) {
		return nil
	}
	f := p.Funcs[fi]
	if ii < 0 || ii >= len(f.Code) {
		return nil
	}
	return &f.Code[ii]
}

// Location renders a PC as "file:func:line" for human-readable reports.
func (p *Program) Location(pc PC) string {
	in := p.InstrAt(pc)
	fi := pc.Func()
	if in == nil || fi >= len(p.Funcs) {
		return pc.String()
	}
	f := p.Funcs[fi]
	return fmt.Sprintf("%s:%s:%d", f.File, f.Name, in.Line)
}

// NumInstrs returns the total static instruction count of the program.
func (p *Program) NumInstrs() int {
	n := 0
	for _, f := range p.Funcs {
		n += len(f.Code)
	}
	return n
}

// Validate checks structural invariants: a valid entry point, in-range
// branch targets and call targets, sane access widths, and that every
// function terminates (ends in ret, halt or an unconditional jump).
func (p *Program) Validate() error {
	if len(p.Funcs) == 0 {
		return fmt.Errorf("isa: program has no functions")
	}
	if p.Entry < 0 || p.Entry >= len(p.Funcs) {
		return fmt.Errorf("isa: entry %d out of range", p.Entry)
	}
	for _, f := range p.Funcs {
		if len(f.Code) == 0 {
			return fmt.Errorf("isa: function %q is empty", f.Name)
		}
		for ii := range f.Code {
			in := &f.Code[ii]
			if in.Op >= opCount {
				return fmt.Errorf("isa: %s+%d: bad opcode %d", f.Name, ii, in.Op)
			}
			switch in.Op {
			case OpLoad, OpStore:
				switch in.Width {
				case 1, 2, 4, 8:
				default:
					return fmt.Errorf("isa: %s+%d: bad width %d", f.Name, ii, in.Width)
				}
			case OpJmp, OpBeq, OpBne, OpBlt, OpBle, OpBgt, OpBge:
				if in.Imm < 0 || in.Imm >= int64(len(f.Code)) {
					return fmt.Errorf("isa: %s+%d: branch target %d out of range", f.Name, ii, in.Imm)
				}
			case OpCall:
				if in.Fn < 0 || int(in.Fn) >= len(p.Funcs) {
					return fmt.Errorf("isa: %s+%d: call target %d out of range", f.Name, ii, in.Fn)
				}
			}
		}
		last := f.Code[len(f.Code)-1].Op
		if last != OpRet && last != OpHalt && last != OpJmp {
			return fmt.Errorf("isa: function %q does not terminate (last op %s)", f.Name, last)
		}
	}
	return nil
}

// F64 reinterprets a register value as float64.
func F64(bits uint64) float64 { return math.Float64frombits(bits) }

// F64Bits reinterprets a float64 as a register value.
func F64Bits(f float64) uint64 { return math.Float64bits(f) }
