// Package shadow provides the paged shadow-memory tables the exhaustive
// baseline tools (DeadSpy, RedSpy, LoadSpy) keep alongside application
// memory: one shadow entry per application byte, materialized per page on
// first touch. The per-byte pointer-bearing entries are exactly why the
// paper reports multi-× memory bloat for exhaustive instrumentation —
// and the Bytes accounting here is what Table 1/2 report for the spies.
package shadow

import "unsafe"

// PageBits is log2 of the shadow page size in application bytes.
const PageBits = 12

// PageSize is the number of application bytes covered by one shadow page.
const PageSize = 1 << PageBits

// Table maps every application byte to a shadow entry of type T.
type Table[T any] struct {
	pages map[uint64]*[PageSize]T
}

// NewTable returns an empty shadow table.
func NewTable[T any]() *Table[T] {
	return &Table[T]{pages: make(map[uint64]*[PageSize]T)}
}

// At returns the shadow entry for an application address, materializing
// its page if needed.
func (t *Table[T]) At(addr uint64) *T {
	key := addr >> PageBits
	p := t.pages[key]
	if p == nil {
		p = new([PageSize]T)
		t.pages[key] = p
	}
	return &p[addr&(PageSize-1)]
}

// Pages returns the number of materialized shadow pages.
func (t *Table[T]) Pages() int { return len(t.pages) }

// Bytes returns the resident size of the shadow table.
func (t *Table[T]) Bytes() uint64 {
	var zero T
	return uint64(len(t.pages)) * PageSize * uint64(unsafe.Sizeof(zero))
}
