package shadow

import (
	"testing"
	"testing/quick"
)

func TestAtMaterializesAndPersists(t *testing.T) {
	tbl := NewTable[int]()
	*tbl.At(100) = 42
	if *tbl.At(100) != 42 {
		t.Fatal("entry did not persist")
	}
	if tbl.Pages() != 1 {
		t.Fatalf("pages = %d", tbl.Pages())
	}
	*tbl.At(100 + 10*PageSize) = 7
	if tbl.Pages() != 2 {
		t.Fatalf("pages = %d", tbl.Pages())
	}
}

func TestBytesScalesWithEntrySize(t *testing.T) {
	small := NewTable[byte]()
	big := NewTable[[16]byte]()
	small.At(0)
	big.At(0)
	if big.Bytes() != 16*small.Bytes() {
		t.Fatalf("bytes: big=%d small=%d", big.Bytes(), small.Bytes())
	}
}

func TestDistinctAddressesDistinctEntries(t *testing.T) {
	tbl := NewTable[uint64]()
	f := func(a, b uint16) bool {
		if a == b {
			return true
		}
		*tbl.At(uint64(a)) = uint64(a)
		*tbl.At(uint64(b)) = uint64(b)
		return *tbl.At(uint64(a)) == uint64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
