package shadow

import "testing"

type entry struct {
	op  uint8
	ctx *int
}

// BenchmarkShadowAccess measures the per-byte shadow lookup on a warm
// page — the inner loop of every exhaustive tool.
func BenchmarkShadowAccess(b *testing.B) {
	tbl := NewTable[entry]()
	tbl.At(0x1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := tbl.At(0x1000 + uint64(i)%PageSize)
		e.op = 2
	}
}

// BenchmarkShadowColdPages measures first-touch page materialization.
func BenchmarkShadowColdPages(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tbl := NewTable[entry]()
		for p := uint64(0); p < 16; p++ {
			tbl.At(p * PageSize)
		}
	}
}
