package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/wal"
	"repro/witch"
)

// ReplicationConfig sizes the replication engine: synchronous fanout to
// the other replica-set members, durable hinted handoff for the ones
// that are down, and background anti-entropy repair.
type ReplicationConfig struct {
	// HintDir holds one hint journal per peer ("" = in-memory hints,
	// matching a memory-only daemon's volatility).
	HintDir string
	// HintMaxBytes bounds one peer's hint journal; overflow evicts the
	// oldest hints (counted), leaving convergence to repair
	// (default 64 MiB, negative = unbounded).
	HintMaxBytes int64
	// DrainInterval is the hint-replay cadence (default 1s).
	DrainInterval time.Duration
	// RepairInterval is the anti-entropy cadence (default 30s,
	// negative disables the background loop; RepairNow still works).
	RepairInterval time.Duration
	// WalOpts configures the hint journals (fault injection, segment
	// size — default 1 MiB segments so the byte bound is enforceable).
	WalOpts wal.Options
	// Logf receives replication diagnostics (default: silent).
	Logf func(string, ...any)
}

// replication is the running engine: the hint store plus the drain and
// repair loops.
type replication struct {
	s      *Server
	cfg    ReplicationConfig
	hints  *hintStore
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	stopped  atomic.Bool
	repairMu sync.Mutex // one repair round at a time (loop vs RepairNow)

	fanoutRejected  atomic.Uint64 // fanout legs a follower durably refused (no hint queued)
	repairRounds    atomic.Uint64
	repairPulls     atomic.Uint64
	repairConflicts atomic.Uint64
	repairErrors    atomic.Uint64
}

// ReplicationStats is the engine's /healthz and /metrics snapshot.
type ReplicationStats struct {
	HintsQueued       uint64          `json:"hints_queued"`
	HintsReplayed     uint64          `json:"hints_replayed"`
	HintsDropped      uint64          `json:"hints_dropped"`
	HintsRejected     uint64          `json:"hints_rejected"`
	HintAppendErrors  uint64          `json:"hint_append_errors"`
	HintsPending      int             `json:"hints_pending"`
	HintPeers         []HintPeerStats `json:"hint_peers,omitempty"`
	ReplicateRejected uint64          `json:"replicate_rejected"`
	RepairRounds      uint64          `json:"repair_rounds"`
	RepairPulls       uint64          `json:"repair_pulls"`
	RepairConflicts   uint64          `json:"repair_conflicts"`
	RepairErrors      uint64          `json:"repair_errors"`
}

// StartReplication boots the engine. Call after AttachCluster (and
// AttachPersistence, if any) and before SetState(StateServing): the
// ingest path reads s.repl without a lock, so the handoff must happen
// before requests can race it. With RF > 1 the engine is mandatory —
// coordinators shed keyed batches until it runs.
func (s *Server) StartReplication(cfg ReplicationConfig) error {
	if s.cl == nil {
		return errors.New("daemon: replication requires an attached cluster")
	}
	if s.repl != nil {
		return errors.New("daemon: replication already running")
	}
	if cfg.HintMaxBytes == 0 {
		cfg.HintMaxBytes = 64 << 20
	}
	if cfg.DrainInterval <= 0 {
		cfg.DrainInterval = time.Second
	}
	if cfg.RepairInterval == 0 {
		cfg.RepairInterval = 30 * time.Second
	}
	if cfg.WalOpts.SegmentBytes == 0 {
		cfg.WalOpts.SegmentBytes = 1 << 20
	}
	hints, err := openHintStore(cfg.HintDir, cfg.HintMaxBytes, cfg.WalOpts, s.cl.Others(), cfg.Logf)
	if err != nil {
		return err
	}
	r := &replication{s: s, cfg: cfg, hints: hints}
	r.ctx, r.cancel = context.WithCancel(context.Background())
	s.repl = r
	r.wg.Add(1)
	go r.drainLoop()
	if cfg.RepairInterval > 0 {
		r.wg.Add(1)
		go r.repairLoop()
	}
	return nil
}

// StopReplication stops the loops and closes the hint journals
// gracefully (undelivered hints stay on disk for the next boot). The
// engine stays attached so concurrent readers of s.repl never see it
// vanish; call during drain, after ingest is gated.
func (s *Server) StopReplication() {
	r := s.repl
	if r == nil || !r.stopped.CompareAndSwap(false, true) {
		return
	}
	r.cancel()
	r.wg.Wait()
	r.hints.close()
}

// AbortReplication is the kill path: stop the loops and drop the hint
// journals without syncing, mirroring Persistence.Abandon.
func (s *Server) AbortReplication() {
	r := s.repl
	if r == nil || !r.stopped.CompareAndSwap(false, true) {
		return
	}
	r.cancel()
	r.wg.Wait()
	r.hints.abandon()
}

// DrainHintsNow runs one synchronous hint-drain sweep — the test and
// harness hook for deterministic convergence waits.
func (s *Server) DrainHintsNow(ctx context.Context) {
	if s.repl != nil {
		s.repl.drainOnce(ctx)
	}
}

// RepairNow runs one synchronous anti-entropy round.
func (s *Server) RepairNow(ctx context.Context) {
	if s.repl != nil {
		s.repl.repairRound(ctx)
	}
}

// ReplicationStats snapshots the engine's counters (zero value when the
// engine is not running).
func (s *Server) ReplicationStats() ReplicationStats {
	if s.repl == nil {
		return ReplicationStats{}
	}
	return s.repl.stats()
}

func (r *replication) stats() ReplicationStats {
	peers := r.hints.stats()
	pending := 0
	for _, p := range peers {
		pending += p.Pending
	}
	return ReplicationStats{
		HintsQueued:       r.hints.queued.Load(),
		HintsReplayed:     r.hints.replayed.Load(),
		HintsDropped:      r.hints.dropped.Load(),
		HintsRejected:     r.hints.rejected.Load(),
		HintAppendErrors:  r.hints.appendErrors.Load(),
		HintsPending:      pending,
		HintPeers:         peers,
		ReplicateRejected: r.fanoutRejected.Load(),
		RepairRounds:      r.repairRounds.Load(),
		RepairPulls:       r.repairPulls.Load(),
		RepairConflicts:   r.repairConflicts.Load(),
		RepairErrors:      r.repairErrors.Load(),
	}
}

// fanout pushes one keyed batch to every other replica-set member
// before the coordinator's own commit. A reachable member must ack
// durably (its /v1/replicate journals before answering); an unreachable
// one gets a durable hint instead. Only when neither works — peer down
// AND the hint journal failing — does the batch shed, un-acked. A peer
// with hints already queued gets this batch hinted too, behind them:
// replicating around a backlog would deliver sequences out of order,
// and a gap wider than the peer's dedup window turns the late hints
// into discarded stale re-acks.
//
// A durable refusal (permanent 4xx — the follower rejects these exact
// bytes, and always will) is NOT hinted: the hint would sit at the
// queue head rejecting forever, pinning every newer hint for that peer
// behind it. The leg is counted and skipped; the batch still acks on
// the coordinator's own durability, and anti-entropy repair remains
// the follower's route to the data.
func (r *replication) fanout(ctx context.Context, id string, seq uint64, ctype string, body []byte, now time.Time) error {
	o := r.s.cfg.Obs
	for _, peer := range r.s.cl.ReplicaSet(id) {
		if peer == r.s.cl.Self() {
			continue
		}
		if r.s.cl.Available(peer) && r.hints.pendingCount(peer) == 0 {
			_, err := r.s.cl.Replicate(ctx, peer, ctype, id, seq, now, body)
			if err == nil {
				continue
			}
			var pde *cluster.PeerDownError
			if errors.As(err, &pde) && pde.Permanent() {
				r.fanoutRejected.Add(1)
				if r.cfg.Logf != nil {
					r.cfg.Logf("witchd: replica %s durably rejected %s/%d (status %d), not hinting", peer, id, seq, pde.Status)
				}
				continue
			}
		}
		ht0 := o.Start()
		err := r.hints.append(peer, now, id, seq, ctype, body)
		o.StageSince(obs.StageHintAppend, ht0)
		if err != nil {
			return fmt.Errorf("replica %s unreachable and hint not durable: %v", peer, err)
		}
	}
	return nil
}

// handleReplicate applies one keyed batch on behalf of its coordinator.
// The batch runs through the same gates as first-hand ingest — dedup
// window, journal-before-ack — at the coordinator's ingest timestamp,
// so both replicas bucket it identically. It never re-fanouts (the
// coordinator owns RF), and a duplicate re-acks 200: hint replays and
// coordinator retries must converge, not error.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.cl == nil {
		httpError(w, http.StatusBadRequest, "replicate: not clustered")
		return
	}
	if s.ringRejected(w, r) {
		return
	}
	switch s.state.Load() {
	case StateServing:
	case StateDraining:
		s.shedRequest(w, http.StatusServiceUnavailable, 5, "draining: witchd is shutting down")
		return
	default:
		s.shedRequest(w, http.StatusServiceUnavailable, 1, "recovering: not yet serving")
		return
	}
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.shedRequest(w, http.StatusTooManyRequests, 1, "overloaded: %d ingests in flight", cap(s.sem))
		return
	}
	id := r.Header.Get(witch.PusherIDHeader)
	rawSeq := r.Header.Get(witch.PusherSeqHeader)
	seq, perr := strconv.ParseUint(rawSeq, 10, 64)
	if id == "" || rawSeq == "" || perr != nil {
		s.rejected.Add(1)
		httpError(w, http.StatusBadRequest, "replicate: pusher id and sequence headers are required")
		return
	}
	if s.pers != nil {
		if s.pers.journal.Failed() {
			s.shedRequest(w, http.StatusServiceUnavailable, 10, "journal failed, restart required")
			return
		}
		if s.cfg.MaxBacklog > 0 && s.pers.journal.UnsyncedBytes() > s.cfg.MaxBacklog {
			s.shedRequest(w, http.StatusTooManyRequests, 1, "journal backlog over watermark, retry shortly")
			return
		}
	}
	// The coordinator's clock, not ours: replicas must agree on which
	// retention bucket a batch lands in, or their digests would differ
	// forever at bucket boundaries.
	ts := s.cfg.Now()
	if raw := r.Header.Get(cluster.TimestampHeader); raw != "" {
		if ns, err := strconv.ParseInt(raw, 10, 64); err == nil {
			ts = time.Unix(0, ns)
		}
	}

	// The replica's span joins the coordinator's trace (the replicate_leg
	// span on the other side is its parent). No header, no span: hint
	// drains and repair-era coordinators would otherwise mint orphan
	// traces per replayed batch.
	o := s.cfg.Obs
	var sp obs.ActiveSpan
	if th := r.Header.Get(obs.TraceHeader); th != "" {
		sp = o.StartSpan(th, "replicate_apply")
		sp.Annotate(id, seq)
	}

	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bufPool.Put(buf)
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)); err != nil {
		s.rejected.Add(1)
		httpError(w, http.StatusBadRequest, "replicate: %v", err)
		return
	}
	body := buf.Bytes()
	dec := decoders.Get().(*witch.BatchDecoder)
	defer decoders.Put(dec)
	dt0 := o.Start()
	profs, err := dec.Decode(body)
	o.StageSince(obs.StageDecode, dt0)
	if err != nil {
		s.rejected.Add(1)
		httpError(w, http.StatusBadRequest, "replicate: %v", err)
		return
	}
	ingest := func(now time.Time) {
		mt0 := o.Start()
		for _, p := range profs {
			s.st.IngestKeyedAt(id, p, now)
		}
		o.StageSince(obs.StageMerge, mt0)
	}
	apply := func(commit func()) error {
		if s.pers != nil {
			jsp := o.StartChild(sp.Context(), "journal_commit")
			aerr := s.pers.applyBatch(id, seq, true, body, ingest, ts, commit)
			if aerr != nil {
				jsp.Fail(aerr.Error())
			}
			jsp.End()
			return aerr
		}
		s.memMu.RLock()
		defer s.memMu.RUnlock()
		ingest(ts)
		commit()
		return nil
	}
	dup, stale, err := s.ded.Process(id, seq, apply)
	if err != nil {
		sp.Fail(err.Error())
		sp.End()
		s.shedRequest(w, http.StatusServiceUnavailable, 10, "durable apply failed, batch not accepted: %v", err)
		return
	}
	if dup {
		if stale {
			w.Header().Set("X-Witch-Duplicate", "stale")
		} else {
			w.Header().Set("X-Witch-Duplicate", "window")
		}
	}
	s.replicatedIn.Add(1)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\"replicated\":%d}\n", len(profs))
	sp.End()
}

// drainLoop replays queued hints to healed peers.
func (r *replication) drainLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.DrainInterval)
	defer t.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-t.C:
			r.drainOnce(r.ctx)
		}
	}
}

// drainOnce sweeps every peer with queued hints whose breaker looks
// closed, replaying oldest-first through /v1/replicate.
func (r *replication) drainOnce(ctx context.Context) {
	for _, peer := range r.s.cl.Others() {
		if ctx.Err() != nil {
			return
		}
		if r.hints.pendingCount(peer) == 0 || !r.s.cl.Available(peer) {
			continue
		}
		peer := peer
		r.hints.drain(ctx, peer, func(ts time.Time, id string, seq uint64, ctype string, body []byte) error {
			_, err := r.s.cl.Replicate(ctx, peer, ctype, id, seq, ts, body)
			var pde *cluster.PeerDownError
			if err != nil && errors.As(err, &pde) && pde.Permanent() {
				// The healed peer will refuse this hint forever; retire it
				// so it cannot wedge the queue (see errHintRejected).
				if r.cfg.Logf != nil {
					r.cfg.Logf("witchd: hint %s/%d durably rejected by %s (status %d), retiring", id, seq, peer, pde.Status)
				}
				return errHintRejected
			}
			return err
		})
	}
}

// repairLoop runs anti-entropy on its cadence.
func (r *replication) repairLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.RepairInterval)
	defer t.Stop()
	for {
		select {
		case <-r.ctx.Done():
			return
		case <-t.C:
			r.repairRound(r.ctx)
		}
	}
}

// repairRound compares this node's per-pusher (maxSeq, checksum) digest
// against every reachable peer's and pulls any partition this node
// should replicate but holds a worse copy of: missing entirely, behind
// on sequences, or — at equal sequence but differing checksum — owned
// more authoritatively by the peer (owner wins; counted as a conflict).
// A partition this node still has queued hints for is skipped until the
// drain clears them: those hints are local batches the peer may lack,
// and adopting the peer's image first would replace a superset with a
// subset. Pulled rounds end in a snapshot checkpoint so the adopted
// state (absent from the local journal) survives a restart.
func (r *replication) repairRound(ctx context.Context) {
	r.repairMu.Lock()
	defer r.repairMu.Unlock()
	r.repairRounds.Add(1)
	cl := r.s.cl
	local := r.s.digestLocal()
	for _, peer := range cl.Others() {
		if ctx.Err() != nil {
			return
		}
		if !cl.Available(peer) {
			continue
		}
		dig, err := cl.FetchDigest(ctx, peer)
		if err != nil {
			continue // unreachable peers are the breaker's problem, not repair's
		}
		if dig.Ring != cl.RingHash() {
			r.repairErrors.Add(1)
			continue
		}
		ids := make([]string, 0, len(dig.Pushers))
		for id := range dig.Pushers {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		pulled := false
		for _, id := range ids {
			if ctx.Err() != nil {
				return
			}
			if !cl.InReplicaSet(id, cl.Self()) {
				continue
			}
			de := dig.Pushers[id]
			le, have := local[id]
			conflict := false
			switch {
			case !have:
			case de.Max > le.Max:
			case de.Max == le.Max && de.N > le.N:
				// Same frontier, fewer merges here: this copy is a
				// gap-riddled suffix (a blank restart fed mid-sequence
				// hint replays), not round-off noise. The fuller copy
				// wins regardless of preference order — preferring the
				// owner here could replicate the holes back out.
			case de.Max == le.Max && de.N == le.N && de.Sum != le.Sum &&
				cl.PreferenceIndex(id, peer) < cl.PreferenceIndex(id, cl.Self()):
				conflict = true
			default:
				continue
			}
			if r.hints.pendingFor(id) > 0 {
				continue
			}
			pt, err := cl.FetchPartition(ctx, peer, id)
			if err != nil || pt.Image == nil {
				if err != nil {
					r.repairErrors.Add(1)
				}
				continue
			}
			r.s.adoptPartition(id, pt)
			r.repairPulls.Add(1)
			if conflict {
				r.repairConflicts.Add(1)
			}
			local[id] = r.s.digestEntry(id)
			pulled = true
			if r.cfg.Logf != nil {
				r.cfg.Logf("witchd: repair pulled pusher %s from %s (max %d)", id, peer, pt.DedupMax)
			}
		}
		if pulled && r.s.pers != nil {
			if err := r.s.pers.Checkpoint(); err != nil {
				r.repairErrors.Add(1)
			}
		}
	}
}

// adoptPartition installs a pulled partition — store image and dedup
// window together, inside the apply barrier so no ingest interleaves
// with the swap. Lock order is the critical part: Dedup.Adopt takes
// the pusher's window lock FIRST and only then runs the barrier
// (applyBarrier → Quiesce → applyMu.Lock, or memMu.Lock when
// memory-only). Ingest orders the same two locks the same way
// (Process holds w.mu across applyBatch's applyMu.RLock), so an
// adoption racing an in-flight batch for the same pusher serializes
// cleanly instead of deadlocking with the apply write lock held.
func (s *Server) adoptPartition(id string, pt *cluster.PartitionTransfer) {
	s.ded.Adopt(id, pt.DedupMax, pt.DedupBits, func(install func()) {
		s.applyBarrier(func() {
			s.st.ReplacePartition(id, pt.Image)
			install()
		})
	})
}

// digestLocal builds this node's anti-entropy digest: every pusher the
// store or the dedup table knows, with its highest accepted sequence
// and a checksum of the partition's merged state.
func (s *Server) digestLocal() map[string]cluster.DigestEntry {
	maxs := s.ded.MaxSeqs()
	ids := make(map[string]bool, len(maxs))
	for id := range maxs {
		ids[id] = true
	}
	for _, id := range s.st.Partitions() {
		ids[id] = true
	}
	out := make(map[string]cluster.DigestEntry, len(ids))
	for id := range ids {
		n, sum := s.partitionFingerprint(id)
		out[id] = cluster.DigestEntry{Max: maxs[id], N: n, Sum: sum}
	}
	return out
}

// digestEntry recomputes one pusher's digest row (after a repair pull).
func (s *Server) digestEntry(id string) cluster.DigestEntry {
	max, _ := s.ded.WindowOf(id)
	n, sum := s.partitionFingerprint(id)
	return cluster.DigestEntry{Max: max, N: n, Sum: sum}
}

// partitionFingerprint returns one pusher partition's all-time merge
// count and checksum: FNV-1a over its JSON encoding. agg.State is
// deterministic — its slices are sorted and it contains no maps — and
// JSON emits struct fields in declaration order, so equal data hashes
// to equal sums on every node. (gob is unusable here: it numbers types
// from a process-global registry in first-encode order, so two
// processes with different encode histories gob identical values to
// different bytes, and replicas would disagree about partitions they
// hold byte-for-byte in common.) Replicas that merged the same batches
// in a different order can still differ in float round-off; the one
// redundant pull that triggers adopts the owner's image verbatim, after
// which the sums are equal.
func (s *Server) partitionFingerprint(id string) (uint64, string) {
	part := s.st.QueryPartition(id, 0)
	h := fnv.New64a()
	if err := json.NewEncoder(h).Encode(part.State()); err != nil {
		return part.Profiles(), "unencodable"
	}
	return part.Profiles(), fmt.Sprintf("%016x", h.Sum64())
}

// partitionSum is the checksum half of partitionFingerprint (tests
// compare convergence on it).
func (s *Server) partitionSum(id string) string {
	_, sum := s.partitionFingerprint(id)
	return sum
}

// handleDigest serves the anti-entropy digest peers diff against.
func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if s.cl == nil {
		httpError(w, http.StatusBadRequest, "digest: not clustered")
		return
	}
	if s.ringRejected(w, r) {
		return
	}
	d := cluster.Digest{Self: s.cl.Self(), Ring: s.cl.RingHash(), Pushers: s.digestLocal()}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(&d)
}
