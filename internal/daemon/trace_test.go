package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/witch"
)

// newTracedCluster boots n replicated daemons with an Observer wired
// into both the handler layer and the cluster router, so spans chain
// across forward and replicate legs.
func newTracedCluster(t *testing.T, n, rf int) ([]*Server, []string) {
	t.Helper()
	servers := make([]*Server, n)
	urls := make([]string, n)
	hts := make([]*httptest.Server, n)
	for i := range servers {
		hts[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
		urls[i] = hts[i].URL
	}
	for i := range servers {
		ob := obs.New(obs.Options{Node: urls[i], TraceRing: 256, SlowCapture: 8})
		servers[i] = NewServer(store.New(store.Config{}), Config{Obs: ob})
		if n > 1 {
			cl, err := cluster.New(cluster.Config{
				Self: urls[i], Peers: urls,
				ReplicationFactor: rf,
				Logf:              t.Logf,
				Obs:               ob,
			})
			if err != nil {
				t.Fatal(err)
			}
			servers[i].AttachCluster(cl)
		}
		if rf > 1 {
			if err := servers[i].StartReplication(ReplicationConfig{
				DrainInterval:  time.Hour,
				RepairInterval: -1,
				Logf:           t.Logf,
			}); err != nil {
				t.Fatal(err)
			}
			srv := servers[i]
			t.Cleanup(srv.StopReplication)
		}
		servers[i].SetState(StateServing)
		h := servers[i].Handler()
		hts[i].Config.Handler = h
	}
	t.Cleanup(func() {
		for _, ht := range hts {
			ht.Close()
		}
	})
	return servers, urls
}

// TestTracePropagationAcrossForwardAndReplicate: one keyed ingest
// carrying an X-Witch-Trace header, entered at a node outside the
// pusher's replica set, leaves spans on all three nodes — entry
// ingest, forward leg, owner ingest, replicate leg, replica apply —
// and GET /v1/trace/{id} against the entry node gathers the whole
// tree in one query.
func TestTracePropagationAcrossForwardAndReplicate(t *testing.T) {
	servers, urls := newTracedCluster(t, 3, 2)
	prof := testProfile(t, 31)
	var body bytes.Buffer
	if err := prof.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}

	// An identity whose replica set excludes node 0: entry, owner, and
	// replica are then three distinct nodes.
	id, entry := "", 0
	for i := 0; i < 10000 && id == ""; i++ {
		cand := fmt.Sprintf("traced-%04d", i)
		excluded := true
		for _, peer := range servers[0].Cluster().ReplicaSet(cand) {
			if peer == urls[entry] {
				excluded = false
			}
		}
		if excluded {
			id = cand
		}
	}
	if id == "" {
		t.Fatal("no pusher id excluded node 0 from its replica set")
	}

	const header = "00000000deadbeef-0000000000000001"
	req, err := http.NewRequest(http.MethodPost, urls[entry]+"/v1/ingest", bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(witch.PusherIDHeader, id)
	req.Header.Set(witch.PusherSeqHeader, "1")
	req.Header.Set(obs.TraceHeader, header)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: HTTP %d", resp.StatusCode)
	}

	var gathered struct {
		Trace      string     `json:"trace"`
		Nodes      []string   `json:"nodes"`
		Spans      []obs.Span `json:"spans"`
		Incomplete []string   `json:"incomplete"`
	}
	r, err := http.Get(urls[entry] + "/v1/trace/00000000deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("/v1/trace: HTTP %d", r.StatusCode)
	}
	if err := json.NewDecoder(r.Body).Decode(&gathered); err != nil {
		t.Fatal(err)
	}
	if len(gathered.Incomplete) > 0 {
		t.Fatalf("gather incomplete: %v", gathered.Incomplete)
	}
	if len(gathered.Nodes) != 3 {
		t.Fatalf("trace touched %d nodes, want 3: %+v", len(gathered.Nodes), gathered)
	}
	byStage := map[string][]obs.Span{}
	for _, sp := range gathered.Spans {
		byStage[sp.Stage] = append(byStage[sp.Stage], sp)
	}
	for _, want := range []string{"ingest", "forward_leg", "replicate_leg", "replicate_apply"} {
		if len(byStage[want]) == 0 {
			t.Fatalf("no %q span in trace: %+v", want, gathered.Spans)
		}
	}
	// Both the entry and the owner record an ingest span, on different
	// nodes, both keyed with the pusher identity.
	if n := len(byStage["ingest"]); n != 2 {
		t.Fatalf("%d ingest spans, want 2 (entry + owner): %+v", n, byStage["ingest"])
	}
	if a, b := byStage["ingest"][0], byStage["ingest"][1]; a.Node == b.Node {
		t.Fatalf("both ingest spans on %s, want entry and owner distinct", a.Node)
	}
	for _, sp := range byStage["ingest"] {
		if sp.Pusher != id || sp.Seq != 1 {
			t.Fatalf("ingest span missing idempotency key: %+v", sp)
		}
	}
	// The entry's ingest span chains under the client's span from the
	// wire header.
	rootSeen := false
	for _, sp := range byStage["ingest"] {
		if sp.Parent == "0000000000000001" {
			rootSeen = true
		}
	}
	if !rootSeen {
		t.Fatalf("no ingest span parented on the wire header's span: %+v", byStage["ingest"])
	}
	// The replica's apply span names the trace from the replicate leg.
	if sp := byStage["replicate_apply"][0]; sp.Trace != "00000000deadbeef" {
		t.Fatalf("replicate_apply carries trace %s, want 00000000deadbeef", sp.Trace)
	}

	// scope=local confines the answer to the queried node.
	r2, err := http.Get(urls[entry] + "/v1/trace/00000000deadbeef?scope=local")
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Body.Close()
	var local struct {
		Nodes []string `json:"nodes"`
	}
	if err := json.NewDecoder(r2.Body).Decode(&local); err != nil {
		t.Fatal(err)
	}
	if len(local.Nodes) != 1 || local.Nodes[0] != urls[entry] {
		t.Fatalf("scope=local answered for nodes %v, want just %s", local.Nodes, urls[entry])
	}
}

// TestTraceEndpointValidation: malformed IDs 400, unknown IDs 404,
// and a daemon without an observer says tracing is off.
func TestTraceEndpointValidation(t *testing.T) {
	_, urls := newTracedCluster(t, 1, 1)
	for _, tc := range []struct {
		path string
		want int
	}{
		{"/v1/trace/xyz", http.StatusBadRequest},
		{"/v1/trace/", http.StatusBadRequest},
		{"/v1/trace/00000000000000ff", http.StatusNotFound}, // never recorded
	} {
		r, err := http.Get(urls[0] + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != tc.want {
			t.Fatalf("GET %s: HTTP %d, want %d", tc.path, r.StatusCode, tc.want)
		}
	}

	bare := httptest.NewServer(NewServer(store.New(store.Config{}), Config{}).Handler())
	defer bare.Close()
	for _, path := range []string{"/v1/trace/00000000000000ff", "/v1/slow"} {
		r, err := http.Get(bare.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusNotFound {
			t.Fatalf("GET %s without an observer: HTTP %d, want 404", path, r.StatusCode)
		}
	}
}

// TestSlowCapture: ingests and queries land in the slow ring with
// their kind and duration, served by /v1/slow.
func TestSlowCapture(t *testing.T) {
	_, urls := newTracedCluster(t, 1, 1)
	prof := testProfile(t, 7)
	var body bytes.Buffer
	if err := prof.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(urls[0]+"/v1/ingest", "application/json", bytes.NewReader(body.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: HTTP %d", resp.StatusCode)
	}
	q, err := http.Get(urls[0] + "/v1/top?tool=" + prof.Tool)
	if err != nil {
		t.Fatal(err)
	}
	q.Body.Close()

	r, err := http.Get(urls[0] + "/v1/slow")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	var out struct {
		Slow []struct {
			Kind  string `json:"kind"`
			DurNS int64  `json:"duration_ns"`
		} `json:"slow"`
		Kept     int    `json:"kept"`
		Captured uint64 `json:"captured"`
	}
	if err := json.NewDecoder(r.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Kept < 2 || out.Captured < 2 {
		t.Fatalf("slow ring kept %d / captured %d, want both >= 2", out.Kept, out.Captured)
	}
	kinds := map[string]bool{}
	for _, e := range out.Slow {
		kinds[e.Kind] = true
		if e.DurNS <= 0 {
			t.Fatalf("slow entry with nonpositive duration: %+v", e)
		}
	}
	if !kinds["ingest"] || !kinds["query"] {
		t.Fatalf("slow ring kinds %v, want both ingest and query", kinds)
	}

	// The serving node also exposes the pipeline histograms.
	m, err := http.Get(urls[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer m.Body.Close()
	raw, err := io.ReadAll(m.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`witchd_stage_duration_seconds_count{stage="ingest"}`,
		`witchd_stage_duration_seconds_bucket{stage="query",le="+Inf"}`,
		"witchd_trace_spans_recorded_total",
		"witchd_slow_captured_total",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}
