package daemon

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"repro/internal/store"
	"repro/witch"
)

func getBody(t *testing.T, url string) (int, []byte) {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	b, err := io.ReadAll(r.Body)
	if err != nil {
		t.Fatal(err)
	}
	return r.StatusCode, b
}

// TestResponseCacheServesIdenticalBytesAndInvalidates: repeated /v1/top
// and /v1/profile hits are served from the rendered cache (hit counter
// moves, bytes identical), and new ingest invalidates — the next
// response reflects the new data.
func TestResponseCacheServesIdenticalBytesAndInvalidates(t *testing.T) {
	clock := time.Unix(1700000000, 0)
	now := func() time.Time { return clock }
	srv, ts := newTestServer(t, store.Config{Now: now})
	prof := testProfile(t, 1)

	var body bytes.Buffer
	if err := prof.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}
	ingest(t, ts, body.Bytes())

	topURL := ts.URL + "/v1/top?tool=" + prof.Tool
	profURL := ts.URL + "/v1/profile?tool=" + prof.Tool

	_, top1 := getBody(t, topURL)
	_, prof1 := getBody(t, profURL)
	misses := srv.viewMisses.Load()
	_, top2 := getBody(t, topURL)
	_, prof2 := getBody(t, profURL)
	if !bytes.Equal(top1, top2) || !bytes.Equal(prof1, prof2) {
		t.Fatal("cached response bytes drifted")
	}
	if srv.viewMisses.Load() != misses {
		t.Fatalf("repeat queries missed the rendered cache (misses %d -> %d)", misses, srv.viewMisses.Load())
	}
	if srv.viewHits.Load() == 0 {
		t.Fatal("no rendered-cache hit recorded")
	}
	if srv.queries.Load() != 4 {
		t.Fatalf("queries counter must move on hits too, got %d want 4", srv.queries.Load())
	}

	// New data invalidates: the store epoch moves, the fingerprint
	// changes, and the next response is rebuilt with the new profile.
	prof2nd := testProfile(t, 2)
	body.Reset()
	if err := prof2nd.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}
	ingest(t, ts, body.Bytes())
	_, top3 := getBody(t, topURL)
	if bytes.Equal(top1, top3) {
		t.Fatal("response unchanged after new ingest: stale cache served")
	}

	// An uncached oracle daemon fed the same batches byte-agrees.
	oSrv, oTs := newTestServer(t, store.Config{Now: now, NoCache: true})
	oSrv.cfg.NoQueryCache = true
	for _, p := range []int64{1, 2} {
		var b bytes.Buffer
		if err := testProfile(t, p).WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		ingest(t, oTs, b.Bytes())
	}
	_, oracleTop := getBody(t, oTs.URL+"/v1/top?tool="+prof.Tool)
	if !bytes.Equal(top3, oracleTop) {
		t.Fatalf("cached daemon diverges from uncached oracle:\n%s\n%s", top3, oracleTop)
	}
}

// TestHealthzToolsFromMaintainedSet: /healthz lists tools without
// folding all-time state, and the list matches the data actually held.
func TestHealthzToolsFromMaintainedSet(t *testing.T) {
	srv, ts := newTestServer(t, store.Config{})
	prof := testProfile(t, 1)
	var body bytes.Buffer
	if err := prof.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}
	ingest(t, ts, body.Bytes())

	st, hb := getBody(t, ts.URL+"/healthz")
	if st != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", st)
	}
	if !bytes.Contains(hb, []byte(`"tools":["`+prof.Tool+`"]`)) {
		t.Fatalf("healthz tools list missing %q: %s", prof.Tool, hb)
	}
	// The fast path must not have paid a Query(0): the store's query
	// cache saw no traffic from /healthz's tools list. (Health() does
	// query; tools must come from the maintained set.)
	if got, want := srv.st.Tools(), []string{prof.Tool}; len(got) != 1 || got[0] != want[0] {
		t.Fatalf("maintained tool set = %v, want %v", got, want)
	}
}

// synthProfile builds a profile with enough distinct pairs that a full
// export visibly outweighs gob framing — needed to observe the delta
// protocol's byte savings.
func synthProfile(program string, n int, seed int64) *witch.Profile {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]witch.Pair, 0, n)
	for i := 0; i < n; i++ {
		k := rng.Intn(1 << 16)
		pairs = append(pairs, witch.Pair{
			Src:   fmt.Sprintf("store_%05d", k),
			Dst:   fmt.Sprintf("load_%05d", k),
			Chain: fmt.Sprintf("s%05d->l%05d", k, k),
			Waste: float64(rng.Intn(100)), Use: float64(rng.Intn(100)),
		})
	}
	return witch.NewProfile(witch.Profile{
		Program: program, Tool: string(witch.DeadStores), Waste: 1, Use: 1,
	}, pairs)
}

// TestDeltaScatterConvergesAndCountsLegs: in a 3-node ring, the first
// fleet query pays full shard legs; repeat queries at unchanged epochs
// ship deltas (near-zero bytes) and serve byte-identical responses;
// new ingest on a peer is visible on the very next query.
func TestDeltaScatterConvergesAndCountsLegs(t *testing.T) {
	servers, _, urls := newTestCluster(t, 3)
	prof := testProfile(t, 1)
	var body bytes.Buffer
	if err := prof.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}
	if r := keyedIngest(t, urls[1], body.Bytes(), "delta-pusher-a", 1); r.StatusCode != http.StatusOK {
		t.Fatalf("seed ingest: HTTP %d", r.StatusCode)
	}
	// Bulk state so full exports dwarf gob framing: the byte-reduction
	// assertion below is meaningless against near-empty shards.
	for i := 0; i < 8; i++ {
		var b bytes.Buffer
		if err := synthProfile(fmt.Sprintf("prog-%d", i), 400, int64(i)+1).WriteJSON(&b); err != nil {
			t.Fatal(err)
		}
		if r := keyedIngest(t, urls[i%3], b.Bytes(), fmt.Sprintf("bulk-pusher-%d", i), 1); r.StatusCode != http.StatusOK {
			t.Fatalf("bulk ingest %d: HTTP %d", i, r.StatusCode)
		}
	}

	topURL := urls[0] + "/v1/top?tool=" + prof.Tool
	_, top1 := getBody(t, topURL)
	cs := servers[0].Cluster().StatsSnapshot()
	if cs.ScatterFullLegs == 0 {
		t.Fatalf("first fleet query paid no full legs: %+v", cs)
	}
	bytesAfterFirst := cs.ScatterBytes

	for i := 0; i < 5; i++ {
		_, topN := getBody(t, topURL)
		if !bytes.Equal(top1, topN) {
			t.Fatalf("repeat fleet query %d drifted", i)
		}
	}
	cs2 := servers[0].Cluster().StatsSnapshot()
	if cs2.ScatterDeltaLegs == 0 {
		t.Fatalf("steady-state queries paid no delta legs: %+v", cs2)
	}
	if cs2.ScatterFullLegs != cs.ScatterFullLegs {
		t.Fatalf("steady-state queries paid full legs: %d -> %d", cs.ScatterFullLegs, cs2.ScatterFullLegs)
	}
	// Per-round steady bytes must be a small fraction of the first full
	// scatter (the ≥80% gate on real volume lives in witchbench).
	perRound := (cs2.ScatterBytes - bytesAfterFirst) / 5
	if perRound*2 >= bytesAfterFirst {
		t.Fatalf("steady-state scatter bytes not reduced: first=%d, per steady round=%d", bytesAfterFirst, perRound)
	}

	// A write on another node is visible on the very next fleet query —
	// the delta ships the changed partition.
	prof2 := testProfile(t, 2)
	body.Reset()
	if err := prof2.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}
	keyedIngest(t, urls[2], body.Bytes(), "delta-pusher-b", 1)
	_, top3 := getBody(t, topURL)
	if bytes.Equal(top1, top3) {
		t.Fatal("fleet query did not see a peer's new ingest through the delta path")
	}

	// And the view byte-agrees with a fresh coordinator that never had
	// a baseline (full fetch path).
	_, topFresh := getBody(t, urls[1]+"/v1/top?tool="+prof.Tool)
	if !bytes.Equal(top3, topFresh) {
		t.Fatalf("delta-patched view diverges from fresh full view:\n%s\n%s", top3, topFresh)
	}
}
