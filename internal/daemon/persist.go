package daemon

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/wal"
	"repro/witch"
)

// Persistence makes witchd crash-safe: every acknowledged ingest batch
// is journaled (timestamp envelope + raw body) before the 200 goes
// back, and the retention store is periodically checkpointed to a
// snapshot that anchors journal GC. Startup recovery = load the newest
// valid snapshot, replay the journal suffix past its anchor, truncate
// any torn tail.
//
// Consistency contract: applies take the read side of applyMu (many in
// flight), snapshots take the write side — so a snapshot's journal
// anchor (LastLSN at that instant) covers exactly the batches whose
// store ingest has completed, and replay-from-anchor is exactly-once.
type Persistence struct {
	dir       string
	journal   *wal.Journal
	st        *store.Store
	ded       *Dedup // may be nil; rides the snapshot's extra blob
	snapEvery uint64 // acknowledged batches between snapshots; 0 = shutdown only

	applyMu sync.RWMutex
	batches atomic.Uint64

	journalErrors atomic.Uint64
	snapshots     atomic.Uint64
	lastSnapLSN   atomic.Uint64
	snapErrors    atomic.Uint64

	recovery RecoveryReport
}

// RecoveryReport is what startup recovery found, served on /healthz so
// operators can see exactly what a crash cost (spoiler: only torn,
// never-acknowledged bytes).
type RecoveryReport struct {
	SnapshotLSN      uint64 `json:"snapshot_lsn"`
	SnapshotLoaded   bool   `json:"snapshot_loaded"`
	SnapshotsSkipped int    `json:"snapshots_skipped"`
	ReplayedBatches  int    `json:"replayed_batches"`
	ReplayedProfiles int    `json:"replayed_profiles"`
	SkippedRecords   int    `json:"skipped_records"`
	ReplayedKeys     int    `json:"replayed_keys"`
	TornTail         bool   `json:"torn_tail"`
	TruncatedBytes   int64  `json:"truncated_bytes"`
}

// Recovery returns the startup recovery report.
func (p *Persistence) Recovery() RecoveryReport { return p.recovery }

// JournalCommits reports the journal's physical write(+fsync) count —
// acked batches divided by this is the achieved mean commit-gang size.
func (p *Persistence) JournalCommits() uint64 { return p.journal.Commits() }

// Journal envelope. v1: [8-byte big-endian unix-nano][raw body]. v2
// adds the batch's idempotency key between timestamp and body:
//
//	[8-byte ts][0x01][uvarint len(id)][id][uvarint seq][raw body]
//
// The 0x01 marker cannot be the first byte of any valid body — JSON
// starts with '{', '[' or whitespace and the binary codec with 'W'
// (its magic) — so v1 envelopes keep decoding unchanged, and a v2
// daemon restarted over a v1 journal replays it cleanly.
const envKeyMarker = 0x01

// appendEnvelope encodes a journal envelope for body at time now.
func appendEnvelope(now time.Time, id string, seq uint64, keyed bool, body []byte) []byte {
	env := make([]byte, 8, 8+1+binary.MaxVarintLen64*2+len(id)+len(body))
	binary.BigEndian.PutUint64(env, uint64(now.UnixNano()))
	if keyed {
		env = append(env, envKeyMarker)
		env = binary.AppendUvarint(env, uint64(len(id)))
		env = append(env, id...)
		env = binary.AppendUvarint(env, seq)
	}
	return append(env, body...)
}

// splitEnvelope decodes a journal envelope into its timestamp, optional
// idempotency key, and body. An envelope too mangled to split reports
// ok=false (the caller counts it skipped).
func splitEnvelope(payload []byte) (ts time.Time, id string, seq uint64, keyed bool, body []byte, ok bool) {
	if len(payload) < 8 {
		return ts, "", 0, false, nil, false
	}
	ts = time.Unix(0, int64(binary.BigEndian.Uint64(payload)))
	rest := payload[8:]
	if len(rest) == 0 || rest[0] != envKeyMarker {
		return ts, "", 0, false, rest, true
	}
	rest = rest[1:]
	idLen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < idLen {
		return ts, "", 0, false, nil, false
	}
	id = string(rest[n : n+int(idLen)])
	rest = rest[n+int(idLen):]
	seq, n = binary.Uvarint(rest)
	if n <= 0 {
		return ts, "", 0, false, nil, false
	}
	return ts, id, seq, true, rest[n:], true
}

// snapName formats a snapshot filename anchored at a journal LSN.
func snapName(lsn uint64) string {
	return fmt.Sprintf("snap-%016x.snap", lsn)
}

// listSnapshots returns snapshot LSNs found in dir, newest first.
func listSnapshots(dir string) []uint64 {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var lsns []uint64
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, "snap-") || !strings.HasSuffix(name, ".snap") {
			continue
		}
		lsn, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "snap-"), ".snap"), 16, 64)
		if err != nil {
			continue
		}
		lsns = append(lsns, lsn)
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	return lsns
}

// OpenPersistence recovers state from dir into st and returns the
// manager, ready to journal new batches. Recovery is deliberately
// unfailable for data corruption: a corrupt snapshot falls back to the
// next older one, a torn journal tail is truncated, an undecodable
// journal record is skipped and counted — only environmental errors
// (unreadable dir) abort startup.
// If ded is non-nil, its windows are restored from the snapshot's
// extra blob and re-marked from replayed keyed envelopes, so dedup
// survives kill-restart exactly as far as the acknowledged data does.
func OpenPersistence(dir string, st *store.Store, ded *Dedup, walOpts wal.Options, snapEvery uint64) (*Persistence, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("data dir: %w", err)
	}
	p := &Persistence{dir: dir, st: st, ded: ded, snapEvery: snapEvery}

	// Newest loadable snapshot wins; corrupt ones are skipped, not fatal.
	// Even a snapshot too corrupt to load still floors LSN assignment:
	// its filename proves the journal once reached that LSN, so new
	// appends must land strictly past it or replay would skip them.
	var anchor, floor uint64
	snaps := listSnapshots(dir)
	if len(snaps) > 0 {
		floor = snaps[0] // newest first
	}
	for _, lsn := range snaps {
		f, err := os.Open(filepath.Join(dir, snapName(lsn)))
		if err != nil {
			p.recovery.SnapshotsSkipped++
			continue
		}
		got, extra, err := st.Restore(f)
		f.Close()
		if err != nil {
			obs.Default().Warn("persist", "skipping corrupt snapshot",
				"snapshot", snapName(lsn), "err", err.Error())
			p.recovery.SnapshotsSkipped++
			continue
		}
		if ded != nil {
			if err := ded.Load(extra); err != nil {
				// Lost dedup state degrades to at-least-once for batches
				// older than the journal suffix — log, don't refuse to start.
				obs.Default().Warn("persist", "dedup state in snapshot unreadable",
					"snapshot", snapName(lsn), "err", err.Error())
			}
		}
		anchor = got
		p.recovery.SnapshotLoaded = true
		p.recovery.SnapshotLSN = got
		p.lastSnapLSN.Store(got)
		break
	}

	if anchor > floor {
		floor = anchor
	}
	walOpts.FloorLSN = floor
	j, err := wal.Open(dir, walOpts)
	if err != nil {
		return nil, err
	}
	p.journal = j
	ri := j.Recovery()
	p.recovery.TornTail = ri.TornTail
	p.recovery.TruncatedBytes = ri.TruncatedBytes

	// Replay the acknowledged suffix past the snapshot anchor, each
	// batch landing at its original wall time so the bucket layout (and
	// every windowed query) is reconstructed, not smeared. One decoder
	// serves the whole replay: the store copies what it keeps, so the
	// decoder's recycled profiles never outlive their record. Bodies are
	// sniffed, not typed — a batch journaled from a binary-encoding
	// pusher replays exactly like a JSON one.
	var dec witch.BatchDecoder
	err = wal.Replay(dir, anchor, func(r wal.Record) error {
		ts, id, seq, keyed, body, ok := splitEnvelope(r.Payload)
		if !ok {
			p.recovery.SkippedRecords++
			return nil
		}
		profs, err := dec.Decode(body)
		if err != nil {
			// Journaled bodies were validated before the append, so this
			// is bit rot inside a CRC-valid record — count and continue
			// rather than refuse to start.
			p.recovery.SkippedRecords++
			return nil
		}
		for _, prof := range profs {
			// Keyed batches replay into their pusher's partition, so the
			// partitioned layout replication depends on is rebuilt too.
			st.IngestKeyedAt(id, prof, ts)
		}
		if keyed && ded != nil {
			// The batch is durably merged; a post-restart retry of the
			// same key must be re-acked, not re-merged.
			ded.Mark(id, seq)
			p.recovery.ReplayedKeys++
		}
		p.recovery.ReplayedBatches++
		p.recovery.ReplayedProfiles += len(profs)
		return nil
	})
	if err != nil {
		j.Close()
		return nil, fmt.Errorf("journal replay: %w", err)
	}
	return p, nil
}

// applyBatch is the write path: the envelope (arrival time, optional
// idempotency key, raw validated body) is journaled before the store
// ingest runs and before the caller may acknowledge. An error means the
// batch is NOT durable and must not be acknowledged — the caller sheds
// it with a 5xx and the pusher's breaker backs off. The batch arrives
// pre-decoded (as the ingest closure) so a decode error can never
// strike between journal append and store ingest. Journaling the key
// with the batch is what makes dedup crash-safe: replay re-marks
// exactly the keys whose data it re-merges.
//
// commit runs after the batch is journaled and merged, still inside the
// apply read-lock — it is where Dedup.Process marks the idempotency key
// seen, so a snapshot (which takes the write lock) can never observe
// the batch without its mark.
func (p *Persistence) applyBatch(id string, seq uint64, keyed bool, body []byte, ingest func(time.Time), now time.Time, commit func()) error {
	env := appendEnvelope(now, id, seq, keyed, body)

	p.applyMu.RLock()
	if _, err := p.journal.Append(env); err != nil {
		p.applyMu.RUnlock()
		p.journalErrors.Add(1)
		return err
	}
	ingest(now)
	commit()
	p.applyMu.RUnlock()

	if n := p.batches.Add(1); p.snapEvery > 0 && n%p.snapEvery == 0 {
		if err := p.snapshot(); err != nil {
			p.snapErrors.Add(1)
			obs.Default().Warn("persist", "periodic snapshot failed (journal still covers everything)",
				"err", err.Error())
		}
	}
	return nil
}

// snapshot checkpoints the store, anchors it at the journal position,
// and garbage-collects the journal prefix plus older snapshots. Applies
// are excluded for the duration, which is what makes the anchor exact.
func (p *Persistence) snapshot() error {
	p.applyMu.Lock()
	defer p.applyMu.Unlock()

	lsn := p.journal.LastLSN()
	// With applies excluded, the dedup image is consistent with the
	// store image: both cover exactly the batches at or below lsn.
	var extra []byte
	if p.ded != nil {
		var err error
		if extra, err = p.ded.State(); err != nil {
			return err
		}
	}
	tmp := filepath.Join(p.dir, "snap.tmp")
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := p.st.Snapshot(f, lsn, extra); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	// The rename is the commit point: a crash before it leaves the old
	// snapshot + full journal; after it, the new snapshot anchors GC.
	if err := os.Rename(tmp, filepath.Join(p.dir, snapName(lsn))); err != nil {
		os.Remove(tmp)
		return err
	}
	// The commit point is only real once the directory entry is on disk.
	// Without this fsync, the GC removals below could survive a machine
	// crash while the rename does not — leaving neither the new snapshot
	// nor the journal prefix and old snapshot it replaced.
	if err := wal.SyncDir(p.dir); err != nil {
		return fmt.Errorf("syncing data dir after snapshot commit: %w", err)
	}
	p.snapshots.Add(1)
	p.lastSnapLSN.Store(lsn)

	// GC: journal records <= lsn and snapshots < lsn are now dead weight.
	if _, err := p.journal.RemoveThrough(lsn); err != nil {
		obs.Default().Warn("persist", "journal gc failed", "err", err.Error())
	}
	for _, old := range listSnapshots(p.dir) {
		if old < lsn {
			os.Remove(filepath.Join(p.dir, snapName(old)))
		}
	}
	return nil
}

// Quiesce runs fn with the apply barrier held exclusively: no batch is
// mid-journal or mid-merge while fn runs. Anti-entropy adoption runs
// under it so a partition replace and its dedup adopt are one cut.
func (p *Persistence) Quiesce(fn func()) {
	p.applyMu.Lock()
	defer p.applyMu.Unlock()
	fn()
}

// Checkpoint forces a snapshot now — after a repair round adopted
// partitions, so a crash does not forget what was just pulled (the
// pulled data never went through this node's journal).
func (p *Persistence) Checkpoint() error {
	if err := p.snapshot(); err != nil {
		p.snapErrors.Add(1)
		return err
	}
	return nil
}

// Shutdown is the graceful-drain epilogue: flush the journal, take a
// final snapshot, close. After this a restart recovers instantly from
// the snapshot with an empty replay suffix.
func (p *Persistence) Shutdown() error {
	var firstErr error
	if err := p.journal.Sync(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := p.snapshot(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := p.journal.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Abandon drops the journal without syncing or snapshotting — the
// kill -9 path for crash harnesses. Recovery must reconstruct
// everything from whatever the page cache already made durable.
func (p *Persistence) Abandon() {
	p.journal.Abandon()
}
