package daemon

import (
	"errors"
	"fmt"
	"testing"
)

// ok is the well-behaved apply: it commits and succeeds.
func ok(commit func()) error { commit(); return nil }

// process is a test shorthand over the commit-callback signature.
func process(t *testing.T, d *Dedup, id string, seq uint64) (dup, stale bool) {
	t.Helper()
	dup, stale, err := d.Process(id, seq, ok)
	if err != nil {
		t.Fatalf("Process(%s, %d): %v", id, seq, err)
	}
	return dup, stale
}

func TestDedupWindowSemantics(t *testing.T) {
	d := NewDedup(128, 8)

	// Fresh sequences process once, retries re-ack as duplicates.
	if dup, _ := process(t, d, "a", 1); dup {
		t.Fatal("first arrival flagged duplicate")
	}
	if dup, stale := process(t, d, "a", 1); !dup || stale {
		t.Fatalf("retry of seq 1: dup=%v stale=%v, want window dup", dup, stale)
	}

	// A gap, then the skipped sequence arriving late: out-of-order
	// first arrivals inside the window must process, and their retries
	// must dedup.
	if dup, _ := process(t, d, "a", 10); dup {
		t.Fatal("seq 10 flagged duplicate")
	}
	if dup, _ := process(t, d, "a", 5); dup {
		t.Fatal("late first arrival of seq 5 flagged duplicate")
	}
	if dup, stale := process(t, d, "a", 5); !dup || stale {
		t.Fatalf("retry of late seq 5: dup=%v stale=%v", dup, stale)
	}

	// Below the window: conservative stale re-ack, never a merge.
	if dup, _ := process(t, d, "a", 1000); dup {
		t.Fatal("seq 1000 flagged duplicate")
	}
	if dup, stale := process(t, d, "a", 800); !dup || !stale {
		t.Fatalf("seq 800 under a window ending at 1000: dup=%v stale=%v, want stale re-ack", dup, stale)
	}

	// Pushers do not share windows.
	if dup, _ := process(t, d, "b", 1); dup {
		t.Fatal("pusher b's seq 1 deduped against pusher a")
	}

	st := d.Stats()
	if st.Duplicates != 2 || st.Stale != 1 {
		t.Fatalf("stats: %+v, want 2 duplicates and 1 stale", st)
	}
}

func TestDedupApplyErrorLeavesKeyUnseen(t *testing.T) {
	d := NewDedup(64, 8)
	boom := errors.New("journal full")
	if _, _, err := d.Process("a", 7, func(func()) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("apply error not surfaced: %v", err)
	}
	// The failed batch was never acked, so its retry must process.
	if dup, _ := process(t, d, "a", 7); dup {
		t.Fatal("retry after failed apply was deduped — the batch would be lost")
	}
	if dup, _ := process(t, d, "a", 7); !dup {
		t.Fatal("second retry after successful apply not deduped")
	}
}

func TestDedupWindowLapClearsGhosts(t *testing.T) {
	d := NewDedup(64, 8)
	process(t, d, "a", 3)
	// Jump more than a window ahead: seq 3's bit position is lapped.
	process(t, d, "a", 3+64)
	// The same ring slot now belongs to seq 67's range; a fresh arrival
	// at a lapped-but-cleared position must not be mistaken for seen.
	if dup, _ := process(t, d, "a", 66); dup {
		t.Fatal("ghost mark survived a window lap")
	}
}

func TestDedupPusherTableEviction(t *testing.T) {
	d := NewDedup(64, 2)
	process(t, d, "a", 1)
	process(t, d, "b", 1)
	process(t, d, "c", 1) // evicts the LRU pusher, "a"
	if st := d.Stats(); st.EvictedPushers != 1 || st.Pushers != 2 {
		t.Fatalf("stats after third pusher: %+v", st)
	}
	// The evicted pusher's retry re-merges — the documented cost of the
	// table bound. Its replacement window must at least work.
	if dup, _ := process(t, d, "a", 2); dup {
		t.Fatal("fresh sequence deduped in a rebuilt window")
	}
}

func TestDedupStateRoundTrip(t *testing.T) {
	d := NewDedup(128, 8)
	process(t, d, "a", 1)
	process(t, d, "a", 2)
	process(t, d, "b", 9)
	blob, err := d.State()
	if err != nil {
		t.Fatal(err)
	}

	r := NewDedup(128, 8)
	if err := r.Load(blob); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		id  string
		seq uint64
		dup bool
		why string
	}{
		{"a", 1, true, "seen before snapshot"},
		{"a", 2, true, "seen before snapshot"},
		{"a", 3, false, "never seen"},
		{"b", 9, true, "seen before snapshot"},
		{"b", 8, false, "in-window, never seen"},
	} {
		if dup, _ := process(t, r, c.id, c.seq); dup != c.dup {
			t.Fatalf("(%s, %d) after restore: dup=%v, want %v (%s)", c.id, c.seq, dup, c.dup, c.why)
		}
	}
}

func TestDedupLoadWindowMismatchIsConservative(t *testing.T) {
	d := NewDedup(128, 8)
	process(t, d, "a", 100)
	blob, err := d.State()
	if err != nil {
		t.Fatal(err)
	}

	// Restart with a narrower window: ring positions no longer line up,
	// so everything at or below max must re-ack (possible over-dedup)
	// rather than re-merge (certain double count).
	r := NewDedup(64, 8)
	if err := r.Load(blob); err != nil {
		t.Fatal(err)
	}
	if dup, _ := process(t, r, "a", 90); !dup {
		t.Fatal("in-window sequence below max re-merged after a window-width change")
	}
	if dup, _ := process(t, r, "a", 101); dup {
		t.Fatal("sequence above max deduped after restore")
	}
}

func TestDedupManyPushersStayIndependent(t *testing.T) {
	d := NewDedup(64, 64)
	for i := 0; i < 32; i++ {
		id := fmt.Sprintf("p%02d", i)
		for seq := uint64(1); seq <= 8; seq++ {
			if dup, _ := process(t, d, id, seq); dup {
				t.Fatalf("(%s, %d) cross-pusher dedup", id, seq)
			}
		}
	}
	if st := d.Stats(); st.Pushers != 32 || st.EvictedPushers != 0 {
		t.Fatalf("stats: %+v", st)
	}
}
