package daemon

import (
	"bytes"
	"fmt"
	"net/http"
)

// handleMetrics serves the node's counters as plaintext in the
// Prometheus exposition format — one metric per line, labels for the
// per-peer breaker gauges — so cluster behaviour is scrapeable and
// greppable without parsing /healthz JSON. Everything here is a
// cheap atomic load or an already-locked stats snapshot; the one
// aggregate walk (live pair counts) is the same one /healthz pays.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bufPool.Put(buf)

	fmt.Fprintf(buf, "witchd_state{state=%q} 1\n", StateName(s.state.Load()))
	fmt.Fprintf(buf, "witchd_ingest_batches_total %d\n", s.batches.Load())
	fmt.Fprintf(buf, "witchd_ingest_rejected_total %d\n", s.rejected.Load())
	fmt.Fprintf(buf, "witchd_ingest_shed_total %d\n", s.shed.Load())
	fmt.Fprintf(buf, "witchd_ingest_forwarded_in_total %d\n", s.forwardedIn.Load())
	fmt.Fprintf(buf, "witchd_queries_total %d\n", s.queries.Load())

	st := s.st.Stats()
	fmt.Fprintf(buf, "witchd_store_ingested_profiles_total %d\n", st.Ingested)
	fmt.Fprintf(buf, "witchd_store_live_buckets %d\n", st.LiveBuckets)
	fmt.Fprintf(buf, "witchd_store_evicted_buckets_total %d\n", st.EvictedBuckets)
	fmt.Fprintf(buf, "witchd_store_live_pairs %d\n", st.LivePairs)
	fmt.Fprintf(buf, "witchd_store_rollup_pairs %d\n", st.RollupPairs)

	ds := s.ded.Stats()
	fmt.Fprintf(buf, "witchd_dedup_pushers %d\n", ds.Pushers)
	fmt.Fprintf(buf, "witchd_dedup_max_pushers %d\n", ds.MaxPushers)
	fmt.Fprintf(buf, "witchd_dedup_tombstones %d\n", ds.Tombstones)
	fmt.Fprintf(buf, "witchd_dedup_duplicates_reacked_total %d\n", ds.Duplicates)
	fmt.Fprintf(buf, "witchd_dedup_stale_reacked_total %d\n", ds.Stale)
	fmt.Fprintf(buf, "witchd_dedup_evicted_pushers_total %d\n", ds.EvictedPushers)

	if p := s.pers; p != nil {
		fmt.Fprintf(buf, "witchd_journal_lsn %d\n", p.journal.LastLSN())
		fmt.Fprintf(buf, "witchd_journal_failed %d\n", b2i(p.journal.Failed()))
		fmt.Fprintf(buf, "witchd_journal_unsynced_bytes %d\n", p.journal.UnsyncedBytes())
		fmt.Fprintf(buf, "witchd_journal_errors_total %d\n", p.journalErrors.Load())
		fmt.Fprintf(buf, "witchd_snapshots_total %d\n", p.snapshots.Load())
		fmt.Fprintf(buf, "witchd_snapshot_errors_total %d\n", p.snapErrors.Load())
		fmt.Fprintf(buf, "witchd_last_snapshot_lsn %d\n", p.lastSnapLSN.Load())
	}

	if cl := s.cl; cl != nil {
		cs := cl.StatsSnapshot()
		fmt.Fprintf(buf, "witchd_cluster_peers %d\n", len(cs.Peers))
		fmt.Fprintf(buf, "witchd_cluster_forwards_total %d\n", cs.Forwards)
		fmt.Fprintf(buf, "witchd_cluster_forward_shed_total %d\n", cs.ForwardShed)
		fmt.Fprintf(buf, "witchd_cluster_forward_errors_total %d\n", cs.ForwardErrors)
		fmt.Fprintf(buf, "witchd_cluster_scatters_total %d\n", cs.Scatters)
		fmt.Fprintf(buf, "witchd_cluster_scatter_partials_total %d\n", cs.ScatterPartials)
		for _, ps := range cl.PeerStates() {
			fmt.Fprintf(buf, "witchd_peer_breaker_open{peer=%q} %d\n", ps.Peer, b2i(ps.Open))
			fmt.Fprintf(buf, "witchd_peer_breaker_trips_total{peer=%q} %d\n", ps.Peer, ps.Trips)
			fmt.Fprintf(buf, "witchd_peer_forwards_total{peer=%q} %d\n", ps.Peer, ps.Forwards)
			fmt.Fprintf(buf, "witchd_peer_forward_errors_total{peer=%q} %d\n", ps.Peer, ps.Errors)
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
