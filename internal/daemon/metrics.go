package daemon

import (
	"bytes"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"sync"

	"repro/internal/obs"
)

// handleMetrics serves the node's counters, gauges, and latency
// histograms in the Prometheus text exposition format (0.0.4): every
// family carries its # HELP and # TYPE metadata, families are emitted
// in sorted name order, and samples within a family in a fixed order
// (labels sorted; histogram buckets ascending) — so two scrapes with
// unchanged counters are byte-identical and diffable, and promtool
// check metrics passes. Everything here is a cheap atomic load or an
// already-locked stats snapshot; the one aggregate walk (live pair
// counts) is the same one /healthz pays.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	var fams []obs.MetricFamily
	sample := func(name, help, typ string, samples ...string) {
		fams = append(fams, obs.MetricFamily{Name: name, Help: help, Type: typ, Samples: samples})
	}
	counter := func(name, help string, v uint64) {
		sample(name, help, "counter", name+" "+strconv.FormatUint(v, 10))
	}
	gauge := func(name, help string, v uint64) {
		sample(name, help, "gauge", name+" "+strconv.FormatUint(v, 10))
	}

	version, goVersion := buildInfo()
	sample("witchd_build_info", "Build metadata; the value is always 1.", "gauge",
		`witchd_build_info{go="`+goVersion+`",version="`+version+`"} 1`)
	sample("witchd_state", "Lifecycle state; the label names it, the value is always 1.", "gauge",
		fmt.Sprintf("witchd_state{state=%q} 1", StateName(s.state.Load())))
	counter("witchd_ingest_batches_total", "Ingest batches accepted locally.", s.batches.Load())
	counter("witchd_ingest_rejected_total", "Ingest requests rejected as invalid.", s.rejected.Load())
	counter("witchd_ingest_shed_total", "Ingest requests shed for overload or lifecycle.", s.shed.Load())
	counter("witchd_ingest_forwarded_in_total", "Batches that arrived via a peer's routing hop.", s.forwardedIn.Load())
	counter("witchd_ingest_replicated_in_total", "Batches applied via a peer's replication leg.", s.replicatedIn.Load())
	counter("witchd_ring_mismatches_total", "Inter-node requests rejected for ring skew.", s.ringMismatches.Load())
	counter("witchd_queries_total", "/v1/top and /v1/profile requests served.", s.queries.Load())
	counter("witchd_query_cache_hits_total", "Query responses served from the rendered cache.", s.viewHits.Load())
	counter("witchd_query_cache_misses_total", "Query responses materialized and rendered.", s.viewMisses.Load())

	st := s.st.Stats()
	counter("witchd_store_ingested_profiles_total", "Profiles merged into the retention store.", st.Ingested)
	gauge("witchd_store_live_buckets", "Retention buckets currently live.", uint64(st.LiveBuckets))
	counter("witchd_store_evicted_buckets_total", "Retention buckets evicted into the rollup.", st.EvictedBuckets)
	gauge("witchd_store_live_pairs", "Aggregated pairs across live buckets.", uint64(st.LivePairs))
	gauge("witchd_store_rollup_pairs", "Aggregated pairs in the evicted rollup.", uint64(st.RollupPairs))
	gauge("witchd_store_partitions", "Per-pusher partitions the store holds.", uint64(st.Partitions))

	cst := s.st.CacheStats()
	counter("witchd_store_query_cache_hits_total", "Store query-view cache hits.", cst.QueryHits)
	counter("witchd_store_query_cache_misses_total", "Store query-view cache misses.", cst.QueryMisses)
	counter("witchd_store_export_cache_hits_total", "Store export cache hits.", cst.ExportHits)
	counter("witchd_store_export_cache_misses_total", "Store export cache misses.", cst.ExportMisses)

	ds := s.ded.Stats()
	gauge("witchd_dedup_pushers", "Pushers with a live dedup window.", uint64(ds.Pushers))
	gauge("witchd_dedup_max_pushers", "Dedup pusher-table capacity.", uint64(ds.MaxPushers))
	gauge("witchd_dedup_tombstones", "Evicted-pusher tombstones held.", uint64(ds.Tombstones))
	counter("witchd_dedup_duplicates_reacked_total", "In-window duplicate sequences re-acked.", ds.Duplicates)
	counter("witchd_dedup_stale_reacked_total", "Below-window stale sequences re-acked.", ds.Stale)
	counter("witchd_dedup_evicted_pushers_total", "Dedup windows evicted to capacity.", ds.EvictedPushers)

	if p := s.pers; p != nil {
		gauge("witchd_journal_lsn", "Last journal LSN assigned.", p.journal.LastLSN())
		gauge("witchd_journal_failed", "1 when the journal has failed and ingest is gated.", uint64(b2i(p.journal.Failed())))
		gauge("witchd_journal_unsynced_bytes", "Journal bytes appended but not yet fsynced.", uint64(p.journal.UnsyncedBytes()))
		counter("witchd_journal_errors_total", "Journal append/sync errors.", p.journalErrors.Load())
		counter("witchd_snapshots_total", "Snapshots taken.", p.snapshots.Load())
		counter("witchd_snapshot_errors_total", "Snapshot attempts that failed.", p.snapErrors.Load())
		gauge("witchd_last_snapshot_lsn", "Journal LSN the newest snapshot anchors.", p.lastSnapLSN.Load())
	}

	if cl := s.cl; cl != nil {
		cs := cl.StatsSnapshot()
		gauge("witchd_cluster_peers", "Ring size, this node included.", uint64(len(cs.Peers)))
		gauge("witchd_cluster_replication_factor", "Configured replication factor.", uint64(cs.RF))
		counter("witchd_cluster_forwards_total", "Keyed batches forwarded to their owner.", cs.Forwards)
		counter("witchd_cluster_forward_shed_total", "Forwards the owner shed with backpressure.", cs.ForwardShed)
		counter("witchd_cluster_forward_errors_total", "Forward legs that produced no verdict.", cs.ForwardErrors)
		counter("witchd_cluster_forward_reroutes_total", "Forwards rerouted past a breaker-open owner.", cs.ForwardReroutes)
		counter("witchd_cluster_replicates_total", "Replication legs acked durably by a follower.", cs.Replicates)
		counter("witchd_cluster_replicate_errors_total", "Replication legs that failed.", cs.ReplicateErrors)
		counter("witchd_cluster_scatters_total", "Scatter-gather query fan-outs.", cs.Scatters)
		counter("witchd_cluster_scatter_partials_total", "Scatters with at least one failed leg.", cs.ScatterPartials)
		counter("witchd_cluster_scatter_bytes_total", "Bytes received across scatter legs.", cs.ScatterBytes)
		counter("witchd_cluster_scatter_full_legs_total", "Scatter legs answered with a full export.", cs.ScatterFullLegs)
		counter("witchd_cluster_scatter_delta_legs_total", "Scatter legs answered with a delta.", cs.ScatterDeltaLegs)
		var open, trips, fwd, ferr []string
		for _, ps := range cl.PeerStates() {
			open = append(open, fmt.Sprintf("witchd_peer_breaker_open{peer=%q} %d", ps.Peer, b2i(ps.Open)))
			trips = append(trips, fmt.Sprintf("witchd_peer_breaker_trips_total{peer=%q} %d", ps.Peer, ps.Trips))
			fwd = append(fwd, fmt.Sprintf("witchd_peer_forwards_total{peer=%q} %d", ps.Peer, ps.Forwards))
			ferr = append(ferr, fmt.Sprintf("witchd_peer_forward_errors_total{peer=%q} %d", ps.Peer, ps.Errors))
		}
		sort.Strings(open)
		sort.Strings(trips)
		sort.Strings(fwd)
		sort.Strings(ferr)
		sample("witchd_peer_breaker_open", "1 while the peer's circuit breaker is open.", "gauge", open...)
		sample("witchd_peer_breaker_trips_total", "Times the peer's breaker tripped open.", "counter", trips...)
		sample("witchd_peer_forwards_total", "Forward attempts per peer.", "counter", fwd...)
		sample("witchd_peer_forward_errors_total", "Failed forward attempts per peer.", "counter", ferr...)
	}

	if s.repl != nil {
		rs := s.repl.stats()
		counter("witchd_hints_queued_total", "Hinted-handoff records queued.", rs.HintsQueued)
		counter("witchd_hints_replayed_total", "Hints drained to their destination.", rs.HintsReplayed)
		counter("witchd_hints_dropped_total", "Hints evicted to the per-peer byte bound.", rs.HintsDropped)
		counter("witchd_hints_rejected_total", "Hints the healed destination durably refused.", rs.HintsRejected)
		counter("witchd_hint_append_errors_total", "Hint journal append failures.", rs.HintAppendErrors)
		counter("witchd_replicate_rejected_total", "Fanout legs a follower durably refused.", rs.ReplicateRejected)
		gauge("witchd_hints_pending", "Hints queued and not yet drained.", uint64(rs.HintsPending))
		var pend, hb []string
		for _, hp := range rs.HintPeers {
			pend = append(pend, fmt.Sprintf("witchd_hints_pending_peer{peer=%q} %d", hp.Peer, hp.Pending))
			hb = append(hb, fmt.Sprintf("witchd_hint_bytes_peer{peer=%q} %d", hp.Peer, hp.Bytes))
		}
		sort.Strings(pend)
		sort.Strings(hb)
		sample("witchd_hints_pending_peer", "Pending hints per destination peer.", "gauge", pend...)
		sample("witchd_hint_bytes_peer", "Hint journal bytes per destination peer.", "gauge", hb...)
		counter("witchd_repair_rounds_total", "Anti-entropy rounds run.", rs.RepairRounds)
		counter("witchd_repair_pulls_total", "Partitions adopted from a peer by repair.", rs.RepairPulls)
		counter("witchd_repair_conflicts_total", "Repair pulls that resolved a checksum conflict.", rs.RepairConflicts)
		counter("witchd_repair_errors_total", "Repair legs that errored.", rs.RepairErrors)
	}

	fams = append(fams, s.cfg.Obs.MetricFamilies()...)

	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bufPool.Put(buf)
	for _, f := range fams {
		if len(f.Samples) == 0 {
			continue
		}
		buf.WriteString("# HELP ")
		buf.WriteString(f.Name)
		buf.WriteByte(' ')
		buf.WriteString(f.Help)
		buf.WriteString("\n# TYPE ")
		buf.WriteString(f.Name)
		buf.WriteByte(' ')
		buf.WriteString(f.Type)
		buf.WriteByte('\n')
		for _, line := range f.Samples {
			buf.WriteString(line)
			buf.WriteByte('\n')
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}

// buildInfo resolves the binary's module version and Go toolchain once
// (debug.ReadBuildInfo walks the embedded module graph — not a
// per-scrape cost).
var (
	buildOnce            sync.Once
	buildVersion, goVers string
)

func buildInfo() (version, goVersion string) {
	buildOnce.Do(func() {
		buildVersion, goVers = "unknown", runtime.Version()
		if bi, ok := debug.ReadBuildInfo(); ok {
			if bi.Main.Version != "" {
				buildVersion = bi.Main.Version
			}
			if bi.GoVersion != "" {
				goVers = bi.GoVersion
			}
		}
	})
	return buildVersion, goVers
}

// buildInfoBlock is /healthz's build stanza.
func buildInfoBlock() map[string]string {
	version, goVersion := buildInfo()
	return map[string]string{"version": version, "go": goVersion}
}
