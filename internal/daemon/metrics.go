package daemon

import (
	"bytes"
	"fmt"
	"net/http"
	"sort"
)

// handleMetrics serves the node's counters as plaintext in the
// Prometheus exposition format — one metric per line, labels for the
// per-peer gauges — so cluster behaviour is scrapeable and greppable
// without parsing /healthz JSON. Lines are emitted in sorted order:
// scrapers and tests can diff two scrapes textually, and a counter
// never moves when a feature adds neighbours. Everything here is a
// cheap atomic load or an already-locked stats snapshot; the one
// aggregate walk (live pair counts) is the same one /healthz pays.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	var lines []string
	add := func(format string, args ...any) {
		lines = append(lines, fmt.Sprintf(format, args...))
	}

	add("witchd_state{state=%q} 1", StateName(s.state.Load()))
	add("witchd_ingest_batches_total %d", s.batches.Load())
	add("witchd_ingest_rejected_total %d", s.rejected.Load())
	add("witchd_ingest_shed_total %d", s.shed.Load())
	add("witchd_ingest_forwarded_in_total %d", s.forwardedIn.Load())
	add("witchd_ingest_replicated_in_total %d", s.replicatedIn.Load())
	add("witchd_ring_mismatches_total %d", s.ringMismatches.Load())
	add("witchd_queries_total %d", s.queries.Load())
	add("witchd_query_cache_hits_total %d", s.viewHits.Load())
	add("witchd_query_cache_misses_total %d", s.viewMisses.Load())

	st := s.st.Stats()
	add("witchd_store_ingested_profiles_total %d", st.Ingested)
	add("witchd_store_live_buckets %d", st.LiveBuckets)
	add("witchd_store_evicted_buckets_total %d", st.EvictedBuckets)
	add("witchd_store_live_pairs %d", st.LivePairs)
	add("witchd_store_rollup_pairs %d", st.RollupPairs)
	add("witchd_store_partitions %d", st.Partitions)

	cst := s.st.CacheStats()
	add("witchd_store_query_cache_hits_total %d", cst.QueryHits)
	add("witchd_store_query_cache_misses_total %d", cst.QueryMisses)
	add("witchd_store_export_cache_hits_total %d", cst.ExportHits)
	add("witchd_store_export_cache_misses_total %d", cst.ExportMisses)

	ds := s.ded.Stats()
	add("witchd_dedup_pushers %d", ds.Pushers)
	add("witchd_dedup_max_pushers %d", ds.MaxPushers)
	add("witchd_dedup_tombstones %d", ds.Tombstones)
	add("witchd_dedup_duplicates_reacked_total %d", ds.Duplicates)
	add("witchd_dedup_stale_reacked_total %d", ds.Stale)
	add("witchd_dedup_evicted_pushers_total %d", ds.EvictedPushers)

	if p := s.pers; p != nil {
		add("witchd_journal_lsn %d", p.journal.LastLSN())
		add("witchd_journal_failed %d", b2i(p.journal.Failed()))
		add("witchd_journal_unsynced_bytes %d", p.journal.UnsyncedBytes())
		add("witchd_journal_errors_total %d", p.journalErrors.Load())
		add("witchd_snapshots_total %d", p.snapshots.Load())
		add("witchd_snapshot_errors_total %d", p.snapErrors.Load())
		add("witchd_last_snapshot_lsn %d", p.lastSnapLSN.Load())
	}

	if cl := s.cl; cl != nil {
		cs := cl.StatsSnapshot()
		add("witchd_cluster_peers %d", len(cs.Peers))
		add("witchd_cluster_replication_factor %d", cs.RF)
		add("witchd_cluster_forwards_total %d", cs.Forwards)
		add("witchd_cluster_forward_shed_total %d", cs.ForwardShed)
		add("witchd_cluster_forward_errors_total %d", cs.ForwardErrors)
		add("witchd_cluster_forward_reroutes_total %d", cs.ForwardReroutes)
		add("witchd_cluster_replicates_total %d", cs.Replicates)
		add("witchd_cluster_replicate_errors_total %d", cs.ReplicateErrors)
		add("witchd_cluster_scatters_total %d", cs.Scatters)
		add("witchd_cluster_scatter_partials_total %d", cs.ScatterPartials)
		add("witchd_cluster_scatter_bytes_total %d", cs.ScatterBytes)
		add("witchd_cluster_scatter_full_legs_total %d", cs.ScatterFullLegs)
		add("witchd_cluster_scatter_delta_legs_total %d", cs.ScatterDeltaLegs)
		for _, ps := range cl.PeerStates() {
			add("witchd_peer_breaker_open{peer=%q} %d", ps.Peer, b2i(ps.Open))
			add("witchd_peer_breaker_trips_total{peer=%q} %d", ps.Peer, ps.Trips)
			add("witchd_peer_forwards_total{peer=%q} %d", ps.Peer, ps.Forwards)
			add("witchd_peer_forward_errors_total{peer=%q} %d", ps.Peer, ps.Errors)
		}
	}

	if s.repl != nil {
		rs := s.repl.stats()
		add("witchd_hints_queued_total %d", rs.HintsQueued)
		add("witchd_hints_replayed_total %d", rs.HintsReplayed)
		add("witchd_hints_dropped_total %d", rs.HintsDropped)
		add("witchd_hints_rejected_total %d", rs.HintsRejected)
		add("witchd_hint_append_errors_total %d", rs.HintAppendErrors)
		add("witchd_replicate_rejected_total %d", rs.ReplicateRejected)
		add("witchd_hints_pending %d", rs.HintsPending)
		for _, hp := range rs.HintPeers {
			add("witchd_hints_pending_peer{peer=%q} %d", hp.Peer, hp.Pending)
			add("witchd_hint_bytes_peer{peer=%q} %d", hp.Peer, hp.Bytes)
		}
		add("witchd_repair_rounds_total %d", rs.RepairRounds)
		add("witchd_repair_pulls_total %d", rs.RepairPulls)
		add("witchd_repair_conflicts_total %d", rs.RepairConflicts)
		add("witchd_repair_errors_total %d", rs.RepairErrors)
	}

	sort.Strings(lines)
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bufPool.Put(buf)
	for _, line := range lines {
		buf.WriteString(line)
		buf.WriteByte('\n')
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write(buf.Bytes())
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
