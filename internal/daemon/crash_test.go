package daemon

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/store"
	"repro/internal/wal"
)

// durable is one incarnation of a crash-safe witchd over a shared data
// dir. "Crashing" it means closing the HTTP listener and walking away —
// no drain, no final snapshot, no journal close — exactly what kill -9
// leaves behind (modulo the page cache, which in-process tests cannot
// drop; torn tails are supplied by the fault injector instead).
type durable struct {
	srv  *Server
	pers *Persistence
	ts   *httptest.Server
}

// openDurable boots a server through the same recovery path main() uses.
func openDurable(t *testing.T, dir string, walOpts wal.Options, snapEvery uint64, now func() time.Time) *durable {
	t.Helper()
	st := store.New(store.Config{Window: time.Minute, Buckets: 4, Now: now})
	srv := NewServer(st, Config{MaxBody: 4 << 20, Now: now})
	srv.SetState(StateRecovering)
	pers, err := OpenPersistence(dir, st, srv.Dedup(), walOpts, snapEvery)
	if err != nil {
		t.Fatalf("recovery must never fail on crash damage: %v", err)
	}
	srv.AttachPersistence(pers)
	srv.SetState(StateServing)
	return &durable{srv: srv, pers: pers, ts: httptest.NewServer(srv.Handler())}
}

// crash abandons the incarnation without any graceful shutdown.
func (d *durable) crash() { d.ts.Close() }

// fsyncModes runs a crash test once per journal durability mode: the
// per-append fsync path and the group-commit path. The mode hook edits
// a test's base wal.Options; the test body and its assertions are
// identical in both runs — group commit must not weaken any durability
// guarantee, only batch the fsyncs.
func fsyncModes(t *testing.T, run func(t *testing.T, mode func(wal.Options) wal.Options)) {
	t.Run("fsync=always", func(t *testing.T) {
		run(t, func(o wal.Options) wal.Options { return o })
	})
	t.Run("fsync=group", func(t *testing.T) {
		run(t, func(o wal.Options) wal.Options { o.GroupCommit = true; return o })
	})
}

// stepClock is a deterministic shared clock: every observation advances
// one second, so bucket layout (and therefore byte-level profile output)
// is reproducible across incarnations.
func stepClock() func() time.Time {
	var n atomic.Int64
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	return func() time.Time { return t0.Add(time.Duration(n.Add(1)) * time.Second) }
}

// getProfile fetches the merged all-time profile as raw bytes.
func getProfile(t *testing.T, d *durable, tool string) []byte {
	t.Helper()
	resp, err := http.Get(d.ts.URL + "/v1/profile?tool=" + tool)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile: HTTP %d: %s", resp.StatusCode, body)
	}
	return body
}

// TestCrashRestartCycles is the tentpole proof: across repeated
// kill-restart cycles — with segment rotation and periodic snapshots
// both exercised by tiny thresholds — every acknowledged batch survives
// and GET /v1/profile returns byte-identical output before the crash
// and after recovery.
func TestCrashRestartCycles(t *testing.T) {
	fsyncModes(t, func(t *testing.T, mode func(wal.Options) wal.Options) {
		dir := t.TempDir()
		now := stepClock()
		profs := [][]byte{}
		for seed := int64(1); seed <= 3; seed++ {
			var buf bytes.Buffer
			if err := testProfile(t, seed).WriteJSON(&buf); err != nil {
				t.Fatal(err)
			}
			profs = append(profs, buf.Bytes())
		}
		tool := testProfile(t, 1).Tool

		const cycles, perCycle = 5, 7
		var want []byte
		var acked int
		for c := 0; c < cycles; c++ {
			d := openDurable(t, dir, mode(wal.Options{SegmentBytes: 512}), 3, now)
			if want != nil {
				if got := getProfile(t, d, tool); !bytes.Equal(got, want) {
					t.Fatalf("cycle %d: recovered profile differs from pre-crash profile:\n%s\nvs\n%s", c, got, want)
				}
			}
			for i := 0; i < perCycle; i++ {
				resp := ingest(t, d.ts, profs[(c*perCycle+i)%len(profs)])
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("cycle %d batch %d: HTTP %d", c, i, resp.StatusCode)
				}
				acked++
			}
			want = getProfile(t, d, tool)
			d.crash()
		}

		// Final incarnation: state is intact and fully accounted for.
		d := openDurable(t, dir, mode(wal.Options{}), 0, now)
		defer d.crash()
		if got := getProfile(t, d, tool); !bytes.Equal(got, want) {
			t.Fatal("final recovery lost acknowledged data")
		}
		if got := d.srv.st.Stats().Ingested; got != uint64(acked) {
			t.Fatalf("recovered store accounts for %d profiles, %d were acked", got, acked)
		}
		// Snapshots were actually taken and anchored journal GC.
		if d.pers.recovery.SnapshotLSN == 0 {
			t.Fatal("no snapshot was ever recovered from despite snapEvery=3")
		}
		if d.pers.recovery.ReplayedBatches >= acked {
			t.Fatalf("replayed %d of %d batches: snapshots never absorbed the prefix", d.pers.recovery.ReplayedBatches, acked)
		}
	})
}

// TestCrashRecoveryWithDiskFaults drives ingest through an injector
// that fails journal writes the way real disks do — short writes,
// failed fsyncs, ENOSPC, torn mid-append records. The contract: a
// faulted batch is shed with 429/503 (+ Retry-After) and never
// acknowledged, an acknowledged batch is never lost, the daemon never
// crashes, and restart recovers to exactly the acked state.
func TestCrashRecoveryWithDiskFaults(t *testing.T) {
	fsyncModes(t, func(t *testing.T, mode func(wal.Options) wal.Options) {
		dir := t.TempDir()
		now := stepClock()
		var body bytes.Buffer
		prof := testProfile(t, 1)
		if err := prof.WriteJSON(&body); err != nil {
			t.Fatal(err)
		}

		var want []byte
		var acked, shed int
		for c := 0; c < 4; c++ {
			inj := fault.NewInjector(fault.Plan{
				Seed: int64(c + 1), ShortWrite: 0.2, SyncFail: 0.2, ENOSPC: 0.2, TornRecord: 0.05,
			})
			d := openDurable(t, dir, mode(wal.Options{SegmentBytes: 1024, Injector: inj}), 4, now)
			if want != nil {
				if got := getProfile(t, d, prof.Tool); !bytes.Equal(got, want) {
					t.Fatalf("cycle %d: recovery after faults lost acked state (acked=%d, recovered Ingested=%d, recovery=%+v)",
						c, acked, d.srv.st.Stats().Ingested, d.pers.recovery)
				}
			}
			for i := 0; i < 12; i++ {
				resp := ingest(t, d.ts, body.Bytes())
				switch resp.StatusCode {
				case http.StatusOK:
					acked++
				case http.StatusTooManyRequests, http.StatusServiceUnavailable:
					shed++
					if resp.Header.Get("Retry-After") == "" {
						t.Fatalf("cycle %d batch %d: shed %d without Retry-After", c, i, resp.StatusCode)
					}
				default:
					t.Fatalf("cycle %d batch %d: HTTP %d (faults must shed, not error)", c, i, resp.StatusCode)
				}
			}
			if acked > 0 {
				want = getProfile(t, d, prof.Tool)
			}
			d.crash()
		}
		if shed == 0 || acked == 0 {
			t.Fatalf("chaos run did not exercise both paths: %d acked, %d shed", acked, shed)
		}

		// Clean final recovery (no injector): exactly the acked batches.
		d := openDurable(t, dir, mode(wal.Options{}), 0, now)
		defer d.crash()
		if got := getProfile(t, d, prof.Tool); !bytes.Equal(got, want) {
			t.Fatal("final recovery does not match acked state")
		}
		if got := d.srv.st.Stats().Ingested; got != uint64(acked) {
			t.Fatalf("recovered %d profiles, acked %d: shed batches must not land, acked must not vanish", got, acked)
		}
	})
}

// TestJournalFailureDisablesIngest: a torn-record fault (simulated
// mid-append crash) marks the journal failed; every later ingest is
// shed 503 until restart, and restart truncates the torn tail and
// serves again.
func TestJournalFailureDisablesIngest(t *testing.T) {
	dir := t.TempDir()
	now := stepClock()
	var body bytes.Buffer
	prof := testProfile(t, 1)
	prof.WriteJSON(&body)

	d := openDurable(t, dir, wal.Options{}, 0, now)
	if resp := ingest(t, d.ts, body.Bytes()); resp.StatusCode != http.StatusOK {
		t.Fatalf("clean ingest: HTTP %d", resp.StatusCode)
	}
	want := getProfile(t, d, prof.Tool)
	d.crash()

	// Second incarnation tears its first append.
	d = openDurable(t, dir, wal.Options{Injector: fault.NewInjector(fault.Plan{Seed: 7, TornRecord: 1})}, 0, now)
	if resp := ingest(t, d.ts, body.Bytes()); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("torn append: HTTP %d, want 503", resp.StatusCode)
	}
	for i := 0; i < 3; i++ {
		resp := ingest(t, d.ts, body.Bytes())
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("post-failure ingest %d: HTTP %d, want 503 until restart", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("failed-journal shed must carry Retry-After")
		}
	}
	if !d.pers.journal.Failed() {
		t.Fatal("journal not marked failed after torn record")
	}
	d.crash()

	// Third incarnation: the torn tail is truncated, nothing acked lost.
	d = openDurable(t, dir, wal.Options{}, 0, now)
	defer d.crash()
	if !d.pers.recovery.TornTail {
		t.Fatalf("recovery report missed the torn tail: %+v", d.pers.recovery)
	}
	if got := getProfile(t, d, prof.Tool); !bytes.Equal(got, want) {
		t.Fatal("torn-tail truncation lost acked state")
	}
	if resp := ingest(t, d.ts, body.Bytes()); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest after torn-tail recovery: HTTP %d", resp.StatusCode)
	}
}

// TestGroupCommitTornGangCleansTail is the group-commit twin of
// TestJournalFailureDisablesIngest. The commit path differs on purpose:
// a torn write inside a gang is rolled back (truncated) at commit time,
// because complete prefix frames of an all-nacked gang would otherwise
// be replayed while the pushers retry — duplicating batches. So here
// the journal still fails closed (503s until restart), but the restart
// finds a *clean* tail and, as always, loses nothing acknowledged.
func TestGroupCommitTornGangCleansTail(t *testing.T) {
	dir := t.TempDir()
	now := stepClock()
	var body bytes.Buffer
	prof := testProfile(t, 1)
	prof.WriteJSON(&body)

	grouped := wal.Options{GroupCommit: true}
	d := openDurable(t, dir, grouped, 0, now)
	if resp := ingest(t, d.ts, body.Bytes()); resp.StatusCode != http.StatusOK {
		t.Fatalf("clean ingest: HTTP %d", resp.StatusCode)
	}
	want := getProfile(t, d, prof.Tool)
	d.crash()

	// Second incarnation tears its first gang.
	torn := grouped
	torn.Injector = fault.NewInjector(fault.Plan{Seed: 7, TornRecord: 1})
	d = openDurable(t, dir, torn, 0, now)
	if resp := ingest(t, d.ts, body.Bytes()); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("torn gang: HTTP %d, want 503", resp.StatusCode)
	}
	for i := 0; i < 3; i++ {
		resp := ingest(t, d.ts, body.Bytes())
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("post-failure ingest %d: HTTP %d, want 503 until restart", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("failed-journal shed must carry Retry-After")
		}
	}
	if !d.pers.journal.Failed() {
		t.Fatal("journal not marked failed after torn gang")
	}
	d.crash()

	// Third incarnation: the gang rollback already removed the torn
	// bytes, so recovery sees no torn tail — and nothing acked is lost,
	// nothing nacked is resurrected.
	d = openDurable(t, dir, grouped, 0, now)
	defer d.crash()
	if d.pers.recovery.TornTail {
		t.Fatalf("gang rollback should have cleaned the tail at commit time: %+v", d.pers.recovery)
	}
	if got := getProfile(t, d, prof.Tool); !bytes.Equal(got, want) {
		t.Fatal("torn-gang rollback lost acked state")
	}
	if got := d.srv.st.Stats().Ingested; got != 1 {
		t.Fatalf("recovered %d profiles, 1 was acked: a nacked gang member landed", got)
	}
	if resp := ingest(t, d.ts, body.Bytes()); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest after torn-gang recovery: HTTP %d", resp.StatusCode)
	}
}

// TestLifecycleAndOverloadShedding covers the non-durability shed
// paths: pre-serving and draining states answer 503, a saturated
// inflight semaphore answers 429, and all carry Retry-After.
func TestLifecycleAndOverloadShedding(t *testing.T) {
	srv := NewServer(store.New(store.Config{}), Config{MaxInflight: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	var body bytes.Buffer
	testProfile(t, 1).WriteJSON(&body)

	check := func(label string, wantStatus int) {
		t.Helper()
		resp := ingest(t, ts, body.Bytes())
		if resp.StatusCode != wantStatus {
			t.Fatalf("%s: HTTP %d, want %d", label, resp.StatusCode, wantStatus)
		}
		if wantStatus != http.StatusOK && resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s: shed without Retry-After", label)
		}
	}

	check("starting", http.StatusServiceUnavailable)
	srv.SetState(StateRecovering)
	check("recovering", http.StatusServiceUnavailable)
	srv.SetState(StateServing)
	check("serving", http.StatusOK)

	// Saturate the inflight semaphore from the outside and watch the
	// overload path shed deterministically.
	srv.sem <- struct{}{}
	srv.sem <- struct{}{}
	check("semaphore full", http.StatusTooManyRequests)
	<-srv.sem
	<-srv.sem
	check("semaphore released", http.StatusOK)

	srv.SetState(StateDraining)
	check("draining", http.StatusServiceUnavailable)
	if srv.shed.Load() == 0 {
		t.Fatal("shed counter never moved")
	}

	// Queries keep working while draining — only ingest is refused.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		State string `json:"state"`
	}
	err = json.NewDecoder(resp.Body).Decode(&hz)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if hz.State != "draining" {
		t.Fatalf("healthz state = %q, want draining", hz.State)
	}
}

// TestBacklogWatermarkSheds: with fsync off, unsynced journal bytes
// past the watermark shed ingest with 429 instead of letting the
// window of acknowledged-but-volatile data grow without bound.
func TestBacklogWatermarkSheds(t *testing.T) {
	fsyncModes(t, func(t *testing.T, mode func(wal.Options) wal.Options) {
		dir := t.TempDir()
		now := stepClock()
		st := store.New(store.Config{Now: now})
		srv := NewServer(st, Config{MaxBody: 4 << 20, MaxBacklog: 64, Now: now})
		pers, err := OpenPersistence(dir, st, srv.Dedup(), mode(wal.Options{NoSync: true}), 0)
		if err != nil {
			t.Fatal(err)
		}
		srv.AttachPersistence(pers)
		srv.SetState(StateServing)
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()

		var body bytes.Buffer
		testProfile(t, 1).WriteJSON(&body)
		if resp := ingest(t, ts, body.Bytes()); resp.StatusCode != http.StatusOK {
			t.Fatalf("first ingest: HTTP %d", resp.StatusCode)
		}
		// The first batch's bytes are well past the 64-byte watermark.
		resp := ingest(t, ts, body.Bytes())
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("over watermark: HTTP %d, want 429", resp.StatusCode)
		}
		// Draining the backlog (sync) reopens ingest.
		if err := pers.journal.Sync(); err != nil {
			t.Fatal(err)
		}
		if resp := ingest(t, ts, body.Bytes()); resp.StatusCode != http.StatusOK {
			t.Fatalf("after sync: HTTP %d", resp.StatusCode)
		}
		if err := pers.Shutdown(); err != nil {
			t.Fatal(err)
		}
	})
}

// TestGracefulShutdownRecoversInstantly: Shutdown() leaves a snapshot
// whose anchor equals the journal head, so the next boot replays
// nothing and the profile is byte-identical.
func TestGracefulShutdownRecoversInstantly(t *testing.T) {
	fsyncModes(t, func(t *testing.T, mode func(wal.Options) wal.Options) {
		dir := t.TempDir()
		now := stepClock()
		prof := testProfile(t, 1)
		var body bytes.Buffer
		prof.WriteJSON(&body)

		d := openDurable(t, dir, mode(wal.Options{}), 0, now)
		for i := 0; i < 3; i++ {
			if resp := ingest(t, d.ts, body.Bytes()); resp.StatusCode != http.StatusOK {
				t.Fatalf("ingest %d: HTTP %d", i, resp.StatusCode)
			}
		}
		want := getProfile(t, d, prof.Tool)
		d.ts.Close()
		if err := d.pers.Shutdown(); err != nil {
			t.Fatalf("graceful shutdown: %v", err)
		}

		d = openDurable(t, dir, mode(wal.Options{}), 0, now)
		defer d.crash()
		rec := d.pers.recovery
		if !rec.SnapshotLoaded || rec.ReplayedBatches != 0 {
			t.Fatalf("post-drain boot should be snapshot-only: %+v", rec)
		}
		if got := getProfile(t, d, prof.Tool); !bytes.Equal(got, want) {
			t.Fatal("graceful shutdown + recovery drifted")
		}
	})
}

// TestSnapshotCRCFallback: a bit-rotted snapshot — even one whose gob
// still decodes — fails its CRC trailer and recovery falls back to the
// next-newest loadable snapshot plus the journal suffix, losing
// nothing acknowledged.
func TestSnapshotCRCFallback(t *testing.T) {
	dir := t.TempDir()
	now := stepClock()
	prof := testProfile(t, 1)
	var body bytes.Buffer
	prof.WriteJSON(&body)

	d := openDurable(t, dir, wal.Options{}, 0, now)
	for i := 0; i < 3; i++ {
		if resp := ingest(t, d.ts, body.Bytes()); resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest %d: HTTP %d", i, resp.StatusCode)
		}
	}
	want := getProfile(t, d, prof.Tool)
	d.ts.Close()
	if err := d.pers.Shutdown(); err != nil {
		t.Fatal(err)
	}

	// Plant a CORRUPT snapshot at a higher LSN than the good one: the
	// disk-rot scenario where the newest checkpoint is damaged. Recovery
	// must skip it on checksum and load the older good snapshot.
	snaps := listSnapshots(dir)
	if len(snaps) == 0 {
		t.Fatal("graceful shutdown left no snapshot")
	}
	good := snaps[0]
	raw, err := os.ReadFile(filepath.Join(dir, snapName(good)))
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), raw...)
	bad[len(bad)/2] ^= 0x20
	if err := os.WriteFile(filepath.Join(dir, snapName(good+5)), bad, 0o644); err != nil {
		t.Fatal(err)
	}

	d = openDurable(t, dir, wal.Options{}, 0, now)
	defer d.crash()
	rec := d.pers.recovery
	if rec.SnapshotsSkipped != 1 {
		t.Fatalf("corrupt snapshot not skipped: %+v", rec)
	}
	if !rec.SnapshotLoaded || rec.SnapshotLSN != good {
		t.Fatalf("did not fall back to the good snapshot at %d: %+v", good, rec)
	}
	if got := getProfile(t, d, prof.Tool); !bytes.Equal(got, want) {
		t.Fatal("fallback recovery lost acknowledged data")
	}
	// With every snapshot corrupt, recovery still comes up from the
	// journal alone.
	d.ts.Close()
	for _, lsn := range listSnapshots(dir) {
		if err := os.WriteFile(filepath.Join(dir, snapName(lsn)), bad, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	d2 := openDurable(t, dir, wal.Options{}, 0, now)
	defer d2.crash()
	if d2.pers.recovery.SnapshotLoaded {
		t.Fatalf("loaded a corrupt snapshot: %+v", d2.pers.recovery)
	}
}
