package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
	"repro/witch"
)

func testProfile(t *testing.T, seed int64) *witch.Profile {
	t.Helper()
	prog, err := witch.Workload("listing3")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := witch.Run(prog, witch.Options{Tool: witch.DeadStores, Period: 97, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func newTestServer(t *testing.T, cfg store.Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(store.New(cfg), Config{MaxBody: 4 << 20, Now: cfg.Now})
	srv.SetState(StateServing)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func ingest(t *testing.T, ts *httptest.Server, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestIngestProfileRoundTrip is the acceptance pipeline: WriteJSON →
// POST /v1/ingest → GET /v1/profile → DiffProfiles reports zero drift
// for a single-source window.
func TestIngestProfileRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, store.Config{})
	prof := testProfile(t, 1)

	var body bytes.Buffer
	if err := prof.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}
	if resp := ingest(t, ts, body.Bytes()); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: HTTP %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/v1/profile?tool=" + prof.Tool)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile: HTTP %d", resp.StatusCode)
	}
	merged, err := witch.ReadProfileJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	d, err := witch.DiffProfiles(prof, merged)
	if err != nil {
		t.Fatal(err)
	}
	if d.RedundancyDelta != 0 || len(d.New)+len(d.Gone)+len(d.Changed) != 0 {
		var out bytes.Buffer
		d.Write(&out)
		t.Fatalf("single-source round trip drifted:\n%s", out.String())
	}
	// Bit-level: the re-materialized pair list must match exactly.
	a, b := prof.TopPairs(0), merged.TopPairs(0)
	if len(a) != len(b) {
		t.Fatalf("pair count drifted: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pair %d drifted:\n%+v\n%+v", i, a[i], b[i])
		}
	}
	if merged.Program != prof.Program || merged.Waste != prof.Waste || merged.Stats != prof.Stats {
		t.Fatal("profile metadata drifted through the daemon")
	}
}

// TestIngestBatchAndRouting: one request may carry many profiles —
// concatenated or as a JSON array — and each routes to its own tool.
func TestIngestBatchAndRouting(t *testing.T) {
	_, ts := newTestServer(t, store.Config{})
	dead, load := testProfile(t, 1), testLoadProfile(t)

	var stream bytes.Buffer
	dead.WriteJSON(&stream)
	load.WriteJSON(&stream) // concatenated WriteJSON documents
	resp := ingest(t, ts, stream.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream ingest: HTTP %d", resp.StatusCode)
	}
	var ack struct {
		Accepted int            `json:"accepted"`
		ByTool   map[string]int `json:"by_tool"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 2 || ack.ByTool[dead.Tool] != 1 || ack.ByTool[load.Tool] != 1 {
		t.Fatalf("ack = %+v", ack)
	}

	// Array form.
	var d1, d2 bytes.Buffer
	dead.WriteJSON(&d1)
	load.WriteJSON(&d2)
	arr := "[" + d1.String() + "," + d2.String() + "]"
	if resp := ingest(t, ts, []byte(arr)); resp.StatusCode != http.StatusOK {
		t.Fatalf("array ingest: HTTP %d", resp.StatusCode)
	}

	// Tools stayed separate.
	for _, tool := range []string{dead.Tool, load.Tool} {
		resp, err := http.Get(ts.URL + "/v1/top?tool=" + tool)
		if err != nil {
			t.Fatal(err)
		}
		var top struct {
			Tool  string       `json:"tool"`
			Pairs []witch.Pair `json:"pairs"`
		}
		err = json.NewDecoder(resp.Body).Decode(&top)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if top.Tool != tool || len(top.Pairs) == 0 {
			t.Fatalf("top for %s = %+v", tool, top)
		}
	}
}

func testLoadProfile(t *testing.T) *witch.Profile {
	t.Helper()
	prog, err := witch.Workload("gcc")
	if err != nil {
		t.Fatal(err)
	}
	prof, err := witch.Run(prog, witch.Options{Tool: witch.RedundantLoads, Period: 197, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.TopPairs(0)) == 0 {
		t.Fatal("load profile has no pairs")
	}
	return prof
}

// TestIngestRejections: hostile bodies — malformed JSON, schema
// violations, wrong method, oversized payloads — are rejected atomically
// with descriptive errors, and nothing half-lands.
func TestIngestRejections(t *testing.T) {
	srv, ts := newTestServer(t, store.Config{})
	prof := testProfile(t, 1)
	var good bytes.Buffer
	prof.WriteJSON(&good)

	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"garbage", "not json", http.StatusBadRequest},
		{"empty", "", http.StatusBadRequest},
		{"empty array", "[]", http.StatusBadRequest},
		{"bad version", strings.Replace(good.String(), `"format_version": 1`, `"format_version": 9`, 1), http.StatusBadRequest},
		{"good then bad", good.String() + "{\"format_version\": 9}", http.StatusBadRequest},
		{"binary magic only", "WITCHB1\n", http.StatusBadRequest},
		{"binary truncated", "WITCHB1\n\x05{\"a\"", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := ingest(t, ts, []byte(tc.body))
			if resp.StatusCode != tc.status {
				t.Fatalf("HTTP %d, want %d", resp.StatusCode, tc.status)
			}
		})
	}
	// Atomicity: the "good then bad" batch must not have landed its
	// good half.
	if got := srv.st.Stats().Ingested; got != 0 {
		t.Fatalf("%d profiles landed from rejected batches", got)
	}
	if resp, _ := http.Get(ts.URL + "/v1/ingest"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET ingest: HTTP %d", resp.StatusCode)
	}

	// Size limit: a tiny cap rejects the same valid body outright.
	small := NewServer(store.New(store.Config{}), Config{MaxBody: 16})
	small.SetState(StateServing)
	tss := httptest.NewServer(small.Handler())
	defer tss.Close()
	resp, err := http.Post(tss.URL+"/v1/ingest", "application/json", bytes.NewReader(good.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: HTTP %d, want 413", resp.StatusCode)
	}
}

// TestQueryValidation covers the query endpoints' error paths.
func TestQueryValidation(t *testing.T) {
	_, ts := newTestServer(t, store.Config{})
	for path, want := range map[string]int{
		"/v1/top":                          http.StatusBadRequest, // missing tool
		"/v1/top?tool=DeadCraft&window=x":  http.StatusBadRequest,
		"/v1/top?tool=DeadCraft&n=-1":      http.StatusBadRequest,
		"/v1/top?tool=DeadCraft":           http.StatusNotFound, // nothing ingested
		"/v1/profile?tool=DeadCraft":       http.StatusNotFound,
		"/v1/profile":                      http.StatusBadRequest,
		"/v1/profile?tool=X&program=nope":  http.StatusNotFound,
		"/v1/top?tool=DeadCraft&window=1h": http.StatusNotFound,
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("%s: HTTP %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestHealthz aggregates fleet health and retention stats.
func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, store.Config{})
	prof := testProfile(t, 1)
	var body bytes.Buffer
	prof.WriteJSON(&body)
	ingest(t, ts, body.Bytes())

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: HTTP %d", resp.StatusCode)
	}
	var hz struct {
		Status   string       `json:"status"`
		Profiles uint64       `json:"profiles"`
		Tools    []string     `json:"tools"`
		Health   witch.Health `json:"health"`
		Store    store.Stats  `json:"store"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "ok" || hz.Profiles != 1 || len(hz.Tools) != 1 || hz.Tools[0] != prof.Tool {
		t.Fatalf("healthz = %+v", hz)
	}
	if hz.Store.Ingested != 1 {
		t.Fatalf("store stats = %+v", hz.Store)
	}

	// A degraded profile flips fleet status.
	bad := witch.NewProfile(witch.Profile{
		Program: "p", Tool: "DeadCraft", Waste: 1, Use: 1, Redundancy: 0.5,
		Health: witch.Health{SignalsLost: 3, SampleLoss: true, Degraded: true},
	}, []witch.Pair{{Src: "a:f:1", Dst: "a:g:2", Chain: "main", Waste: 1, Use: 1}})
	var bb bytes.Buffer
	bad.WriteJSON(&bb)
	ingest(t, ts, bb.Bytes())
	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hz.Status != "degraded" || hz.Health.SignalsLost != 3 || !hz.Health.Degraded {
		t.Fatalf("degraded healthz = %+v", hz)
	}
}

// TestConcurrentPushersWithEviction is the acceptance scenario: ≥8
// parallel pushers (real witch.Pusher clients) sustain ingest against a
// live daemon under -race while a moving clock forces retention
// eviction; memory stays bounded (live pairs capped by the ring) and no
// profile is lost from the all-time view.
func TestConcurrentPushersWithEviction(t *testing.T) {
	// The clock advances one step per observation: deliveries are async
	// (the pushers' queues drain in the background), so driving time
	// from the ingest side — not the push loops — guarantees the
	// profiles actually spread across retention windows.
	var calls atomic.Int64
	t0 := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	srv, ts := newTestServer(t, store.Config{
		Window:  time.Minute,
		Buckets: 3,
		Now: func() time.Time {
			n := calls.Add(1)
			return t0.Add(time.Duration(n/8) * 30 * time.Second)
		},
	})

	const (
		pushers = 8
		perP    = 20
	)
	// Distinct programs per pusher: distinct pair streams, so the
	// live-pair bound is meaningful.
	profs := make([]*witch.Profile, pushers)
	base := testProfile(t, 1)
	for i := range profs {
		meta := witch.Profile{
			Program: fmt.Sprintf("svc-%d", i), Tool: base.Tool,
			Redundancy: base.Redundancy, Waste: base.Waste, Use: base.Use,
			Stats: base.Stats, Health: base.Health,
		}
		pairs := make([]witch.Pair, len(base.TopPairs(0)))
		copy(pairs, base.TopPairs(0))
		profs[i] = witch.NewProfile(meta, pairs)
	}

	var wg sync.WaitGroup
	for i := 0; i < pushers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Odd pushers negotiate the binary encoding, even ones stay
			// JSON — the merged view must not care.
			enc := "json"
			if i%2 == 1 {
				enc = "binary"
			}
			p, err := witch.NewPusher(witch.PusherOptions{
				URL: ts.URL, Queue: perP, Backoff: time.Millisecond, Encoding: enc,
			})
			if err != nil {
				t.Error(err)
				return
			}
			for j := 0; j < perP; j++ {
				if !p.Push(profs[i]) {
					t.Errorf("pusher %d: push %d rejected", i, j)
				}
			}
			p.Close()
			if st := p.Stats(); st.Sent != perP {
				t.Errorf("pusher %d delivered %d/%d: %+v", i, st.Sent, perP, st)
			}
		}(i)
	}
	wg.Wait()

	st := srv.st.Stats()
	if st.Ingested != pushers*perP {
		t.Fatalf("daemon ingested %d, want %d", st.Ingested, pushers*perP)
	}
	if st.EvictedBuckets == 0 {
		t.Fatal("no eviction observed under sustained ingest")
	}
	if st.LiveBuckets > 3 {
		t.Fatalf("live buckets %d exceed ring size", st.LiveBuckets)
	}
	// Bounded memory: live pairs are capped by ring size × distinct
	// streams per window, regardless of how long ingest ran.
	maxLive := 3 * pushers * len(base.TopPairs(0))
	if st.LivePairs > maxLive {
		t.Fatalf("live pairs %d exceed retention bound %d", st.LivePairs, maxLive)
	}
	// Nothing lost: the all-time view accounts for every push.
	all := srv.st.Query(0)
	if got := all.Profiles(); got != pushers*perP {
		t.Fatalf("all-time view has %d profiles, want %d", got, pushers*perP)
	}
}
