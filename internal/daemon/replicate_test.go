package daemon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/store"
	"repro/internal/wal"
)

// fakeClock is a shared, manually-advanced clock so breaker cooldowns
// elapse exactly when a test says so.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 8, 7, 10, 0, 0, 0, time.UTC)}
}
func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// replicaNode is one member of an in-process replicated cluster whose
// reachability tests flip with the down switch (the wrapper answers
// 503 for everything, which is what a drowning or partitioned node
// looks like to its peers' breakers). The reject switch instead 400s
// replication legs only — a healthy-looking follower that durably
// refuses the bytes (smaller MaxBody, decode bug).
type replicaNode struct {
	srv    *Server
	ht     *httptest.Server
	url    string
	down   atomic.Bool
	reject atomic.Bool
}

// newReplicaCluster boots n daemons with the given replication factor
// and a running replication engine (hints on disk when withHints).
// Background drain/repair loops are effectively disabled — tests call
// DrainHintsNow/RepairNow for determinism.
func newReplicaCluster(t *testing.T, n, rf int, withHints bool, clock *fakeClock) []*replicaNode {
	t.Helper()
	nodes := make([]*replicaNode, n)
	urls := make([]string, n)
	for i := range nodes {
		nd := &replicaNode{srv: NewServer(store.New(store.Config{}), Config{})}
		h := nd.srv.Handler()
		nd.ht = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if nd.down.Load() {
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusServiceUnavailable)
				return
			}
			if nd.reject.Load() && r.URL.Path == "/v1/replicate" {
				w.WriteHeader(http.StatusBadRequest)
				return
			}
			h.ServeHTTP(w, r)
		}))
		nd.url = nd.ht.URL
		nodes[i] = nd
		urls[i] = nd.url
	}
	t.Cleanup(func() {
		for _, nd := range nodes {
			nd.ht.Close()
		}
	})
	for _, nd := range nodes {
		cl, err := cluster.New(cluster.Config{
			Self: nd.url, Peers: urls,
			ReplicationFactor: rf,
			BreakerThreshold:  1,
			Now:               clock.Now,
			Logf:              t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		nd.srv.AttachCluster(cl)
		hintDir := ""
		if withHints {
			hintDir = t.TempDir()
		}
		if err := nd.srv.StartReplication(ReplicationConfig{
			HintDir:        hintDir,
			DrainInterval:  time.Hour,
			RepairInterval: -1,
			Logf:           t.Logf,
		}); err != nil {
			t.Fatal(err)
		}
		srv := nd.srv
		t.Cleanup(srv.StopReplication)
		nd.srv.SetState(StateServing)
	}
	return nodes
}

// pickOwned returns a pusher id whose owner is nodes[want].
func pickOwned(t *testing.T, nodes []*replicaNode, want int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		id := fmt.Sprintf("pusher-%04d", i)
		if nodes[0].srv.Cluster().Owner(id) == nodes[want].url {
			return id
		}
	}
	t.Fatal("no pusher id hashes to the wanted owner")
	return ""
}

// TestReplicaAckAfterReplicate: with RF=2 a keyed batch entering at a
// non-member is forwarded to the owner, applied on BOTH replica-set
// members before the ack, lives on exactly those two, and fleet
// queries count it once.
func TestReplicaAckAfterReplicate(t *testing.T) {
	nodes := newReplicaCluster(t, 3, 2, false, newFakeClock())
	prof := testProfile(t, 21)
	var body bytes.Buffer
	if err := prof.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}

	const id = "replicated-pusher"
	set := nodes[0].srv.Cluster().ReplicaSet(id)
	if len(set) != 2 {
		t.Fatalf("replica set %v, want 2 members", set)
	}
	owner, follower, entry := -1, -1, -1
	for i, nd := range nodes {
		switch nd.url {
		case set[0]:
			owner = i
		case set[1]:
			follower = i
		default:
			entry = i
		}
	}

	resp := keyedIngest(t, nodes[entry].url, body.Bytes(), id, 1)
	ack1, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replicated ingest: HTTP %d: %s", resp.StatusCode, ack1)
	}
	if nodes[owner].srv.batches.Load() != 1 {
		t.Fatal("owner did not coordinate the batch")
	}
	if nodes[follower].srv.replicatedIn.Load() != 1 {
		t.Fatal("follower did not apply the replication leg before the ack")
	}
	if got := nodes[follower].srv.st.Stats().Ingested; got != 1 {
		t.Fatalf("follower store holds %d profiles, want 1", got)
	}
	if len(nodes[entry].srv.st.Partitions()) != 0 {
		t.Fatal("non-member entry node kept a copy")
	}
	if os, fs := nodes[owner].srv.partitionSum(id), nodes[follower].srv.partitionSum(id); os != fs {
		t.Fatalf("replica checksums diverge after ack: %s vs %s", os, fs)
	}

	// Duplicate retry re-acks byte-identically and does not re-fanout.
	resp2 := keyedIngest(t, nodes[entry].url, body.Bytes(), id, 1)
	ack2, _ := io.ReadAll(resp2.Body)
	if resp2.Header.Get("X-Witch-Duplicate") != "window" || !bytes.Equal(ack1, ack2) {
		t.Fatalf("duplicate not re-acked identically: dup=%q", resp2.Header.Get("X-Witch-Duplicate"))
	}
	if got := nodes[follower].srv.st.Stats().Ingested; got != 1 {
		t.Fatalf("duplicate re-replicated: follower holds %d", got)
	}

	// Fleet queries from every node see the batch exactly once.
	for i, nd := range nodes {
		r, err := http.Get(nd.url + "/v1/top?tool=" + prof.Tool)
		if err != nil {
			t.Fatal(err)
		}
		var top struct {
			Waste float64 `json:"waste"`
		}
		if err := jsonDecode(r.Body, &top); err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK || r.Header.Get("X-Witch-Incomplete") != "" {
			t.Fatalf("node %d fleet query: HTTP %d incomplete=%q", i, r.StatusCode, r.Header.Get("X-Witch-Incomplete"))
		}
		if top.Waste != prof.Waste {
			t.Fatalf("node %d counted the replicated batch %v times the waste", i, top.Waste/prof.Waste)
		}
	}
}

// TestHintedHandoffAndDrain: a dead follower does not block acks — the
// coordinator journals durable hints instead — queries from survivors
// stay complete (down peers < RF cannot hide keyed data), and healing
// the follower drains the hints until both replicas are checksum-equal.
func TestHintedHandoffAndDrain(t *testing.T) {
	clock := newFakeClock()
	nodes := newReplicaCluster(t, 2, 2, true, clock)
	prof := testProfile(t, 22)
	var body bytes.Buffer
	if err := prof.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}
	id := pickOwned(t, nodes, 0)
	a, b := nodes[0], nodes[1]

	b.down.Store(true)
	for seq := uint64(1); seq <= 3; seq++ {
		if resp := keyedIngest(t, a.url, body.Bytes(), id, seq); resp.StatusCode != http.StatusOK {
			t.Fatalf("seq %d with follower down: HTTP %d, want hint-backed 200", seq, resp.StatusCode)
		}
	}
	rs := a.srv.ReplicationStats()
	if rs.HintsQueued != 3 || rs.HintsPending != 3 {
		t.Fatalf("hints not queued: %+v", rs)
	}
	if b.srv.st.Stats().Ingested != 0 {
		t.Fatal("down follower somehow received batches")
	}

	// One unreachable peer < RF: the survivor's answer is complete.
	r, err := http.Get(a.url + "/v1/top?tool=" + prof.Tool)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK || r.Header.Get("X-Witch-Incomplete") != "" {
		t.Fatalf("survivor query: HTTP %d incomplete=%q — one down peer under RF=2 must not degrade", r.StatusCode, r.Header.Get("X-Witch-Incomplete"))
	}

	// Heal, let the breaker cooldown lapse, drain.
	b.down.Store(false)
	clock.Advance(5 * time.Second)
	a.srv.DrainHintsNow(context.Background())
	rs = a.srv.ReplicationStats()
	if rs.HintsPending != 0 || rs.HintsReplayed != 3 {
		t.Fatalf("drain incomplete: %+v", rs)
	}
	if got := b.srv.replicatedIn.Load(); got != 3 {
		t.Fatalf("follower applied %d replayed hints, want 3", got)
	}
	if as, bs := a.srv.partitionSum(id), b.srv.partitionSum(id); as != bs {
		t.Fatalf("replicas diverge after drain: %s vs %s", as, bs)
	}
}

// TestPromotedFollowerReacksDuplicates is the torn-retry matrix for a
// dead owner: a forwarded retry of an already-replicated sequence must
// be re-acked by the promoted follower from its own dedup window — not
// re-merged — and fresh sequences keep flowing with the dead owner
// hinted.
func TestPromotedFollowerReacksDuplicates(t *testing.T) {
	clock := newFakeClock()
	nodes := newReplicaCluster(t, 2, 2, true, clock)
	prof := testProfile(t, 23)
	var body bytes.Buffer
	if err := prof.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}
	id := pickOwned(t, nodes, 0)
	a, b := nodes[0], nodes[1]

	// Healthy write: seq 1 lands on both members.
	if resp := keyedIngest(t, a.url, body.Bytes(), id, 1); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy ingest: HTTP %d", resp.StatusCode)
	}
	if b.srv.replicatedIn.Load() != 1 {
		t.Fatal("seq 1 not replicated to the follower")
	}

	// Owner dies. The first retry through the follower still forwards
	// (the breaker has no verdict yet) and relays the owner's 503 —
	// which opens the breaker.
	a.down.Store(true)
	if resp := keyedIngest(t, b.url, body.Bytes(), id, 1); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("first retry with dead owner: HTTP %d, want relayed 503", resp.StatusCode)
	}
	// The next retry finds the breaker open: the follower promotes
	// itself and re-acks from its replicated dedup window.
	resp := keyedIngest(t, b.url, body.Bytes(), id, 1)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Witch-Duplicate") != "window" {
		t.Fatalf("promoted follower retry: HTTP %d dup=%q, want 200 re-ack", resp.StatusCode, resp.Header.Get("X-Witch-Duplicate"))
	}
	if got := b.srv.st.Stats().Ingested; got != 1 {
		t.Fatalf("promoted follower re-merged the duplicate: %d profiles", got)
	}

	// Fresh sequences coordinate at the follower, hinting the dead owner.
	if resp := keyedIngest(t, b.url, body.Bytes(), id, 2); resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh seq at promoted follower: HTTP %d", resp.StatusCode)
	}
	if rs := b.srv.ReplicationStats(); rs.HintsPending != 1 {
		t.Fatalf("dead owner not hinted: %+v", rs)
	}

	// Owner returns; the hint drain completes the set.
	a.down.Store(false)
	clock.Advance(5 * time.Second)
	b.srv.DrainHintsNow(context.Background())
	if a.srv.replicatedIn.Load() != 1 {
		t.Fatal("returned owner did not receive the hinted batch")
	}
	if as, bs := a.srv.partitionSum(id), b.srv.partitionSum(id); as != bs {
		t.Fatalf("replicas diverge after owner return: %s vs %s", as, bs)
	}
}

// TestAntiEntropyRepair: a replica missing a partition entirely (blank
// replacement) pulls it from a peer and converges to checksum
// equality; at equal sequence but divergent state the owner's copy
// wins, counted as a conflict.
func TestAntiEntropyRepair(t *testing.T) {
	clock := newFakeClock()
	nodes := newReplicaCluster(t, 2, 2, false, clock)
	prof := testProfile(t, 24)
	ctx := context.Background()
	a, b := nodes[0], nodes[1]

	// Divergence: A holds a partition B has no trace of.
	const id = "repair-pusher"
	a.srv.st.IngestKeyedAt(id, prof, clock.Now())
	a.srv.ded.Mark(id, 1)

	b.srv.RepairNow(ctx)
	rs := b.srv.ReplicationStats()
	if rs.RepairRounds != 1 || rs.RepairPulls != 1 {
		t.Fatalf("repair did not pull the missing partition: %+v", rs)
	}
	if as, bs := a.srv.partitionSum(id), b.srv.partitionSum(id); as != bs {
		t.Fatalf("repair did not converge: %s vs %s", as, bs)
	}
	if max, _ := b.srv.ded.WindowOf(id); max != 1 {
		t.Fatalf("repair did not adopt the dedup window: max=%d", max)
	}
	// A second round finds nothing to do.
	b.srv.RepairNow(ctx)
	if rs := b.srv.ReplicationStats(); rs.RepairPulls != 1 {
		t.Fatalf("repair re-pulled a converged partition: %+v", rs)
	}

	// Conflict: same max sequence, different merged state. The node
	// later in the preference list adopts the owner's copy.
	const id2 = "conflict-pusher"
	prof2 := testProfile(t, 25)
	a.srv.st.IngestKeyedAt(id2, prof, clock.Now())
	a.srv.ded.Mark(id2, 1)
	b.srv.st.IngestKeyedAt(id2, prof2, clock.Now())
	b.srv.ded.Mark(id2, 1)
	ownNode, followNode := a, b
	if a.srv.Cluster().Owner(id2) != a.url {
		ownNode, followNode = b, a
	}
	wantSum := ownNode.srv.partitionSum(id2)

	followNode.srv.RepairNow(ctx)
	ownNode.srv.RepairNow(ctx)
	if got := followNode.srv.partitionSum(id2); got != wantSum {
		t.Fatalf("conflict did not resolve owner-wins: %s vs %s", got, wantSum)
	}
	if got := ownNode.srv.partitionSum(id2); got != wantSum {
		t.Fatal("owner adopted the follower's conflicting copy")
	}
	var conflicts uint64
	for _, nd := range nodes {
		conflicts += nd.srv.ReplicationStats().RepairConflicts
	}
	if conflicts != 1 {
		t.Fatalf("divergence not counted as a conflict: %d", conflicts)
	}
}

// TestRingMismatchRejected: an inter-node request stamped with a
// different ring hash is refused with 409 before any state changes,
// the rejection is counted, and the ring hash is visible in /v1/healthz
// and /metrics.
func TestRingMismatchRejected(t *testing.T) {
	servers, _, urls := newTestCluster(t, 2)
	prof := testProfile(t, 26)
	var body bytes.Buffer
	if err := prof.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}

	for _, path := range []string{"/v1/ingest", "/v1/replicate"} {
		req, err := http.NewRequest(http.MethodPost, urls[0]+path, bytes.NewReader(body.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set(cluster.RingHeader, "deadbeefdeadbeef")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusConflict {
			t.Fatalf("%s with skewed ring: HTTP %d, want 409", path, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodGet, urls[0]+"/v1/digest", nil)
	req.Header.Set(cluster.RingHeader, "deadbeefdeadbeef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("digest with skewed ring: HTTP %d, want 409", resp.StatusCode)
	}
	if got := servers[0].ringMismatches.Load(); got != 3 {
		t.Fatalf("ring mismatches counted %d, want 3", got)
	}
	if got := servers[0].st.Stats().Ingested; got != 0 {
		t.Fatal("a ring-mismatched batch was merged")
	}

	// The matching ring (and no ring at all — pushers) pass.
	if resp := keyedIngest(t, urls[0], body.Bytes(), "ring-pusher", 1); resp.StatusCode != http.StatusOK {
		t.Fatalf("ringless pusher ingest: HTTP %d", resp.StatusCode)
	}

	ring := servers[0].Cluster().RingHash()
	hr, err := http.Get(urls[0] + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(hr.Body)
	hr.Body.Close()
	if !strings.Contains(string(hb), ring) {
		t.Fatalf("/v1/healthz does not expose the ring hash %s:\n%s", ring, hb)
	}
	mr, err := http.Get(urls[0] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mr.Body)
	mr.Body.Close()
	if !strings.Contains(string(mb), "witchd_ring_mismatches_total 3") {
		t.Fatalf("metrics missing ring mismatch counter:\n%s", mb)
	}
}

// TestMetricsSortedStableOrder: /metrics is valid Prometheus text
// exposition — every family led by # HELP and # TYPE, families in
// sorted name order, every sample belonging to the family above it —
// and a second scrape with unchanged counters is byte-identical, so
// scrapes diff textually and dashboards never see keys move.
func TestMetricsSortedStableOrder(t *testing.T) {
	nodes := newReplicaCluster(t, 2, 2, false, newFakeClock())
	scrape := func() (string, string) {
		r, err := http.Get(nodes[0].url + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer r.Body.Close()
		text, _ := io.ReadAll(r.Body)
		return string(text), r.Header.Get("Content-Type")
	}
	text, ctype := scrape()
	if want := "text/plain; version=0.0.4; charset=utf-8"; ctype != want {
		t.Fatalf("content type %q, want %q", ctype, want)
	}
	lines := strings.Split(strings.TrimSpace(text), "\n")
	if len(lines) < 40 {
		t.Fatalf("suspiciously few metrics lines: %d", len(lines))
	}
	// Walk the exposition: HELP then TYPE then >=1 samples per family,
	// family names strictly increasing.
	prevFam := ""
	for i := 0; i < len(lines); {
		if !strings.HasPrefix(lines[i], "# HELP ") {
			t.Fatalf("line %d: family must open with # HELP, got %q", i, lines[i])
		}
		fam := strings.Fields(lines[i])[2]
		if fam <= prevFam {
			t.Fatalf("family %q not after %q: families must be sorted", fam, prevFam)
		}
		prevFam = fam
		i++
		if i >= len(lines) || !strings.HasPrefix(lines[i], "# TYPE "+fam+" ") {
			t.Fatalf("family %q missing # TYPE after # HELP", fam)
		}
		i++
		samples := 0
		for i < len(lines) && !strings.HasPrefix(lines[i], "# ") {
			name := lines[i]
			if j := strings.IndexAny(name, "{ "); j >= 0 {
				name = name[:j]
			}
			// Histogram families also emit name_bucket/_sum/_count.
			if name != fam && !strings.HasPrefix(name, fam+"_") {
				t.Fatalf("sample %q under family %q", lines[i], fam)
			}
			samples++
			i++
		}
		if samples == 0 {
			t.Fatalf("family %q has metadata but no samples", fam)
		}
	}
	for _, want := range []string{
		"witchd_cluster_replication_factor 2",
		"witchd_hints_pending 0",
		"witchd_repair_rounds_total 0",
		"witchd_ingest_replicated_in_total 0",
		`witchd_build_info{go="`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
	again, _ := scrape()
	if again != text {
		t.Fatalf("two quiescent scrapes differ:\n--- first\n%s\n--- second\n%s", text, again)
	}
}

// TestDedupTombstoneBounds: the tombstone table is bounded by the
// pusher cap no matter how many pushers churn through — eviction GC
// must not let dead pushers' residue grow without bound.
func TestDedupTombstoneBounds(t *testing.T) {
	d := NewDedup(64, 4)
	apply := func(commit func()) error { commit(); return nil }
	for p := 0; p < 100; p++ {
		d.Process(fmt.Sprintf("churner-%d", p), 1, apply)
	}
	st := d.Stats()
	if st.Pushers > 4 {
		t.Fatalf("live windows %d exceed the cap 4", st.Pushers)
	}
	if st.Tombstones > 4 {
		t.Fatalf("tombstones %d grew past the cap 4 (GC bound broken)", st.Tombstones)
	}
	if st.EvictedPushers < 90 {
		t.Fatalf("churn did not evict: %+v", st)
	}
}

// jsonDecode decodes JSON from r into v (helper kept tiny so tests
// read linearly).
func jsonDecode(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	return dec.Decode(v)
}

// TestRepairPrefersFullerCopyAtEqualMax: a node that restarted blank
// and caught only mid-sequence hint replays can tie the survivor's max
// sequence while holding a fraction of the batches. Repair must move
// the fuller copy toward the holey one — even when the holey node is
// the partition's owner — never the reverse.
func TestRepairPrefersFullerCopyAtEqualMax(t *testing.T) {
	clock := newFakeClock()
	nodes := newReplicaCluster(t, 2, 2, false, clock)
	prof := testProfile(t, 27)
	ctx := context.Background()

	// The owner holds the incomplete copy: one merge at the shared
	// frontier seq 3. The follower holds all three.
	const id = "holey-pusher"
	holey, full := nodes[0], nodes[1]
	if nodes[0].srv.Cluster().Owner(id) != nodes[0].url {
		holey, full = nodes[1], nodes[0]
	}
	holey.srv.st.IngestKeyedAt(id, prof, clock.Now())
	holey.srv.ded.Mark(id, 3)
	for seq := uint64(1); seq <= 3; seq++ {
		full.srv.st.IngestKeyedAt(id, prof, clock.Now())
		full.srv.ded.Mark(id, seq)
	}
	wantSum := full.srv.partitionSum(id)

	// The full follower must not adopt the owner's subset...
	full.srv.RepairNow(ctx)
	if got := full.srv.partitionSum(id); got != wantSum {
		t.Fatalf("full copy adopted the owner's holey subset: %s vs %s", got, wantSum)
	}
	if rs := full.srv.ReplicationStats(); rs.RepairPulls != 0 {
		t.Fatalf("follower pulled despite holding the fuller copy: %+v", rs)
	}
	// ...and the holey owner must pull the fuller copy.
	holey.srv.RepairNow(ctx)
	if rs := holey.srv.ReplicationStats(); rs.RepairPulls != 1 {
		t.Fatalf("owner did not pull the fuller copy: %+v", rs)
	}
	if got := holey.srv.partitionSum(id); got != wantSum {
		t.Fatalf("owner did not converge on the fuller copy: %s vs %s", got, wantSum)
	}
}

// TestAdoptIngestAvoidsDeadlock is the ABBA regression for repair
// adoption vs ingest on a persistent node. Ingest holds the pusher's
// dedup window lock across its whole apply — including the (slow)
// replication fanout — before taking the journal's apply read lock;
// adoption must therefore take the window lock BEFORE the apply write
// lock. The old order (Quiesce first, window lock inside) deadlocked
// permanently against any in-flight batch for the same pusher, with
// the apply write lock held and every other ingest wedged behind it.
func TestAdoptIngestAvoidsDeadlock(t *testing.T) {
	clock := newFakeClock()
	st := store.New(store.Config{})
	srv := NewServer(st, Config{Now: clock.Now})
	pers, err := OpenPersistence(t.TempDir(), st, srv.Dedup(), wal.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(pers.Abandon)
	srv.AttachPersistence(pers)
	srv.SetState(StateServing)

	prof := testProfile(t, 31)
	const id = "deadlock-pusher"
	donor := store.New(store.Config{})
	donor.IngestKeyedAt(id, prof, clock.Now())
	pt := &cluster.PartitionTransfer{Image: donor.PartitionImage(id), DedupMax: 5}

	started := make(chan struct{})
	unblock := make(chan struct{})
	ingDone := make(chan error, 1)
	go func() {
		_, _, perr := srv.ded.Process(id, 1, func(commit func()) error {
			close(started) // window lock held from here on
			<-unblock      // the in-flight stretch: the fanout RPC in production
			return pers.applyBatch(id, 1, true, []byte("batch"), func(now time.Time) {
				st.IngestKeyedAt(id, prof, now)
			}, clock.Now(), commit)
		})
		ingDone <- perr
	}()
	<-started

	adoptDone := make(chan struct{})
	go func() {
		srv.adoptPartition(id, pt)
		close(adoptDone)
	}()
	// Give adoption time to reach whatever it blocks on, then release
	// the in-flight batch. Under the broken lock order neither goroutine
	// can ever finish.
	time.Sleep(50 * time.Millisecond)
	close(unblock)

	timeout := time.After(10 * time.Second)
	select {
	case perr := <-ingDone:
		if perr != nil {
			t.Fatalf("in-flight ingest failed: %v", perr)
		}
	case <-timeout:
		t.Fatal("ingest wedged against adoption: ABBA deadlock")
	}
	select {
	case <-adoptDone:
	case <-timeout:
		t.Fatal("adoption wedged against ingest: ABBA deadlock")
	}
	if max, _ := srv.ded.WindowOf(id); max != 5 {
		t.Fatalf("adopted dedup window max %d, want 5", max)
	}
}

// TestMemoryAdoptBarrier: a memory-only node (no persistence, so no
// Quiesce) must still exclude an in-flight batch from a partition
// swap — the old code called ReplacePartition unguarded, so a
// concurrent ingest could merge into the aggregator just as it was
// deleted, losing an acked batch while its dedup mark survived.
func TestMemoryAdoptBarrier(t *testing.T) {
	clock := newFakeClock()
	st := store.New(store.Config{})
	srv := NewServer(st, Config{Now: clock.Now})
	srv.SetState(StateServing)

	prof := testProfile(t, 32)
	const id = "mem-adopt-pusher"
	donor := store.New(store.Config{})
	donor.IngestKeyedAt(id, prof, clock.Now())
	donorSrv := NewServer(donor, Config{Now: clock.Now})
	wantSum := donorSrv.partitionSum(id)
	pt := &cluster.PartitionTransfer{Image: donor.PartitionImage(id), DedupMax: 5}

	started := make(chan struct{})
	unblock := make(chan struct{})
	ingDone := make(chan error, 1)
	go func() {
		_, _, perr := srv.ded.Process(id, 1, func(commit func()) error {
			close(started)
			<-unblock
			// The memory-only apply path, as handleIngest runs it.
			srv.memMu.RLock()
			defer srv.memMu.RUnlock()
			st.IngestKeyedAt(id, prof, clock.Now())
			commit()
			return nil
		})
		ingDone <- perr
	}()
	<-started

	adoptDone := make(chan struct{})
	go func() {
		srv.adoptPartition(id, pt)
		close(adoptDone)
	}()
	select {
	case <-adoptDone:
		t.Fatal("adoption completed while a batch for the same pusher was mid-apply")
	case <-time.After(50 * time.Millisecond):
	}
	close(unblock)
	if perr := <-ingDone; perr != nil {
		t.Fatalf("in-flight ingest failed: %v", perr)
	}
	select {
	case <-adoptDone:
	case <-time.After(10 * time.Second):
		t.Fatal("adoption never completed after the batch applied")
	}
	// Adoption ran strictly after the in-flight merge: the adopted
	// image replaces it wholesale, and the window adopts the higher max.
	if got := srv.partitionSum(id); got != wantSum {
		t.Fatalf("partition %s after adopt, want the adopted image %s", got, wantSum)
	}
	if max, _ := srv.ded.WindowOf(id); max != 5 {
		t.Fatalf("adopted dedup window max %d, want 5", max)
	}
}

// TestQueryPrefersHintHolder: while hints are undrained, a hinted
// batch's RF "copies" both live on the hinter. A healed destination
// with the better preference rank must NOT be chosen as the pusher's
// query holder over the hinter — the hinter's copy is a strict
// superset — and the answer stays complete (one hinter holds
// everything).
func TestQueryPrefersHintHolder(t *testing.T) {
	clock := newFakeClock()
	nodes := newReplicaCluster(t, 2, 2, true, clock)
	prof := testProfile(t, 33)
	var body bytes.Buffer
	if err := prof.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}
	id := pickOwned(t, nodes, 0)
	o, f := nodes[0], nodes[1]

	// seq 1 lands on both. Then the owner dies and the follower
	// coordinates seqs 2 and 3 with hints queued for the owner.
	if resp := keyedIngest(t, o.url, body.Bytes(), id, 1); resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy ingest: HTTP %d", resp.StatusCode)
	}
	o.down.Store(true)
	if resp := keyedIngest(t, f.url, body.Bytes(), id, 2); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("first attempt should relay the dead owner's 503, got %d", resp.StatusCode)
	}
	for seq := uint64(2); seq <= 3; seq++ {
		if resp := keyedIngest(t, f.url, body.Bytes(), id, seq); resp.StatusCode != http.StatusOK {
			t.Fatalf("promoted seq %d: HTTP %d", seq, resp.StatusCode)
		}
	}
	// The owner returns, breakers cool, but the hints have NOT drained:
	// the owner's partition is stale (seq 1 only), the follower holds
	// seqs 1-3 plus the owner's hints.
	o.down.Store(false)
	clock.Advance(20 * time.Second)
	if rs := f.srv.ReplicationStats(); rs.HintsPending != 2 {
		t.Fatalf("test premise broken: %d hints pending, want 2", rs.HintsPending)
	}

	want := fetchProfile(t, f.url+"/v1/profile?tool="+prof.Tool+"&scope=local")
	for name, nd := range map[string]*replicaNode{"owner": o, "follower": f} {
		r, err := http.Get(nd.url + "/v1/profile?tool=" + prof.Tool)
		if err != nil {
			t.Fatal(err)
		}
		got, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("%s fleet query: HTTP %d", name, r.StatusCode)
		}
		if inc := r.Header.Get("X-Witch-Incomplete"); inc != "" {
			t.Fatalf("%s fleet query marked incomplete (%q): a single hinter holds everything", name, inc)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s fleet query chose the stale healed owner over the hint holder:\ngot  %s\nwant %s", name, got, want)
		}
	}
}

// fetchProfile GETs a profile endpoint and returns the body.
func fetchProfile(t *testing.T, url string) []byte {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	b, _ := io.ReadAll(r.Body)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, r.StatusCode, b)
	}
	return b
}

// TestQueryDivergedHintersMarkedIncomplete: when BOTH replicas hold
// undrained hints for the same pusher (each coordinated while the
// other looked down), neither copy subsumes the other, so the query
// must stop claiming completeness and name both peers.
func TestQueryDivergedHintersMarkedIncomplete(t *testing.T) {
	clock := newFakeClock()
	nodes := newReplicaCluster(t, 2, 2, true, clock)
	prof := testProfile(t, 34)
	var body bytes.Buffer
	if err := prof.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}
	id := pickOwned(t, nodes, 0)
	o, f := nodes[0], nodes[1]

	// Owner down: the follower coordinates seq 1, hinting the owner.
	o.down.Store(true)
	if resp := keyedIngest(t, f.url, body.Bytes(), id, 1); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("first attempt should relay the dead owner's 503, got %d", resp.StatusCode)
	}
	if resp := keyedIngest(t, f.url, body.Bytes(), id, 1); resp.StatusCode != http.StatusOK {
		t.Fatalf("promoted seq 1: HTTP %d", resp.StatusCode)
	}
	// Flip: owner back, follower down; the owner coordinates seq 2,
	// hinting the follower. Now each holds a batch the other lacks.
	o.down.Store(false)
	f.down.Store(true)
	clock.Advance(20 * time.Second)
	if resp := keyedIngest(t, o.url, body.Bytes(), id, 2); resp.StatusCode != http.StatusOK {
		t.Fatalf("owner seq 2 with follower down: HTTP %d", resp.StatusCode)
	}
	f.down.Store(false)
	clock.Advance(20 * time.Second)

	urls := []string{o.url, f.url}
	sort.Strings(urls)
	wantInc := strings.Join(urls, ",")
	r, err := http.Get(o.url + "/v1/profile?tool=" + prof.Tool)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if got := r.Header.Get("X-Witch-Incomplete"); got != wantInc {
		t.Fatalf("diverged hinters: X-Witch-Incomplete=%q, want %q", got, wantInc)
	}
	// Draining both sides restores a complete, converged answer.
	o.srv.DrainHintsNow(context.Background())
	f.srv.DrainHintsNow(context.Background())
	r2, err := http.Get(o.url + "/v1/profile?tool=" + prof.Tool)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, r2.Body)
	r2.Body.Close()
	if got := r2.Header.Get("X-Witch-Incomplete"); got != "" {
		t.Fatalf("still incomplete after both drains: %q", got)
	}
	if os, fs := o.srv.partitionSum(id), f.srv.partitionSum(id); os != fs {
		t.Fatalf("replicas did not converge after drains: %s vs %s", os, fs)
	}
}

// TestFanoutPermanentRejectionNotHinted: a follower that durably 400s
// a replication leg must not get that batch hinted — the hint could
// never land and would pin the peer's queue head forever. The batch
// still acks on the coordinator's durability and the rejection is
// counted.
func TestFanoutPermanentRejectionNotHinted(t *testing.T) {
	clock := newFakeClock()
	nodes := newReplicaCluster(t, 2, 2, true, clock)
	prof := testProfile(t, 35)
	var body bytes.Buffer
	if err := prof.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}
	id := pickOwned(t, nodes, 0)
	o, f := nodes[0], nodes[1]

	f.reject.Store(true)
	if resp := keyedIngest(t, o.url, body.Bytes(), id, 1); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest with rejecting follower: HTTP %d, want 200 on local durability", resp.StatusCode)
	}
	rs := o.srv.ReplicationStats()
	if rs.ReplicateRejected != 1 {
		t.Fatalf("rejection not counted: %+v", rs)
	}
	if rs.HintsQueued != 0 || rs.HintsPending != 0 {
		t.Fatalf("a durably rejected leg was hinted: %+v", rs)
	}
	if f.srv.st.Stats().Ingested != 0 {
		t.Fatal("rejecting follower somehow merged the batch")
	}
}

// TestDrainSkipsPermanentlyRejectedHints: a hint the healed peer
// durably 400s is retired (counted) instead of wedging the queue —
// and hints queued behind it still flow once the peer behaves.
func TestDrainSkipsPermanentlyRejectedHints(t *testing.T) {
	clock := newFakeClock()
	nodes := newReplicaCluster(t, 2, 2, true, clock)
	prof := testProfile(t, 36)
	var body bytes.Buffer
	if err := prof.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}
	id := pickOwned(t, nodes, 0)
	o, f := nodes[0], nodes[1]
	ctx := context.Background()

	// Two hints queue while the follower is down.
	f.down.Store(true)
	for seq := uint64(1); seq <= 2; seq++ {
		if resp := keyedIngest(t, o.url, body.Bytes(), id, seq); resp.StatusCode != http.StatusOK {
			t.Fatalf("seq %d with follower down: HTTP %d", seq, resp.StatusCode)
		}
	}
	if rs := o.srv.ReplicationStats(); rs.HintsPending != 2 {
		t.Fatalf("hints not queued: %+v", rs)
	}

	// The follower heals into a rejecting state. Each 400 also opens
	// the breaker (threshold 1), so clear the cooldown between sweeps;
	// the point is that the queue ADVANCES past each rejected hint
	// instead of wedging on the first one forever.
	f.down.Store(false)
	f.reject.Store(true)
	clock.Advance(20 * time.Second)
	o.srv.DrainHintsNow(ctx)
	clock.Advance(20 * time.Second)
	o.srv.DrainHintsNow(ctx)
	rs := o.srv.ReplicationStats()
	if rs.HintsPending != 0 || rs.HintsRejected != 2 || rs.HintsReplayed != 0 {
		t.Fatalf("rejected hints did not retire: %+v", rs)
	}
	if f.srv.st.Stats().Ingested != 0 {
		t.Fatal("rejecting follower somehow merged a hint")
	}

	// The queue is not poisoned: a later hint drains normally once the
	// follower behaves.
	f.reject.Store(false)
	if resp := keyedIngest(t, o.url, body.Bytes(), id, 3); resp.StatusCode != http.StatusOK {
		t.Fatalf("seq 3: HTTP %d", resp.StatusCode)
	}
	clock.Advance(20 * time.Second)
	o.srv.DrainHintsNow(ctx)
	rs = o.srv.ReplicationStats()
	if rs.HintsPending != 0 || rs.HintsReplayed != 1 {
		t.Fatalf("queue poisoned after rejections: %+v", rs)
	}
	if got := f.srv.replicatedIn.Load(); got != 1 {
		t.Fatalf("follower applied %d replayed hints, want 1", got)
	}
}
