package daemon

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"
)

// Dedup is witchd's half of exactly-once ingest: a bounded per-pusher
// window over the (pusher ID, sequence) idempotency keys that batches
// carry. A batch whose key was already processed is re-acked without
// being journaled or merged — safe precisely because the original was
// journaled before its ack, so the data is durable whether or not that
// ack survived the network.
//
// Window semantics, per pusher (window width W):
//
//   - seq > max: never seen — process and mark, advancing max.
//   - max-W < seq <= max, bit set: duplicate — re-ack.
//   - max-W < seq <= max, bit clear: out-of-order first arrival —
//     process and mark.
//   - seq <= max-W: stale, beyond the window's memory. Treated as a
//     duplicate (counted separately): re-acking a possibly-new batch
//     loses at most that batch, while merging a possibly-seen batch
//     corrupts the aggregate forever. Pushers deliver roughly in
//     order (the spool replays oldest-first), so a W-deep reordering
//     never happens in practice; W is surfaced in /healthz so an
//     operator can see the bound they are trusting.
//
// Marking happens only after the batch is journaled and merged — a
// failed journal append must leave the key unseen so the retry is
// processed, not re-acked into the void. To keep check-then-mark
// atomic, Process holds the pusher's entry lock across the batch
// apply; batches from different pushers proceed in parallel, batches
// from one pusher serialize (which the wire already guarantees: a
// pusher has one sender).
//
// The pusher table itself is bounded: beyond MaxPushers the
// least-recently-active pusher's window is evicted (counted). Two
// guards keep eviction from un-acking history. A window with a batch
// mid-apply is pinned (refs) and never a victim — evicting it would
// orphan the commit mark and let a retried duplicate double-merge.
// And an evicted window leaves a tombstone carrying its high-water
// sequence: if that pusher comes back (a spool replay after a long
// partition, a forwarded re-ingest), its fresh window resumes at the
// tombstone's max with every in-window bit marked seen, so an old
// sequence re-acks instead of re-merging. The tombstone table is
// bounded at MaxPushers as well; only beyond 2×MaxPushers distinct
// pushers does memory of an acked key truly expire.
type Dedup struct {
	mu      sync.Mutex
	window  uint64
	maxP    int
	pushers map[string]*pusherWindow
	tombs   map[string]tombstone
	tick    uint64

	dups    uint64 // duplicate re-acks inside the window
	stale   uint64 // conservative re-acks below the window
	evicted uint64 // pusher windows dropped by the table bound
}

// pusherWindow is one pusher's dedup state. mu serializes that
// pusher's batches through check→apply→mark.
type pusherWindow struct {
	mu   sync.Mutex
	max  uint64
	bits []uint64
	last uint64 // LRU tick, guarded by Dedup.mu
	refs int    // in-flight batches pinning this window, guarded by Dedup.mu
}

// tombstone is the memory an evicted window leaves behind: enough to
// re-ack, not enough to re-order (8 bytes vs the window's 512).
type tombstone struct {
	max  uint64
	tick uint64
}

// DefaultDedupWindow is the per-pusher window width in sequences.
const DefaultDedupWindow = 4096

// DefaultDedupMaxPushers bounds the pusher table.
const DefaultDedupMaxPushers = 4096

// NewDedup builds a dedup layer; zero arguments take the defaults.
func NewDedup(window uint64, maxPushers int) *Dedup {
	if window == 0 {
		window = DefaultDedupWindow
	}
	// Round up to a multiple of 64 so the bitmap ring has no partial
	// word to special-case.
	window = (window + 63) &^ 63
	if maxPushers <= 0 {
		maxPushers = DefaultDedupMaxPushers
	}
	return &Dedup{
		window:  window,
		maxP:    maxPushers,
		pushers: make(map[string]*pusherWindow),
		tombs:   make(map[string]tombstone),
	}
}

// Window reports the per-pusher window width.
func (d *Dedup) Window() uint64 { return d.window }

// DedupStats is the /healthz view of the dedup layer.
type DedupStats struct {
	Window         uint64 `json:"window"`
	Pushers        int    `json:"pushers"`
	MaxPushers     int    `json:"max_pushers"`
	Tombstones     int    `json:"tombstones"`
	Duplicates     uint64 `json:"duplicates_reacked"`
	Stale          uint64 `json:"stale_reacked"`
	EvictedPushers uint64 `json:"evicted_pushers"`
}

// Stats snapshots the counters.
func (d *Dedup) Stats() DedupStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DedupStats{
		Window:         d.window,
		Pushers:        len(d.pushers),
		MaxPushers:     d.maxP,
		Tombstones:     len(d.tombs),
		Duplicates:     d.dups,
		Stale:          d.stale,
		EvictedPushers: d.evicted,
	}
}

// entry returns (creating if needed) the pusher's window, pinned
// against eviction, with its LRU stamp updated and the table bound
// enforced. Every entry must be paired with a release.
func (d *Dedup) entry(id string) *pusherWindow {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.tick++
	w := d.pushers[id]
	if w == nil {
		if len(d.pushers) >= d.maxP {
			d.evictColdestLocked()
		}
		w = &pusherWindow{bits: make([]uint64, d.window/64)}
		if t, ok := d.tombs[id]; ok {
			// An evicted pusher came back. Resume at its tombstone's
			// high-water mark with the whole window marked seen: a replayed
			// old sequence re-acks (bit set → duplicate; below the window →
			// stale) instead of merging a second time, and anything genuinely
			// new is above max and processes normally.
			w.max = t.max
			for i := range w.bits {
				w.bits[i] = ^uint64(0)
			}
			delete(d.tombs, id)
		}
		d.pushers[id] = w
	}
	w.refs++
	w.last = d.tick
	return w
}

// release unpins a window returned by entry.
func (d *Dedup) release(w *pusherWindow) {
	d.mu.Lock()
	w.refs--
	d.mu.Unlock()
}

// evictColdestLocked drops the least-recently-active unpinned window,
// leaving its tombstone behind. Pinned windows have a batch somewhere
// in check→journal→merge→mark and are never victims (the table
// overshoots its bound by at most the ingest concurrency limit).
// Caller holds d.mu.
func (d *Dedup) evictColdestLocked() {
	var coldID string
	var coldW *pusherWindow
	for pid, pw := range d.pushers {
		if pw.refs > 0 {
			continue
		}
		if coldW == nil || pw.last < coldW.last {
			coldID, coldW = pid, pw
		}
	}
	if coldW == nil {
		return
	}
	delete(d.pushers, coldID)
	d.evicted++
	if len(d.tombs) >= d.maxP {
		// The tombstone table is bounded too: beyond it the oldest
		// eviction's memory expires entirely, which restores the documented
		// pre-tombstone bound (thousands of distinct pushers) rather than
		// growing without limit.
		var oldID string
		var old tombstone
		for tid, t := range d.tombs {
			if oldID == "" || t.tick < old.tick {
				oldID, old = tid, t
			}
		}
		delete(d.tombs, oldID)
	}
	d.tombs[coldID] = tombstone{max: coldW.max, tick: d.tick}
}

// Process runs apply under the pusher's dedup lock: if (id, seq) was
// already processed it reports dup=true without calling apply; else it
// calls apply and the key becomes seen only on success. Any apply error
// leaves the key unseen (the retry will be processed).
//
// apply receives a commit callback and MUST invoke it exactly once on
// its success path, from inside whatever exclusion barrier makes the
// batch durable (witchd calls it while still holding the persistence
// apply lock). commit is what marks the key seen; deferring the mark to
// after apply returned would let a snapshot cut the journal between the
// durable batch and its mark, and a crash would then re-merge the
// retry. An apply that errors must not call commit.
func (d *Dedup) Process(id string, seq uint64, apply func(commit func()) error) (dup bool, stale bool, err error) {
	w := d.entry(id)
	defer d.release(w)
	w.mu.Lock()
	defer w.mu.Unlock()

	switch {
	case seq > w.max:
		// fresh
	case w.max >= d.window && seq <= w.max-d.window:
		d.mu.Lock()
		d.stale++
		d.mu.Unlock()
		return true, true, nil
	case w.bits[(seq/64)%(d.window/64)]&(1<<(seq%64)) != 0:
		d.mu.Lock()
		d.dups++
		d.mu.Unlock()
		return true, false, nil
	}
	if err := apply(func() { d.mark(w, seq) }); err != nil {
		return false, false, err
	}
	return false, false, nil
}

// Mark records a key as seen without an apply — the journal-replay
// path, where the batch is already durable and merged. Caller
// guarantees no concurrent traffic (recovery runs before serving).
func (d *Dedup) Mark(id string, seq uint64) {
	w := d.entry(id)
	w.mu.Lock()
	d.mark(w, seq)
	w.mu.Unlock()
	d.release(w)
}

// mark sets seq's bit, clearing the bits of any skipped-over range so
// a sequence jump cannot leave ghost marks from a lap ago. Caller
// holds w.mu.
func (d *Dedup) mark(w *pusherWindow, seq uint64) {
	if seq > w.max {
		if seq-w.max >= d.window {
			for i := range w.bits {
				w.bits[i] = 0
			}
		} else {
			for s := w.max + 1; s < seq; s++ {
				w.bits[(s/64)%(d.window/64)] &^= 1 << (s % 64)
			}
		}
		w.max = seq
	}
	w.bits[(seq/64)%(d.window/64)] |= 1 << (seq % 64)
}

// MaxSeqs reports every pusher's acked high-water sequence — live
// windows and tombstones alike — the maxSeq half of the anti-entropy
// digest. Window pointers are collected under the table lock and each
// window's max read under its own lock (never the reverse order:
// Process takes the table lock while holding a window lock).
func (d *Dedup) MaxSeqs() map[string]uint64 {
	d.mu.Lock()
	out := make(map[string]uint64, len(d.pushers)+len(d.tombs))
	ws := make(map[string]*pusherWindow, len(d.pushers))
	for id, w := range d.pushers {
		ws[id] = w
	}
	for id, t := range d.tombs {
		out[id] = t.max
	}
	d.mu.Unlock()
	for id, w := range ws {
		w.mu.Lock()
		out[id] = w.max
		w.mu.Unlock()
	}
	return out
}

// WindowOf snapshots one pusher's window for a partition transfer:
// its max and bitmap, or a tombstone's max with nil bits (the receiver
// must treat nil as all-seen — the tombstone forgot the bit detail but
// remembers everything up to max was judged).
func (d *Dedup) WindowOf(id string) (max uint64, bits []uint64) {
	d.mu.Lock()
	w := d.pushers[id]
	if w == nil {
		t, ok := d.tombs[id]
		d.mu.Unlock()
		if !ok {
			return 0, nil
		}
		return t.max, nil
	}
	d.mu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.max, append([]uint64(nil), w.bits...)
}

// Adopt replaces one pusher's window with a transferred peer window —
// the dedup half of anti-entropy adoption, paired with the store's
// ReplacePartition so the data and the judgment that guards it move
// together. Adopt locks the pusher's window FIRST and only then runs
// barrier — the caller's apply-exclusion section (Persistence.Quiesce,
// or the memory-only equivalent) — handing it an install func that
// must be invoked exactly once, inside the barrier, alongside the
// partition swap. The order is load-bearing: ingest holds this same
// window lock across its journal apply (Process → applyBatch →
// applyMu.RLock), so adoption must also take w.mu before the apply
// barrier — taking the barrier first deadlocks permanently against an
// in-flight batch for the same pusher, with the apply write lock held
// and every other ingest wedged behind it.
//
// Install semantics: a transfer whose max is behind the local window
// (the local node learned more since the digest) keeps the local max
// and conservatively marks everything seen; nil or width-mismatched
// bits mark all seen likewise — re-acking an unseen batch loses at
// most that batch, merging a seen one corrupts the aggregate forever.
func (d *Dedup) Adopt(id string, max uint64, bits []uint64, barrier func(install func())) {
	w := d.entry(id)
	w.mu.Lock()
	barrier(func() {
		allSeen := func() {
			for i := range w.bits {
				w.bits[i] = ^uint64(0)
			}
		}
		switch {
		case max < w.max:
			allSeen()
		case uint64(len(bits))*64 == d.window:
			w.max = max
			copy(w.bits, bits)
		default:
			w.max = max
			allSeen()
		}
	})
	w.mu.Unlock()
	d.release(w)
}

// dedupImage is the gob codec for snapshot persistence. Tombs is
// absent from pre-tombstone snapshots and decodes as nil, which Load
// treats as empty.
type dedupImage struct {
	Window  uint64
	Dups    uint64
	Stale   uint64
	Evicted uint64
	Pushers map[string]pusherImage
	Tombs   map[string]uint64
}

type pusherImage struct {
	Max  uint64
	Bits []uint64
}

// State serializes the dedup windows for the store snapshot's extra
// blob. Per-pusher locks are not taken: every window WRITE happens
// inside the persistence apply barrier (Process's commit callback runs
// under the apply read-lock), and State is only called with the apply
// write-lock held — so the windows are frozen for the duration, and
// concurrent pre-apply duplicate checks are read-only.
func (d *Dedup) State() ([]byte, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	img := dedupImage{
		Window:  d.window,
		Dups:    d.dups,
		Stale:   d.stale,
		Evicted: d.evicted,
		Pushers: make(map[string]pusherImage, len(d.pushers)),
	}
	for id, w := range d.pushers {
		img.Pushers[id] = pusherImage{Max: w.max, Bits: append([]uint64(nil), w.bits...)}
	}
	img.Tombs = make(map[string]uint64, len(d.tombs))
	for id, t := range d.tombs {
		img.Tombs[id] = t.max
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&img); err != nil {
		return nil, fmt.Errorf("daemon: encoding dedup state: %w", err)
	}
	return buf.Bytes(), nil
}

// Load replaces the dedup state from a snapshot blob. A window-width
// mismatch keeps each pusher's max but marks its whole window seen —
// the conservative direction: a late out-of-order batch below max is
// re-acked rather than risking a double-merge with marks whose ring
// positions no longer line up.
func (d *Dedup) Load(blob []byte) error {
	if len(blob) == 0 {
		return nil
	}
	var img dedupImage
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&img); err != nil {
		return fmt.Errorf("daemon: decoding dedup state: %w", err)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dups, d.stale, d.evicted = img.Dups, img.Stale, img.Evicted
	d.pushers = make(map[string]*pusherWindow, len(img.Pushers))
	d.tombs = make(map[string]tombstone, len(img.Tombs))
	for id, max := range img.Tombs {
		d.tick++
		d.tombs[id] = tombstone{max: max, tick: d.tick}
	}
	words := d.window / 64
	for id, pi := range img.Pushers {
		d.tick++
		w := &pusherWindow{max: pi.Max, bits: make([]uint64, words), last: d.tick}
		if img.Window == d.window && uint64(len(pi.Bits)) == words {
			copy(w.bits, pi.Bits)
		} else {
			for i := range w.bits {
				w.bits[i] = ^uint64(0)
			}
		}
		d.pushers[id] = w
	}
	return nil
}
