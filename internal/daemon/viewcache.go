// Rendered-response cache for /v1/top and /v1/profile.
//
// With the store memoized and the scatter shipping deltas, the last
// O(total state) cost on the query path is materializing the merged
// view and rendering it to JSON. Both depend only on (endpoint,
// parameters, view fingerprint), where the fingerprint names every
// input the view folds: the local store's version for the window, the
// local pending-hint set (a hint drain changes holder choice without
// any store mutation), and each peer leg's reconstructed-view revision
// or its down marker. Equal fingerprints mean provably identical
// bodies, so serving the cached bytes is exact, not approximate — the
// same epoch-compare-never-TTL rule the store caches follow.
//
// Only 200 bodies are cached; errors and empty-view 404s stay cheap to
// rebuild and must not mask data arriving. A fleet query still pays
// its (delta) scatter to learn the peers' revisions — what it skips is
// the merge and the render.
package daemon

import (
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
)

// maxCachedResponses bounds the rendered cache; overflow drops the
// whole map (distinct fingerprints accumulate as data mutates, old
// entries can never validate again — bulk drop beats LRU bookkeeping).
const maxCachedResponses = 256

type respEntry struct {
	ctype string
	body  []byte
}

// localFingerprint names the local store's contribution to a window's
// view: generation, epoch, clock quantum, and the pending-hint set.
func (s *Server) localFingerprint(window time.Duration) string {
	ver := s.st.Version(window)
	var b strings.Builder
	b.WriteString("l:")
	b.WriteString(strconv.FormatUint(ver.Gen, 36))
	b.WriteByte(':')
	b.WriteString(strconv.FormatUint(ver.Epoch, 10))
	b.WriteByte(':')
	b.WriteString(strconv.FormatInt(ver.BucketIdx, 10))
	if s.repl != nil {
		hinted := s.repl.hints.hintedPushers()
		if len(hinted) > 0 {
			ids := make([]string, 0, len(hinted))
			for id := range hinted {
				ids = append(ids, id)
			}
			sort.Strings(ids)
			b.WriteString(";h:")
			b.WriteString(strings.Join(ids, ","))
		}
	}
	return b.String()
}

// fleetFingerprint extends the local fingerprint with one term per
// scatter leg, in stable (sorted-peer) order: the leg's reconstructed
// revision, or "down" — an unreachable peer changes the incomplete
// set, so it must split the cache key even though it adds no data.
func (s *Server) fleetFingerprint(window time.Duration, legs []cluster.ShardResult) string {
	var b strings.Builder
	b.WriteString(s.localFingerprint(window))
	for _, sr := range legs {
		b.WriteByte(';')
		b.WriteString(sr.Peer)
		b.WriteByte('=')
		if sr.Err != nil {
			b.WriteString("down")
		} else {
			b.WriteString(strconv.FormatUint(sr.Rev, 10))
		}
	}
	return b.String()
}

// serveCached answers from the rendered cache when key matches, else
// runs build and caches its 200 result. build returns nil when it
// already wrote a non-200 response (cache nothing).
func (s *Server) serveCached(w http.ResponseWriter, key string, build func() *respEntry) {
	if s.cfg.NoQueryCache {
		if e := build(); e != nil {
			w.Header().Set("Content-Type", e.ctype)
			w.Write(e.body)
		}
		return
	}
	o := s.cfg.Obs
	t0 := o.Start()
	s.respMu.Lock()
	e := s.respCache[key]
	s.respMu.Unlock()
	if e != nil {
		s.viewHits.Add(1)
		w.Header().Set("Content-Type", e.ctype)
		w.Write(e.body)
		o.StageSince(obs.StageCacheHit, t0)
		return
	}
	s.viewMisses.Add(1)
	e = build()
	if e == nil {
		o.StageSince(obs.StageCacheMiss, t0)
		return
	}
	s.respMu.Lock()
	if len(s.respCache) >= maxCachedResponses {
		s.respCache = make(map[string]*respEntry)
	}
	s.respCache[key] = e
	s.respMu.Unlock()
	w.Header().Set("Content-Type", e.ctype)
	w.Write(e.body)
	o.StageSince(obs.StageCacheMiss, t0)
}

// ViewCacheStats reports the rendered-response cache's hit/miss
// counters (the harness gates on them; /metrics exports the same).
func (s *Server) ViewCacheStats() (hits, misses uint64) {
	return s.viewHits.Load(), s.viewMisses.Load()
}

// respKey builds the cache key: endpoint, every parameter that shapes
// the body, and the view fingerprint. The raw window value is included
// — two windows can share a bucket quantum while selecting different
// bucket sets, so the fingerprint alone must not merge them.
func respKey(endpoint string, g gathered, extra string) string {
	return endpoint + "\x00" + g.tool + "\x00" + g.program + "\x00" +
		strconv.FormatInt(int64(g.window), 10) + "\x00" + extra + "\x00" + g.fp
}
