package daemon

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/store"
	"repro/witch"
)

// newTestCluster boots n in-process daemons wired into one ring over
// real loopback HTTP. Returned slices are index-aligned: servers[i]
// serves at urls[i].
func newTestCluster(t *testing.T, n int) (servers []*Server, hts []*httptest.Server, urls []string) {
	t.Helper()
	servers = make([]*Server, n)
	hts = make([]*httptest.Server, n)
	urls = make([]string, n)
	for i := range servers {
		servers[i] = NewServer(store.New(store.Config{}), Config{})
		servers[i].SetState(StateServing)
		hts[i] = httptest.NewServer(servers[i].Handler())
		urls[i] = hts[i].URL
	}
	t.Cleanup(func() {
		for _, ts := range hts {
			ts.Close()
		}
	})
	for i := range servers {
		cl, err := cluster.New(cluster.Config{
			Self:  urls[i],
			Peers: urls,
			Logf:  t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		servers[i].AttachCluster(cl)
	}
	return servers, hts, urls
}

// keyedIngest POSTs one keyed batch and returns the response.
func keyedIngest(t *testing.T, url string, body []byte, id string, seq uint64) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/ingest", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(witch.PusherIDHeader, id)
	req.Header.Set(witch.PusherSeqHeader, fmt.Sprintf("%d", seq))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestClusterForwardIngest: a keyed batch entering at a non-owner is
// journaled and merged on its owner, the ack (and a duplicate's
// re-ack) relays byte-identically, and the data is queryable from any
// node via scatter-gather while living on exactly one.
func TestClusterForwardIngest(t *testing.T) {
	servers, _, urls := newTestCluster(t, 3)
	prof := testProfile(t, 1)
	var body bytes.Buffer
	if err := prof.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}

	// Pick a pusher identity owned by a node that is not the entry.
	const id = "test-pusher-forwarding"
	ownerURL := servers[0].Cluster().Owner(id)
	entry := -1
	owner := -1
	for i, u := range urls {
		if u == ownerURL {
			owner = i
		} else if entry == -1 {
			entry = i
		}
	}
	if owner == -1 {
		t.Fatalf("owner %s not in ring %v", ownerURL, urls)
	}

	resp := keyedIngest(t, urls[entry], body.Bytes(), id, 1)
	ack1, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded ingest: HTTP %d: %s", resp.StatusCode, ack1)
	}
	if servers[owner].batches.Load() != 1 || servers[entry].batches.Load() != 0 {
		t.Fatalf("batch landed wrong: owner=%d entry=%d",
			servers[owner].batches.Load(), servers[entry].batches.Load())
	}
	if servers[owner].forwardedIn.Load() != 1 {
		t.Fatal("owner did not count the forwarded arrival")
	}
	if s := servers[entry].Cluster().StatsSnapshot(); s.Forwards != 1 {
		t.Fatalf("entry did not count the forward: %+v", s)
	}

	// A duplicate retry through the entry node re-acks with the owner's
	// duplicate marker and an ack body identical to the original's.
	resp2 := keyedIngest(t, urls[entry], body.Bytes(), id, 1)
	ack2, _ := io.ReadAll(resp2.Body)
	if resp2.StatusCode != http.StatusOK || resp2.Header.Get("X-Witch-Duplicate") != "window" {
		t.Fatalf("duplicate not re-acked through forward: HTTP %d, dup=%q",
			resp2.StatusCode, resp2.Header.Get("X-Witch-Duplicate"))
	}
	if !bytes.Equal(ack1, ack2) {
		t.Fatalf("re-ack drifted:\n%s\n%s", ack1, ack2)
	}
	if servers[owner].st.Query(0).Profiles() != 1 {
		t.Fatal("duplicate was re-merged on the owner")
	}

	// Fleet query from every node sees the same single profile; the
	// entry node's local store stays empty.
	for i, u := range urls {
		r, err := http.Get(u + "/v1/top?tool=" + prof.Tool)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("node %d fleet query: HTTP %d", i, r.StatusCode)
		}
		if r.Header.Get("X-Witch-Incomplete") != "" {
			t.Fatalf("node %d query partial with all peers up", i)
		}
		r.Body.Close()
	}
	r, err := http.Get(urls[entry] + "/v1/top?tool=" + prof.Tool + "&scope=local")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("entry node holds local data it should have forwarded: HTTP %d", r.StatusCode)
	}
}

// TestClusterPartialQuery: with one node down, surviving nodes answer
// fleet queries with what they can reach and say what they could not
// — the Incomplete marker in both header and body — and /v1/healthz
// degrades instead of failing.
func TestClusterPartialQuery(t *testing.T) {
	servers, hts, urls := newTestCluster(t, 3)
	prof := testProfile(t, 2)
	var body bytes.Buffer
	if err := prof.WriteJSON(&body); err != nil {
		t.Fatal(err)
	}
	// Land one batch on node 0's local store directly (unkeyed, no
	// forwarding), then kill node 2.
	servers[0].SetState(StateServing)
	resp := ingest(t, hts[0], body.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: HTTP %d", resp.StatusCode)
	}
	hts[2].Close()

	r, err := http.Get(urls[1] + "/v1/top?tool=" + prof.Tool)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Fatalf("partial query: HTTP %d", r.StatusCode)
	}
	if got := r.Header.Get("X-Witch-Incomplete"); got != urls[2] {
		t.Fatalf("X-Witch-Incomplete = %q, want %q", got, urls[2])
	}
	var top struct {
		Waste      float64  `json:"waste"`
		Incomplete []string `json:"incomplete"`
	}
	if err := json.NewDecoder(r.Body).Decode(&top); err != nil {
		t.Fatal(err)
	}
	if len(top.Incomplete) != 1 || top.Incomplete[0] != urls[2] {
		t.Fatalf("incomplete field = %v", top.Incomplete)
	}
	if top.Waste != prof.Waste {
		t.Fatalf("reachable data missing from partial answer: %v vs %v", top.Waste, prof.Waste)
	}

	hr, err := http.Get(urls[1] + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var fleet struct {
		Status     string               `json:"status"`
		Nodes      []cluster.PeerHealth `json:"nodes"`
		Incomplete []string             `json:"incomplete"`
		Profiles   uint64               `json:"profiles"`
	}
	if err := json.NewDecoder(hr.Body).Decode(&fleet); err != nil {
		t.Fatal(err)
	}
	if fleet.Status != "degraded" || len(fleet.Nodes) != 3 {
		t.Fatalf("fleet health: %+v", fleet)
	}
	if len(fleet.Incomplete) != 1 || fleet.Incomplete[0] != urls[2] {
		t.Fatalf("fleet incomplete = %v", fleet.Incomplete)
	}
	if fleet.Profiles != 1 {
		t.Fatalf("fleet profiles = %d", fleet.Profiles)
	}
}

// TestTopNValidation: garbage n values are caller bugs and get 400s,
// not silent defaults; the cap bounds the response size.
func TestTopNValidation(t *testing.T) {
	_, ts := newTestServer(t, store.Config{})
	prof := testProfile(t, 3)
	var body bytes.Buffer
	prof.WriteJSON(&body)
	if resp := ingest(t, ts, body.Bytes()); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: HTTP %d", resp.StatusCode)
	}
	bad := []string{"abc", "-1", "0", "12.5", "1000000", "+e9"}
	for _, n := range bad {
		r, err := http.Get(ts.URL + "/v1/top?tool=" + prof.Tool + "&n=" + n)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusBadRequest {
			t.Fatalf("n=%q: HTTP %d, want 400", n, r.StatusCode)
		}
	}
	for _, n := range []string{"1", "20", "1000"} {
		r, err := http.Get(ts.URL + "/v1/top?tool=" + prof.Tool + "&n=" + n)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("n=%q: HTTP %d, want 200", n, r.StatusCode)
		}
	}
}

// TestMetricsEndpoint: the plaintext counters cover ingest, store,
// dedup, and — with a ring — cluster and per-peer breaker state.
func TestMetricsEndpoint(t *testing.T) {
	servers, _, urls := newTestCluster(t, 2)
	prof := testProfile(t, 4)
	var body bytes.Buffer
	prof.WriteJSON(&body)
	const id = "metrics-pusher"
	entry := 0
	if servers[0].Cluster().IsOwner(id) {
		entry = 1
	}
	if resp := keyedIngest(t, urls[entry], body.Bytes(), id, 1); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: HTTP %d", resp.StatusCode)
	}
	r, err := http.Get(urls[entry] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if ct := r.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	text, _ := io.ReadAll(r.Body)
	for _, want := range []string{
		`witchd_state{state="serving"} 1`,
		"witchd_ingest_batches_total 0",
		"witchd_cluster_forwards_total 1",
		"witchd_dedup_pushers 0",
		"witchd_store_live_pairs 0",
		"witchd_peer_breaker_open{peer=",
		"witchd_queries_total 0",
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("metrics missing %q:\n%s", want, text)
		}
	}
}

// TestDedupEvictionReack is the eviction-replay hole: a pusher whose
// window was LRU-evicted replays an old (acked) sequence — e.g. a
// forwarded re-ingest after a partition. The tombstone must re-ack
// it; merging it twice would corrupt the aggregate forever.
func TestDedupEvictionReack(t *testing.T) {
	d := NewDedup(128, 2)
	applied := 0
	apply := func(commit func()) error { applied++; commit(); return nil }

	if dup, _, err := d.Process("A", 7, apply); err != nil || dup {
		t.Fatalf("first A/7: dup=%v err=%v", dup, err)
	}
	// Two newer pushers force A out of the 2-entry table.
	d.Process("B", 1, apply)
	d.Process("C", 1, apply)
	if st := d.Stats(); st.EvictedPushers != 1 || st.Tombstones != 1 {
		t.Fatalf("A not evicted with tombstone: %+v", st)
	}

	// The replay of A's acked sequence must re-ack, not re-merge.
	before := applied
	dup, _, err := d.Process("A", 7, apply)
	if err != nil || !dup {
		t.Fatalf("evicted replay A/7: dup=%v err=%v", dup, err)
	}
	if applied != before {
		t.Fatal("evicted replay was re-applied (double merge)")
	}
	// Sequences below the tombstone's window are stale re-acks.
	if dup, stale, _ := d.Process("A", 0, apply); !dup && !stale {
		t.Fatalf("pre-window replay processed: dup=%v stale=%v", dup, stale)
	}
	// Genuinely new work from the returned pusher still flows.
	before = applied
	if dup, _, _ := d.Process("A", 8, apply); dup || applied != before+1 {
		t.Fatalf("fresh A/8 after return: dup=%v applied=%d", dup, applied)
	}
}

// TestDedupPinnedWindowSurvivesEviction: the LRU may never evict a
// window whose batch is mid-apply — that would orphan the commit mark
// and re-merge the retry. The pin makes the mid-flight window
// invisible to the victim scan.
func TestDedupPinnedWindowSurvivesEviction(t *testing.T) {
	d := NewDedup(128, 2)
	inApply := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		d.Process("pinned", 5, func(commit func()) error {
			close(inApply)
			<-release
			commit()
			return nil
		})
	}()
	<-inApply
	// Overflow the table while the apply is in flight; the scan must
	// pick the other window, never the pinned one.
	quick := func(commit func()) error { commit(); return nil }
	d.Process("other1", 1, quick)
	d.Process("other2", 1, quick)
	d.Process("other3", 1, quick)
	close(release)
	<-done

	applied := 0
	dup, _, err := d.Process("pinned", 5, func(commit func()) error { applied++; commit(); return nil })
	if err != nil || !dup || applied != 0 {
		t.Fatalf("pinned window lost its mark: dup=%v applied=%d err=%v", dup, applied, err)
	}
}

// TestDedupTombstoneSnapshotRoundTrip: tombstones survive the
// snapshot codec, so a crash cannot resurrect an evicted pusher's
// acked sequences either.
func TestDedupTombstoneSnapshotRoundTrip(t *testing.T) {
	d := NewDedup(128, 2)
	apply := func(commit func()) error { commit(); return nil }
	d.Process("A", 9, apply)
	d.Process("B", 1, apply)
	d.Process("C", 1, apply) // evicts A
	blob, err := d.State()
	if err != nil {
		t.Fatal(err)
	}
	d2 := NewDedup(128, 2)
	if err := d2.Load(blob); err != nil {
		t.Fatal(err)
	}
	applied := 0
	dup, _, err := d2.Process("A", 9, func(commit func()) error { applied++; commit(); return nil })
	if err != nil || !dup || applied != 0 {
		t.Fatalf("tombstone lost across snapshot: dup=%v applied=%d err=%v", dup, applied, err)
	}
}

// TestDedupConcurrentEvictionChurn hammers a tiny table from many
// goroutines so the race detector can chew on the pin/evict/tombstone
// paths; every pusher then re-checks that its acked sequences re-ack.
// The pusher universe (6) fits inside live (4) + tombstone (4)
// capacity — the regime where exactly-once is guaranteed; past it the
// bound is a memory cap, not a correctness promise.
func TestDedupConcurrentEvictionChurn(t *testing.T) {
	d := NewDedup(64, 4)
	const pushers = 6
	const seqs = 32
	var wg sync.WaitGroup
	for p := 0; p < pushers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			id := fmt.Sprintf("churn-%d", p)
			for s := uint64(1); s <= seqs; s++ {
				d.Process(id, s, func(commit func()) error {
					commit()
					return nil
				})
			}
		}(p)
	}
	wg.Wait()
	// Every pusher's top sequence must re-ack from window or tombstone.
	for p := 0; p < pushers; p++ {
		id := fmt.Sprintf("churn-%d", p)
		applied := 0
		dup, stale, err := d.Process(id, seqs, func(commit func()) error { applied++; commit(); return nil })
		if err != nil || (!dup && !stale) || applied != 0 {
			t.Fatalf("%s seq %d re-merged: dup=%v stale=%v applied=%d", id, seqs, dup, stale, applied)
		}
	}
}
