package daemon

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/agg"
	"repro/internal/cluster"
)

// forwardIngest relays one keyed batch to its owning peer and the
// owner's verdict back to the pusher, byte for byte. The ack chain is
// pusher → this node → owner: a 2xx here means the owner journaled
// before acking, so exactly-once survives the extra hop. When no
// verdict exists (owner down, breaker open, torn response) the batch
// is shed with 503 + Retry-After — the pusher spools it and retries
// the same sequence number, which the owner's dedup window makes safe
// even if the lost verdict had in fact committed.
func (s *Server) forwardIngest(w http.ResponseWriter, r *http.Request, id string, seq uint64) {
	owner := s.cl.Owner(id)
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bufPool.Put(buf)
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)); err != nil {
		s.rejected.Add(1)
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, "ingest: %v", err)
		return
	}
	fr, err := s.cl.Forward(r.Context(), owner, r.Header.Get("Content-Type"), id, seq, buf.Bytes())
	if err != nil {
		retry := 2
		var pd *cluster.PeerDownError
		if errors.As(err, &pd) && pd.RetryAfter > 0 {
			retry = int((pd.RetryAfter + time.Second - 1) / time.Second)
		}
		s.shedRequest(w, http.StatusServiceUnavailable, retry, "%v", err)
		return
	}
	if fr.Ctype != "" {
		w.Header().Set("Content-Type", fr.Ctype)
	}
	if fr.RetryAfter != "" {
		w.Header().Set("Retry-After", fr.RetryAfter)
	}
	if fr.Duplicate != "" {
		w.Header().Set("X-Witch-Duplicate", fr.Duplicate)
	}
	w.WriteHeader(fr.Status)
	w.Write(fr.Body)
}

// handleShard serves this node's raw aggregate State for a window —
// the unit a peer's scatter-gather fetches and folds with
// agg.MergeState. Always local by construction, which is what keeps
// scatter legs from recursing.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	window, err := queryWindow(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	st := s.st.Query(window).State()
	w.Header().Set("Content-Type", "application/x-gob")
	if err := gob.NewEncoder(w).Encode(st); err != nil {
		// Too late for a status change; the torn body fails the peer's
		// decode and the leg lands in its Incomplete set.
		return
	}
}

// handleClusterHealthz answers for the fleet: one row per node plus a
// merged rollup (Health flags OR, counters sum — agg.MergeHealth's
// rules). Unreachable peers appear both as error rows and in the
// incomplete list; the fleet status is degraded rather than the
// request failed. Without a cluster it falls back to the local view.
func (s *Server) handleClusterHealthz(w http.ResponseWriter, r *http.Request) {
	if s.cl == nil {
		s.handleHealthz(w, r)
		return
	}
	localHealth, localProfiles := s.st.Health()
	rows := []cluster.PeerHealth{{
		Peer:     s.cl.Self(),
		Status:   map[bool]string{false: "ok", true: "degraded"}[localHealth.Degraded],
		State:    StateName(s.state.Load()),
		Profiles: localProfiles,
		Batches:  s.batches.Load(),
		Health:   localHealth,
	}}
	rows = append(rows, s.cl.PeerHealths(r.Context())...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Peer < rows[j].Peer })

	merged := localHealth
	profiles, batches := localProfiles, s.batches.Load()
	var incomplete []string
	for _, row := range rows {
		if row.Peer == s.cl.Self() {
			continue
		}
		if row.Err != "" {
			incomplete = append(incomplete, row.Peer)
			continue
		}
		merged = agg.MergeHealth(merged, row.Health)
		profiles += row.Profiles
		batches += row.Batches
	}
	status := "ok"
	if merged.Degraded || len(incomplete) > 0 {
		status = "degraded"
	}
	if len(incomplete) > 0 {
		w.Header().Set("X-Witch-Incomplete", strings.Join(incomplete, ","))
	}
	out := map[string]any{
		"status":     status,
		"self":       s.cl.Self(),
		"nodes":      rows,
		"profiles":   profiles,
		"batches":    batches,
		"health":     merged,
		"cluster":    s.cl.StatsSnapshot(),
		"incomplete": incomplete,
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
