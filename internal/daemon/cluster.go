package daemon

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"errors"
	"net/http"
	"sort"
	"strings"
	"time"

	"repro/internal/agg"
	"repro/internal/cluster"
)

// forwardIngest relays one keyed batch to a member of its replica set
// and that member's verdict back to the pusher, byte for byte. The ack
// chain is pusher → this node → coordinator: a 2xx here means the
// coordinator replicated and journaled before acking, so exactly-once
// survives the extra hop. Candidates are tried in preference order,
// but a later candidate is attempted ONLY when the earlier one's
// breaker was already open — no request went out, so rerouting cannot
// race a half-applied forward. A candidate that was actually attempted
// and failed (refused, timeout, torn response) sheds instead: it may
// have committed before the response tore, and only a retry of the
// same sequence against the same dedup windows is safe. When no
// verdict exists the batch is shed with 503 + Retry-After — the pusher
// spools it and retries.
func (s *Server) forwardIngest(ctx context.Context, w http.ResponseWriter, r *http.Request, id string, seq uint64, candidates []string) {
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bufPool.Put(buf)
	if _, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)); err != nil {
		s.rejected.Add(1)
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, "ingest: %v", err)
		return
	}
	var lastErr error
	for i, peer := range candidates {
		if peer == s.cl.Self() {
			continue
		}
		fr, err := s.cl.Forward(ctx, peer, r.Header.Get("Content-Type"), id, seq, buf.Bytes())
		if err != nil {
			lastErr = err
			var pd *cluster.PeerDownError
			if errors.As(err, &pd) && pd.Err == nil && i+1 < len(candidates) {
				// Breaker already open: provably nothing was sent, so the
				// next replica-set member can coordinate instead.
				s.cl.NoteReroute()
				continue
			}
			break
		}
		if fr.Ctype != "" {
			w.Header().Set("Content-Type", fr.Ctype)
		}
		if fr.RetryAfter != "" {
			w.Header().Set("Retry-After", fr.RetryAfter)
		}
		if fr.Duplicate != "" {
			w.Header().Set("X-Witch-Duplicate", fr.Duplicate)
		}
		w.WriteHeader(fr.Status)
		w.Write(fr.Body)
		return
	}
	retry := 2
	var pd *cluster.PeerDownError
	if errors.As(lastErr, &pd) && pd.RetryAfter > 0 {
		retry = int((pd.RetryAfter + time.Second - 1) / time.Second)
	}
	if lastErr == nil {
		lastErr = errors.New("cluster: no forwardable replica")
	}
	s.shedRequest(w, http.StatusServiceUnavailable, retry, "%v", lastErr)
}

// handleShard serves this node's partitioned export for a window — the
// unit a peer's scatter-gather fetches — or, with ?pusher=, one
// pusher's full transferable partition (bucket-structured history plus
// its dedup window), the unit anti-entropy repair pulls. The window
// export travels in a ShardPayload alongside this node's pending-hint
// ledger, so the gathering side can prefer a hinter as a partition's
// holder and spot diverged replicas. Always local by construction,
// which is what keeps scatter legs from recursing.
//
// POST is the v2 delta protocol: the body is a gob cluster.DeltaRequest
// carrying the caller's last-seen version vector, and the reply a gob
// ShardDelta — only the partitions whose epochs moved, plus tombstones,
// or a full export when the vector is unusable (first contact, another
// generation, another clock quantum). GET remains the full v1 export
// for mid-upgrade peers and repair transfers.
func (s *Server) handleShard(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
	case http.MethodPost:
		s.handleShardDelta(w, r)
		return
	default:
		httpError(w, http.StatusMethodNotAllowed, "GET or POST only")
		return
	}
	if s.ringRejected(w, r) {
		return
	}
	if id := r.URL.Query().Get("pusher"); id != "" {
		pt := cluster.PartitionTransfer{Image: s.st.PartitionImage(id)}
		pt.DedupMax, pt.DedupBits = s.ded.WindowOf(id)
		w.Header().Set("Content-Type", "application/x-gob")
		_ = gob.NewEncoder(w).Encode(&pt)
		return
	}
	window, err := queryWindow(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	pl := cluster.ShardPayload{Export: s.st.Export(window)}
	if s.repl != nil {
		pl.Hinted = s.repl.hints.hintedPushers()
	}
	w.Header().Set("Content-Type", "application/x-gob")
	if err := gob.NewEncoder(w).Encode(&pl); err != nil {
		// Too late for a status change; the torn body fails the peer's
		// decode and the leg lands in its Incomplete set.
		return
	}
}

// handleShardDelta is the POST side of /v1/shard: diff this node's
// window export against the caller's version vector. The window still
// rides the URL query (same parser as every read), the vector rides
// the body.
func (s *Server) handleShardDelta(w http.ResponseWriter, r *http.Request) {
	if s.ringRejected(w, r) {
		return
	}
	window, err := queryWindow(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var dreq cluster.DeltaRequest
	if err := gob.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)).Decode(&dreq); err != nil {
		httpError(w, http.StatusBadRequest, "decoding delta request: %v", err)
		return
	}
	sd := cluster.ShardDelta{Delta: s.st.ExportDelta(window, dreq.Ver)}
	if s.repl != nil {
		sd.Hinted = s.repl.hints.hintedPushers()
	}
	w.Header().Set("Content-Type", "application/x-gob")
	_ = gob.NewEncoder(w).Encode(&sd)
}

// handleClusterHealthz answers for the fleet: one row per node plus a
// merged rollup (Health flags OR, counters sum — agg.MergeHealth's
// rules). Unreachable peers appear both as error rows and in the
// incomplete list; the fleet status is degraded rather than the
// request failed. Each row carries the node's ring hash so membership
// skew is visible at a glance. Without a cluster it falls back to the
// local view.
func (s *Server) handleClusterHealthz(w http.ResponseWriter, r *http.Request) {
	if s.cl == nil {
		s.handleHealthz(w, r)
		return
	}
	localHealth, localProfiles := s.st.Health()
	rows := []cluster.PeerHealth{{
		Peer:     s.cl.Self(),
		Status:   map[bool]string{false: "ok", true: "degraded"}[localHealth.Degraded],
		State:    StateName(s.state.Load()),
		Ring:     s.cl.RingHash(),
		Profiles: localProfiles,
		Batches:  s.batches.Load(),
		Health:   localHealth,
	}}
	rows = append(rows, s.cl.PeerHealths(r.Context())...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].Peer < rows[j].Peer })

	merged := localHealth
	profiles, batches := localProfiles, s.batches.Load()
	var incomplete []string
	for _, row := range rows {
		if row.Peer == s.cl.Self() {
			continue
		}
		if row.Err != "" {
			incomplete = append(incomplete, row.Peer)
			continue
		}
		merged = agg.MergeHealth(merged, row.Health)
		profiles += row.Profiles
		batches += row.Batches
	}
	status := "ok"
	if merged.Degraded || len(incomplete) > 0 {
		status = "degraded"
	}
	if len(incomplete) > 0 {
		w.Header().Set("X-Witch-Incomplete", strings.Join(incomplete, ","))
	}
	out := map[string]any{
		"status":     status,
		"self":       s.cl.Self(),
		"ring":       s.cl.RingHash(),
		"nodes":      rows,
		"profiles":   profiles,
		"batches":    batches,
		"health":     merged,
		"cluster":    s.cl.StatsSnapshot(),
		"incomplete": incomplete,
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
