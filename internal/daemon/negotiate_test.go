package daemon

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/store"
	"repro/witch"
)

// TestBinaryPusherFallsBackOnJSONOnlyDaemon: a binary-capable Pusher
// talking to a daemon that does not know the binary content type (it
// answers 415) must downgrade to JSON permanently — losing no profiles,
// tripping no breaker, and counting exactly one fallback.
func TestBinaryPusherFallsBackOnJSONOnlyDaemon(t *testing.T) {
	srv, _ := newTestServer(t, store.Config{})
	var binaryPosts, jsonPosts atomic.Int64
	// A pre-fast-path daemon: rejects the binary offer the way any
	// server rejects an unknown media type, accepts JSON as always.
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Header.Get("Content-Type") == witch.BinaryContentType {
			binaryPosts.Add(1)
			http.Error(w, "unsupported media type", http.StatusUnsupportedMediaType)
			return
		}
		jsonPosts.Add(1)
		srv.Handler().ServeHTTP(w, r)
	}))
	defer legacy.Close()

	prof := testProfile(t, 1)
	p, err := witch.NewPusher(witch.PusherOptions{
		URL: legacy.URL, Queue: 8, Backoff: time.Millisecond, Encoding: "binary",
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if !p.Push(prof) {
			t.Fatalf("push %d rejected", i)
		}
	}
	p.Close()

	st := p.Stats()
	if st.Sent != n {
		t.Fatalf("delivered %d/%d after fallback: %+v", st.Sent, n, st)
	}
	if st.EncodingFallbacks != 1 {
		t.Fatalf("EncodingFallbacks = %d, want 1 (the downgrade latches)", st.EncodingFallbacks)
	}
	if st.BreakerTrips != 0 || st.Dropped != 0 {
		t.Fatalf("negotiation must not trip the breaker or drop: %+v", st)
	}
	if got := binaryPosts.Load(); got != 1 {
		t.Fatalf("binary offered %d times, want exactly 1 before latching JSON", got)
	}
	if got := jsonPosts.Load(); got != n {
		t.Fatalf("JSON deliveries = %d, want %d", got, n)
	}
	if got := srv.st.Stats().Ingested; got != n {
		t.Fatalf("daemon ingested %d, want %d", got, n)
	}
}

// TestBinaryAndJSONIngestAgreeByteForByte: the same profiles pushed
// through the JSON encoding and through the negotiated binary encoding
// must produce byte-identical GET /v1/profile output — the wire format
// is an optimization, never a semantic fork.
func TestBinaryAndJSONIngestAgreeByteForByte(t *testing.T) {
	profs := []*witch.Profile{testProfile(t, 1), testProfile(t, 2), testProfile(t, 3)}
	tool := profs[0].Tool

	fetch := func(enc string) []byte {
		now := func() time.Time { return time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC) }
		_, ts := newTestServer(t, store.Config{Now: now})
		p, err := witch.NewPusher(witch.PusherOptions{
			URL: ts.URL, Queue: 8, Backoff: time.Millisecond, Encoding: enc,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, prof := range profs {
			if !p.Push(prof) {
				t.Fatalf("%s push rejected", enc)
			}
		}
		p.Close()
		if st := p.Stats(); st.Sent != uint64(len(profs)) || st.EncodingFallbacks != 0 {
			t.Fatalf("%s pusher stats: %+v", enc, st)
		}
		resp, err := http.Get(ts.URL + "/v1/profile?tool=" + tool)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s profile: HTTP %d", enc, resp.StatusCode)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	jsonView := fetch("json")
	binView := fetch("binary")
	if !bytes.Equal(jsonView, binView) {
		t.Fatalf("merged views diverge by encoding:\njson:   %s\nbinary: %s", jsonView, binView)
	}
}
