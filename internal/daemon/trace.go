// Trace and slow-request endpoints.
//
// /v1/trace/{id} reconstructs one request's cross-node span tree: this
// node's retained spans plus a scatter to every peer's scope=local
// view. A span ring is bounded and overwrite-on-wrap, so the answer is
// best-effort by design — an evicted span leaves a hole, never an
// error. Trace collection is read-only and touches no store state;
// like /metrics it can run against a draining node.
//
// /v1/slow serves the node's top-K slowest recent requests with the
// span breakdown captured when each entered the ring.
package daemon

import (
	"encoding/json"
	"net/http"
	"sort"
	"strings"
	"sync"

	"repro/internal/obs"
)

// handleTrace serves GET /v1/trace/{id}. Without ?scope=local the
// handler fans out to every peer's local view and merges, so one curl
// against any node yields the fleet-wide tree; peers that fail the
// fetch are named in "incomplete" rather than failing the query.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	o := s.cfg.Obs
	if !o.TracingEnabled() {
		httpError(w, http.StatusNotFound, "tracing disabled (start witchd with -trace-ring > 0)")
		return
	}
	raw := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
	tid, ok := obs.ParseTraceID(raw)
	if !ok {
		httpError(w, http.StatusBadRequest, "bad trace id %q: need 16 hex digits", raw)
		return
	}
	if s.ringRejected(w, r) {
		return
	}
	id := obs.FormatTraceID(tid) // normalized (lower-case) form
	spans := o.CollectTrace(tid)
	var incomplete []string
	if s.cl != nil && r.URL.Query().Get("scope") != "local" {
		others := s.cl.Others()
		legs := make([][]obs.Span, len(others))
		errs := make([]error, len(others))
		var wg sync.WaitGroup
		for i, peer := range others {
			wg.Add(1)
			go func(i int, peer string) {
				defer wg.Done()
				legs[i], errs[i] = s.cl.FetchTrace(r.Context(), peer, id)
			}(i, peer)
		}
		wg.Wait()
		for i, peer := range others {
			if errs[i] != nil {
				incomplete = append(incomplete, peer)
				continue
			}
			spans = append(spans, legs[i]...)
		}
	}
	if len(spans) == 0 {
		httpError(w, http.StatusNotFound, "no spans retained for trace %s (evicted, or never seen here)", id)
		return
	}
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})
	nodeSet := make(map[string]bool, 4)
	for _, sp := range spans {
		nodeSet[sp.Node] = true
	}
	nodes := make([]string, 0, len(nodeSet))
	for n := range nodeSet {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	out := map[string]any{
		"trace": id,
		"nodes": nodes,
		"spans": spans,
	}
	if len(incomplete) > 0 {
		sort.Strings(incomplete)
		out["incomplete"] = incomplete
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}

// handleSlow serves GET /v1/slow: the local top-K slowest captured
// requests, slowest first. Always local — slowness is a per-node
// property, and the entries already name the peers their spans touch.
func (s *Server) handleSlow(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	o := s.cfg.Obs
	if o == nil {
		httpError(w, http.StatusNotFound, "slow capture disabled (start witchd with -slow-capture > 0)")
		return
	}
	entries := o.SlowEntries()
	if entries == nil {
		entries = []obs.SlowEntry{}
	}
	kept, captured := o.SlowStats()
	out := map[string]any{
		"slow":     entries,
		"kept":     kept,
		"captured": captured,
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
