// Package daemon is the witchd aggregation service: the HTTP API, the
// lifecycle/overload guards, and the crash-safety layer (journal +
// snapshots), extracted from the witchd binary so benchmarks and the
// witchbench harness can boot a real daemon in-process. cmd/witchd is a
// thin flag-parsing shell around this package.
package daemon

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agg"
	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/witch"
)

// Lifecycle states. Ingest is accepted only while serving; /healthz
// reports the state so orchestrators can distinguish "still replaying
// the journal" from "being told to go away".
const (
	StateStarting int32 = iota
	StateRecovering
	StateServing
	StateDraining
)

// StateName renders a lifecycle state for logs and /healthz.
func StateName(s int32) string {
	switch s {
	case StateStarting:
		return "starting"
	case StateRecovering:
		return "recovering"
	case StateServing:
		return "serving"
	case StateDraining:
		return "draining"
	}
	return "unknown"
}

// Config sizes the server's protection limits.
type Config struct {
	// MaxBody bounds one ingest body (default 32 MiB).
	MaxBody int64
	// MaxInflight bounds concurrent ingest requests; excess load is shed
	// with 429 + Retry-After instead of queueing without bound
	// (default 64).
	MaxInflight int
	// MaxBacklog sheds ingest with 429 once the journal's unsynced-byte
	// backlog passes this watermark (only reachable with -fsync off;
	// default 64 MiB, 0 keeps the default, negative disables).
	MaxBacklog int64
	// Now is the ingest clock, injectable for tests (default time.Now).
	Now func() time.Time
	// DedupWindow is the per-pusher idempotency window in sequences
	// (default DefaultDedupWindow; rounded up to a multiple of 64).
	DedupWindow uint64
	// DedupMaxPushers bounds the dedup pusher table (default
	// DefaultDedupMaxPushers).
	DedupMaxPushers int
	// MaxTopN caps /v1/top's n parameter — the response-size bound for
	// the ranked-pairs query (default 1000).
	MaxTopN int
	// NoQueryCache disables the rendered-response cache on /v1/top and
	// /v1/profile (the store's own memoization is controlled separately
	// by store.Config.NoCache). Benchmarks use it as the oracle.
	NoQueryCache bool
	// Obs is the observability bundle: stage latency histograms, the
	// span ring behind /v1/trace, and the slow-request capture behind
	// /v1/slow. nil disables the whole layer at zero cost — every
	// handler's response bytes are identical either way (the layer is a
	// pure witness).
	Obs *obs.Observer
}

// Server wires the retention store, the persistence layer, and the
// lifecycle/overload guards to the HTTP API.
type Server struct {
	st   *store.Store
	cfg  Config
	pers *Persistence    // nil = memory-only (no data dir)
	cl   *cluster.Router // nil = single node
	ded  *Dedup
	repl *replication // nil until StartReplication; required when RF > 1

	state atomic.Int32
	sem   chan struct{}

	// memMu is the memory-only apply barrier: what Persistence.applyMu
	// is for a persistent node. Ingest applies under RLock; partition
	// adoption excludes them under Lock (via applyBarrier). Unused when
	// pers != nil — the journal's barrier covers those nodes.
	memMu sync.RWMutex

	batches        atomic.Uint64 // ingest requests accepted locally
	rejected       atomic.Uint64 // ingest requests rejected (bad input)
	shed           atomic.Uint64 // ingest requests shed (overload/lifecycle/journal)
	forwardedIn    atomic.Uint64 // batches that arrived via a peer's routing hop
	replicatedIn   atomic.Uint64 // batches applied via a peer's replication leg
	ringMismatches atomic.Uint64 // inter-node requests rejected for ring skew
	queries        atomic.Uint64 // /v1/top + /v1/profile requests served

	// respCache memoizes rendered /v1/top and /v1/profile bodies keyed
	// by the view fingerprint (see viewcache.go). Only 200 responses.
	respMu     sync.Mutex
	respCache  map[string]*respEntry
	viewHits   atomic.Uint64 // responses served from the rendered cache
	viewMisses atomic.Uint64 // responses materialized and rendered
}

// NewServer builds a server over a retention store, applying defaults
// for zero config fields. It starts in StateStarting; the caller runs
// recovery (if any) and then SetState(StateServing).
func NewServer(st *store.Store, cfg Config) *Server {
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 32 << 20
	}
	if cfg.MaxInflight <= 0 {
		cfg.MaxInflight = 64
	}
	if cfg.MaxBacklog == 0 {
		cfg.MaxBacklog = 64 << 20
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.MaxTopN <= 0 {
		cfg.MaxTopN = 1000
	}
	s := &Server{st: st, cfg: cfg, sem: make(chan struct{}, cfg.MaxInflight), respCache: make(map[string]*respEntry)}
	s.ded = NewDedup(cfg.DedupWindow, cfg.DedupMaxPushers)
	s.state.Store(StateStarting)
	return s
}

// Dedup exposes the idempotency layer so persistence recovery can
// restore and re-mark it (pass it to OpenPersistence).
func (s *Server) Dedup() *Dedup { return s.ded }

// applyBarrier runs fn with every batch apply excluded — Quiesce when
// a journal is attached, the server's own memMu otherwise, so
// memory-only nodes honor the same swap-vs-ingest exclusion contract
// as persistent ones. Callers must already hold the affected pusher's
// dedup window lock (see Dedup.Adopt) or no lock ordering is defined.
func (s *Server) applyBarrier(fn func()) {
	if s.pers != nil {
		s.pers.Quiesce(fn)
		return
	}
	s.memMu.Lock()
	defer s.memMu.Unlock()
	fn()
}

// SetState moves the lifecycle forward.
func (s *Server) SetState(st int32) { s.state.Store(st) }

// AttachPersistence wires a recovered persistence layer into the ingest
// path; call before SetState(StateServing).
func (s *Server) AttachPersistence(p *Persistence) { s.pers = p }

// AttachCluster wires a cluster router into the ingest and query
// paths; call before serving. With a router attached, keyed batches
// owned by a peer are forwarded there, and /v1/top, /v1/profile, and
// /v1/healthz answer for the whole fleet.
func (s *Server) AttachCluster(cl *cluster.Router) { s.cl = cl }

// Cluster returns the attached router (nil for a single node).
func (s *Server) Cluster() *cluster.Router { return s.cl }

// Handler routes the API:
//
//	POST /v1/ingest    WriteJSON payloads (single, batched, or binary)
//	POST /v1/replicate one keyed batch from a replica coordinator (journal-before-ack, no re-fanout)
//	GET  /v1/top       ranked merged pairs (tool, window, program, n) — fleet-wide with a cluster
//	GET  /v1/profile   full merged profile in the WriteJSON schema — fleet-wide with a cluster
//	GET  /v1/shard     this node's partitioned export (gob), the scatter/repair unit (?pusher= for one partition)
//	GET  /v1/digest    per-pusher (maxSeq, checksum) anti-entropy digest
//	GET  /v1/healthz   fleet health: every peer's row plus the merged rollup
//	GET  /v1/trace/{id} cross-node span tree for one trace (?scope=local for this node's spans only)
//	GET  /v1/slow      top-K slowest recent requests with their span breakdowns
//	GET  /healthz      this node's lifecycle state, Health, retention + durability stats
//	GET  /metrics      Prometheus exposition (counters, gauges, stage/peer latency histograms)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/replicate", s.handleReplicate)
	mux.HandleFunc("/v1/top", s.handleTop)
	mux.HandleFunc("/v1/profile", s.handleProfile)
	mux.HandleFunc("/v1/shard", s.handleShard)
	mux.HandleFunc("/v1/digest", s.handleDigest)
	mux.HandleFunc("/v1/healthz", s.handleClusterHealthz)
	mux.HandleFunc("/v1/trace/", s.handleTrace)
	mux.HandleFunc("/v1/slow", s.handleSlow)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// ringRejected enforces the membership guard: an inter-node request
// carrying a RingHeader that does not match this node's ring hash is
// answered 409 before any state is touched. A typoed -peers list on
// one node would otherwise silently split ownership. Requests without
// the header (pushers, curl) always pass.
func (s *Server) ringRejected(w http.ResponseWriter, r *http.Request) bool {
	if s.cl == nil {
		return false
	}
	got := r.Header.Get(cluster.RingHeader)
	if got == "" || got == s.cl.RingHash() {
		return false
	}
	s.ringMismatches.Add(1)
	httpError(w, http.StatusConflict, "ring mismatch: request ring %s, local ring %s — peer lists differ, check -peers", got, s.cl.RingHash())
	return true
}

// httpError sends a JSON error body with the given status.
func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// shed refuses an ingest for load or lifecycle reasons, with a
// Retry-After the pusher's circuit breaker honors.
func (s *Server) shedRequest(w http.ResponseWriter, status int, retryAfter int, format string, args ...any) {
	s.shed.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	httpError(w, status, format, args...)
}

// decoders pools BatchDecoders across ingest requests: the decoder owns
// the profile structs, pair slices, and intern table it hands out, so
// a request must finish with the decoded batch before putting its
// decoder back.
var decoders = sync.Pool{New: func() any { return new(witch.BatchDecoder) }}

// bufPool recycles ingest scratch buffers (request bodies, ack
// responses) so the hot path does not regrow a fresh buffer per batch.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// appendJSONString appends s as a JSON string literal. Plain printable
// ASCII (the overwhelmingly common case for tool names) is copied
// directly; anything else goes through encoding/json for correct
// escaping.
func appendJSONString(buf *bytes.Buffer, s string) {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c < 0x20 || c >= 0x7f || c == '"' || c == '\\' {
			b, err := json.Marshal(s)
			if err != nil { // a Go string always marshals
				b = []byte(`"?"`)
			}
			buf.Write(b)
			return
		}
	}
	buf.WriteByte('"')
	buf.WriteString(s)
	buf.WriteByte('"')
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	switch s.state.Load() {
	case StateServing:
	case StateDraining:
		s.shedRequest(w, http.StatusServiceUnavailable, 5, "draining: witchd is shutting down")
		return
	default:
		s.shedRequest(w, http.StatusServiceUnavailable, 1, "recovering: not yet serving ingest")
		return
	}
	// Bounded concurrency: a pusher stampede gets 429s, not an
	// unbounded pile of goroutines decoding 32 MiB bodies.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	default:
		s.shedRequest(w, http.StatusTooManyRequests, 1, "overloaded: %d ingests in flight", cap(s.sem))
		return
	}

	// Idempotency key: pushers stamp every batch with their durable
	// identity and a never-reused sequence. The key is also the routing
	// key — in a cluster, rendezvous hashing on the pusher identity
	// gives every batch exactly one owner, whose dedup window is the
	// only one that ever judges this pusher's sequences.
	id := r.Header.Get(witch.PusherIDHeader)
	var seq uint64
	keyed := false
	if id != "" {
		if rawSeq := r.Header.Get(witch.PusherSeqHeader); rawSeq != "" {
			if v, perr := strconv.ParseUint(rawSeq, 10, 64); perr == nil {
				seq, keyed = v, true
			}
		}
	}
	if s.ringRejected(w, r) {
		return
	}

	// Observability is witness-only from here down: reqStart/sp/ctx feed
	// histograms and the span ring, never a verdict. With cfg.Obs nil
	// every call below is an inlineable nil-check no-op and ctx stays
	// the request's own.
	o := s.cfg.Obs
	reqStart := o.Start()
	sp := o.StartSpan(r.Header.Get(obs.TraceHeader), "ingest")
	sp.Annotate(id, seq)
	ctx := r.Context()
	if sp.Active() {
		ctx = obs.ContextWithSpan(ctx, sp.Context())
	}
	finish := func() {
		if o == nil {
			return
		}
		d := time.Since(reqStart)
		o.Stage(obs.StageIngest, d)
		sp.End()
		o.CaptureSlow("ingest", sp.Context(), id, seq, "", reqStart, d)
	}

	forwarded := r.Header.Get(cluster.ForwardedHeader) != ""
	// coordinate means this node is a replica-set member applying the
	// batch authoritatively: it replicates to the other members (or
	// hints for the unreachable ones) before its own journal commit.
	coordinate := false
	if s.cl != nil && keyed {
		set := s.cl.ReplicaSet(id)
		selfIdx := -1
		for i, p := range set {
			if p == s.cl.Self() {
				selfIdx = i
			}
		}
		if !forwarded {
			if selfIdx < 0 {
				// Routing hop: relay the batch to a replica-set member and
				// that member's verdict back, before any local journal gate
				// — a node with a failed journal can still route to healthy
				// owners. A batch that already hopped is processed here
				// unconditionally (one hop only; skewed peer lists must not
				// build loops).
				s.forwardIngest(ctx, w, r, id, seq, set)
				finish()
				return
			}
			if selfIdx > 0 && s.cl.Available(set[0]) {
				// A follower keeps routing to the owner while it looks
				// reachable, so the owner's dedup window stays the one that
				// judges fresh sequences; only when the owner's breaker is
				// open does the follower coordinate (promoted follower).
				s.forwardIngest(ctx, w, r, id, seq, set[:1])
				finish()
				return
			}
		}
		coordinate = selfIdx >= 0
	}
	if forwarded {
		s.forwardedIn.Add(1)
	}
	if coordinate && s.cl.RF() > 1 && s.repl == nil {
		// RF>1 promises a follower ack before ours; without the
		// replication engine running that promise cannot be kept, and
		// acking anyway would silently drop to RF=1 durability.
		s.shedRequest(w, http.StatusServiceUnavailable, 5, "replication engine not running, batch not accepted")
		return
	}

	if s.pers != nil {
		if s.pers.journal.Failed() {
			s.shedRequest(w, http.StatusServiceUnavailable, 10, "journal failed, restart required: ingest disabled to avoid un-durable acks")
			return
		}
		if s.cfg.MaxBacklog > 0 && s.pers.journal.UnsyncedBytes() > s.cfg.MaxBacklog {
			s.shedRequest(w, http.StatusTooManyRequests, 1, "journal backlog over watermark, retry shortly")
			return
		}
	}

	// Pooled body scratch: the journal frames its own copy and the
	// decoder interns every string it keeps, so nothing outlives the
	// request holding a reference into this buffer.
	buf := bufPool.Get().(*bytes.Buffer)
	buf.Reset()
	defer bufPool.Put(buf)
	_, err := buf.ReadFrom(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		s.rejected.Add(1)
		status := http.StatusBadRequest
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			status = http.StatusRequestEntityTooLarge
		}
		httpError(w, status, "ingest: %v", err)
		return
	}
	body := buf.Bytes()

	// The fast path: a pooled decoder parses the body — JSON or the
	// binary wire format, sniffed by magic rather than trusted from the
	// Content-Type header — reusing profile structs, pair slices, and
	// interned strings across requests. Everything below up to the Put
	// must finish with the batch before the decoder can be reused.
	dec := decoders.Get().(*witch.BatchDecoder)
	dt0 := o.Start()
	profs, err := dec.Decode(body)
	o.StageSince(obs.StageDecode, dt0)
	if err != nil {
		decoders.Put(dec)
		s.rejected.Add(1)
		httpError(w, http.StatusBadRequest, "ingest: %v", err)
		return
	}

	// Per-tool routing happens inside the aggregate: every profile
	// carries its tool, and merge keys are tool-scoped, so a batch may
	// mix tools freely without cross-contamination.
	ingest := func(now time.Time) {
		mt0 := o.Start()
		for _, p := range profs {
			s.st.IngestKeyedAt(id, p, now)
		}
		o.StageSince(obs.StageMerge, mt0)
	}
	// Durability before acknowledgement: replicate to the other
	// replica-set members (durable hint if one is down), then journal
	// (and fsync, per policy) locally; any failure sheds the batch
	// un-acked so the client retries against a fleet that can make it
	// durable. Replication runs inside the dedup window lock and before
	// the local commit: a batch is never marked seen while a copy
	// exists on fewer than RF nodes (counting its hint record).
	apply := func(commit func()) error {
		now := s.cfg.Now()
		if coordinate && s.repl != nil {
			if rerr := s.repl.fanout(ctx, id, seq, r.Header.Get("Content-Type"), body, now); rerr != nil {
				return rerr
			}
		}
		if s.pers != nil {
			// The child span covers the whole durable apply — journal
			// append + fsync/gang wait + merge + dedup mark. The pure
			// journal-wait histogram comes from the wal seam
			// (Options.ObserveCommit), which sees only the commit wait.
			jsp := o.StartChild(sp.Context(), "journal_commit")
			aerr := s.pers.applyBatch(id, seq, keyed, body, ingest, now, commit)
			if aerr != nil {
				jsp.Fail(aerr.Error())
			}
			jsp.End()
			return aerr
		}
		s.memMu.RLock()
		defer s.memMu.RUnlock()
		ingest(now)
		commit()
		return nil
	}
	var dup, stale bool
	if keyed {
		// Process holds the pusher's window lock across apply, making
		// check→journal→merge→mark atomic per pusher; the commit
		// callback marks the key inside the persistence apply barrier.
		// The dedup histogram sees the window-lock acquire + bitmap
		// probe: Process total minus the time apply itself consumed.
		var applyDur time.Duration
		timedApply := apply
		if o != nil {
			timedApply = func(commit func()) error {
				at0 := time.Now()
				aerr := apply(commit)
				applyDur = time.Since(at0)
				return aerr
			}
		}
		pt0 := o.Start()
		dup, stale, err = s.ded.Process(id, seq, timedApply)
		if o != nil {
			o.Stage(obs.StageDedup, time.Since(pt0)-applyDur)
		}
	} else {
		err = apply(func() {})
	}
	if err != nil {
		decoders.Put(dec)
		sp.Fail(err.Error())
		finish()
		s.shedRequest(w, http.StatusServiceUnavailable, 10, "durable apply failed, batch not accepted: %v", err)
		return
	}
	if dup {
		// The ack body below is identical to the original's — a pusher
		// must not care whether its ack is first-hand. The header is
		// for operators and tests.
		if stale {
			w.Header().Set("X-Witch-Duplicate", "stale")
		} else {
			w.Header().Set("X-Witch-Duplicate", "window")
		}
	}

	// The merge copied everything it keeps, so the batch is done with:
	// summarize the ack, then recycle the decoder. The ack JSON is
	// written by hand — a reflective Encode over a map costs more than
	// the whole binary decode for a small batch. Batches are almost
	// always single-tool, so the counts live in a short slice, not a map.
	type toolCount struct {
		tool string
		n    int
	}
	var counts []toolCount
countTools:
	for _, p := range profs {
		for i := range counts {
			if counts[i].tool == p.Tool {
				counts[i].n++
				continue countTools
			}
		}
		counts = append(counts, toolCount{p.Tool, 1})
	}
	accepted := len(profs)
	decoders.Put(dec)

	s.batches.Add(1)
	buf.Reset() // the body is journaled and merged; reuse for the ack
	var tmp [20]byte
	buf.WriteString(`{"accepted":`)
	buf.Write(strconv.AppendInt(tmp[:0], int64(accepted), 10))
	buf.WriteString(`,"by_tool":{`)
	for i, tc := range counts {
		if i > 0 {
			buf.WriteByte(',')
		}
		appendJSONString(buf, tc.tool)
		buf.WriteByte(':')
		buf.Write(strconv.AppendInt(tmp[:0], int64(tc.n), 10))
	}
	buf.WriteString("}}\n")
	w.Header().Set("Content-Type", "application/json")
	w.Write(buf.Bytes())
	finish()
}

// queryWindow parses the window parameter: a Go duration, with an
// optional leading '-' tolerated ("-1h" and "1h" both mean the trailing
// hour); absent or "0" means everything, including evicted rollup.
func queryWindow(r *http.Request) (time.Duration, error) {
	raw := r.URL.Query().Get("window")
	if raw == "" {
		return 0, nil
	}
	d, err := time.ParseDuration(raw)
	if err != nil {
		return 0, fmt.Errorf("bad window %q: %v", raw, err)
	}
	if d < 0 {
		d = -d
	}
	return d, nil
}

// view resolves the tool/window/program parameters to a merged view.
// With a cluster attached the view is fleet-wide: every reachable
// peer's /v1/shard export is gathered beside the local one, anonymous
// partitions merge from every node, and each pusher partition merges
// from exactly one holder — so replicated data is never counted twice.
//
// Holder choice is hint-aware. Hinted handoff means a batch's RF
// copies are not always on RF nodes: while hints are undrained, both
// "copies" (journal record + hint record) live on the hinter. So for
// each pusher, a reachable exporter holding queued hints for that
// pusher outranks every non-hinter — its copy is provably a superset
// of the hint destination's — and ties break by preference index as
// usual. Without this, a healed-but-undrained destination with the
// better preference rank would be chosen and its stale partition
// reported as the complete answer.
//
// The answer degrades to a partial one only when loss or divergence
// is provable: (a) RF or more peers unreachable — a whole replica set
// may be dark; or (b) two reachable nodes both hold undrained hints
// for the same pusher — each has batches the other lacks, so no
// single holder is a superset. Fewer than RF down peers with a single
// (or no) hinter cannot hide keyed data, so the answer is reported
// complete. X-Witch-Incomplete names the implicated peers otherwise.
// Residual caveats, undetectable by construction: unkeyed node-local
// data on a down peer, and a coordinator that dies holding undrained
// hints (both copies of those batches were on its disk — no survivor
// can know they existed until it returns).
//
// scope=local bypasses the scatter (it is also how /v1/shard itself
// stays local, so legs never recurse).
//
// The work splits in two: gather collects the parameters, the local
// export, and every peer's delta-patched export — after the first
// query to a peer, only changed partitions travel — and derives the
// view fingerprint; materialize pays the O(partitions) merge. The
// split lets the rendered-response cache skip materialize entirely
// when the fingerprint says nothing anywhere changed.
//
// gathered is one query's resolved inputs.
type gathered struct {
	local      bool // single node or scope=local: materialize via Store.Query
	window     time.Duration
	tool       string
	program    string
	exports    map[string]*store.Export
	hinters    map[string]map[string]bool
	incomplete []string
	fp         string // view fingerprint (see viewcache.go)
}

func (s *Server) gather(w http.ResponseWriter, r *http.Request) (g gathered, ok bool) {
	g.tool = r.URL.Query().Get("tool")
	if g.tool == "" {
		httpError(w, http.StatusBadRequest, "tool parameter is required (a profile tool string, e.g. DeadCraft)")
		return g, false
	}
	window, err := queryWindow(r)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return g, false
	}
	g.window = window
	g.program = r.URL.Query().Get("program")
	if s.cl == nil || r.URL.Query().Get("scope") == "local" {
		g.local = true
		g.fp = "local;" + s.localFingerprint(window)
		return g, true
	}

	g.exports = map[string]*store.Export{s.cl.Self(): s.st.Export(window)}
	// hinters[id] = reachable exporters with queued hints for pusher id.
	g.hinters = make(map[string]map[string]bool)
	noteHints := func(peer string, hinted map[string][]string) {
		for id := range hinted {
			if g.hinters[id] == nil {
				g.hinters[id] = make(map[string]bool)
			}
			g.hinters[id][peer] = true
		}
	}
	if s.repl != nil {
		noteHints(s.cl.Self(), s.repl.hints.hintedPushers())
	}
	var unreachable []string
	legs := s.cl.ScatterDeltas(r.Context(), r.URL.Query().Get("window"))
	for _, sr := range legs {
		if sr.Err != nil {
			unreachable = append(unreachable, sr.Peer)
			continue
		}
		g.exports[sr.Peer] = sr.Export
		noteHints(sr.Peer, sr.Hinted)
	}

	partial := make(map[string]bool)
	if len(unreachable) >= s.cl.RF() {
		// Fewer than RF down peers provably hold no keyed data that a
		// surviving replica does not also hold; at RF and beyond a
		// whole replica set may be dark, so name the holes.
		for _, peer := range unreachable {
			partial[peer] = true
		}
	}
	for _, hs := range g.hinters {
		// Two reachable nodes hinting for the same pusher diverged —
		// each holds acked batches the other lacks (both coordinated
		// while the other looked down), and any single holder choice
		// undercounts. Name both; drains converge them shortly.
		if len(hs) >= 2 {
			for peer := range hs {
				partial[peer] = true
			}
		}
	}
	if len(partial) > 0 {
		for peer := range partial {
			g.incomplete = append(g.incomplete, peer)
		}
		sort.Strings(g.incomplete)
		// A header, not a body field, so /v1/profile's body stays
		// byte-identical to what a complete fleet would produce when
		// the missing peers happen to hold no rows for this view.
		w.Header().Set("X-Witch-Incomplete", strings.Join(g.incomplete, ","))
	}
	g.fp = s.fleetFingerprint(window, legs)
	return g, true
}

// materialize pays the merge a gathered query describes. Holder choice
// is the hint-aware selection documented above — preserved exactly
// from the pre-delta scatter path.
func (s *Server) materialize(g gathered) *agg.Aggregator {
	defer s.cfg.Obs.StageSince(obs.StageFold, s.cfg.Obs.Start())
	if g.local {
		return s.st.Query(g.window)
	}
	view := agg.New()
	pushers := make(map[string]bool)
	for _, peer := range s.cl.Peers() {
		exp := g.exports[peer]
		if exp == nil {
			continue
		}
		if exp.Unkeyed != nil {
			view.MergeState(exp.Unkeyed)
		}
		for id := range exp.Parts {
			pushers[id] = true
		}
	}
	ids := make([]string, 0, len(pushers))
	for id := range pushers {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		// One holder per pusher: a hinter for this pusher beats every
		// non-hinter (its copy subsumes the undrained destination's),
		// then lowest preference index. Replicas and repaired copies of
		// the same partition thus collapse to a single contribution
		// instead of double-counting.
		penalty := len(s.cl.Peers()) + 1
		best, bestIdx := "", 2*penalty+1
		for peer, exp := range g.exports {
			if exp.Parts[id] == nil {
				continue
			}
			idx := s.cl.PreferenceIndex(id, peer)
			if len(g.hinters[id]) > 0 && !g.hinters[id][peer] {
				idx += penalty
			}
			if idx < bestIdx {
				best, bestIdx = peer, idx
			}
		}
		view.MergeState(g.exports[best].Parts[id])
	}
	return view
}

// view resolves and materializes in one step — the compatibility shape
// for callers that always merge.
func (s *Server) view(w http.ResponseWriter, r *http.Request) (view *agg.Aggregator, tool, program string, incomplete []string, ok bool) {
	g, ok := s.gather(w, r)
	if !ok {
		return nil, "", "", nil, false
	}
	return s.materialize(g), g.tool, g.program, g.incomplete, true
}

func (s *Server) handleTop(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	// Validate the cheap parameter before paying for a fleet scatter.
	// Anything non-numeric, zero, negative, or past the response-size
	// cap is a caller bug worth a loud 400, not a silent default.
	n := 20
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v <= 0 || v > s.cfg.MaxTopN {
			httpError(w, http.StatusBadRequest, "bad n %q: need an integer in [1, %d]", raw, s.cfg.MaxTopN)
			return
		}
		n = v
	}
	o := s.cfg.Obs
	qStart := o.Start()
	sp := o.StartSpan(r.Header.Get(obs.TraceHeader), "query")
	if sp.Active() {
		r = r.WithContext(obs.ContextWithSpan(r.Context(), sp.Context()))
	}
	g, ok := s.gather(w, r)
	if !ok {
		sp.End()
		return
	}
	s.queries.Add(1)
	defer func() {
		if o == nil {
			return
		}
		d := time.Since(qStart)
		o.Stage(obs.StageQuery, d)
		sp.End()
		o.CaptureSlow("query", sp.Context(), "", 0, "top "+g.tool, qStart, d)
	}()
	s.serveCached(w, respKey("top", g, strconv.Itoa(n)), func() *respEntry {
		view := s.materialize(g)
		// SnapshotTop ranks only the n pairs the response carries —
		// heap selection instead of sorting the whole population.
		prof := view.SnapshotTop(g.tool, g.program, n)
		if prof == nil {
			httpError(w, http.StatusNotFound, "no profiles for tool %q (program %q) in window", g.tool, g.program)
			return nil
		}
		out := map[string]any{
			"tool":       g.tool,
			"program":    prof.Program,
			"programs":   view.Programs(g.tool),
			"redundancy": prof.Redundancy,
			"waste":      prof.Waste,
			"use":        prof.Use,
			"pairs":      prof.TopPairs(n),
		}
		if len(g.incomplete) > 0 {
			out["incomplete"] = g.incomplete
		}
		body, err := json.Marshal(out)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "encoding response: %v", err)
			return nil
		}
		return &respEntry{ctype: "application/json", body: append(body, '\n')}
	})
}

func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	o := s.cfg.Obs
	qStart := o.Start()
	sp := o.StartSpan(r.Header.Get(obs.TraceHeader), "query")
	if sp.Active() {
		r = r.WithContext(obs.ContextWithSpan(r.Context(), sp.Context()))
	}
	g, ok := s.gather(w, r)
	if !ok {
		sp.End()
		return
	}
	s.queries.Add(1)
	defer func() {
		if o == nil {
			return
		}
		d := time.Since(qStart)
		o.Stage(obs.StageQuery, d)
		sp.End()
		o.CaptureSlow("query", sp.Context(), "", 0, "profile "+g.tool, qStart, d)
	}()
	s.serveCached(w, respKey("profile", g, ""), func() *respEntry {
		prof := s.materialize(g).Snapshot(g.tool, g.program)
		if prof == nil {
			httpError(w, http.StatusNotFound, "no profiles for tool %q (program %q) in window", g.tool, g.program)
			return nil
		}
		// Compact on the wire: indented output is for files and humans; a
		// fleet dashboard polling /v1/profile pays ~2x bytes for indentation.
		var buf bytes.Buffer
		prof.WriteJSONCompact(&buf)
		return &respEntry{ctype: "application/json", body: buf.Bytes()}
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	health, profiles := s.st.Health()
	status := "ok"
	if health.Degraded {
		status = "degraded"
	}
	out := map[string]any{
		"status":           status,
		"state":            StateName(s.state.Load()),
		"profiles":         profiles,
		"batches":          s.batches.Load(),
		"rejected_batches": s.rejected.Load(),
		"shed_batches":     s.shed.Load(),
		"forwarded_in":     s.forwardedIn.Load(),
		"replicated_in":    s.replicatedIn.Load(),
		"ring_mismatches":  s.ringMismatches.Load(),
		"tools":            s.st.Tools(),
		"health":           health,
		"store":            s.st.Stats(),
		"dedup":            s.ded.Stats(),
		"build":            buildInfoBlock(),
	}
	if o := s.cfg.Obs; o != nil {
		held, recorded, dropped := o.TracerStats()
		kept, captured := o.SlowStats()
		out["obs"] = map[string]any{
			"tracing":        o.TracingEnabled(),
			"spans_held":     held,
			"spans_recorded": recorded,
			"spans_evicted":  dropped,
			"slow_kept":      kept,
			"slow_captured":  captured,
		}
	}
	if s.cl != nil {
		out["cluster"] = s.cl.StatsSnapshot()
		out["ring"] = s.cl.RingHash()
	}
	if s.repl != nil {
		out["replication"] = s.repl.stats()
	}
	if p := s.pers; p != nil {
		out["durability"] = map[string]any{
			"journal_lsn":       p.journal.LastLSN(),
			"journal_failed":    p.journal.Failed(),
			"journal_errors":    p.journalErrors.Load(),
			"unsynced_bytes":    p.journal.UnsyncedBytes(),
			"snapshots_taken":   p.snapshots.Load(),
			"snapshot_errors":   p.snapErrors.Load(),
			"last_snapshot_lsn": p.lastSnapLSN.Load(),
			"recovery":          p.recovery,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(out)
}
