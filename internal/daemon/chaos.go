package daemon

import (
	"bytes"
	"net/http"

	"repro/internal/fault"
)

// ChaosHandler is the daemon-side network-fault seam: it wraps a
// handler and injects the two failure classes that can only be
// simulated after the server has committed work.
//
//   - fault.LostAck: the request is processed fully (journaled, merged,
//     dedup-marked) and then the connection is torn down without a
//     response — the client sees a network error for a batch the daemon
//     accepted. This is THE failure exactly-once delivery exists for:
//     a correct client must retry, and a correct daemon must re-ack
//     that retry without re-merging.
//   - fault.RespCorrupt: the request is processed fully, then the real
//     response is replaced with a garbled 502 — the client's retry
//     path, again absorbed by dedup.
//
// Only mutating requests (POST) are chaos-eligible; reads pass through
// untouched so a harness can interrogate the daemon's state through the
// same handler it is torturing.
func ChaosHandler(inner http.Handler, inj *fault.Injector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			inner.ServeHTTP(w, r)
			return
		}
		lost := inj.Should(fault.LostAck)
		corrupt := !lost && inj.Should(fault.RespCorrupt)
		if !lost && !corrupt {
			inner.ServeHTTP(w, r)
			return
		}
		// The inner handler must run to completion against a buffered
		// writer — the whole point is that the work commits and only the
		// response is destroyed.
		rec := &discardResponse{hdr: make(http.Header)}
		inner.ServeHTTP(rec, r)
		if lost {
			// ErrAbortHandler makes net/http drop the connection without
			// writing anything — from the client this is a mid-response
			// disconnect after a successful commit.
			panic(http.ErrAbortHandler)
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.WriteHeader(http.StatusBadGateway)
		w.Write([]byte("\x00\xff witchd chaos: response corrupted in flight \xff\x00"))
	})
}

// discardResponse swallows the inner handler's response so chaos can
// replace it after the handler commits.
type discardResponse struct {
	hdr    http.Header
	status int
	body   bytes.Buffer
}

func (d *discardResponse) Header() http.Header { return d.hdr }

func (d *discardResponse) WriteHeader(status int) { d.status = status }

func (d *discardResponse) Write(p []byte) (int, error) {
	if d.status == 0 {
		d.status = http.StatusOK
	}
	return d.body.Write(p)
}
