package daemon

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wal"
)

// Hinted handoff: when a replica-set member is unreachable at ack
// time, the coordinator does not drop RF — it journals a hint record
// (the full batch plus its key and arrival time) in a per-peer hint
// journal, durably, before acking the pusher. A background drainer
// replays hints through the normal /v1/replicate path when the peer
// heals; the peer's dedup window makes replays idempotent, so a crash
// between replay and cursor advance re-sends harmlessly.
//
// Hint record framing (inside a wal record payload):
//
//	[8-byte big-endian unix-nano]
//	[uvarint len(id)][id]
//	[uvarint seq]
//	[uvarint len(ctype)][ctype]
//	[body]
func encodeHint(ts time.Time, id string, seq uint64, ctype string, body []byte) []byte {
	rec := make([]byte, 8, 8+2*binary.MaxVarintLen64+len(id)+len(ctype)+len(body))
	binary.BigEndian.PutUint64(rec, uint64(ts.UnixNano()))
	rec = binary.AppendUvarint(rec, uint64(len(id)))
	rec = append(rec, id...)
	rec = binary.AppendUvarint(rec, seq)
	rec = binary.AppendUvarint(rec, uint64(len(ctype)))
	rec = append(rec, ctype...)
	return append(rec, body...)
}

func decodeHint(payload []byte) (ts time.Time, id string, seq uint64, ctype string, body []byte, ok bool) {
	if len(payload) < 8 {
		return ts, "", 0, "", nil, false
	}
	ts = time.Unix(0, int64(binary.BigEndian.Uint64(payload)))
	rest := payload[8:]
	idLen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < idLen {
		return ts, "", 0, "", nil, false
	}
	id = string(rest[n : n+int(idLen)])
	rest = rest[n+int(idLen):]
	seq, n = binary.Uvarint(rest)
	if n <= 0 {
		return ts, "", 0, "", nil, false
	}
	rest = rest[n:]
	ctLen, n := binary.Uvarint(rest)
	if n <= 0 || uint64(len(rest)-n) < ctLen {
		return ts, "", 0, "", nil, false
	}
	ctype = string(rest[n : n+int(ctLen)])
	return ts, id, seq, ctype, rest[n+int(ctLen):], true
}

// memHint is one queued hint in memory-only mode (no data dir: the
// daemon itself is volatile, so volatile hints lower nothing).
type memHint struct {
	ts    time.Time
	id    string
	seq   uint64
	ctype string
	body  []byte
}

// hintPeer is one destination peer's hint queue. mu serializes appends
// against drains, so a drain never races a write into the same
// journal.
type hintPeer struct {
	mu    sync.Mutex
	j     *wal.Journal // nil in memory mode
	dir   string
	acked uint64 // highest LSN confirmed replicated (disk mode)
	mem   []memHint
	// pending/bytes/perID mirror the journal suffix past acked so
	// metrics and the repair guard never scan disk. Guarded by mu.
	pending int
	bytes   int64
	perID   map[string]int
}

// hintStore manages every peer's hint queue.
type hintStore struct {
	dir      string // "" = memory mode
	maxBytes int64
	walOpts  wal.Options
	logf     func(string, ...any)

	mu    sync.Mutex
	peers map[string]*hintPeer

	queued       atomic.Uint64 // hints accepted (durable or queued)
	replayed     atomic.Uint64 // hints delivered to their peer
	dropped      atomic.Uint64 // hints lost to the per-peer byte bound
	rejected     atomic.Uint64 // hints a healed peer durably refused (4xx)
	appendErrors atomic.Uint64 // hint appends that failed (batch was shed)
}

// sanitizePeer turns a peer URL into a directory name.
func sanitizePeer(peer string) string {
	out := make([]byte, len(peer))
	for i := 0; i < len(peer); i++ {
		c := peer[i]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') || c == '.' || c == '-' {
			out[i] = c
		} else {
			out[i] = '_'
		}
	}
	return string(out)
}

// openHintStore builds the store and reopens any hint journals a
// previous process left behind, recounting their pending suffixes —
// hints are acked-data copies and must survive the coordinator's own
// crash.
func openHintStore(dir string, maxBytes int64, walOpts wal.Options, peers []string, logf func(string, ...any)) (*hintStore, error) {
	hs := &hintStore{
		dir:      dir,
		maxBytes: maxBytes,
		walOpts:  walOpts,
		logf:     logf,
		peers:    make(map[string]*hintPeer),
	}
	if dir == "" {
		return hs, nil
	}
	for _, peer := range peers {
		pdir := filepath.Join(dir, sanitizePeer(peer))
		if _, err := os.Stat(pdir); err != nil {
			continue // no leftover hints for this peer
		}
		hp, err := hs.openPeer(peer)
		if err != nil {
			return nil, err
		}
		_ = hp
	}
	return hs, nil
}

// peerFor returns (creating if needed) the peer's queue.
func (hs *hintStore) peerFor(peer string) (*hintPeer, error) {
	hs.mu.Lock()
	hp := hs.peers[peer]
	hs.mu.Unlock()
	if hp != nil {
		return hp, nil
	}
	return hs.openPeer(peer)
}

func (hs *hintStore) openPeer(peer string) (*hintPeer, error) {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	if hp := hs.peers[peer]; hp != nil {
		return hp, nil
	}
	hp := &hintPeer{perID: make(map[string]int)}
	if hs.dir != "" {
		hp.dir = filepath.Join(hs.dir, sanitizePeer(peer))
		if err := os.MkdirAll(hp.dir, 0o755); err != nil {
			return nil, fmt.Errorf("hint dir for %s: %w", peer, err)
		}
		j, err := wal.Open(hp.dir, hs.walOpts)
		if err != nil {
			return nil, fmt.Errorf("hint journal for %s: %w", peer, err)
		}
		hp.j = j
		hp.mu.Lock()
		hp.recountLocked()
		hp.mu.Unlock()
	}
	hs.peers[peer] = hp
	return hp, nil
}

// recountLocked rebuilds the pending counters from the journal suffix
// past acked. Caller holds hp.mu; disk mode only.
func (hp *hintPeer) recountLocked() {
	hp.pending, hp.bytes = 0, 0
	hp.perID = make(map[string]int)
	_ = wal.Replay(hp.dir, hp.acked, func(r wal.Record) error {
		_, id, _, _, _, ok := decodeHint(r.Payload)
		if !ok {
			return nil
		}
		hp.pending++
		hp.bytes += int64(len(r.Payload))
		hp.perID[id]++
		return nil
	})
}

// append queues one batch for peer, durably in disk mode: the append
// (and its fsync, per the wal options) completes before the
// coordinator may ack the pusher. An error means the hint is NOT safe
// and the batch must be shed un-acked.
func (hs *hintStore) append(peer string, ts time.Time, id string, seq uint64, ctype string, body []byte) error {
	hp, err := hs.peerFor(peer)
	if err != nil {
		hs.appendErrors.Add(1)
		return err
	}
	hp.mu.Lock()
	defer hp.mu.Unlock()
	if hp.j != nil {
		if _, err := hp.j.Append(encodeHint(ts, id, seq, ctype, body)); err != nil {
			hs.appendErrors.Add(1)
			return err
		}
		hp.pending++
		hp.bytes += int64(len(body)) + int64(len(id)) + int64(len(ctype)) + 16
		hp.perID[id]++
		hs.queued.Add(1)
		hs.enforceBoundLocked(hp, peer)
		return nil
	}
	hp.mem = append(hp.mem, memHint{ts: ts, id: id, seq: seq, ctype: ctype,
		body: append([]byte(nil), body...)})
	hp.pending++
	hp.bytes += int64(len(body))
	hp.perID[id]++
	hs.queued.Add(1)
	for hs.maxBytes > 0 && hp.bytes > hs.maxBytes && len(hp.mem) > 0 {
		old := hp.mem[0]
		hp.mem = hp.mem[1:]
		hp.pending--
		hp.bytes -= int64(len(old.body))
		hp.perID[old.id]--
		hs.dropped.Add(1)
	}
	return nil
}

// enforceBoundLocked evicts oldest hint segments past the byte bound.
// Dropped hints are counted, not lost forever: the data still lives on
// this node, and anti-entropy repair re-converges the peer when it
// returns (slower than a hint replay, but bounded disk wins). Caller
// holds hp.mu; disk mode only.
func (hs *hintStore) enforceBoundLocked(hp *hintPeer, peer string) {
	if hs.maxBytes <= 0 || hp.j.SizeBytes() <= hs.maxBytes {
		return
	}
	for hp.j.SizeBytes() > hs.maxBytes {
		first, last, ok, err := hp.j.EvictOldest()
		if err != nil {
			if hs.logf != nil {
				hs.logf("witchd: hint eviction for %s: %v", peer, err)
			}
			return
		}
		if !ok {
			// Only the active segment remains; rotate it out and retry
			// once so the bound is enforceable even mid-segment.
			if err := hp.j.Rotate(); err != nil {
				return
			}
			if _, _, ok, _ = hp.j.EvictOldest(); !ok {
				return
			}
		}
		_ = first
		if last > hp.acked {
			hp.acked = last
		}
	}
	before := hp.pending
	hp.recountLocked()
	if before > hp.pending {
		hs.dropped.Add(uint64(before - hp.pending))
	}
}

// pending reports one peer's queued hint count.
func (hs *hintStore) pendingCount(peer string) int {
	hs.mu.Lock()
	hp := hs.peers[peer]
	hs.mu.Unlock()
	if hp == nil {
		return 0
	}
	hp.mu.Lock()
	defer hp.mu.Unlock()
	return hp.pending
}

// pendingFor reports how many queued hints (any peer) carry pusher id.
// The repair loop refuses to pull a partition while its own undelivered
// hints still reference it: those hints are local batches the digest
// source may lack, and a pull would replace the superset with the
// subset. Draining first removes the hazard.
func (hs *hintStore) pendingFor(id string) int {
	hs.mu.Lock()
	peers := make([]*hintPeer, 0, len(hs.peers))
	for _, hp := range hs.peers {
		peers = append(peers, hp)
	}
	hs.mu.Unlock()
	n := 0
	for _, hp := range peers {
		hp.mu.Lock()
		n += hp.perID[id]
		hp.mu.Unlock()
	}
	return n
}

// errHintStop aborts a drain replay at the first undeliverable hint
// (order must be preserved per peer — skipping would reorder batches
// around the dedup window's stale bound).
var errHintStop = errors.New("hint drain: peer failed mid-replay")

// errHintRejected marks a hint the healed peer durably refused (a
// permanent 4xx verdict: same bytes, same answer, forever). Unlike a
// transport failure it does NOT stop the drain — the hint is retired
// (counted rejected) and the queue moves on, because a hint that can
// never land would otherwise pin every newer hint for that peer until
// byte-bound eviction silently dropped them all. The data is still on
// this node; anti-entropy repair remains the follower's path to it.
var errHintRejected = errors.New("hint drain: peer durably rejected hint")

// drain replays peer's queued hints through send, oldest first,
// stopping at the first failure. send is the /v1/replicate leg; the
// peer's dedup window makes re-sends after a cursor crash idempotent.
// A send returning errHintRejected retires that hint and continues.
func (hs *hintStore) drain(ctx context.Context, peer string, send func(ts time.Time, id string, seq uint64, ctype string, body []byte) error) {
	hp, err := hs.peerFor(peer)
	if err != nil {
		return
	}
	hp.mu.Lock()
	defer hp.mu.Unlock()
	if hp.j == nil {
		for len(hp.mem) > 0 {
			h := hp.mem[0]
			err := send(h.ts, h.id, h.seq, h.ctype, h.body)
			if err != nil && !errors.Is(err, errHintRejected) {
				return
			}
			hp.mem = hp.mem[1:]
			hp.pending--
			hp.bytes -= int64(len(h.body))
			hp.perID[h.id]--
			if err != nil {
				hs.rejected.Add(1)
			} else {
				hs.replayed.Add(1)
			}
			if ctx.Err() != nil {
				return
			}
		}
		return
	}
	start := hp.acked
	_ = wal.Replay(hp.dir, hp.acked, func(r wal.Record) error {
		ts, id, seq, ctype, body, ok := decodeHint(r.Payload)
		if !ok {
			// Unreadable hint: skip it (counted dropped) rather than
			// wedging the queue forever.
			hp.acked = r.LSN
			hs.dropped.Add(1)
			return nil
		}
		if err := send(ts, id, seq, ctype, body); err != nil {
			if !errors.Is(err, errHintRejected) {
				return errHintStop
			}
			hp.acked = r.LSN
			hs.rejected.Add(1)
			return nil
		}
		hp.acked = r.LSN
		hs.replayed.Add(1)
		if ctx.Err() != nil {
			return errHintStop
		}
		return nil
	})
	if hp.acked > start {
		hp.recountLocked()
		_, _ = hp.j.RemoveThrough(hp.acked)
	}
}

// HintPeerStats is one peer's row in the hint metrics.
type HintPeerStats struct {
	Peer    string `json:"peer"`
	Pending int    `json:"pending"`
	Bytes   int64  `json:"bytes"`
}

// stats returns per-peer pending hints, sorted by peer.
func (hs *hintStore) stats() []HintPeerStats {
	hs.mu.Lock()
	names := make([]string, 0, len(hs.peers))
	for p := range hs.peers {
		names = append(names, p)
	}
	hs.mu.Unlock()
	sort.Strings(names)
	out := make([]HintPeerStats, 0, len(names))
	for _, p := range names {
		hs.mu.Lock()
		hp := hs.peers[p]
		hs.mu.Unlock()
		hp.mu.Lock()
		out = append(out, HintPeerStats{Peer: p, Pending: hp.pending, Bytes: hp.bytes})
		hp.mu.Unlock()
	}
	return out
}

// hintedPushers maps each pusher id with queued hints anywhere to the
// sorted destination peers those hints are bound for. This is the
// ledger a /v1/shard export ships alongside the data: a node holding
// hints for a pusher provably holds that pusher's batches locally too
// (hint and journal record were written by the same ack), so the query
// gather prefers it as the partition holder over a destination that
// may not have caught up yet. Returns nil when nothing is queued.
func (hs *hintStore) hintedPushers() map[string][]string {
	hs.mu.Lock()
	names := make([]string, 0, len(hs.peers))
	for p := range hs.peers {
		names = append(names, p)
	}
	hs.mu.Unlock()
	sort.Strings(names)
	var out map[string][]string
	for _, p := range names {
		hs.mu.Lock()
		hp := hs.peers[p]
		hs.mu.Unlock()
		hp.mu.Lock()
		for id, n := range hp.perID {
			if n <= 0 {
				continue
			}
			if out == nil {
				out = make(map[string][]string)
			}
			out[id] = append(out[id], p)
		}
		hp.mu.Unlock()
	}
	return out
}

// totalPending sums every peer's queue.
func (hs *hintStore) totalPending() int {
	n := 0
	for _, st := range hs.stats() {
		n += st.Pending
	}
	return n
}

// close flushes and closes every hint journal (graceful shutdown).
func (hs *hintStore) close() {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	for _, hp := range hs.peers {
		if hp.j != nil {
			hp.j.Close()
		}
	}
}

// abandon drops the journals without syncing — the kill -9 path.
func (hs *hintStore) abandon() {
	hs.mu.Lock()
	defer hs.mu.Unlock()
	for _, hp := range hs.peers {
		if hp.j != nil {
			hp.j.Abandon()
		}
	}
}
