package daemon

import (
	"net/http"
	"time"
)

// HardenedServer builds an http.Server with the protection limits a
// daemon facing a fleet of pushers (and whatever else can reach its
// port) needs. The zero-value http.Server has none of them: a single
// client that opens a connection and trickles header bytes — or simply
// goes silent — holds a file descriptor and a goroutine forever
// (slow-loris). readHeaderTimeout <= 0 takes the default.
func HardenedServer(h http.Handler, readHeaderTimeout time.Duration) *http.Server {
	if readHeaderTimeout <= 0 {
		readHeaderTimeout = 10 * time.Second
	}
	return &http.Server{
		Handler: h,
		// A well-behaved pusher sends its entire header burst in one
		// round trip; anyone still dribbling after this is a slow-loris.
		ReadHeaderTimeout: readHeaderTimeout,
		// Bodies are bounded by MaxBody (default 32 MiB); even over a
		// slow link a legitimate ingest finishes far inside this.
		ReadTimeout: 2 * time.Minute,
		// Keep-alive is welcome (pushers reuse connections), but an idle
		// connection is not a lease on a file descriptor.
		IdleTimeout: 2 * time.Minute,
		// Header space for the idempotency key and friends is a few
		// hundred bytes; 64 KiB is generous, the 1 MiB default is a gift
		// to memory-exhaustion attacks.
		MaxHeaderBytes: 64 << 10,
	}
}
