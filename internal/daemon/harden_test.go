package daemon

import (
	"bufio"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/store"
)

// startHardened serves the daemon through HardenedServer on a loopback
// listener and returns its address plus a shutdown func.
func startHardened(t *testing.T, readHeaderTimeout time.Duration) string {
	t.Helper()
	st := store.New(store.Config{})
	srv := NewServer(st, Config{})
	srv.SetState(StateServing)
	hs := HardenedServer(srv.Handler(), readHeaderTimeout)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return ln.Addr().String()
}

// TestHardenedServerDisconnectsSlowLoris is the satellite for the
// header-timeout hardening: a client that trickles its request header
// and never finishes must be disconnected once ReadHeaderTimeout
// expires, instead of pinning a connection (and, under MaxInflight, an
// admission slot) forever.
func TestHardenedServerDisconnectsSlowLoris(t *testing.T) {
	addr := startHardened(t, 150*time.Millisecond)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// Drip the request one header fragment at a time, never sending the
	// terminating blank line.
	start := time.Now()
	fmt.Fprintf(conn, "POST /v1/ingest HTTP/1.1\r\n")
	deadline := time.Now().Add(5 * time.Second)
	disconnected := false
	for i := 0; time.Now().Before(deadline); i++ {
		if _, err := fmt.Fprintf(conn, "X-Drip-%d: v\r\n", i); err != nil {
			disconnected = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !disconnected {
		// The write path may buffer past the reset; a read observes it.
		conn.SetReadDeadline(time.Now().Add(time.Second))
		if _, err := conn.Read(make([]byte, 1)); err == nil {
			t.Fatal("slow-loris connection still alive after 5s against a 150ms header timeout")
		}
	}
	if lived := time.Since(start); lived > 3*time.Second {
		t.Fatalf("slow-loris connection survived %v, want disconnect shortly after the 150ms header timeout", lived)
	}

	// The server is still healthy for well-formed clients afterwards.
	conn2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	fmt.Fprintf(conn2, "GET /healthz HTTP/1.1\r\nHost: witchd\r\n\r\n")
	conn2.SetReadDeadline(time.Now().Add(2 * time.Second))
	resp, err := http.ReadResponse(bufio.NewReader(conn2), nil)
	if err != nil {
		t.Fatalf("healthz after slow-loris: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after slow-loris: %d", resp.StatusCode)
	}
}

// TestHardenedServerDefaults pins the hardening knobs so a refactor
// cannot silently drop them back to net/http's unlimited defaults.
func TestHardenedServerDefaults(t *testing.T) {
	hs := HardenedServer(http.NotFoundHandler(), 0)
	if hs.ReadHeaderTimeout <= 0 {
		t.Fatal("zero readHeaderTimeout must fall back to a positive default")
	}
	if hs.ReadTimeout <= 0 || hs.IdleTimeout <= 0 || hs.MaxHeaderBytes <= 0 {
		t.Fatalf("hardening knobs unset: read=%v idle=%v maxHeader=%d",
			hs.ReadTimeout, hs.IdleTimeout, hs.MaxHeaderBytes)
	}
}
