package fault

import "testing"

func TestZeroPlanIsInert(t *testing.T) {
	if (Plan{}).Enabled() {
		t.Fatal("zero plan must be disabled")
	}
	if in := NewInjector(Plan{}); in != nil {
		t.Fatal("disabled plan must yield a nil injector")
	}
	// A nil injector must be safe and inject nothing.
	var in *Injector
	for i := 0; i < 100; i++ {
		if in.Should(ArmEBUSY) || in.Should(SignalDrop) {
			t.Fatal("nil injector injected")
		}
	}
	if in.TotalInjected() != 0 || in.Injected(ArmEBUSY) != 0 || in.Opportunities(ArmEBUSY) != 0 {
		t.Fatal("nil injector counted something")
	}
}

func TestDeterministicStreams(t *testing.T) {
	mk := func() []bool {
		in := NewInjector(Uniform(0.3, 42))
		var out []bool
		for i := 0; i < 500; i++ {
			out = append(out, in.Should(ArmEBUSY))
		}
		return out
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("opportunity %d differs across identical plans", i)
		}
	}
}

func TestClassIndependence(t *testing.T) {
	// The ArmEBUSY stream must not shift when another class's rate
	// changes (independent per-class PRNGs).
	seq := func(plan Plan) []bool {
		in := NewInjector(plan)
		var out []bool
		for i := 0; i < 300; i++ {
			// Interleave opportunities of another class.
			in.Should(SignalDrop)
			out = append(out, in.Should(ArmEBUSY))
		}
		return out
	}
	base := Plan{Seed: 7, ArmEBUSY: 0.25}
	other := Plan{Seed: 7, ArmEBUSY: 0.25, SignalDrop: 0.9}
	a, b := seq(base), seq(other)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("arm stream shifted at %d when signal-drop rate changed", i)
		}
	}
}

func TestRateIsRespected(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, SignalDrop: 0.2})
	const n = 20000
	for i := 0; i < n; i++ {
		in.Should(SignalDrop)
	}
	got := float64(in.Injected(SignalDrop)) / n
	if got < 0.17 || got > 0.23 {
		t.Fatalf("injection frequency %.3f, want ~0.2", got)
	}
	if in.Opportunities(SignalDrop) != n {
		t.Fatalf("opportunities = %d", in.Opportunities(SignalDrop))
	}
}

func TestBurstWindows(t *testing.T) {
	// Base rate zero, bursts certain: exactly the first BurstLen of
	// every BurstEvery opportunities inject.
	in := NewInjector(Plan{Seed: 3, BurstEvery: 100, BurstLen: 10, BurstRate: 1})
	for i := 0; i < 1000; i++ {
		want := uint64(i)%100 < 10
		if got := in.Should(ModifyFail); got != want {
			t.Fatalf("opportunity %d: injected=%v want %v", i, got, want)
		}
	}
	if in.Injected(ModifyFail) != 100 {
		t.Fatalf("injected = %d, want 100", in.Injected(ModifyFail))
	}
}

func TestRateOneAlwaysInjects(t *testing.T) {
	in := NewInjector(Plan{Seed: 9, LBROutage: 1})
	for i := 0; i < 50; i++ {
		if !in.Should(LBROutage) {
			t.Fatalf("rate 1 must always inject (opportunity %d)", i)
		}
	}
}
