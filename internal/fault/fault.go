// Package fault is a deterministic, seeded fault-injection plan for the
// simulated perf/watchpoint substrate. The real Witch runs on
// perf_event_open, debug registers, and signals, all of which fail in
// production: perf_event_open returns EBUSY when a debugger or another
// profiler holds DR0–DR3, IOC_MODIFY_ATTRIBUTES is absent on older
// kernels (forcing the §5 close+reopen slow path), perf mmap rings
// overflow and drop records, signal delivery coalesces under load, and
// LBR capture can be transiently unavailable. The simulated substrate
// cannot fail on its own, so this package supplies the failures: each
// fault class has a base rate (probability per opportunity) plus optional
// periodic burst windows where a boosted rate applies, driven by an
// independent per-class PRNG stream so enabling one class never shifts
// the injection points of another.
//
// An all-zero Plan is provably inert: Injector.Should returns false
// before touching any PRNG, and the substrate packages skip their fault
// branches entirely when no injector is installed.
package fault

import (
	"math/rand"
	"sync"
)

// Class is one injectable fault class.
type Class uint8

// Fault classes, each mapping to a real failure mode of the perf
// substrate (see docs/INTERNALS.md, "Fault model & degraded modes").
const (
	// ArmEBUSY fails watchpoint creation the way perf_event_open fails
	// with EBUSY when another tool holds the debug registers.
	ArmEBUSY Class = iota
	// ModifyFail fails PERF_EVENT_IOC_MODIFY_ATTRIBUTES (absent ioctl,
	// older kernel), forcing the close+reopen slow path.
	ModifyFail
	// RingOverflow drops a trap record as a perf mmap ring overflow
	// would, with the loss counted.
	RingOverflow
	// SignalDrop loses a PMU overflow signal (coalesced or dropped
	// delivery under load); the counter period is consumed but no sample
	// reaches the profiler.
	SignalDrop
	// LBROutage makes the Last Branch Record transiently unavailable,
	// forcing precise-PC recovery to disassemble from the function entry.
	LBROutage

	// The disk classes fail the witchd write-ahead journal the way real
	// filesystems fail, injected via the WAL's writer seam (internal/wal).

	// ShortWrite makes a journal append land only a prefix of its bytes
	// (write(2) returning n < len, as on a full or flaky disk); the WAL
	// must roll the partial frame back or refuse the ack.
	ShortWrite
	// SyncFail fails fsync after a fully-written append, so the record's
	// durability is unknown and the batch must not be acknowledged.
	SyncFail
	// TornRecord simulates a crash mid-append: a partial frame is left on
	// disk and the journal is unusable until restart, when recovery must
	// truncate the torn tail back to the last complete record.
	TornRecord
	// ENOSPC fails a journal append outright with no bytes written, as a
	// full filesystem does.
	ENOSPC

	// The network classes fail the pusher→witchd HTTP path the way real
	// networks fail, injected via the client RoundTripper seam
	// (fault.Transport) or the daemon handler seam (daemon.ChaosHandler).

	// ConnRefused fails the dial outright — daemon down or restarting,
	// nothing reaches the wire.
	ConnRefused
	// ReqTimeout times the request out client-side before any response
	// arrives; the client cannot know whether the daemon processed it.
	ReqTimeout
	// RespCorrupt garbles the response after the daemon has processed the
	// request, so a committed batch comes back unreadable.
	RespCorrupt
	// MidBodyCut disconnects mid-request-body: the daemon sees a
	// truncated upload and must reject it without merging.
	MidBodyCut
	// LostAck drops the connection after the daemon has durably committed
	// and merged the batch but before the ack reaches the client — the
	// critical exactly-once case: a naive retry double-counts.
	LostAck

	// NumClasses is the number of fault classes.
	NumClasses = int(LostAck) + 1
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ArmEBUSY:
		return "arm-ebusy"
	case ModifyFail:
		return "modify-fail"
	case RingOverflow:
		return "ring-overflow"
	case SignalDrop:
		return "signal-drop"
	case LBROutage:
		return "lbr-outage"
	case ShortWrite:
		return "short-write"
	case SyncFail:
		return "sync-fail"
	case TornRecord:
		return "torn-record"
	case ENOSPC:
		return "enospc"
	case ConnRefused:
		return "conn-refused"
	case ReqTimeout:
		return "req-timeout"
	case RespCorrupt:
		return "resp-corrupt"
	case MidBodyCut:
		return "mid-body-cut"
	case LostAck:
		return "lost-ack"
	}
	return "unknown"
}

// Plan specifies fault rates. The zero value injects nothing. Rates are
// probabilities per opportunity in [0,1]; an opportunity is one call site
// that could fail (one watchpoint create, one Modify, one ring append,
// one PMU overflow, one precise-PC recovery).
type Plan struct {
	// Seed feeds the per-class PRNG streams; plans with equal seeds and
	// rates inject at identical opportunities.
	Seed int64

	// Per-class base rates.
	ArmEBUSY     float64
	ModifyFail   float64
	RingOverflow float64
	SignalDrop   float64
	LBROutage    float64
	ShortWrite   float64
	SyncFail     float64
	TornRecord   float64
	ENOSPC       float64
	ConnRefused  float64
	ReqTimeout   float64
	RespCorrupt  float64
	MidBodyCut   float64
	LostAck      float64

	// Burst windows model correlated failure (a debugger attaching for a
	// while, a load spike coalescing signals): every BurstEvery
	// opportunities of a class, the first BurstLen opportunities use
	// BurstRate if it exceeds the base rate. BurstEvery == 0 disables
	// bursts.
	BurstEvery uint64
	BurstLen   uint64
	BurstRate  float64
}

// Uniform returns a plan injecting every perf-substrate class at the
// same rate (the disk classes stay zero — they target the witchd WAL,
// not the profiler, and have their own DiskUniform).
func Uniform(rate float64, seed int64) Plan {
	return Plan{
		Seed:     seed,
		ArmEBUSY: rate, ModifyFail: rate, RingOverflow: rate,
		SignalDrop: rate, LBROutage: rate,
	}
}

// rate returns the base rate for a class.
func (p Plan) rate(c Class) float64 {
	switch c {
	case ArmEBUSY:
		return p.ArmEBUSY
	case ModifyFail:
		return p.ModifyFail
	case RingOverflow:
		return p.RingOverflow
	case SignalDrop:
		return p.SignalDrop
	case LBROutage:
		return p.LBROutage
	case ShortWrite:
		return p.ShortWrite
	case SyncFail:
		return p.SyncFail
	case TornRecord:
		return p.TornRecord
	case ENOSPC:
		return p.ENOSPC
	case ConnRefused:
		return p.ConnRefused
	case ReqTimeout:
		return p.ReqTimeout
	case RespCorrupt:
		return p.RespCorrupt
	case MidBodyCut:
		return p.MidBodyCut
	case LostAck:
		return p.LostAck
	}
	return 0
}

// DiskUniform returns a plan injecting only the disk classes, each at
// the same rate — the knob the WAL chaos tests sweep.
func DiskUniform(rate float64, seed int64) Plan {
	return Plan{
		Seed:       seed,
		ShortWrite: rate, SyncFail: rate, TornRecord: rate, ENOSPC: rate,
	}
}

// NetUniform returns a plan injecting only the network classes, each at
// the same rate — the knob the delivery chaos experiment sweeps.
func NetUniform(rate float64, seed int64) Plan {
	return Plan{
		Seed:        seed,
		ConnRefused: rate, ReqTimeout: rate, RespCorrupt: rate,
		MidBodyCut: rate, LostAck: rate,
	}
}

// Enabled reports whether the plan can inject anything at all.
func (p Plan) Enabled() bool {
	if p.BurstEvery > 0 && p.BurstLen > 0 && p.BurstRate > 0 {
		return true
	}
	for c := Class(0); int(c) < NumClasses; c++ {
		if p.rate(c) > 0 {
			return true
		}
	}
	return false
}

// classState is one class's independent injection stream.
type classState struct {
	rng           *rand.Rand
	opportunities uint64
	injected      uint64
}

// Injector executes a Plan. A nil *Injector is valid and injects
// nothing. Safe for concurrent use: the daemon handler seam draws
// opportunities from parallel requests. Each class's stream stays
// deterministic in its own opportunity order; under concurrency the
// interleaving of opportunities onto that stream is the caller's.
type Injector struct {
	mu   sync.Mutex
	plan Plan
	cls  [NumClasses]classState
}

// NewInjector builds an injector for the plan, or nil for a disabled
// plan so callers can gate fault branches on a nil check.
func NewInjector(p Plan) *Injector {
	if !p.Enabled() {
		return nil
	}
	in := &Injector{plan: p}
	for c := range in.cls {
		// A distinct, seed-derived stream per class keeps classes
		// independent: sweeping one rate never re-times another class.
		in.cls[c].rng = rand.New(rand.NewSource(p.Seed ^ (0x9e3779b9*int64(c) + 0x7f4a7c15)))
	}
	return in
}

// Plan returns the injector's plan (zero Plan for nil).
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

// Should consumes one opportunity of class c and reports whether to
// inject a fault there. Deterministic for a given plan: the n-th
// opportunity of a class always gets the same answer.
func (in *Injector) Should(c Class) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	st := &in.cls[c]
	n := st.opportunities
	st.opportunities++
	rate := in.plan.rate(c)
	if in.plan.BurstEvery > 0 && n%in.plan.BurstEvery < in.plan.BurstLen && in.plan.BurstRate > rate {
		rate = in.plan.BurstRate
	}
	if rate <= 0 {
		return false
	}
	if rate < 1 && st.rng.Float64() >= rate {
		return false
	}
	st.injected++
	return true
}

// Injected returns how many faults of class c have been injected.
func (in *Injector) Injected(c Class) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cls[c].injected
}

// Opportunities returns how many opportunities of class c were offered.
func (in *Injector) Opportunities(c Class) uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.cls[c].opportunities
}

// TotalInjected sums injected faults across classes.
func (in *Injector) TotalInjected() uint64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var n uint64
	for c := range in.cls {
		n += in.cls[c].injected
	}
	return n
}
