package fault

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"strings"
)

// Transport is the client-side network fault seam: an http.RoundTripper
// that injects the network fault classes in front of an inner
// transport. It slots into witch.PusherOptions.Client unchanged, so the
// pusher needs no fault-specific code path.
//
// Class semantics at this seam:
//
//   - ConnRefused / ReqTimeout fire before the request is forwarded —
//     the server never sees it.
//   - MidBodyCut truncates the request body mid-stream, so the server
//     sees a short read against Content-Length and must reject.
//   - RespCorrupt garbles a response the server already produced.
//   - LostAck discards a *successful* response after the server has
//     fully processed the request — the client is told the connection
//     died, but the work is committed server-side.
type Transport struct {
	Inner http.RoundTripper
	Inj   *Injector
}

// errTimeout satisfies net.Error so callers treating timeouts specially
// see a faithful failure.
type errTimeout struct{}

func (errTimeout) Error() string   { return "fault: injected request timeout" }
func (errTimeout) Timeout() bool   { return true }
func (errTimeout) Temporary() bool { return true }

// ErrLostAck is returned when an ack is dropped after the server
// committed the batch. Tests assert on it; production callers see just
// another transport error and retry.
var ErrLostAck = errors.New("fault: connection lost after server commit (ack dropped)")

// cutBody truncates a request body after limit bytes, then fails the
// way a torn-down connection does.
type cutBody struct {
	r     io.Reader
	limit int64
	read  int64
}

func (c *cutBody) Read(p []byte) (int, error) {
	if c.read >= c.limit {
		return 0, errors.New("fault: connection cut mid-body")
	}
	if int64(len(p)) > c.limit-c.read {
		p = p[:c.limit-c.read]
	}
	n, err := c.r.Read(p)
	c.read += int64(n)
	if err == nil && c.read >= c.limit {
		err = errors.New("fault: connection cut mid-body")
	}
	return n, err
}

func (c *cutBody) Close() error {
	if cl, ok := c.r.(io.Closer); ok {
		return cl.Close()
	}
	return nil
}

// RoundTrip injects at most one fault per request, checking classes in
// wire order: dial, send, response. A nil injector forwards untouched.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	inner := t.Inner
	if inner == nil {
		inner = http.DefaultTransport
	}
	in := t.Inj
	if in == nil {
		return inner.RoundTrip(req)
	}

	if in.Should(ConnRefused) {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, errors.New("fault: injected connect refused")
	}
	if in.Should(ReqTimeout) {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, errTimeout{}
	}
	if req.Body != nil && req.ContentLength > 1 && in.Should(MidBodyCut) {
		req = req.Clone(req.Context())
		req.Body = &cutBody{r: req.Body, limit: req.ContentLength / 2}
	}

	resp, err := inner.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 400 && in.Should(LostAck) {
		// The server has fully handled the request; only the ack is lost.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return nil, ErrLostAck
	}
	if in.Should(RespCorrupt) {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		resp.StatusCode = http.StatusBadGateway
		resp.Status = "502 Bad Gateway (fault: response corrupted)"
		garbled := bytes.Repeat([]byte{0xff, 0x00, 0x5a}, 16)
		resp.Body = io.NopCloser(bytes.NewReader(garbled))
		resp.ContentLength = int64(len(garbled))
		resp.Header = resp.Header.Clone()
		resp.Header.Set("Content-Type", "application/octet-stream")
	}
	return resp, nil
}

// IsInjectedNetError reports whether err came from this seam — the
// harness uses it to separate injected failures from real ones.
func IsInjectedNetError(err error) bool {
	return err != nil && strings.Contains(err.Error(), "fault: ")
}
