// Package trace records a program's retired-access stream to a compact
// binary format and replays it into any machine.Observer. This separates
// collection from analysis the way production profilers do (hpcrun writes
// measurements, hpcviewer consumes them): an exhaustive tool can be run
// offline over a trace captured once, and regression tests can pin an
// analysis to a stored stream.
//
// Format: the 8-byte magic "WITCHTR1", then fixed 28-byte little-endian
// records:
//
//	offset  size  field
//	0       1     kind (0 load, 1 store, 2 call, 3 ret)
//	1       1     thread id
//	2       1     access width (loads/stores)
//	3       1     flags (bit 0: float datum)
//	4       8     pc (call site for calls)
//	12      8     addr (callee function index for calls)
//	20      8     value
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/pmu"
)

// Event kinds.
const (
	KindLoad  = 0
	KindStore = 1
	KindCall  = 2
	KindRet   = 3
)

var magic = [8]byte{'W', 'I', 'T', 'C', 'H', 'T', 'R', '1'}

const recordBytes = 28

// Event is one decoded trace record.
type Event struct {
	Kind  uint8
	TID   uint8
	Width uint8
	Float bool
	PC    isa.PC
	Addr  uint64 // callee function index for KindCall
	Value uint64
}

// Writer records machine events to a stream. It implements
// machine.Observer, so attaching it to a machine records the run:
//
//	w, _ := trace.NewWriter(f)
//	m.SetObserver(w)
//	m.Run()
//	w.Flush()
type Writer struct {
	bw     *bufio.Writer
	events uint64
	err    error
}

// NewWriter starts a trace stream on w.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, err
	}
	return &Writer{bw: bw}, nil
}

// Events returns the number of records written.
func (tw *Writer) Events() uint64 { return tw.events }

// Flush drains buffered records and reports any deferred write error.
func (tw *Writer) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	return tw.bw.Flush()
}

// write encodes one record.
func (tw *Writer) write(kind, tid, width, flags uint8, pc isa.PC, addr, value uint64) {
	if tw.err != nil {
		return
	}
	var rec [recordBytes]byte
	rec[0], rec[1], rec[2], rec[3] = kind, tid, width, flags
	binary.LittleEndian.PutUint64(rec[4:], uint64(pc))
	binary.LittleEndian.PutUint64(rec[12:], addr)
	binary.LittleEndian.PutUint64(rec[20:], value)
	if _, err := tw.bw.Write(rec[:]); err != nil {
		tw.err = err
		return
	}
	tw.events++
}

// OnAccess implements machine.Observer.
func (tw *Writer) OnAccess(t *machine.Thread, acc *machine.Access) {
	var flags uint8
	if acc.Float {
		flags = 1
	}
	tw.write(uint8(acc.Kind), uint8(t.ID), acc.Width, flags, acc.PC, acc.Addr, acc.Value)
}

// OnCall implements machine.Observer.
func (tw *Writer) OnCall(t *machine.Thread, callee int32, site isa.PC) {
	tw.write(KindCall, uint8(t.ID), 0, 0, site, uint64(callee), 0)
}

// OnRet implements machine.Observer.
func (tw *Writer) OnRet(t *machine.Thread) {
	tw.write(KindRet, uint8(t.ID), 0, 0, 0, 0, 0)
}

// Reader decodes a trace stream.
type Reader struct {
	br *bufio.Reader
}

// NewReader validates the magic and returns a record reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("trace: short header: %w", err)
	}
	if got != magic {
		return nil, errors.New("trace: bad magic")
	}
	return &Reader{br: br}, nil
}

// Next returns the next event, or io.EOF at end of stream.
func (tr *Reader) Next() (Event, error) {
	var rec [recordBytes]byte
	if _, err := io.ReadFull(tr.br, rec[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Event{}, io.EOF
		}
		return Event{}, fmt.Errorf("trace: truncated record: %w", err)
	}
	return Event{
		Kind:  rec[0],
		TID:   rec[1],
		Width: rec[2],
		Float: rec[3]&1 != 0,
		PC:    isa.PC(binary.LittleEndian.Uint64(rec[4:])),
		Addr:  binary.LittleEndian.Uint64(rec[12:]),
		Value: binary.LittleEndian.Uint64(rec[20:]),
	}, nil
}

// Replay feeds a recorded stream into an observer (typically an
// exhaustive Spy), reconstructing per-thread identities. It returns the
// number of events replayed.
func Replay(r io.Reader, obs machine.Observer) (uint64, error) {
	tr, err := NewReader(r)
	if err != nil {
		return 0, err
	}
	// Observers only consult the thread's identity and (on first sight)
	// its live frames; replay threads start at the stream beginning with
	// empty stacks.
	threads := map[uint8]*machine.Thread{}
	thread := func(id uint8) *machine.Thread {
		t := threads[id]
		if t == nil {
			t = &machine.Thread{ID: int(id)}
			threads[id] = t
		}
		return t
	}
	var n uint64
	for {
		ev, err := tr.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
		t := thread(ev.TID)
		switch ev.Kind {
		case KindLoad, KindStore:
			acc := machine.Access{
				Kind:  pmu.AccessKind(ev.Kind),
				PC:    ev.PC,
				Addr:  ev.Addr,
				Width: ev.Width,
				Value: ev.Value,
				Float: ev.Float,
			}
			obs.OnAccess(t, &acc)
		case KindCall:
			obs.OnCall(t, int32(ev.Addr), ev.PC)
			// Mirror the machine's stack so cursor replay-from-frames
			// (for late-attached observers) stays meaningful.
			t.Stack = append(t.Stack, machine.Frame{FuncIdx: int32(ev.Addr), CallSite: ev.PC})
		case KindRet:
			obs.OnRet(t)
			if len(t.Stack) > 0 {
				t.Stack = t.Stack[:len(t.Stack)-1]
			}
		default:
			return n, fmt.Errorf("trace: unknown record kind %d", ev.Kind)
		}
	}
}
