package trace_test

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/exhaustive"
	"repro/internal/machine"
	"repro/internal/trace"
	"repro/internal/workloads"
)

func record(t *testing.T) (*bytes.Buffer, *machine.Machine) {
	t.Helper()
	sp, _ := workloads.SuiteSpec("gcc")
	sp.Iters = 3
	prog := sp.Build(1)
	m := machine.New(prog, machine.Config{})
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m.SetObserver(w)
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Events() == 0 {
		t.Fatal("no events recorded")
	}
	return &buf, m
}

func TestRecordReplayMatchesLiveAnalysis(t *testing.T) {
	buf, m := record(t)

	// Live analysis.
	prog := m.Prog
	live, err := exhaustive.Run(machine.New(prog, machine.Config{}), exhaustive.NewDeadSpy(prog))
	if err != nil {
		t.Fatal(err)
	}

	// Offline analysis over the trace.
	spy := exhaustive.NewDeadSpy(prog)
	n, err := trace.Replay(bytes.NewReader(buf.Bytes()), spy)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing replayed")
	}
	offline := spy.Finish()

	if offline.Waste != live.Waste || offline.Use != live.Use {
		t.Fatalf("offline (%v,%v) != live (%v,%v)", offline.Waste, offline.Use, live.Waste, live.Use)
	}
	// Context attribution must survive the trip too.
	lp, op := live.Tree.Pairs(), offline.Tree.Pairs()
	if len(lp) != len(op) {
		t.Fatalf("pair counts differ: %d vs %d", len(lp), len(op))
	}
	for i := range lp {
		if lp[i].Src != op[i].Src || lp[i].Dst != op[i].Dst || lp[i].Waste != op[i].Waste {
			t.Fatalf("pair %d differs: %+v vs %+v", i, lp[i], op[i])
		}
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	if _, err := trace.NewReader(bytes.NewBufferString("NOTATRACE")); err == nil {
		t.Fatal("expected magic error")
	}
	if _, err := trace.NewReader(bytes.NewBufferString("x")); err == nil {
		t.Fatal("expected short-header error")
	}
}

func TestReaderDetectsTruncation(t *testing.T) {
	buf, _ := record(t)
	cut := buf.Bytes()[:buf.Len()-5] // mid-record
	sp, _ := workloads.SuiteSpec("gcc")
	sp.Iters = 3
	spy := exhaustive.NewDeadSpy(sp.Build(1))
	if _, err := trace.Replay(bytes.NewReader(cut), spy); err == nil {
		t.Fatal("expected truncation error")
	}
}

func TestEventStreamShape(t *testing.T) {
	buf, m := record(t)
	r, err := trace.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var loads, stores, calls, rets uint64
	for {
		ev, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		switch ev.Kind {
		case trace.KindLoad:
			loads++
		case trace.KindStore:
			stores++
		case trace.KindCall:
			calls++
		case trace.KindRet:
			rets++
		}
	}
	th := m.Threads[0]
	if loads != th.Loads || stores != th.Stores {
		t.Fatalf("trace loads/stores %d/%d vs machine %d/%d", loads, stores, th.Loads, th.Stores)
	}
	if calls == 0 || rets == 0 {
		t.Fatal("no call/ret events")
	}
}
