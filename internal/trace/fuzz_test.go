package trace_test

import (
	"bytes"
	"testing"

	"repro/internal/exhaustive"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/trace"
	"repro/internal/workloads"
)

// FuzzReplay feeds arbitrary bytes to the trace reader: it must reject or
// replay cleanly, never panic, and never mis-drive the observer into a
// crash.
func FuzzReplay(f *testing.F) {
	// Seed with a real trace prefix and assorted corruptions.
	sp, _ := workloads.SuiteSpec("bzip2")
	sp.Iters = 1
	prog := sp.Build(1)
	var buf bytes.Buffer
	w, err := trace.NewWriter(&buf)
	if err != nil {
		f.Fatal(err)
	}
	m := newMachine(prog)
	m.SetObserver(w)
	if err := m.Run(); err != nil {
		f.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		f.Fatal(err)
	}
	real := buf.Bytes()
	f.Add(real[:len(real)/2])
	f.Add(real)
	f.Add([]byte("WITCHTR1"))
	f.Add([]byte("WITCHTR1\x09\x00\x00\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		spy := exhaustive.NewDeadSpy(prog)
		_, _ = trace.Replay(bytes.NewReader(data), spy)
	})
}

// newMachine builds a machine for fuzz seeding.
func newMachine(prog *isa.Program) *machine.Machine {
	return machine.New(prog, machine.Config{})
}
