package cct

import (
	"strings"
	"testing"

	"repro/internal/isa"
)

func TestTopDownView(t *testing.T) {
	p := prog()
	tr := New(p)
	watch := tr.NodeForContext(frames(p), isa.MakePC(2, 0))
	trap := tr.NodeForContext(frames(p)[:2], isa.MakePC(1, 0))
	tr.PairNode(watch, trap).Waste = 90
	trap2 := tr.NodeForContext(frames(p)[:1], isa.MakePC(0, 0))
	tr.PairNode(watch, trap2).Waste = 10

	var sb strings.Builder
	tr.TopDown(&sb, 0)
	out := sb.String()
	if !strings.Contains(out, "100.0% main") {
		t.Fatalf("missing root share:\n%s", out)
	}
	if !strings.Contains(out, "=> partner context") {
		t.Fatalf("missing separator:\n%s", out)
	}
	if !strings.Contains(out, "90.0%") || !strings.Contains(out, "10.0%") {
		t.Fatalf("missing split shares:\n%s", out)
	}
	// The 90% subtree must render before the 10% one.
	if strings.Index(out, "90.0%") > strings.Index(out, "10.0%") {
		t.Fatalf("children not sorted by inclusive waste:\n%s", out)
	}
}

func TestTopDownPruning(t *testing.T) {
	p := prog()
	tr := New(p)
	watch := tr.NodeForContext(frames(p), isa.MakePC(2, 0))
	trap := tr.NodeForContext(frames(p)[:2], isa.MakePC(1, 0))
	tr.PairNode(watch, trap).Waste = 99
	trap2 := tr.NodeForContext(frames(p)[:1], isa.MakePC(0, 1))
	tr.PairNode(watch, trap2).Waste = 1

	var sb strings.Builder
	tr.TopDown(&sb, 0.05) // prune below 5%
	if strings.Contains(sb.String(), "1.0%") {
		t.Fatalf("pruning failed:\n%s", sb.String())
	}
}

func TestTopDownEmptyTree(t *testing.T) {
	tr := New(prog())
	var sb strings.Builder
	tr.TopDown(&sb, 0)
	if !strings.Contains(sb.String(), "no waste") {
		t.Fatalf("empty tree output: %q", sb.String())
	}
}
