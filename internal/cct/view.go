package cct

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// TopDown renders the tree in the style of hpcviewer's top-down view
// (§6.5): each calling context from the root down, annotated with the
// inclusive waste attributed beneath it, children sorted by inclusive
// waste, and subtrees contributing less than minFrac of the total pruned.
// Synthetic KILLED_BY separators render as "=> killed by/partner".
func (t *Tree) TopDown(w io.Writer, minFrac float64) {
	incl := map[*Node]float64{}
	var compute func(n *Node) float64
	compute = func(n *Node) float64 {
		total := n.Waste
		for _, c := range n.children {
			total += compute(c)
		}
		incl[n] = total
		return total
	}
	grand := compute(t.root)
	if grand == 0 {
		fmt.Fprintln(w, "(no waste attributed)")
		return
	}

	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		kids := make([]*Node, 0, len(n.children))
		for _, c := range n.children {
			if incl[c]/grand >= minFrac {
				kids = append(kids, c)
			}
		}
		sort.Slice(kids, func(i, j int) bool {
			if incl[kids[i]] != incl[kids[j]] {
				return incl[kids[i]] > incl[kids[j]]
			}
			return kids[i].Site < kids[j].Site
		})
		for _, c := range kids {
			indent := strings.Repeat("  ", depth)
			share := 100 * incl[c] / grand
			switch c.Kind {
			case KindKilledBy:
				fmt.Fprintf(w, "%s%5.1f%% => partner context\n", indent, share)
			case KindLeaf:
				self := ""
				if c.Waste > 0 {
					self = fmt.Sprintf("  [waste %.0f, use %.0f]", c.Waste, c.Use)
				}
				fmt.Fprintf(w, "%s%5.1f%% %s%s\n", indent, share, t.describe(c), self)
			default:
				fmt.Fprintf(w, "%s%5.1f%% %s\n", indent, share, t.describe(c))
			}
			walk(c, depth+1)
		}
	}
	fmt.Fprintf(w, "top-down view (100%% = %.0f waste units)\n", grand)
	walk(t.root, 0)
}
