package cct

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
)

// BenchmarkNodeForContext measures interning a warm calling context (the
// per-sample cost inside the Witch sample handler).
func BenchmarkNodeForContext(b *testing.B) {
	p := prog()
	tr := New(p)
	fr := frames(p)
	leaf := isa.MakePC(2, 0)
	tr.NodeForContext(fr, leaf) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.NodeForContext(fr, leaf)
	}
}

// BenchmarkPairNode measures synthetic-chain interning (the per-trap
// cost).
func BenchmarkPairNode(b *testing.B) {
	p := prog()
	tr := New(p)
	watch := tr.NodeForContext(frames(p), isa.MakePC(2, 0))
	trap := tr.NodeForContext(frames(p)[:2], isa.MakePC(1, 0))
	tr.PairNode(watch, trap) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.PairNode(watch, trap)
	}
}

// BenchmarkDeepContext measures interning under deep recursion (the
// sjeng/xalancbmk shape that inflates CCT costs).
func BenchmarkDeepContext(b *testing.B) {
	p := prog()
	tr := New(p)
	deep := make([]machine.Frame, 200)
	for i := range deep {
		deep[i] = machine.Frame{FuncIdx: 1, CallSite: isa.MakePC(1, 0)}
	}
	leaf := isa.MakePC(2, 0)
	tr.NodeForContext(deep, leaf)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.NodeForContext(deep, leaf)
	}
}
