// Package cct implements the calling context tree (CCT) that Witch tools
// attribute their metrics to, in the style of HPCToolkit: every profile
// event is charged to the full call path active when it happened, and
// inefficiency pairs ⟨C_watch, C_trap⟩ are represented as synthetic call
// chains — the killing context's path is appended beneath the dead
// context's node under a KILLED_BY separator (§6.5 of the paper) — so a
// viewer can navigate from a source context straight to its top partners.
package cct

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/isa"
	"repro/internal/machine"
)

// NodeKind distinguishes the three node flavours in the tree.
type NodeKind uint8

// Node kinds.
const (
	KindFrame    NodeKind = iota // a procedure frame, keyed by call site
	KindLeaf                     // the instruction that triggered the event
	KindKilledBy                 // synthetic separator between a pair's contexts
)

// Node is one calling-context-tree node. Mu and Eta implement the paper's
// proportional attribution counters (§4.2): Mu counts PMU samples taken at
// this context, Eta catches up with Mu whenever a watchpoint armed here
// traps, and Mu−Eta is the number of samples the trapping watchpoint
// represents.
type Node struct {
	parent   *Node
	children map[uint64]*Node

	Kind    NodeKind
	FuncIdx int32
	Site    isa.PC // call-site PC (frames) or instruction PC (leaves)

	Mu, Eta float64

	// Waste and Use accumulate the tool's inefficiency metric; they are
	// only populated on pair leaf nodes (the end of a synthetic chain).
	Waste, Use float64
}

// Parent returns the parent node (nil at the root).
func (n *Node) Parent() *Node { return n.parent }

// key computes the child-map key for a prospective child.
func childKey(kind NodeKind, site isa.PC) uint64 {
	return uint64(site)<<2 | uint64(kind)
}

// Tree is a calling context tree with byte accounting so the benchmark
// harness can report tool memory bloat.
type Tree struct {
	prog  *isa.Program
	root  *Node
	nodes int
}

// New returns an empty tree over prog (prog may be nil; it is only used
// for rendering human-readable paths).
func New(prog *isa.Program) *Tree {
	return &Tree{prog: prog, root: &Node{Kind: KindFrame, FuncIdx: -1}}
}

// Root returns the root node.
func (t *Tree) Root() *Node { return t.root }

// NumNodes returns the number of allocated nodes.
func (t *Tree) NumNodes() int { return t.nodes }

// Bytes estimates the resident size of the tree (node payload plus child
// map overhead), for memory-bloat accounting.
func (t *Tree) Bytes() uint64 {
	const perNode = 96 + 48 // struct + amortized map entry
	return uint64(t.nodes) * perNode
}

// child returns (creating if needed) the child of n for the given kind and
// site.
func (t *Tree) child(n *Node, kind NodeKind, site isa.PC, fn int32) *Node {
	k := childKey(kind, site)
	if n.children == nil {
		n.children = make(map[uint64]*Node, 2)
	}
	if c := n.children[k]; c != nil {
		return c
	}
	c := &Node{parent: n, Kind: kind, FuncIdx: fn, Site: site}
	n.children[k] = c
	t.nodes++
	return c
}

// ChildFrame interns a procedure-frame child of n keyed by its call site.
// Incremental CCT maintenance (the CCTLib-style cursor the exhaustive
// tools keep per thread) uses this instead of re-walking the stack.
func (t *Tree) ChildFrame(n *Node, site isa.PC, fn int32) *Node {
	return t.child(n, KindFrame, site, fn)
}

// ChildLeaf interns the leaf node for an instruction PC beneath n.
func (t *Tree) ChildLeaf(n *Node, pc isa.PC) *Node {
	return t.child(n, KindLeaf, pc, int32(pc.Func()))
}

// NodeForContext interns the calling context given by a thread's live
// frames and the leaf instruction PC, returning its leaf node.
func (t *Tree) NodeForContext(frames []machine.Frame, leafPC isa.PC) *Node {
	n := t.root
	for i := range frames {
		f := &frames[i]
		n = t.child(n, KindFrame, f.CallSite, f.FuncIdx)
	}
	return t.child(n, KindLeaf, leafPC, int32(leafPC.Func()))
}

// PairNode returns the synthetic-chain leaf for the ordered context pair
// ⟨watch, trap⟩: trap's root-to-leaf path is replayed beneath watch under
// a KILLED_BY separator.
func (t *Tree) PairNode(watch, trap *Node) *Node {
	sep := t.child(watch, KindKilledBy, 0, -1)
	n := sep
	for _, a := range pathOf(trap) {
		n = t.child(n, a.Kind, a.Site, a.FuncIdx)
	}
	return n
}

// pathOf returns the root-to-node ancestry (excluding the root).
func pathOf(n *Node) []*Node {
	var rev []*Node
	for c := n; c != nil && c.parent != nil; c = c.parent {
		rev = append(rev, c)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Path renders a node's full synthetic call chain, e.g.
// "main->A->B ==KILLED_BY==> main->C->D".
func (t *Tree) Path(n *Node) string {
	var b strings.Builder
	for i, a := range pathOf(n) {
		switch a.Kind {
		case KindKilledBy:
			b.WriteString(" =>PARTNER=> ")
		default:
			if i > 0 && a.parent.Kind != KindKilledBy {
				b.WriteString("->")
			}
			b.WriteString(t.describe(a))
		}
	}
	return b.String()
}

// describe renders one node.
func (t *Tree) describe(n *Node) string {
	if t.prog == nil {
		return fmt.Sprintf("f%d@%v", n.FuncIdx, n.Site)
	}
	switch n.Kind {
	case KindLeaf:
		return t.prog.Location(n.Site)
	default:
		if n.FuncIdx >= 0 && int(n.FuncIdx) < len(t.prog.Funcs) {
			return t.prog.Funcs[n.FuncIdx].Name
		}
		return fmt.Sprintf("f%d", n.FuncIdx)
	}
}

// SrcDst splits a pair leaf's chain into the source (watch) leaf location
// and destination (trap) leaf location, for compact report rows.
func (t *Tree) SrcDst(pair *Node) (src, dst string) {
	path := pathOf(pair)
	sepIdx := -1
	for i, a := range path {
		if a.Kind == KindKilledBy {
			sepIdx = i
		}
	}
	if sepIdx < 0 {
		return t.describe(pair), ""
	}
	// The watch leaf is the separator's parent; the trap leaf is the
	// chain's last node.
	return t.describe(path[sepIdx-1]), t.describe(path[len(path)-1])
}

// SrcDstNodes splits a pair leaf's chain into the source (watch) leaf node
// and destination (trap) leaf node.
func (t *Tree) SrcDstNodes(pair *Node) (src, dst *Node) {
	path := pathOf(pair)
	sepIdx := -1
	for i, a := range path {
		if a.Kind == KindKilledBy {
			sepIdx = i
		}
	}
	if sepIdx <= 0 {
		return pair, nil
	}
	return path[sepIdx-1], path[len(path)-1]
}

// PairStat summarizes one context pair for reports.
type PairStat struct {
	Node       *Node
	Waste, Use float64
	Src, Dst   string
	// SrcPC and DstPC are the leaf instruction PCs of the two contexts,
	// for programmatic classification in experiments.
	SrcPC, DstPC isa.PC
}

// Pairs returns every pair leaf carrying metric mass, sorted by
// descending waste.
func (t *Tree) Pairs() []PairStat {
	var out []PairStat
	var walk func(n *Node)
	walk = func(n *Node) {
		if n.Waste != 0 || n.Use != 0 {
			src, dst := t.SrcDst(n)
			sn, dn := t.SrcDstNodes(n)
			ps := PairStat{Node: n, Waste: n.Waste, Use: n.Use, Src: src, Dst: dst}
			if sn != nil {
				ps.SrcPC = sn.Site
			}
			if dn != nil {
				ps.DstPC = dn.Site
			}
			out = append(out, ps)
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(t.root)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Waste != out[j].Waste {
			return out[i].Waste > out[j].Waste
		}
		return t.Path(out[i].Node) < t.Path(out[j].Node)
	})
	return out
}

// Totals sums waste and use across all pair leaves.
func (t *Tree) Totals() (waste, use float64) {
	for _, p := range t.Pairs() {
		waste += p.Waste
		use += p.Use
	}
	return waste, use
}

// Dominance returns the smallest number of pairs whose waste sums to at
// least frac (0..1) of total waste, and the fraction they cover. The paper
// observes fewer than five contexts typically cover >90% of dead writes.
func (t *Tree) Dominance(frac float64) (pairs int, covered float64) {
	ps := t.Pairs()
	var total float64
	for _, p := range ps {
		total += p.Waste
	}
	if total == 0 {
		return 0, 0
	}
	var acc float64
	for i, p := range ps {
		acc += p.Waste
		if acc >= frac*total {
			return i + 1, acc / total
		}
	}
	return len(ps), 1
}
