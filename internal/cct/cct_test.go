package cct

import (
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/machine"
)

// prog builds a tiny program with named functions for path rendering.
func prog() *isa.Program {
	b := isa.NewBuilder("t")
	b.Func("main").Call("a").Halt()
	b.Func("a").Call("b").Ret()
	b.Func("b").MovImm(isa.R1, 1).Ret()
	b.SetEntry("main")
	return b.MustBuild()
}

func frames(p *isa.Program) []machine.Frame {
	return []machine.Frame{
		{FuncIdx: int32(p.FuncByName("main"))},
		{FuncIdx: int32(p.FuncByName("a")), CallSite: isa.MakePC(0, 0)},
		{FuncIdx: int32(p.FuncByName("b")), CallSite: isa.MakePC(1, 0)},
	}
}

func TestNodeInterning(t *testing.T) {
	p := prog()
	tr := New(p)
	leaf := isa.MakePC(2, 0)
	n1 := tr.NodeForContext(frames(p), leaf)
	n2 := tr.NodeForContext(frames(p), leaf)
	if n1 != n2 {
		t.Fatal("same context must intern to the same node")
	}
	other := tr.NodeForContext(frames(p)[:2], leaf)
	if other == n1 {
		t.Fatal("different contexts must differ")
	}
}

func TestPairNodeAndPathRendering(t *testing.T) {
	p := prog()
	tr := New(p)
	watch := tr.NodeForContext(frames(p), isa.MakePC(2, 0))
	trap := tr.NodeForContext(frames(p)[:2], isa.MakePC(1, 0))
	pair := tr.PairNode(watch, trap)
	pair.Waste += 10

	path := tr.Path(pair)
	if !strings.Contains(path, "PARTNER") {
		t.Fatalf("path missing separator: %q", path)
	}
	if !strings.Contains(path, "main") || !strings.Contains(path, "b") {
		t.Fatalf("path missing frames: %q", path)
	}
	// Pair interning: same pair → same node.
	if tr.PairNode(watch, trap) != pair {
		t.Fatal("pair nodes must intern")
	}
}

func TestSrcDstNodes(t *testing.T) {
	p := prog()
	tr := New(p)
	watch := tr.NodeForContext(frames(p), isa.MakePC(2, 0))
	trap := tr.NodeForContext(frames(p)[:2], isa.MakePC(1, 0))
	pair := tr.PairNode(watch, trap)
	src, dst := tr.SrcDstNodes(pair)
	if src != watch {
		t.Fatal("src must be the watch leaf")
	}
	if dst == nil || dst.Site != isa.MakePC(1, 0) {
		t.Fatal("dst must be the trap leaf")
	}
}

func TestPairsSortedByWaste(t *testing.T) {
	p := prog()
	tr := New(p)
	w := tr.NodeForContext(frames(p), isa.MakePC(2, 0))
	t1 := tr.NodeForContext(frames(p)[:2], isa.MakePC(1, 0))
	t2 := tr.NodeForContext(frames(p)[:1], isa.MakePC(0, 0))
	tr.PairNode(w, t1).Waste = 5
	tr.PairNode(w, t2).Waste = 50
	ps := tr.Pairs()
	if len(ps) != 2 || ps[0].Waste != 50 {
		t.Fatalf("pairs order wrong: %+v", ps)
	}
	waste, use := tr.Totals()
	if waste != 55 || use != 0 {
		t.Fatalf("totals = %v/%v", waste, use)
	}
}

func TestDominance(t *testing.T) {
	p := prog()
	tr := New(p)
	w := tr.NodeForContext(frames(p), isa.MakePC(2, 0))
	targets := []isa.PC{isa.MakePC(0, 0), isa.MakePC(1, 0), isa.MakePC(2, 1)}
	wastes := []float64{90, 8, 2}
	for i, tgt := range targets {
		tn := tr.NodeForContext(frames(p)[:1], tgt)
		tr.PairNode(w, tn).Waste = wastes[i]
	}
	pairs, covered := tr.Dominance(0.9)
	if pairs != 1 || covered < 0.9 {
		t.Fatalf("dominance = %d pairs covering %.2f", pairs, covered)
	}
	if n, _ := tr.Dominance(0.99); n != 3 {
		t.Fatalf("99%% dominance needs 3 pairs, got %d", n)
	}
	empty := New(p)
	if n, c := empty.Dominance(0.9); n != 0 || c != 0 {
		t.Fatal("empty tree dominance should be zero")
	}
}

func TestBytesGrowsWithNodes(t *testing.T) {
	p := prog()
	tr := New(p)
	before := tr.Bytes()
	tr.NodeForContext(frames(p), isa.MakePC(2, 0))
	if tr.Bytes() <= before {
		t.Fatal("bytes should grow with nodes")
	}
	if tr.NumNodes() != 4 { // 3 frames + leaf
		t.Fatalf("nodes = %d, want 4", tr.NumNodes())
	}
}

func TestMuEtaCounters(t *testing.T) {
	p := prog()
	tr := New(p)
	n := tr.NodeForContext(frames(p), isa.MakePC(2, 0))
	n.Mu += 10
	n.Eta += 4
	if n.Mu-n.Eta != 6 {
		t.Fatal("μ−η arithmetic broken")
	}
}
