package craft_test

import (
	"math"
	"testing"

	"repro/internal/craft"
	"repro/internal/exhaustive"
	"repro/internal/isa"
	"repro/internal/machine"
	"repro/internal/witch"
	"repro/internal/workloads"
)

// silentProgram stores a constant to one region (silent after the first
// pass) and a varying value to another, iterated.
func silentProgram(n, iters int64) *isa.Program {
	b := isa.NewBuilder("silent")
	f := b.Func("main")
	f.LoopN(isa.R9, iters, func(fb *isa.FuncBuilder) {
		fb.LoopN(isa.R1, n, func(fb *isa.FuncBuilder) {
			fb.MulImm(isa.R5, isa.R1, 8)
			fb.AddImm(isa.R5, isa.R5, 0x1000000)
			fb.MovImm(isa.R6, 99)
			fb.Store(isa.R5, 0, isa.R6, 8) // silent after first iteration
		})
		fb.LoopN(isa.R2, n, func(fb *isa.FuncBuilder) {
			fb.MulImm(isa.R5, isa.R2, 8)
			fb.AddImm(isa.R5, isa.R5, 0x2000000)
			fb.Add(isa.R6, isa.R2, isa.R9)
			fb.MulImm(isa.R6, isa.R6, 2654435761)
			fb.Store(isa.R5, 0, isa.R6, 8) // value differs every iteration
		})
	})
	f.Halt()
	return b.MustBuild()
}

// redLoadProgram initializes a region then repeatedly loads it (redundant)
// and also loads a changing region (fresh).
func redLoadProgram(n, iters int64) *isa.Program {
	b := isa.NewBuilder("redload")
	f := b.Func("main")
	f.LoopN(isa.R1, n, func(fb *isa.FuncBuilder) {
		fb.MulImm(isa.R5, isa.R1, 8)
		fb.AddImm(isa.R5, isa.R5, 0x1000000)
		fb.MovImm(isa.R6, 31337)
		fb.Store(isa.R5, 0, isa.R6, 8)
	})
	f.LoopN(isa.R9, iters, func(fb *isa.FuncBuilder) {
		fb.LoopN(isa.R1, n, func(fb *isa.FuncBuilder) {
			fb.MulImm(isa.R5, isa.R1, 8)
			fb.AddImm(isa.R5, isa.R5, 0x1000000)
			fb.Load(isa.R6, isa.R5, 0, 8) // redundant after first iteration
		})
		fb.LoopN(isa.R2, n, func(fb *isa.FuncBuilder) {
			fb.MulImm(isa.R5, isa.R2, 8)
			fb.AddImm(isa.R5, isa.R5, 0x2000000)
			fb.Add(isa.R6, isa.R2, isa.R9)
			fb.Store(isa.R5, 0, isa.R6, 8)
			fb.Load(isa.R7, isa.R5, 0, 8) // fresh: value changed this iter
		})
	})
	f.Halt()
	return b.MustBuild()
}

func profile(t *testing.T, prog *isa.Program, client witch.Client, period uint64) *witch.Result {
	t.Helper()
	m := machine.New(prog, machine.Config{})
	res, err := witch.NewProfiler(m, client, witch.Config{Period: period, Seed: 11}).Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSilentCraftMatchesRedSpy(t *testing.T) {
	prog := silentProgram(400, 60)
	spy, err := exhaustive.Run(machine.New(prog, machine.Config{}), exhaustive.NewRedSpy(prog))
	if err != nil {
		t.Fatal(err)
	}
	res := profile(t, prog, craft.NewSilentCraft(), 97)
	if math.Abs(spy.Redundancy()-res.Redundancy()) > 0.12 {
		t.Fatalf("SilentCraft %.3f vs RedSpy %.3f", res.Redundancy(), spy.Redundancy())
	}
	// Roughly half the stores are silent (after warm-up).
	if r := spy.Redundancy(); r < 0.35 || r > 0.6 {
		t.Fatalf("RedSpy ground truth unexpected: %.3f", r)
	}
}

func TestLoadCraftMatchesLoadSpy(t *testing.T) {
	prog := redLoadProgram(400, 60)
	spy, err := exhaustive.Run(machine.New(prog, machine.Config{}), exhaustive.NewLoadSpy(prog))
	if err != nil {
		t.Fatal(err)
	}
	res := profile(t, prog, craft.NewLoadCraft(), 97)
	if math.Abs(spy.Redundancy()-res.Redundancy()) > 0.12 {
		t.Fatalf("LoadCraft %.3f vs LoadSpy %.3f", res.Redundancy(), spy.Redundancy())
	}
	if r := spy.Redundancy(); r < 0.35 || r > 0.65 {
		t.Fatalf("LoadSpy ground truth unexpected: %.3f", r)
	}
}

// TestLbmLikeFloatWorkload reproduces the paper's lbm observation: a
// floating-point stencil whose values drift below the 1% precision shows
// ~100% silent stores and silent loads but negligible dead stores.
func TestLbmLikeFloatWorkload(t *testing.T) {
	sp, ok := workloads.SuiteSpec("lbm")
	if !ok {
		t.Fatal("no lbm spec")
	}
	prog := sp.Build(1)

	red, err := exhaustive.Run(machine.New(prog, machine.Config{}), exhaustive.NewRedSpy(prog))
	if err != nil {
		t.Fatal(err)
	}
	if red.Redundancy() < 0.85 {
		t.Fatalf("lbm silent stores = %.3f, want ~1", red.Redundancy())
	}
	load, err := exhaustive.Run(machine.New(prog, machine.Config{}), exhaustive.NewLoadSpy(prog))
	if err != nil {
		t.Fatal(err)
	}
	if load.Redundancy() < 0.85 {
		t.Fatalf("lbm silent loads = %.3f, want ~1", load.Redundancy())
	}
	dead, err := exhaustive.Run(machine.New(prog, machine.Config{}), exhaustive.NewDeadSpy(prog))
	if err != nil {
		t.Fatal(err)
	}
	if dead.Redundancy() > 0.15 {
		t.Fatalf("lbm dead stores = %.3f, want ~0", dead.Redundancy())
	}
}

// TestLoadCraftIgnoresStoreTraps verifies §6.2: RW_TRAP store traps are
// dropped and the watchpoint stays armed until a load arrives.
func TestLoadCraftIgnoresStoreTraps(t *testing.T) {
	b := isa.NewBuilder("storeload")
	f := b.Func("main")
	f.MovImm(isa.R3, 0x3000)
	f.LoopN(isa.R9, 2000, func(fb *isa.FuncBuilder) {
		fb.Load(isa.R6, isa.R3, 0, 8) // load x (sampled)
		fb.MovImm(isa.R6, 7)
		fb.Store(isa.R3, 0, isa.R6, 8) // store x: spurious RW trap, dropped
		fb.Load(isa.R7, isa.R3, 0, 8)  // load x again: same value 7 → waste
	})
	f.Halt()
	res := profile(t, b.MustBuild(), craft.NewLoadCraft(), 13)
	if res.Waste == 0 {
		t.Fatal("LoadCraft should classify reloads after stores of the same value")
	}
	// Redundancy should be high: the value is always 7 after warm-up.
	if res.Redundancy() < 0.9 {
		t.Fatalf("redundancy = %.3f, want ~1", res.Redundancy())
	}
}

// TestDeadCraftNoFalsePositives: a program whose every store is loaded
// before the next store must show zero dead-store waste (§4.3: dead write
// detection has no false positives).
func TestDeadCraftNoFalsePositives(t *testing.T) {
	b := isa.NewBuilder("clean")
	f := b.Func("main")
	f.MovImm(isa.R3, 0x4000)
	f.LoopN(isa.R9, 3000, func(fb *isa.FuncBuilder) {
		fb.Store(isa.R3, 0, isa.R9, 8)
		fb.Load(isa.R6, isa.R3, 0, 8)
	})
	f.Halt()
	res := profile(t, b.MustBuild(), craft.NewDeadCraft(), 17)
	if res.Waste != 0 {
		t.Fatalf("false positives: waste = %v", res.Waste)
	}
	if res.Use == 0 {
		t.Fatal("expected use attribution")
	}
}
