// Package craft implements the witchcraft client tools of §4 and §6 of the
// paper on top of the Witch framework:
//
//   - DeadCraft detects dead stores (a store overwritten by another store
//     with no intervening load), mimicking DeadSpy on sampled addresses.
//   - SilentCraft detects silent stores (a store writing the value already
//     present), mimicking RedSpy, with approximate equality for
//     floating-point data.
//   - LoadCraft detects redundant loads (a load observing the same value
//     as the previous load from that location).
//
// Each tool quantifies its inefficiency with the paper's Equation 1:
// consecutive same-location accesses contribute their overlapping bytes to
// "waste" when redundant and to "use" otherwise, scaled by the framework's
// proportional attribution.
package craft

import (
	"math"

	"repro/internal/hwdebug"
	"repro/internal/isa"
	"repro/internal/pmu"
	"repro/internal/witch"
)

// DefaultFloatPrecision is the relative tolerance used when comparing
// floating-point values, matching the 1% the paper's evaluation uses.
const DefaultFloatPrecision = 0.01

// snapshot remembers the memory contents observed at arm time.
type snapshot struct {
	addr  uint64
	width uint8
	value uint64
	float bool
}

// overlapEqual compares the overlapping bytes of two accessed regions,
// given each region's base address, width and little-endian value bits.
// It returns the number of overlapping bytes and whether they are all
// byte-identical.
func overlapEqual(a1 uint64, w1 uint8, v1 uint64, a2 uint64, w2 uint8, v2 uint64) (uint8, bool) {
	lo, hi := a1, a1+uint64(w1)
	if a2 > lo {
		lo = a2
	}
	if h2 := a2 + uint64(w2); h2 < hi {
		hi = h2
	}
	if hi <= lo {
		return 0, false
	}
	for x := lo; x < hi; x++ {
		b1 := byte(v1 >> (8 * (x - a1)))
		b2 := byte(v2 >> (8 * (x - a2)))
		if b1 != b2 {
			return uint8(hi - lo), false
		}
	}
	return uint8(hi - lo), true
}

// floatApproxEqual reports whether two float64 bit patterns are equal
// within the relative precision.
func floatApproxEqual(bits1, bits2 uint64, precision float64) bool {
	f1, f2 := isa.F64(bits1), isa.F64(bits2)
	if f1 == f2 {
		return true
	}
	return math.Abs(f1-f2) <= precision*math.Max(math.Abs(f1), math.Abs(f2))
}

// valuesMatch decides redundancy between a snapshot and a trap access:
// full-width floating-point data uses approximate comparison, everything
// else exact byte comparison over the overlap.
func valuesMatch(snap snapshot, addr uint64, width uint8, value uint64, float bool, precision float64) (overlap uint8, same bool) {
	if snap.float && float && snap.width == 8 && width == 8 && snap.addr == addr {
		if floatApproxEqual(snap.value, value, precision) {
			return 8, true
		}
		return 8, false
	}
	return overlapEqual(snap.addr, snap.width, snap.value, addr, width, value)
}

// DeadCraft is the dead-store detection client (§4, Figure 1). It samples
// PMU store events and arms an RW_TRAP watchpoint at the sampled address:
// if the next access is a store the watched store was dead; if it is a
// load the watched store was useful.
type DeadCraft struct{}

// NewDeadCraft returns a DeadCraft client.
func NewDeadCraft() *DeadCraft { return &DeadCraft{} }

// Name implements witch.Client.
func (*DeadCraft) Name() string { return "DeadCraft" }

// Event implements witch.Client: stores drive the sampling.
func (*DeadCraft) Event() pmu.Event { return pmu.EventAllStores }

// OnSample arms an RW_TRAP watchpoint on every sampled store.
func (*DeadCraft) OnSample(s *witch.Sample) witch.ArmRequest {
	return witch.ArmRequest{Arm: true, Kind: hwdebug.RWTrap}
}

// OnTrap classifies the consecutive access: store ⇒ the watched store was
// dead (waste); load ⇒ it was read (use). Either way the register frees.
func (*DeadCraft) OnTrap(tr *witch.Trap) witch.TrapAction {
	if tr.Kind == pmu.Store {
		tr.AttributeWaste(float64(tr.Overlap))
	} else {
		tr.AttributeUse(float64(tr.Overlap))
	}
	return witch.ActionDisarm
}

// SilentCraft is the silent-store detection client (§6.1). It samples
// store events, snapshots the stored value, and arms a W_TRAP watchpoint
// (loads are irrelevant to store silence and do not trap); on the next
// overlapping store it compares values.
type SilentCraft struct {
	// Precision is the relative tolerance for floating-point equality.
	Precision float64
}

// NewSilentCraft returns a SilentCraft with the default 1% FP precision.
func NewSilentCraft() *SilentCraft { return &SilentCraft{Precision: DefaultFloatPrecision} }

// Name implements witch.Client.
func (*SilentCraft) Name() string { return "SilentCraft" }

// Event implements witch.Client.
func (*SilentCraft) Event() pmu.Event { return pmu.EventAllStores }

// OnSample snapshots the just-stored value (the trap fires after the
// instruction, so the sampled access's value is what memory now holds) and
// arms a write-only watchpoint.
func (*SilentCraft) OnSample(s *witch.Sample) witch.ArmRequest {
	return witch.ArmRequest{
		Arm:    true,
		Kind:   hwdebug.WTrap,
		Cookie: snapshot{addr: s.Addr, width: s.Width, value: s.Value, float: s.Float},
	}
}

// OnTrap compares the overlapping bytes of the new store against the
// snapshot; identical (or FP-approximately identical) bytes are silent.
func (c *SilentCraft) OnTrap(tr *witch.Trap) witch.TrapAction {
	snap, ok := tr.Cookie.(snapshot)
	if !ok {
		return witch.ActionDisarm
	}
	overlap, same := valuesMatch(snap, tr.Addr, tr.Width, tr.Value, tr.Float, c.Precision)
	if overlap == 0 {
		return witch.ActionDisarm
	}
	if same {
		tr.AttributeWaste(float64(overlap))
	} else {
		tr.AttributeUse(float64(overlap))
	}
	return witch.ActionDisarm
}

// LoadCraft is the load-after-load detection client (§6.2). It samples
// load events and arms an RW_TRAP watchpoint (x86 has no trap-on-load, so
// store traps arrive too and are dropped); on the next load it compares
// the loaded value against the snapshot.
type LoadCraft struct {
	// Precision is the relative tolerance for floating-point equality.
	Precision float64
}

// NewLoadCraft returns a LoadCraft with the default 1% FP precision.
func NewLoadCraft() *LoadCraft { return &LoadCraft{Precision: DefaultFloatPrecision} }

// Name implements witch.Client.
func (*LoadCraft) Name() string { return "LoadCraft" }

// Event implements witch.Client: loads drive the sampling.
func (*LoadCraft) Event() pmu.Event { return pmu.EventAllLoads }

// OnSample snapshots the loaded value and arms an RW_TRAP watchpoint.
func (*LoadCraft) OnSample(s *witch.Sample) witch.ArmRequest {
	return witch.ArmRequest{
		Arm:    true,
		Kind:   hwdebug.RWTrap,
		Cookie: snapshot{addr: s.Addr, width: s.Width, value: s.Value, float: s.Float},
	}
}

// OnTrap drops store traps (keeping the watchpoint armed, per §6.2: "if a
// watchpoint triggers on a store operation, Witch merely drops it") and
// classifies load traps by value comparison.
func (c *LoadCraft) OnTrap(tr *witch.Trap) witch.TrapAction {
	if tr.Kind == pmu.Store {
		return witch.ActionKeep
	}
	snap, ok := tr.Cookie.(snapshot)
	if !ok {
		return witch.ActionDisarm
	}
	overlap, same := valuesMatch(snap, tr.Addr, tr.Width, tr.Value, tr.Float, c.Precision)
	if overlap == 0 {
		return witch.ActionDisarm
	}
	if same {
		tr.AttributeWaste(float64(overlap))
	} else {
		tr.AttributeUse(float64(overlap))
	}
	return witch.ActionDisarm
}
