package craft

import (
	"math/rand"

	"repro/internal/cct"
	"repro/internal/hwdebug"
	"repro/internal/machine"
	"repro/internal/pmu"
)

// FalseSharingConfig configures the Feather-style false-sharing detector
// (§6.3: "Sharing addresses accessed by one thread with another thread
// allows building several tools for multi-threaded applications. Atop
// Witch, we have developed Feather — a tool to detect false sharing.").
type FalseSharingConfig struct {
	// Period is the PMU sampling period (all memory ops).
	Period uint64
	// Seed drives the deterministic replacement/chunk PRNG.
	Seed int64
	// LineBytes is the coherence granularity (default 64).
	LineBytes uint64
}

// FalseSharingResult summarizes a false-sharing profile.
type FalseSharingResult struct {
	// FalseShares and TrueShares count cross-thread conflicts scaled by
	// the sampling period: accesses to the same cache line at disjoint
	// bytes (false) vs overlapping bytes (true), with at least one side
	// writing.
	FalseShares float64
	TrueShares  float64
	Samples     uint64
	Traps       uint64
	Tree        *cct.Tree
}

// FalseFraction returns false/(false+true) sharing.
func (r *FalseSharingResult) FalseFraction() float64 {
	if r.FalseShares+r.TrueShares == 0 {
		return 0
	}
	return r.FalseShares / (r.FalseShares + r.TrueShares)
}

// fsOrigin is the cookie attached to a remotely-armed watchpoint.
type fsOrigin struct {
	thread int
	kind   pmu.AccessKind
	addr   uint64
	width  uint8
	ctx    *cct.Node
}

// RunFalseSharing profiles a multi-threaded machine for false sharing.
// On each PMU sample in thread T it arms, in every *other* thread, a
// watchpoint on a chunk of the sampled address's cache line (hardware
// watchpoints cover at most 8 bytes, so — as in Feather — a random
// aligned chunk of the line is monitored; the chunk holding the sampled
// bytes gives true-sharing visibility, others false-sharing visibility).
// A trap in thread U then witnesses T→U communication on that line:
// overlapping bytes are true sharing, disjoint bytes are false sharing.
// Accesses where neither side writes are ignored (read-read sharing is
// harmless).
func RunFalseSharing(m *machine.Machine, cfg FalseSharingConfig) (*FalseSharingResult, error) {
	if cfg.Period == 0 {
		cfg.Period = 1000
	}
	if cfg.LineBytes == 0 {
		cfg.LineBytes = 64
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	res := &FalseSharingResult{Tree: cct.New(m.Prog)}

	m.SetTrapHandler(func(t *machine.Thread, tr hwdebug.Trap) {
		t.Watch.Disarm(tr.Reg)
		if tr.KernelView {
			return
		}
		origin, ok := tr.WP.Cookie.(fsOrigin)
		if !ok || origin.thread == t.ID {
			return
		}
		res.Traps++
		// Read-read is not a conflict.
		if origin.kind != pmu.Store && tr.Kind != hwdebug.Store {
			return
		}
		overlap := origin.addr < tr.Addr+uint64(tr.Width) && tr.Addr < origin.addr+uint64(origin.width)
		trapCtx := res.Tree.NodeForContext(t.Frames(), tr.ContextPC)
		pair := res.Tree.PairNode(origin.ctx, trapCtx)
		if overlap {
			res.TrueShares += float64(cfg.Period)
			pair.Use += float64(cfg.Period)
		} else {
			res.FalseShares += float64(cfg.Period)
			pair.Waste += float64(cfg.Period)
		}
	})

	m.AttachSampler(pmu.EventAllMemOps, cfg.Period, func(t *machine.Thread, s pmu.Sample) {
		res.Samples++
		ctx := res.Tree.NodeForContext(t.Frames(), s.PC)
		line := s.Addr &^ (cfg.LineBytes - 1)
		origin := fsOrigin{thread: t.ID, kind: s.Kind, addr: s.Addr, width: s.Width, ctx: ctx}
		for _, u := range m.Threads {
			if u.ID == t.ID || u.Halted() {
				continue
			}
			// Half the remote arms watch the chunk containing the
			// sampled bytes (true-sharing view); the rest watch a
			// random chunk of the line (false-sharing view).
			var chunk uint64
			if rng.Intn(2) == 0 {
				chunk = (s.Addr - line) &^ 7
			} else {
				chunk = uint64(rng.Intn(int(cfg.LineBytes/8))) * 8
			}
			reg := u.Watch.FreeReg()
			if reg < 0 {
				// Simple unbiased replacement among the remote regs.
				reg = rng.Intn(u.Watch.NumRegs())
			}
			u.Watch.Arm(reg, line+chunk, 8, hwdebug.RWTrap, origin, s.Seq)
		}
	})

	if err := m.Run(); err != nil {
		return nil, err
	}
	return res, nil
}
