package craft_test

import (
	"testing"

	"repro/internal/craft"
	"repro/internal/machine"
	"repro/internal/workloads"
)

func fourThreads(prog func() *machine.Machine) *machine.Machine {
	m := prog()
	for i := 0; i < 3; i++ {
		m.SpawnThread(m.Prog.Entry)
	}
	return m
}

func TestFalseSharingDetectedOnPackedCounters(t *testing.T) {
	m := fourThreads(func() *machine.Machine {
		return machine.New(workloads.ParallelCounters(20000, 8), machine.Config{})
	})
	res, err := craft.RunFalseSharing(m, craft.FalseSharingConfig{Period: 97, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FalseShares == 0 {
		t.Fatal("packed counters must show false sharing")
	}
	if res.FalseFraction() < 0.9 {
		t.Fatalf("false fraction = %.2f, want ~1 (threads never touch shared bytes)", res.FalseFraction())
	}
	if len(res.Tree.Pairs()) == 0 {
		t.Fatal("expected context pairs")
	}
}

func TestPaddingEliminatesFalseSharing(t *testing.T) {
	m := fourThreads(func() *machine.Machine {
		return machine.New(workloads.ParallelCounters(20000, 128), machine.Config{})
	})
	res, err := craft.RunFalseSharing(m, craft.FalseSharingConfig{Period: 97, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FalseShares != 0 {
		t.Fatalf("padded counters must not false-share, got %v", res.FalseShares)
	}
}

func TestTrueSharingClassified(t *testing.T) {
	m := fourThreads(func() *machine.Machine {
		return machine.New(workloads.SharedCounter(20000), machine.Config{})
	})
	res, err := craft.RunFalseSharing(m, craft.FalseSharingConfig{Period: 97, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TrueShares == 0 {
		t.Fatal("shared counter must show true sharing")
	}
	if res.FalseFraction() > 0.1 {
		t.Fatalf("false fraction = %.2f, want ~0 (all conflicts overlap)", res.FalseFraction())
	}
}

func TestSingleThreadNoSharing(t *testing.T) {
	m := machine.New(workloads.ParallelCounters(20000, 8), machine.Config{})
	res, err := craft.RunFalseSharing(m, craft.FalseSharingConfig{Period: 97, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.FalseShares != 0 || res.TrueShares != 0 {
		t.Fatal("a single thread cannot share")
	}
}
