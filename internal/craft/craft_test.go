package craft

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestOverlapEqual(t *testing.T) {
	cases := []struct {
		name   string
		a1     uint64
		w1     uint8
		v1     uint64
		a2     uint64
		w2     uint8
		v2     uint64
		wantOv uint8
		wantEq bool
	}{
		{"identical", 100, 8, 0xdeadbeef, 100, 8, 0xdeadbeef, 8, true},
		{"differ", 100, 8, 1, 100, 8, 2, 8, false},
		{"disjoint", 100, 4, 1, 200, 4, 1, 0, false},
		{"partial same", 100, 8, 0xaabbccdd, 102, 2, 0xaabb, 2, true},
		{"partial differ", 100, 8, 0xaabbccdd, 102, 2, 0x1122, 2, false},
		{"adjacent no overlap", 100, 4, 5, 104, 4, 5, 0, false},
		{"one byte", 100, 1, 0x7f, 100, 1, 0x7f, 1, true},
	}
	for _, tc := range cases {
		ov, eq := overlapEqual(tc.a1, tc.w1, tc.v1, tc.a2, tc.w2, tc.v2)
		if ov != tc.wantOv || eq != tc.wantEq {
			t.Errorf("%s: got (%d,%v), want (%d,%v)", tc.name, ov, eq, tc.wantOv, tc.wantEq)
		}
	}
}

// TestOverlapEqualSymmetric: equality of the overlap is symmetric in the
// two accesses.
func TestOverlapEqualSymmetric(t *testing.T) {
	f := func(a1off, a2off uint8, v1, v2 uint64, w1s, w2s uint8) bool {
		widths := []uint8{1, 2, 4, 8}
		a1 := 1000 + uint64(a1off%16)
		a2 := 1000 + uint64(a2off%16)
		w1, w2 := widths[w1s%4], widths[w2s%4]
		ov1, eq1 := overlapEqual(a1, w1, v1, a2, w2, v2)
		ov2, eq2 := overlapEqual(a2, w2, v2, a1, w1, v1)
		return ov1 == ov2 && eq1 == eq2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestOverlapSelfEqual: any access compared with itself is fully equal.
func TestOverlapSelfEqual(t *testing.T) {
	f := func(addr uint32, v uint64, ws uint8) bool {
		w := []uint8{1, 2, 4, 8}[ws%4]
		ov, eq := overlapEqual(uint64(addr), w, v, uint64(addr), w, v)
		return ov == w && eq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFloatApproxEqual(t *testing.T) {
	p := 0.01
	cases := []struct {
		a, b float64
		want bool
	}{
		{1.0, 1.0, true},
		{1.0, 1.005, true},
		{1.0, 1.02, false},
		{-5.0, -5.004, true},
		{0.0, 0.0, true},
		{0.0, 0.1, false},
		{1e300, 1.0001e300, true},
	}
	for _, tc := range cases {
		got := floatApproxEqual(isa.F64Bits(tc.a), isa.F64Bits(tc.b), p)
		if got != tc.want {
			t.Errorf("approx(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestValuesMatchFloatPath(t *testing.T) {
	snap := snapshot{addr: 64, width: 8, value: isa.F64Bits(100.0), float: true}
	ov, same := valuesMatch(snap, 64, 8, isa.F64Bits(100.5), true, 0.01)
	if ov != 8 || !same {
		t.Fatalf("drift within precision: ov=%d same=%v", ov, same)
	}
	ov, same = valuesMatch(snap, 64, 8, isa.F64Bits(150.0), true, 0.01)
	if ov != 8 || same {
		t.Fatalf("large drift: ov=%d same=%v", ov, same)
	}
	// Mismatched addresses fall back to byte comparison.
	ov, _ = valuesMatch(snap, 68, 8, isa.F64Bits(100.0), true, 0.01)
	if ov != 4 {
		t.Fatalf("partial overlap ov=%d, want 4", ov)
	}
}

func TestClientIdentities(t *testing.T) {
	if NewDeadCraft().Name() != "DeadCraft" ||
		NewSilentCraft().Name() != "SilentCraft" ||
		NewLoadCraft().Name() != "LoadCraft" {
		t.Fatal("names wrong")
	}
	if NewSilentCraft().Precision != DefaultFloatPrecision {
		t.Fatal("default precision not set")
	}
}
