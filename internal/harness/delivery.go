package harness

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"time"

	"repro/internal/daemon"
	"repro/internal/fault"
	"repro/internal/report"
	"repro/internal/store"
	"repro/internal/wal"
	"repro/witch"
)

// Delivery is the exactly-once chaos experiment: N pushers (half JSON,
// half binary wire format) stream profiles to a real witchd over real
// TCP while the network, the disks, and both processes misbehave —
// injected connection refusals, request timeouts, mid-body disconnects,
// lost acks and corrupted responses; injected spool-write failures and
// spool-overflow evictions; and kill -9-style restarts of the daemon
// (journal abandoned unsynced) and of the pushers (spool abandoned
// unsynced) mid-stream.
//
// The gate is byte-level: each pusher pushes copies of one profile
// under its own program name, so the daemon's merged answer for that
// program depends only on how many copies were merged. After a clean
// drain, GET /v1/profile for every program must be byte-identical to a
// fault-free oracle fed exactly the batches the pusher counted as
// acknowledged — one merge lost (acked data dropped) or one merge
// doubled (a retry the dedup window missed) and the bytes differ. The
// only permitted losses are the explicitly counted drop paths
// (spool eviction, spool write error), and the pusher's own books must
// balance: accepted = sent + dropped, nothing pending, across every
// kill and restart.
func Delivery(w io.Writer, o Options) error {
	report.Section(w, "Delivery: exactly-once under net+disk faults and kill -9 of both sides")

	pushers, perRound := 6, 25
	if o.Quick {
		pushers, perRound = 3, 12
	}
	prof, err := witch.Run(mustWorkload("listing3"), witch.Options{
		Tool: witch.DeadStores, Period: 97, Seed: o.Seed,
	})
	if err != nil {
		return fmt.Errorf("delivery: workload profile: %w", err)
	}

	cases := deliveryCases(o)
	fmt.Fprintf(w, "%d pushers x 3 rounds x %d batches, %d fault sweeps; 2 daemon kills + 2 pusher kills per sweep\n\n",
		pushers, perRound, len(cases))
	tbl := report.NewTable("", "sweep", "pushed", "sent", "replayed", "spooled", "evicted", "dropped",
		"net inj", "chaos inj", "disk inj", "dup reacks", "oracle")
	for _, c := range cases {
		r, err := runDeliveryCase(c, prof, pushers, perRound, o.Seed)
		if err != nil {
			return fmt.Errorf("delivery: sweep %q: %w", c.name, err)
		}
		tbl.Row(c.name, fmt.Sprint(r.pushed), fmt.Sprint(r.sent), fmt.Sprint(r.replayed),
			fmt.Sprint(r.spooled), fmt.Sprint(r.evicted), fmt.Sprint(r.dropped),
			fmt.Sprint(r.netInjected), fmt.Sprint(r.chaosInjected), fmt.Sprint(r.diskInjected),
			fmt.Sprint(r.dups), "byte-identical")
	}
	tbl.Fprint(w)
	fmt.Fprintln(w, "\nevery sweep: zero acked-profile loss, zero double-merge; spool overflow the only uncounted-free drop path")
	return nil
}

// deliveryCase is one fault sweep. Sweeps where an already-merged batch
// can be dropped before its retry (ack-loss faults + eviction) are
// contradictory by construction, so ack-loss sweeps run with a generous
// spool and expect zero drops, while drop-permitting sweeps use only
// pre-commit fault classes (refused connections, injected timeouts)
// where a failed send provably never reached the journal.
type deliveryCase struct {
	name     string
	client   fault.Plan // pusher-side network faults
	server   fault.Plan // daemon-side post-commit chaos
	disk     fault.Plan // spool journal write faults
	spoolMax int64      // 0 = generous (64 MiB default)
	// midStream kills the daemon while requests are in flight (the
	// natural lost-ack generator); otherwise kills happen at pusher
	// quiescence and the dark window forces everything through the spool.
	midStream bool
	// allowed lists the permitted drop reasons; anything else fails.
	allowed []string
	// wantDups requires the daemon's dedup layer to have re-acked at
	// least one duplicate (the sweep injects guaranteed ack loss).
	wantDups bool
}

func deliveryCases(o Options) []deliveryCase {
	seed := o.Seed + 41
	cases := []deliveryCase{
		{
			name:      "net: refused+timeout",
			client:    fault.Plan{ConnRefused: 0.15, ReqTimeout: 0.10, Seed: seed},
			midStream: true,
		},
		{
			name:      "ack loss both sides",
			client:    fault.Plan{MidBodyCut: 0.10, LostAck: 0.10, Seed: seed + 1},
			server:    fault.Plan{LostAck: 0.12, RespCorrupt: 0.08, Seed: seed + 2},
			midStream: true,
			wantDups:  true,
		},
		{
			name:    "disk: spool write faults",
			client:  fault.Plan{ConnRefused: 0.10, Seed: seed + 3},
			disk:    fault.Plan{ShortWrite: 0.03, ENOSPC: 0.03, Seed: seed + 4},
			allowed: []string{witch.DropSpoolError},
		},
		{
			name:     "disk: spool overflow",
			client:   fault.Plan{ConnRefused: 0.05, Seed: seed + 5},
			spoolMax: 2048,
			allowed:  []string{witch.DropSpoolEvict},
		},
	}
	if !o.Quick {
		cases = append(cases, deliveryCase{
			name: "everything at once",
			client: fault.Plan{
				ConnRefused: 0.08, ReqTimeout: 0.05, MidBodyCut: 0.05, LostAck: 0.08,
				Seed: seed + 6,
			},
			server:    fault.Plan{LostAck: 0.08, RespCorrupt: 0.05, Seed: seed + 7},
			midStream: true,
			wantDups:  true,
		})
	}
	return cases
}

// deliveryResult aggregates one sweep's books.
type deliveryResult struct {
	pushed, sent, replayed, spooled, evicted, dropped uint64
	netInjected, chaosInjected, diskInjected          uint64
	dups                                              uint64
}

// deliveryDaemon is one witchd under torture: a real TCP listener on a
// stable port, restartable, killable with the journal abandoned
// unsynced (the page cache survives a kill -9, which is exactly what
// reopening the files in-process reads back).
type deliveryDaemon struct {
	dir  string
	addr string
	now  func() time.Time

	st   *store.Store
	srv  *daemon.Server
	pers *daemon.Persistence
	hs   *http.Server
}

func (d *deliveryDaemon) start(inj *fault.Injector) error {
	d.st = store.New(store.Config{Now: d.now})
	d.srv = daemon.NewServer(d.st, daemon.Config{Now: d.now, MaxInflight: 64})
	d.srv.SetState(daemon.StateRecovering)
	pers, err := daemon.OpenPersistence(d.dir, d.st, d.srv.Dedup(), wal.Options{GroupCommit: true}, 16)
	if err != nil {
		return fmt.Errorf("daemon recovery: %w", err)
	}
	d.pers = pers
	d.srv.AttachPersistence(pers)
	d.srv.SetState(daemon.StateServing)

	handler := http.Handler(d.srv.Handler())
	if inj != nil {
		handler = daemon.ChaosHandler(handler, inj)
	}
	d.hs = daemon.HardenedServer(handler, time.Second)
	ln, err := listenPinned(d.addr)
	if err != nil {
		return fmt.Errorf("daemon listen: %w", err)
	}
	if d.addr == "127.0.0.1:0" {
		d.addr = ln.Addr().String() // pin the port for every restart
	}
	go d.hs.Serve(ln)
	return nil
}

// kill is the daemon's kill -9: connections severed, journal abandoned
// without sync, no snapshot, no drain.
func (d *deliveryDaemon) kill() {
	d.hs.Close()
	d.pers.Abandon()
}

// stop is the graceful exit used once the sweep's books are closed.
func (d *deliveryDaemon) stop() error {
	d.hs.Close()
	return d.pers.Shutdown()
}

// deliveryPusher is one pusher across its incarnations, with the
// driver-side cumulative books.
type deliveryPusher struct {
	prof      *witch.Profile
	body      []byte // oracle replays this exact wire body
	ctype     string
	encoding  string
	spoolDir  string
	spoolMax  int64
	url       string
	urls      []string // extra failover targets (cluster runs)
	clientInj *fault.Injector
	diskInj   *fault.Injector

	p  *witch.Pusher
	rt *http.Transport
	// base is the spool backlog inherited at this incarnation's open —
	// replays of it count toward Sent without ever touching Enqueued,
	// so the quiescence ledger must carry it on the debit side.
	base uint64

	accepted uint64
	sent     uint64
	replayed uint64
	spooled  uint64
	dropped  uint64
	evicted  uint64 // lifetime (spool meta), take the last observation
	byReason map[string]uint64
}

// open boots a pusher incarnation over the durable spool dir. faulty
// selects the injected transport and spool; the final drain incarnation
// runs clean so the backlog can actually leave.
func (cp *deliveryPusher) open(faulty bool) error {
	cp.rt = &http.Transport{}
	var rt http.RoundTripper = cp.rt
	var diskInj *fault.Injector
	if faulty {
		rt = &fault.Transport{Inner: rt, Inj: cp.clientInj}
		diskInj = cp.diskInj
	}
	p, err := witch.NewPusher(witch.PusherOptions{
		URL:               cp.url,
		URLs:              cp.urls,
		Queue:             512,
		Backoff:           2 * time.Millisecond,
		Client:            &http.Client{Transport: rt, Timeout: 2 * time.Second},
		BreakerThreshold:  3,
		BreakerCooldown:   20 * time.Millisecond,
		Logf:              func(string, ...any) {},
		Encoding:          cp.encoding,
		SpoolDir:          cp.spoolDir,
		SpoolMaxBytes:     cp.spoolMax,
		SpoolSegmentBytes: 512,
		SpoolInjector:     diskInj,
	})
	if err != nil {
		return fmt.Errorf("pusher open: %w", err)
	}
	cp.p = p
	cp.base = p.Stats().SpoolPending
	return nil
}

// harvest folds a finished incarnation's counters into the books.
func (cp *deliveryPusher) harvest() {
	s := cp.p.Stats()
	cp.sent += s.Sent
	cp.replayed += s.Replayed
	cp.spooled += s.Spooled
	cp.dropped += s.Dropped
	cp.evicted = s.SpoolEvicted // lifetime counter from the spool meta
	for r, n := range s.DroppedByReason {
		cp.byReason[r] += n
	}
}

// kill is the pusher's kill -9: sender goroutine stopped, spool
// abandoned without sync, in-memory queue state gone.
func (cp *deliveryPusher) kill() {
	cp.p.Abort()
	cp.harvest()
	cp.rt.CloseIdleConnections()
}

// finish closes the final incarnation gracefully and harvests it.
func (cp *deliveryPusher) finish() {
	cp.p.Close()
	cp.harvest()
	cp.rt.CloseIdleConnections()
}

// pushRound feeds n copies of the pusher's profile. A rejected Push is
// a sweep failure: the queue is sized so the only legal backpressure
// paths are the counted spool ones.
func (cp *deliveryPusher) pushRound(n int) error {
	for i := 0; i < n; i++ {
		if !cp.p.Push(cp.prof) {
			return fmt.Errorf("push rejected with queue size 512")
		}
		cp.accepted++
	}
	return nil
}

// quiesced reports whether every profile this incarnation is
// responsible for — the inherited spool backlog plus everything
// enqueued since — has been resolved: acknowledged, counted dropped,
// or parked durably in the spool.
func (cp *deliveryPusher) quiesced(s witch.PusherStats) bool {
	return cp.base+s.Enqueued == s.Sent+s.Dropped+s.SpoolPending
}

// drained additionally requires the spool backlog to be empty.
func (cp *deliveryPusher) drained(s witch.PusherStats) bool {
	return cp.quiesced(s) && s.SpoolPending == 0
}

// await polls cond against the pusher's stats until the deadline.
func (cp *deliveryPusher) await(cond func(witch.PusherStats) bool, what string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond(cp.p.Stats()) {
			return nil
		}
		time.Sleep(2 * time.Millisecond)
	}
	return fmt.Errorf("pusher never %s: %+v", what, cp.p.Stats())
}

func runDeliveryCase(c deliveryCase, base *witch.Profile, pushers, perRound int, seed int64) (deliveryResult, error) {
	var res deliveryResult
	root, err := os.MkdirTemp("", "witch-delivery-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(root)

	// A frozen clock on both the daemon under test and the oracle: every
	// batch lands in the same retention bucket, so the merged profile is
	// a pure function of the merge count.
	epoch := time.Unix(1700000000, 0)
	now := func() time.Time { return epoch }

	var serverInj *fault.Injector
	if c.server.Enabled() {
		serverInj = fault.NewInjector(c.server)
	}
	d := &deliveryDaemon{dir: filepath.Join(root, "witchd"), addr: "127.0.0.1:0", now: now}
	if err := d.start(serverInj); err != nil {
		return res, err
	}
	clientInj := fault.NewInjector(c.client)
	var diskInj *fault.Injector
	if c.disk.Enabled() {
		diskInj = fault.NewInjector(c.disk)
	}

	ps := make([]*deliveryPusher, pushers)
	for i := range ps {
		// Each pusher gets its own program name: its batches merge into
		// a private accumulator whose bytes witness its delivery count.
		prof := *base
		prof.Program = fmt.Sprintf("prog-%02d", i)
		encoding := "json"
		if i%2 == 1 {
			encoding = "binary"
		}
		cp := &deliveryPusher{
			prof:      &prof,
			encoding:  encoding,
			spoolDir:  filepath.Join(root, fmt.Sprintf("spool-%02d", i)),
			spoolMax:  c.spoolMax,
			url:       "http://" + d.addr,
			clientInj: clientInj,
			diskInj:   diskInj,
			byReason:  map[string]uint64{},
		}
		if encoding == "binary" {
			if cp.body, err = prof.AppendBinary(nil); err != nil {
				return res, err
			}
			cp.ctype = witch.BinaryContentType
		} else {
			var buf bytes.Buffer
			if err := prof.WriteJSONCompact(&buf); err != nil {
				return res, err
			}
			cp.body, cp.ctype = buf.Bytes(), "application/json"
		}
		if err := cp.open(true); err != nil {
			return res, err
		}
		ps[i] = cp
	}

	each := func(f func(*deliveryPusher) error) error {
		for _, cp := range ps {
			if err := f(cp); err != nil {
				return err
			}
		}
		return nil
	}
	quiesceAll := func() error {
		return each(func(cp *deliveryPusher) error { return cp.await(cp.quiesced, "quiesced", 60*time.Second) })
	}
	var maxDups uint64
	observeDups := func() {
		st := d.srv.Dedup().Stats()
		if n := st.Duplicates + st.Stale; n > maxDups {
			maxDups = n
		}
	}

	// Round 1, ending in a daemon kill-restart — mid-flight for the
	// ack-loss sweeps (in-flight commits whose acks die with the
	// connection), at quiescence for the drop-permitting sweeps (where a
	// committed-but-unacked batch could otherwise be evicted before its
	// retry, which no bookkeeping can reconcile).
	if err := each(func(cp *deliveryPusher) error { return cp.pushRound(perRound) }); err != nil {
		return res, err
	}
	if c.midStream {
		time.Sleep(30 * time.Millisecond)
	} else if err := quiesceAll(); err != nil {
		return res, err
	}
	observeDups()
	d.kill()

	// Round 2 runs against a dead daemon for the quiescent sweeps (the
	// dark window that forces spooling, spool faults, and eviction);
	// the mid-stream sweeps restart immediately.
	if c.midStream {
		if err := d.start(serverInj); err != nil {
			return res, err
		}
	}
	if err := each(func(cp *deliveryPusher) error { return cp.pushRound(perRound) }); err != nil {
		return res, err
	}
	if err := quiesceAll(); err != nil {
		return res, err
	}
	if !c.midStream {
		if err := d.start(serverInj); err != nil {
			return res, err
		}
	}

	// Pusher kill-restart: kill -9 every pusher at quiescence (the spool
	// is the only survivor) and reopen over the same spool dirs — the
	// restart must resume the identity, never reuse a sequence, and
	// never replay an acked entry.
	if err := each(func(cp *deliveryPusher) error { cp.kill(); return cp.open(true) }); err != nil {
		return res, err
	}

	// Round 3, then a second daemon kill for the mid-stream sweeps.
	if err := each(func(cp *deliveryPusher) error { return cp.pushRound(perRound) }); err != nil {
		return res, err
	}
	if c.midStream {
		time.Sleep(20 * time.Millisecond)
		observeDups()
		d.kill()
		if err := d.start(serverInj); err != nil {
			return res, err
		}
	}
	if err := quiesceAll(); err != nil {
		return res, err
	}

	// Clean drain: fault-free pusher incarnations against a fault-free
	// daemon incarnation, so the surviving backlog can finish. The
	// backlog includes every batch whose ack was lost — their replays
	// are the duplicate re-acks the dedup layer exists for.
	if err := each(func(cp *deliveryPusher) error { cp.kill(); return cp.open(false) }); err != nil {
		return res, err
	}
	observeDups()
	d.kill()
	if err := d.start(nil); err != nil {
		return res, err
	}
	if err := each(func(cp *deliveryPusher) error { return cp.await(cp.drained, "drained", 60*time.Second) }); err != nil {
		return res, err
	}
	each(func(cp *deliveryPusher) error { cp.finish(); return nil })
	observeDups()

	// The books must balance exactly: accepted = sent + dropped, and
	// every drop must carry an allowed reason.
	allowed := map[string]bool{}
	for _, r := range c.allowed {
		allowed[r] = true
	}
	for i, cp := range ps {
		if cp.accepted != cp.sent+cp.dropped {
			return res, fmt.Errorf("pusher %d books do not balance: accepted %d != sent %d + dropped %d",
				i, cp.accepted, cp.sent, cp.dropped)
		}
		for reason, n := range cp.byReason {
			if n > 0 && !allowed[reason] {
				return res, fmt.Errorf("pusher %d dropped %d profiles for unpermitted reason %q", i, n, reason)
			}
		}
		res.pushed += cp.accepted
		res.sent += cp.sent
		res.replayed += cp.replayed
		res.spooled += cp.spooled
		res.dropped += cp.dropped
		res.evicted += cp.evicted
	}
	res.netInjected = clientInj.TotalInjected()
	if serverInj != nil {
		res.chaosInjected = serverInj.TotalInjected()
	}
	if diskInj != nil {
		res.diskInjected = diskInj.TotalInjected()
	}
	res.dups = maxDups
	if c.client.Enabled() && res.netInjected == 0 {
		return res, fmt.Errorf("network fault plan enabled but nothing injected")
	}
	if c.server.Enabled() && res.chaosInjected == 0 {
		return res, fmt.Errorf("daemon chaos plan enabled but nothing injected")
	}
	if c.disk.Enabled() && res.diskInjected == 0 {
		return res, fmt.Errorf("spool disk fault plan enabled but nothing injected")
	}
	if c.wantDups && res.dups == 0 {
		return res, fmt.Errorf("ack-loss sweep produced no duplicate re-acks: the idempotency path never fired")
	}
	if c.spoolMax > 0 && res.evicted == 0 {
		return res, fmt.Errorf("overflow sweep with %d-byte spools evicted nothing", c.spoolMax)
	}

	// Oracle: a fault-free in-memory daemon fed exactly the acknowledged
	// batches. Byte-identical /v1/profile per program is the
	// exactly-once proof — a lost acked batch or a double merge shifts
	// the merged counters and the bytes diverge.
	if err := deliveryOracleCompare(d, now, ps); err != nil {
		return res, err
	}
	if err := d.stop(); err != nil {
		return res, fmt.Errorf("daemon graceful stop: %w", err)
	}
	return res, nil
}

// deliveryOracleCompare rebuilds the fault-free truth and compares the
// tortured daemon's merged view against it, byte for byte.
func deliveryOracleCompare(d *deliveryDaemon, now func() time.Time, ps []*deliveryPusher) error {
	ost := store.New(store.Config{Now: now})
	osrv := daemon.NewServer(ost, daemon.Config{Now: now})
	osrv.SetState(daemon.StateServing)
	oh := osrv.Handler()
	for i, cp := range ps {
		for k := uint64(0); k < cp.sent; k++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(cp.body))
			req.Header.Set("Content-Type", cp.ctype)
			rec := httptest.NewRecorder()
			oh.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				return fmt.Errorf("oracle ingest for pusher %d: %d %s", i, rec.Code, rec.Body.String())
			}
		}
	}
	for i, cp := range ps {
		q := "/v1/profile?tool=" + cp.prof.Tool + "&program=" + cp.prof.Program
		rec := httptest.NewRecorder()
		oh.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, q, nil))
		resp, err := http.Get("http://" + d.addr + q)
		if err != nil {
			return fmt.Errorf("querying tortured daemon: %w", err)
		}
		got, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != rec.Code {
			return fmt.Errorf("pusher %d (%d acked): daemon answered %d, oracle %d",
				i, cp.sent, resp.StatusCode, rec.Code)
		}
		if !bytes.Equal(got, rec.Body.Bytes()) {
			return fmt.Errorf("pusher %d (%d acked): merged profile diverges from the fault-free oracle — acked loss or double merge\n got: %.200s\nwant: %.200s",
				i, cp.sent, got, rec.Body.Bytes())
		}
	}
	return nil
}
