package harness

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/fault"
	"repro/internal/report"
	"repro/internal/wal"
	"repro/witch"
)

// Replica is the replicated-ownership chaos gate: a 3-node ring with
// RF=2, where the coordinator acks a keyed batch only after its own
// journal commit AND either a durable follower ack or a durable hint,
// must survive the permanent destruction of one node — kill -9 plus a
// data-dir wipe, journal, snapshots and hint journals all gone — with
// zero acked-batch loss.
//
// The run stacks the failure modes in sequence: a faulted round
// (injected refusals, timeouts and lost acks on the inter-node plane;
// injected write faults on the pusher spools), a temporary crash of one
// node (survivors promote, queue durable hints, and keep answering
// fleet queries WITHOUT the partial marker — that is what RF=2 buys),
// a heal-and-drain window, then the permanent destruction of the same
// node, a further round against the survivors, and finally a blank
// replacement booted on the dead node's address that must converge to
// digest equality through hint replay and anti-entropy repair alone.
//
// The gate is byte-level at two points: after the destruction, GET
// /v1/profile from every survivor must be byte-identical to a
// fault-free single-node oracle fed exactly the acked batches, with no
// X-Witch-Incomplete marker; and after the replacement converges, the
// same holds from all three nodes.
func Replica(w io.Writer, o Options) error {
	report.Section(w, "Replica: RF=2 ack-after-replicate, hinted handoff, anti-entropy repair")

	pushers, perRound := 6, 20
	if o.Quick {
		pushers, perRound = 3, 12
	}
	prof, err := witch.Run(mustWorkload("listing3"), witch.Options{
		Tool: witch.DeadStores, Period: 97, Seed: o.Seed,
	})
	if err != nil {
		return fmt.Errorf("replica: workload profile: %w", err)
	}

	fmt.Fprintf(w, "%d pushers x 3 rounds x %d batches on a 3-node RF=2 ring; net faults between nodes, disk faults on spools;\n", pushers, perRound)
	fmt.Fprintln(w, "one node crashes, heals, then is destroyed for good (kill -9 + data-dir wipe) and replaced blank")

	res, err := runReplica(prof, pushers, perRound, o)
	if err != nil {
		return fmt.Errorf("replica: %w", err)
	}

	tbl := report.NewTable("", "acked", "forwarded", "reroutes", "replicated", "hints queued", "hints replayed", "repair pulls", "net inj", "disk inj", "dup reacks")
	tbl.Row(fmt.Sprint(res.Acked), fmt.Sprint(res.Forwarded), fmt.Sprint(res.Reroutes),
		fmt.Sprint(res.Replicated), fmt.Sprint(res.HintsQueued), fmt.Sprint(res.HintsReplayed),
		fmt.Sprint(res.RepairPulls), fmt.Sprint(res.NetInjected), fmt.Sprint(res.DiskInjected),
		fmt.Sprint(res.Dups))
	tbl.Fprint(w)
	fmt.Fprintln(w, "\nsurvivors served complete byte-identical profiles after the permanent loss;")
	fmt.Fprintln(w, "blank replacement converged to digest equality; zero acked-batch loss")

	if !o.Quick {
		doc := struct {
			Experiment string        `json:"experiment"`
			Result     replicaResult `json:"result"`
		}{Experiment: "replica", Result: res}
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_replica.json", append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("replica: write BENCH_replica.json: %w", err)
		}
		fmt.Fprintln(w, "wrote BENCH_replica.json")
	}
	fmt.Fprintln(w)
	return nil
}

// replicaResult is the run's machine-readable summary.
type replicaResult struct {
	Pushers       int    `json:"pushers"`
	Acked         uint64 `json:"acked_batches"`
	Dropped       uint64 `json:"counted_drops"`
	Forwarded     uint64 `json:"forwarded_batches"`
	Reroutes      uint64 `json:"forward_reroutes"`
	Replicated    uint64 `json:"replicated_batches"`
	HintsQueued   uint64 `json:"hints_queued"`
	HintsReplayed uint64 `json:"hints_replayed"`
	RepairPulls   uint64 `json:"repair_pulls"`
	NetInjected   uint64 `json:"net_injected"`
	DiskInjected  uint64 `json:"disk_injected"`
	Dups          uint64 `json:"duplicate_reacks"`
}

// switchTransport routes inter-node requests through the faulted
// transport while on, and the clean one after the heal — so the fault
// window is a phase of the experiment, not a property of the client.
type switchTransport struct {
	clean  http.RoundTripper
	faulty http.RoundTripper
	on     atomic.Bool
}

func (t *switchTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.on.Load() {
		return t.faulty.RoundTrip(req)
	}
	return t.clean.RoundTrip(req)
}

func runReplica(base *witch.Profile, pushers, perRound int, o Options) (replicaResult, error) {
	res := replicaResult{Pushers: pushers}
	ctx := context.Background()
	root, err := os.MkdirTemp("", "witch-replica-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(root)
	epoch := time.Unix(1700000000, 0)
	now := func() time.Time { return epoch }

	// The inter-node plane: refused connections, injected timeouts and
	// lost acks between the daemons. A lost replicate ack makes the
	// coordinator hint a batch its follower already holds — the follower
	// must re-ack the hint replay as a duplicate, never re-merge it.
	netInj := fault.NewInjector(fault.Plan{
		ConnRefused: 0.06, ReqTimeout: 0.04, LostAck: 0.06, Seed: o.Seed + 91,
	})
	inner := &http.Transport{}
	sw := &switchTransport{clean: inner, faulty: &fault.Transport{Inner: inner, Inj: netInj}}
	sw.on.Store(true)
	interNode := &http.Client{Transport: sw, Timeout: 5 * time.Second}

	// The disk plane: injected write faults on the pusher spools (the
	// counted DropSpoolError path is the only loss the books permit).
	diskInj := fault.NewInjector(fault.Plan{ShortWrite: 0.03, ENOSPC: 0.03, Seed: o.Seed + 92})

	cns, err := bootClusterWith(root, 3, now, wal.Options{GroupCommit: true}, func(cn *clusterNode) {
		cn.rf = 2
		cn.client = interNode
	})
	if err != nil {
		return res, err
	}

	ps, err := replicaPushers(cns, base, pushers, root, diskInj)
	if err != nil {
		return res, err
	}
	each := func(f func(*deliveryPusher) error) error {
		for _, cp := range ps {
			if err := f(cp); err != nil {
				return err
			}
		}
		return nil
	}
	pushAll := func() error {
		return each(func(cp *deliveryPusher) error { return cp.pushRound(perRound) })
	}
	// Rounds await full delivery, not mere quiescence: with RF=2 the
	// ring stays writable through every fault below (reroutes and
	// failovers, never a dark window), so a batch parked in the spool is
	// a batch still owed an ack, and the hint/replicate counters the
	// gates read are only meaningful once everything landed.
	drainAll := func() error {
		return each(func(cp *deliveryPusher) error { return cp.await(cp.drained, "drained", 60*time.Second) })
	}

	// Round 1: the whole ring up, inter-node faults biting. Every ack
	// is already replicate-or-hint gated.
	if err := pushAll(); err != nil {
		return res, err
	}
	if err := drainAll(); err != nil {
		return res, err
	}

	// Round 2: kill -9 one node mid-ring. Its followers promote (the
	// preference list's next node coordinates), and every batch the dead
	// node should hold becomes a durable hint on a survivor.
	victim := cns[2]
	victim.kill()
	if err := pushAll(); err != nil {
		return res, err
	}
	if err := drainAll(); err != nil {
		return res, err
	}
	queuedMidOutage := uint64(0)
	for _, cn := range []*clusterNode{cns[0], cns[1]} {
		queuedMidOutage += cn.srv.ReplicationStats().HintsQueued
	}
	if queuedMidOutage == 0 {
		return res, fmt.Errorf("a dead replica produced no hinted handoff")
	}

	// Heal the fault plane, then prove RF=2's availability claim while
	// the victim is still down: survivors answer fleet queries COMPLETE
	// — every partition has a live replica — with no partial marker.
	sw.on.Store(false)
	for _, cn := range []*clusterNode{cns[0], cns[1]} {
		r, err := http.Get(cn.url + "/v1/top?tool=" + base.Tool + "&program=prog-00")
		if err != nil {
			return res, fmt.Errorf("survivor query: %w", err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			return res, fmt.Errorf("survivor %s answered %d mid-outage, want 200", cn.url, r.StatusCode)
		}
		if inc := r.Header.Get("X-Witch-Incomplete"); inc != "" {
			return res, fmt.Errorf("survivor %s marked the query partial mid-outage (%s): RF=2 should cover every partition", cn.url, inc)
		}
	}

	// Crash-recover the victim and let the hints drain into it. Only a
	// node with zero hints outstanding against it anywhere is safe to
	// destroy — the drain closes the replication debt the outage opened.
	if err := victim.start(); err != nil {
		return res, err
	}
	if err := awaitHintsDrained(ctx, cns, 60*time.Second); err != nil {
		return res, err
	}

	// Permanent loss: kill -9 AND wipe the data dir — journal,
	// snapshots, hint journals, everything. This node's state is gone
	// from the universe; only its replicas remember it.
	victim.kill()
	if err := os.RemoveAll(victim.dir); err != nil {
		return res, err
	}

	// Round 3 against the two survivors: pushers entering at the dead
	// node fail over, batches it owned reroute to promoted followers,
	// and its share of new batches queues as hints for the replacement.
	if err := pushAll(); err != nil {
		return res, err
	}
	if err := drainAll(); err != nil {
		return res, err
	}
	each(func(cp *deliveryPusher) error { cp.finish(); return nil })

	// The books: every accepted batch was acked or counted dropped on
	// the one permitted path (spool write faults).
	for i, cp := range ps {
		if cp.accepted != cp.sent+cp.dropped {
			return res, fmt.Errorf("pusher %d books do not balance: accepted %d != sent %d + dropped %d",
				i, cp.accepted, cp.sent, cp.dropped)
		}
		for reason, n := range cp.byReason {
			if n > 0 && reason != witch.DropSpoolError {
				return res, fmt.Errorf("pusher %d dropped %d batches for unpermitted reason %q", i, n, reason)
			}
		}
		res.Acked += cp.sent
		res.Dropped += cp.dropped
	}

	// The tentpole's first gate: with one node permanently gone, every
	// SURVIVOR serves every pusher's merged profile byte-identical to
	// the fault-free oracle, complete, no partial marker.
	survivors := []*clusterNode{cns[0], cns[1]}
	if err := clusterOracleCompare(survivors, now, ps); err != nil {
		return res, fmt.Errorf("after permanent loss: %w", err)
	}

	// A blank replacement on the dead node's address: same ring, empty
	// dirs. Hint replay pushes the outage-era batches at it; anti-entropy
	// repair pulls everything else; the run is converged when the
	// replica sets agree digest-for-digest.
	replacement := &clusterNode{
		dir:  victim.dir,
		addr: victim.addr, url: victim.url,
		peers: victim.peers, rf: victim.rf, client: victim.client,
		now: now, walOpts: victim.walOpts,
	}
	if err := replacement.start(); err != nil {
		return res, fmt.Errorf("blank replacement boot: %w", err)
	}
	cns[2] = replacement
	if err := awaitReplicaConvergence(ctx, cns, replacement, 60*time.Second); err != nil {
		return res, err
	}

	// The second gate: the converged ring — replacement included —
	// serves the oracle bytes from every node.
	if err := clusterOracleCompare(cns, now, ps); err != nil {
		return res, fmt.Errorf("after replacement convergence: %w", err)
	}

	for _, cn := range cns {
		cs := cn.cl.StatsSnapshot()
		res.Forwarded += cs.Forwards
		res.Reroutes += cs.ForwardReroutes
		res.Replicated += cs.Replicates
		rs := cn.srv.ReplicationStats()
		res.HintsQueued += rs.HintsQueued
		res.HintsReplayed += rs.HintsReplayed
		res.RepairPulls += rs.RepairPulls
		ds := cn.srv.Dedup().Stats()
		res.Dups += ds.Duplicates + ds.Stale
	}
	res.NetInjected = netInj.TotalInjected()
	res.DiskInjected = diskInj.TotalInjected()
	switch {
	case res.Forwarded == 0:
		return res, fmt.Errorf("the ring never forwarded")
	case res.Replicated == 0:
		return res, fmt.Errorf("no batch was synchronously replicated")
	case res.Reroutes == 0:
		return res, fmt.Errorf("no forward rerouted past the dead owner")
	case res.HintsReplayed == 0:
		return res, fmt.Errorf("no hint was ever replayed")
	case res.RepairPulls == 0:
		return res, fmt.Errorf("the blank replacement never repair-pulled a partition")
	case res.NetInjected == 0:
		return res, fmt.Errorf("inter-node fault plan enabled but nothing injected")
	case res.DiskInjected == 0:
		return res, fmt.Errorf("spool disk fault plan enabled but nothing injected")
	}

	for _, cn := range cns {
		if err := cn.stop(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// replicaPushers builds the owner-affined pusher fleet: pusher i is
// owned by node i%3 but ENTERS at the next node over, so every batch
// takes the forwarding hop, and the other nodes serve as failover
// targets — destroying node 2 then hits an owner (its pushers reroute
// to the promoted follower), an entry node (its pushers fail over),
// and a replica (its share of every set becomes hints) at once.
func replicaPushers(cns []*clusterNode, base *witch.Profile, pushers int, root string, diskInj *fault.Injector) ([]*deliveryPusher, error) {
	ps := make([]*deliveryPusher, pushers)
	for i := range ps {
		prof := *base
		prof.Program = fmt.Sprintf("prog-%02d", i)
		encoding := "json"
		if i%2 == 1 {
			encoding = "binary"
		}
		owner := i % 3
		entry := (owner + 1) % 3
		var others []string
		for j, cn := range cns {
			if j != entry {
				others = append(others, cn.url)
			}
		}
		cp := &deliveryPusher{
			prof:     &prof,
			encoding: encoding,
			spoolDir: filepath.Join(root, fmt.Sprintf("spool-%02d", i)),
			url:      cns[entry].url,
			urls:     others,
			diskInj:  diskInj,
			byReason: map[string]uint64{},
		}
		var err error
		if encoding == "binary" {
			if cp.body, err = prof.AppendBinary(nil); err != nil {
				return nil, err
			}
			cp.ctype = witch.BinaryContentType
		} else {
			var buf bytes.Buffer
			if err := prof.WriteJSONCompact(&buf); err != nil {
				return nil, err
			}
			cp.body, cp.ctype = buf.Bytes(), "application/json"
		}
		// Re-draw the durable identity until node i%3 owns it.
		for try := 0; ; try++ {
			if err := cp.open(true); err != nil {
				return nil, err
			}
			if cns[0].cl.Owner(cp.p.ID()) == cns[owner].url {
				break
			}
			cp.p.Close()
			os.RemoveAll(cp.spoolDir)
			if try == 200 {
				return nil, fmt.Errorf("no pusher identity hashed to node %d in 200 draws", owner)
			}
		}
		ps[i] = cp
	}
	return ps, nil
}

// awaitHintsDrained sweeps every node's hint queues until nothing is
// pending anywhere (explicit DrainHintsNow calls plus the background
// drain; the deadline covers breaker cooldowns on the healed peer).
func awaitHintsDrained(ctx context.Context, cns []*clusterNode, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		pending := 0
		for _, cn := range cns {
			cn.srv.DrainHintsNow(ctx)
			pending += cn.srv.ReplicationStats().HintsPending
		}
		if pending == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("hints never drained: %d still pending", pending)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// awaitReplicaConvergence drives hint drains on the survivors and
// repair rounds on the replacement until every replica set agrees
// digest-for-digest, then requires the replacement to actually hold
// partitions (a vacuously empty digest is not convergence).
func awaitReplicaConvergence(ctx context.Context, cns []*clusterNode, replacement *clusterNode, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last error
	for {
		for _, cn := range cns {
			cn.srv.DrainHintsNow(ctx)
		}
		replacement.srv.RepairNow(ctx)
		if last = replicaDigestsEqual(ctx, cns, replacement); last == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("replacement never converged: %v", last)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// replicaDigestsEqual fetches every node's /v1/digest and checks that
// each pusher's replica-set members hold identical (max, n, sum) rows.
func replicaDigestsEqual(ctx context.Context, cns []*clusterNode, replacement *clusterNode) error {
	ref := cns[0].cl
	digs := make(map[string]*cluster.Digest, len(cns))
	for _, cn := range cns {
		d, err := ref.FetchDigest(ctx, cn.url)
		if err != nil {
			return fmt.Errorf("digest from %s: %w", cn.url, err)
		}
		digs[cn.url] = d
	}
	if len(digs[replacement.url].Pushers) == 0 {
		return fmt.Errorf("replacement digest still empty")
	}
	ids := map[string]bool{}
	for _, d := range digs {
		for id := range d.Pushers {
			ids[id] = true
		}
	}
	if len(ids) == 0 {
		return fmt.Errorf("no pusher partitions anywhere")
	}
	for id := range ids {
		var want cluster.DigestEntry
		first := true
		for _, cn := range cns {
			if !ref.InReplicaSet(id, cn.url) {
				continue
			}
			got, ok := digs[cn.url].Pushers[id]
			if !ok {
				return fmt.Errorf("replica %s holds nothing for pusher %s", cn.url, id)
			}
			if first {
				want, first = got, false
				continue
			}
			if got != want {
				return fmt.Errorf("pusher %s diverges: %+v vs %+v", id, got, want)
			}
		}
	}
	return nil
}
