package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/daemon"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/store"
	"repro/internal/wal"
	"repro/witch"
)

// Cluster is the sharded-witchd macro-benchmark and chaos gate, in two
// phases.
//
// Phase 1 (scaling): N-node rings under constant per-node offered load
// (P pushers per node, spraying batches round-robin across entry
// nodes, so most batches take the forwarding hop). The journal runs
// fsync=always over a deterministic disk model (wal.Options.SyncDelay)
// because real parallel fsync on this box's single device measures the
// device, not the sharding: each node owns an independent journal, so
// acked-batch throughput must scale with node count. The gate is the
// 3-node ring delivering >= 2.5x (quick: 2x) the single node's
// batches/s.
//
// Phase 2 (chaos): a 3-node ring on real fsync, durable spooled
// pushers with the full peer list as failover targets, and a kill -9
// of one node mid-stream. While the victim is down, a survivor must
// answer fleet queries with the X-Witch-Incomplete marker naming
// exactly the dead peer; pushers whose owner died must park their
// backlog in the spool. After the victim restarts (journal replay, no
// snapshot, no drain — the crash path) and the spools drain, the books
// must balance with zero drops, and GET /v1/profile for every
// pusher's program from EVERY node must be byte-identical to a
// fault-free single-node oracle fed exactly the acked batches — the
// exactly-once proof stretched over forwarding, failover, and a
// node-level crash.
func Cluster(w io.Writer, o Options) error {
	report.Section(w, "Cluster: sharded ingest, replicated forwarding, scatter-gather queries")

	perNode, perPusher, reps, minSpeedup := 6, 15, 2, 2.5
	if o.Quick {
		perNode, perPusher, reps, minSpeedup = 4, 10, 1, 2.0
	}
	// 5ms per commit: large enough that journal time dominates the
	// one-core CPU cost of the extra forwarding hop, so the measured
	// ratio is the sharding and not scheduler noise.
	const syncDelay = 5 * time.Millisecond
	prof, err := witch.Run(mustWorkload("listing3"), witch.Options{
		Tool: witch.DeadStores, Period: 97, Seed: o.Seed,
	})
	if err != nil {
		return fmt.Errorf("cluster: workload profile: %w", err)
	}

	fmt.Fprintf(w, "scaling: %d pushers/node x %d batches, entry nodes sprayed round-robin, fsync=always over a %s disk model, best of %d\n\n",
		perNode, perPusher, syncDelay, reps)

	type scalePoint struct {
		Nodes         int     `json:"nodes"`
		Pushers       int     `json:"pushers"`
		Batches       int     `json:"acked_batches"`
		Seconds       float64 `json:"seconds"`
		BatchesPerSec float64 `json:"batches_per_sec"`
		Forwards      uint64  `json:"forwards"`
		Speedup       float64 `json:"speedup_vs_one_node"`
	}
	points := make([]scalePoint, 0, 2)
	for _, n := range []int{1, 3} {
		var best time.Duration
		var forwards uint64
		for r := 0; r < reps; r++ {
			elapsed, fwd, err := runClusterScale(prof, n, perNode, perPusher, syncDelay)
			if err != nil {
				return fmt.Errorf("cluster: %d-node scale run: %w", n, err)
			}
			if best == 0 || elapsed < best {
				best, forwards = elapsed, fwd
			}
		}
		batches := n * perNode * perPusher
		points = append(points, scalePoint{
			Nodes: n, Pushers: n * perNode, Batches: batches,
			Seconds:       best.Seconds(),
			BatchesPerSec: float64(batches) / best.Seconds(),
			Forwards:      forwards,
		})
	}
	tbl := report.NewTable("", "nodes", "pushers", "acked batches", "elapsed", "batches/s", "forwards", "vs 1 node")
	for i := range points {
		points[i].Speedup = points[i].BatchesPerSec / points[0].BatchesPerSec
		p := points[i]
		tbl.Row(fmt.Sprint(p.Nodes), fmt.Sprint(p.Pushers), fmt.Sprint(p.Batches),
			report.Dur(time.Duration(p.Seconds*float64(time.Second))),
			report.F(p.BatchesPerSec, 0), fmt.Sprint(p.Forwards), report.X(p.Speedup))
	}
	tbl.Fprint(w)
	speedup := points[len(points)-1].Speedup
	fmt.Fprintf(w, "\n3-node scaling %s (gate: >=%.1fx)\n", report.X(speedup), minSpeedup)
	if speedup < minSpeedup {
		return fmt.Errorf("cluster: 3-node speedup %.2fx below the %.1fx gate", speedup, minSpeedup)
	}

	chaos, err := runClusterChaos(prof, o)
	if err != nil {
		return fmt.Errorf("cluster: chaos: %w", err)
	}
	fmt.Fprintf(w, "\nchaos: %d spooled pushers, kill -9 of one node mid-stream, restart, drain\n", chaos.Pushers)
	ctbl := report.NewTable("", "acked", "forwarded", "failovers", "spooled", "dup reacks", "partial queries", "oracle")
	ctbl.Row(fmt.Sprint(chaos.Acked), fmt.Sprint(chaos.Forwarded), fmt.Sprint(chaos.Failovers),
		fmt.Sprint(chaos.Spooled), fmt.Sprint(chaos.Dups), "marked incomplete", "byte-identical")
	ctbl.Fprint(w)
	fmt.Fprintln(w, "\nchaos: zero acked-batch loss; merged profiles byte-identical to the single-node oracle from every node")

	if !o.Quick {
		doc := struct {
			Experiment  string       `json:"experiment"`
			DiskModelMS float64      `json:"disk_model_ms"`
			Scale       []scalePoint `json:"scale"`
			Chaos       clusterChaos `json:"chaos"`
		}{
			Experiment:  "cluster",
			DiskModelMS: float64(syncDelay) / float64(time.Millisecond),
			Scale:       points,
			Chaos:       chaos,
		}
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_cluster.json", append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("cluster: write BENCH_cluster.json: %w", err)
		}
		fmt.Fprintln(w, "wrote BENCH_cluster.json")
	}
	fmt.Fprintln(w)
	return nil
}

// clusterNode is one witchd of a ring: durable journal on its own dir,
// a real TCP listener on a stable port, killable with the journal
// abandoned unsynced and restartable through crash recovery.
type clusterNode struct {
	dir     string
	addr    string
	url     string
	peers   []string     // nil for a standalone node
	rf      int          // replica-set size; 0 or 1 = single-owner
	client  *http.Client // inter-node client (nil = plain; replica runs thread faults here)
	now     func() time.Time
	walOpts wal.Options
	ob      *obs.Observer // nil (the default) leaves the layer off

	st   *store.Store
	srv  *daemon.Server
	pers *daemon.Persistence
	cl   *cluster.Router
	hs   *http.Server
	ln   net.Listener // pre-reserved so peer lists exist before boot
}

func (n *clusterNode) start() error {
	n.st = store.New(store.Config{Now: n.now})
	n.srv = daemon.NewServer(n.st, daemon.Config{Now: n.now, MaxInflight: 64, Obs: n.ob})
	n.srv.SetState(daemon.StateRecovering)
	walOpts := n.walOpts
	if n.ob != nil {
		ob := n.ob
		walOpts.ObserveCommit = func(wait time.Duration) { ob.Stage(obs.StageJournal, wait) }
	}
	pers, err := daemon.OpenPersistence(n.dir, n.st, n.srv.Dedup(), walOpts, 16)
	if err != nil {
		return fmt.Errorf("node %s recovery: %w", n.url, err)
	}
	n.pers = pers
	n.srv.AttachPersistence(pers)
	if len(n.peers) > 1 {
		cl, err := cluster.New(cluster.Config{
			Self: n.url, Peers: n.peers,
			ReplicationFactor: n.rf,
			Client:            n.client,
			Logf:              func(string, ...any) {},
			Obs:               n.ob,
		})
		if err != nil {
			return err
		}
		n.cl = cl
		n.srv.AttachCluster(cl)
		if n.rf > 1 {
			// The hint journals live under the node's own data dir: a
			// data-dir wipe is a full identity wipe, hints included.
			if err := n.srv.StartReplication(daemon.ReplicationConfig{
				HintDir:        filepath.Join(n.dir, "hints"),
				DrainInterval:  25 * time.Millisecond,
				RepairInterval: -1, // the harness drives RepairNow explicitly
				WalOpts:        n.walOpts,
			}); err != nil {
				return fmt.Errorf("node %s replication: %w", n.url, err)
			}
		}
	}
	n.srv.SetState(daemon.StateServing)
	n.hs = daemon.HardenedServer(n.srv.Handler(), time.Second)
	ln := n.ln
	n.ln = nil
	if ln == nil {
		if ln, err = listenPinned(n.addr); err != nil {
			return fmt.Errorf("node %s relisten: %w", n.url, err)
		}
	}
	go n.hs.Serve(ln)
	return nil
}

// kill is the node's kill -9: connections severed, journal and hint
// journals abandoned unsynced, no snapshot, no drain.
func (n *clusterNode) kill() {
	n.hs.Close()
	n.srv.AbortReplication()
	n.pers.Abandon()
}

func (n *clusterNode) stop() error {
	n.hs.Close()
	n.srv.StopReplication()
	return n.pers.Shutdown()
}

// bootCluster reserves ports for the whole ring first (membership is
// static and every node needs the full list at boot), then starts the
// nodes.
func bootCluster(root string, nodes int, now func() time.Time, walOpts wal.Options) ([]*clusterNode, error) {
	return bootClusterWith(root, nodes, now, walOpts, nil)
}

// bootClusterWith is bootCluster with a per-node configure hook that
// runs after the ports are reserved and before the node starts (the
// replica experiment sets rf and the faulted inter-node client there).
func bootClusterWith(root string, nodes int, now func() time.Time, walOpts wal.Options, configure func(*clusterNode)) ([]*clusterNode, error) {
	cns := make([]*clusterNode, nodes)
	urls := make([]string, nodes)
	for i := range cns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		addr := ln.Addr().String()
		cns[i] = &clusterNode{
			dir:  filepath.Join(root, fmt.Sprintf("node-%d", i)),
			addr: addr, url: "http://" + addr,
			now: now, walOpts: walOpts, ln: ln,
		}
		urls[i] = cns[i].url
	}
	for _, cn := range cns {
		if nodes > 1 {
			cn.peers = urls
		}
		if configure != nil {
			configure(cn)
		}
		if err := cn.start(); err != nil {
			return nil, err
		}
	}
	return cns, nil
}

// runClusterScale drives one ring size and returns the wall time from
// first push to last ack plus the ring's forward count. Pusher
// identities are sampled until each node owns exactly perNode of them,
// so the load is balanced by construction and the measured spread is
// the sharding, not hash luck.
func runClusterScale(prof *witch.Profile, nodes, perNode, perPusher int, syncDelay time.Duration) (time.Duration, uint64, error) {
	root, err := os.MkdirTemp("", "witch-cluster-scale-")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(root)
	epoch := time.Unix(1700000000, 0)
	cns, err := bootCluster(root, nodes, func() time.Time { return epoch },
		wal.Options{SyncDelay: syncDelay})
	if err != nil {
		return 0, 0, err
	}

	pushers := make([]*witch.Pusher, 0, nodes*perNode)
	for owner := 0; owner < nodes; owner++ {
		for k := 0; k < perNode; k++ {
			entry := cns[(owner*perNode+k)%nodes].url
			p, err := ownedPusher(cns, entry, owner, perPusher)
			if err != nil {
				return 0, 0, err
			}
			pushers = append(pushers, p)
		}
	}

	errc := make(chan error, len(pushers))
	start := time.Now()
	var wg sync.WaitGroup
	for _, p := range pushers {
		wg.Add(1)
		go func(p *witch.Pusher) {
			defer wg.Done()
			for j := 0; j < perPusher; j++ {
				if !p.Push(prof) {
					p.Close()
					errc <- fmt.Errorf("push %d rejected", j)
					return
				}
			}
			p.Close() // blocks until every batch is acked
			if s := p.Stats(); s.Sent != uint64(perPusher) || s.Dropped != 0 {
				errc <- fmt.Errorf("pusher delivered %d/%d (dropped %d)", s.Sent, perPusher, s.Dropped)
			}
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errc)
	for err := range errc {
		return 0, 0, err
	}

	var ingested, forwards uint64
	for _, cn := range cns {
		ingested += cn.st.Stats().Ingested
		if cn.cl != nil {
			forwards += cn.cl.StatsSnapshot().Forwards
		}
	}
	if want := uint64(nodes * perNode * perPusher); ingested != want {
		return 0, 0, fmt.Errorf("ring ingested %d batches, want %d", ingested, want)
	}
	if nodes > 1 && forwards == 0 {
		return 0, 0, fmt.Errorf("round-robin entry spray produced zero forwards")
	}
	for _, cn := range cns {
		if err := cn.stop(); err != nil {
			return 0, 0, err
		}
	}
	return elapsed, forwards, nil
}

// ownedPusher creates pushers (random durable identities) until the
// ring assigns one to the wanted owner node, then keeps that one.
func ownedPusher(cns []*clusterNode, entryURL string, owner, queue int) (*witch.Pusher, error) {
	for try := 0; try < 200; try++ {
		p, err := witch.NewPusher(witch.PusherOptions{
			URL: entryURL, Queue: queue, Encoding: "binary",
			Backoff: time.Millisecond,
			Client:  &http.Client{Timeout: 10 * time.Second},
			Logf:    func(string, ...any) {},
		})
		if err != nil {
			return nil, err
		}
		if len(cns) == 1 || cns[0].cl.Owner(p.ID()) == cns[owner].url {
			return p, nil
		}
		p.Close()
	}
	return nil, fmt.Errorf("no pusher identity hashed to node %d in 200 draws", owner)
}

// clusterChaos is the chaos phase's machine-readable summary.
type clusterChaos struct {
	Pushers   int    `json:"pushers"`
	Acked     uint64 `json:"acked_batches"`
	Forwarded uint64 `json:"forwarded_batches"`
	Failovers uint64 `json:"pusher_failovers"`
	Spooled   uint64 `json:"spooled_batches"`
	Dups      uint64 `json:"duplicate_reacks"`
}

func runClusterChaos(base *witch.Profile, o Options) (clusterChaos, error) {
	var res clusterChaos
	pushers, perRound := 6, 20
	if o.Quick {
		pushers, perRound = 3, 12
	}
	res.Pushers = pushers
	root, err := os.MkdirTemp("", "witch-cluster-chaos-")
	if err != nil {
		return res, err
	}
	defer os.RemoveAll(root)
	epoch := time.Unix(1700000000, 0)
	now := func() time.Time { return epoch }
	cns, err := bootCluster(root, 3, now, wal.Options{GroupCommit: true})
	if err != nil {
		return res, err
	}

	// Pusher i is owned by node i%3 (identity re-drawn until the ring
	// agrees) and enters at node i%3 too, with the other two nodes as
	// failover targets — so killing node 2 hits every role at once:
	// an owner (its pushers must spool), an entry (its pushers must
	// fail over), and a query shard (survivors must mark it).
	ps := make([]*deliveryPusher, pushers)
	for i := range ps {
		prof := *base
		prof.Program = fmt.Sprintf("prog-%02d", i)
		encoding := "json"
		if i%2 == 1 {
			encoding = "binary"
		}
		owner := i % 3
		var others []string
		for j, cn := range cns {
			if j != owner {
				others = append(others, cn.url)
			}
		}
		cp := &deliveryPusher{
			prof:     &prof,
			encoding: encoding,
			spoolDir: filepath.Join(root, fmt.Sprintf("spool-%02d", i)),
			url:      cns[owner].url,
			urls:     others,
			byReason: map[string]uint64{},
		}
		if encoding == "binary" {
			if cp.body, err = prof.AppendBinary(nil); err != nil {
				return res, err
			}
			cp.ctype = witch.BinaryContentType
		} else {
			var buf bytes.Buffer
			if err := prof.WriteJSONCompact(&buf); err != nil {
				return res, err
			}
			cp.body, cp.ctype = buf.Bytes(), "application/json"
		}
		// Re-draw the durable identity until node i%3 owns it: open the
		// spool (which mints and persists the ID), check, discard.
		for try := 0; ; try++ {
			if err := cp.open(false); err != nil {
				return res, err
			}
			if cns[0].cl.Owner(cp.p.ID()) == cns[owner].url {
				break
			}
			cp.p.Close()
			os.RemoveAll(cp.spoolDir)
			if try == 200 {
				return res, fmt.Errorf("no pusher identity hashed to node %d in 200 draws", owner)
			}
		}
		ps[i] = cp
	}

	each := func(f func(*deliveryPusher) error) error {
		for _, cp := range ps {
			if err := f(cp); err != nil {
				return err
			}
		}
		return nil
	}
	pushAll := func() error {
		return each(func(cp *deliveryPusher) error { return cp.pushRound(perRound) })
	}

	// Round 1 lands cleanly; round 2 is cut mid-flight by the kill.
	if err := pushAll(); err != nil {
		return res, err
	}
	if err := each(func(cp *deliveryPusher) error { return cp.await(cp.quiesced, "quiesced", 60*time.Second) }); err != nil {
		return res, err
	}
	if err := pushAll(); err != nil {
		return res, err
	}
	time.Sleep(30 * time.Millisecond)
	victim := cns[2]
	victim.kill()

	// Round 3 runs against the two survivors: victim-owned batches park
	// in the spool behind the relayed 503s, victim-entry batches fail
	// over to live entry nodes.
	if err := pushAll(); err != nil {
		return res, err
	}

	// A survivor must keep answering — partially, and say so.
	r, err := http.Get(cns[0].url + "/v1/top?tool=" + base.Tool + "&program=prog-00")
	if err != nil {
		return res, fmt.Errorf("survivor query: %w", err)
	}
	io.Copy(io.Discard, r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		return res, fmt.Errorf("survivor query: HTTP %d, want partial 200", r.StatusCode)
	}
	if got := r.Header.Get("X-Witch-Incomplete"); got != victim.url {
		return res, fmt.Errorf("survivor did not mark the dead peer: X-Witch-Incomplete=%q, want %q", got, victim.url)
	}

	if err := each(func(cp *deliveryPusher) error { return cp.await(cp.quiesced, "quiesced", 60*time.Second) }); err != nil {
		return res, err
	}
	for _, cp := range ps {
		res.Failovers += cp.p.Stats().Failovers
	}

	// Crash recovery: reopen the victim over its journal, then drain
	// every spool through the ring.
	if err := victim.start(); err != nil {
		return res, err
	}
	if err := each(func(cp *deliveryPusher) error { return cp.await(cp.drained, "drained", 60*time.Second) }); err != nil {
		return res, err
	}
	each(func(cp *deliveryPusher) error { cp.finish(); return nil })

	// The books: every accepted batch was acked; the only tolerated
	// delay path is the spool, never a drop.
	for i, cp := range ps {
		if cp.accepted != cp.sent+cp.dropped {
			return res, fmt.Errorf("pusher %d books do not balance: accepted %d != sent %d + dropped %d",
				i, cp.accepted, cp.sent, cp.dropped)
		}
		if cp.dropped != 0 {
			return res, fmt.Errorf("pusher %d dropped %d batches: %v", i, cp.dropped, cp.byReason)
		}
		res.Acked += cp.sent
		res.Spooled += cp.spooled
	}
	for _, cn := range cns {
		res.Forwarded += cn.cl.StatsSnapshot().Forwards
		ds := cn.srv.Dedup().Stats()
		res.Dups += ds.Duplicates + ds.Stale
	}
	if res.Forwarded == 0 {
		return res, fmt.Errorf("chaos run forwarded nothing: the ring never routed")
	}
	if res.Failovers == 0 {
		return res, fmt.Errorf("pushers entering at the dead node never failed over")
	}

	// Oracle: a fault-free standalone witchd fed exactly the acked
	// batches. Every node of the ring must serve the byte-identical
	// merged profile for every program.
	if err := clusterOracleCompare(cns, now, ps); err != nil {
		return res, err
	}
	for _, cn := range cns {
		if err := cn.stop(); err != nil {
			return res, err
		}
	}
	return res, nil
}

// clusterOracleCompare rebuilds the fault-free truth on one node and
// compares every ring node's scatter-gathered answer against it.
func clusterOracleCompare(cns []*clusterNode, now func() time.Time, ps []*deliveryPusher) error {
	ost := store.New(store.Config{Now: now})
	osrv := daemon.NewServer(ost, daemon.Config{Now: now})
	osrv.SetState(daemon.StateServing)
	oh := osrv.Handler()
	for i, cp := range ps {
		for k := uint64(0); k < cp.sent; k++ {
			req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(cp.body))
			req.Header.Set("Content-Type", cp.ctype)
			rec := httptest.NewRecorder()
			oh.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				return fmt.Errorf("oracle ingest for pusher %d: %d %s", i, rec.Code, rec.Body.String())
			}
		}
	}
	for i, cp := range ps {
		q := "/v1/profile?tool=" + cp.prof.Tool + "&program=" + cp.prof.Program
		rec := httptest.NewRecorder()
		oh.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, q, nil))
		for _, cn := range cns {
			resp, err := http.Get(cn.url + q)
			if err != nil {
				return fmt.Errorf("querying node %s: %w", cn.url, err)
			}
			got, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				return err
			}
			if resp.StatusCode != rec.Code {
				return fmt.Errorf("pusher %d (%d acked): node %s answered %d, oracle %d",
					i, cp.sent, cn.url, resp.StatusCode, rec.Code)
			}
			if inc := resp.Header.Get("X-Witch-Incomplete"); inc != "" {
				return fmt.Errorf("node %s still partial after restart: %s", cn.url, inc)
			}
			if !bytes.Equal(got, rec.Body.Bytes()) {
				return fmt.Errorf("pusher %d (%d acked): node %s diverges from the fault-free oracle — acked loss or double merge\n got: %.200s\nwant: %.200s",
					i, cp.sent, cn.url, got, rec.Body.Bytes())
			}
		}
	}
	return nil
}
