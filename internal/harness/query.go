package harness

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"time"

	"repro/internal/daemon"
	"repro/internal/report"
	"repro/internal/store"
	"repro/internal/wal"
	"repro/witch"
)

// Query is the query-fast-path benchmark and correctness gate, in two
// phases.
//
// Phase 1 (single node): a daemon seeded with a large aggregate state
// (>=100k distinct pairs across many programs) answers repeated
// /v1/top queries. The cached daemon (store memoization plus the
// rendered-response cache) is raced against an uncached oracle — the
// same daemon with both caches disabled, fed the identical batches —
// under a trickle of ingest that keeps invalidating and re-warming the
// caches. The gates: steady-state cached throughput >= 5x the oracle's
// (quick: 3x), and every /v1/top and /v1/profile body byte-identical
// to the oracle's throughout. Byte equality is the whole point of the
// epoch design — the cache may only ever serve what a fresh fold would
// have produced.
//
// Phase 2 (3 nodes): the same seeding sharded across a ring, where the
// coordinator's scatter pays O(total state) bytes exactly once. The
// first fleet query full-ships every shard; repeat queries at
// unchanged epochs present the remembered epoch vectors and receive
// near-empty deltas. The gates: >=80% reduction in scatter
// bytes-on-wire per steady-state query vs the first, delta legs
// actually taken, and — after further keyed trickle — /v1/profile from
// every node byte-identical to a fault-free single-node oracle, with
// no partial marker.
func Query(w io.Writer, o Options) error {
	report.Section(w, "Query fast path: epoch caches, rendered responses, delta scatter")

	programs, pairsPer, minSpeedup := 50, 2500, 5.0
	cachedIters, oracleIters, trickleRounds := 3000, 12, 5
	if o.Quick {
		programs, pairsPer, minSpeedup = 12, 500, 3.0
		cachedIters, oracleIters, trickleRounds = 800, 8, 2
	}
	res := queryResult{SeedPairs: programs * pairsPer, Programs: programs}

	fmt.Fprintf(w, "seed: %d programs x %d pairs (%d total); cached vs uncached-oracle daemons, byte-compared throughout\n\n",
		programs, pairsPer, res.SeedPairs)

	if err := runQuerySingle(w, o, &res, programs, pairsPer, cachedIters, oracleIters, trickleRounds); err != nil {
		return fmt.Errorf("query: single node: %w", err)
	}
	if res.Speedup < minSpeedup {
		return fmt.Errorf("query: cached throughput %.1fx the oracle, below the %.0fx gate", res.Speedup, minSpeedup)
	}
	if err := runQueryFleet(w, o, &res); err != nil {
		return fmt.Errorf("query: 3-node: %w", err)
	}
	if res.ScatterReduction < 0.8 {
		return fmt.Errorf("query: steady-state scatter bytes reduced only %.0f%%, below the 80%% gate", 100*res.ScatterReduction)
	}
	if res.DeltaLegs == 0 {
		return fmt.Errorf("query: no scatter leg ever shipped a delta")
	}

	if !o.Quick {
		doc := struct {
			Experiment string      `json:"experiment"`
			Result     queryResult `json:"result"`
		}{Experiment: "query", Result: res}
		blob, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile("BENCH_query.json", append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("query: write BENCH_query.json: %w", err)
		}
		fmt.Fprintln(w, "wrote BENCH_query.json")
	}
	fmt.Fprintln(w)
	return nil
}

// queryResult is the run's machine-readable summary.
type queryResult struct {
	SeedPairs        int     `json:"seed_pairs"`
	Programs         int     `json:"programs"`
	OracleQPS        float64 `json:"single_node_uncached_qps"`
	CachedQPS        float64 `json:"single_node_cached_qps"`
	Speedup          float64 `json:"single_node_speedup"`
	RenderedHits     uint64  `json:"rendered_cache_hits"`
	TrickleRounds    int     `json:"trickle_rounds"`
	ProfileCompares  int     `json:"oracle_profile_compares"`
	FleetQPS         float64 `json:"fleet_steady_qps"`
	FirstScatterB    uint64  `json:"first_scatter_bytes"`
	SteadyScatterB   uint64  `json:"steady_scatter_bytes_per_query"`
	ScatterReduction float64 `json:"scatter_bytes_reduction"`
	FullLegs         uint64  `json:"scatter_full_legs"`
	DeltaLegs        uint64  `json:"scatter_delta_legs"`
}

// queryProfile builds one program's synthetic batch: n distinct pairs
// with collision-heavy waste values, the shape that makes top-n
// selection and full folds expensive.
func queryProfile(program string, n int, seed int64) *witch.Profile {
	rng := rand.New(rand.NewSource(seed))
	pairs := make([]witch.Pair, 0, n)
	for i := 0; i < n; i++ {
		pairs = append(pairs, witch.Pair{
			Src:   fmt.Sprintf("%s_store_%06d", program, i),
			Dst:   fmt.Sprintf("%s_load_%06d", program, i),
			Chain: fmt.Sprintf("%s:s%06d->l%06d", program, i, i),
			Waste: float64(rng.Intn(200)), Use: float64(rng.Intn(200)),
		})
	}
	return witch.NewProfile(witch.Profile{
		Program: program, Tool: string(witch.DeadStores), Waste: 1, Use: 1,
	}, pairs)
}

// localDaemon is an in-process daemon driven through its handler: the
// single-node phase measures fold-and-render cost, not TCP.
type localDaemon struct {
	srv *daemon.Server
	h   http.Handler
}

func newLocalDaemon(now func() time.Time, uncached bool) *localDaemon {
	st := store.New(store.Config{Now: now, NoCache: uncached})
	srv := daemon.NewServer(st, daemon.Config{Now: now, NoQueryCache: uncached})
	srv.SetState(daemon.StateServing)
	return &localDaemon{srv: srv, h: srv.Handler()}
}

func (d *localDaemon) ingest(body []byte) error {
	req := httptest.NewRequest(http.MethodPost, "/v1/ingest", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	d.h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		return fmt.Errorf("ingest: %d %s", rec.Code, rec.Body.String())
	}
	return nil
}

func (d *localDaemon) get(path string) (int, []byte) {
	rec := httptest.NewRecorder()
	d.h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec.Code, rec.Body.Bytes()
}

func runQuerySingle(w io.Writer, o Options, res *queryResult, programs, pairsPer, cachedIters, oracleIters, trickleRounds int) error {
	epoch := time.Unix(1700000000, 0)
	now := func() time.Time { return epoch }
	cached := newLocalDaemon(now, false)
	oracle := newLocalDaemon(now, true)

	bodies := make([][]byte, programs)
	for i := range bodies {
		var buf bytes.Buffer
		if err := queryProfile(fmt.Sprintf("qprog-%02d", i), pairsPer, o.Seed+int64(i)).WriteJSONCompact(&buf); err != nil {
			return err
		}
		bodies[i] = buf.Bytes()
		if err := cached.ingest(bodies[i]); err != nil {
			return err
		}
		if err := oracle.ingest(bodies[i]); err != nil {
			return err
		}
	}

	topPath := "/v1/top?tool=" + string(witch.DeadStores) + "&n=20"
	compare := func(path string) error {
		cc, cb := cached.get(path)
		oc, ob := oracle.get(path)
		if cc != oc || !bytes.Equal(cb, ob) {
			return fmt.Errorf("GET %s: cached daemon (HTTP %d) diverges from uncached oracle (HTTP %d)", path, cc, oc)
		}
		return nil
	}
	if err := compare(topPath); err != nil {
		return err
	}

	// The throughput race: identical repeated queries, timed. The first
	// cached query above warmed the caches, so this measures steady
	// state on both sides.
	timeQueries := func(d *localDaemon, iters int) (float64, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if code, _ := d.get(topPath); code != http.StatusOK {
				return 0, fmt.Errorf("query %d: HTTP %d", i, code)
			}
		}
		return float64(iters) / time.Since(start).Seconds(), nil
	}
	var err error
	if res.OracleQPS, err = timeQueries(oracle, oracleIters); err != nil {
		return err
	}
	if res.CachedQPS, err = timeQueries(cached, cachedIters); err != nil {
		return err
	}
	res.Speedup = res.CachedQPS / res.OracleQPS

	// Trickle: each round lands one new batch on both daemons (epoch
	// bump, caches invalidate) and byte-compares /v1/top plus a sample
	// of per-program /v1/profile views against the oracle.
	rng := rand.New(rand.NewSource(o.Seed + 11))
	for round := 0; round < trickleRounds; round++ {
		var buf bytes.Buffer
		prog := fmt.Sprintf("qprog-%02d", rng.Intn(programs))
		if err := queryProfile(prog, 100, o.Seed+int64(1000+round)).WriteJSONCompact(&buf); err != nil {
			return err
		}
		if err := cached.ingest(buf.Bytes()); err != nil {
			return err
		}
		if err := oracle.ingest(buf.Bytes()); err != nil {
			return err
		}
		if err := compare(topPath); err != nil {
			return fmt.Errorf("trickle round %d: %w", round, err)
		}
		for k := 0; k < 3; k++ {
			p := fmt.Sprintf("qprog-%02d", rng.Intn(programs))
			if err := compare("/v1/profile?tool=" + string(witch.DeadStores) + "&program=" + p); err != nil {
				return fmt.Errorf("trickle round %d: %w", round, err)
			}
			res.ProfileCompares++
		}
	}
	res.TrickleRounds = trickleRounds
	res.RenderedHits, _ = cached.srv.ViewCacheStats()
	if res.RenderedHits == 0 {
		return fmt.Errorf("the rendered-response cache never hit")
	}

	tbl := report.NewTable("", "daemon", "seed pairs", "/v1/top QPS", "vs oracle")
	tbl.Row("uncached oracle", fmt.Sprint(res.SeedPairs), report.F(res.OracleQPS, 0), "1.0x")
	tbl.Row("cached (epoch + rendered)", fmt.Sprint(res.SeedPairs), report.F(res.CachedQPS, 0), report.X(res.Speedup))
	tbl.Fprint(w)
	fmt.Fprintf(w, "\n%d trickle rounds: every /v1/top and /v1/profile byte-identical to the oracle (%d profile compares)\n\n",
		res.TrickleRounds, res.ProfileCompares)
	return nil
}

func runQueryFleet(w io.Writer, o Options, res *queryResult) error {
	pushers, pairsPer, steadyQueries := 15, 800, 20
	if o.Quick {
		pushers, pairsPer, steadyQueries = 6, 200, 10
	}
	root, err := os.MkdirTemp("", "witch-query-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	epoch := time.Unix(1700000000, 0)
	now := func() time.Time { return epoch }
	cns, err := bootCluster(root, 3, now, wal.Options{GroupCommit: true})
	if err != nil {
		return err
	}
	oracle := newLocalDaemon(now, true)

	// Keyed seeding: pusher i enters at node i%3, the ring forwards to
	// the owner, so the state is genuinely sharded. The oracle eats the
	// same bodies unkeyed — the merged fold is partition-agnostic.
	push := func(i int, seq uint64, body []byte) error {
		req, err := http.NewRequest(http.MethodPost, cns[i%3].url+"/v1/ingest", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(witch.PusherIDHeader, fmt.Sprintf("query-pusher-%02d", i))
		req.Header.Set(witch.PusherSeqHeader, strconv.FormatUint(seq, 10))
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			return fmt.Errorf("keyed ingest pusher %d seq %d: HTTP %d", i, seq, r.StatusCode)
		}
		return oracle.ingest(body)
	}
	progOf := func(i int) string { return fmt.Sprintf("fprog-%02d", i) }
	for i := 0; i < pushers; i++ {
		var buf bytes.Buffer
		if err := queryProfile(progOf(i), pairsPer, o.Seed+int64(100+i)).WriteJSONCompact(&buf); err != nil {
			return err
		}
		if err := push(i, 1, buf.Bytes()); err != nil {
			return err
		}
	}

	topURL := cns[0].url + "/v1/top?tool=" + string(witch.DeadStores) + "&n=20"
	fleetGet := func(url string) (*http.Response, []byte, error) {
		r, err := http.Get(url)
		if err != nil {
			return nil, nil, err
		}
		b, err := io.ReadAll(r.Body)
		r.Body.Close()
		if err != nil {
			return nil, nil, err
		}
		return r, b, nil
	}

	// First fleet query: the coordinator has no baselines, every leg
	// full-ships its shard — this is the O(total state) cost paid once.
	r1, first, err := fleetGet(topURL)
	if err != nil {
		return err
	}
	if r1.StatusCode != http.StatusOK || r1.Header.Get("X-Witch-Incomplete") != "" {
		return fmt.Errorf("first fleet query: HTTP %d incomplete=%q", r1.StatusCode, r1.Header.Get("X-Witch-Incomplete"))
	}
	cs := cns[0].cl.StatsSnapshot()
	if cs.ScatterFullLegs == 0 {
		return fmt.Errorf("first fleet query full-shipped nothing")
	}
	res.FirstScatterB = cs.ScatterBytes

	// Steady state: identical queries at unchanged epochs. Every leg
	// presents a current vector and gets back an empty delta — the wire
	// cost drops to gob framing.
	start := time.Now()
	for i := 0; i < steadyQueries; i++ {
		rn, body, err := fleetGet(topURL)
		if err != nil {
			return err
		}
		if rn.StatusCode != http.StatusOK || !bytes.Equal(body, first) {
			return fmt.Errorf("steady query %d drifted from the first (HTTP %d)", i, rn.StatusCode)
		}
	}
	res.FleetQPS = float64(steadyQueries) / time.Since(start).Seconds()
	cs2 := cns[0].cl.StatsSnapshot()
	res.SteadyScatterB = (cs2.ScatterBytes - res.FirstScatterB) / uint64(steadyQueries)
	res.ScatterReduction = 1 - float64(res.SteadyScatterB)/float64(res.FirstScatterB)
	res.FullLegs, res.DeltaLegs = cs2.ScatterFullLegs, cs2.ScatterDeltaLegs

	// Trickle plus the fleet-wide oracle gate: new keyed batches land
	// (the deltas ship just the changed partitions), then every node
	// must serve every program's /v1/profile byte-identical to the
	// fault-free oracle, complete.
	for i := 0; i < pushers; i++ {
		var buf bytes.Buffer
		if err := queryProfile(progOf(i), 50, o.Seed+int64(500+i)).WriteJSONCompact(&buf); err != nil {
			return err
		}
		if err := push(i, 2, buf.Bytes()); err != nil {
			return err
		}
	}
	for i := 0; i < pushers; i++ {
		q := "/v1/profile?tool=" + string(witch.DeadStores) + "&program=" + progOf(i)
		oc, ob := oracle.get(q)
		for _, cn := range cns {
			rn, body, err := fleetGet(cn.url + q)
			if err != nil {
				return err
			}
			if rn.StatusCode != oc {
				return fmt.Errorf("program %s: node %s answered %d, oracle %d", progOf(i), cn.url, rn.StatusCode, oc)
			}
			if inc := rn.Header.Get("X-Witch-Incomplete"); inc != "" {
				return fmt.Errorf("program %s: node %s partial (%s) with the whole ring up", progOf(i), cn.url, inc)
			}
			if !bytes.Equal(body, ob) {
				return fmt.Errorf("program %s: node %s diverges from the oracle after trickle", progOf(i), cn.url)
			}
		}
		res.ProfileCompares += len(cns)
	}

	tbl := report.NewTable("", "fleet metric", "value")
	tbl.Row("first-query scatter bytes", fmt.Sprint(res.FirstScatterB))
	tbl.Row("steady bytes/query", fmt.Sprint(res.SteadyScatterB))
	tbl.Row("bytes reduction", report.Pct(res.ScatterReduction))
	tbl.Row("full legs / delta legs", fmt.Sprintf("%d / %d", res.FullLegs, res.DeltaLegs))
	tbl.Row("steady fleet QPS", report.F(res.FleetQPS, 0))
	tbl.Fprint(w)
	fmt.Fprintf(w, "\n3-node ring: every node byte-identical to the oracle after trickle (gate: >=80%% byte reduction)\n")

	for _, cn := range cns {
		if err := cn.stop(); err != nil {
			return err
		}
	}
	return nil
}
