package harness

import (
	"strings"
	"testing"
)

// TestDeliveryExactlyOnce is the tier-1 gate on the exactly-once story:
// the quick delivery sweep (3 pushers, 4 combined net+disk fault
// matrices, kill -9 restarts of daemon and pushers) must end with every
// program's merged profile byte-identical to the fault-free oracle.
// The experiment itself returns an error on any acked loss, double
// merge, unpermitted drop, or unbalanced pusher ledger, so the test
// only has to run it and sanity-check the report.
func TestDeliveryExactlyOnce(t *testing.T) {
	out := runExp(t, Delivery)
	if !strings.Contains(out, "byte-identical") {
		t.Fatalf("delivery report missing oracle verdict:\n%s", out)
	}
	for _, sweep := range []string{"refused+timeout", "ack loss both sides", "spool write faults", "spool overflow"} {
		if !strings.Contains(out, sweep) {
			t.Fatalf("delivery report missing sweep %q:\n%s", sweep, out)
		}
	}
}
