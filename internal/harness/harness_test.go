package harness

import (
	"bytes"
	"io"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/witch"
)

// quick is the test configuration: representative subset, small sweep.
var quick = Options{Quick: true, Seed: 1}

func runExp(t *testing.T, fn func(io.Writer, Options) error) string {
	t.Helper()
	var buf bytes.Buffer
	if err := fn(&buf, quick); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// pcts extracts all percentage values from a report line.
func pcts(line string) []float64 {
	re := regexp.MustCompile(`(\d+(?:\.\d+)?)%`)
	var out []float64
	for _, m := range re.FindAllStringSubmatch(line, -1) {
		v, _ := strconv.ParseFloat(m[1], 64)
		out = append(out, v)
	}
	return out
}

func TestFigure2ProportionalBeatsAblations(t *testing.T) {
	out := runExp(t, Figure2)
	var full, noProp []float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "witch (reservoir") {
			full = pcts(line)
		}
		if strings.HasPrefix(line, "without proportional") {
			noProp = pcts(line)
		}
	}
	if len(full) != 3 || len(noProp) != 3 {
		t.Fatalf("could not parse shares:\n%s", out)
	}
	// Full witch: a > b > x and a near 50%; ablation: x inflated.
	if !(full[0] > full[1] && full[1] > full[2]) {
		t.Fatalf("full witch shares not ordered a>b>x: %v", full)
	}
	if full[0] < 38 || full[0] > 62 {
		t.Fatalf("a share = %v, want near 50", full[0])
	}
	if noProp[2] < full[2]*2 {
		t.Fatalf("ablation should inflate x: full=%v ablated=%v", full[2], noProp[2])
	}
}

func TestFigure4MeanErrorSmall(t *testing.T) {
	out := runExp(t, Figure4)
	re := regexp.MustCompile(`mean \|error\| at median rate: (\d+(?:\.\d+)?) pp`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no mean error line:\n%s", out)
	}
	v, _ := strconv.ParseFloat(m[1], 64)
	if v > 6 {
		t.Fatalf("mean |error| = %vpp, want small (paper: highly accurate)", v)
	}
}

func TestFigure5RunsAllRegisterCounts(t *testing.T) {
	out := runExp(t, Figure5)
	if !strings.Contains(out, "4 regs") || !strings.Contains(out, "h264ref") {
		t.Fatalf("figure 5 incomplete:\n%s", out)
	}
}

// TestTable1SpiesCostMoreThanCrafts asserts the paper's Table 1 claim —
// exhaustive spies cost an order of magnitude more than sampling
// crafts — on deterministic counters, not wall-clock ratios: a craft's
// work is its substrate operations (samples, traps, fd opens/closes,
// modifies, disassembled instructions), a spy's work is the accesses it
// instruments (every load and store), and memory cost is ToolBytes.
// Wall time still appears in the report but is too noisy to gate a test
// on (a loaded CI machine can compress the slowdown ratio arbitrarily).
func TestTable1SpiesCostMoreThanCrafts(t *testing.T) {
	out := runExp(t, Table1)
	// The report itself must still carry the geomean summary rows.
	re := regexp.MustCompile(`DeadCraft/DeadSpy\s+(\d+\.\d+)x\s+(\d+\.\d+)x\s+(\d+\.\d+)x\s+(\d+\.\d+)x`)
	if re.FindStringSubmatch(out) == nil {
		t.Fatalf("no geomean row:\n%s", out)
	}

	for _, tool := range tools {
		var craftBytes, spyBytes uint64
		for _, name := range quick.suiteNames() {
			craft, err := witch.Run(mustWorkload(name), witch.Options{Tool: tool, Seed: quick.Seed})
			if err != nil {
				t.Fatal(err)
			}
			spy, err := witch.RunExhaustive(mustWorkload(name), tool)
			if err != nil {
				t.Fatal(err)
			}
			craftWork := craft.Stats.Samples + craft.Stats.Traps + craft.Stats.Opens +
				craft.Stats.Closes + craft.Stats.Modifies + craft.Stats.DisasmInstrs
			spyWork := spy.Loads + spy.Stores
			if spyWork < 10*craftWork {
				t.Fatalf("%s/%v: spy work %d not an order of magnitude over craft work %d",
					name, tool, spyWork, craftWork)
			}
			craftBytes += craft.ToolBytes
			spyBytes += spy.ToolBytes
		}
		// Memory: the spy's shadow state dwarfs the craft's fixed-size
		// reservoir + watchpoint bookkeeping across the suite.
		if spyBytes < 3*craftBytes {
			t.Fatalf("%v: spy bytes %d should dwarf craft bytes %d", tool, spyBytes, craftBytes)
		}
	}
}

func TestTable3SpeedupsAndDetection(t *testing.T) {
	out := runExp(t, Table3)
	// Every case row reports a speedup > 1 and a nonzero redundancy.
	re := regexp.MustCompile(`(\d+\.\d+)x\s+(\d+\.\d+)x\s*$`)
	rows := 0
	for _, line := range strings.Split(out, "\n") {
		m := re.FindStringSubmatch(strings.TrimRight(line, " "))
		if m == nil {
			continue
		}
		rows++
		speedup, _ := strconv.ParseFloat(m[1], 64)
		if speedup <= 1.0 {
			t.Fatalf("non-speedup row: %s", line)
		}
	}
	if rows < 16 {
		t.Fatalf("only %d case rows", rows)
	}
}

func TestBlindSpotsSmall(t *testing.T) {
	out := runExp(t, BlindSpots)
	re := regexp.MustCompile(`worst case: \S* at (\d+(?:\.\d+)?)%`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no worst-case line:\n%s", out)
	}
	v, _ := strconv.ParseFloat(m[1], 64)
	if v > 5 {
		t.Fatalf("worst blind spot %v%%, want small", v)
	}
}

func TestDominanceFewPairs(t *testing.T) {
	out := runExp(t, Dominance)
	re := regexp.MustCompile(`median pairs to 90%: (\d+)`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no median line:\n%s", out)
	}
	n, _ := strconv.Atoi(m[1])
	if n >= 5 {
		t.Fatalf("median pairs = %d, paper says fewer than five", n)
	}
}

func TestAdversaryNearPaperConstant(t *testing.T) {
	out := runExp(t, Adversary)
	// For H=1000 the 1/e-survival lifetime should be near 1.7·1000.
	re := regexp.MustCompile(`1000\s+1\s+(\d+)\s+(\d+)\s+(\d+)`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no H=1000 row:\n%s", out)
	}
	quantE, _ := strconv.ParseFloat(m[2], 64)
	if quantE < 1400 || quantE > 2100 {
		t.Fatalf("1/e lifetime = %v, want ≈1718", quantE)
	}
}

func TestStabilityLowVariance(t *testing.T) {
	out := runExp(t, Stability)
	re := regexp.MustCompile(`(\d+\.\d+)pp\s+\d`)
	total := 0
	for _, m := range re.FindAllStringSubmatch(out, -1) {
		v, _ := strconv.ParseFloat(m[1], 64)
		if v > 5 {
			t.Fatalf("stddev %vpp too high:\n%s", v, out)
		}
		total++
	}
	if total != 3 {
		t.Fatalf("expected 3 tool rows, got %d:\n%s", total, out)
	}
}

func TestRankOrderMostlyMatches(t *testing.T) {
	out := runExp(t, RankOrder)
	if !strings.Contains(out, "edit dist") {
		t.Fatalf("rank table malformed:\n%s", out)
	}
}

func TestAblationsStructure(t *testing.T) {
	out := runExp(t, Ablations)
	// IOC_MODIFY keeps opens tiny; the fallback opens hundreds.
	re := regexp.MustCompile(`full witch\s+(\d+)\s`)
	m := re.FindStringSubmatch(out)
	if m == nil {
		t.Fatalf("no full-witch row:\n%s", out)
	}
	opens, _ := strconv.Atoi(m[1])
	if opens > 8 {
		t.Fatalf("full witch opened %d fds, want ≤ regs", opens)
	}
	re2 := regexp.MustCompile(`no IOC_MODIFY \(close\+reopen\)\s+(\d+)\s`)
	m2 := re2.FindStringSubmatch(out)
	if m2 == nil {
		t.Fatalf("no fallback row:\n%s", out)
	}
	reopens, _ := strconv.Atoi(m2[1])
	if reopens <= opens {
		t.Fatal("fallback should open far more fds")
	}
	// sigaltstack eliminates spurious traps.
	if !regexp.MustCompile(`sigaltstack \(witch\)\s+0\s`).MatchString(out) {
		t.Fatalf("sigaltstack row should show zero spurious traps:\n%s", out)
	}
}

// TestChaosBoundedDegradation runs the fault-injection sweep; Chaos
// itself errors if the zero-rate row is unhealthy, an injected row fails
// to surface in Health, or the error at ≤10% faults exceeds the bound,
// so a clean return is the assertion. The output check guards the
// summary line the bound is reported on.
func TestChaosBoundedDegradation(t *testing.T) {
	out := runExp(t, Chaos)
	if !strings.Contains(out, "degradation is bounded") {
		t.Fatalf("chaos summary missing:\n%s", out)
	}
	if !strings.Contains(out, "2% + bursts") {
		t.Fatalf("burst-window row missing:\n%s", out)
	}
}

// TestIngestGroupCommitSpeedup runs the ingest macro-benchmark in quick
// mode; Ingest itself errors if group commit fails its throughput gate
// (2x in quick mode, 5x full) or the pooled codecs fail the ≥50%
// allocation-reduction gate, so a clean return is the assertion. Quick
// mode never writes BENCH_ingest.json, so the test has no side effects.
func TestIngestGroupCommitSpeedup(t *testing.T) {
	out := runExp(t, Ingest)
	if !strings.Contains(out, "group commit speedup") {
		t.Fatalf("ingest summary missing:\n%s", out)
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	for _, name := range []string{"fig2", "fig4", "fig5", "table1", "table2", "table3",
		"blindspot", "dominance", "adversary", "stability", "rank", "ablations", "chaos",
		"ingest", "delivery", "cluster", "replica", "all"} {
		if reg[name] == nil {
			t.Fatalf("missing experiment %q", name)
		}
	}
	if len(Names()) != len(reg) {
		t.Fatal("Names() out of sync")
	}
}
