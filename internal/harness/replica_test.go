package harness

import (
	"strings"
	"testing"
)

// TestReplicaQuick is the tier-1 gate on replicated ownership: the
// quick run must carry a 3-node RF=2 ring through inter-node and spool
// faults, a crash, a heal, the permanent destruction of one node, and
// a blank replacement — with zero acked-batch loss, survivors serving
// complete byte-identical profiles, and the replacement converging to
// digest equality. Replica itself fails on any gate miss (including
// counters proving forwarding, synchronous replication, rerouting,
// hint replay and repair pulls all actually fired), so the test mostly
// asserts the run completed and the summary lines are present.
func TestReplicaQuick(t *testing.T) {
	out := runExp(t, Replica)
	if !strings.Contains(out, "survivors served complete byte-identical profiles after the permanent loss") {
		t.Fatalf("survivor gate line missing:\n%s", out)
	}
	if !strings.Contains(out, "blank replacement converged to digest equality; zero acked-batch loss") {
		t.Fatalf("convergence gate line missing:\n%s", out)
	}
}
