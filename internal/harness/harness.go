// Package harness regenerates every table and figure of the paper's
// evaluation (§7, §8) plus the section-level claims (blind spots,
// dominance, adversary samples, run-to-run stability, rank ordering, and
// the §5 implementation ablations). cmd/witchbench drives it from the
// command line and bench_test.go drives it from `go test -bench`.
//
// Periods are the scaled analogues of the paper's: the paper samples one
// in 100K…100M events on programs retiring minutes of hardware
// instructions; these workloads retire ~10⁶–10⁷ memory events, so the
// sweep is one in 100…100K.
package harness

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workloads"
	"repro/witch"
)

// Options controls experiment size.
type Options struct {
	// Quick restricts the suite to a representative subset and the rate
	// sweep to three periods; used by tests and -quick runs.
	Quick bool
	// Seed is the base PRNG seed.
	Seed int64
}

// suiteNames returns the benchmark list for the options.
func (o Options) suiteNames() []string {
	if o.Quick {
		return []string{"gcc", "lbm", "mcf", "hmmer", "h264ref", "sjeng"}
	}
	var names []string
	for _, sp := range workloads.Suite() {
		names = append(names, sp.Name)
	}
	return names
}

// periods returns the sampling-period sweep (scaled from the paper's
// 100K–100M events per sample).
func (o Options) periods() []uint64 {
	if o.Quick {
		return []uint64{500, 5000, 50000}
	}
	return []uint64{100, 500, 1000, 5000, 10000, 100000}
}

// tools is the fixed tool order used in reports.
var tools = []witch.Tool{witch.DeadStores, witch.SilentStores, witch.RedundantLoads}

// toolLabel names a tool pair "craft/spy".
func toolLabel(t witch.Tool) (craftName, spyName string) {
	switch t {
	case witch.DeadStores:
		return "DeadCraft", "DeadSpy"
	case witch.SilentStores:
		return "SilentCraft", "RedSpy"
	default:
		return "LoadCraft", "LoadSpy"
	}
}

// mustWorkload loads a built-in workload or panics (harness inputs are
// static).
func mustWorkload(name string) *witch.Program {
	p, err := witch.Workload(name)
	if err != nil {
		panic(err)
	}
	return p
}

// Figure2 reproduces Figure 2: proportional, context-sensitive
// attribution apportions the a:b:x dead writes in their true 50:33:17
// ratio; disabling the feature skews toward the dense x pair; coin-flip
// replacement collapses onto it entirely.
func Figure2(w io.Writer, o Options) error {
	report.Section(w, "Figure 2: proportional attribution of dead writes (expect a=50% b=33% x=17%)")
	type cfg struct {
		label string
		opt   witch.Options
	}
	cfgs := []cfg{
		{"witch (reservoir + proportional)", witch.Options{Tool: witch.DeadStores, Period: 50, Seed: o.Seed}},
		{"without proportional attribution", witch.Options{Tool: witch.DeadStores, Period: 50, Seed: o.Seed, DisableProportional: true}},
		// The paper's "random sampling" strawman: a coin-flip replacement
		// policy without the proportional correction (with proportional
		// attribution on, even a coin flip's rare long-distance survivor
		// would be rescaled by its context's accumulated samples).
		{"coin-flip, no proportional", witch.Options{Tool: witch.DeadStores, Period: 50, Seed: o.Seed, Policy: witch.CoinFlip, DisableProportional: true}},
	}
	tbl := report.NewTable("", "configuration", "a", "b", "x")
	for _, c := range cfgs {
		prog := mustWorkload("figure2")
		prof, err := witch.Run(prog, c.opt)
		if err != nil {
			return err
		}
		shares := figure2Shares(prof)
		tbl.Row(c.label, report.Pct(shares["a"]), report.Pct(shares["b"]), report.Pct(shares["x"]))
	}
	tbl.Row("paper (with feature)", "50%", "33%", "17%")
	tbl.Row("paper (without feature)", "5%", "2%", "93%")
	tbl.Fprint(w)
	return nil
}

// figure2Shares classifies waste by region using the stores' source lines.
func figure2Shares(prof *witch.Profile) map[string]float64 {
	byRegion := map[string]float64{}
	var total float64
	for _, p := range prof.TopPairs(0) {
		r := workloads.Figure2Region(p.SrcLine)
		byRegion[r] += p.Waste
		total += p.Waste
	}
	if total == 0 {
		total = 1
	}
	for k := range byRegion {
		byRegion[k] /= total
	}
	return byRegion
}

// Figure4 reproduces Figure 4: sampled total redundancy vs exhaustive
// ground truth per benchmark and tool, with min/median/max across the
// sampling-period sweep as the error bars.
func Figure4(w io.Writer, o Options) error {
	report.Section(w, "Figure 4: Witch tools vs exhaustive instrumentation (total redundancy %)")
	tbl := report.NewTable("", "benchmark", "tool", "exhaustive", "sampled(med)", "min", "max", "|err|")
	var errs []float64
	for _, name := range o.suiteNames() {
		for _, tool := range tools {
			craftName, spyName := toolLabel(tool)
			gt, err := witch.RunExhaustive(mustWorkload(name), tool)
			if err != nil {
				return err
			}
			var vals []float64
			for _, period := range o.periods() {
				prof, err := witch.Run(mustWorkload(name), witch.Options{
					Tool: tool, Period: period, Seed: o.Seed,
				})
				if err != nil {
					return err
				}
				vals = append(vals, prof.Redundancy)
			}
			med := stats.Median(vals)
			lo, hi := stats.MinMax(vals)
			e := math.Abs(med - gt.Redundancy)
			errs = append(errs, e)
			tbl.Row(name, craftName+"/"+spyName,
				report.Pct(gt.Redundancy), report.Pct(med), report.Pct(lo), report.Pct(hi),
				report.F(100*e, 1)+"pp")
		}
	}
	tbl.Fprint(w)
	fmt.Fprintf(w, "\nmean |error| at median rate: %.2f pp (paper: sampling is highly accurate at all rates)\n",
		100*stats.Mean(errs))
	return nil
}

// Figure5 reproduces Figure 5: dead-write accuracy as the number of debug
// registers varies from 1 to 4 (little influence expected, except the
// interleaved h264ref improving with more registers).
func Figure5(w io.Writer, o Options) error {
	report.Section(w, "Figure 5: dead writes vs number of debug registers (DeadCraft, median over the period sweep)")
	tbl := report.NewTable("", "benchmark", "exhaustive", "1 reg", "2 regs", "3 regs", "4 regs")
	for _, name := range o.suiteNames() {
		gt, err := witch.RunExhaustive(mustWorkload(name), witch.DeadStores)
		if err != nil {
			return err
		}
		row := []string{name, report.Pct(gt.Redundancy)}
		for regs := 1; regs <= 4; regs++ {
			var vals []float64
			for _, period := range o.periods() {
				prof, err := witch.Run(mustWorkload(name), witch.Options{
					Tool: witch.DeadStores, Period: period, Seed: o.Seed, DebugRegisters: regs,
				})
				if err != nil {
					return err
				}
				vals = append(vals, prof.Redundancy)
			}
			row = append(row, report.Pct(stats.Median(vals)))
		}
		tbl.Row(row...)
	}
	tbl.Fprint(w)
	fmt.Fprintln(w, "\npaper: register count has little practical influence, except h264ref improving with four")
	return nil
}

// overheadRow measures slowdown and memory bloat for one profile against
// a native baseline.
func overheadRow(nativeWall float64, nativeBytes uint64, wall float64, toolBytes uint64) (slowdown, bloat float64) {
	slowdown = wall / nativeWall
	if slowdown < 1 {
		slowdown = 1 // timer noise floor: monitoring can't speed the program up
	}
	bloat = float64(nativeBytes+toolBytes) / float64(nativeBytes)
	return slowdown, bloat
}

// nativeBaseline runs the program unmonitored, taking the best of three
// runs to suppress timer noise.
func nativeBaseline(name string) (wall float64, bytes uint64, err error) {
	best := math.MaxFloat64
	for i := 0; i < 3; i++ {
		st, err := mustWorkload(name).RunNative()
		if err != nil {
			return 0, 0, err
		}
		if s := st.WallTime.Seconds(); s < best {
			best = s
		}
		bytes = st.FootprintBytes
	}
	return best, bytes, nil
}

// bestProfile runs a sampling profile three times and returns the profile
// with the fastest wall time (timer-noise suppression, matching
// nativeBaseline).
func bestProfile(name string, opts witch.Options) (*witch.Profile, error) {
	var best *witch.Profile
	for i := 0; i < 3; i++ {
		prof, err := witch.Run(mustWorkload(name), opts)
		if err != nil {
			return nil, err
		}
		if best == nil || prof.WallTime < best.WallTime {
			best = prof
		}
	}
	return best, nil
}

// Table1 reproduces Table 1: per-benchmark runtime slowdown and memory
// bloat of the sampling tools vs the exhaustive tools (periods 5000
// stores / 10000 loads, the scaled analogues of the paper's 5M/10M).
func Table1(w io.Writer, o Options) error {
	report.Section(w, "Table 1: slowdown and memory bloat, sampling vs exhaustive")
	tbl := report.NewTable("", "benchmark", "tool pair", "craft slow", "craft bloat", "spy slow", "spy bloat")
	type agg struct{ craftS, craftB, spyS, spyB []float64 }
	sums := map[witch.Tool]*agg{}
	for _, tool := range tools {
		sums[tool] = &agg{}
	}
	for _, name := range o.suiteNames() {
		nw, nb, err := nativeBaseline(name)
		if err != nil {
			return err
		}
		for _, tool := range tools {
			craftName, spyName := toolLabel(tool)
			prof, err := bestProfile(name, witch.Options{Tool: tool, Seed: o.Seed})
			if err != nil {
				return err
			}
			cs, cb := overheadRow(nw, nb, prof.WallTime.Seconds(), prof.ToolBytes)
			spy, err := witch.RunExhaustive(mustWorkload(name), tool)
			if err != nil {
				return err
			}
			ss, sb := overheadRow(nw, nb, spy.WallTime.Seconds(), spy.ToolBytes)
			a := sums[tool]
			a.craftS = append(a.craftS, cs)
			a.craftB = append(a.craftB, cb)
			a.spyS = append(a.spyS, ss)
			a.spyB = append(a.spyB, sb)
			tbl.Row(name, craftName+"/"+spyName, report.X(cs), report.X(cb), report.X(ss), report.X(sb))
		}
	}
	tbl.Fprint(w)
	fmt.Fprintln(w)
	sum := report.NewTable("geometric means", "tool pair", "craft slow", "craft bloat", "spy slow", "spy bloat")
	for _, tool := range tools {
		craftName, spyName := toolLabel(tool)
		a := sums[tool]
		sum.Row(craftName+"/"+spyName,
			report.X(stats.Geomean(a.craftS)), report.X(stats.Geomean(a.craftB)),
			report.X(stats.Geomean(a.spyS)), report.X(stats.Geomean(a.spyB)))
	}
	sum.Fprint(w)
	fmt.Fprintln(w, "\npaper: crafts geomean ~1.01-1.04x slowdown; spies 9.87-58.66x (an order of magnitude apart)")
	return nil
}

// Table2 reproduces Table 2: geomean and median slowdown/bloat of each
// craft across the sampling-period sweep.
func Table2(w io.Writer, o Options) error {
	report.Section(w, "Table 2: craft overheads across sampling periods (geomean/median)")
	tbl := report.NewTable("", "period", "tool", "slowdown", "memory bloat")
	for _, period := range o.periods() {
		for _, tool := range tools {
			craftName, _ := toolLabel(tool)
			var slows, bloats []float64
			for _, name := range o.suiteNames() {
				nw, nb, err := nativeBaseline(name)
				if err != nil {
					return err
				}
				prof, err := bestProfile(name, witch.Options{Tool: tool, Period: period, Seed: o.Seed})
				if err != nil {
					return err
				}
				s, bl := overheadRow(nw, nb, prof.WallTime.Seconds(), prof.ToolBytes)
				slows = append(slows, s)
				bloats = append(bloats, bl)
			}
			tbl.Row(fmt.Sprintf("1/%d", period), craftName,
				report.X(stats.Geomean(slows))+" / "+report.X(stats.Median(slows)),
				report.X(stats.Geomean(bloats))+" / "+report.X(stats.Median(bloats)))
		}
	}
	tbl.Fprint(w)
	return nil
}

// Table3 reproduces Table 3: each case study's inefficiency is located by
// the relevant craft, the fix is applied, and the whole-program speedup is
// measured (instruction-count ratio, the simulator's deterministic clock).
func Table3(w io.Writer, o Options) error {
	report.Section(w, "Table 3: case studies — find with a craft, fix, measure the speedup")
	tbl := report.NewTable("", "case", "problem", "tool", "redundancy", "top pair at", "speedup", "paper")
	for _, cs := range workloads.CaseStudies() {
		tool := witch.DeadStores
		switch cs.Tool {
		case "SS":
			tool = witch.SilentStores
		case "SL":
			tool = witch.RedundantLoads
		}
		buggy, err := witch.Case(cs.Name, false)
		if err != nil {
			return err
		}
		prof, err := witch.Run(buggy, witch.Options{Tool: tool, Period: 500, Seed: o.Seed})
		if err != nil {
			return err
		}
		top := "-"
		if ps := prof.TopPairs(1); len(ps) > 0 {
			top = ps[0].Src
		}
		bn, err := buggy.RunNative()
		if err != nil {
			return err
		}
		fixed, err := witch.Case(cs.Name, true)
		if err != nil {
			return err
		}
		fn, err := fixed.RunNative()
		if err != nil {
			return err
		}
		speedup := float64(bn.Instrs) / float64(fn.Instrs)
		tbl.Row(cs.Name, cs.Problem, cs.Tool, report.Pct(prof.Redundancy), top,
			report.X(speedup), report.X(cs.PaperSpeedup))
	}
	tbl.Fprint(w)
	return nil
}

// BlindSpots reproduces the §4.1 claim: the largest blind-spot window is
// typically tiny (<0.02% of samples), with mcf-style streaming the worst
// case (paper: 0.5%).
func BlindSpots(w io.Writer, o Options) error {
	report.Section(w, "Blind spots (§4.1): longest run of unmonitored samples / total samples")
	tbl := report.NewTable("", "benchmark", "samples", "max blind-spot", "fraction")
	worstName, worst := "", 0.0
	for _, name := range o.suiteNames() {
		// A dense rate: blind spots only form when armed watchpoints
		// stop trapping while samples keep arriving.
		prof, err := witch.Run(mustWorkload(name), witch.Options{Tool: witch.DeadStores, Period: 101, Seed: o.Seed})
		if err != nil {
			return err
		}
		f := prof.BlindSpotFrac()
		if f > worst {
			worst, worstName = f, name
		}
		tbl.Row(name, fmt.Sprint(prof.Stats.Samples), fmt.Sprint(prof.Stats.MaxBlindSpot), report.Pct(f))
	}
	tbl.Fprint(w)
	fmt.Fprintf(w, "\nworst case: %s at %s (paper: typical <0.02%%, worst 0.5%% on mcf)\n", worstName, report.Pct(worst))
	return nil
}

// Dominance reproduces the §4.3 claim: a handful of context pairs covers
// >90%% of the measured dead writes.
func Dominance(w io.Writer, o Options) error {
	report.Section(w, "Dominance (§4.3): pairs needed to cover 90% of dead writes")
	tbl := report.NewTable("", "benchmark", "pairs to 90%", "covered")
	var counts []float64
	for _, name := range o.suiteNames() {
		prof, err := witch.Run(mustWorkload(name), witch.Options{Tool: witch.DeadStores, Period: 1000, Seed: o.Seed})
		if err != nil {
			return err
		}
		n, covered := prof.Dominance(0.9)
		counts = append(counts, float64(n))
		tbl.Row(name, fmt.Sprint(n), report.Pct(covered))
	}
	tbl.Fprint(w)
	fmt.Fprintf(w, "\nmedian pairs to 90%%: %.0f (paper: fewer than five contexts typically cover >90%%)\n", stats.Median(counts))
	return nil
}

// Adversary reproduces the §4.1 adversary analysis: a never-again-accessed
// address sampled after H quiet samples occupies its register for ≈1.7·H
// further samples, independent of the register count. (The survival
// probability after t further samples is H/(H+t), whose mean diverges; the
// paper's 1.7·H = (e−1)·H is the 1/e-survival point, which is what the
// simulation reports, alongside the median H.)
func Adversary(w io.Writer, o Options) error {
	report.Section(w, "Adversary samples (§4.1): lifetime of a dead watchpoint")
	rng := rand.New(rand.NewSource(o.Seed + 77))
	tbl := report.NewTable("", "H (samples before adversary)", "regs", "median life", "1/e-survival life", "paper 1.7·H")
	for _, h := range []int{50, 200, 1000} {
		for _, regs := range []int{1, 4} {
			const trials = 4000
			lifetimes := make([]float64, 0, trials)
			for tr := 0; tr < trials; tr++ {
				// The adversary arrives at sample h (k = h at arming);
				// each later sample k replaces one of the regs armed
				// watchpoints with probability regs/k × 1/regs = 1/k.
				k := h
				life := 0
				for {
					k++
					life++
					if rng.Float64() < 1/float64(k) {
						break
					}
					if life > 1000*h {
						break // truncate the heavy tail
					}
				}
				lifetimes = append(lifetimes, float64(life))
			}
			sort.Float64s(lifetimes)
			median := lifetimes[trials/2]
			quantE := lifetimes[int((1.0-1.0/math.E)*float64(len(lifetimes)))]
			tbl.Row(fmt.Sprint(h), fmt.Sprint(regs),
				report.F(median, 0), report.F(quantE, 0),
				report.F(stats.AdversaryExpectedLifetime(h), 0))
		}
	}
	tbl.Fprint(w)
	fmt.Fprintln(w, "\nnote: lifetime is independent of the number of debug registers, as the paper argues;")
	fmt.Fprintln(w, "the survival tail is heavy (P[alive after t] = H/(H+t)), so the median is H and the 1/e point ≈ 1.7·H")
	return nil
}

// Stability reproduces the §7 run-to-run stability experiment: ten runs
// per tool, max standard deviation of the redundancy metric (paper: 2.27,
// 1.89, 0.77 pp for Dead/Silent/LoadCraft at the 5M rate).
func Stability(w io.Writer, o Options) error {
	report.Section(w, "Run-to-run stability (§7): stddev of redundancy over 10 seeds")
	names := o.suiteNames()
	if len(names) > 6 {
		names = names[:6]
	}
	tbl := report.NewTable("", "tool", "max stddev", "paper max stddev")
	paperMax := map[witch.Tool]string{witch.DeadStores: "2.27pp", witch.SilentStores: "1.89pp", witch.RedundantLoads: "0.77pp"}
	for _, tool := range tools {
		craftName, _ := toolLabel(tool)
		worst := 0.0
		for _, name := range names {
			var vals []float64
			for seed := int64(0); seed < 10; seed++ {
				// Period 101 yields thousands of samples per run — the
				// sample-count regime of the paper's 5M rate on real
				// SPEC traffic.
				prof, err := witch.Run(mustWorkload(name), witch.Options{Tool: tool, Period: 101, Seed: seed})
				if err != nil {
					return err
				}
				vals = append(vals, 100*prof.Redundancy)
			}
			if sd := stats.StdDev(vals); sd > worst {
				worst = sd
			}
		}
		tbl.Row(craftName, report.F(worst, 2)+"pp", paperMax[tool])
	}
	tbl.Fprint(w)
	return nil
}

// pairIDs returns the top pair identifiers covering frac of waste.
func pairIDs(prof *witch.Profile, frac float64) []string {
	ps := prof.TopPairs(0)
	var total float64
	for _, p := range ps {
		total += p.Waste
	}
	var ids []string
	var acc float64
	for _, p := range ps {
		if total > 0 && acc >= frac*total {
			break
		}
		acc += p.Waste
		ids = append(ids, p.Src+"->"+p.Dst)
	}
	return ids
}

// RankOrder reproduces the §7 rank-ordering comparison: the top pairs (to
// 90% of waste) found by a craft vs its spy, compared by edit distance
// and set difference.
func RankOrder(w io.Writer, o Options) error {
	report.Section(w, "Rank ordering (§7): top-90% pairs, sampled vs exhaustive")
	tbl := report.NewTable("", "benchmark", "tool", "spy topN", "craft topN", "edit dist", "set diff")
	names := o.suiteNames()
	if len(names) > 6 {
		names = names[:6]
	}
	for _, name := range names {
		for _, tool := range tools {
			craftName, spyName := toolLabel(tool)
			spy, err := witch.RunExhaustive(mustWorkload(name), tool)
			if err != nil {
				return err
			}
			prof, err := witch.Run(mustWorkload(name), witch.Options{Tool: tool, Period: 500, Seed: o.Seed})
			if err != nil {
				return err
			}
			a := pairIDs(spy, 0.9)
			b := pairIDs(prof, 0.9)
			tbl.Row(name, craftName+"/"+spyName, fmt.Sprint(len(a)), fmt.Sprint(len(b)),
				fmt.Sprint(stats.EditDistance(a, b)), fmt.Sprint(stats.SetDifference(a, b)))
		}
	}
	tbl.Fprint(w)
	fmt.Fprintln(w, "\npaper: a handful of pairs dominates and their ordering matches exhaustive monitoring")
	return nil
}

// Ablations reproduces the §5 implementation notes: the IOC_MODIFY fast
// watchpoint replacement and LBR precise-PC recovery each save measurable
// work, and sigaltstack eliminates the Figure 3 spurious traps.
func Ablations(w io.Writer, o Options) error {
	report.Section(w, "Ablations (§5): fast watchpoint replacement, LBR precise PC, sigaltstack")

	run := func(opt witch.Options, name string) (*witch.Profile, error) {
		return witch.Run(mustWorkload(name), opt)
	}
	base := witch.Options{Tool: witch.DeadStores, Period: 500, Seed: o.Seed}

	full, err := run(base, "gcc")
	if err != nil {
		return err
	}
	noFast := base
	noFast.DisableFastModify = true
	nf, err := run(noFast, "gcc")
	if err != nil {
		return err
	}
	noLBR := base
	noLBR.DisableLBR = true
	nl, err := run(noLBR, "gcc")
	if err != nil {
		return err
	}

	tbl := report.NewTable("", "configuration", "fd opens", "fd closes", "modifies", "disasm instrs", "wall")
	tbl.Row("full witch", fmt.Sprint(full.Stats.Opens), fmt.Sprint(full.Stats.Closes),
		fmt.Sprint(full.Stats.Modifies), fmt.Sprint(full.Stats.DisasmInstrs), report.Dur(full.WallTime))
	tbl.Row("no IOC_MODIFY (close+reopen)", fmt.Sprint(nf.Stats.Opens), fmt.Sprint(nf.Stats.Closes),
		fmt.Sprint(nf.Stats.Modifies), fmt.Sprint(nf.Stats.DisasmInstrs), report.Dur(nf.WallTime))
	tbl.Row("no LBR (full-function disasm)", fmt.Sprint(nl.Stats.Opens), fmt.Sprint(nl.Stats.Closes),
		fmt.Sprint(nl.Stats.Modifies), fmt.Sprint(nl.Stats.DisasmInstrs), report.Dur(nl.WallTime))
	tbl.Fprint(w)

	fmt.Fprintln(w)
	alt, err := witch.Run(mustWorkload("stacksignals"), witch.Options{Tool: witch.DeadStores, Period: 23, Seed: o.Seed})
	if err != nil {
		return err
	}
	noAlt, err := witch.Run(mustWorkload("stacksignals"), witch.Options{Tool: witch.DeadStores, Period: 23, Seed: o.Seed, DisableAltStack: true})
	if err != nil {
		return err
	}
	tbl2 := report.NewTable("Figure 3 hazard", "configuration", "spurious traps", "real traps")
	tbl2.Row("sigaltstack (witch)", fmt.Sprint(alt.Stats.SpuriousTraps), fmt.Sprint(alt.Stats.Traps))
	tbl2.Row("application stack", fmt.Sprint(noAlt.Stats.SpuriousTraps), fmt.Sprint(noAlt.Stats.Traps))
	tbl2.Fprint(w)
	return nil
}

// RelatedWork positions Witch against the related-work mitigation (§2):
// exhaustive shadow-memory monitoring, the same tool under bursty tracing
// (RedSpy's mitigation, ~12× in the paper), and Witch's sampling — same
// detector, three cost points, with accuracy alongside.
func RelatedWork(w io.Writer, o Options) error {
	report.Section(w, "Related work (§2): exhaustive vs bursty tracing vs Witch (DeadCraft family, gcc)")
	name := "gcc"
	nw, nb, err := nativeBaseline(name)
	if err != nil {
		return err
	}
	tbl := report.NewTable("", "approach", "slowdown", "memory bloat", "dead stores", "coverage")

	spy, err := witch.RunExhaustive(mustWorkload(name), witch.DeadStores)
	if err != nil {
		return err
	}
	ss, sb := overheadRow(nw, nb, spy.WallTime.Seconds(), spy.ToolBytes)
	tbl.Row("DeadSpy (exhaustive)", report.X(ss), report.X(sb), report.Pct(spy.Redundancy), "100%")

	burst, err := witch.RunBursty(mustWorkload(name), witch.DeadStores, 1000, 9000)
	if err != nil {
		return err
	}
	bs, bb := overheadRow(nw, nb, burst.WallTime.Seconds(), burst.ToolBytes)
	tbl.Row("DeadSpy + bursty (10% duty)", report.X(bs), report.X(bb), report.Pct(burst.Redundancy), "10%")

	prof, err := bestProfile(name, witch.Options{Tool: witch.DeadStores, Seed: o.Seed})
	if err != nil {
		return err
	}
	cs, cb := overheadRow(nw, nb, prof.WallTime.Seconds(), prof.ToolBytes)
	tbl.Row("DeadCraft (Witch)", report.X(cs), report.X(cb), report.Pct(prof.Redundancy),
		fmt.Sprintf("%d samples", prof.Stats.Samples))
	tbl.Fprint(w)
	fmt.Fprintln(w, "\npaper: exhaustive 22-72x, bursty ~12x (RedSpy), Witch <1.05x — all with comparable accuracy")
	return nil
}

// IBS contrasts PEBS-style sampling with the AMD IBS port the paper says
// is straightforward (§3): IBS tags every retired instruction, so many
// overflows capture no usable address, but the samples that survive give
// the same answer.
func IBS(w io.Writer, o Options) error {
	report.Section(w, "IBS port (§3): PEBS-style vs instruction-based sampling (DeadCraft)")
	tbl := report.NewTable("", "benchmark", "exhaustive", "PEBS samples", "PEBS D", "IBS samples", "IBS D")
	names := o.suiteNames()
	if len(names) > 6 {
		names = names[:6]
	}
	for _, name := range names {
		gt, err := witch.RunExhaustive(mustWorkload(name), witch.DeadStores)
		if err != nil {
			return err
		}
		pebs, err := witch.Run(mustWorkload(name), witch.Options{Tool: witch.DeadStores, Period: 499, Seed: o.Seed})
		if err != nil {
			return err
		}
		ibs, err := witch.Run(mustWorkload(name), witch.Options{Tool: witch.DeadStores, Period: 499, Seed: o.Seed, IBSSampling: true})
		if err != nil {
			return err
		}
		tbl.Row(name, report.Pct(gt.Redundancy),
			fmt.Sprint(pebs.Stats.Samples), report.Pct(pebs.Redundancy),
			fmt.Sprint(ibs.Stats.Samples), report.Pct(ibs.Redundancy))
	}
	tbl.Fprint(w)
	fmt.Fprintln(w, "\nIBS periods count all instructions, so fewer overflows land on stores — fewer but equally unbiased samples")
	return nil
}

// OMP exercises multi-threaded profiling (§6.3): debug registers and
// PMUs are virtualized per thread, the crafts track intra-thread
// inefficiency, and the dead-store metric on a per-thread-private
// workload must be independent of the thread count.
func OMP(w io.Writer, o Options) error {
	report.Section(w, "Multi-threading (§6.3): per-thread profiling, DeadCraft on pardead")
	tbl := report.NewTable("", "threads", "samples", "traps", "dead stores")
	for _, threads := range []int{1, 2, 4, 8} {
		prog := mustWorkload("pardead")
		prof, err := witch.Run(prog, witch.Options{Tool: witch.DeadStores, Period: 211, Seed: o.Seed, Threads: threads})
		if err != nil {
			return err
		}
		tbl.Row(fmt.Sprint(threads), fmt.Sprint(prof.Stats.Samples),
			fmt.Sprint(prof.Stats.Traps), report.Pct(prof.Redundancy))
	}
	tbl.Fprint(w)
	fmt.Fprintln(w, "\nthe metric is thread-count invariant; samples and traps scale with total work")
	return nil
}

// Precision sweeps SilentCraft's floating-point comparison tolerance on
// lbm (§6.1: "to identify opportunities for approximate computation ...
// SilentCraft performs approximate equality check within a user-specified
// precision level"). lbm's per-step drift is ~0.01%, so exact comparison
// sees almost nothing while the paper's 1% tolerance sees ~everything —
// the red flag that led to the §8.5 loop-perforation optimization.
func Precision(w io.Writer, o Options) error {
	report.Section(w, "FP precision sweep (§6.1): SilentCraft on lbm")
	tbl := report.NewTable("", "precision", "silent stores")
	for _, prec := range []float64{1e-12, 1e-4, 1e-2, 5e-2} {
		prof, err := witch.Run(mustWorkload("lbm"), witch.Options{
			Tool: witch.SilentStores, Period: 499, Seed: o.Seed, FloatPrecision: prec,
		})
		if err != nil {
			return err
		}
		tbl.Row(fmt.Sprintf("%g", prec), report.Pct(prof.Redundancy))
	}
	tbl.Fprint(w)
	fmt.Fprintln(w, "\nexact comparison sees little; the 1% tolerance surfaces the approximate-computing opportunity")
	return nil
}

// All runs every experiment in paper order.
func All(w io.Writer, o Options) error {
	steps := []func(io.Writer, Options) error{
		Figure2, Figure4, Figure5, Table1, Table2, Table3,
		BlindSpots, Dominance, Adversary, Stability, RankOrder, Ablations,
		RelatedWork, IBS, OMP, Precision, Chaos, Ingest, Delivery, Cluster, Replica, Query, Obs,
	}
	for _, step := range steps {
		if err := step(w, o); err != nil {
			return err
		}
	}
	return nil
}

// Registry maps experiment names (the -exp flag of cmd/witchbench) to
// runners.
func Registry() map[string]func(io.Writer, Options) error {
	return map[string]func(io.Writer, Options) error{
		"fig2":      Figure2,
		"fig4":      Figure4,
		"fig5":      Figure5,
		"table1":    Table1,
		"table2":    Table2,
		"table3":    Table3,
		"blindspot": BlindSpots,
		"dominance": Dominance,
		"adversary": Adversary,
		"stability": Stability,
		"rank":      RankOrder,
		"ablations": Ablations,
		"related":   RelatedWork,
		"ibs":       IBS,
		"omp":       OMP,
		"precision": Precision,
		"chaos":     Chaos,
		"ingest":    Ingest,
		"delivery":  Delivery,
		"cluster":   Cluster,
		"replica":   Replica,
		"query":     Query,
		"obs":       Obs,
		"all":       All,
	}
}

// Names lists experiments in a stable order.
func Names() []string {
	var names []string
	for k := range Registry() {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
